package assurance

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestUAVCaseValidAndDeveloped(t *testing.T) {
	c, err := UAVCase("u1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Root().ID != "u1/G1" {
		t.Fatalf("root = %q", c.Root().ID)
	}
	if und := c.Undeveloped(); len(und) != 0 {
		t.Fatalf("undeveloped items: %v", und)
	}
	sols := c.Solutions()
	if len(sols) != 7 {
		t.Fatalf("solutions = %d", len(sols))
	}
	for _, s := range sols {
		if s.Evidence == "" {
			t.Fatalf("solution %q has no evidence", s.ID)
		}
	}
	if _, ok := c.Node("u1/G3"); !ok {
		t.Fatal("security goal missing")
	}
}

func TestUndevelopedDetection(t *testing.T) {
	root := &Node{ID: "G1", Kind: Goal, Text: "top",
		SupportedBy: []*Node{
			{ID: "G2", Kind: Goal, Text: "open claim"}, // no support
			{ID: "Sn1", Kind: Solution, Text: "done", Evidence: "x"},
		},
	}
	c, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	und := c.Undeveloped()
	// G2 is open, and therefore G1 is too.
	if len(und) != 2 || und[0] != "G1" || und[1] != "G2" {
		t.Fatalf("undeveloped = %v", und)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil root must fail")
	}
	if _, err := New(&Node{ID: "S", Kind: Strategy, Text: "x"}); err == nil {
		t.Error("non-goal root must fail")
	}
	if _, err := New(&Node{ID: "", Kind: Goal}); err == nil {
		t.Error("empty id must fail")
	}
	// Solution with support.
	bad := &Node{ID: "G", Kind: Goal, SupportedBy: []*Node{
		{ID: "Sn", Kind: Solution, SupportedBy: []*Node{{ID: "x", Kind: Solution}}},
	}}
	if _, err := New(bad); err == nil {
		t.Error("solution with support must fail")
	}
	// Goal supported by context.
	bad2 := &Node{ID: "G", Kind: Goal, SupportedBy: []*Node{{ID: "C", Kind: Context}}}
	if _, err := New(bad2); err == nil {
		t.Error("goal supported by context must fail")
	}
	// Strategy without support.
	bad3 := &Node{ID: "G", Kind: Goal, SupportedBy: []*Node{{ID: "S", Kind: Strategy}}}
	if _, err := New(bad3); err == nil {
		t.Error("empty strategy must fail")
	}
	// Duplicate distinct ids.
	bad4 := &Node{ID: "G", Kind: Goal, SupportedBy: []*Node{
		{ID: "dup", Kind: Solution}, {ID: "dup", Kind: Solution},
	}}
	if _, err := New(bad4); err == nil {
		t.Error("duplicate ids must fail")
	}
	// Non-context in context link.
	bad5 := &Node{ID: "G", Kind: Goal, InContextOf: []*Node{{ID: "X", Kind: Goal}}}
	if _, err := New(bad5); err == nil {
		t.Error("non-context context link must fail")
	}
	// Cycle.
	a := &Node{ID: "A", Kind: Goal}
	b := &Node{ID: "B", Kind: Goal, SupportedBy: []*Node{a}}
	a.SupportedBy = []*Node{b}
	if _, err := New(a); err == nil {
		t.Error("cycle must fail")
	}
}

func TestRender(t *testing.T) {
	c, _ := UAVCase("u1")
	var buf bytes.Buffer
	c.Render(&buf)
	out := buf.String()
	for _, want := range []string{"[G] u1/G1", "[S] u1/S1", "experiment:fig5", "in context of"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig, _ := UAVCase("u1")
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Solutions()) != len(orig.Solutions()) {
		t.Fatal("solutions lost")
	}
	if len(back.Undeveloped()) != 0 {
		t.Fatal("round trip broke development status")
	}
	data2, _ := json.Marshal(back)
	if string(data) != string(data2) {
		t.Fatal("round trip not idempotent")
	}
	if _, err := Parse([]byte("{bad")); err == nil {
		t.Fatal("malformed must fail")
	}
	if _, err := Parse([]byte(`{"id":"g","kind":"wat","text":"x"}`)); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

func TestKindString(t *testing.T) {
	for k := Goal; k <= Context; k++ {
		if k.String() == "" {
			t.Fatal("kind name empty")
		}
		back, err := kindFromString(k.String())
		if err != nil || back != k {
			t.Fatalf("kind round trip failed for %v", k)
		}
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
}
