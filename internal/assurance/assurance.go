// Package assurance implements Goal Structuring Notation (GSN)
// assurance cases — the core artefact of a Digital Dependability
// Identity (paper §III: "The core of a DDI is an assurance case — a
// clear, organized argument that demonstrates that the system meets
// dependability requirements", linking models and evidence into a
// cohesive narrative). Cases built here reference the executable
// models of the other packages as their solutions/evidence.
package assurance

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Kind classifies a GSN node.
type Kind int

// GSN node kinds.
const (
	Goal Kind = iota
	Strategy
	Solution
	Context
)

func (k Kind) String() string {
	switch k {
	case Goal:
		return "goal"
	case Strategy:
		return "strategy"
	case Solution:
		return "solution"
	case Context:
		return "context"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

func kindFromString(s string) (Kind, error) {
	for k := Goal; k <= Context; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("assurance: unknown kind %q", s)
}

// Node is one GSN element.
type Node struct {
	ID   string
	Kind Kind
	Text string
	// SupportedBy are the children carrying the argument downward.
	SupportedBy []*Node
	// InContextOf attaches context nodes.
	InContextOf []*Node
	// Evidence names the executable model or experiment backing a
	// solution (e.g. "fault-tree:uav-loss", "experiment:fig5").
	Evidence string
}

// Case is a validated assurance case.
type Case struct {
	root *Node
	byID map[string]*Node
}

// New validates the GSN structure under root:
//   - ids unique and non-empty, root is a goal;
//   - goals are supported by goals, strategies or solutions;
//   - strategies are supported by goals (optionally solutions);
//   - solutions and contexts are leaves;
//   - context links attach only context nodes;
//   - the support graph is acyclic.
func New(root *Node) (*Case, error) {
	if root == nil {
		return nil, errors.New("assurance: nil root")
	}
	if root.Kind != Goal {
		return nil, errors.New("assurance: root must be a goal")
	}
	c := &Case{root: root, byID: make(map[string]*Node)}
	visiting := map[string]bool{}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.ID == "" {
			return errors.New("assurance: node with empty id")
		}
		if visiting[n.ID] {
			return fmt.Errorf("assurance: support cycle through %q", n.ID)
		}
		if seen, ok := c.byID[n.ID]; ok {
			if seen != n {
				return fmt.Errorf("assurance: duplicate id %q", n.ID)
			}
			return nil // shared subtree already validated
		}
		c.byID[n.ID] = n
		visiting[n.ID] = true
		defer delete(visiting, n.ID)

		switch n.Kind {
		case Solution, Context:
			if len(n.SupportedBy) > 0 {
				return fmt.Errorf("assurance: %s %q cannot have support", n.Kind, n.ID)
			}
		case Goal:
			for _, ch := range n.SupportedBy {
				if ch == nil {
					return fmt.Errorf("assurance: goal %q has nil child", n.ID)
				}
				if ch.Kind == Context {
					return fmt.Errorf("assurance: goal %q supported by context %q", n.ID, ch.ID)
				}
			}
		case Strategy:
			if len(n.SupportedBy) == 0 {
				return fmt.Errorf("assurance: strategy %q has no support", n.ID)
			}
			for _, ch := range n.SupportedBy {
				if ch == nil || (ch.Kind != Goal && ch.Kind != Solution) {
					return fmt.Errorf("assurance: strategy %q must be supported by goals/solutions", n.ID)
				}
			}
		default:
			return fmt.Errorf("assurance: node %q has unknown kind", n.ID)
		}
		for _, ctx := range n.InContextOf {
			if ctx == nil || ctx.Kind != Context {
				return fmt.Errorf("assurance: %q has a non-context context link", n.ID)
			}
			if err := walk(ctx); err != nil {
				return err
			}
		}
		for _, ch := range n.SupportedBy {
			if err := walk(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return c, nil
}

// Root returns the case's top goal.
func (c *Case) Root() *Node { return c.root }

// Node looks up a node by id.
func (c *Case) Node(id string) (*Node, bool) {
	n, ok := c.byID[id]
	return n, ok
}

// Undeveloped returns the ids of goals and strategies not (transitively)
// backed by any solution — the open items a certifier flags.
func (c *Case) Undeveloped() []string {
	memo := map[string]bool{}
	var developed func(n *Node) bool
	developed = func(n *Node) bool {
		if v, ok := memo[n.ID]; ok {
			return v
		}
		memo[n.ID] = false // cycle guard; validated acyclic anyway
		var ok bool
		switch n.Kind {
		case Solution:
			ok = true
		case Context:
			ok = true // context is not part of the argument spine
		default:
			ok = len(n.SupportedBy) > 0
			for _, ch := range n.SupportedBy {
				if !developed(ch) {
					ok = false
				}
			}
		}
		memo[n.ID] = ok
		return ok
	}
	developed(c.root)
	var out []string
	for id, ok := range memo {
		n := c.byID[id]
		if !ok && (n.Kind == Goal || n.Kind == Strategy) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Solutions returns every solution node, sorted by id.
func (c *Case) Solutions() []*Node {
	var out []*Node
	for _, n := range c.byID {
		if n.Kind == Solution {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Render writes an indented text view of the argument.
func (c *Case) Render(w io.Writer) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		tag := strings.ToUpper(n.Kind.String()[:1])
		fmt.Fprintf(w, "%s[%s] %s: %s", indent, tag, n.ID, n.Text)
		if n.Evidence != "" {
			fmt.Fprintf(w, "  <- %s", n.Evidence)
		}
		fmt.Fprintln(w)
		for _, ctx := range n.InContextOf {
			fmt.Fprintf(w, "%s  (in context of %s: %s)\n", indent, ctx.ID, ctx.Text)
		}
		for _, ch := range n.SupportedBy {
			rec(ch, depth+1)
		}
	}
	rec(c.root, 0)
}

// ---- JSON exchange ----

type nodeJSON struct {
	ID          string     `json:"id"`
	Kind        string     `json:"kind"`
	Text        string     `json:"text"`
	Evidence    string     `json:"evidence,omitempty"`
	SupportedBy []nodeJSON `json:"supportedBy,omitempty"`
	InContextOf []nodeJSON `json:"inContextOf,omitempty"`
}

func toJSON(n *Node) nodeJSON {
	out := nodeJSON{ID: n.ID, Kind: n.Kind.String(), Text: n.Text, Evidence: n.Evidence}
	for _, ch := range n.SupportedBy {
		out.SupportedBy = append(out.SupportedBy, toJSON(ch))
	}
	for _, ctx := range n.InContextOf {
		out.InContextOf = append(out.InContextOf, toJSON(ctx))
	}
	return out
}

func fromJSON(j nodeJSON) (*Node, error) {
	kind, err := kindFromString(j.Kind)
	if err != nil {
		return nil, err
	}
	n := &Node{ID: j.ID, Kind: kind, Text: j.Text, Evidence: j.Evidence}
	for _, cj := range j.SupportedBy {
		ch, err := fromJSON(cj)
		if err != nil {
			return nil, err
		}
		n.SupportedBy = append(n.SupportedBy, ch)
	}
	for _, cj := range j.InContextOf {
		ctx, err := fromJSON(cj)
		if err != nil {
			return nil, err
		}
		n.InContextOf = append(n.InContextOf, ctx)
	}
	return n, nil
}

// MarshalJSON encodes the case as its exchange document. Shared
// subtrees are expanded (the document is a tree).
func (c *Case) MarshalJSON() ([]byte, error) {
	return json.MarshalIndent(toJSON(c.root), "", "  ")
}

// Parse decodes and validates a case document.
func Parse(data []byte) (*Case, error) {
	var j nodeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("assurance: decoding: %w", err)
	}
	root, err := fromJSON(j)
	if err != nil {
		return nil, err
	}
	return New(root)
}
