package assurance

// UAVCase builds the SESAME SAR-mission assurance case: the top-level
// dependability claim argued over the safety, security and perception
// branches, each bottoming out in the executable models and the
// reproduced experiments of this repository.
func UAVCase(uav string) (*Case, error) {
	opsCtx := &Node{
		ID: uav + "/C1", Kind: Context,
		Text: "SAR missions over a defined area with up to 3 cooperating UAVs (paper §IV)",
	}
	root := &Node{
		ID: uav + "/G1", Kind: Goal,
		Text:        "The UAV is acceptably safe, secure and dependable during SAR missions",
		InContextOf: []*Node{opsCtx},
	}
	strategy := &Node{
		ID: uav + "/S1", Kind: Strategy,
		Text: "Argue over each dependability attribute with a runtime EDDI monitor per attribute",
	}
	root.SupportedBy = []*Node{strategy}

	safety := &Node{
		ID: uav + "/G2", Kind: Goal,
		Text: "Hardware/software failures are detected and mitigated before the probability of failure becomes unacceptable",
		SupportedBy: []*Node{
			{
				ID: uav + "/Sn1", Kind: Solution,
				Text:     "SafeDrones runtime reliability monitor over Markov complex basic events",
				Evidence: "fault-tree:uav-loss",
			},
			{
				ID: uav + "/Sn2", Kind: Solution,
				Text:     "Battery-failure scenario: mission completed, availability preserved",
				Evidence: "experiment:fig5",
			},
		},
	}
	security := &Node{
		ID: uav + "/G3", Kind: Goal,
		Text: "Cyber attacks on positioning and C2 are detected and mitigated",
		SupportedBy: []*Node{
			{
				ID: uav + "/Sn3", Kind: Solution,
				Text:     "IDS + attack-tree Security EDDI detects ROS/GNSS spoofing within seconds",
				Evidence: "experiment:fig6",
			},
			{
				ID: uav + "/Sn4", Kind: Solution,
				Text:     "Collaborative Localization lands the attacked UAV precisely without GPS",
				Evidence: "experiment:fig7",
			},
			{
				ID: uav + "/Sn5", Kind: Solution,
				Text:     "C2 hijack/jamming modelled and detected via link-silence",
				Evidence: "attack-tree:c2-hijack",
			},
		},
	}
	perception := &Node{
		ID: uav + "/G4", Kind: Goal,
		Text: "Degraded perception is detected and the mission adapts to preserve SAR accuracy",
		SupportedBy: []*Node{
			{
				ID: uav + "/Sn6", Kind: Solution,
				Text:     "SafeML + DeepKnowledge uncertainty with SINADRA-driven altitude adaptation",
				Evidence: "experiment:accuracy",
			},
		},
	}
	integration := &Node{
		ID: uav + "/G5", Kind: Goal,
		Text: "Attribute monitors compose into mission-level decisions",
		SupportedBy: []*Node{
			{
				ID: uav + "/Sn7", Kind: Solution,
				Text:     "Fig. 1 hierarchical ConSert network, machine-checked over all evidence combinations",
				Evidence: "consert:uav-network",
			},
		},
	}
	strategy.SupportedBy = []*Node{safety, security, perception, integration}
	return New(root)
}
