package uavsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"sesame/internal/geo"
	"sesame/internal/rosbus"
)

var testOrigin = geo.LatLng{Lat: 35.1856, Lng: 33.3823}

func newTestWorld(t *testing.T) *World {
	t.Helper()
	return NewWorld(testOrigin, 42)
}

func addUAV(t *testing.T, w *World, id string) *UAV {
	t.Helper()
	u, err := w.AddUAV(UAVConfig{ID: id, Home: testOrigin, CruiseSpeedMS: 10, ClimbRateMS: 3})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestAddUAVValidation(t *testing.T) {
	w := newTestWorld(t)
	if _, err := w.AddUAV(UAVConfig{ID: "", Home: testOrigin}); err == nil {
		t.Error("empty id must fail")
	}
	if _, err := w.AddUAV(UAVConfig{ID: "u1", Home: geo.LatLng{Lat: 999}}); err == nil {
		t.Error("invalid home must fail")
	}
	addUAV(t, w, "u1")
	if _, err := w.AddUAV(UAVConfig{ID: "u1", Home: testOrigin}); err == nil {
		t.Error("duplicate id must fail")
	}
	if _, err := w.UAV("u1"); err != nil {
		t.Error("lookup failed")
	}
	if _, err := w.UAV("nope"); err == nil {
		t.Error("unknown id must fail")
	}
}

func TestTakeOffAndClimb(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	if err := u.TakeOff(30); err != nil {
		t.Fatal(err)
	}
	if u.Mode() != ModeHold {
		t.Fatalf("mode = %v", u.Mode())
	}
	if err := w.Run(15, 1); err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.AltitudeM()-30) > 0.01 {
		t.Fatalf("altitude = %v, want 30 (3 m/s for >=10 s)", u.AltitudeM())
	}
}

func TestTakeOffValidation(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	if err := u.TakeOff(-5); err == nil {
		t.Error("negative altitude must fail")
	}
	if err := u.TakeOff(30); err != nil {
		t.Fatal(err)
	}
	if err := u.TakeOff(30); err == nil {
		t.Error("double takeoff must fail")
	}
}

func TestMissionFliesWaypoints(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	mustTakeOff(t, w, u, 30)

	wp1 := geo.Destination(testOrigin, 90, 200)
	wp2 := geo.Destination(wp1, 0, 100)
	if err := u.FlyMission([]geo.LatLng{wp1, wp2}, 30); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(w.Clock.Now()+120, 0.5); err != nil {
		t.Fatal(err)
	}
	if u.Mode() != ModeHold {
		t.Fatalf("mode = %v, want hold after mission", u.Mode())
	}
	if d := geo.Haversine(u.TruePosition(), wp2); d > 5 {
		t.Fatalf("final position %.1f m from last waypoint", d)
	}
}

func mustTakeOff(t *testing.T, w *World, u *UAV, alt float64) {
	t.Helper()
	if err := u.TakeOff(alt); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(w.Clock.Now()+alt/3+2, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestMissionRequiresAirborne(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	if err := u.FlyMission([]geo.LatLng{testOrigin}, 30); err == nil {
		t.Fatal("grounded mission must fail")
	}
	if err := u.TakeOff(10); err != nil {
		t.Fatal(err)
	}
	if err := u.FlyMission(nil, 30); err == nil {
		t.Fatal("empty waypoints must fail")
	}
}

func TestReturnToBaseLands(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	mustTakeOff(t, w, u, 20)
	wp := geo.Destination(testOrigin, 45, 150)
	if err := u.FlyMission([]geo.LatLng{wp}, 20); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(w.Clock.Now()+30, 0.5); err != nil {
		t.Fatal(err)
	}
	u.ReturnToBase()
	if err := w.Run(w.Clock.Now()+60, 0.5); err != nil {
		t.Fatal(err)
	}
	if u.Mode() != ModeLanded {
		t.Fatalf("mode = %v, want landed", u.Mode())
	}
	if d := geo.Haversine(u.TruePosition(), testOrigin); d > 5 {
		t.Fatalf("landed %.1f m from home", d)
	}
	if u.AltitudeM() != 0 {
		t.Fatalf("altitude = %v after landing", u.AltitudeM())
	}
}

func TestEmergencyLandFaster(t *testing.T) {
	w := newTestWorld(t)
	a := addUAV(t, w, "a")
	b := addUAV(t, w, "b")
	mustTakeOff(t, w, a, 30)
	mustTakeOff(t, w, b, 30)
	a.Land()
	b.EmergencyLand()
	_ = w.Step(1)
	if b.AltitudeM() >= a.AltitudeM() {
		t.Fatalf("emergency landing must descend faster: a=%v b=%v", a.AltitudeM(), b.AltitudeM())
	}
}

func TestBatteryDrainsInFlight(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	start := u.Battery.ChargePct
	mustTakeOff(t, w, u, 20)
	if err := w.Run(w.Clock.Now()+100, 1); err != nil {
		t.Fatal(err)
	}
	if u.Battery.ChargePct >= start {
		t.Fatal("battery did not drain")
	}
	if u.Battery.TempC <= 25 {
		t.Fatalf("battery did not heat under load: %v", u.Battery.TempC)
	}
}

func TestBatteryCollapseFault(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	mustTakeOff(t, w, u, 20)
	if err := w.ScheduleFault(BatteryCollapseFault(w.Clock.Now()+10, "u1", 70, 40)); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(w.Clock.Now()+9, 1); err != nil {
		t.Fatal(err)
	}
	if u.Battery.ChargePct < 50 {
		t.Fatalf("fault fired early: %v", u.Battery.ChargePct)
	}
	if err := w.Run(w.Clock.Now()+2, 1); err != nil {
		t.Fatal(err)
	}
	if u.Battery.ChargePct > 40 {
		t.Fatalf("charge = %v, want <= 40 after fault", u.Battery.ChargePct)
	}
	if !u.Battery.Overheating() {
		t.Fatal("pack must be overheating after thermal fault")
	}
}

func TestDepletedBatteryCrashes(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	mustTakeOff(t, w, u, 20)
	u.Battery.ChargePct = 0.001
	if err := w.Run(w.Clock.Now()+5, 1); err != nil {
		t.Fatal(err)
	}
	if u.Mode() != ModeCrashed {
		t.Fatalf("mode = %v, want crashed", u.Mode())
	}
}

func TestRotorFailureQuadCrashes(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	mustTakeOff(t, w, u, 20)
	if err := w.ScheduleFault(RotorFailureFault(w.Clock.Now()+1, "u1", 2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(w.Clock.Now()+3, 1); err != nil {
		t.Fatal(err)
	}
	if u.Mode() != ModeCrashed {
		t.Fatalf("quad with failed rotor must crash, mode = %v", u.Mode())
	}
	if u.FailedRotors() != 1 {
		t.Fatalf("FailedRotors = %d", u.FailedRotors())
	}
}

func TestRotorFailureHexSurvives(t *testing.T) {
	w := newTestWorld(t)
	u, err := w.AddUAV(UAVConfig{ID: "hex", Home: testOrigin, Rotors: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.TakeOff(20); err != nil {
		t.Fatal(err)
	}
	_ = w.Run(10, 1)
	_ = u.FailRotor(0)
	_ = u.FailRotor(3)
	_ = w.Run(12, 1)
	if u.Mode() == ModeCrashed {
		t.Fatal("hexrotor must tolerate two failures")
	}
	_ = u.FailRotor(1)
	if u.Mode() != ModeCrashed {
		t.Fatal("three failures must crash a hexrotor")
	}
	if err := u.FailRotor(99); err == nil {
		t.Fatal("out of range rotor must fail")
	}
}

func TestGPSSpoofDeflectsTrajectory(t *testing.T) {
	// Two identical missions; one vehicle gets spoofed. The spoofed
	// vehicle's true track must deviate from the clean one.
	clean := NewWorld(testOrigin, 7)
	attacked := NewWorld(testOrigin, 7)
	for _, w := range []*World{clean, attacked} {
		u, err := w.AddUAV(UAVConfig{ID: "u1", Home: testOrigin, CruiseSpeedMS: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := u.TakeOff(25); err != nil {
			t.Fatal(err)
		}
		_ = w.Run(10, 0.5)
		wps := []geo.LatLng{
			geo.Destination(testOrigin, 90, 300),
			geo.Destination(geo.Destination(testOrigin, 90, 300), 0, 100),
		}
		if err := u.FlyMission(wps, 25); err != nil {
			t.Fatal(err)
		}
	}
	if err := attacked.ScheduleFault(GPSSpoofFault(15, "u1", 180, 2.0)); err != nil {
		t.Fatal(err)
	}
	_ = clean.Run(60, 0.5)
	_ = attacked.Run(60, 0.5)
	cu, _ := clean.UAV("u1")
	au, _ := attacked.UAV("u1")
	dev := geo.Haversine(cu.TruePosition(), au.TruePosition())
	if dev < 20 {
		t.Fatalf("spoofed trajectory deviated only %.1f m", dev)
	}
	// The spoofed UAV's reported (believed) position differs from truth.
	fix, ok := au.GPS.Fix(au.TruePosition(), au.AltitudeM(), "u1", 0)
	if !ok {
		t.Fatal("spoofed GPS must still produce a fix")
	}
	if d := geo.Haversine(fix.Position, au.TruePosition()); d < 20 {
		t.Fatalf("spoof offset only %.1f m", d)
	}
}

func TestGPSDropout(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	u.GPS.Mode = GPSModeDropout
	fix, ok := u.GPS.Fix(u.TruePosition(), 0, "u1", 0)
	if ok {
		t.Fatal("dropout must not produce a fix")
	}
	if fix.Quality != GPSLost {
		t.Fatalf("quality = %v, want lost", fix.Quality)
	}
}

func TestTelemetryPublished(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	var gps []GPSFix
	var batt []BatteryState
	var health []HealthState
	var status []StatusReport
	_, _ = w.Bus.Subscribe(GPSTopic("u1"), func(m rosbus.Message) { gps = append(gps, m.Payload.(GPSFix)) })
	_, _ = w.Bus.Subscribe(BatteryTopic("u1"), func(m rosbus.Message) { batt = append(batt, m.Payload.(BatteryState)) })
	_, _ = w.Bus.Subscribe(HealthTopic("u1"), func(m rosbus.Message) { health = append(health, m.Payload.(HealthState)) })
	_, _ = w.Bus.Subscribe(StatusTopic("u1"), func(m rosbus.Message) { status = append(status, m.Payload.(StatusReport)) })
	if err := u.TakeOff(10); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(5, 1); err != nil {
		t.Fatal(err)
	}
	if len(gps) != 5 || len(batt) != 5 || len(health) != 5 || len(status) != 5 {
		t.Fatalf("telemetry counts: gps=%d batt=%d health=%d status=%d", len(gps), len(batt), len(health), len(status))
	}
	if gps[0].UAV != "u1" || batt[0].UAV != "u1" {
		t.Fatal("telemetry mislabelled")
	}
	if status[4].Mode != ModeHold && status[4].Mode != ModeMission {
		t.Fatalf("status mode = %v", status[4].Mode)
	}
	if batt[4].ChargePct >= batt[0].ChargePct {
		t.Fatal("battery telemetry must show drain")
	}
}

func TestTelemetryPublishFailuresCounted(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	if err := u.TakeOff(10); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(2, 1); err != nil {
		t.Fatal(err)
	}
	if got := w.Drops().TelemetryPublish; got != 0 {
		t.Fatalf("healthy bus produced %d telemetry drops", got)
	}
	// A bus filter rejecting every frame from u1 models a refusing
	// link; every failed publish must be counted, not discarded.
	boom := errors.New("link rejects frame")
	w.Bus.SetFilter(func(m rosbus.Message) (bool, error) {
		if m.Publisher == "u1" {
			return false, boom
		}
		return true, nil
	})
	if err := w.Run(5, 1); err != nil {
		t.Fatal(err)
	}
	// 3 seconds × 4 topics.
	if got := w.Drops().TelemetryPublish; got != 12 {
		t.Fatalf("TelemetryPublish = %d, want 12", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() geo.LatLng {
		w := NewWorld(testOrigin, 99)
		u, _ := w.AddUAV(UAVConfig{ID: "u1", Home: testOrigin})
		_ = u.TakeOff(20)
		_ = w.Run(8, 0.5)
		_ = u.FlyMission([]geo.LatLng{geo.Destination(testOrigin, 60, 250)}, 20)
		_ = w.Run(40, 0.5)
		return u.TruePosition()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestWindDrift(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	mustTakeOff(t, w, u, 20)
	w.Wind = geo.ENU{East: 3, North: 0}
	u.Hold() // hovering, wind pushes it
	start := u.TrueENU()
	_ = w.Run(w.Clock.Now()+10, 1)
	drift := u.TrueENU().Sub(start)
	if drift.East < 25 {
		t.Fatalf("wind drift east = %v, want ~30", drift.East)
	}
}

func TestModeStrings(t *testing.T) {
	for m := ModeIdle; m <= ModeCrashed; m++ {
		if m.String() == "" {
			t.Fatalf("mode %d has empty name", m)
		}
	}
	if FlightMode(99).String() == "" || GPSQuality(99).String() == "" {
		t.Fatal("unknown values must render")
	}
	if !ModeMission.Airborne() || ModeLanded.Airborne() {
		t.Fatal("Airborne classification wrong")
	}
}

func TestScheduleFaultValidation(t *testing.T) {
	w := newTestWorld(t)
	addUAV(t, w, "u1")
	if err := w.ScheduleFault(Fault{At: 1, UAV: "u1"}); err == nil {
		t.Error("nil Apply must fail")
	}
	if err := w.ScheduleFault(BatteryCollapseFault(1, "ghost", 70, 40)); err == nil {
		t.Error("unknown UAV must fail")
	}
	if err := w.Step(0); err == nil {
		t.Error("zero dt must fail")
	}
}

func TestCameraFault(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	_ = w.ScheduleFault(CameraFailureFault(2, "u1"))
	_ = w.Run(3, 1)
	if u.Camera.OK {
		t.Fatal("camera must be failed")
	}
}

func BenchmarkWorldStepThreeUAVs(b *testing.B) {
	w := NewWorld(testOrigin, 1)
	for _, id := range []string{"u1", "u2", "u3"} {
		u, _ := w.AddUAV(UAVConfig{ID: id, Home: testOrigin})
		_ = u.TakeOff(20)
	}
	_ = w.Run(10, 1)
	for _, u := range w.UAVs() {
		_ = u.FlyMission([]geo.LatLng{geo.Destination(testOrigin, 90, 5000)}, 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Step(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGustDriftBounded(t *testing.T) {
	w := newTestWorld(t)
	u := addUAV(t, w, "u1")
	w.GustSigmaMS = 2
	w.GustTauS = 20
	mustTakeOff(t, w, u, 20)
	u.Hold()
	start := u.TrueENU()
	_ = w.Run(w.Clock.Now()+120, 1)
	drift := u.TrueENU().Sub(start).Norm()
	// A zero-mean gust wanders the hover but must stay well below the
	// ballistic bound sigma*t.
	if drift == 0 {
		t.Fatal("gusts produced no drift at all")
	}
	if drift > 2*120*0.5 {
		t.Fatalf("gust drift %v m too large for zero-mean turbulence", drift)
	}
	// Current wind differs from the configured mean while gusting.
	if w.CurrentWind() == w.Wind {
		t.Fatal("gust component missing from CurrentWind")
	}
}

func TestGustDisabledByDefault(t *testing.T) {
	w := newTestWorld(t)
	if w.CurrentWind() != w.Wind {
		t.Fatal("no gusts expected by default")
	}
	_ = w.Step(1)
	if w.CurrentWind() != w.Wind {
		t.Fatal("gust state must stay zero when disabled")
	}
}

func TestBatteryChargeMonotoneProperty(t *testing.T) {
	f := func(seed int64, speedRaw float64) bool {
		b := DefaultBattery()
		speed := math.Mod(math.Abs(speedRaw), 20)
		prev := b.ChargePct
		for i := 0; i < 500; i++ {
			b.Step(1, speed, true)
			if b.ChargePct > prev || b.ChargePct < 0 {
				return false
			}
			prev = b.ChargePct
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatteryVoltageTracksCharge(t *testing.T) {
	b := DefaultBattery()
	vFull := b.Voltage()
	b.ChargePct = 0
	vEmpty := b.Voltage()
	if vEmpty >= vFull {
		t.Fatalf("voltage must sag: %v -> %v", vFull, vEmpty)
	}
	if vEmpty < 0.8*b.NominalVoltage {
		t.Fatalf("empty voltage %v implausibly low", vEmpty)
	}
}
