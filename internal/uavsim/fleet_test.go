package uavsim

import (
	"fmt"
	"reflect"
	"testing"

	"sesame/internal/geo"
)

// buildFleetWorld creates a gusty world with n airborne vehicles flying
// short missions — the regime where every struct-of-arrays slot is
// exercised each step.
func buildFleetWorld(t *testing.T, n int) *World {
	t.Helper()
	w := NewWorld(testOrigin, 7)
	w.Wind = geo.ENU{East: 1.5, North: -0.5}
	w.GustSigmaMS = 0.8
	for i := 1; i <= n; i++ {
		u, err := w.AddUAV(UAVConfig{
			ID: fmt.Sprintf("u%02d", i), Home: testOrigin, CruiseSpeedMS: 10, ClimbRateMS: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := u.TakeOff(40); err != nil {
			t.Fatal(err)
		}
		wp := geo.Destination(testOrigin, float64(i*37%360), 150+float64(i)*20)
		if err := u.FlyMission([]geo.LatLng{wp, testOrigin}, 40); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.ScheduleFault(BatteryCollapseFault(10, "u01", 70, 30)); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSplitStepMatchesStep proves the BeginStep / StepRange /
// FinishStep decomposition is exactly the monolithic Step: a world
// advanced in arbitrary disjoint index ranges must snapshot
// bit-identically to one advanced with Step, faults and gusts included.
func TestSplitStepMatchesStep(t *testing.T) {
	const n, steps = 9, 60
	whole := buildFleetWorld(t, n)
	split := buildFleetWorld(t, n)
	// Uneven chunks that shift every step, covering empty and full-width
	// ranges.
	for s := 0; s < steps; s++ {
		if err := whole.Step(1); err != nil {
			t.Fatal(err)
		}
		now, err := split.BeginStep(1)
		if err != nil {
			t.Fatal(err)
		}
		cut1 := s % (n + 1)
		cut2 := cut1 + (s*3)%(n+1-cut1)
		split.StepRange(0, cut1, 1)
		split.StepRange(cut1, cut2, 1)
		split.StepRange(cut2, n, 1)
		split.FinishStep(now)
	}
	a, err := whole.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := split.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("split-step world diverges from Step world:\n whole: %+v\n split: %+v", a, b)
	}
	if whole.Drops() != split.Drops() {
		t.Errorf("telemetry drops diverge: %+v != %+v", whole.Drops(), split.Drops())
	}
}

// TestAirborneCountTracksModes pins the incrementally maintained
// airborne counter against every transition path: takeoff, landing,
// crash, and snapshot restore.
func TestAirborneCountTracksModes(t *testing.T) {
	w := newTestWorld(t)
	u1 := addUAV(t, w, "u1")
	u2 := addUAV(t, w, "u2")
	addUAV(t, w, "u3")
	if got := w.AirborneCount(); got != 0 {
		t.Fatalf("AirborneCount = %d before takeoff, want 0", got)
	}
	if err := u1.TakeOff(30); err != nil {
		t.Fatal(err)
	}
	if err := u2.TakeOff(30); err != nil {
		t.Fatal(err)
	}
	if got := w.AirborneCount(); got != 2 {
		t.Fatalf("AirborneCount = %d after two takeoffs, want 2", got)
	}
	u1.Land()
	for i := 0; i < 60 && u1.Mode() != ModeLanded; i++ {
		if err := w.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if u1.Mode() != ModeLanded {
		t.Fatal("u1 never landed")
	}
	if got := w.AirborneCount(); got != 1 {
		t.Fatalf("AirborneCount = %d after landing, want 1", got)
	}
	// A quad with a failed rotor crashes: airborne -> crashed.
	if err := u2.FailRotor(0); err != nil {
		t.Fatal(err)
	}
	if got := w.AirborneCount(); got != 0 {
		t.Fatalf("AirborneCount = %d after crash, want 0", got)
	}
	// Restore flows through the mode setter too.
	snap := u1.Snapshot()
	snap.Mode = ModeHold
	if err := u1.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if got := w.AirborneCount(); got != 1 {
		t.Fatalf("AirborneCount = %d after restoring an airborne mode, want 1", got)
	}
}

// TestBatteryPointerRepinned grows the fleet far past the battery
// store's initial capacity and checks every vehicle's Battery pointer
// still addresses its own contiguous slot — the invariant AddUAV's
// re-pinning maintains across reallocations.
func TestBatteryPointerRepinned(t *testing.T) {
	w := newTestWorld(t)
	var uavs []*UAV
	for i := 0; i < 40; i++ {
		uavs = append(uavs, addUAV(t, w, fmt.Sprintf("u%02d", i)))
	}
	for _, u := range uavs {
		if u.Battery != &w.fleet.batt[u.idx] {
			t.Fatalf("%s Battery pointer not pinned to fleet slot %d", u.ID(), u.idx)
		}
	}
	// Mutations through the public pointer must hit the shared store.
	uavs[0].Battery.ChargePct = 55
	if w.fleet.batt[uavs[0].idx].ChargePct != 55 {
		t.Error("Battery mutation did not reach the fleet store")
	}
}

// TestFleetSize pins the trivial accessor.
func TestFleetSize(t *testing.T) {
	w := newTestWorld(t)
	if w.FleetSize() != 0 {
		t.Fatal("empty world must have fleet size 0")
	}
	addUAV(t, w, "b")
	addUAV(t, w, "a") // out-of-order add exercises the resort path
	if w.FleetSize() != 2 {
		t.Fatalf("FleetSize = %d, want 2", w.FleetSize())
	}
	ids := []string{w.UAVs()[0].ID(), w.UAVs()[1].ID()}
	if ids[0] != "a" || ids[1] != "b" {
		t.Errorf("fleet order = %v, want [a b]", ids)
	}
}
