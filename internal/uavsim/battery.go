package uavsim

import "math"

// Battery models the UAV's flight battery: charge drains with load,
// temperature follows load and ambient conditions, and scheduled
// faults can reproduce the paper's §V-A scenario where a thermal fault
// collapses the charge from 80% to 40% at the 250th second.
type Battery struct {
	ChargePct float64 // 0..100
	TempC     float64
	// NominalVoltage is the pack voltage at full charge.
	NominalVoltage float64
	// BaseDrainPctPerS is the hover drain; motion adds SpeedDrainFactor
	// per m/s of ground speed.
	BaseDrainPctPerS float64
	SpeedDrainFactor float64
	// Thermal model: temperature relaxes toward AmbientC + LoadHeatC
	// with time constant ThermalTauS.
	AmbientC    float64
	LoadHeatC   float64
	ThermalTauS float64
	// OverheatThresholdC marks the pack as overheating, which
	// accelerates drain by OverheatDrainFactor.
	OverheatThresholdC  float64
	OverheatDrainFactor float64

	lastDrain float64
}

// DefaultBattery returns a TB60-like pack model: ~30 min hover
// endurance, 52.8 V nominal.
func DefaultBattery() *Battery {
	return &Battery{
		ChargePct:           100,
		TempC:               25,
		NominalVoltage:      52.8,
		BaseDrainPctPerS:    100.0 / (30 * 60), // full pack in 30 min hover
		SpeedDrainFactor:    0.0008,            // extra %/s per m/s
		AmbientC:            25,
		LoadHeatC:           12,
		ThermalTauS:         120,
		OverheatThresholdC:  60,
		OverheatDrainFactor: 3,
	}
}

// Step advances the battery by dt seconds at the given ground speed.
func (b *Battery) Step(dt, speedMS float64, airborne bool) {
	if dt <= 0 {
		return
	}
	target := b.AmbientC
	drain := 0.0
	if airborne {
		target += b.LoadHeatC
		drain = b.BaseDrainPctPerS + b.SpeedDrainFactor*speedMS
	}
	if b.Overheating() {
		drain *= b.OverheatDrainFactor
	}
	// First-order thermal relaxation.
	if b.ThermalTauS > 0 {
		b.TempC += (target - b.TempC) * (1 - math.Exp(-dt/b.ThermalTauS))
	}
	b.ChargePct -= drain * dt
	if b.ChargePct < 0 {
		b.ChargePct = 0
	}
	b.lastDrain = drain
}

// Overheating reports whether the pack temperature exceeds the
// overheat threshold.
func (b *Battery) Overheating() bool { return b.TempC > b.OverheatThresholdC }

// Voltage returns an approximate pack voltage: linear sag from nominal
// at 100% to 85% of nominal at empty.
func (b *Battery) Voltage() float64 {
	frac := b.ChargePct / 100
	return b.NominalVoltage * (0.85 + 0.15*frac)
}

// Depleted reports whether the pack is empty.
func (b *Battery) Depleted() bool { return b.ChargePct <= 0 }

// State snapshots the battery into a telemetry payload.
func (b *Battery) State(uav string, stamp float64) BatteryState {
	return BatteryState{
		UAV:          uav,
		ChargePct:    b.ChargePct,
		TempC:        b.TempC,
		Voltage:      b.Voltage(),
		Overheating:  b.Overheating(),
		Stamp:        stamp,
		DrainPctPerS: b.lastDrain,
	}
}

// Swap replaces the pack with a fresh one of the same model — the
// paper's §V-A baseline behaviour, where the UAV returns to base for a
// battery replacement estimated at 60 seconds. Any injected thermal
// fault leaves with the old pack.
func (b *Battery) Swap() {
	fresh := DefaultBattery()
	fresh.NominalVoltage = b.NominalVoltage
	fresh.BaseDrainPctPerS = b.BaseDrainPctPerS
	fresh.SpeedDrainFactor = b.SpeedDrainFactor
	*b = *fresh
}

// InjectThermalFault reproduces a thermal runaway event: the cell
// temperature jumps to tempC and the charge collapses to chargePct.
// The fault is persistent — the damaged pack keeps generating internal
// heat, so the ambient reference is raised to hold the temperature at
// tempC rather than letting it relax back to the environment.
func (b *Battery) InjectThermalFault(tempC, chargePct float64) {
	b.TempC = tempC
	b.AmbientC = tempC - b.LoadHeatC
	if chargePct < b.ChargePct {
		b.ChargePct = chargePct
	}
}
