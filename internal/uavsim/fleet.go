package uavsim

import (
	"errors"

	"sesame/internal/geo"
)

// This file is the struct-of-arrays fleet store and the split step API
// behind cell-sharded ticking. The per-tick physics reads and writes —
// position, altitude, speed, heading, flight mode, commanded altitude,
// battery pack — live in parallel slices indexed by each vehicle's
// dense fleet index, so a tick walks contiguous memory instead of
// pointer-chasing per-UAV structs. Cold state (waypoint lists, sensors,
// rotor flags, config) stays on the UAV struct.

// fleet holds the hot per-vehicle state as parallel slices. Slot i
// belongs to the i-th vehicle added to the world (UAV.idx).
type fleet struct {
	pos    []geo.ENU
	altM   []float64
	speed  []float64
	head   []float64
	mode   []FlightMode
	wpAltM []float64
	// cruise, climb and minSpd are the per-vehicle kinematic parameters
	// — heterogeneous fleets mix airframes, so the step kernel reads
	// them from the store instead of chasing each vehicle's config.
	// minSpd is the fixed-wing stall floor; 0 marks a hover-capable
	// airframe and selects the multirotor dynamics everywhere.
	cruise []float64
	climb  []float64
	minSpd []float64
	// batt stores the battery packs contiguously; each UAV.Battery
	// points into this slice and AddUAV re-pins the pointers whenever
	// an append reallocates the backing array.
	batt []Battery
}

// setMode routes every flight-mode write through one place so the
// world's airborne counter stays exact. The counter is atomic because
// cell-sharded physics may crash vehicles concurrently; increments and
// decrements commute, so the final count does not depend on the cell
// schedule.
func (u *UAV) setMode(m FlightMode) {
	old := u.world.fleet.mode[u.idx]
	if old == m {
		return
	}
	u.world.fleet.mode[u.idx] = m
	if wasAir, isAir := old.Airborne(), m.Airborne(); wasAir != isAir {
		if isAir {
			u.world.airborne.Add(1)
		} else {
			u.world.airborne.Add(-1)
		}
	}
}

// AirborneCount returns how many vehicles are currently in an airborne
// flight mode. It is maintained incrementally by the mode setter, so
// fleet-wide availability checks are O(1) instead of a scan.
func (w *World) AirborneCount() int { return int(w.airborne.Load()) }

// FleetSize returns the number of vehicles in the world.
func (w *World) FleetSize() int { return len(w.seq) }

// BeginStep opens a world step of dt seconds: clock events, due fault
// injection and the gust draw all run serially here, exactly as the
// head of the monolithic Step does. The returned now is the step's end
// time, to be passed to FinishStep after the vehicles have advanced.
func (w *World) BeginStep(dt float64) (float64, error) {
	if dt <= 0 {
		return 0, errors.New("uavsim: non-positive dt")
	}
	now := w.Clock.Now() + dt
	// Run any clock events scheduled before now (keeps user callbacks
	// in sync with vehicle stepping).
	w.Clock.RunUntil(now)

	for len(w.faults) > 0 && w.faults[0].At <= now {
		f := w.faults[0]
		w.faults = w.faults[1:]
		f.Apply(w.uavs[f.UAV])
	}
	w.stepGust(dt)
	return now, nil
}

// StepRange advances vehicles [lo, hi) of the sorted fleet order by dt
// seconds. Disjoint ranges may run concurrently between BeginStep and
// FinishStep: a vehicle's step touches only its own fleet slots, its
// own battery/GPS (each GPS draws from its own per-vehicle stream) and
// read-only shared inputs (wind, the projection), and the airborne
// counter it may bump is atomic. The per-vehicle outputs are therefore
// bit-identical however the ranges are scheduled.
func (w *World) StepRange(lo, hi int, dt float64) {
	for _, u := range w.seq[lo:hi] {
		u.step(dt)
	}
}

// FinishStep closes a world step: telemetry publishes serially in
// fleet order, preserving the bus delivery order downstream observers
// (IDS, staleness caches) depend on.
func (w *World) FinishStep(now float64) {
	w.publishTelemetry(now)
}
