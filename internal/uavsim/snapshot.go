package uavsim

import (
	"fmt"

	"sesame/internal/geo"
	"sesame/internal/simclock"
)

// This file is the world half of the flight-recorder checkpoint
// contract (internal/flightrec): every mutable field that influences
// future simulation — vehicle kinematics, battery/sensor state, the
// gust process, RNG stream positions — exports into plain data and
// restores bit-identically. Closures (fault Apply funcs, guidance
// overrides) are deliberately excluded: restore rebuilds the scenario
// first and overlays this state on top.

// BatteryState' counterpart for checkpointing: the full pack model
// including the unexported last-drain telemetry value.
type BatterySnapshot struct {
	ChargePct           float64 `json:"charge_pct"`
	TempC               float64 `json:"temp_c"`
	NominalVoltage      float64 `json:"nominal_voltage"`
	BaseDrainPctPerS    float64 `json:"base_drain_pct_per_s"`
	SpeedDrainFactor    float64 `json:"speed_drain_factor"`
	AmbientC            float64 `json:"ambient_c"`
	LoadHeatC           float64 `json:"load_heat_c"`
	ThermalTauS         float64 `json:"thermal_tau_s"`
	OverheatThresholdC  float64 `json:"overheat_threshold_c"`
	OverheatDrainFactor float64 `json:"overheat_drain_factor"`
	LastDrain           float64 `json:"last_drain"`
}

// Snapshot exports the pack state.
func (b *Battery) Snapshot() BatterySnapshot {
	return BatterySnapshot{
		ChargePct:           b.ChargePct,
		TempC:               b.TempC,
		NominalVoltage:      b.NominalVoltage,
		BaseDrainPctPerS:    b.BaseDrainPctPerS,
		SpeedDrainFactor:    b.SpeedDrainFactor,
		AmbientC:            b.AmbientC,
		LoadHeatC:           b.LoadHeatC,
		ThermalTauS:         b.ThermalTauS,
		OverheatThresholdC:  b.OverheatThresholdC,
		OverheatDrainFactor: b.OverheatDrainFactor,
		LastDrain:           b.lastDrain,
	}
}

// Restore overwrites the pack from a snapshot.
func (b *Battery) Restore(s BatterySnapshot) {
	b.ChargePct = s.ChargePct
	b.TempC = s.TempC
	b.NominalVoltage = s.NominalVoltage
	b.BaseDrainPctPerS = s.BaseDrainPctPerS
	b.SpeedDrainFactor = s.SpeedDrainFactor
	b.AmbientC = s.AmbientC
	b.LoadHeatC = s.LoadHeatC
	b.ThermalTauS = s.ThermalTauS
	b.OverheatThresholdC = s.OverheatThresholdC
	b.OverheatDrainFactor = s.OverheatDrainFactor
	b.lastDrain = s.LastDrain
}

// GPSSnapshot is the receiver's mutable state, including the
// attacker-controlled spoof offset victims cannot normally read.
type GPSSnapshot struct {
	Mode           GPSMode `json:"mode"`
	NoiseM         float64 `json:"noise_m"`
	DegradedNoiseM float64 `json:"degraded_noise_m"`
	SpoofOffset    geo.ENU `json:"spoof_offset"`
	SpoofDriftMS   float64 `json:"spoof_drift_ms"`
	SpoofBearingD  float64 `json:"spoof_bearing_d"`
}

// Snapshot exports the receiver state. The noise RNG is owned by the
// clock's "gps/<id>" stream and is checkpointed as a stream position.
func (g *GPS) Snapshot() GPSSnapshot {
	return GPSSnapshot{
		Mode:           g.Mode,
		NoiseM:         g.NoiseM,
		DegradedNoiseM: g.DegradedNoiseM,
		SpoofOffset:    g.spoofOffset,
		SpoofDriftMS:   g.SpoofDriftMS,
		SpoofBearingD:  g.SpoofBearingD,
	}
}

// Restore overwrites the receiver state from a snapshot.
func (g *GPS) Restore(s GPSSnapshot) {
	g.Mode = s.Mode
	g.NoiseM = s.NoiseM
	g.DegradedNoiseM = s.DegradedNoiseM
	g.spoofOffset = s.SpoofOffset
	g.SpoofDriftMS = s.SpoofDriftMS
	g.SpoofBearingD = s.SpoofBearingD
}

// UAVSnapshot is one vehicle's full mutable state. GuidanceOverride is
// a closure and is excluded: collaborative localization reinstalls it
// when its own controller state is restored.
type UAVSnapshot struct {
	ID              string          `json:"id"`
	Pos             geo.ENU         `json:"pos"`
	AltM            float64         `json:"alt_m"`
	SpeedMS         float64         `json:"speed_ms"`
	HeadingD        float64         `json:"heading_d"`
	Mode            FlightMode      `json:"mode"`
	Waypoints       []geo.ENU       `json:"waypoints"`
	WPAltM          float64         `json:"wp_alt_m"`
	Rotors          []bool          `json:"rotors"`
	Battery         BatterySnapshot `json:"battery"`
	GPS             GPSSnapshot     `json:"gps"`
	CameraOK        bool            `json:"camera_ok"`
	CameraBlurSigma float64         `json:"camera_blur_sigma"`
	CommsOK         bool            `json:"comms_ok"`
	CommsPacketLoss float64         `json:"comms_packet_loss"`
}

// Snapshot exports the vehicle's state.
func (u *UAV) Snapshot() UAVSnapshot {
	wps := make([]geo.ENU, len(u.wps))
	copy(wps, u.wps)
	rotors := make([]bool, len(u.rotors))
	copy(rotors, u.rotors)
	f := &u.world.fleet
	return UAVSnapshot{
		ID:              u.cfg.ID,
		Pos:             f.pos[u.idx],
		AltM:            f.altM[u.idx],
		SpeedMS:         f.speed[u.idx],
		HeadingD:        f.head[u.idx],
		Mode:            f.mode[u.idx],
		Waypoints:       wps,
		WPAltM:          f.wpAltM[u.idx],
		Rotors:          rotors,
		Battery:         u.Battery.Snapshot(),
		GPS:             u.GPS.Snapshot(),
		CameraOK:        u.Camera.OK,
		CameraBlurSigma: u.Camera.BlurSigma,
		CommsOK:         u.Comms.OK,
		CommsPacketLoss: u.Comms.PacketLoss,
	}
}

// RestoreSnapshot overwrites the vehicle's state. The rotor count must
// match the vehicle's configuration.
func (u *UAV) RestoreSnapshot(s UAVSnapshot) error {
	if s.ID != u.cfg.ID {
		return fmt.Errorf("uavsim: snapshot for %q applied to %q", s.ID, u.cfg.ID)
	}
	if len(s.Rotors) != len(u.rotors) {
		return fmt.Errorf("uavsim: %s: snapshot has %d rotors, vehicle has %d",
			u.cfg.ID, len(s.Rotors), len(u.rotors))
	}
	f := &u.world.fleet
	f.pos[u.idx] = s.Pos
	f.altM[u.idx] = s.AltM
	f.speed[u.idx] = s.SpeedMS
	f.head[u.idx] = s.HeadingD
	// Through the setter so the world's airborne count tracks the
	// restored mode.
	u.setMode(s.Mode)
	u.wps = append(u.wps[:0], s.Waypoints...)
	f.wpAltM[u.idx] = s.WPAltM
	copy(u.rotors, s.Rotors)
	u.Battery.Restore(s.Battery)
	u.GPS.Restore(s.GPS)
	u.Camera.OK = s.CameraOK
	u.Camera.BlurSigma = s.CameraBlurSigma
	u.Comms.OK = s.CommsOK
	u.Comms.PacketLoss = s.CommsPacketLoss
	return nil
}

// WorldSnapshot is the environment's full mutable state: simulation
// time, the wind/gust process, RNG stream positions, drop counters and
// every vehicle. The fault schedule is NOT serialized (Apply funcs are
// closures); RestoreSnapshot instead drops faults already injected by
// the checkpoint time, so a rebuilt schedule replays only the future.
type WorldSnapshot struct {
	Time           float64                `json:"time"`
	Seed           int64                  `json:"seed"`
	Wind           geo.ENU                `json:"wind"`
	Gust           geo.ENU                `json:"gust"`
	GustSigmaMS    float64                `json:"gust_sigma_ms"`
	GustTauS       float64                `json:"gust_tau_s"`
	TelemetryHz    float64                `json:"telemetry_hz"`
	TelemetryDrops uint64                 `json:"telemetry_drops"`
	Streams        []simclock.StreamState `json:"streams"`
	UAVs           []UAVSnapshot          `json:"uavs"`
}

// Snapshot exports the world state. The clock must be quiescent
// (no pending events): delayed-frame closures parked on the clock
// cannot be serialized, so checkpoints are only taken between ticks
// when nothing is in flight.
func (w *World) Snapshot() (WorldSnapshot, error) {
	if n := w.Clock.Pending(); n != 0 {
		return WorldSnapshot{}, fmt.Errorf("uavsim: snapshot with %d pending clock events", n)
	}
	s := WorldSnapshot{
		Time:           w.Clock.Now(),
		Seed:           w.Clock.Seed(),
		Wind:           w.Wind,
		Gust:           w.gust,
		GustSigmaMS:    w.GustSigmaMS,
		GustTauS:       w.GustTauS,
		TelemetryHz:    w.TelemetryHz,
		TelemetryDrops: w.telemetryDrops.Load(),
		Streams:        w.Clock.StreamStates(),
		UAVs:           make([]UAVSnapshot, 0, len(w.order)),
	}
	for _, id := range w.order {
		s.UAVs = append(s.UAVs, w.uavs[id].Snapshot())
	}
	return s, nil
}

// RestoreSnapshot overlays a checkpoint onto a freshly rebuilt world:
// the same fleet must already exist (same scenario builder, same seed).
// It restores RNG streams, jumps the clock, drops faults the original
// run had already injected, and overwrites each vehicle's state.
func (w *World) RestoreSnapshot(s WorldSnapshot) error {
	if s.Seed != w.Clock.Seed() {
		return fmt.Errorf("uavsim: snapshot seed %d != world seed %d", s.Seed, w.Clock.Seed())
	}
	if len(s.UAVs) != len(w.order) {
		return fmt.Errorf("uavsim: snapshot has %d UAVs, world has %d", len(s.UAVs), len(w.order))
	}
	if n := w.Clock.Pending(); n != 0 {
		return fmt.Errorf("uavsim: restore onto a clock with %d pending events", n)
	}
	for _, us := range s.UAVs {
		u, ok := w.uavs[us.ID]
		if !ok {
			return fmt.Errorf("uavsim: snapshot UAV %q not in world", us.ID)
		}
		if err := u.RestoreSnapshot(us); err != nil {
			return err
		}
	}
	w.Wind = s.Wind
	w.gust = s.Gust
	w.GustSigmaMS = s.GustSigmaMS
	w.GustTauS = s.GustTauS
	w.TelemetryHz = s.TelemetryHz
	w.telemetryDrops.Store(s.TelemetryDrops)
	w.Clock.RestoreStreams(s.Streams)
	w.Clock.SetNow(s.Time)
	// Faults at or before the checkpoint were already injected in the
	// recorded run; their effects live in the vehicle snapshots.
	w.DropFaultsThrough(s.Time)
	return nil
}

// DropFaultsThrough removes scheduled faults with At <= t. Faults are
// kept sorted by At, so this is a prefix cut.
func (w *World) DropFaultsThrough(t float64) int {
	n := 0
	for n < len(w.faults) && w.faults[n].At <= t {
		n++
	}
	w.faults = w.faults[n:]
	return n
}
