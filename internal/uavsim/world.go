package uavsim

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"sesame/internal/geo"
	"sesame/internal/rosbus"
	"sesame/internal/simclock"
)

// World owns the simulation: the clock, the rosbus, the local frame,
// the fleet, the wind field and the fault schedule.
type World struct {
	Clock *simclock.Clock
	Bus   *rosbus.Bus
	// Wind is the mean drift velocity applied to airborne vehicles.
	Wind geo.ENU
	// GustSigmaMS, when positive, adds a first-order Gauss–Markov gust
	// on top of Wind with the given standard deviation and
	// GustTauS correlation time (default 30 s).
	GustSigmaMS float64
	GustTauS    float64
	gust        geo.ENU

	proj *geo.Projection
	uavs map[string]*UAV
	// fleet is the struct-of-arrays hot-state store (fleet.go);
	// vehicles lists UAVs by fleet index (add order), seq by sorted id
	// (the deterministic step order mirrored in order).
	fleet    fleet
	vehicles []*UAV
	seq      []*UAV
	order    []string // deterministic step order
	faults   []Fault
	// airborne counts vehicles in airborne modes; maintained by the
	// mode setter (atomic: sharded physics may crash vehicles
	// concurrently).
	airborne atomic.Int64

	pubs map[string]map[string]*rosbus.Publisher // uav -> topic -> pub

	// TelemetryHz is how often telemetry publishes per simulated second
	// when stepping with StepTelemetry (default 1 Hz).
	TelemetryHz float64

	telemetryDrops atomic.Uint64
}

// DropCounters tallies world-side data losses, mirroring the platform's
// DropCounters: nothing fails silently.
type DropCounters struct {
	// TelemetryPublish counts telemetry messages the bus (or the link
	// layer between vehicle and GCS) refused.
	TelemetryPublish uint64 `json:"telemetry_publish"`
}

// Drops returns a snapshot of the world's drop counters.
func (w *World) Drops() DropCounters {
	return DropCounters{TelemetryPublish: w.telemetryDrops.Load()}
}

// NewWorld creates a world whose local frame is centred at origin.
func NewWorld(origin geo.LatLng, seed int64) *World {
	return &World{
		Clock:       simclock.New(seed),
		Bus:         rosbus.NewBus(),
		proj:        geo.NewProjection(origin),
		uavs:        make(map[string]*UAV),
		pubs:        make(map[string]map[string]*rosbus.Publisher),
		TelemetryHz: 1,
	}
}

// Projection exposes the world's geodetic<->ENU projection.
func (w *World) Projection() *geo.Projection { return w.proj }

// AddUAV creates a vehicle at its home point.
func (w *World) AddUAV(cfg UAVConfig) (*UAV, error) {
	if cfg.ID == "" {
		return nil, errors.New("uavsim: empty UAV id")
	}
	if _, dup := w.uavs[cfg.ID]; dup {
		return nil, fmt.Errorf("uavsim: duplicate UAV id %q", cfg.ID)
	}
	if !cfg.Home.Valid() {
		return nil, fmt.Errorf("uavsim: invalid home for %q", cfg.ID)
	}
	switch cfg.Kind {
	case "", KindMultirotor:
		cfg.Kind = KindMultirotor
		cfg.MinSpeedMS = 0
		if cfg.CruiseSpeedMS <= 0 {
			cfg.CruiseSpeedMS = 10
		}
		if cfg.ClimbRateMS <= 0 {
			cfg.ClimbRateMS = 3
		}
		if cfg.Rotors <= 0 {
			cfg.Rotors = 4
		}
	case KindFixedWing:
		if cfg.CruiseSpeedMS <= 0 {
			cfg.CruiseSpeedMS = 18
		}
		if cfg.ClimbRateMS <= 0 {
			cfg.ClimbRateMS = 2.5
		}
		if cfg.MinSpeedMS <= 0 {
			cfg.MinSpeedMS = 0.6 * cfg.CruiseSpeedMS
		}
		if cfg.MinSpeedMS > cfg.CruiseSpeedMS {
			return nil, fmt.Errorf("uavsim: %s: stall floor %.1f m/s above cruise %.1f m/s",
				cfg.ID, cfg.MinSpeedMS, cfg.CruiseSpeedMS)
		}
		if cfg.TurnRateDegS <= 0 {
			cfg.TurnRateDegS = 15
		}
		if cfg.Rotors <= 0 {
			cfg.Rotors = 1
		}
	default:
		return nil, fmt.Errorf("uavsim: %s: unknown vehicle kind %q", cfg.ID, cfg.Kind)
	}
	batt := cfg.Battery
	if batt == nil {
		batt = DefaultBattery()
	}
	u := &UAV{
		cfg:    cfg,
		idx:    len(w.vehicles),
		GPS:    NewGPS(w.Clock.Stream("gps/" + cfg.ID)),
		Camera: NewCamera(),
		Comms:  NewComms(),
		rotors: make([]bool, cfg.Rotors),
		world:  w,
	}
	w.fleet.pos = append(w.fleet.pos, w.proj.ToENU(cfg.Home))
	w.fleet.altM = append(w.fleet.altM, 0)
	w.fleet.speed = append(w.fleet.speed, 0)
	w.fleet.head = append(w.fleet.head, 0)
	w.fleet.mode = append(w.fleet.mode, ModeIdle)
	w.fleet.wpAltM = append(w.fleet.wpAltM, 0)
	w.fleet.cruise = append(w.fleet.cruise, cfg.CruiseSpeedMS)
	w.fleet.climb = append(w.fleet.climb, cfg.ClimbRateMS)
	w.fleet.minSpd = append(w.fleet.minSpd, cfg.MinSpeedMS)
	battCap := cap(w.fleet.batt)
	w.fleet.batt = append(w.fleet.batt, *batt)
	w.vehicles = append(w.vehicles, u)
	if cap(w.fleet.batt) != battCap {
		// The append moved the contiguous pack store: re-pin every
		// vehicle's Battery pointer to its new slot.
		for j, v := range w.vehicles {
			v.Battery = &w.fleet.batt[j]
		}
	} else {
		u.Battery = &w.fleet.batt[u.idx]
	}
	w.uavs[cfg.ID] = u
	// Fleets are normally built in ascending id order; appending keeps
	// that O(1). Out-of-order adds fall back to a resort.
	if n := len(w.order); n == 0 || cfg.ID > w.order[n-1] {
		w.order = append(w.order, cfg.ID)
		w.seq = append(w.seq, u)
	} else {
		w.order = append(w.order, cfg.ID)
		sort.Strings(w.order)
		w.seq = w.seq[:0]
		for _, id := range w.order {
			w.seq = append(w.seq, w.uavs[id])
		}
	}

	topics := map[string]string{
		"gps":     gpsTopic(cfg.ID),
		"battery": batteryTopic(cfg.ID),
		"health":  healthTopic(cfg.ID),
		"status":  statusTopic(cfg.ID),
	}
	w.pubs[cfg.ID] = make(map[string]*rosbus.Publisher, len(topics))
	for key, topic := range topics {
		pub, err := w.Bus.Advertise(topic, cfg.ID)
		if err != nil {
			return nil, err
		}
		w.pubs[cfg.ID][key] = pub
	}
	return u, nil
}

// UAV returns the vehicle with the given id.
func (w *World) UAV(id string) (*UAV, error) {
	u, ok := w.uavs[id]
	if !ok {
		return nil, fmt.Errorf("uavsim: unknown UAV %q", id)
	}
	return u, nil
}

// UAVs returns the fleet in deterministic id order.
func (w *World) UAVs() []*UAV {
	out := make([]*UAV, len(w.seq))
	copy(out, w.seq)
	return out
}

// Fault is a scheduled fault injection.
type Fault struct {
	At    float64 // simulation time, seconds
	UAV   string
	Apply func(u *UAV)
	// Name describes the fault for logs.
	Name string
}

// ScheduleFault queues a fault for injection at its At time.
func (w *World) ScheduleFault(f Fault) error {
	if f.Apply == nil {
		return errors.New("uavsim: fault without Apply")
	}
	if _, ok := w.uavs[f.UAV]; !ok {
		return fmt.Errorf("uavsim: fault targets unknown UAV %q", f.UAV)
	}
	w.faults = append(w.faults, f)
	sort.SliceStable(w.faults, func(i, j int) bool { return w.faults[i].At < w.faults[j].At })
	return nil
}

// BatteryCollapseFault reproduces the §V-A event: at time at, the
// battery temperature spikes and charge collapses to chargePct.
func BatteryCollapseFault(at float64, uav string, tempC, chargePct float64) Fault {
	return Fault{
		At:   at,
		UAV:  uav,
		Name: fmt.Sprintf("battery-collapse(%.0f%%@%.0fC)", chargePct, tempC),
		Apply: func(u *UAV) {
			u.Battery.InjectThermalFault(tempC, chargePct)
		},
	}
}

// GPSSpoofFault starts a spoofing attack drifting the victim's believed
// position along bearingDeg at driftMS m/s.
func GPSSpoofFault(at float64, uav string, bearingDeg, driftMS float64) Fault {
	return Fault{
		At:   at,
		UAV:  uav,
		Name: "gps-spoof",
		Apply: func(u *UAV) {
			u.GPS.StartSpoof(bearingDeg, driftMS)
		},
	}
}

// RotorFailureFault fails rotor idx at time at.
func RotorFailureFault(at float64, uav string, idx int) Fault {
	return Fault{
		At:   at,
		UAV:  uav,
		Name: fmt.Sprintf("rotor-%d-failure", idx),
		Apply: func(u *UAV) {
			_ = u.FailRotor(idx)
		},
	}
}

// CommsFailureFault severs the C2 link at time at.
func CommsFailureFault(at float64, uav string) Fault {
	return Fault{
		At:   at,
		UAV:  uav,
		Name: "comms-failure",
		Apply: func(u *UAV) {
			u.Comms.OK = false
		},
	}
}

// CameraFailureFault fails the camera at time at.
func CameraFailureFault(at float64, uav string) Fault {
	return Fault{
		At:   at,
		UAV:  uav,
		Name: "camera-failure",
		Apply: func(u *UAV) {
			u.Camera.Fail()
		},
	}
}

// Step advances the whole world by dt seconds: injects due faults,
// steps every vehicle in id order, then publishes telemetry. It is the
// serial composition of the BeginStep / StepRange / FinishStep phases
// a cell-sharded caller drives itself.
func (w *World) Step(dt float64) error {
	now, err := w.BeginStep(dt)
	if err != nil {
		return err
	}
	w.StepRange(0, len(w.seq), dt)
	w.FinishStep(now)
	return nil
}

// Run advances the world to time end in dt increments.
func (w *World) Run(end, dt float64) error {
	for w.Clock.Now() < end {
		step := dt
		if rem := end - w.Clock.Now(); rem < step {
			step = rem
		}
		if err := w.Step(step); err != nil {
			return err
		}
	}
	return nil
}

// stepGust advances the Gauss–Markov gust process: exponential decay
// toward zero plus white driving noise, giving realistically
// correlated turbulence around the mean wind.
func (w *World) stepGust(dt float64) {
	if w.GustSigmaMS <= 0 {
		w.gust = geo.ENU{}
		return
	}
	tau := w.GustTauS
	if tau <= 0 {
		tau = 30
	}
	rng := w.Clock.Stream("world/gust")
	decay := math.Exp(-dt / tau)
	// Discrete Gauss–Markov driving noise keeps the stationary
	// standard deviation at GustSigmaMS.
	drive := w.GustSigmaMS * math.Sqrt(1-decay*decay)
	w.gust.East = w.gust.East*decay + drive*rng.NormFloat64()
	w.gust.North = w.gust.North*decay + drive*rng.NormFloat64()
}

// CurrentWind returns the instantaneous wind (mean + gust).
func (w *World) CurrentWind() geo.ENU { return w.Wind.Add(w.gust) }

func (w *World) publishTelemetry(now float64) {
	for _, u := range w.seq {
		id := u.cfg.ID
		pubs := w.pubs[id]

		// A severed C2 link (jamming) carries no telemetry: downstream
		// observers see the topics go silent, which is exactly the
		// signature the IDS link-silence rule detects.
		if !u.Comms.OK {
			continue
		}

		// Status (IMU/odometry-grade) goes out before the GPS fix so
		// consumers correlating the two streams see same-tick data.
		w.countPublish(pubs["status"].Publish(now, StatusReport{
			UAV:       id,
			Mode:      u.Mode(),
			Position:  u.TruePosition(),
			AltitudeM: u.AltitudeM(),
			SpeedMS:   u.SpeedMS(),
			HeadingD:  u.HeadingDeg(),
			Waypoints: len(u.wps),
			Stamp:     now,
		}))
		// A lost fix is still published, with Quality=GPSLost, so
		// downstream monitors observe the dropout.
		fix, _ := u.GPS.Fix(u.TruePosition(), u.AltitudeM(), id, now)
		w.countPublish(pubs["gps"].Publish(now, fix))
		w.countPublish(pubs["battery"].Publish(now, u.Battery.State(id, now)))
		w.countPublish(pubs["health"].Publish(now, HealthState{
			UAV:          id,
			Rotors:       u.RotorStates(),
			FailedRotors: u.FailedRotors(),
			CameraOK:     u.Camera.OK,
			CommsOK:      u.Comms.OK,
			Stamp:        now,
		}))
	}
}

// countPublish records a refused telemetry publish instead of
// discarding the error.
func (w *World) countPublish(err error) {
	if err != nil {
		w.telemetryDrops.Add(1)
	}
}
