// Package uavsim is the multirotor UAV and world simulator that
// substitutes for the paper's DJI Matrice 300 RTK hardware and
// Gazebo/DJI Assistant 2 test environments. It produces the telemetry
// streams the SESAME EDDI technologies consume — GPS fixes, battery
// state, rotor health, camera health — over the rosbus middleware, and
// supports scheduled fault injection to reproduce the paper's
// evaluation scenarios (battery collapse at t=250 s, GPS spoofing
// during area mapping).
package uavsim

import (
	"fmt"

	"sesame/internal/geo"
)

// FlightMode is the UAV's current control regime.
type FlightMode int

// Flight modes, mirroring the ConSert action space of Fig. 1.
const (
	ModeIdle FlightMode = iota
	ModeMission
	ModeHold
	ModeReturnToBase
	ModeLanding
	ModeEmergencyLanding
	ModeLanded
	ModeCrashed
)

var modeNames = map[FlightMode]string{
	ModeIdle:             "idle",
	ModeMission:          "mission",
	ModeHold:             "hold",
	ModeReturnToBase:     "return-to-base",
	ModeLanding:          "landing",
	ModeEmergencyLanding: "emergency-landing",
	ModeLanded:           "landed",
	ModeCrashed:          "crashed",
}

func (m FlightMode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("FlightMode(%d)", int(m))
}

// Airborne reports whether the mode implies the vehicle is in the air.
func (m FlightMode) Airborne() bool {
	switch m {
	case ModeMission, ModeHold, ModeReturnToBase, ModeLanding, ModeEmergencyLanding:
		return true
	default:
		return false
	}
}

// GPSQuality grades a GPS fix, the quality factor the GPS-localization
// ConSert consumes.
type GPSQuality int

// GPS quality levels.
const (
	GPSLost GPSQuality = iota
	GPSDegraded
	GPSNominal
	GPSRTK // centimetre-grade, the Matrice 300 RTK's nominal state
)

func (q GPSQuality) String() string {
	switch q {
	case GPSLost:
		return "lost"
	case GPSDegraded:
		return "degraded"
	case GPSNominal:
		return "nominal"
	case GPSRTK:
		return "rtk"
	default:
		return fmt.Sprintf("GPSQuality(%d)", int(q))
	}
}

// GPSFix is the payload published on the gps topic.
type GPSFix struct {
	UAV        string
	Position   geo.LatLng
	AltitudeM  float64
	Quality    GPSQuality
	Satellites int
	Stamp      float64
}

// BatteryState is the payload published on the battery topic.
type BatteryState struct {
	UAV          string
	ChargePct    float64 // 0..100
	TempC        float64
	Voltage      float64
	Overheating  bool
	Stamp        float64
	DrainPctPerS float64
}

// RotorState describes one rotor.
type RotorState struct {
	Index  int
	Failed bool
}

// HealthState is the payload published on the health topic: everything
// SafeDrones monitors beyond the battery.
type HealthState struct {
	UAV          string
	Rotors       []RotorState
	FailedRotors int
	CameraOK     bool
	CommsOK      bool
	Stamp        float64
}

// StatusReport is the payload published on the status topic.
type StatusReport struct {
	UAV       string
	Mode      FlightMode
	Position  geo.LatLng // ground-truth position (telemetry downlink)
	AltitudeM float64
	SpeedMS   float64
	HeadingD  float64
	Waypoints int // remaining
	Stamp     float64
}

// Topic names. The per-UAV topics embed the UAV id, mirroring the ROS
// namespace layout of Fig. 3.
func gpsTopic(uav string) string     { return "/uav/" + uav + "/gps" }
func batteryTopic(uav string) string { return "/uav/" + uav + "/battery" }
func healthTopic(uav string) string  { return "/uav/" + uav + "/health" }
func statusTopic(uav string) string  { return "/uav/" + uav + "/status" }

// GPSTopic returns the rosbus topic carrying GPSFix messages for uav.
func GPSTopic(uav string) string { return gpsTopic(uav) }

// BatteryTopic returns the rosbus topic carrying BatteryState messages.
func BatteryTopic(uav string) string { return batteryTopic(uav) }

// HealthTopic returns the rosbus topic carrying HealthState messages.
func HealthTopic(uav string) string { return healthTopic(uav) }

// StatusTopic returns the rosbus topic carrying StatusReport messages.
func StatusTopic(uav string) string { return statusTopic(uav) }
