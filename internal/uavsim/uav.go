package uavsim

import (
	"errors"
	"fmt"
	"math"

	"sesame/internal/geo"
)

// UAVConfig parameterizes a vehicle.
type UAVConfig struct {
	ID string
	// Home is the launch/return point.
	Home geo.LatLng
	// CruiseSpeedMS is the horizontal mission speed.
	CruiseSpeedMS float64
	// ClimbRateMS is the vertical speed for altitude changes.
	ClimbRateMS float64
	// Rotors is the motor count (quad=4, hex=6; the M300 is a quad).
	Rotors int
	// Battery overrides the default pack when non-nil.
	Battery *Battery
}

// UAV is one simulated vehicle. It is owned and stepped by a World.
type UAV struct {
	cfg    UAVConfig
	pos    geo.ENU // true position in the world frame
	altM   float64
	speed  float64 // current ground speed
	head   float64 // heading, degrees from north
	mode   FlightMode
	wps    []geo.ENU // remaining waypoints (world frame)
	wpAltM float64   // target altitude

	Battery *Battery
	GPS     *GPS
	Camera  *Camera
	Comms   *Comms
	rotors  []bool // true = failed

	// GuidanceOverride, when non-nil, supplies externally computed
	// velocity commands (used by Collaborative Localization to steer a
	// GPS-denied vehicle). It receives the UAV and dt and returns the
	// desired ENU velocity in m/s.
	GuidanceOverride func(u *UAV, dt float64) geo.ENU

	world *World
}

// ID returns the vehicle id.
func (u *UAV) ID() string { return u.cfg.ID }

// Mode returns the current flight mode.
func (u *UAV) Mode() FlightMode { return u.mode }

// TruePosition returns the ground-truth geodetic position.
func (u *UAV) TruePosition() geo.LatLng { return u.world.proj.ToLatLng(u.pos) }

// TrueENU returns the ground-truth position in the world frame.
func (u *UAV) TrueENU() geo.ENU { return u.pos }

// AltitudeM returns the true altitude above ground in metres.
func (u *UAV) AltitudeM() float64 { return u.altM }

// SpeedMS returns the current ground speed.
func (u *UAV) SpeedMS() float64 { return u.speed }

// HeadingDeg returns the current heading.
func (u *UAV) HeadingDeg() float64 { return u.head }

// Home returns the configured home point.
func (u *UAV) Home() geo.LatLng { return u.cfg.Home }

// RemainingWaypoints returns how many mission waypoints are left.
func (u *UAV) RemainingWaypoints() int { return len(u.wps) }

// RemainingPath returns the geodetic waypoints not yet reached, in
// flight order — what the Task Manager redistributes when this vehicle
// leaves the mission.
func (u *UAV) RemainingPath() []geo.LatLng {
	out := make([]geo.LatLng, len(u.wps))
	for i, wp := range u.wps {
		out[i] = u.world.proj.ToLatLng(wp)
	}
	return out
}

// FailedRotors returns the count of failed rotors.
func (u *UAV) FailedRotors() int {
	n := 0
	for _, f := range u.rotors {
		if f {
			n++
		}
	}
	return n
}

// RotorStates snapshots rotor health.
func (u *UAV) RotorStates() []RotorState {
	out := make([]RotorState, len(u.rotors))
	for i, f := range u.rotors {
		out[i] = RotorState{Index: i, Failed: f}
	}
	return out
}

// FailRotor marks rotor i failed. A quadrotor with any failed rotor, or
// a hexrotor with more than two, loses controllability and crashes if
// airborne.
func (u *UAV) FailRotor(i int) error {
	if i < 0 || i >= len(u.rotors) {
		return fmt.Errorf("uavsim: rotor %d out of range", i)
	}
	u.rotors[i] = true
	if !u.controllable() && u.mode.Airborne() {
		u.mode = ModeCrashed
		u.speed = 0
	}
	return nil
}

// controllable reports whether enough rotors remain for stable flight:
// quadrotors need all 4, hexrotors tolerate up to 2 opposite failures
// (simplified to "at most 2").
func (u *UAV) controllable() bool {
	failed := u.FailedRotors()
	switch {
	case len(u.rotors) <= 4:
		return failed == 0
	default:
		return failed <= 2
	}
}

// --- Commands ---

// TakeOff transitions from idle/landed to a hold at altM metres.
func (u *UAV) TakeOff(altM float64) error {
	if u.mode != ModeIdle && u.mode != ModeLanded {
		return fmt.Errorf("uavsim: %s cannot take off in mode %v", u.cfg.ID, u.mode)
	}
	if !u.controllable() {
		return fmt.Errorf("uavsim: %s is not controllable", u.cfg.ID)
	}
	if altM <= 0 {
		return errors.New("uavsim: takeoff altitude must be positive")
	}
	u.mode = ModeHold
	u.wpAltM = altM
	return nil
}

// FlyMission sets the waypoint list (geodetic) and switches to mission
// mode at the given altitude.
func (u *UAV) FlyMission(waypoints []geo.LatLng, altM float64) error {
	if len(waypoints) == 0 {
		return errors.New("uavsim: empty waypoint list")
	}
	if !u.mode.Airborne() {
		return fmt.Errorf("uavsim: %s must be airborne to fly a mission (mode %v)", u.cfg.ID, u.mode)
	}
	u.wps = u.wps[:0]
	for _, wp := range waypoints {
		u.wps = append(u.wps, u.world.proj.ToENU(wp))
	}
	u.wpAltM = altM
	u.mode = ModeMission
	return nil
}

// SetAltitude retargets the commanded altitude without changing mode.
func (u *UAV) SetAltitude(altM float64) error {
	if altM <= 0 {
		return errors.New("uavsim: altitude must be positive")
	}
	u.wpAltM = altM
	return nil
}

// Hold freezes the vehicle at its current position.
func (u *UAV) Hold() {
	if u.mode.Airborne() {
		u.mode = ModeHold
		u.wps = u.wps[:0]
	}
}

// ReturnToBase flies home and lands.
func (u *UAV) ReturnToBase() {
	if !u.mode.Airborne() {
		return
	}
	u.wps = u.wps[:0]
	u.wps = append(u.wps, u.world.proj.ToENU(u.cfg.Home))
	u.mode = ModeReturnToBase
}

// Land descends in place.
func (u *UAV) Land() {
	if u.mode.Airborne() {
		u.mode = ModeLanding
		u.wps = u.wps[:0]
	}
}

// EmergencyLand descends immediately at double climb rate.
func (u *UAV) EmergencyLand() {
	if u.mode.Airborne() {
		u.mode = ModeEmergencyLanding
		u.wps = u.wps[:0]
	}
}

// --- Dynamics ---

// waypointCaptureM is the horizontal capture radius.
const waypointCaptureM = 1.5

// step advances the vehicle by dt seconds.
func (u *UAV) step(dt float64) {
	if u.mode == ModeCrashed {
		return
	}
	if u.Battery.Depleted() && u.mode.Airborne() {
		u.mode = ModeCrashed
		u.speed = 0
		return
	}

	var vel geo.ENU
	climb := 0.0

	if u.GuidanceOverride != nil && u.mode.Airborne() {
		vel = u.GuidanceOverride(u, dt)
		if n := vel.Norm(); n > u.cfg.CruiseSpeedMS && n > 0 {
			vel = vel.Scale(u.cfg.CruiseSpeedMS / n)
		}
	} else {
		switch u.mode {
		case ModeMission, ModeReturnToBase:
			vel = u.seekWaypoint(dt)
		case ModeHold:
			// hover
		case ModeLanding:
			climb = -u.cfg.ClimbRateMS
		case ModeEmergencyLanding:
			climb = -2 * u.cfg.ClimbRateMS
		}
	}

	// Altitude tracking for non-landing airborne modes.
	if u.mode == ModeMission || u.mode == ModeHold || u.mode == ModeReturnToBase {
		dAlt := u.wpAltM - u.altM
		maxStep := u.cfg.ClimbRateMS * dt
		if math.Abs(dAlt) <= maxStep {
			u.altM = u.wpAltM
		} else if dAlt > 0 {
			u.altM += maxStep
		} else {
			u.altM -= maxStep
		}
	} else if climb != 0 {
		u.altM += climb * dt
		if u.altM <= 0 {
			u.altM = 0
			u.mode = ModeLanded
			u.speed = 0
		}
	}

	// Wind (mean + gust) drifts the true track.
	if u.mode.Airborne() {
		vel = vel.Add(u.world.CurrentWind())
	}
	u.pos = u.pos.Add(vel.Scale(dt))
	u.speed = vel.Norm()
	if u.speed > 0.01 {
		u.head = math.Mod(math.Atan2(vel.East, vel.North)*180/math.Pi+360, 360)
	}

	u.Battery.Step(dt, u.speed, u.mode.Airborne())
	u.GPS.Step(dt)
}

// seekWaypoint returns the velocity toward the current waypoint,
// consuming it on capture. Navigation uses the position the vehicle
// BELIEVES it has: under GPS spoofing the believed position is the
// spoofed one, so the true track deviates — exactly the Fig. 6 effect.
func (u *UAV) seekWaypoint(dt float64) geo.ENU {
	for len(u.wps) > 0 {
		believed := u.believedENU()
		d := u.wps[0].Sub(believed)
		if d.Norm() <= waypointCaptureM {
			u.wps = u.wps[1:]
			continue
		}
		maxTravel := u.cfg.CruiseSpeedMS * dt
		if d.Norm() <= maxTravel {
			return d.Scale(1 / dt)
		}
		return d.Scale(u.cfg.CruiseSpeedMS / d.Norm())
	}
	// Mission complete.
	switch u.mode {
	case ModeMission:
		u.mode = ModeHold
	case ModeReturnToBase:
		u.mode = ModeLanding
	}
	return geo.ENU{}
}

// believedENU returns the position the navigation stack believes,
// i.e. the GPS measurement (true position plus spoof offset) in the
// world frame; during dropout it degrades to the true position (inertial
// drift is neglected over the short horizons simulated here).
func (u *UAV) believedENU() geo.ENU {
	fix, ok := u.GPS.Fix(u.TruePosition(), u.altM, u.cfg.ID, 0)
	if !ok {
		return u.pos
	}
	return u.world.proj.ToENU(fix.Position)
}
