package uavsim

import (
	"errors"
	"fmt"
	"math"

	"sesame/internal/geo"
)

// VehicleKind selects the airframe dynamics model.
type VehicleKind string

const (
	// KindMultirotor is the hover-capable default (the paper's M300).
	KindMultirotor VehicleKind = "multirotor"
	// KindFixedWing models a fixed-wing survey aircraft: it cannot
	// hover, so it must keep at least MinSpeedMS of airspeed, loiters in
	// Hold mode instead of hovering, and lands on a moving approach.
	KindFixedWing VehicleKind = "fixed_wing"
)

// UAVConfig parameterizes a vehicle.
type UAVConfig struct {
	ID string
	// Home is the launch/return point.
	Home geo.LatLng
	// Kind selects the airframe model; empty means KindMultirotor, which
	// keeps every pre-heterogeneous fleet bit-identical.
	Kind VehicleKind
	// CruiseSpeedMS is the horizontal mission speed.
	CruiseSpeedMS float64
	// ClimbRateMS is the vertical speed for altitude changes.
	ClimbRateMS float64
	// MinSpeedMS is the fixed-wing stall floor: the vehicle never flies
	// slower while airborne (default 60% of cruise). Ignored (zero) for
	// multirotors.
	MinSpeedMS float64
	// TurnRateDegS bounds the fixed-wing loiter turn rate (default 15).
	TurnRateDegS float64
	// Rotors is the motor count (quad=4, hex=6; the M300 is a quad; a
	// fixed-wing defaults to a single pusher prop).
	Rotors int
	// Battery overrides the default pack when non-nil. The pack is
	// copied into the world's contiguous battery store; mutate it via
	// UAV.Battery afterwards, not through the pointer passed here.
	Battery *Battery
}

// UAV is one simulated vehicle. It is owned and stepped by a World.
// Its hot kinematic state (position, altitude, speed, heading, mode,
// commanded altitude, battery) lives in the world's struct-of-arrays
// fleet store at index idx; the accessors below read through to it.
type UAV struct {
	cfg UAVConfig
	// idx is the vehicle's dense index into world.fleet.
	idx int
	wps []geo.ENU // remaining waypoints (world frame)

	// Battery points into the world's contiguous pack store
	// (world.fleet.batt); AddUAV re-pins it after fleet growth.
	Battery *Battery
	GPS     *GPS
	Camera  *Camera
	Comms   *Comms
	rotors  []bool // true = failed

	// GuidanceOverride, when non-nil, supplies externally computed
	// velocity commands (used by Collaborative Localization to steer a
	// GPS-denied vehicle). It receives the UAV and dt and returns the
	// desired ENU velocity in m/s.
	GuidanceOverride func(u *UAV, dt float64) geo.ENU

	world *World
}

// ID returns the vehicle id.
func (u *UAV) ID() string { return u.cfg.ID }

// Kind returns the airframe kind.
func (u *UAV) Kind() VehicleKind { return u.cfg.Kind }

// CruiseSpeedMS returns the configured mission speed (SoA slot).
func (u *UAV) CruiseSpeedMS() float64 { return u.world.fleet.cruise[u.idx] }

// MinSpeedMS returns the stall floor (0 for hover-capable airframes).
func (u *UAV) MinSpeedMS() float64 { return u.world.fleet.minSpd[u.idx] }

// Mode returns the current flight mode.
func (u *UAV) Mode() FlightMode { return u.world.fleet.mode[u.idx] }

// TruePosition returns the ground-truth geodetic position.
func (u *UAV) TruePosition() geo.LatLng {
	return u.world.proj.ToLatLng(u.world.fleet.pos[u.idx])
}

// TrueENU returns the ground-truth position in the world frame.
func (u *UAV) TrueENU() geo.ENU { return u.world.fleet.pos[u.idx] }

// AltitudeM returns the true altitude above ground in metres.
func (u *UAV) AltitudeM() float64 { return u.world.fleet.altM[u.idx] }

// SpeedMS returns the current ground speed.
func (u *UAV) SpeedMS() float64 { return u.world.fleet.speed[u.idx] }

// HeadingDeg returns the current heading.
func (u *UAV) HeadingDeg() float64 { return u.world.fleet.head[u.idx] }

// Home returns the configured home point.
func (u *UAV) Home() geo.LatLng { return u.cfg.Home }

// RemainingWaypoints returns how many mission waypoints are left.
func (u *UAV) RemainingWaypoints() int { return len(u.wps) }

// RemainingPath returns the geodetic waypoints not yet reached, in
// flight order — what the Task Manager redistributes when this vehicle
// leaves the mission.
func (u *UAV) RemainingPath() []geo.LatLng {
	out := make([]geo.LatLng, len(u.wps))
	for i, wp := range u.wps {
		out[i] = u.world.proj.ToLatLng(wp)
	}
	return out
}

// FailedRotors returns the count of failed rotors.
func (u *UAV) FailedRotors() int {
	n := 0
	for _, f := range u.rotors {
		if f {
			n++
		}
	}
	return n
}

// RotorStates snapshots rotor health.
func (u *UAV) RotorStates() []RotorState {
	out := make([]RotorState, len(u.rotors))
	for i, f := range u.rotors {
		out[i] = RotorState{Index: i, Failed: f}
	}
	return out
}

// FailRotor marks rotor i failed. A quadrotor with any failed rotor, or
// a hexrotor with more than two, loses controllability and crashes if
// airborne.
func (u *UAV) FailRotor(i int) error {
	if i < 0 || i >= len(u.rotors) {
		return fmt.Errorf("uavsim: rotor %d out of range", i)
	}
	u.rotors[i] = true
	if !u.controllable() && u.Mode().Airborne() {
		u.setMode(ModeCrashed)
		u.world.fleet.speed[u.idx] = 0
	}
	return nil
}

// controllable reports whether enough rotors remain for stable flight:
// quadrotors need all 4, hexrotors tolerate up to 2 opposite failures
// (simplified to "at most 2").
func (u *UAV) controllable() bool {
	failed := u.FailedRotors()
	switch {
	case len(u.rotors) <= 4:
		return failed == 0
	default:
		return failed <= 2
	}
}

// --- Commands ---

// TakeOff transitions from idle/landed to a hold at altM metres.
func (u *UAV) TakeOff(altM float64) error {
	if m := u.Mode(); m != ModeIdle && m != ModeLanded {
		return fmt.Errorf("uavsim: %s cannot take off in mode %v", u.cfg.ID, m)
	}
	if !u.controllable() {
		return fmt.Errorf("uavsim: %s is not controllable", u.cfg.ID)
	}
	if altM <= 0 {
		return errors.New("uavsim: takeoff altitude must be positive")
	}
	u.setMode(ModeHold)
	u.world.fleet.wpAltM[u.idx] = altM
	return nil
}

// FlyMission sets the waypoint list (geodetic) and switches to mission
// mode at the given altitude.
func (u *UAV) FlyMission(waypoints []geo.LatLng, altM float64) error {
	if len(waypoints) == 0 {
		return errors.New("uavsim: empty waypoint list")
	}
	if !u.Mode().Airborne() {
		return fmt.Errorf("uavsim: %s must be airborne to fly a mission (mode %v)", u.cfg.ID, u.Mode())
	}
	u.wps = u.wps[:0]
	for _, wp := range waypoints {
		u.wps = append(u.wps, u.world.proj.ToENU(wp))
	}
	u.world.fleet.wpAltM[u.idx] = altM
	u.setMode(ModeMission)
	return nil
}

// SetAltitude retargets the commanded altitude without changing mode.
func (u *UAV) SetAltitude(altM float64) error {
	if altM <= 0 {
		return errors.New("uavsim: altitude must be positive")
	}
	u.world.fleet.wpAltM[u.idx] = altM
	return nil
}

// Hold freezes the vehicle at its current position.
func (u *UAV) Hold() {
	if u.Mode().Airborne() {
		u.setMode(ModeHold)
		u.wps = u.wps[:0]
	}
}

// ReturnToBase flies home and lands.
func (u *UAV) ReturnToBase() {
	if !u.Mode().Airborne() {
		return
	}
	u.wps = u.wps[:0]
	u.wps = append(u.wps, u.world.proj.ToENU(u.cfg.Home))
	u.setMode(ModeReturnToBase)
}

// Land descends in place.
func (u *UAV) Land() {
	if u.Mode().Airborne() {
		u.setMode(ModeLanding)
		u.wps = u.wps[:0]
	}
}

// EmergencyLand descends immediately at double climb rate.
func (u *UAV) EmergencyLand() {
	if u.Mode().Airborne() {
		u.setMode(ModeEmergencyLanding)
		u.wps = u.wps[:0]
	}
}

// --- Dynamics ---

// waypointCaptureM is the horizontal capture radius.
const waypointCaptureM = 1.5

// step advances the vehicle by dt seconds, reading and writing the
// world's struct-of-arrays slots for this vehicle. The kinematic
// parameters (cruise, climb, stall floor) live in the fleet store, so a
// heterogeneous fleet's tick still walks contiguous memory.
func (u *UAV) step(dt float64) {
	f := &u.world.fleet
	i := u.idx
	if f.mode[i] == ModeCrashed {
		return
	}
	if u.Battery.Depleted() && f.mode[i].Airborne() {
		u.setMode(ModeCrashed)
		f.speed[i] = 0
		return
	}

	var vel geo.ENU
	climb := 0.0
	minSpd := f.minSpd[i]

	if u.GuidanceOverride != nil && f.mode[i].Airborne() {
		vel = u.GuidanceOverride(u, dt)
		if n := vel.Norm(); n > f.cruise[i] && n > 0 {
			vel = vel.Scale(f.cruise[i] / n)
		}
	} else {
		switch f.mode[i] {
		case ModeMission, ModeReturnToBase:
			vel = u.seekWaypoint(dt)
		case ModeHold:
			// A multirotor hovers; a fixed-wing cannot, so it loiters:
			// minimum airspeed along a heading that advances at the
			// configured turn rate, tracing a circle around the hold point.
			if minSpd > 0 {
				vel = u.forwardVel(minSpd, u.cfg.TurnRateDegS*dt)
			}
		case ModeLanding:
			climb = -f.climb[i]
			if minSpd > 0 {
				// Fixed-wing approach: descend while keeping stall margin.
				vel = u.forwardVel(minSpd, 0)
			}
		case ModeEmergencyLanding:
			climb = -2 * f.climb[i]
			if minSpd > 0 {
				vel = u.forwardVel(minSpd, 0)
			}
		}
	}

	// Altitude tracking for non-landing airborne modes.
	if m := f.mode[i]; m == ModeMission || m == ModeHold || m == ModeReturnToBase {
		dAlt := f.wpAltM[i] - f.altM[i]
		maxStep := f.climb[i] * dt
		if math.Abs(dAlt) <= maxStep {
			f.altM[i] = f.wpAltM[i]
		} else if dAlt > 0 {
			f.altM[i] += maxStep
		} else {
			f.altM[i] -= maxStep
		}
	} else if climb != 0 {
		f.altM[i] += climb * dt
		if f.altM[i] <= 0 {
			f.altM[i] = 0
			u.setMode(ModeLanded)
			f.speed[i] = 0
		}
	}

	// Wind (mean + gust) drifts the true track.
	if f.mode[i].Airborne() {
		vel = vel.Add(u.world.CurrentWind())
	}
	f.pos[i] = f.pos[i].Add(vel.Scale(dt))
	f.speed[i] = vel.Norm()
	if f.speed[i] > 0.01 {
		f.head[i] = math.Mod(math.Atan2(vel.East, vel.North)*180/math.Pi+360, 360)
	}

	u.Battery.Step(dt, f.speed[i], f.mode[i].Airborne())
	u.GPS.Step(dt)
}

// forwardVel returns the velocity of magnitude speed along the current
// heading advanced by turnDeg — the fixed-wing motion primitive for
// loiter and approach legs.
func (u *UAV) forwardVel(speed, turnDeg float64) geo.ENU {
	hd := (u.world.fleet.head[u.idx] + turnDeg) * math.Pi / 180
	return geo.ENU{East: speed * math.Sin(hd), North: speed * math.Cos(hd)}
}

// seekWaypoint returns the velocity toward the current waypoint,
// consuming it on capture. Navigation uses the position the vehicle
// BELIEVES it has: under GPS spoofing the believed position is the
// spoofed one, so the true track deviates — exactly the Fig. 6 effect.
// A fixed-wing never drops below its stall floor, so its capture radius
// widens to one step of minimum-speed travel (it overshoots rather than
// decelerating onto the point).
func (u *UAV) seekWaypoint(dt float64) geo.ENU {
	f := &u.world.fleet
	cruise := f.cruise[u.idx]
	minSpd := f.minSpd[u.idx]
	capture := waypointCaptureM
	if r := minSpd * dt; r > capture {
		capture = r
	}
	for len(u.wps) > 0 {
		believed := u.believedENU()
		d := u.wps[0].Sub(believed)
		if d.Norm() <= capture {
			u.wps = u.wps[1:]
			continue
		}
		maxTravel := cruise * dt
		if d.Norm() <= maxTravel {
			vel := d.Scale(1 / dt)
			if n := vel.Norm(); minSpd > 0 && n < minSpd && n > 0 {
				vel = vel.Scale(minSpd / n)
			}
			return vel
		}
		return d.Scale(cruise / d.Norm())
	}
	// Mission complete.
	switch u.Mode() {
	case ModeMission:
		u.setMode(ModeHold)
	case ModeReturnToBase:
		u.setMode(ModeLanding)
	}
	return geo.ENU{}
}

// believedENU returns the position the navigation stack believes,
// i.e. the GPS measurement (true position plus spoof offset) in the
// world frame; during dropout it degrades to the true position (inertial
// drift is neglected over the short horizons simulated here).
func (u *UAV) believedENU() geo.ENU {
	fix, ok := u.GPS.Fix(u.TruePosition(), u.AltitudeM(), u.cfg.ID, 0)
	if !ok {
		return u.world.fleet.pos[u.idx]
	}
	return u.world.proj.ToENU(fix.Position)
}
