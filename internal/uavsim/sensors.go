package uavsim

import (
	"math"
	"math/rand"

	"sesame/internal/geo"
)

// GPSMode selects the GPS receiver's condition.
type GPSMode int

// GPS receiver conditions.
const (
	GPSModeNominal GPSMode = iota
	GPSModeDegraded
	GPSModeDropout
	GPSModeSpoofed
)

// GPS models the satellite receiver: white position noise in nominal
// operation, larger noise when degraded, no fix during dropout, and an
// attacker-controlled drifting offset when spoofed (the §V-C attack
// pushes the victim's reported position progressively off its true
// track).
type GPS struct {
	Mode GPSMode
	// NoiseM is the 1-sigma horizontal noise in nominal mode.
	NoiseM float64
	// DegradedNoiseM applies in degraded mode.
	DegradedNoiseM float64
	// Spoof offset, metres in the local frame; grows by SpoofDriftMS
	// every second while spoofed.
	spoofOffset geo.ENU
	// SpoofDriftMS is the offset growth rate (m/s) applied along
	// SpoofBearingD while spoofed.
	SpoofDriftMS  float64
	SpoofBearingD float64

	rng *rand.Rand
}

// NewGPS returns a nominal receiver drawing noise from rng.
func NewGPS(rng *rand.Rand) *GPS {
	return &GPS{
		Mode:           GPSModeNominal,
		NoiseM:         0.3, // RTK-grade
		DegradedNoiseM: 3.0,
		rng:            rng,
	}
}

// StartSpoof switches the receiver into spoofed mode with the given
// drift direction and rate.
func (g *GPS) StartSpoof(bearingDeg, driftMS float64) {
	g.Mode = GPSModeSpoofed
	g.SpoofBearingD = bearingDeg
	g.SpoofDriftMS = driftMS
}

// StopSpoof restores nominal mode and clears the accumulated offset.
func (g *GPS) StopSpoof() {
	g.Mode = GPSModeNominal
	g.spoofOffset = geo.ENU{}
}

// SpoofOffsetM returns the current spoof displacement magnitude.
func (g *GPS) SpoofOffsetM() float64 { return g.spoofOffset.Norm() }

// SpoofOffset returns the current spoof displacement vector in the
// local frame (zero when not spoofed). Observability hook for
// experiments; the receiver's victims cannot read this.
func (g *GPS) SpoofOffset() geo.ENU { return g.spoofOffset }

// Step advances spoof drift by dt seconds.
func (g *GPS) Step(dt float64) {
	if g.Mode == GPSModeSpoofed {
		// Drift in the configured bearing: east = sin, north = cos.
		rad := g.SpoofBearingD * math.Pi / 180
		g.spoofOffset.East += g.SpoofDriftMS * dt * math.Sin(rad)
		g.spoofOffset.North += g.SpoofDriftMS * dt * math.Cos(rad)
	}
}

// Fix produces a measurement of the true position, or ok=false during a
// dropout.
func (g *GPS) Fix(truth geo.LatLng, altM float64, uav string, stamp float64) (GPSFix, bool) {
	switch g.Mode {
	case GPSModeDropout:
		return GPSFix{UAV: uav, Quality: GPSLost, Stamp: stamp}, false
	case GPSModeDegraded:
		return GPSFix{
			UAV:        uav,
			Position:   jitter(truth, g.DegradedNoiseM, g.rng),
			AltitudeM:  altM,
			Quality:    GPSDegraded,
			Satellites: 6,
			Stamp:      stamp,
		}, true
	case GPSModeSpoofed:
		pr := geo.NewProjection(truth)
		spoofed := pr.ToLatLng(g.spoofOffset)
		return GPSFix{
			UAV:        uav,
			Position:   jitter(spoofed, g.NoiseM, g.rng),
			AltitudeM:  altM,
			Quality:    GPSRTK, // the attack presents a confident fix
			Satellites: 14,
			Stamp:      stamp,
		}, true
	default:
		return GPSFix{
			UAV:        uav,
			Position:   jitter(truth, g.NoiseM, g.rng),
			AltitudeM:  altM,
			Quality:    GPSRTK,
			Satellites: 14,
			Stamp:      stamp,
		}, true
	}
}

func jitter(p geo.LatLng, sigmaM float64, rng *rand.Rand) geo.LatLng {
	if sigmaM <= 0 || rng == nil {
		return p
	}
	pr := geo.NewProjection(p)
	return pr.ToLatLng(geo.ENU{
		East:  rng.NormFloat64() * sigmaM,
		North: rng.NormFloat64() * sigmaM,
	})
}

// Camera models the vision sensor's health, consumed by the
// vision-based sensor-health ConSert.
type Camera struct {
	OK bool
	// BlurSigma degrades detection features when > 0 (fed into the
	// detection substrate).
	BlurSigma float64
}

// NewCamera returns a healthy camera.
func NewCamera() *Camera { return &Camera{OK: true} }

// Fail marks the camera failed.
func (c *Camera) Fail() { c.OK = false }

// Comms models the command-and-control link state.
type Comms struct {
	OK bool
	// PacketLoss in [0,1] degrades the communication-localization
	// ConSert's guarantee.
	PacketLoss float64
}

// NewComms returns a healthy link.
func NewComms() *Comms { return &Comms{OK: true} }
