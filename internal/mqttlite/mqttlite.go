// Package mqttlite is an in-process MQTT-style message broker. In the
// paper's Security EDDI architecture (§III-B), the IDS publishes alerts
// to an MQTT topic and each attack-tree monitor script subscribes to
// the topics relevant to its tree. This broker reproduces the pieces
// that architecture depends on: hierarchical topic names, `+` and `#`
// wildcards, and retained messages, at QoS-0 semantics.
package mqttlite

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"sesame/internal/obsv"
)

// Message is one published datagram.
type Message struct {
	Topic    string
	Payload  []byte
	Retained bool // true when delivered from the retained store
}

// Handler consumes messages matched to a subscription filter.
type Handler func(Message)

// Filter inspects every publication before routing. Returning
// forward=false consumes the message (no delivery, no retention); the
// filter owns its fate and may re-inject it later via Deliver. A
// non-nil error is surfaced to the publisher.
type Filter func(topic string, payload []byte) (forward bool, err error)

// Broker routes publications to wildcard subscriptions. The zero value
// is not usable; call NewBroker.
type Broker struct {
	mu       sync.Mutex
	subs     map[int]*subscription
	retained map[string][]byte
	nextID   int
	filter   Filter
	// Observability mirrors (nil when uninstrumented; all nil-safe).
	mPublished     *obsv.CounterVec
	pubCounters    map[string]*obsv.Counter // per-topic handles, under mu
	mConsumed      *obsv.Counter
	mMatched       *obsv.Counter
	mRetainedSize  *obsv.Gauge
	mRetainedServe *obsv.Counter
}

type subscription struct {
	filter  []string // split topic filter
	handler Handler
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{
		subs:     make(map[int]*subscription),
		retained: make(map[string][]byte),
	}
}

// Instrument mirrors the broker counters into reg. A nil registry
// leaves the broker uninstrumented (nil handles are no-ops).
func (b *Broker) Instrument(reg *obsv.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mPublished = reg.CounterVec("sesame_mqtt_published_total",
		"Publications accepted by the broker, by topic.", "topic")
	if b.mPublished != nil {
		b.pubCounters = make(map[string]*obsv.Counter)
	}
	b.mConsumed = reg.Counter("sesame_mqtt_filter_consumed_total",
		"Publications consumed by the link filter before routing.")
	b.mMatched = reg.Counter("sesame_mqtt_matched_total",
		"Subscription filter matches during routing.")
	b.mRetainedSize = reg.Gauge("sesame_mqtt_retained_topics",
		"Topics currently holding a retained message.")
	b.mRetainedServe = reg.Counter("sesame_mqtt_retained_served_total",
		"Retained messages served to new subscriptions.")
}

// ValidateTopic checks a concrete (publishable) topic name: non-empty
// levels, no wildcards.
func ValidateTopic(topic string) error {
	if topic == "" {
		return errors.New("mqttlite: empty topic")
	}
	for _, level := range strings.Split(topic, "/") {
		if level == "" {
			return fmt.Errorf("mqttlite: topic %q has an empty level", topic)
		}
		if level == "+" || level == "#" {
			return fmt.Errorf("mqttlite: topic %q contains a wildcard; wildcards are for filters only", topic)
		}
	}
	return nil
}

// ValidateFilter checks a subscription filter: non-empty levels, `#`
// only at the end.
func ValidateFilter(filter string) error {
	if filter == "" {
		return errors.New("mqttlite: empty filter")
	}
	levels := strings.Split(filter, "/")
	for i, level := range levels {
		if level == "" {
			return fmt.Errorf("mqttlite: filter %q has an empty level", filter)
		}
		if level == "#" && i != len(levels)-1 {
			return fmt.Errorf("mqttlite: filter %q has # before the last level", filter)
		}
	}
	return nil
}

// matches reports whether the split filter matches the split topic.
func matches(filter, topic []string) bool {
	fi := 0
	for ti := 0; ti < len(topic); ti++ {
		if fi >= len(filter) {
			return false
		}
		switch filter[fi] {
		case "#":
			return true
		case "+":
			fi++
		default:
			if filter[fi] != topic[ti] {
				return false
			}
			fi++
		}
	}
	// Topic exhausted: filter must be exhausted too, or end in '#'.
	return fi == len(filter) || (fi == len(filter)-1 && filter[fi] == "#")
}

// SetFilter installs (or, with nil, removes) the broker-wide link
// filter applied to every Publish.
func (b *Broker) SetFilter(f Filter) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.filter = f
}

// WrapFilter composes a new filter over whatever is currently
// installed: the wrapper receives the previous filter (possibly nil)
// and decides whether and how to delegate. Fault layers stack this way
// — e.g. a chaos layer over a link simulator — instead of overwriting
// each other through SetFilter.
func (b *Broker) WrapFilter(wrap func(next Filter) Filter) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.filter = wrap(b.filter)
}

// Publish routes payload to every matching subscription. With retain
// set, the payload replaces the topic's retained message (an empty
// payload clears it, per MQTT convention). A consumed (filtered)
// message is neither delivered nor retained — a frame lost on the air
// never reaches the broker's store.
func (b *Broker) Publish(topic string, payload []byte, retain bool) error {
	if err := ValidateTopic(topic); err != nil {
		return err
	}
	b.mu.Lock()
	filter := b.filter
	b.mu.Unlock()
	if filter != nil {
		fwd, err := filter(topic, payload)
		if !fwd || err != nil {
			b.mConsumed.Inc()
			return err
		}
	}
	return b.Deliver(topic, payload, retain)
}

// Deliver routes payload bypassing the filter — the re-injection path
// for a link layer releasing delayed or duplicated frames.
func (b *Broker) Deliver(topic string, payload []byte, retain bool) error {
	if err := ValidateTopic(topic); err != nil {
		return err
	}
	split := strings.Split(topic, "/")
	b.mu.Lock()
	if b.pubCounters != nil {
		c := b.pubCounters[topic]
		if c == nil {
			c = b.mPublished.With(topic)
			b.pubCounters[topic] = c
		}
		c.Inc()
	}
	if retain {
		if len(payload) == 0 {
			delete(b.retained, topic)
		} else {
			b.retained[topic] = append([]byte(nil), payload...)
		}
		b.mRetainedSize.Set(float64(len(b.retained)))
	}
	ids := make([]int, 0, len(b.subs))
	for id, s := range b.subs {
		if matches(s.filter, split) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	b.mMatched.Add(uint64(len(ids)))
	handlers := make([]Handler, 0, len(ids))
	for _, id := range ids {
		handlers = append(handlers, b.subs[id].handler)
	}
	b.mu.Unlock()

	msg := Message{Topic: topic, Payload: append([]byte(nil), payload...)}
	for _, h := range handlers {
		h(msg)
	}
	return nil
}

// Subscribe registers handler for every topic matching filter. Retained
// messages matching the filter are delivered immediately, flagged
// Retained, in lexicographic topic order. The returned cancel function
// removes the subscription.
func (b *Broker) Subscribe(filter string, handler Handler) (cancel func(), err error) {
	if err := ValidateFilter(filter); err != nil {
		return nil, err
	}
	if handler == nil {
		return nil, errors.New("mqttlite: nil handler")
	}
	split := strings.Split(filter, "/")
	b.mu.Lock()
	b.nextID++
	id := b.nextID
	b.subs[id] = &subscription{filter: split, handler: handler}
	// Snapshot matching retained messages.
	var topics []string
	for t := range b.retained {
		if matches(split, strings.Split(t, "/")) {
			topics = append(topics, t)
		}
	}
	sort.Strings(topics)
	pending := make([]Message, 0, len(topics))
	for _, t := range topics {
		pending = append(pending, Message{
			Topic:    t,
			Payload:  append([]byte(nil), b.retained[t]...),
			Retained: true,
		})
	}
	b.mu.Unlock()

	b.mRetainedServe.Add(uint64(len(pending)))
	for _, m := range pending {
		handler(m)
	}
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.subs, id)
	}, nil
}

// Retained returns a copy of the retained payload for topic, or nil.
func (b *Broker) Retained(topic string) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p, ok := b.retained[topic]; ok {
		return append([]byte(nil), p...)
	}
	return nil
}

// SubscriptionCount returns the number of active subscriptions.
func (b *Broker) SubscriptionCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
