package mqttlite

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestExactMatch(t *testing.T) {
	b := NewBroker()
	var got []string
	_, err := b.Subscribe("alerts/ids/uav1", func(m Message) { got = append(got, string(m.Payload)) })
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("alerts/ids/uav1", []byte("spoof"), false); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("alerts/ids/uav2", []byte("other"), false); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "spoof" {
		t.Fatalf("got %v", got)
	}
}

func TestPlusWildcard(t *testing.T) {
	b := NewBroker()
	var topics []string
	_, _ = b.Subscribe("alerts/+/uav1", func(m Message) { topics = append(topics, m.Topic) })
	_ = b.Publish("alerts/ids/uav1", nil, false)
	_ = b.Publish("alerts/physical/uav1", nil, false)
	_ = b.Publish("alerts/ids/uav2", nil, false)
	_ = b.Publish("alerts/ids/deep/uav1", nil, false)
	if len(topics) != 2 {
		t.Fatalf("matched %v", topics)
	}
}

func TestHashWildcard(t *testing.T) {
	b := NewBroker()
	count := 0
	_, _ = b.Subscribe("alerts/#", func(Message) { count++ })
	_ = b.Publish("alerts/ids/uav1", nil, false)
	_ = b.Publish("alerts/x/y/z", nil, false)
	_ = b.Publish("telemetry/gps", nil, false)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestHashMatchesParentLevel(t *testing.T) {
	// Per MQTT spec, "alerts/#" matches "alerts" itself.
	b := NewBroker()
	count := 0
	_, _ = b.Subscribe("alerts/#", func(Message) { count++ })
	_ = b.Publish("alerts", nil, false)
	if count != 1 {
		t.Fatalf("# did not match parent: %d", count)
	}
}

func TestRetainedDelivery(t *testing.T) {
	b := NewBroker()
	_ = b.Publish("status/uav1", []byte("armed"), true)
	var got []Message
	_, _ = b.Subscribe("status/+", func(m Message) { got = append(got, m) })
	if len(got) != 1 || string(got[0].Payload) != "armed" || !got[0].Retained {
		t.Fatalf("retained delivery wrong: %+v", got)
	}
	// Fresh publications arrive unflagged.
	_ = b.Publish("status/uav1", []byte("landed"), true)
	if len(got) != 2 || got[1].Retained {
		t.Fatalf("live message wrong: %+v", got)
	}
	if string(b.Retained("status/uav1")) != "landed" {
		t.Fatal("retained store not updated")
	}
}

func TestRetainedCleared(t *testing.T) {
	b := NewBroker()
	_ = b.Publish("s/t", []byte("x"), true)
	_ = b.Publish("s/t", nil, true)
	if b.Retained("s/t") != nil {
		t.Fatal("empty retained publish must clear")
	}
	count := 0
	_, _ = b.Subscribe("s/t", func(Message) { count++ })
	if count != 0 {
		t.Fatal("cleared retain must not deliver")
	}
}

func TestRetainedOrder(t *testing.T) {
	b := NewBroker()
	_ = b.Publish("r/b", []byte("2"), true)
	_ = b.Publish("r/a", []byte("1"), true)
	var order []string
	_, _ = b.Subscribe("r/#", func(m Message) { order = append(order, m.Topic) })
	if len(order) != 2 || order[0] != "r/a" || order[1] != "r/b" {
		t.Fatalf("retained order = %v", order)
	}
}

func TestCancel(t *testing.T) {
	b := NewBroker()
	count := 0
	cancel, _ := b.Subscribe("t", func(Message) { count++ })
	_ = b.Publish("t", nil, false)
	cancel()
	_ = b.Publish("t", nil, false)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if b.SubscriptionCount() != 0 {
		t.Fatal("subscription not removed")
	}
}

func TestValidation(t *testing.T) {
	b := NewBroker()
	if err := b.Publish("", nil, false); err == nil {
		t.Error("empty topic must fail")
	}
	if err := b.Publish("a//b", nil, false); err == nil {
		t.Error("empty level must fail")
	}
	if err := b.Publish("a/+/b", nil, false); err == nil {
		t.Error("wildcard publish must fail")
	}
	if err := b.Publish("a/#", nil, false); err == nil {
		t.Error("wildcard publish must fail")
	}
	if _, err := b.Subscribe("", func(Message) {}); err == nil {
		t.Error("empty filter must fail")
	}
	if _, err := b.Subscribe("a/#/b", func(Message) {}); err == nil {
		t.Error("# mid-filter must fail")
	}
	if _, err := b.Subscribe("a/b", nil); err == nil {
		t.Error("nil handler must fail")
	}
}

func TestPayloadCopied(t *testing.T) {
	b := NewBroker()
	payload := []byte("original")
	_ = b.Publish("t", payload, true)
	payload[0] = 'X'
	if string(b.Retained("t")) != "original" {
		t.Fatal("retained payload aliases caller buffer")
	}
}

func TestMatchesProperty(t *testing.T) {
	// A filter equal to the topic always matches; '#' alone matches
	// everything.
	f := func(parts []uint8) bool {
		if len(parts) == 0 || len(parts) > 6 {
			return true
		}
		levels := make([]string, len(parts))
		for i, p := range parts {
			levels[i] = string(rune('a' + p%26))
		}
		topic := strings.Join(levels, "/")
		split := strings.Split(topic, "/")
		return matches(split, split) && matches([]string{"#"}, split)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilterConsumesPublish(t *testing.T) {
	b := NewBroker()
	var got []Message
	_, _ = b.Subscribe("alerts/#", func(m Message) { got = append(got, m) })
	type frame struct {
		topic   string
		payload []byte
	}
	var held []frame
	b.SetFilter(func(topic string, payload []byte) (bool, error) {
		if topic == "alerts/ids/u2" {
			held = append(held, frame{topic, append([]byte(nil), payload...)})
			return false, nil
		}
		return true, nil
	})
	if err := b.Publish("alerts/ids/u2", []byte("lost"), true); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("alerts/ids/u1", []byte("ok"), false); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Payload) != "ok" {
		t.Fatalf("filter leak: %v", got)
	}
	// A consumed frame must not have been retained either: the broker
	// never saw it.
	if b.Retained("alerts/ids/u2") != nil {
		t.Fatal("filtered message was retained")
	}
	// Deliver re-injects past the filter.
	for _, f := range held {
		if err := b.Deliver(f.topic, f.payload, false); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || string(got[1].Payload) != "lost" {
		t.Fatalf("redelivery wrong: %v", got)
	}
	b.SetFilter(nil)
	if err := b.Publish("alerts/ids/u2", []byte("again"), false); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatal("filter still active after SetFilter(nil)")
	}
}

func TestFilterErrorReachesPublisher(t *testing.T) {
	b := NewBroker()
	boom := errors.New("link down")
	b.SetFilter(func(string, []byte) (bool, error) { return false, boom })
	delivered := 0
	_, _ = b.Subscribe("#", func(Message) { delivered++ })
	if err := b.Publish("a/b", []byte("x"), false); !errors.Is(err, boom) {
		t.Fatalf("publish error = %v, want %v", err, boom)
	}
	if delivered != 0 {
		t.Fatal("rejected message must not be delivered")
	}
}

func BenchmarkPublishFanout(b *testing.B) {
	br := NewBroker()
	for i := 0; i < 20; i++ {
		_, _ = br.Subscribe("alerts/#", func(Message) {})
	}
	payload := []byte("alert")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish("alerts/ids/uav1", payload, false); err != nil {
			b.Fatal(err)
		}
	}
}
