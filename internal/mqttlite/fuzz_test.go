package mqttlite

import (
	"strings"
	"testing"
)

// refMatch is a naive recursive reference implementation of MQTT
// filter matching, written for obviousness rather than speed: `+`
// consumes exactly one level, `#` (only valid as the final level)
// consumes zero or more. The production matcher must agree with it on
// every valid (filter, topic) pair.
func refMatch(filter, topic []string) bool {
	if len(filter) == 0 {
		return len(topic) == 0
	}
	if filter[0] == "#" {
		return true
	}
	if len(topic) == 0 {
		return false
	}
	if filter[0] == "+" || filter[0] == topic[0] {
		return refMatch(filter[1:], topic[1:])
	}
	return false
}

// matchCases pins the tricky corners of the wildcard grammar.
var matchCases = []struct {
	filter, topic string
	want          bool
}{
	{"a/b/c", "a/b/c", true},
	{"a/b/c", "a/b", false},
	{"a/b", "a/b/c", false},
	{"+/b/c", "a/b/c", true},
	{"a/+/c", "a/b/c", true},
	{"a/b/+", "a/b/c", true},
	{"a/b/+", "a/b/c/d", false},
	{"#", "a", true},
	{"#", "a/b/c", true},
	{"a/#", "a", true}, // '#' includes the parent level
	{"a/#", "a/b/c", true},
	{"a/#", "b/a", false},
	{"+/#", "a/b/c", true},
	{"+", "a", true},
	{"+", "a/b", false},
	{"alerts/ids/+", "alerts/ids/u1", true},
	{"alerts/ids/+", "alerts/ids/u1/extra", false},
	{"a/+/+", "a/b", false},
}

// TestTopicMatchTable drives both matchers through the pinned corners.
func TestTopicMatchTable(t *testing.T) {
	for _, tc := range matchCases {
		f := strings.Split(tc.filter, "/")
		top := strings.Split(tc.topic, "/")
		if got := matches(f, top); got != tc.want {
			t.Errorf("matches(%q, %q) = %v, want %v", tc.filter, tc.topic, got, tc.want)
		}
		if got := refMatch(f, top); got != tc.want {
			t.Errorf("refMatch(%q, %q) = %v, want %v (reference matcher is wrong)", tc.filter, tc.topic, got, tc.want)
		}
	}
}

// FuzzTopicMatch cross-checks the production matcher against refMatch
// on arbitrary valid filter/topic pairs. Invalid inputs (per the
// broker's own validators) are skipped: the broker rejects them before
// matching ever runs.
func FuzzTopicMatch(f *testing.F) {
	f.Add("#", "a/b/c")     // '#' at root
	f.Add("a/+", "a/b")     // trailing '+'
	f.Add("a/#", "a")       // '#' matching its parent
	f.Add("+/+/+", "a/b/c") // all-wildcard
	f.Add("alerts/ids/+", "alerts/ids/u1")
	f.Add("a/b/c", "a/b/c")
	f.Add("+", "a")
	f.Add("a/+/c/#", "a/x/c/d/e")
	for _, tc := range matchCases {
		f.Add(tc.filter, tc.topic)
	}
	f.Fuzz(func(t *testing.T, filter, topic string) {
		if ValidateFilter(filter) != nil || ValidateTopic(topic) != nil {
			t.Skip()
		}
		fs := strings.Split(filter, "/")
		ts := strings.Split(topic, "/")
		got := matches(fs, ts)
		want := refMatch(fs, ts)
		if got != want {
			t.Errorf("matches(%q, %q) = %v, reference says %v", filter, topic, got, want)
		}
	})
}
