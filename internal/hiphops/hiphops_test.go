package hiphops

import (
	"math"
	"strings"
	"testing"
)

func TestUAVNavigationSynthesis(t *testing.T) {
	s, err := UAVNavigationSystem()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.BuildTree("fcc", "loss-of-navigation")
	if err != nil {
		t.Fatal(err)
	}
	// power/bus-short feeds both gps and fusion: shared-event tree.
	if res.Shared == nil {
		t.Fatal("common-cause power failure must force cut-set evaluation")
	}
	mcs := res.MinimalCutSets()
	want := map[string]bool{
		"fusion/cpu-fail":           false,
		"power/bus-short":           false,
		"gps/rx-fail,imu/gyro-fail": false,
	}
	for _, cs := range mcs {
		key := strings.Join(cs, ",")
		if _, ok := want[key]; !ok {
			t.Fatalf("unexpected cut set %v (all: %v)", cs, mcs)
		}
		want[key] = true
	}
	for key, seen := range want {
		if !seen {
			t.Fatalf("missing cut set %s (got %v)", key, mcs)
		}
	}
	// Probability: monotone, bounded, and the power common cause makes
	// it at least the power failure probability.
	p, err := res.Probability(3600)
	if err != nil {
		t.Fatal(err)
	}
	powerP := 1 - math.Exp(-2e-6*3600)
	if p < powerP || p > 1 {
		t.Fatalf("P(nav loss, 1h) = %v, below common-cause floor %v", p, powerP)
	}
}

func TestSharedEventNotDoubleCounted(t *testing.T) {
	// With the common cause, the exact probability is NOT what naive
	// gate arithmetic over duplicated power events would give.
	s, _ := UAVNavigationSystem()
	res, _ := s.BuildTree("fcc", "loss-of-navigation")
	exact, err := res.Probability(100000)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := res.Top.Probability(100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exact == naive {
		t.Fatalf("shared-event evaluation should differ from naive arithmetic (both %v)", exact)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	s := NewSystem()
	if err := s.AddComponent(nil); err == nil {
		t.Error("nil component must fail")
	}
	if err := s.AddComponent(&Component{Name: "x"}); err == nil {
		t.Error("component without outputs must fail")
	}
	c := &Component{
		Name:          "a",
		BasicFailures: map[string]float64{"f": 1e-5},
		Outputs:       map[string]Cause{"out": Basic("f")},
	}
	if err := s.AddComponent(c); err != nil {
		t.Fatal(err)
	}
	if err := s.AddComponent(c); err == nil {
		t.Error("duplicate component must fail")
	}
	bad := &Component{
		Name:          "bad",
		BasicFailures: map[string]float64{"": 1e-5},
		Outputs:       map[string]Cause{"out": Basic("")},
	}
	if err := s.AddComponent(bad); err == nil {
		t.Error("invalid basic failure must fail")
	}
	if err := s.Connect("ghost", "in", "a", "out"); err == nil {
		t.Error("unknown target must fail")
	}
	if err := s.Connect("a", "in", "ghost", "out"); err == nil {
		t.Error("unknown source must fail")
	}
	if err := s.Connect("a", "in", "a", "nope"); err == nil {
		t.Error("unknown deviation must fail")
	}
	if _, err := s.Synthesize("ghost", "out"); err == nil {
		t.Error("unknown component must fail")
	}
	if _, err := s.Synthesize("a", "nope"); err == nil {
		t.Error("unknown deviation must fail")
	}
	// Unwired input reference.
	open := &Component{
		Name:    "open",
		Outputs: map[string]Cause{"out": Input("in")},
	}
	if err := s.AddComponent(open); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Synthesize("open", "out"); err == nil {
		t.Error("unwired input must fail")
	}
	// Unknown basic reference.
	miss := &Component{
		Name:    "miss",
		Outputs: map[string]Cause{"out": Basic("nothere")},
	}
	_ = s.AddComponent(miss)
	if _, err := s.Synthesize("miss", "out"); err == nil {
		t.Error("unknown basic failure must fail")
	}
}

func TestCycleDetection(t *testing.T) {
	s := NewSystem()
	a := &Component{Name: "a", Outputs: map[string]Cause{"out": Input("in")}}
	b := &Component{Name: "b", Outputs: map[string]Cause{"out": Input("in")}}
	_ = s.AddComponent(a)
	_ = s.AddComponent(b)
	_ = s.Connect("a", "in", "b", "out")
	_ = s.Connect("b", "in", "a", "out")
	if _, err := s.Synthesize("a", "out"); err == nil {
		t.Fatal("propagation cycle must fail")
	}
}

func TestSimpleChainMatchesAnalytic(t *testing.T) {
	// source --deviation--> sink: P = 1 - exp(-rate t).
	s := NewSystem()
	src := &Component{
		Name:          "src",
		BasicFailures: map[string]float64{"f": 1e-4},
		Outputs:       map[string]Cause{"bad": Basic("f")},
	}
	sink := &Component{Name: "sink", Outputs: map[string]Cause{"fail": Input("in")}}
	_ = s.AddComponent(src)
	_ = s.AddComponent(sink)
	_ = s.Connect("sink", "in", "src", "bad")
	res, err := s.BuildTree("sink", "fail")
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree == nil {
		t.Fatal("no sharing here: expect exact tree")
	}
	p, _ := res.Probability(1000)
	want := 1 - math.Exp(-0.1)
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("P = %v, want %v", p, want)
	}
	if len(s.Components()) != 2 {
		t.Fatalf("components = %v", s.Components())
	}
}

func BenchmarkSynthesizeUAVNavigation(b *testing.B) {
	s, err := UAVNavigationSystem()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := s.BuildTree("fcc", "loss-of-navigation"); err != nil {
			b.Fatal(err)
		}
	}
}
