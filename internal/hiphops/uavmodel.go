package hiphops

import "fmt"

// UAVNavigationSystem builds the architecture model behind the UAV's
// "loss of navigation" hazard: GPS and IMU feed a sensor-fusion block;
// the flight controller loses navigation when the fusion output is
// lost, which requires losing BOTH position sources or the fusion
// processor itself. The power bus is a shared dependency of GPS and
// fusion — a common-cause failure the synthesized tree must capture.
func UAVNavigationSystem() (*System, error) {
	s := NewSystem()
	power := &Component{
		Name:          "power",
		BasicFailures: map[string]float64{"bus-short": 2e-6},
		Outputs: map[string]Cause{
			"no-power": Basic("bus-short"),
		},
	}
	gps := &Component{
		Name:          "gps",
		BasicFailures: map[string]float64{"rx-fail": 1e-5},
		Outputs: map[string]Cause{
			// GPS output lost on receiver failure OR power loss.
			"no-fix": AnyOf(Basic("rx-fail"), Input("pwr")),
		},
	}
	imu := &Component{
		Name:          "imu",
		BasicFailures: map[string]float64{"gyro-fail": 5e-6},
		Outputs: map[string]Cause{
			"no-inertial": Basic("gyro-fail"),
		},
	}
	fusion := &Component{
		Name:          "fusion",
		BasicFailures: map[string]float64{"cpu-fail": 1e-6},
		Outputs: map[string]Cause{
			// Fusion output lost when its processor fails, its power
			// drops, or BOTH sources are gone.
			"no-solution": AnyOf(
				Basic("cpu-fail"),
				Input("pwr"),
				AllOf(Input("gps"), Input("imu")),
			),
		},
	}
	fcc := &Component{
		Name: "fcc",
		Outputs: map[string]Cause{
			"loss-of-navigation": Input("nav"),
		},
	}
	for _, c := range []*Component{power, gps, imu, fusion, fcc} {
		if err := s.AddComponent(c); err != nil {
			return nil, err
		}
	}
	wire := func(to, port, from, dev string) error {
		if err := s.Connect(to, port, from, dev); err != nil {
			return fmt.Errorf("wiring %s.%s: %w", to, port, err)
		}
		return nil
	}
	if err := wire("gps", "pwr", "power", "no-power"); err != nil {
		return nil, err
	}
	if err := wire("fusion", "pwr", "power", "no-power"); err != nil {
		return nil, err
	}
	if err := wire("fusion", "gps", "gps", "no-fix"); err != nil {
		return nil, err
	}
	if err := wire("fusion", "imu", "imu", "no-inertial"); err != nil {
		return nil, err
	}
	if err := wire("fcc", "nav", "fusion", "no-solution"); err != nil {
		return nil, err
	}
	return s, nil
}
