// Package hiphops implements a compact HiP-HOPS-style fault-tree
// synthesis engine (Kabir et al., IMBSA 2019 — reference [29] of the
// paper). Safety engineers annotate each component with local failure
// data — how deviations at its outputs arise from internal basic
// failures and from deviations arriving at its inputs — and the engine
// walks the architecture to synthesize the system fault tree that the
// Safety EDDI then executes at runtime.
//
// The model is deliberately small but faithful to the method:
//
//   - a Component declares basic failure events (with rates) and, for
//     each output deviation, a cause expression over basic events and
//     input deviations;
//   - a System wires component inputs to upstream output deviations;
//   - Synthesize resolves a chosen output deviation into an fta tree,
//     substituting input deviations with their upstream causes.
package hiphops

import (
	"errors"
	"fmt"
	"sort"

	"sesame/internal/fta"
)

// Cause is a local failure-logic expression.
type Cause interface {
	kind() string
}

// Basic references one of the component's basic failure events.
func Basic(name string) Cause { return basicRef(name) }

type basicRef string

func (basicRef) kind() string { return "basic" }

// Input references a deviation arriving at the named input port.
func Input(port string) Cause { return inputRef(port) }

type inputRef string

func (inputRef) kind() string { return "input" }

// AnyOf is the OR of its causes.
func AnyOf(causes ...Cause) Cause { return nary{op: "or", kids: causes} }

// AllOf is the AND of its causes.
func AllOf(causes ...Cause) Cause { return nary{op: "and", kids: causes} }

type nary struct {
	op   string
	kids []Cause
}

func (nary) kind() string { return "nary" }

// Component is one architecture block with local failure data.
type Component struct {
	Name string
	// BasicFailures maps local basic event names to failure rates.
	BasicFailures map[string]float64
	// Outputs maps output deviation names to their cause expressions.
	Outputs map[string]Cause
}

// System is the component architecture.
type System struct {
	components map[string]*Component
	// wires maps "component.inputPort" to "component.outputDeviation".
	wires map[string]string
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{
		components: make(map[string]*Component),
		wires:      make(map[string]string),
	}
}

// AddComponent registers a component.
func (s *System) AddComponent(c *Component) error {
	if c == nil || c.Name == "" {
		return errors.New("hiphops: component needs a name")
	}
	if _, dup := s.components[c.Name]; dup {
		return fmt.Errorf("hiphops: duplicate component %q", c.Name)
	}
	if len(c.Outputs) == 0 {
		return fmt.Errorf("hiphops: component %q declares no output deviations", c.Name)
	}
	for name, rate := range c.BasicFailures {
		if name == "" || rate <= 0 {
			return fmt.Errorf("hiphops: component %q has invalid basic failure %q (rate %v)", c.Name, name, rate)
		}
	}
	for out, cause := range c.Outputs {
		if out == "" || cause == nil {
			return fmt.Errorf("hiphops: component %q has invalid output deviation", c.Name)
		}
	}
	s.components[c.Name] = c
	return nil
}

// Connect wires the input port of one component to an output deviation
// of another: deviations at fromComponent.outputDeviation propagate
// into toComponent.inputPort.
func (s *System) Connect(toComponent, inputPort, fromComponent, outputDeviation string) error {
	to, ok := s.components[toComponent]
	if !ok {
		return fmt.Errorf("hiphops: unknown component %q", toComponent)
	}
	_ = to
	from, ok := s.components[fromComponent]
	if !ok {
		return fmt.Errorf("hiphops: unknown component %q", fromComponent)
	}
	if _, ok := from.Outputs[outputDeviation]; !ok {
		return fmt.Errorf("hiphops: %q has no output deviation %q", fromComponent, outputDeviation)
	}
	key := toComponent + "." + inputPort
	if _, dup := s.wires[key]; dup {
		return fmt.Errorf("hiphops: input %q already wired", key)
	}
	s.wires[key] = fromComponent + "." + outputDeviation
	return nil
}

// Synthesize resolves the named output deviation of a component into a
// fault-tree event. Basic events are named "component/basicFailure";
// repeated references to the same basic event share the name, so the
// result may need fta.NewSharedTree (see BuildTree).
func (s *System) Synthesize(component, outputDeviation string) (fta.Event, error) {
	visiting := map[string]bool{}
	return s.resolve(component, outputDeviation, visiting, map[string]int{})
}

func (s *System) resolve(component, deviation string, visiting map[string]bool, gateSeq map[string]int) (fta.Event, error) {
	key := component + "." + deviation
	if visiting[key] {
		return nil, fmt.Errorf("hiphops: propagation cycle through %q", key)
	}
	visiting[key] = true
	defer delete(visiting, key)

	c, ok := s.components[component]
	if !ok {
		return nil, fmt.Errorf("hiphops: unknown component %q", component)
	}
	cause, ok := c.Outputs[deviation]
	if !ok {
		return nil, fmt.Errorf("hiphops: %q has no output deviation %q", component, deviation)
	}
	return s.resolveCause(c, cause, visiting, gateSeq, key)
}

func (s *System) resolveCause(c *Component, cause Cause, visiting map[string]bool, gateSeq map[string]int, scope string) (fta.Event, error) {
	switch v := cause.(type) {
	case basicRef:
		rate, ok := c.BasicFailures[string(v)]
		if !ok {
			return nil, fmt.Errorf("hiphops: %q references unknown basic failure %q", c.Name, string(v))
		}
		return fta.NewBasicEvent(c.Name+"/"+string(v), rate)
	case inputRef:
		src, ok := s.wires[c.Name+"."+string(v)]
		if !ok {
			return nil, fmt.Errorf("hiphops: input %q of %q is not wired", string(v), c.Name)
		}
		i := indexDot(src)
		return s.resolve(src[:i], src[i+1:], visiting, gateSeq)
	case nary:
		var kids []fta.Event
		for _, k := range v.kids {
			e, err := s.resolveCause(c, k, visiting, gateSeq, scope)
			if err != nil {
				return nil, err
			}
			kids = append(kids, e)
		}
		gateSeq[scope]++
		name := fmt.Sprintf("%s#%s%d", scope, v.op, gateSeq[scope])
		if v.op == "and" {
			return fta.NewGate(name, fta.AND, kids...)
		}
		return fta.NewGate(name, fta.OR, kids...)
	default:
		return nil, fmt.Errorf("hiphops: unknown cause type %T", cause)
	}
}

func indexDot(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// SynthesisResult pairs the synthesized tree with its evaluation
// strategy.
type SynthesisResult struct {
	// Top is the synthesized top event.
	Top fta.Event
	// Tree is non-nil when every basic event appears once (exact gate
	// arithmetic applies).
	Tree *fta.Tree
	// Shared is non-nil when basic events repeat (common-cause
	// structure) and cut-set evaluation is required.
	Shared *fta.SharedTree
}

// Probability evaluates the synthesized top event at mission time t.
func (r *SynthesisResult) Probability(t float64) (float64, error) {
	if r.Tree != nil {
		return r.Tree.Probability(t)
	}
	if r.Shared != nil {
		return r.Shared.Probability(t)
	}
	return 0, errors.New("hiphops: empty synthesis result")
}

// MinimalCutSets returns the synthesized tree's minimal cut sets.
func (r *SynthesisResult) MinimalCutSets() [][]string {
	if r.Tree != nil {
		return r.Tree.MinimalCutSets()
	}
	if r.Shared != nil {
		return r.Shared.MinimalCutSets()
	}
	return nil
}

// BuildTree synthesizes the deviation and wraps it for evaluation,
// choosing exact gate arithmetic when possible and cut-set evaluation
// when the architecture shares basic events across branches.
func (s *System) BuildTree(component, outputDeviation string) (*SynthesisResult, error) {
	top, err := s.Synthesize(component, outputDeviation)
	if err != nil {
		return nil, err
	}
	res := &SynthesisResult{Top: top}
	if tree, err := fta.NewTree(top); err == nil {
		res.Tree = tree
		return res, nil
	}
	shared, err := fta.NewSharedTree(top)
	if err != nil {
		return nil, err
	}
	res.Shared = shared
	return res, nil
}

// Components returns the registered component names, sorted.
func (s *System) Components() []string {
	out := make([]string, 0, len(s.components))
	for n := range s.components {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
