package missionhost

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxSpecBytes bounds a POST /missions body; an embedded scenario
// document fits comfortably.
const maxSpecBytes = 1 << 20

// Handler returns the multi-mission HTTP surface:
//
//	POST   /missions              create (strict Spec JSON) -> 201 Info
//	GET    /missions              list                      -> []Info
//	GET    /missions/{id}         directory entry           -> Info
//	DELETE /missions/{id}         remove                    -> 204
//	GET    /missions/{id}/status  rendered snapshot (LRU-cached)
//	GET    /missions/{id}/stream  SSE snapshot stream (drop-oldest)
func (h *Host) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /missions", h.handleCreate)
	mux.HandleFunc("GET /missions", h.handleList)
	mux.HandleFunc("GET /missions/{id}", h.handleInfo)
	mux.HandleFunc("DELETE /missions/{id}", h.handleDelete)
	mux.HandleFunc("GET /missions/{id}/status", h.handleStatus)
	mux.HandleFunc("GET /missions/{id}/stream", h.handleStream)
	return mux
}

func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrDuplicate):
		code = http.StatusConflict
	case errors.Is(err, ErrRegistryFull):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (h *Host) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, err)
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, fmt.Errorf("missionhost: spec larger than %d bytes", maxSpecBytes))
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		return
	}
	info, err := h.Create(spec)
	if err != nil {
		if errors.Is(err, ErrDuplicate) || errors.Is(err, ErrRegistryFull) || errors.Is(err, ErrClosed) {
			httpError(w, err)
		} else {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		}
		return
	}
	w.Header().Set("Location", "/missions/"+info.ID)
	writeJSON(w, http.StatusCreated, info)
}

func (h *Host) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.List())
}

func (h *Host) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := h.Info(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *Host) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := h.Delete(r.PathValue("id")); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *Host) handleStatus(w http.ResponseWriter, r *http.Request) {
	body, err := h.Status(r.PathValue("id"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func (h *Host) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, errors.New("missionhost: streaming unsupported by this connection"))
		return
	}
	sub, err := h.Subscribe(r.PathValue("id"), 16)
	if err != nil {
		httpError(w, err)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case snap, open := <-sub.C():
			if !open {
				return
			}
			data, err := json.Marshal(snap)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: snapshot\nid: %d\ndata: %s\n\n", snap.Seq, data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
