package missionhost

import "fmt"

// Subscriber is one watcher's bounded snapshot queue. Publication
// never blocks the tick path: a full queue drops its oldest entry
// (the subscriber was going to skip it anyway — only the freshest
// state matters to a live view) and the drop is counted.
type Subscriber struct {
	m      *Mission
	ch     chan *Snapshot
	closed bool // guarded by m.subsMu
}

// C delivers published snapshots, newest last. The channel closes
// when the subscription ends (Close, mission Delete, host Shutdown).
func (s *Subscriber) C() <-chan *Snapshot { return s.ch }

// Close ends the subscription. Safe to call twice and safe to race
// with host-side closes.
func (s *Subscriber) Close() {
	s.m.subsMu.Lock()
	defer s.m.subsMu.Unlock()
	if _, ok := s.m.subs[s]; !ok {
		return
	}
	delete(s.m.subs, s)
	s.closed = true
	close(s.ch)
	s.m.host.watchers.Add(-1)
}

// Subscribe attaches a bounded watcher queue to a mission,
// rehydrating it first if it was parked mid-flight — a watcher
// arriving at an evicted mission gets a live stream, not a 404.
// buffer <= 0 defaults to 16.
func (h *Host) Subscribe(id string, buffer int) (*Subscriber, error) {
	if buffer <= 0 {
		buffer = 16
	}
	h.mu.Lock()
	m, ok := h.missions[id]
	if !ok {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	m.touch()
	err := h.wakeLocked(m)
	h.mu.Unlock()
	if err != nil {
		return nil, err
	}
	sub := &Subscriber{m: m, ch: make(chan *Snapshot, buffer)}
	m.subsMu.Lock()
	if m.subsClosed {
		m.subsMu.Unlock()
		return nil, ErrClosed
	}
	m.subs[sub] = struct{}{}
	m.subsMu.Unlock()
	h.watchers.Add(1)
	// Seed the queue with the current state so a new watcher renders
	// immediately instead of waiting for the next tick.
	if snap := m.Snapshot(); snap != nil {
		sub.ch <- snap
	}
	return sub, nil
}

// notify fans one published snapshot out to every subscriber with
// drop-oldest backpressure.
func (m *Mission) notify(snap *Snapshot) {
	m.subsMu.Lock()
	defer m.subsMu.Unlock()
	for sub := range m.subs {
		select {
		case sub.ch <- snap:
		default:
			select {
			case <-sub.ch:
				m.host.sseDrops.Add(1)
				m.host.met.sseDropsTotal.inc(1)
			default:
			}
			select {
			case sub.ch <- snap:
			default:
			}
		}
	}
}

// closeSubs ends every subscription of one mission (Delete and host
// Shutdown).
func (m *Mission) closeSubs() {
	m.subsMu.Lock()
	defer m.subsMu.Unlock()
	m.subsClosed = true
	for sub := range m.subs {
		delete(m.subs, sub)
		sub.closed = true
		close(sub.ch)
		m.host.watchers.Add(-1)
	}
}
