package missionhost

import "sesame/internal/obsv"

// metrics mirrors the host's atomic counters into an obsv.Registry.
// A nil registry keeps every method a no-op so unobserved hosts pay
// nothing on the tick path.
type metrics struct {
	reg      *obsv.Registry
	live     *obsv.Gauge
	parked   *obsv.Gauge
	watchers *obsv.Gauge

	rounds            counterMirror
	ticks             counterMirror
	parksTotal        counterMirror
	rehydrationsTotal counterMirror
	sseDropsTotal     counterMirror
	cacheHitsTotal    counterMirror
	cacheMissesTotal  counterMirror
}

// counterMirror is a nil-safe obsv counter handle.
type counterMirror struct{ c *obsv.Counter }

func (m counterMirror) inc(n uint64) {
	if m.c != nil {
		m.c.Add(n)
	}
}

func newMetrics(reg *obsv.Registry) *metrics {
	m := &metrics{reg: reg}
	if reg == nil {
		return m
	}
	m.live = reg.Gauge("sesame_missionhost_missions_live", "missions resident in memory")
	m.parked = reg.Gauge("sesame_missionhost_missions_parked", "missions checkpointed to disk")
	m.watchers = reg.Gauge("sesame_missionhost_watchers", "open SSE subscriptions")
	m.rounds = counterMirror{reg.Counter("sesame_missionhost_rounds_total", "host scheduling rounds run")}
	m.ticks = counterMirror{reg.Counter("sesame_missionhost_ticks_total", "mission simulation ticks run")}
	m.parksTotal = counterMirror{reg.Counter("sesame_missionhost_parks_total", "missions parked (checkpoint + evict)")}
	m.rehydrationsTotal = counterMirror{reg.Counter("sesame_missionhost_rehydrations_total", "parked missions rebuilt from checkpoint")}
	m.sseDropsTotal = counterMirror{reg.Counter("sesame_missionhost_sse_dropped_total", "snapshots dropped on full subscriber queues")}
	m.cacheHitsTotal = counterMirror{reg.Counter("sesame_missionhost_cache_hits_total", "rendered-status cache hits")}
	m.cacheMissesTotal = counterMirror{reg.Counter("sesame_missionhost_cache_misses_total", "rendered-status cache misses")}
	return m
}
