// Package missionhost turns the one-mission platform into a
// multi-tenant service: a registry of independent seeded missions,
// ticked with per-mission budgets on a shared bounded worker pool,
// publishing copy-on-write status snapshots that any number of
// watchers read without ever touching a tick lock. Idle or
// over-capacity missions are parked — checkpointed through the
// flightrec black-box path and released from memory — and rehydrated
// transparently on the next access, bit-identical to a mission that
// never left RAM.
package missionhost

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"regexp"

	"sesame/internal/detection"
	"sesame/internal/eddi"
	"sesame/internal/geo"
	"sesame/internal/platform"
	"sesame/internal/scenario"
	"sesame/internal/uavsim"
)

// Spec declares one hosted mission. Exactly one of three shapes:
// a generated archetype (Archetype set), a full declarative scenario
// document (Scenario set), or the classic demo mission (neither set:
// UAVs sweeping the 400 m square, as cmd/sesame-gcs has always flown).
// The host rebuilds a mission from its normalized Spec whenever it
// rehydrates a parked checkpoint, so every field must round-trip
// through JSON deterministically.
type Spec struct {
	// ID names the mission in the registry and the HTTP API. Empty
	// lets the host assign m-0001, m-0002, ...
	ID string `json:"id,omitempty"`
	// Seed drives every random stream of the mission's world. 0 means 1.
	Seed int64 `json:"seed,omitempty"`
	// Archetype generates a scenario from the seeded family
	// (maritime_sar, urban_canyon, multi_site).
	Archetype string `json:"archetype,omitempty"`
	// Scenario embeds a full declarative scenario document (the same
	// strict JSON cmd/sesame-mission -scenario accepts).
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// Classic-mission knobs; rejected when Archetype/Scenario is set.
	// UAVs 0 means 3; Persons 0 means 10 (use -1 for an empty scene);
	// HorizonS 0 means 600.
	UAVs     int     `json:"uavs,omitempty"`
	Persons  int     `json:"persons,omitempty"`
	HorizonS float64 `json:"horizon_s,omitempty"`
	// Cells is the sharded-scheduler cell count (0 = auto).
	Cells int `json:"cells,omitempty"`
	// TickBudget is how many simulation seconds this mission advances
	// per host round; 0 inherits the host default.
	TickBudget int `json:"tick_budget,omitempty"`
}

const (
	maxSpecUAVs     = 2048
	maxSpecPersons  = 500
	maxSpecHorizonS = 86400
	maxTickBudget   = 1024

	defaultSpecUAVs     = 3
	defaultSpecPersons  = 10
	defaultSpecHorizonS = 600
)

// classicHome anchors the classic demo mission — the same Nicosia
// origin cmd/sesame-gcs has always used.
var classicHome = geo.LatLng{Lat: 35.1856, Lng: 33.3823}

var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// ParseSpec decodes a strict mission spec: unknown fields and
// trailing data are rejected, defaults are filled in, and the result
// is validated.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("missionhost: spec: %w", err)
	}
	if dec.More() {
		return s, errors.New("missionhost: spec: trailing data after document")
	}
	s.Normalize()
	return s, s.Validate()
}

// Normalize fills defaulted fields so a Spec rebuilds the identical
// mission after a park/rehydrate or host restart.
func (s *Spec) Normalize() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if !s.scenarioMode() {
		if s.UAVs == 0 {
			s.UAVs = defaultSpecUAVs
		}
		if s.Persons == 0 {
			s.Persons = defaultSpecPersons
		}
		if s.HorizonS == 0 {
			s.HorizonS = defaultSpecHorizonS
		}
	}
}

func (s *Spec) scenarioMode() bool { return s.Archetype != "" || len(s.Scenario) > 0 }

// Kind reports the mission shape: "classic", "archetype" or
// "scenario".
func (s *Spec) Kind() string {
	switch {
	case len(s.Scenario) > 0:
		return "scenario"
	case s.Archetype != "":
		return "archetype"
	default:
		return "classic"
	}
}

// Validate checks a normalized Spec. Scenario documents are fully
// parsed so a bad embedded scenario fails at Create, not at the first
// rehydrate.
func (s *Spec) Validate() error {
	if s.ID != "" && !idPattern.MatchString(s.ID) {
		return fmt.Errorf("missionhost: spec: id %q: must match %s", s.ID, idPattern)
	}
	if s.Archetype != "" && len(s.Scenario) > 0 {
		return errors.New("missionhost: spec: archetype and scenario are mutually exclusive")
	}
	if s.scenarioMode() {
		if s.UAVs != 0 || s.Persons != 0 || s.HorizonS != 0 {
			return errors.New("missionhost: spec: uavs/persons/horizon_s are classic-mission fields; the scenario declares its own")
		}
		if _, err := s.resolveScenario(); err != nil {
			return err
		}
	} else {
		if s.UAVs < 1 || s.UAVs > maxSpecUAVs {
			return fmt.Errorf("missionhost: spec: uavs %d: want 1..%d", s.UAVs, maxSpecUAVs)
		}
		if s.Persons < -1 || s.Persons > maxSpecPersons {
			return fmt.Errorf("missionhost: spec: persons %d: want -1..%d", s.Persons, maxSpecPersons)
		}
		if s.HorizonS <= 0 || s.HorizonS > maxSpecHorizonS {
			return fmt.Errorf("missionhost: spec: horizon_s %g: want (0, %d]", s.HorizonS, maxSpecHorizonS)
		}
	}
	if s.Cells < 0 {
		return fmt.Errorf("missionhost: spec: cells %d: must be >= 0", s.Cells)
	}
	if s.TickBudget < 0 || s.TickBudget > maxTickBudget {
		return fmt.Errorf("missionhost: spec: tick_budget %d: want 0..%d", s.TickBudget, maxTickBudget)
	}
	return nil
}

func (s *Spec) resolveScenario() (*scenario.Scenario, error) {
	if len(s.Scenario) > 0 {
		return scenario.Load(s.Scenario)
	}
	return scenario.Generate(s.Seed, s.Archetype)
}

// built is one freshly constructed mission: a started platform plus
// the absolute simulation time the mission flies to. end is a pure
// function of the Spec, so a rebuilt mission agrees with the
// original about when the horizon falls.
type built struct {
	world *uavsim.World
	p     *platform.Platform
	end   float64
}

// build constructs the mission the Spec declares, mission started and
// ready to tick.
func (s *Spec) build(cfg platform.Config) (*built, error) {
	if s.scenarioMode() {
		sc, err := s.resolveScenario()
		if err != nil {
			return nil, err
		}
		run, err := platform.LaunchScenario(sc, cfg)
		if err != nil {
			return nil, err
		}
		return &built{world: run.World, p: run.Platform, end: run.World.Clock.Now() + sc.HorizonS}, nil
	}
	w := uavsim.NewWorld(classicHome, s.Seed)
	for i := 1; i <= s.UAVs; i++ {
		if _, err := w.AddUAV(uavsim.UAVConfig{ID: fmt.Sprintf("u%d", i), Home: classicHome, CruiseSpeedMS: 12}); err != nil {
			return nil, err
		}
	}
	a := geo.Destination(classicHome, 45, 80)
	b := geo.Destination(a, 90, 400)
	c := geo.Destination(b, 0, 400)
	d := geo.Destination(a, 0, 400)
	area := geo.Polygon{a, b, c, d}
	var scene *detection.Scene
	if s.Persons > 0 {
		var err error
		scene, err = detection.NewRandomScene(area, s.Persons, 0.2, w.Clock.Stream("scene"))
		if err != nil {
			return nil, err
		}
	}
	p, err := platform.New(w, scene, cfg)
	if err != nil {
		return nil, err
	}
	if err := p.StartMission(area); err != nil {
		p.Close()
		return nil, err
	}
	return &built{world: w, p: p, end: w.Clock.Now() + s.HorizonS}, nil
}

// MissionDigest fingerprints a flown mission: status, decision, the
// full EDDI history and the 12-decimal fleet availability — the same
// digest idiom the campaign engine and the flightrec experiment gate
// on. Two runs of the same Spec digest equal iff they are
// bit-identical.
func MissionDigest(p *platform.Platform) string {
	blob := struct {
		Status   platform.Status
		Decision string
		History  []eddi.Event
	}{p.Status(), p.Decision().String(), p.Coordinator.History("")}
	data, err := json.Marshal(blob)
	if err != nil {
		return "digest-error: " + err.Error()
	}
	if avail, err := p.Availability(); err == nil {
		data = append(data, fmt.Sprintf("avail=%.12f", avail)...)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}
