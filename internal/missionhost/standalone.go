package missionhost

// FlyStandalone builds a Spec and flies it uninterrupted in a
// dedicated single-mission loop — exactly what a standalone process
// would run — and returns the mission digest. It is the reference a
// hosted run of the same Spec must reproduce bit-identically.
func FlyStandalone(spec Spec) (string, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return "", err
	}
	h := &Host{cfg: Config{}}
	b, err := spec.build(h.platformCfg(spec))
	if err != nil {
		return "", err
	}
	defer b.p.Close()
	for b.world.Clock.Now() < b.end {
		if err := b.p.Tick(); err != nil {
			return "", err
		}
		if b.p.MissionComplete() {
			break
		}
	}
	return MissionDigest(b.p), nil
}
