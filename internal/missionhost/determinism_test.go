package missionhost

import (
	"testing"
)

// flyStandalone runs a Spec exactly the way a dedicated single-mission
// process would: build, tick to the horizon or completion, digest.
func flyStandalone(t *testing.T, spec Spec) string {
	t.Helper()
	digest, err := FlyStandalone(spec)
	if err != nil {
		t.Fatalf("standalone flight: %v", err)
	}
	return digest
}

// TestMissionHostDeterminism is the acceptance gate: a hosted
// mission's digest equals the same Spec flown standalone — including
// when the hosted mission is evicted (checkpointed through flightrec)
// mid-flight and rehydrated before finishing, and when the park spans
// a full host restart.
func TestMissionHostDeterminism(t *testing.T) {
	specs := map[string]Spec{
		"classic":         {ID: "det", Seed: 11, UAVs: 3, Persons: 6, HorizonS: 200, TickBudget: 3},
		"classic-sharded": {ID: "det", Seed: 12, UAVs: 5, Persons: 4, HorizonS: 160, Cells: 2, TickBudget: 5},
	}
	if !testing.Short() {
		specs["archetype"] = Spec{ID: "det", Seed: 7, Archetype: "urban_canyon", TickBudget: 4}
	}
	for name, spec := range specs {
		spec := spec
		t.Run(name, func(t *testing.T) {
			want := flyStandalone(t, spec)

			// Hosted, uninterrupted.
			h := newTestHost(t, Config{TickBudget: 1})
			if _, err := h.Create(spec); err != nil {
				t.Fatalf("create: %v", err)
			}
			roundsUntilDone(t, h, "det", 5000)
			got, err := h.Digest("det")
			if err != nil {
				t.Fatalf("Digest: %v", err)
			}
			if got != want {
				t.Fatalf("hosted digest %s != standalone %s", got, want)
			}

			// Hosted with a mid-flight evict/checkpoint/rehydrate cycle.
			dir := t.TempDir()
			h2, err := New(Config{ParkDir: dir, TickBudget: 1})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			t.Cleanup(h2.Close)
			if _, err := h2.Create(spec); err != nil {
				t.Fatalf("create: %v", err)
			}
			for i := 0; i < 3; i++ {
				h2.Round()
			}
			if err := h2.Park("det"); err != nil {
				t.Fatalf("Park: %v", err)
			}
			if info, _ := h2.Info("det"); info.State != "parked" {
				t.Fatalf("state after Park = %q", info.State)
			}
			// Survive a full process restart while parked.
			if err := h2.Shutdown(); err != nil {
				t.Fatalf("Shutdown: %v", err)
			}
			h3, err := New(Config{ParkDir: dir, TickBudget: 1})
			if err != nil {
				t.Fatalf("recovering New: %v", err)
			}
			t.Cleanup(h3.Close)
			if err := h3.Resume("det"); err != nil {
				t.Fatalf("Resume: %v", err)
			}
			roundsUntilDone(t, h3, "det", 5000)
			got, err = h3.Digest("det")
			if err != nil {
				t.Fatalf("Digest after rehydrate: %v", err)
			}
			if got != want {
				t.Fatalf("evict/rehydrate digest %s != standalone %s", got, want)
			}
		})
	}
}
