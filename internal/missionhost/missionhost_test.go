package missionhost

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sesame/internal/obsv"
)

func newTestHost(t *testing.T, cfg Config) *Host {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

// quickSpec is a small classic mission that ticks fast in tests.
func quickSpec(id string, seed int64) Spec {
	return Spec{ID: id, Seed: seed, UAVs: 2, Persons: 2, HorizonS: 150}
}

func roundsUntilDone(t *testing.T, h *Host, id string, max int) {
	t.Helper()
	for i := 0; i < max; i++ {
		info, err := h.Info(id)
		if err != nil {
			t.Fatalf("Info(%s): %v", id, err)
		}
		if info.Done {
			return
		}
		h.Round()
	}
	t.Fatalf("mission %s not done after %d rounds", id, max)
}

func TestSpecParseDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"id":"alpha"}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Seed != 1 || s.UAVs != defaultSpecUAVs || s.Persons != defaultSpecPersons || s.HorizonS != defaultSpecHorizonS {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if s.Kind() != "classic" {
		t.Fatalf("kind = %q, want classic", s.Kind())
	}
}

func TestSpecParseRejects(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"unknown field", `{"id":"a","bogus":1}`},
		{"trailing data", `{"id":"a"} {}`},
		{"bad id", `{"id":"no spaces"}`},
		{"archetype and scenario", `{"archetype":"maritime_sar","scenario":{"name":"x"}}`},
		{"classic fields with archetype", `{"archetype":"maritime_sar","uavs":4}`},
		{"unknown archetype", `{"archetype":"volcano"}`},
		{"bad scenario doc", `{"scenario":{"bogus":true}}`},
		{"uavs too many", `{"uavs":99999}`},
		{"persons out of range", `{"persons":-2}`},
		{"horizon out of range", `{"horizon_s":1e9}`},
		{"negative cells", `{"cells":-1}`},
		{"tick budget out of range", `{"tick_budget":9999}`},
	}
	for _, tc := range cases {
		if _, err := ParseSpec([]byte(tc.doc)); err == nil {
			t.Errorf("%s: ParseSpec accepted %s", tc.name, tc.doc)
		}
	}
}

func TestSpecKinds(t *testing.T) {
	arch := Spec{Archetype: "maritime_sar"}
	arch.Normalize()
	if err := arch.Validate(); err != nil {
		t.Fatalf("archetype spec: %v", err)
	}
	if arch.Kind() != "archetype" {
		t.Fatalf("kind = %q", arch.Kind())
	}
	doc := Spec{Scenario: json.RawMessage(`{`)}
	doc.Normalize()
	if err := doc.Validate(); err == nil {
		t.Fatal("malformed embedded scenario accepted")
	}
}

func TestCreateDuplicateID(t *testing.T) {
	h := newTestHost(t, Config{})
	if _, err := h.Create(quickSpec("twin", 1)); err != nil {
		t.Fatalf("first create: %v", err)
	}
	_, err := h.Create(quickSpec("twin", 2))
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate create: got %v, want ErrDuplicate", err)
	}
}

func TestCreateAutoIDs(t *testing.T) {
	h := newTestHost(t, Config{})
	a, err := h.Create(quickSpec("", 1))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	b, err := h.Create(quickSpec("", 2))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if a.ID != "m-0001" || b.ID != "m-0002" {
		t.Fatalf("auto ids = %q, %q", a.ID, b.ID)
	}
}

func TestRegistryFull(t *testing.T) {
	h := newTestHost(t, Config{MaxMissions: 1})
	if _, err := h.Create(quickSpec("only", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	_, err := h.Create(quickSpec("straw", 2))
	if !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("over-full create: got %v, want ErrRegistryFull", err)
	}
}

func TestRoundAdvancesAndFinishes(t *testing.T) {
	h := newTestHost(t, Config{TickBudget: 8})
	info, err := h.Create(quickSpec("run", 3))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if info.State != "running" {
		t.Fatalf("state = %q", info.State)
	}
	m, _ := h.Mission("run")
	before := m.Snapshot()
	h.Round()
	after := m.Snapshot()
	if after.Seq <= before.Seq || after.Tick <= before.Tick {
		t.Fatalf("round did not advance: before %+v after %+v", before, after)
	}
	if len(after.Status.UAVs) != 2 {
		t.Fatalf("snapshot carries %d UAVs, want 2", len(after.Status.UAVs))
	}
	roundsUntilDone(t, h, "run", 1000)
	info, _ = h.Info("run")
	if info.State != "done" || !info.Done {
		t.Fatalf("finished mission info = %+v", info)
	}
	st := h.Stats()
	if st.Ticks == 0 || st.Rounds == 0 {
		t.Fatalf("stats did not count: %+v", st)
	}
}

// TestEvictionRacingNewWatcher is the registry edge case from the
// issue: a watcher subscribing to a just-evicted mission must get a
// rehydrated live stream, not a 404.
func TestEvictionRacingNewWatcher(t *testing.T) {
	h := newTestHost(t, Config{MaxLive: 1, TickBudget: 2})
	if _, err := h.Create(quickSpec("cold", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	h.Round()
	// The second create blows the MaxLive budget and parks "cold".
	if _, err := h.Create(quickSpec("hot", 2)); err != nil {
		t.Fatalf("create: %v", err)
	}
	info, _ := h.Info("cold")
	if info.State != "parked" {
		t.Fatalf("expected cold to be parked, state = %q", info.State)
	}
	if _, err := os.Stat(filepath.Join(h.parkRoot, "cold", "meta.json")); err != nil {
		t.Fatalf("no park meta on disk: %v", err)
	}
	sub, err := h.Subscribe("cold", 4)
	if err != nil {
		t.Fatalf("Subscribe after eviction: %v", err)
	}
	defer sub.Close()
	snap := <-sub.C()
	if snap == nil || snap.Mission != "cold" {
		t.Fatalf("bad seeded snapshot: %+v", snap)
	}
	info, _ = h.Info("cold")
	if info.State != "running" {
		t.Fatalf("cold not rehydrated, state = %q", info.State)
	}
	if h.Stats().Rehydrations == 0 {
		t.Fatal("rehydration not counted")
	}
	// The stream is live again: the next round publishes.
	h.Round()
	got := false
	for !got {
		select {
		case s := <-sub.C():
			if s.Seq > snap.Seq {
				got = true
			}
		default:
			h.Round()
		}
	}
}

// TestCacheInvalidationOnTick is the registry edge case from the
// issue: the render cache is keyed by (mission, seq), so a tick
// advance must produce a fresh render, never a stale hit.
func TestCacheInvalidationOnTick(t *testing.T) {
	h := newTestHost(t, Config{})
	if _, err := h.Create(quickSpec("fresh", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	first, err := h.Status("fresh")
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	again, _ := h.Status("fresh")
	if &first[0] != &again[0] {
		t.Fatal("second read before any tick should be a cache hit (same bytes)")
	}
	st := h.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache counters = hits %d misses %d", st.CacheHits, st.CacheMisses)
	}
	h.Round()
	after, _ := h.Status("fresh")
	if string(after) == string(first) {
		t.Fatal("tick advance served a stale cached render")
	}
	var v Snapshot
	if err := json.Unmarshal(after, &v); err != nil {
		t.Fatalf("rendered status is not JSON: %v", err)
	}
	if v.Seq <= 1 || v.Mission != "fresh" {
		t.Fatalf("rendered snapshot = %+v", v)
	}
	if h.Stats().CacheMisses != 2 {
		t.Fatalf("tick advance should miss the cache: %+v", h.Stats())
	}
}

func TestCacheEviction(t *testing.T) {
	c := newRenderCache(2)
	c.put(cacheKey{"a", 1}, []byte("a1"))
	c.put(cacheKey{"b", 1}, []byte("b1"))
	c.put(cacheKey{"a", 1}, []byte("a1b")) // update, no growth
	c.put(cacheKey{"c", 1}, []byte("c1"))  // evicts b (LRU)
	if _, ok := c.get(cacheKey{"b", 1}); ok {
		t.Fatal("LRU entry survived over capacity")
	}
	if got, ok := c.get(cacheKey{"a", 1}); !ok || string(got) != "a1b" {
		t.Fatalf("updated entry = %q, %v", got, ok)
	}
	c.drop("a")
	if _, ok := c.get(cacheKey{"a", 1}); ok {
		t.Fatal("drop left a render behind")
	}
	if c.len() != 1 {
		t.Fatalf("cache len = %d, want 1", c.len())
	}
}

func TestIdleParking(t *testing.T) {
	h := newTestHost(t, Config{IdleRounds: 2})
	if _, err := h.Create(quickSpec("idle", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 3; i++ {
		h.Round()
	}
	info, _ := h.Info("idle")
	if info.State != "parked" {
		t.Fatalf("idle mission state = %q, want parked", info.State)
	}
	// Parked missions do not tick.
	tick := info.Tick
	h.Round()
	info, _ = h.Info("idle")
	if info.Tick != tick {
		t.Fatal("parked mission kept ticking")
	}
	// An explicit resume brings it back.
	if err := h.Resume("idle"); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	info, _ = h.Info("idle")
	if info.State != "running" {
		t.Fatalf("resumed state = %q", info.State)
	}
}

func TestSubscribedMissionIsNotIdleParked(t *testing.T) {
	h := newTestHost(t, Config{IdleRounds: 1})
	if _, err := h.Create(quickSpec("watched", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	sub, err := h.Subscribe("watched", 64)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	for i := 0; i < 4; i++ {
		h.Round()
	}
	info, _ := h.Info("watched")
	if info.State != "running" {
		t.Fatalf("watched mission was idle-parked: state %q", info.State)
	}
	if info.Watchers != 1 {
		t.Fatalf("watchers = %d", info.Watchers)
	}
}

func TestSubscriberDropOldest(t *testing.T) {
	h := newTestHost(t, Config{TickBudget: 4})
	if _, err := h.Create(quickSpec("firehose", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	sub, err := h.Subscribe("firehose", 1)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer sub.Close()
	for i := 0; i < 5; i++ {
		h.Round()
	}
	if h.Stats().SSEDrops == 0 {
		t.Fatal("full 1-slot queue never dropped")
	}
	// The queued snapshot is the freshest one, not the oldest.
	snap := <-sub.C()
	if latest := (func() *Snapshot { m, _ := h.Mission("firehose"); return m.Snapshot() })(); snap.Seq != latest.Seq {
		t.Fatalf("queued seq %d, latest %d: drop-oldest should keep the newest", snap.Seq, latest.Seq)
	}
}

func TestSubscriberCloseIsIdempotent(t *testing.T) {
	h := newTestHost(t, Config{})
	if _, err := h.Create(quickSpec("bye", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	sub, err := h.Subscribe("bye", 2)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	sub.Close()
	sub.Close()
	if h.Stats().Watchers != 0 {
		t.Fatalf("watchers = %d after close", h.Stats().Watchers)
	}
	if _, err := h.Subscribe("missing", 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Subscribe(missing) = %v", err)
	}
}

func TestDelete(t *testing.T) {
	h := newTestHost(t, Config{})
	if _, err := h.Create(quickSpec("gone", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	sub, err := h.Subscribe("gone", 2)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	<-sub.C() // seeded snapshot
	if err := h.Delete("gone"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, open := <-sub.C(); open {
		t.Fatal("subscriber channel still open after Delete")
	}
	if _, err := h.Info("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Info after delete = %v", err)
	}
	if _, err := h.Status("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Status after delete = %v", err)
	}
	if err := h.Delete("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete = %v", err)
	}
	// Deleting a parked mission also clears its disk state.
	if _, err := h.Create(quickSpec("parked-gone", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := h.Park("parked-gone"); err != nil {
		t.Fatalf("Park: %v", err)
	}
	dir := filepath.Join(h.parkRoot, "parked-gone")
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("park dir missing before delete: %v", err)
	}
	if err := h.Delete("parked-gone"); err != nil {
		t.Fatalf("Delete parked: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("park dir still present after delete: %v", err)
	}
}

func TestShutdownParksEverythingAndRecovers(t *testing.T) {
	dir := t.TempDir()
	h1, err := New(Config{ParkDir: dir, TickBudget: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := h1.Create(quickSpec("survivor", 5)); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 5; i++ {
		h1.Round()
	}
	before, _ := h1.Info("survivor")
	if err := h1.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := h1.Create(quickSpec("late", 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after shutdown = %v", err)
	}
	h1.Round() // must be a no-op, not a panic

	h2, err := New(Config{ParkDir: dir, TickBudget: 4})
	if err != nil {
		t.Fatalf("recovering New: %v", err)
	}
	t.Cleanup(h2.Close)
	info, err := h2.Info("survivor")
	if err != nil {
		t.Fatalf("recovered Info: %v", err)
	}
	if info.State != "parked" || info.Tick != before.Tick {
		t.Fatalf("recovered info = %+v, want parked at tick %d", info, before.Tick)
	}
	// The recovered mission flies on to completion.
	if err := h2.Resume("survivor"); err != nil {
		t.Fatalf("Resume recovered: %v", err)
	}
	roundsUntilDone(t, h2, "survivor", 1000)
}

func TestRecoverRejectsMismatchedMeta(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "liar")
	if err := os.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "meta.json"), []byte(`{"spec":{"id":"other"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{ParkDir: dir}); err == nil || !strings.Contains(err.Error(), "liar") {
		t.Fatalf("New over mismatched meta = %v", err)
	}
	if err := os.WriteFile(filepath.Join(bad, "meta.json"), []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{ParkDir: dir}); err == nil {
		t.Fatal("New accepted corrupt meta.json")
	}
}

func TestFinishedParkPersistsDigest(t *testing.T) {
	dir := t.TempDir()
	h, err := New(Config{ParkDir: dir, TickBudget: 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := h.Create(quickSpec("finis", 9)); err != nil {
		t.Fatalf("create: %v", err)
	}
	roundsUntilDone(t, h, "finis", 1000)
	want, err := h.Digest("finis")
	if err != nil {
		t.Fatalf("Digest live: %v", err)
	}
	if err := h.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// A finished park carries no checkpoint box, only the digest.
	if _, err := os.Stat(filepath.Join(dir, "finis", "box")); !os.IsNotExist(err) {
		t.Fatalf("finished park wrote a checkpoint box: %v", err)
	}
	h2, err := New(Config{ParkDir: dir})
	if err != nil {
		t.Fatalf("recovering New: %v", err)
	}
	t.Cleanup(h2.Close)
	got, err := h2.Digest("finis")
	if err != nil {
		t.Fatalf("Digest recovered: %v", err)
	}
	if got != want {
		t.Fatalf("recovered digest %s != live digest %s", got, want)
	}
	info, _ := h2.Info("finis")
	if info.State != "done" {
		t.Fatalf("recovered finished state = %q", info.State)
	}
}

func TestHostStatsAndMetricsFamilies(t *testing.T) {
	reg := obsv.NewRegistry()
	h := newTestHost(t, Config{Observability: reg, MaxLive: 1})
	if _, err := h.Create(quickSpec("a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Create(quickSpec("b", 2)); err != nil {
		t.Fatal(err)
	}
	h.Round()
	if _, err := h.Status("a"); err != nil {
		t.Fatal(err)
	}
	vals := reg.CounterValues()
	for _, name := range []string{
		"sesame_missionhost_rounds_total",
		"sesame_missionhost_ticks_total",
		"sesame_missionhost_parks_total",
	} {
		if vals[name] == 0 {
			t.Errorf("metric %s never incremented (have %v)", name, vals)
		}
	}
	st := h.Stats()
	if st.Missions != 2 || st.Live != 1 || st.Parked != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRoundWorkerPoolTicksAllMissions(t *testing.T) {
	h := newTestHost(t, Config{Workers: 4, TickBudget: 2})
	for i := 0; i < 9; i++ {
		if _, err := h.Create(quickSpec(fmt.Sprintf("w%d", i), int64(i+1))); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	h.Round()
	for i := 0; i < 9; i++ {
		info, _ := h.Info(fmt.Sprintf("w%d", i))
		if info.Tick == 0 {
			t.Fatalf("mission w%d never ticked", i)
		}
	}
}

// TestMissionHostRaceSmoke is the CI race-detector gate: 8 missions
// ticked for 50 rounds while 32 watchers hammer the lock-free read
// path and a streaming subscriber drains each mission.
func TestMissionHostRaceSmoke(t *testing.T) {
	h := newTestHost(t, Config{Workers: 4, TickBudget: 2, MaxLive: 6})
	const missions, watchers, rounds = 8, 32, 50
	ids := make([]string, missions)
	for i := range ids {
		ids[i] = fmt.Sprintf("race-%d", i)
		if _, err := h.Create(quickSpec(ids[i], int64(i+1))); err != nil {
			t.Fatalf("create: %v", err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < watchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(w+i)%missions]
				if _, err := h.Status(id); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("watcher read: %v", err)
					return
				}
				if _, err := h.Info(id); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("watcher info: %v", err)
					return
				}
			}
		}(w)
	}
	subs := make([]*Subscriber, 0, missions)
	for _, id := range ids {
		sub, err := h.Subscribe(id, 8)
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		subs = append(subs, sub)
		wg.Add(1)
		go func(sub *Subscriber) {
			defer wg.Done()
			for range sub.C() {
			}
		}(sub)
	}
	for i := 0; i < rounds; i++ {
		h.Round()
	}
	close(stop)
	for _, sub := range subs {
		sub.Close()
	}
	wg.Wait()
	st := h.Stats()
	if st.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", st.Rounds, rounds)
	}
	if st.Ticks == 0 {
		t.Fatal("no mission ever ticked")
	}
}
