package missionhost

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHTTPCrudRoundTrip(t *testing.T) {
	h := newTestHost(t, Config{})
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	// Create.
	resp, err := http.Post(srv.URL+"/missions", "application/json",
		strings.NewReader(`{"id":"web","seed":4,"uavs":2,"persons":2,"horizon_s":120}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/missions/web" {
		t.Fatalf("Location = %q", loc)
	}
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode create response: %v", err)
	}
	resp.Body.Close()
	if info.ID != "web" || info.State != "running" || info.Kind != "classic" {
		t.Fatalf("create info = %+v", info)
	}

	// List.
	resp, err = http.Get(srv.URL + "/missions")
	if err != nil {
		t.Fatalf("GET list: %v", err)
	}
	var list []Info
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != "web" {
		t.Fatalf("list = %+v", list)
	}

	// Directory entry.
	resp, err = http.Get(srv.URL + "/missions/web")
	if err != nil {
		t.Fatalf("GET info: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET info status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Status snapshot.
	h.Round()
	resp, err = http.Get(srv.URL + "/missions/web/status")
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("status content-type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	resp.Body.Close()
	if snap.Mission != "web" || snap.Tick == 0 || len(snap.Status.UAVs) != 2 {
		t.Fatalf("status snapshot = %+v", snap)
	}

	// Delete.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/missions/web", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + "/missions/web/status")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status after delete = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPCreateRejects(t *testing.T) {
	h := newTestHost(t, Config{MaxMissions: 1})
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/missions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode
	}
	if code := post(`{"bogus":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field -> %d", code)
	}
	if code := post(`{"id":"one","uavs":2,"persons":2,"horizon_s":60}`); code != http.StatusCreated {
		t.Fatalf("valid create -> %d", code)
	}
	if code := post(`{"id":"one"}`); code != http.StatusConflict {
		t.Fatalf("duplicate -> %d", code)
	}
	if code := post(`{"id":"two","uavs":2,"persons":2,"horizon_s":60}`); code != http.StatusTooManyRequests {
		t.Fatalf("registry full -> %d", code)
	}
	// DELETE on the collection path is not routed.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/missions", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /missions -> %d", resp.StatusCode)
	}
}

func TestHTTPStream(t *testing.T) {
	h := newTestHost(t, Config{TickBudget: 2})
	if _, err := h.Create(quickSpec("sse", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/missions/sse/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}

	// Publish a couple of rounds while the stream is open.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			h.Round()
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	var events int
	var last Snapshot
	for sc.Scan() && events < 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events++
	}
	<-done
	if events < 3 {
		t.Fatalf("read %d SSE events, want >= 3 (scan err %v)", events, sc.Err())
	}
	if last.Mission != "sse" || last.Seq == 0 {
		t.Fatalf("last streamed snapshot = %+v", last)
	}
	cancel()

	// Streaming an unknown mission is a 404, not a hang.
	resp2, err := http.Get(srv.URL + "/missions/nope/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("stream of unknown mission -> %d", resp2.StatusCode)
	}
}

func TestHTTPStreamRehydratesParkedMission(t *testing.T) {
	h := newTestHost(t, Config{TickBudget: 2})
	if _, err := h.Create(quickSpec("parked-sse", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	h.Round()
	if err := h.Park("parked-sse"); err != nil {
		t.Fatalf("Park: %v", err)
	}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/missions/parked-sse/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream of parked mission -> %d, want 200 after rehydrate", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			break
		}
	}
	info, _ := h.Info("parked-sse")
	if info.State != "running" {
		t.Fatalf("mission state after stream attach = %q", info.State)
	}
}
