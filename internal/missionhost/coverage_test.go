package missionhost

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownMissionErrors(t *testing.T) {
	h := newTestHost(t, Config{})
	if err := h.Resume("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resume ghost = %v", err)
	}
	if err := h.Park("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Park ghost = %v", err)
	}
	if _, err := h.Digest("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Digest ghost = %v", err)
	}
	if _, err := h.Subscribe("ghost", 4); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Subscribe ghost = %v", err)
	}
	if _, err := h.Status("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Status ghost = %v", err)
	}
	if _, err := h.Info("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Info ghost = %v", err)
	}
	if err := h.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete ghost = %v", err)
	}
}

func TestClosedHostErrors(t *testing.T) {
	dir := t.TempDir()
	h, err := New(Config{ParkDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	if _, err := h.Create(quickSpec("stay", 3)); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := h.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := h.Create(quickSpec("late", 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Create after shutdown = %v", err)
	}
	if err := h.Resume("stay"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Resume after shutdown = %v", err)
	}
	if _, err := h.Subscribe("stay", 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after shutdown = %v", err)
	}
	// A second Shutdown is a no-op, not a panic.
	if err := h.Shutdown(); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

func TestMissionAccessors(t *testing.T) {
	h := newTestHost(t, Config{})
	if _, err := h.Create(quickSpec("acc", 5)); err != nil {
		t.Fatalf("create: %v", err)
	}
	m, ok := h.Mission("acc")
	if !ok {
		t.Fatal("Mission lookup failed")
	}
	if m.ID() != "acc" {
		t.Fatalf("ID() = %q", m.ID())
	}
	if snap := m.Snapshot(); snap == nil || snap.Mission != "acc" {
		t.Fatalf("Snapshot() = %+v", snap)
	}
}

func TestHTTPNotFoundAndBadRequests(t *testing.T) {
	h := newTestHost(t, Config{})
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/missions/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown info -> %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/missions/nope", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown -> %d", resp.StatusCode)
	}

	// A spec body over the size cap is rejected before parsing.
	big := strings.Repeat(" ", maxSpecBytes+16)
	resp, err = http.Post(srv.URL+"/missions", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("oversized spec -> %d", resp.StatusCode)
	}
}

func TestHTTPCreateAfterShutdown(t *testing.T) {
	h := newTestHost(t, Config{})
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	if err := h.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, err := http.Post(srv.URL+"/missions", "application/json",
		strings.NewReader(`{"id":"late","uavs":2,"persons":2,"horizon_s":60}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create on closed host -> %d", resp.StatusCode)
	}
}

// noFlushWriter hides the Flusher interface of the underlying recorder.
type noFlushWriter struct{ http.ResponseWriter }

func TestHTTPStreamWithoutFlusher(t *testing.T) {
	h := newTestHost(t, Config{})
	if _, err := h.Create(quickSpec("nf", 1)); err != nil {
		t.Fatalf("create: %v", err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/missions/nf/stream", nil)
	h.Handler().ServeHTTP(noFlushWriter{rec}, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("stream without flusher -> %d", rec.Code)
	}
}

func TestRecoverIgnoresStrayEntries(t *testing.T) {
	dir := t.TempDir()
	// A stray file and a directory without meta.json are not parks.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "not-a-park"), 0o755); err != nil {
		t.Fatal(err)
	}
	h, err := New(Config{ParkDir: dir})
	if err != nil {
		t.Fatalf("New over stray entries: %v", err)
	}
	t.Cleanup(h.Close)
	if got := len(h.List()); got != 0 {
		t.Fatalf("recovered %d missions from stray entries", got)
	}
}

func TestRecoverRejectsCorruptMeta(t *testing.T) {
	for name, meta := range map[string]string{
		"corrupt-json": `{"spec":`,
		"unknown-mode": `{"spec":{"id":"bad","uavs":2,"persons":2,"horizon_s":60},"mode":"wat"}`,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			pd := filepath.Join(dir, "bad")
			if err := os.MkdirAll(pd, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(pd, "meta.json"), []byte(meta), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := New(Config{ParkDir: dir}); err == nil {
				t.Fatal("New accepted corrupt park metadata")
			}
		})
	}
}

// TestScenarioDocMission drives the third Spec kind — an embedded
// scenario document — through create, park, and digest-after-wake.
func TestScenarioDocMission(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", "multi_site.json"))
	if err != nil {
		t.Fatalf("read example scenario: %v", err)
	}
	spec := Spec{ID: "doc", Seed: 9, Scenario: json.RawMessage(raw), TickBudget: 4}
	if spec.Kind() != "scenario" {
		t.Fatalf("Kind = %q", spec.Kind())
	}

	// Reference: the same spec flown two rounds without interruption.
	ref := newTestHost(t, Config{})
	if _, err := ref.Create(spec); err != nil {
		t.Fatalf("create reference: %v", err)
	}
	ref.Round()
	ref.Round()
	want, err := ref.Digest("doc")
	if err != nil {
		t.Fatalf("reference digest: %v", err)
	}

	h := newTestHost(t, Config{})
	if _, err := h.Create(spec); err != nil {
		t.Fatalf("create: %v", err)
	}
	h.Round()
	h.Round()
	if err := h.Park("doc"); err != nil {
		t.Fatalf("Park: %v", err)
	}
	if info, _ := h.Info("doc"); info.State != "parked" {
		t.Fatalf("state after Park = %q", info.State)
	}
	// Digest wakes the parked mission and must match the uninterrupted run.
	got, err := h.Digest("doc")
	if err != nil {
		t.Fatalf("Digest after park: %v", err)
	}
	if got != want {
		t.Fatalf("scenario-doc digest diverged across park/wake:\n got %s\nwant %s", got, want)
	}
	if info, _ := h.Info("doc"); info.State != "running" {
		t.Fatalf("state after Digest wake = %q", info.State)
	}
}

// TestRehydrateFailsOnTamperedPark covers the rehydrate error paths: a
// missing black box and a checkpoint recorded under a different
// configuration both surface as Resume errors instead of silently
// reviving the wrong mission.
func TestRehydrateFailsOnTamperedPark(t *testing.T) {
	parkOne := func(t *testing.T, dir string) {
		t.Helper()
		h, err := New(Config{ParkDir: dir, TickBudget: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Create(quickSpec("tamper", 6)); err != nil {
			t.Fatal(err)
		}
		h.Round()
		if err := h.Shutdown(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("missing-box", func(t *testing.T) {
		dir := t.TempDir()
		parkOne(t, dir)
		if err := os.RemoveAll(filepath.Join(dir, "tamper", "box")); err != nil {
			t.Fatal(err)
		}
		h, err := New(Config{ParkDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(h.Close)
		if err := h.Resume("tamper"); err == nil {
			t.Fatal("Resume succeeded with the black box deleted")
		}
		if _, err := h.Digest("tamper"); err == nil {
			t.Fatal("Digest succeeded with the black box deleted")
		}
	})

	t.Run("config-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		parkOne(t, dir)
		metaPath := filepath.Join(dir, "tamper", "meta.json")
		raw, err := os.ReadFile(metaPath)
		if err != nil {
			t.Fatal(err)
		}
		var meta map[string]json.RawMessage
		if err := json.Unmarshal(raw, &meta); err != nil {
			t.Fatal(err)
		}
		var spec Spec
		if err := json.Unmarshal(meta["spec"], &spec); err != nil {
			t.Fatal(err)
		}
		spec.UAVs = 4 // rebuilt config no longer matches the checkpoint
		meta["spec"], _ = json.Marshal(spec)
		raw, _ = json.Marshal(meta)
		if err := os.WriteFile(metaPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		h, err := New(Config{ParkDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(h.Close)
		if err := h.Resume("tamper"); err == nil {
			t.Fatal("Resume accepted a checkpoint from a different configuration")
		}
	})
}

func TestVictimPrefersFinishedMissions(t *testing.T) {
	h := newTestHost(t, Config{TickBudget: 8})
	if _, err := h.Create(quickSpec("short", 2)); err != nil {
		t.Fatal(err)
	}
	roundsUntilDone(t, h, "short", 2000)
	longSpec := quickSpec("long", 3)
	longSpec.HorizonS = 600
	if _, err := h.Create(longSpec); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	victim := h.victimLocked(nil)
	h.mu.Unlock()
	if victim == nil || victim.ID() != "short" {
		t.Fatalf("victim = %v, want finished mission short", victim)
	}
}
