package missionhost

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// cacheKey identifies one rendered view: a mission at one published
// sequence number. Every tick bumps Seq, so a stale render can never
// be served for a newer state — cache invalidation is the key.
type cacheKey struct {
	mission string
	seq     uint64
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// renderCache is a small mutex-guarded LRU of rendered JSON bodies.
// It sits on the watcher read path only; the tick path never touches
// it.
type renderCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

func newRenderCache(capacity int) *renderCache {
	return &renderCache{cap: capacity, ll: list.New(), items: make(map[cacheKey]*list.Element)}
}

func (c *renderCache) get(k cacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

func (c *renderCache) put(k cacheKey, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, body: body})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// drop purges every cached render of one mission (on Delete).
func (c *renderCache) drop(mission string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.key.mission == mission {
			c.ll.Remove(el)
			delete(c.items, e.key)
		}
		el = next
	}
}

func (c *renderCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Status renders a mission's latest snapshot as JSON, served through
// the LRU cache. This is the watcher hot path: an atomic pointer
// load plus a cache lookup — no tick lock, no registry write lock.
func (h *Host) Status(id string) ([]byte, error) {
	m, ok := h.Mission(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	m.touch()
	snap := m.Snapshot()
	if snap == nil {
		return nil, errors.New("missionhost: " + id + ": no snapshot published")
	}
	k := cacheKey{mission: id, seq: snap.Seq}
	if body, ok := h.cache.get(k); ok {
		h.cacheHits.Add(1)
		h.met.cacheHitsTotal.inc(1)
		return body, nil
	}
	h.cacheMisses.Add(1)
	h.met.cacheMissesTotal.inc(1)
	body, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	h.cache.put(k, body)
	return body, nil
}
