package missionhost

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sesame/internal/flightrec"
	"sesame/internal/obsv"
	"sesame/internal/platform"
	"sesame/internal/uavsim"
)

// Registry error kinds; the HTTP layer maps them to status codes.
var (
	ErrNotFound     = errors.New("missionhost: mission not found")
	ErrDuplicate    = errors.New("missionhost: duplicate mission id")
	ErrRegistryFull = errors.New("missionhost: registry full")
	ErrClosed       = errors.New("missionhost: host closed")
)

// Config parameterizes a Host. The zero value is usable: sensible
// bounds everywhere and an ephemeral park directory.
type Config struct {
	// Workers bounds the shared tick pool; 0 = GOMAXPROCS capped at 8.
	Workers int
	// MaxLive bounds missions resident in memory; beyond it the least
	// recently accessed mission is parked. 0 = 64.
	MaxLive int
	// MaxMissions bounds the registry (live + parked). 0 = 4096.
	MaxMissions int
	// TickBudget is the default simulation seconds per mission per
	// Round; a Spec's tick_budget overrides it. 0 = 1.
	TickBudget int
	// IdleRounds parks a live mission after this many rounds without
	// any access and with no subscribers. 0 disables idle parking
	// (capacity parking still applies).
	IdleRounds int
	// ParkDir persists parked missions; a host restarted over the same
	// directory recovers them. "" = fresh temp directory, removed on
	// Close.
	ParkDir string
	// CacheEntries bounds the LRU cache of rendered status JSON. 0 = 1024.
	CacheEntries int
	// Observability publishes the host metric families into this
	// registry; nil disables the layer (Stats still counts).
	Observability *obsv.Registry
}

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.MaxLive <= 0 {
		c.MaxLive = 64
	}
	if c.MaxMissions <= 0 {
		c.MaxMissions = 4096
	}
	if c.TickBudget <= 0 {
		c.TickBudget = 1
	}
	if c.TickBudget > maxTickBudget {
		c.TickBudget = maxTickBudget
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
}

// Snapshot is one published copy-on-write view of a mission. The
// mission's tick loop builds a fresh Snapshot and swaps an atomic
// pointer; watchers load the pointer and read immutable data — no
// lock is shared between the two sides. Seq increases with every
// publication (ticks and state flips alike) and keys the render
// cache.
type Snapshot struct {
	Mission string          `json:"mission"`
	Seq     uint64          `json:"seq"`
	Tick    uint64          `json:"tick"`
	Time    float64         `json:"time"`
	Done    bool            `json:"done"`
	Error   string          `json:"error,omitempty"`
	Status  platform.Status `json:"status"`
}

// Info is the registry's directory entry for one mission.
type Info struct {
	ID        string  `json:"id"`
	State     string  `json:"state"` // running | parked | done | failed
	Kind      string  `json:"kind"`  // classic | archetype | scenario
	Seed      int64   `json:"seed"`
	Archetype string  `json:"archetype,omitempty"`
	Tick      uint64  `json:"tick"`
	TimeS     float64 `json:"time_s"`
	Done      bool    `json:"done"`
	Watchers  int     `json:"watchers"`
	Error     string  `json:"error,omitempty"`
}

// Stats is the host's own instrumentation snapshot.
type Stats struct {
	Missions     int    `json:"missions"`
	Live         int    `json:"live"`
	Parked       int    `json:"parked"`
	Watchers     int64  `json:"watchers"`
	Rounds       uint64 `json:"rounds"`
	Ticks        uint64 `json:"ticks"`
	Parks        uint64 `json:"parks"`
	Rehydrations uint64 `json:"rehydrations"`
	SSEDrops     uint64 `json:"sse_drops"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
}

// Host is the mission registry plus the shared tick pool.
//
// Lock order: h.mu before any m.mu before any m.subsMu. The tick
// path holds only its own mission's m.mu; the watcher read path
// holds neither — it loads the atomic snapshot pointer and consults
// the (self-locked) render cache.
type Host struct {
	cfg          Config
	parkRoot     string
	ownsParkRoot bool
	cache        *renderCache
	met          *metrics

	rounds       atomic.Uint64
	ticks        atomic.Uint64
	watchers     atomic.Int64
	parks        atomic.Uint64
	rehydrations atomic.Uint64
	sseDrops     atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64

	mu       sync.RWMutex
	closed   bool
	missions map[string]*Mission
	autoID   int
	live     int
	parked   int
}

// Mission is one hosted mission: a seeded platform while live, or a
// parked checkpoint on disk plus its last published snapshot.
type Mission struct {
	host *Host
	id   string
	spec Spec

	// lastAccess is the host round of the most recent watcher access;
	// the idle/capacity eviction policy orders victims by it.
	lastAccess atomic.Uint64
	// snap is the copy-on-write publication point.
	snap atomic.Pointer[Snapshot]

	mu      sync.Mutex // the tick lock: guards everything below
	world   *uavsim.World
	p       *platform.Platform
	end     float64
	seq     uint64
	parked  bool
	done    bool
	failure string
	// digest is persisted when a finished mission parks, so Digest
	// works without rehydrating a platform that no longer exists.
	digest string
	// parkMode records how the parked state was captured: a flightrec
	// checkpoint, a replay recipe, or the final state of a finished
	// mission.
	parkMode string
	// replayTicks is the rebuild recipe of a replay park: tick the
	// freshly built Spec this many times.
	replayTicks uint64

	subsMu     sync.Mutex
	subs       map[*Subscriber]struct{}
	subsClosed bool
}

// parkMeta is the on-disk identity of a parked mission. Mode
// "checkpoint" parks carry a flightrec checkpoint in box/; "replay"
// parks rebuild the Spec and re-tick it ReplayTicks times (the
// fallback for missions whose link traffic never leaves the event
// queue quiescent); "final" parks are finished missions and persist
// only their digest.
type parkMeta struct {
	Spec        Spec      `json:"spec"`
	Mode        string    `json:"mode"`
	ReplayTicks uint64    `json:"replay_ticks,omitempty"`
	Done        bool      `json:"done"`
	Failure     string    `json:"failure,omitempty"`
	Digest      string    `json:"digest,omitempty"`
	Snapshot    *Snapshot `json:"snapshot"`
}

// Park modes.
const (
	parkCheckpoint = "checkpoint"
	parkReplay     = "replay"
	parkFinal      = "final"
)

// New builds a host and recovers any missions parked in
// cfg.ParkDir by a previous process.
func New(cfg Config) (*Host, error) {
	cfg.normalize()
	h := &Host{cfg: cfg, missions: make(map[string]*Mission)}
	if cfg.ParkDir == "" {
		dir, err := os.MkdirTemp("", "sesame-missionhost-")
		if err != nil {
			return nil, fmt.Errorf("missionhost: park dir: %w", err)
		}
		h.parkRoot, h.ownsParkRoot = dir, true
	} else {
		if err := os.MkdirAll(cfg.ParkDir, 0o755); err != nil {
			return nil, fmt.Errorf("missionhost: park dir: %w", err)
		}
		h.parkRoot = cfg.ParkDir
	}
	h.cache = newRenderCache(cfg.CacheEntries)
	h.met = newMetrics(cfg.Observability)
	if err := h.recover(); err != nil {
		return nil, err
	}
	h.publishGauges()
	return h, nil
}

// recover re-registers every mission parked under parkRoot, without
// building any platform: recovered missions stay parked until first
// access.
func (h *Host) recover() error {
	entries, err := os.ReadDir(h.parkRoot)
	if err != nil {
		return fmt.Errorf("missionhost: recover: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(h.parkRoot, e.Name(), "meta.json"))
		if err != nil {
			continue // not a park directory; leave it alone
		}
		var meta parkMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return fmt.Errorf("missionhost: recover %s: %w", e.Name(), err)
		}
		meta.Spec.Normalize()
		if err := meta.Spec.Validate(); err != nil {
			return fmt.Errorf("missionhost: recover %s: %w", e.Name(), err)
		}
		if meta.Spec.ID != e.Name() {
			return fmt.Errorf("missionhost: recover %s: spec names mission %q", e.Name(), meta.Spec.ID)
		}
		switch meta.Mode {
		case parkCheckpoint, parkReplay, parkFinal:
		default:
			return fmt.Errorf("missionhost: recover %s: unknown park mode %q", e.Name(), meta.Mode)
		}
		m := &Mission{
			host: h, id: meta.Spec.ID, spec: meta.Spec,
			parked: true, done: meta.Done, failure: meta.Failure, digest: meta.Digest,
			parkMode: meta.Mode, replayTicks: meta.ReplayTicks,
			subs: make(map[*Subscriber]struct{}),
		}
		if meta.Snapshot != nil {
			m.seq = meta.Snapshot.Seq
			m.snap.Store(meta.Snapshot)
		} else {
			m.seq = 1
			m.snap.Store(&Snapshot{Mission: m.id, Seq: 1, Done: meta.Done, Error: meta.Failure})
		}
		h.missions[m.id] = m
		h.parked++
	}
	return nil
}

// Create registers and builds a new mission. The mission starts
// ticking on the next Round. Creating past MaxLive parks the least
// recently accessed mission to make room.
func (h *Host) Create(spec Spec) (Info, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return Info{}, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return Info{}, ErrClosed
	}
	if spec.ID == "" {
		spec.ID = h.nextIDLocked()
	}
	if _, ok := h.missions[spec.ID]; ok {
		return Info{}, fmt.Errorf("%w: %s", ErrDuplicate, spec.ID)
	}
	if len(h.missions) >= h.cfg.MaxMissions {
		return Info{}, fmt.Errorf("%w: %d missions", ErrRegistryFull, len(h.missions))
	}
	b, err := spec.build(h.platformCfg(spec))
	if err != nil {
		return Info{}, err
	}
	m := &Mission{host: h, id: spec.ID, spec: spec, subs: make(map[*Subscriber]struct{})}
	m.world, m.p, m.end = b.world, b.p, b.end
	m.lastAccess.Store(h.rounds.Load())
	m.mu.Lock()
	m.publishLocked()
	m.mu.Unlock()
	h.missions[spec.ID] = m
	h.live++
	h.evictOverCapacityLocked(m)
	h.publishGaugesLocked()
	return h.infoOf(m), nil
}

func (h *Host) nextIDLocked() string {
	for {
		h.autoID++
		id := fmt.Sprintf("m-%04d", h.autoID)
		if _, ok := h.missions[id]; !ok {
			return id
		}
	}
}

func (h *Host) platformCfg(s Spec) platform.Config {
	cfg := platform.DefaultConfig()
	// One worker per mission: parallelism comes from the host pool,
	// and serial ticks replay pooled ones bit-identically anyway.
	cfg.Workers = 1
	cfg.Cells = s.Cells
	return cfg
}

// Mission looks an entry up without touching its platform.
func (h *Host) Mission(id string) (*Mission, bool) {
	h.mu.RLock()
	m, ok := h.missions[id]
	h.mu.RUnlock()
	return m, ok
}

// List returns every mission's Info, ordered by id.
func (h *Host) List() []Info {
	h.mu.RLock()
	ms := make([]*Mission, 0, len(h.missions))
	for _, m := range h.missions {
		ms = append(ms, m)
	}
	h.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].id < ms[j].id })
	out := make([]Info, len(ms))
	for i, m := range ms {
		out[i] = h.infoOf(m)
	}
	return out
}

// Info returns one mission's directory entry.
func (h *Host) Info(id string) (Info, error) {
	m, ok := h.Mission(id)
	if !ok {
		return Info{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return h.infoOf(m), nil
}

func (h *Host) infoOf(m *Mission) Info {
	info := Info{ID: m.id, Kind: m.spec.Kind(), Seed: m.spec.Seed, Archetype: m.spec.Archetype}
	if snap := m.snap.Load(); snap != nil {
		info.Tick, info.TimeS, info.Done, info.Error = snap.Tick, snap.Time, snap.Done, snap.Error
	}
	m.subsMu.Lock()
	info.Watchers = len(m.subs)
	m.subsMu.Unlock()
	m.mu.Lock()
	parked, done, failure := m.parked, m.done, m.failure
	m.mu.Unlock()
	switch {
	case failure != "":
		info.State = "failed"
	case done:
		info.State = "done"
	case parked:
		info.State = "parked"
	default:
		info.State = "running"
	}
	info.Done = done
	return info
}

// Delete removes a mission: platform closed, subscribers closed,
// render cache and park directory purged.
func (h *Host) Delete(id string) error {
	h.mu.Lock()
	m, ok := h.missions[id]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(h.missions, id)
	m.mu.Lock()
	if m.parked {
		h.parked--
	} else {
		h.live--
	}
	if m.p != nil {
		m.p.Close()
		m.p, m.world = nil, nil
	}
	m.parked = true
	m.mu.Unlock()
	h.publishGaugesLocked()
	h.mu.Unlock()
	m.closeSubs()
	h.cache.drop(id)
	if err := os.RemoveAll(filepath.Join(h.parkRoot, id)); err != nil {
		return err
	}
	return nil
}

// Round advances every live mission by its tick budget on the shared
// worker pool, then applies the idle-parking policy. Missions tick
// independently: each worker holds only its own mission's lock.
func (h *Host) Round() {
	h.mu.RLock()
	if h.closed {
		h.mu.RUnlock()
		return
	}
	work := make([]*Mission, 0, len(h.missions))
	for _, m := range h.missions {
		work = append(work, m)
	}
	h.mu.RUnlock()
	sort.Slice(work, func(i, j int) bool { return work[i].id < work[j].id })

	round := h.rounds.Add(1)
	h.met.rounds.inc(1)

	queue := make(chan *Mission)
	var wg sync.WaitGroup
	workers := h.cfg.Workers
	if len(work) < workers {
		workers = len(work)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range queue {
				n := m.runBudget()
				if n > 0 {
					h.ticks.Add(n)
					h.met.ticks.inc(n)
				}
			}
		}()
	}
	for _, m := range work {
		queue <- m
	}
	close(queue)
	wg.Wait()

	if h.cfg.IdleRounds > 0 {
		h.parkIdle(round)
	}
	h.publishGauges()
}

// runBudget advances one mission by its per-round tick budget.
func (m *Mission) runBudget() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	budget := m.spec.TickBudget
	if budget <= 0 {
		budget = m.host.cfg.TickBudget
	}
	var n uint64
	for i := 0; i < budget; i++ {
		progressed, _ := m.stepLocked()
		if !progressed {
			break
		}
		n++
	}
	return n
}

// stepLocked is one simulation tick — exactly the standalone mission
// loop (tick while now < end, stop at completion), so a hosted
// mission's digest equals the same Spec flown standalone.
func (m *Mission) stepLocked() (progressed bool, err error) {
	if m.done || m.parked || m.p == nil {
		return false, nil
	}
	if m.world.Clock.Now() >= m.end {
		m.done = true
		m.publishLocked()
		return false, nil
	}
	if err := m.p.Tick(); err != nil {
		m.done = true
		m.failure = err.Error()
		m.publishLocked()
		return false, err
	}
	if m.p.MissionComplete() {
		m.done = true
	}
	m.publishLocked()
	return true, nil
}

// publishLocked swaps in a fresh copy-on-write snapshot and fans it
// out to subscribers. Requires m.mu.
func (m *Mission) publishLocked() {
	m.seq++
	snap := &Snapshot{Mission: m.id, Seq: m.seq, Done: m.done, Error: m.failure}
	if m.p != nil {
		snap.Tick = m.p.Ticks()
		snap.Time = m.world.Clock.Now()
		snap.Status = m.p.Status()
	} else if prev := m.snap.Load(); prev != nil {
		snap.Tick, snap.Time, snap.Status = prev.Tick, prev.Time, prev.Status
	}
	m.snap.Store(snap)
	m.notify(snap)
}

// Snapshot returns the mission's latest published view — a lock-free
// atomic pointer load.
func (m *Mission) Snapshot() *Snapshot { return m.snap.Load() }

// ID returns the mission's registry name.
func (m *Mission) ID() string { return m.id }

// touch stamps the mission as accessed this round for the eviction
// policy.
func (m *Mission) touch() { m.lastAccess.Store(m.host.rounds.Load()) }

// ---- Parking: checkpoint to flightrec, release the platform ----

func (m *Mission) parkDir() string { return filepath.Join(m.host.parkRoot, m.id) }

// quiesceSeekTicks bounds how far park chases a quiescent tick
// boundary before falling back to a replay park.
const quiesceSeekTicks = 8

// parkLocked checkpoints the mission through the flightrec path (or
// records a replay recipe / final digest) and drops its platform from
// memory. Requires m.mu.
func (m *Mission) parkLocked() error {
	if m.parked || m.p == nil {
		return nil
	}
	// A flightrec checkpoint needs a quiescent event queue. Tick
	// toward the next naturally quiescent boundary — normal mission
	// progress, published as usual, so the rehydrated run still
	// replays the standalone one. Missions whose link traffic keeps
	// frames perpetually in flight never quiesce; those park as a
	// replay recipe instead.
	for i := 0; i < quiesceSeekTicks && !m.done && m.world.Clock.Pending() > 0; i++ {
		if _, err := m.stepLocked(); err != nil {
			break // failure state is itself parkable (digest persisted)
		}
	}
	meta := parkMeta{Spec: m.spec, Done: m.done, Failure: m.failure, Mode: parkCheckpoint}
	dir := m.parkDir()
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	switch {
	case m.done:
		meta.Mode = parkFinal
		meta.Digest = MissionDigest(m.p)
	case m.world.Clock.Pending() > 0:
		meta.Mode = parkReplay
		meta.ReplayTicks = m.p.Ticks()
	default:
		ckpt, err := m.p.Checkpoint()
		if err != nil {
			return fmt.Errorf("missionhost: park %s: %w", m.id, err)
		}
		state, err := json.Marshal(ckpt)
		if err != nil {
			return fmt.Errorf("missionhost: park %s: %w", m.id, err)
		}
		rec, err := flightrec.NewRecorder(filepath.Join(dir, "box"), m.spec.Seed, m.p.ConfigDigest(), 1, flightrec.Options{})
		if err != nil {
			return fmt.Errorf("missionhost: park %s: %w", m.id, err)
		}
		if err := rec.RecordSnapshot(flightrec.Snapshot{Tick: ckpt.Tick, Time: m.world.Clock.Now(), State: state}); err != nil {
			rec.Close()
			return fmt.Errorf("missionhost: park %s: %w", m.id, err)
		}
		if err := rec.Close(); err != nil {
			return fmt.Errorf("missionhost: park %s: %w", m.id, err)
		}
	}
	meta.Snapshot = m.snap.Load()
	data, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), data, 0o644); err != nil {
		return err
	}
	m.digest = meta.Digest
	m.parkMode = meta.Mode
	m.replayTicks = meta.ReplayTicks
	m.p.Close()
	m.p, m.world = nil, nil
	m.parked = true
	m.host.parks.Add(1)
	m.host.met.parksTotal.inc(1)
	return nil
}

// rehydrateLocked rebuilds a parked, unfinished mission from its Spec
// and overlays the flightrec checkpoint — the same resume path a
// crashed standalone mission takes. Finished parked missions stay as
// they are: their snapshot and digest are already final. Requires
// m.mu. Reports whether a platform came back to life.
func (m *Mission) rehydrateLocked() (revived bool, err error) {
	if !m.parked || m.done {
		return false, nil
	}
	b, err := m.spec.build(m.host.platformCfg(m.spec))
	if err != nil {
		return false, fmt.Errorf("missionhost: rehydrate %s: %w", m.id, err)
	}
	if m.parkMode == parkReplay {
		// Replay recipe: the determinism contract makes re-ticking the
		// rebuilt Spec bit-identical to the parked run.
		for b.p.Ticks() < m.replayTicks && b.world.Clock.Now() < b.end {
			if err := b.p.Tick(); err != nil {
				b.p.Close()
				return false, fmt.Errorf("missionhost: rehydrate %s: replay: %w", m.id, err)
			}
		}
	} else {
		snap, hdr, err := flightrec.LatestSnapshot(filepath.Join(m.parkDir(), "box"), 0)
		if err != nil {
			b.p.Close()
			return false, fmt.Errorf("missionhost: rehydrate %s: %w", m.id, err)
		}
		if hdr.ConfigDigest != b.p.ConfigDigest() {
			b.p.Close()
			return false, fmt.Errorf("missionhost: rehydrate %s: checkpoint is from a different configuration", m.id)
		}
		var ps platform.PlatformSnapshot
		if err := json.Unmarshal(snap.State, &ps); err != nil {
			b.p.Close()
			return false, fmt.Errorf("missionhost: rehydrate %s: %w", m.id, err)
		}
		if err := b.p.RestoreCheckpoint(&ps); err != nil {
			b.p.Close()
			return false, fmt.Errorf("missionhost: rehydrate %s: %w", m.id, err)
		}
	}
	m.world, m.p, m.end = b.world, b.p, b.end
	m.parked = false
	m.publishLocked()
	if err := os.RemoveAll(m.parkDir()); err != nil {
		return true, err
	}
	m.host.rehydrations.Add(1)
	m.host.met.rehydrationsTotal.inc(1)
	return true, nil
}

// wakeLocked rehydrates m if parked and rebalances the live budget,
// possibly parking a colder mission. Requires h.mu (write).
func (h *Host) wakeLocked(m *Mission) error {
	m.mu.Lock()
	revived, err := m.rehydrateLocked()
	m.mu.Unlock()
	if err != nil {
		return err
	}
	if revived {
		h.parked--
		h.live++
		h.evictOverCapacityLocked(m)
		h.publishGaugesLocked()
	}
	return nil
}

// Resume forces a parked mission back into memory.
func (h *Host) Resume(id string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.missions[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if h.closed {
		return ErrClosed
	}
	m.touch()
	return h.wakeLocked(m)
}

// Park forces a mission out of memory (the eviction path, callable
// directly — tests and shutdown use it).
func (h *Host) Park(id string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.missions[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return h.parkCountedLocked(m)
}

func (h *Host) parkCountedLocked(m *Mission) error {
	m.mu.Lock()
	wasLive := !m.parked && m.p != nil
	var err error
	if wasLive {
		err = m.parkLocked()
	}
	nowParked := m.parked
	m.mu.Unlock()
	if wasLive && nowParked {
		h.live--
		h.parked++
		h.publishGaugesLocked()
	}
	return err
}

// evictOverCapacityLocked parks least-recently-accessed missions
// until the live count fits MaxLive. keep is never chosen. Requires
// h.mu (write).
func (h *Host) evictOverCapacityLocked(keep *Mission) {
	for h.live > h.cfg.MaxLive {
		victim := h.victimLocked(keep)
		if victim == nil {
			return
		}
		if err := h.parkCountedLocked(victim); err != nil {
			return // mission stays live; retry on a later round
		}
	}
}

// victimLocked picks the eviction victim: finished missions first,
// then watcher-less ones, oldest access first.
func (h *Host) victimLocked(keep *Mission) *Mission {
	var best *Mission
	var bestScore [3]uint64
	for _, m := range h.missions {
		if m == keep {
			continue
		}
		m.mu.Lock()
		candidate := !m.parked && m.p != nil
		done := m.done
		m.mu.Unlock()
		if !candidate {
			continue
		}
		m.subsMu.Lock()
		watched := len(m.subs) > 0
		m.subsMu.Unlock()
		score := [3]uint64{boolScore(!done), boolScore(watched), m.lastAccess.Load()}
		if best == nil || lessScore(score, bestScore) {
			best, bestScore = m, score
		}
	}
	return best
}

func boolScore(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func lessScore(a, b [3]uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// parkIdle parks live missions that nobody touched for IdleRounds
// rounds and nobody is streaming.
func (h *Host) parkIdle(round uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for _, m := range h.missions {
		last := m.lastAccess.Load()
		if round < last+uint64(h.cfg.IdleRounds) {
			continue
		}
		m.subsMu.Lock()
		watched := len(m.subs) > 0
		m.subsMu.Unlock()
		if watched {
			continue
		}
		_ = h.parkCountedLocked(m)
	}
}

// Digest fingerprints a mission's current state, rehydrating it if
// parked mid-flight; a finished parked mission answers from its
// persisted digest.
func (h *Host) Digest(id string) (string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.missions[id]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if err := h.wakeLocked(m); err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.p == nil {
		if m.digest != "" {
			return m.digest, nil
		}
		return "", fmt.Errorf("missionhost: %s: no platform and no persisted digest", id)
	}
	return MissionDigest(m.p), nil
}

// Stats snapshots the host counters.
func (h *Host) Stats() Stats {
	h.mu.RLock()
	s := Stats{Missions: len(h.missions), Live: h.live, Parked: h.parked}
	h.mu.RUnlock()
	s.Watchers = h.watchers.Load()
	s.Rounds = h.rounds.Load()
	s.Ticks = h.ticks.Load()
	s.Parks = h.parks.Load()
	s.Rehydrations = h.rehydrations.Load()
	s.SSEDrops = h.sseDrops.Load()
	s.CacheHits = h.cacheHits.Load()
	s.CacheMisses = h.cacheMisses.Load()
	return s
}

// publishGauges mirrors the live/parked/watcher counts into the
// metrics registry, taking the host lock itself. Callers already
// holding h.mu use publishGaugesLocked.
func (h *Host) publishGauges() {
	h.mu.RLock()
	live, parked := h.live, h.parked
	h.mu.RUnlock()
	h.setGauges(live, parked)
}

// publishGaugesLocked requires h.mu (read or write).
func (h *Host) publishGaugesLocked() { h.setGauges(h.live, h.parked) }

func (h *Host) setGauges(live, parked int) {
	if h.met == nil || h.met.reg == nil {
		return
	}
	h.met.live.Set(float64(live))
	h.met.parked.Set(float64(parked))
	h.met.watchers.Set(float64(h.watchers.Load()))
}

// Shutdown is the graceful exit: reject new work, close every
// subscriber, park every live mission (checkpointed through
// flightrec, recoverable by the next New over the same ParkDir).
func (h *Host) Shutdown() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	ms := make([]*Mission, 0, len(h.missions))
	for _, m := range h.missions {
		ms = append(ms, m)
	}
	h.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].id < ms[j].id })
	for _, m := range ms {
		m.closeSubs()
	}
	var errs []error
	h.mu.Lock()
	for _, m := range ms {
		if err := h.parkCountedLocked(m); err != nil {
			errs = append(errs, err)
		}
	}
	h.publishGaugesLocked()
	h.mu.Unlock()
	return errors.Join(errs...)
}

// Close hard-stops the host: subscribers closed, platforms released
// without checkpointing, the ephemeral park directory removed. Use
// Shutdown to keep parked state recoverable.
func (h *Host) Close() {
	h.mu.Lock()
	h.closed = true
	ms := make([]*Mission, 0, len(h.missions))
	for _, m := range h.missions {
		ms = append(ms, m)
	}
	h.mu.Unlock()
	for _, m := range ms {
		m.closeSubs()
		m.mu.Lock()
		if m.p != nil {
			m.p.Close()
			m.p, m.world = nil, nil
			m.parked = true
		}
		m.mu.Unlock()
	}
	if h.ownsParkRoot {
		_ = os.RemoveAll(h.parkRoot)
	}
}
