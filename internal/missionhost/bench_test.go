package missionhost

import (
	"fmt"
	"testing"
)

// BenchmarkMissionHost measures the two hot paths of the host: the
// shared worker pool ticking a fleet of missions (Round) and the
// lock-free watcher read path (Status on the cached snapshot).
func BenchmarkMissionHost(b *testing.B) {
	newBenchHost := func(b *testing.B, missions int) *Host {
		b.Helper()
		h, err := New(Config{TickBudget: 1, MaxLive: missions})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(h.Close)
		for i := 0; i < missions; i++ {
			spec := Spec{ID: fmt.Sprintf("b-%03d", i), Seed: int64(i + 1), UAVs: 2, Persons: 2, HorizonS: 3600}
			if _, err := h.Create(spec); err != nil {
				b.Fatal(err)
			}
		}
		return h
	}

	for _, n := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("Round/missions=%d", n), func(b *testing.B) {
			h := newBenchHost(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Round()
			}
		})
	}

	b.Run("Status/cached", func(b *testing.B) {
		h := newBenchHost(b, 4)
		h.Round()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := h.Status("b-000"); err != nil {
					b.Fatal(err)
				}
			}
		})
	})

	b.Run("Status/fanout", func(b *testing.B) {
		h := newBenchHost(b, 32)
		h.Round()
		ids := make([]string, 32)
		for i := range ids {
			ids[i] = fmt.Sprintf("b-%03d", i)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var i int
			for pb.Next() {
				if _, err := h.Status(ids[i%len(ids)]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
}
