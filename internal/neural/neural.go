// Package neural implements a minimal feed-forward neural network with
// per-neuron activation tracing. It stands in for the tiny-YOLOv4
// person-detection model of the paper: DeepKnowledge (§III-A3) does not
// need convolutions to be exercised — it needs a trained model whose
// internal neuron activations can be traced at design time and runtime,
// which this package provides.
package neural

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer non-linearity.
type Activation int

// Supported activations.
const (
	ReLU Activation = iota
	Sigmoid
	Linear
)

func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Linear:
		return "linear"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	default:
		return x
	}
}

// derivative given the activated output y (not the pre-activation).
func (a Activation) derivative(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	default:
		return 1
	}
}

// LayerSpec describes one dense layer.
type LayerSpec struct {
	Units      int
	Activation Activation
}

type layer struct {
	w    [][]float64 // [out][in]
	b    []float64
	act  Activation
	in   int
	outN int
}

// Network is a dense feed-forward network. Create with New, train with
// Train, run with Predict or PredictTrace.
type Network struct {
	inputs int
	layers []*layer
}

// New constructs a network with the given input width and layer specs,
// initialised deterministically from rng (Glorot-uniform).
func New(inputs int, rng *rand.Rand, specs ...LayerSpec) (*Network, error) {
	if inputs <= 0 {
		return nil, errors.New("neural: inputs must be positive")
	}
	if len(specs) == 0 {
		return nil, errors.New("neural: need at least one layer")
	}
	if rng == nil {
		return nil, errors.New("neural: nil rng")
	}
	n := &Network{inputs: inputs}
	prev := inputs
	for i, s := range specs {
		if s.Units <= 0 {
			return nil, fmt.Errorf("neural: layer %d has %d units", i, s.Units)
		}
		l := &layer{
			w:    make([][]float64, s.Units),
			b:    make([]float64, s.Units),
			act:  s.Activation,
			in:   prev,
			outN: s.Units,
		}
		limit := math.Sqrt(6.0 / float64(prev+s.Units))
		for o := range l.w {
			l.w[o] = make([]float64, prev)
			for j := range l.w[o] {
				l.w[o][j] = (rng.Float64()*2 - 1) * limit
			}
		}
		n.layers = append(n.layers, l)
		prev = s.Units
	}
	return n, nil
}

// Inputs returns the input width.
func (n *Network) Inputs() int { return n.inputs }

// Outputs returns the output width.
func (n *Network) Outputs() int { return n.layers[len(n.layers)-1].outN }

// NumLayers returns the number of dense layers.
func (n *Network) NumLayers() int { return len(n.layers) }

// LayerUnits returns the unit count of layer i.
func (n *Network) LayerUnits(i int) int { return n.layers[i].outN }

// Trace holds the activations of every layer for one forward pass;
// Trace[i] are the outputs of layer i.
type Trace [][]float64

// Hidden returns the concatenated activations of all layers except the
// last (the "internal neuron behaviours" DeepKnowledge analyses).
func (tr Trace) Hidden() []float64 {
	var out []float64
	for i := 0; i < len(tr)-1; i++ {
		out = append(out, tr[i]...)
	}
	return out
}

// PredictTrace runs a forward pass and returns the output along with
// the full activation trace.
func (n *Network) PredictTrace(x []float64) ([]float64, Trace, error) {
	if len(x) != n.inputs {
		return nil, nil, fmt.Errorf("neural: input width %d, want %d", len(x), n.inputs)
	}
	cur := x
	trace := make(Trace, 0, len(n.layers))
	for _, l := range n.layers {
		next := make([]float64, l.outN)
		for o := 0; o < l.outN; o++ {
			sum := l.b[o]
			w := l.w[o]
			for j, v := range cur {
				sum += w[j] * v
			}
			next[o] = l.act.apply(sum)
		}
		trace = append(trace, next)
		cur = next
	}
	out := append([]float64(nil), cur...)
	return out, trace, nil
}

// Predict runs a forward pass.
func (n *Network) Predict(x []float64) ([]float64, error) {
	out, _, err := n.PredictTrace(x)
	return out, err
}

// Sample is one training example.
type Sample struct {
	X []float64
	Y []float64
}

// Train runs epochs of stochastic gradient descent with the squared
// error loss, shuffling with rng each epoch, and returns the final
// epoch's mean loss.
func (n *Network) Train(data []Sample, epochs int, lr float64, rng *rand.Rand) (float64, error) {
	if len(data) == 0 {
		return 0, errors.New("neural: empty training set")
	}
	if epochs <= 0 || lr <= 0 {
		return 0, errors.New("neural: epochs and lr must be positive")
	}
	if rng == nil {
		return 0, errors.New("neural: nil rng")
	}
	for _, s := range data {
		if len(s.X) != n.inputs || len(s.Y) != n.Outputs() {
			return 0, errors.New("neural: sample dimensions do not match network")
		}
	}
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var loss float64
		for _, idx := range order {
			loss += n.sgdStep(data[idx], lr)
		}
		lastLoss = loss / float64(len(data))
	}
	return lastLoss, nil
}

// sgdStep backpropagates one sample and returns its squared-error loss.
func (n *Network) sgdStep(s Sample, lr float64) float64 {
	// Forward, keeping activations (including the input).
	acts := make([][]float64, len(n.layers)+1)
	acts[0] = s.X
	for li, l := range n.layers {
		cur := acts[li]
		next := make([]float64, l.outN)
		for o := 0; o < l.outN; o++ {
			sum := l.b[o]
			w := l.w[o]
			for j, v := range cur {
				sum += w[j] * v
			}
			next[o] = l.act.apply(sum)
		}
		acts[li+1] = next
	}
	out := acts[len(acts)-1]
	// Output delta for squared error: (y_hat - y) * act'(y_hat).
	var loss float64
	last := n.layers[len(n.layers)-1]
	delta := make([]float64, len(out))
	for o := range out {
		diff := out[o] - s.Y[o]
		loss += diff * diff
		delta[o] = diff * last.act.derivative(out[o])
	}
	// Backward.
	for li := len(n.layers) - 1; li >= 0; li-- {
		l := n.layers[li]
		prevAct := acts[li]
		var prevDelta []float64
		if li > 0 {
			prevDelta = make([]float64, len(prevAct))
		}
		for o := 0; o < l.outN; o++ {
			d := delta[o]
			w := l.w[o]
			if prevDelta != nil {
				for j := range w {
					prevDelta[j] += w[j] * d
				}
			}
			for j := range w {
				w[j] -= lr * d * prevAct[j]
			}
			l.b[o] -= lr * d
		}
		if prevDelta != nil {
			below := n.layers[li-1]
			for j := range prevDelta {
				prevDelta[j] *= below.act.derivative(prevAct[j])
			}
			delta = prevDelta
		}
	}
	return loss / 2
}
