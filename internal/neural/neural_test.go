package neural

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(0, rng, LayerSpec{Units: 1}); err == nil {
		t.Error("zero inputs must fail")
	}
	if _, err := New(2, rng); err == nil {
		t.Error("no layers must fail")
	}
	if _, err := New(2, nil, LayerSpec{Units: 1}); err == nil {
		t.Error("nil rng must fail")
	}
	if _, err := New(2, rng, LayerSpec{Units: 0}); err == nil {
		t.Error("zero units must fail")
	}
}

func TestPredictDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, err := New(3, rng, LayerSpec{Units: 5, Activation: ReLU}, LayerSpec{Units: 2, Activation: Sigmoid})
	if err != nil {
		t.Fatal(err)
	}
	if n.Inputs() != 3 || n.Outputs() != 2 || n.NumLayers() != 2 {
		t.Fatalf("shape wrong: in=%d out=%d layers=%d", n.Inputs(), n.Outputs(), n.NumLayers())
	}
	if n.LayerUnits(0) != 5 {
		t.Fatalf("LayerUnits(0) = %d", n.LayerUnits(0))
	}
	out, err := n.Predict([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("output width %d", len(out))
	}
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Fatalf("sigmoid output out of range: %v", v)
		}
	}
	if _, err := n.Predict([]float64{1}); err == nil {
		t.Fatal("wrong input width must fail")
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := New(4, rand.New(rand.NewSource(9)), LayerSpec{Units: 3, Activation: ReLU}, LayerSpec{Units: 1, Activation: Sigmoid})
	b, _ := New(4, rand.New(rand.NewSource(9)), LayerSpec{Units: 3, Activation: ReLU}, LayerSpec{Units: 1, Activation: Sigmoid})
	x := []float64{0.1, -0.5, 2, 0.3}
	oa, _ := a.Predict(x)
	ob, _ := b.Predict(x)
	if oa[0] != ob[0] {
		t.Fatal("same seed must give identical networks")
	}
}

func TestTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, _ := New(2, rng, LayerSpec{Units: 4, Activation: ReLU}, LayerSpec{Units: 3, Activation: ReLU}, LayerSpec{Units: 1, Activation: Sigmoid})
	out, tr, err := n.PredictTrace([]float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3 {
		t.Fatalf("trace layers = %d", len(tr))
	}
	if len(tr[0]) != 4 || len(tr[1]) != 3 || len(tr[2]) != 1 {
		t.Fatalf("trace widths wrong: %d %d %d", len(tr[0]), len(tr[1]), len(tr[2]))
	}
	if tr[2][0] != out[0] {
		t.Fatal("last trace layer must equal output")
	}
	if len(tr.Hidden()) != 7 {
		t.Fatalf("Hidden() = %d values, want 7", len(tr.Hidden()))
	}
}

func TestReLUNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, _ := New(3, rng, LayerSpec{Units: 6, Activation: ReLU}, LayerSpec{Units: 1, Activation: Linear})
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		_, tr, _ := n.PredictTrace(x)
		for _, v := range tr[0] {
			if v < 0 {
				t.Fatalf("ReLU produced negative activation %v", v)
			}
		}
	}
}

func TestTrainXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, _ := New(2, rng, LayerSpec{Units: 8, Activation: ReLU}, LayerSpec{Units: 1, Activation: Sigmoid})
	data := []Sample{
		{X: []float64{0, 0}, Y: []float64{0}},
		{X: []float64{0, 1}, Y: []float64{1}},
		{X: []float64{1, 0}, Y: []float64{1}},
		{X: []float64{1, 1}, Y: []float64{0}},
	}
	loss, err := n.Train(data, 3000, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.05 {
		t.Fatalf("XOR loss = %v, failed to converge", loss)
	}
	for _, s := range data {
		out, _ := n.Predict(s.X)
		if math.Abs(out[0]-s.Y[0]) > 0.3 {
			t.Fatalf("XOR(%v) = %v, want %v", s.X, out[0], s.Y[0])
		}
	}
}

func TestTrainReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, _ := New(1, rng, LayerSpec{Units: 6, Activation: ReLU}, LayerSpec{Units: 1, Activation: Linear})
	var data []Sample
	for i := 0; i < 50; i++ {
		x := float64(i)/25 - 1
		data = append(data, Sample{X: []float64{x}, Y: []float64{x * x}})
	}
	early, err := n.Train(data, 1, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	late, err := n.Train(data, 300, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	if late >= early {
		t.Fatalf("loss did not decrease: %v -> %v", early, late)
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, _ := New(1, rng, LayerSpec{Units: 1, Activation: Linear})
	good := []Sample{{X: []float64{1}, Y: []float64{1}}}
	if _, err := n.Train(nil, 1, 0.1, rng); err == nil {
		t.Error("empty data must fail")
	}
	if _, err := n.Train(good, 0, 0.1, rng); err == nil {
		t.Error("zero epochs must fail")
	}
	if _, err := n.Train(good, 1, 0, rng); err == nil {
		t.Error("zero lr must fail")
	}
	if _, err := n.Train(good, 1, 0.1, nil); err == nil {
		t.Error("nil rng must fail")
	}
	bad := []Sample{{X: []float64{1, 2}, Y: []float64{1}}}
	if _, err := n.Train(bad, 1, 0.1, rng); err == nil {
		t.Error("dimension mismatch must fail")
	}
}

func TestActivationString(t *testing.T) {
	if ReLU.String() != "relu" || Sigmoid.String() != "sigmoid" || Linear.String() != "linear" {
		t.Fatal("activation names wrong")
	}
	if Activation(42).String() == "" {
		t.Fatal("unknown activation must render")
	}
}

func BenchmarkPredictTrace(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, _ := New(16, rng, LayerSpec{Units: 32, Activation: ReLU}, LayerSpec{Units: 16, Activation: ReLU}, LayerSpec{Units: 2, Activation: Sigmoid})
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := n.PredictTrace(x); err != nil {
			b.Fatal(err)
		}
	}
}
