package sinadra

import (
	"testing"
)

func newAssessor(t *testing.T) *Assessor {
	t.Helper()
	a, err := NewAssessor(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAssessorValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.UncertaintyMediumAt = bad.UncertaintyHighAt
	if _, err := NewAssessor(bad); err == nil {
		t.Error("inverted uncertainty thresholds must fail")
	}
	bad = DefaultConfig()
	bad.DescendRisk = bad.RescanRisk
	if _, err := NewAssessor(bad); err == nil {
		t.Error("inverted risk thresholds must fail")
	}
}

func TestLowRiskProceeds(t *testing.T) {
	a := newAssessor(t)
	got, err := a.Assess(Situation{Uncertainty: 0.5, AltitudeM: 25, Visibility: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Advice != AdviceProceed {
		t.Fatalf("advice = %v (riskHigh=%v), want proceed", got.Advice, got.RiskHigh)
	}
	if got.RiskHigh > 0.2 {
		t.Fatalf("benign situation risk = %v", got.RiskHigh)
	}
}

func TestHighUncertaintyCriticalRescans(t *testing.T) {
	// Paper §III-A4: high detection uncertainty + high criticality ->
	// immediate re-scan.
	a := newAssessor(t)
	got, err := a.Assess(Situation{
		Uncertainty:     0.95,
		AltitudeM:       60,
		Visibility:      0.5,
		CriticalPersons: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Advice != AdviceRescan {
		t.Fatalf("advice = %v (riskHigh=%v), want rescan", got.Advice, got.RiskHigh)
	}
	if got.RiskHigh < 0.5 {
		t.Fatalf("risk = %v, want high", got.RiskHigh)
	}
}

func TestHighUncertaintyNonCriticalDescends(t *testing.T) {
	// Without critical persons the response degrades to descending
	// (the §V-B behaviour: descend to raise accuracy).
	a := newAssessor(t)
	got, err := a.Assess(Situation{
		Uncertainty: 0.92,
		AltitudeM:   60,
		Visibility:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Advice != AdviceDescend {
		t.Fatalf("advice = %v (riskHigh=%v), want descend", got.Advice, got.RiskHigh)
	}
}

func TestLowAltitudeHighUncertaintyNoDescend(t *testing.T) {
	// Already low: descending is not available, so unless risk is
	// rescan-worthy we proceed.
	a := newAssessor(t)
	got, err := a.Assess(Situation{Uncertainty: 0.85, AltitudeM: 25, Visibility: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Advice == AdviceDescend {
		t.Fatal("cannot advise descend at low altitude")
	}
}

func TestRiskMonotoneInUncertainty(t *testing.T) {
	a := newAssessor(t)
	prev := -1.0
	for _, u := range []float64{0.3, 0.85, 0.95} {
		got, err := a.Assess(Situation{Uncertainty: u, AltitudeM: 60, Visibility: 0.6, CriticalPersons: true})
		if err != nil {
			t.Fatal(err)
		}
		if got.RiskHigh <= prev {
			t.Fatalf("risk not monotone at u=%v: %v after %v", u, got.RiskHigh, prev)
		}
		prev = got.RiskHigh
	}
}

func TestCriticalityRaisesRisk(t *testing.T) {
	a := newAssessor(t)
	s := Situation{Uncertainty: 0.92, AltitudeM: 60, Visibility: 0.6}
	without, _ := a.Assess(s)
	s.CriticalPersons = true
	with, _ := a.Assess(s)
	if with.RiskHigh <= without.RiskHigh {
		t.Fatalf("criticality must raise risk: %v vs %v", with.RiskHigh, without.RiskHigh)
	}
}

func TestVisibilityLowersRisk(t *testing.T) {
	a := newAssessor(t)
	clear, _ := a.Assess(Situation{Uncertainty: 0.85, AltitudeM: 60, Visibility: 1, CriticalPersons: true})
	hazy, _ := a.Assess(Situation{Uncertainty: 0.85, AltitudeM: 60, Visibility: 0.3, CriticalPersons: true})
	if hazy.RiskHigh <= clear.RiskHigh {
		t.Fatalf("poor visibility must raise risk: %v vs %v", hazy.RiskHigh, clear.RiskHigh)
	}
}

func TestAssessValidation(t *testing.T) {
	a := newAssessor(t)
	if _, err := a.Assess(Situation{Uncertainty: -0.1, AltitudeM: 30}); err == nil {
		t.Error("negative uncertainty must fail")
	}
	if _, err := a.Assess(Situation{Uncertainty: 1.5, AltitudeM: 30}); err == nil {
		t.Error("uncertainty > 1 must fail")
	}
	if _, err := a.Assess(Situation{Uncertainty: 0.5, AltitudeM: 0}); err == nil {
		t.Error("zero altitude must fail")
	}
}

func TestPosteriorNormalized(t *testing.T) {
	a := newAssessor(t)
	got, err := a.Assess(Situation{Uncertainty: 0.85, AltitudeM: 40, Visibility: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range got.Posterior {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("posterior sums to %v", sum)
	}
}

func TestAdviceString(t *testing.T) {
	for a := AdviceProceed; a <= AdviceRescan; a++ {
		if a.String() == "" {
			t.Fatal("advice name empty")
		}
	}
	if Advice(9).String() == "" {
		t.Fatal("unknown advice must render")
	}
}

func BenchmarkAssess(b *testing.B) {
	b.ReportAllocs()
	a, err := NewAssessor(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	s := Situation{Uncertainty: 0.92, AltitudeM: 60, Visibility: 0.6, CriticalPersons: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Assess(s); err != nil {
			b.Fatal(err)
		}
	}
}
