// Package sinadra implements situation-aware dynamic risk assessment
// (paper §III-A4; Reich & Trapp, EDCC 2020) for the SAR mission: a
// Bayesian network over situational risk factors — detector
// uncertainty, survey altitude, visibility, and the criticality of
// persons potentially missed — evaluated at runtime to decide whether
// the fleet should proceed, descend, or immediately re-scan an area.
//
// The advice policy follows §III-A4: high missed-person risk with
// critical persons in the area prompts an immediate re-scan; moderate
// risk at altitude prompts descending; low risk lets the UAV proceed to
// the next task, optimizing time and energy.
package sinadra

import (
	"errors"
	"fmt"

	"sesame/internal/bayes"
)

// Advice is SINADRA's adaptation proposal.
type Advice int

// Advice values.
const (
	AdviceProceed Advice = iota
	AdviceDescend
	AdviceRescan
)

func (a Advice) String() string {
	switch a {
	case AdviceProceed:
		return "proceed"
	case AdviceDescend:
		return "descend"
	case AdviceRescan:
		return "rescan"
	default:
		return fmt.Sprintf("Advice(%d)", int(a))
	}
}

// Situation is the runtime evidence snapshot.
type Situation struct {
	// Uncertainty is the fused perception uncertainty in [0,1]
	// (SafeML + DeepKnowledge).
	Uncertainty float64
	// AltitudeM is the current survey altitude.
	AltitudeM float64
	// Visibility in [0,1].
	Visibility float64
	// CriticalPersons reports whether persons at high risk are
	// believed present in the current cell.
	CriticalPersons bool
}

// Config holds the discretization thresholds and decision bounds.
type Config struct {
	// UncertaintyHighAt is the paper's 90% threshold; MediumAt the
	// caution boundary.
	UncertaintyHighAt   float64
	UncertaintyMediumAt float64
	// LowAltitudeBelowM discretizes altitude.
	LowAltitudeBelowM float64
	// GoodVisibilityAt discretizes visibility.
	GoodVisibilityAt float64
	// RescanRisk and DescendRisk are posterior P(risk=high) bounds for
	// the advice bands.
	RescanRisk  float64
	DescendRisk float64
}

// DefaultConfig matches the §V-B experiment calibration.
func DefaultConfig() Config {
	return Config{
		UncertaintyHighAt:   0.9,
		UncertaintyMediumAt: 0.8,
		LowAltitudeBelowM:   35,
		GoodVisibilityAt:    0.7,
		RescanRisk:          0.55,
		DescendRisk:         0.15,
	}
}

// Assessment is one risk evaluation.
type Assessment struct {
	// RiskHigh is the posterior probability that the missed-person
	// risk is high.
	RiskHigh float64
	// Posterior is the full distribution over risk states
	// ("low"/"medium"/"high"). The map is owned by the Assessor's
	// precomputed table and shared, read-only, by every Assessment for
	// the same discretized situation; do not mutate it.
	Posterior map[string]float64
	Advice    Advice
}

// Assessor owns the situation BN.
//
// The evidence space is finite — 3 uncertainty bands × 2 altitude ×
// 2 visibility × 2 criticality = 24 combinations — so NewAssessor runs
// exact inference once per combination and Assess reduces to input
// validation plus a table lookup. The table is immutable after
// construction, making a single Assessor safe to share across
// concurrently assessed UAVs.
type Assessor struct {
	cfg Config
	net *bayes.Network
	// table[((u*2+alt)*2+vis)*2+crit] holds the precomputed assessment
	// for discretized evidence (u: 0=low,1=medium,2=high; alt/vis/crit:
	// binary as in discretize).
	table [24]Assessment
}

// NewAssessor builds the SAR risk network.
func NewAssessor(cfg Config) (*Assessor, error) {
	if cfg.UncertaintyHighAt <= cfg.UncertaintyMediumAt {
		return nil, errors.New("sinadra: require UncertaintyMediumAt < UncertaintyHighAt")
	}
	if cfg.RescanRisk <= cfg.DescendRisk {
		return nil, errors.New("sinadra: require DescendRisk < RescanRisk")
	}
	n := bayes.NewNetwork()
	must := func(err error) error {
		if err != nil {
			return fmt.Errorf("sinadra: building network: %w", err)
		}
		return nil
	}
	if err := must(n.AddVariable("Uncertainty", "low", "medium", "high")); err != nil {
		return nil, err
	}
	if err := must(n.AddVariable("Altitude", "low", "high")); err != nil {
		return nil, err
	}
	if err := must(n.AddVariable("Visibility", "good", "poor")); err != nil {
		return nil, err
	}
	if err := must(n.AddVariable("Criticality", "low", "high")); err != nil {
		return nil, err
	}
	if err := must(n.AddVariable("MissProb", "low", "high")); err != nil {
		return nil, err
	}
	if err := must(n.AddVariable("Risk", "low", "medium", "high")); err != nil {
		return nil, err
	}
	// Priors reflect mission planning assumptions; they are overridden
	// by evidence at runtime.
	if err := must(n.SetPrior("Uncertainty", []float64{0.6, 0.25, 0.15})); err != nil {
		return nil, err
	}
	if err := must(n.SetPrior("Altitude", []float64{0.5, 0.5})); err != nil {
		return nil, err
	}
	if err := must(n.SetPrior("Visibility", []float64{0.8, 0.2})); err != nil {
		return nil, err
	}
	if err := must(n.SetPrior("Criticality", []float64{0.7, 0.3})); err != nil {
		return nil, err
	}
	// MissProb | Uncertainty, Altitude, Visibility — probability the
	// detector misses a present person. Rows: last parent fastest
	// (Visibility), then Altitude, then Uncertainty.
	missRows := [][]float64{
		// Uncertainty=low
		{0.97, 0.03}, // alt=low, vis=good
		{0.90, 0.10}, // alt=low, vis=poor
		{0.88, 0.12}, // alt=high, vis=good
		{0.78, 0.22}, // alt=high, vis=poor
		// Uncertainty=medium
		{0.88, 0.12},
		{0.75, 0.25},
		{0.70, 0.30},
		{0.55, 0.45},
		// Uncertainty=high
		{0.60, 0.40},
		{0.45, 0.55},
		{0.35, 0.65},
		{0.20, 0.80},
	}
	if err := must(n.SetCPT("MissProb", []string{"Uncertainty", "Altitude", "Visibility"}, missRows)); err != nil {
		return nil, err
	}
	// Risk | MissProb, Criticality — missing a critical person is the
	// high-risk outcome. Rows: Criticality fastest.
	riskRows := [][]float64{
		// MissProb=low
		{0.92, 0.06, 0.02}, // criticality=low
		{0.75, 0.20, 0.05}, // criticality=high
		// MissProb=high
		{0.30, 0.45, 0.25},
		{0.05, 0.20, 0.75},
	}
	if err := must(n.SetCPT("Risk", []string{"MissProb", "Criticality"}, riskRows)); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("sinadra: %w", err)
	}
	a := &Assessor{cfg: cfg, net: n}
	// Precompute the posterior and advice of every discretized
	// situation; Assess then never runs inference.
	uncLabels := [...]string{"low", "medium", "high"}
	altLabels := [...]string{"low", "high"}
	visLabels := [...]string{"good", "poor"}
	critLabels := [...]string{"low", "high"}
	for u := 0; u < len(uncLabels); u++ {
		for alt := 0; alt < 2; alt++ {
			for vis := 0; vis < 2; vis++ {
				for crit := 0; crit < 2; crit++ {
					ev := bayes.Evidence{
						"Uncertainty": uncLabels[u],
						"Altitude":    altLabels[alt],
						"Visibility":  visLabels[vis],
						"Criticality": critLabels[crit],
					}
					post, err := n.Posterior("Risk", ev)
					if err != nil {
						return nil, fmt.Errorf("sinadra: precomputing posterior: %w", err)
					}
					out := Assessment{RiskHigh: post["high"], Posterior: post}
					switch {
					case out.RiskHigh >= cfg.RescanRisk:
						out.Advice = AdviceRescan
					case out.RiskHigh >= cfg.DescendRisk && alt == 1:
						out.Advice = AdviceDescend
					case post["high"]+post["medium"] >= cfg.RescanRisk && alt == 1:
						out.Advice = AdviceDescend
					default:
						out.Advice = AdviceProceed
					}
					a.table[((u*2+alt)*2+vis)*2+crit] = out
				}
			}
		}
	}
	return a, nil
}

// discretize maps the continuous situation onto the indexes of the
// precomputed table: u over {low, medium, high}, and binary alt
// (1 = high), vis (1 = poor), crit (1 = high).
func (a *Assessor) discretize(s Situation) (u, alt, vis, crit int, err error) {
	if s.Uncertainty < 0 || s.Uncertainty > 1 {
		return 0, 0, 0, 0, fmt.Errorf("sinadra: uncertainty %v out of [0,1]", s.Uncertainty)
	}
	if s.AltitudeM <= 0 {
		return 0, 0, 0, 0, fmt.Errorf("sinadra: altitude %v must be positive", s.AltitudeM)
	}
	switch {
	case s.Uncertainty >= a.cfg.UncertaintyHighAt:
		u = 2
	case s.Uncertainty >= a.cfg.UncertaintyMediumAt:
		u = 1
	}
	if s.AltitudeM >= a.cfg.LowAltitudeBelowM {
		alt = 1
	}
	v := s.Visibility
	if v <= 0 {
		v = 1
	}
	if v < a.cfg.GoodVisibilityAt {
		vis = 1
	}
	if s.CriticalPersons {
		crit = 1
	}
	return u, alt, vis, crit, nil
}

// Assess evaluates the situation and returns the risk posterior and
// the adaptation advice. It is a validation plus table lookup —
// allocation-free and safe for concurrent use.
func (a *Assessor) Assess(s Situation) (Assessment, error) {
	u, alt, vis, crit, err := a.discretize(s)
	if err != nil {
		return Assessment{}, err
	}
	return a.table[((u*2+alt)*2+vis)*2+crit], nil
}
