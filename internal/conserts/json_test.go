package conserts

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCompositionJSONRoundTrip(t *testing.T) {
	orig, err := BuildUAVComposition()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"navigation", "high-performance-nav", "demand", "rte", "safedrones"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("document missing %q", want)
		}
	}
	back, err := ParseComposition(data)
	if err != nil {
		t.Fatal(err)
	}
	// Behavioural equivalence over the full evidence truth table.
	names := []string{
		EvGPSQualityOK, EvNoSpoofing, EvCameraHealthy, EvPerceptionConfident,
		EvNearbyDroneDetection, EvCommsOK, EvNeighborsAvailable,
		EvReliabilityHigh, EvReliabilityMedium,
	}
	for mask := 0; mask < 1<<len(names); mask++ {
		ev := Evidence{}
		for i, n := range names {
			if mask&(1<<i) != 0 {
				ev[n] = true
			}
		}
		a1, _, err1 := EvaluateUAV(orig, ev)
		a2, _, err2 := EvaluateUAV(back, ev)
		if err1 != nil || err2 != nil || a1 != a2 {
			t.Fatalf("mask %b: %v vs %v (%v/%v)", mask, a1, a2, err1, err2)
		}
	}
	// Stable re-marshal.
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("round trip not idempotent")
	}
}

func TestParseCompositionRejectsBadDocuments(t *testing.T) {
	cases := []string{
		`{bad`,
		`{"conserts":[]}`,
		`{"conserts":[{"name":"a","guarantees":[{"id":"g","cond":{}}]}]}`,                                        // empty expr
		`{"conserts":[{"name":"a","guarantees":[{"id":"g","cond":{"rte":"x","demand":"b/c"}}]}]}`,                // two kinds
		`{"conserts":[{"name":"a","guarantees":[{"id":"g","cond":{"demand":"nosep"}}]}]}`,                        // bad demand
		`{"conserts":[{"name":"a","guarantees":[{"id":"g","cond":{"demand":"ghost/g"}}]}]}`,                      // unknown provider
		`{"conserts":[{"name":"a","guarantees":[{"id":"g","cond":{"and":[{"rte":"x"},{"demand":"trail/"}]}}]}]}`, // trailing slash
	}
	for _, c := range cases {
		if _, err := ParseComposition([]byte(c)); err == nil {
			t.Errorf("accepted invalid document: %s", c)
		}
	}
}

func TestParseHandwrittenComposition(t *testing.T) {
	doc := `{
	  "conserts": [
	    {"name": "sensor", "guarantees": [
	      {"id": "good", "rank": 1, "cond": {"rte": "sensor-ok"}}
	    ]},
	    {"name": "system", "guarantees": [
	      {"id": "full", "rank": 2, "cond": {"and": [
	        {"demand": "sensor/good"}, {"rte": "power-ok"}
	      ]}},
	      {"id": "degraded", "rank": 1, "cond": {"or": [
	        {"rte": "power-ok"}, {"rte": "battery-backup"}
	      ]}}
	    ]}
	  ]
	}`
	comp, err := ParseComposition([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	res := comp.Evaluate(Evidence{"sensor-ok": true, "power-ok": true})
	if res["system"].Best == nil || res["system"].Best.ID != "full" {
		t.Fatalf("best = %+v", res["system"].Best)
	}
	res = comp.Evaluate(Evidence{"battery-backup": true})
	if res["system"].Best == nil || res["system"].Best.ID != "degraded" {
		t.Fatalf("best = %+v", res["system"].Best)
	}
}
