// Package conserts implements Conditional Safety Certificates
// (ConSerts, paper §II-B; Reich et al., SAFECOMP 2020) — the key
// integrating technology of the SESAME stack. A ConSert offers a set
// of ranked guarantees, each conditioned on a boolean expression over
// runtime evidence (RtE, fed by the other EDDI technologies) and
// demands on guarantees offered by other ConSerts. At runtime the
// composition is resolved bottom-up: every ConSert reports the set of
// guarantees it can currently certify, and consumers read the
// best-ranked one.
//
// The concrete hierarchical UAV network of the paper's Fig. 1 —
// localization ConSerts feeding a navigation ConSert feeding the
// per-UAV ConSert, with a mission-level decider over all UAVs — is
// provided by BuildUAVComposition and DecideMission.
package conserts

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Evidence carries the runtime evidence truth values, keyed by RtE
// name. Missing names evaluate to false (fail-safe).
type Evidence map[string]bool

// Expr is a boolean condition over evidence and demands.
type Expr interface {
	eval(ev Evidence, satisfied map[string]bool) bool
	demands(into []string) []string
	String() string
}

// RtE references a runtime evidence item by name.
func RtE(name string) Expr { return rte(name) }

type rte string

func (r rte) eval(ev Evidence, _ map[string]bool) bool { return ev[string(r)] }
func (r rte) demands(into []string) []string           { return into }
func (r rte) String() string                           { return "rte:" + string(r) }

// Demand references a guarantee of another ConSert as
// "consert/guarantee". It is satisfied when the provider currently
// certifies that guarantee.
func Demand(consert, guarantee string) Expr {
	return demand(consert + "/" + guarantee)
}

type demand string

func (d demand) eval(_ Evidence, satisfied map[string]bool) bool { return satisfied[string(d)] }
func (d demand) demands(into []string) []string                  { return append(into, string(d)) }
func (d demand) String() string                                  { return "demand:" + string(d) }

// And is true when all children are true.
func And(children ...Expr) Expr { return nary{op: "and", kids: children} }

// Or is true when any child is true.
func Or(children ...Expr) Expr { return nary{op: "or", kids: children} }

type nary struct {
	op   string
	kids []Expr
}

func (n nary) eval(ev Evidence, sat map[string]bool) bool {
	if n.op == "and" {
		for _, k := range n.kids {
			if !k.eval(ev, sat) {
				return false
			}
		}
		return true
	}
	for _, k := range n.kids {
		if k.eval(ev, sat) {
			return true
		}
	}
	return false
}

func (n nary) demands(into []string) []string {
	for _, k := range n.kids {
		into = k.demands(into)
	}
	return into
}

func (n nary) String() string {
	parts := make([]string, len(n.kids))
	for i, k := range n.kids {
		parts[i] = k.String()
	}
	return n.op + "(" + strings.Join(parts, ", ") + ")"
}

// Guarantee is one conditional certificate a ConSert can offer.
type Guarantee struct {
	// ID is unique within the ConSert.
	ID string
	// Rank orders guarantees; higher is better. The evaluation reports
	// the best satisfied rank.
	Rank int
	// Cond is the certification condition. A nil Cond is always true
	// (an unconditional guarantee).
	Cond Expr
	// Description is free-text for reports.
	Description string
}

// ConSert is a set of ranked guarantees for one system or subsystem.
type ConSert struct {
	Name       string
	Guarantees []Guarantee
}

// Validate checks the ConSert is well-formed.
func (c *ConSert) Validate() error {
	if c.Name == "" {
		return errors.New("conserts: empty ConSert name")
	}
	if strings.Contains(c.Name, "/") {
		return fmt.Errorf("conserts: name %q must not contain '/'", c.Name)
	}
	if len(c.Guarantees) == 0 {
		return fmt.Errorf("conserts: %q offers no guarantees", c.Name)
	}
	seen := map[string]bool{}
	for _, g := range c.Guarantees {
		if g.ID == "" {
			return fmt.Errorf("conserts: %q has guarantee with empty id", c.Name)
		}
		if seen[g.ID] {
			return fmt.Errorf("conserts: %q has duplicate guarantee %q", c.Name, g.ID)
		}
		seen[g.ID] = true
	}
	return nil
}

// Composition is a set of ConSerts wired by demands.
type Composition struct {
	conserts map[string]*ConSert
	order    []string // topological evaluation order
	// qualified[name][i] is the precomputed "name/guaranteeID" key of
	// guarantee i of ConSert name, so evaluation never concatenates.
	qualified map[string][]string
}

// NewComposition validates the ConSerts, resolves demand references,
// and computes a topological evaluation order (demands must be
// acyclic).
func NewComposition(conserts ...*ConSert) (*Composition, error) {
	if len(conserts) == 0 {
		return nil, errors.New("conserts: empty composition")
	}
	comp := &Composition{conserts: make(map[string]*ConSert, len(conserts))}
	for _, c := range conserts {
		if c == nil {
			return nil, errors.New("conserts: nil ConSert")
		}
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if _, dup := comp.conserts[c.Name]; dup {
			return nil, fmt.Errorf("conserts: duplicate ConSert %q", c.Name)
		}
		comp.conserts[c.Name] = c
	}
	// Build dependency edges from demands and check references.
	deps := make(map[string]map[string]bool) // consert -> set of consert deps
	for name, c := range comp.conserts {
		deps[name] = make(map[string]bool)
		for _, g := range c.Guarantees {
			if g.Cond == nil {
				continue
			}
			for _, d := range g.Cond.demands(nil) {
				i := strings.Index(d, "/")
				provider, gid := d[:i], d[i+1:]
				pc, ok := comp.conserts[provider]
				if !ok {
					return nil, fmt.Errorf("conserts: %q demands unknown ConSert %q", name, provider)
				}
				found := false
				for _, pg := range pc.Guarantees {
					if pg.ID == gid {
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("conserts: %q demands unknown guarantee %q of %q", name, gid, provider)
				}
				if provider != name {
					deps[name][provider] = true
				}
			}
		}
	}
	// Kahn topological sort (deterministic by name).
	indeg := make(map[string]int)
	rdeps := make(map[string][]string)
	for name, ds := range deps {
		indeg[name] = len(ds)
		for d := range ds {
			rdeps[d] = append(rdeps[d], name)
		}
	}
	var ready []string
	for name, d := range indeg {
		if d == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		comp.order = append(comp.order, n)
		consumers := append([]string(nil), rdeps[n]...)
		sort.Strings(consumers)
		for _, c := range consumers {
			indeg[c]--
			if indeg[c] == 0 {
				ready = append(ready, c)
				sort.Strings(ready)
			}
		}
	}
	if len(comp.order) != len(comp.conserts) {
		return nil, errors.New("conserts: demand cycle detected")
	}
	comp.qualified = make(map[string][]string, len(comp.conserts))
	for name, c := range comp.conserts {
		keys := make([]string, len(c.Guarantees))
		for i, g := range c.Guarantees {
			keys[i] = name + "/" + g.ID
		}
		comp.qualified[name] = keys
	}
	return comp, nil
}

// Result is the evaluation outcome for one ConSert.
type Result struct {
	ConSert string
	// Satisfied lists the ids of all currently certified guarantees.
	Satisfied []string
	// Best is the highest-ranked satisfied guarantee, or nil when none
	// is certified (the caller should apply its modelled default, e.g.
	// emergency landing).
	Best *Guarantee
}

// Evaluate resolves the whole composition bottom-up under the given
// evidence and returns per-ConSert results. For per-tick evaluation
// loops, an Evaluator amortizes the result storage across calls.
func (comp *Composition) Evaluate(ev Evidence) map[string]Result {
	return comp.evaluateInto(ev, make(map[string]bool), make(map[string]Result, len(comp.conserts)), nil)
}

// evaluateInto runs the bottom-up resolution writing into the supplied
// satisfied set and result map; satBufs, when non-nil, provides the
// per-ConSert backing arrays for the Satisfied slices (keyed like
// comp.conserts). Callers must pass an empty satisfied map.
func (comp *Composition) evaluateInto(ev Evidence, satisfied map[string]bool, out map[string]Result, satBufs map[string][]string) map[string]Result {
	for _, name := range comp.order {
		c := comp.conserts[name]
		keys := comp.qualified[name]
		res := Result{ConSert: name, Satisfied: satBufs[name]}
		var best *Guarantee
		for i := range c.Guarantees {
			g := &c.Guarantees[i]
			ok := g.Cond == nil || g.Cond.eval(ev, satisfied)
			if ok {
				satisfied[keys[i]] = true
				res.Satisfied = append(res.Satisfied, g.ID)
				if best == nil || g.Rank > best.Rank {
					best = g
				}
			}
		}
		res.Best = best
		sort.Strings(res.Satisfied)
		if satBufs != nil {
			satBufs[name] = res.Satisfied[:0]
		}
		if len(res.Satisfied) == 0 {
			res.Satisfied = nil
		}
		out[name] = res
	}
	return out
}

// Evaluator amortizes Composition evaluation: the satisfied set, the
// result map and the Satisfied backing arrays are allocated once and
// reused, so steady-state Evaluate calls allocate nothing. The result
// map and its Satisfied slices are owned by the Evaluator and
// overwritten by the next Evaluate; copy them to retain them. Not safe
// for concurrent use — give each concurrent caller its own Evaluator.
type Evaluator struct {
	comp      *Composition
	satisfied map[string]bool
	out       map[string]Result
	satBufs   map[string][]string
}

// NewEvaluator builds a reusable evaluator over the composition.
func NewEvaluator(comp *Composition) *Evaluator {
	e := &Evaluator{
		comp:      comp,
		satisfied: make(map[string]bool),
		out:       make(map[string]Result, len(comp.conserts)),
		satBufs:   make(map[string][]string, len(comp.conserts)),
	}
	for name, c := range comp.conserts {
		e.satBufs[name] = make([]string, 0, len(c.Guarantees))
	}
	return e
}

// Evaluate is Composition.Evaluate over the evaluator's reusable
// storage. The results are identical to the allocating path.
func (e *Evaluator) Evaluate(ev Evidence) map[string]Result {
	for k := range e.satisfied {
		delete(e.satisfied, k)
	}
	return e.comp.evaluateInto(ev, e.satisfied, e.out, e.satBufs)
}

// ConSertNames returns the composition members in evaluation order.
func (comp *Composition) ConSertNames() []string {
	return append([]string(nil), comp.order...)
}
