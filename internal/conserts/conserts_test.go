package conserts

import (
	"testing"
)

func TestConSertValidate(t *testing.T) {
	cases := []struct {
		name string
		c    *ConSert
		ok   bool
	}{
		{"good", &ConSert{Name: "a", Guarantees: []Guarantee{{ID: "g"}}}, true},
		{"empty name", &ConSert{Guarantees: []Guarantee{{ID: "g"}}}, false},
		{"slash in name", &ConSert{Name: "a/b", Guarantees: []Guarantee{{ID: "g"}}}, false},
		{"no guarantees", &ConSert{Name: "a"}, false},
		{"empty guarantee id", &ConSert{Name: "a", Guarantees: []Guarantee{{}}}, false},
		{"dup guarantee", &ConSert{Name: "a", Guarantees: []Guarantee{{ID: "g"}, {ID: "g"}}}, false},
	}
	for _, c := range cases {
		if err := c.c.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
}

func TestNewCompositionValidation(t *testing.T) {
	if _, err := NewComposition(); err == nil {
		t.Error("empty composition must fail")
	}
	if _, err := NewComposition(nil); err == nil {
		t.Error("nil ConSert must fail")
	}
	a := &ConSert{Name: "a", Guarantees: []Guarantee{{ID: "g"}}}
	if _, err := NewComposition(a, a); err == nil {
		t.Error("duplicate names must fail")
	}
	// Unknown demand target.
	b := &ConSert{Name: "b", Guarantees: []Guarantee{{ID: "g", Cond: Demand("ghost", "g")}}}
	if _, err := NewComposition(b); err == nil {
		t.Error("unknown provider must fail")
	}
	c := &ConSert{Name: "c", Guarantees: []Guarantee{{ID: "g", Cond: Demand("a", "nope")}}}
	if _, err := NewComposition(a, c); err == nil {
		t.Error("unknown guarantee must fail")
	}
}

func TestCompositionCycleDetected(t *testing.T) {
	a := &ConSert{Name: "a", Guarantees: []Guarantee{{ID: "g", Cond: Demand("b", "g")}}}
	b := &ConSert{Name: "b", Guarantees: []Guarantee{{ID: "g", Cond: Demand("a", "g")}}}
	if _, err := NewComposition(a, b); err == nil {
		t.Fatal("cycle must fail")
	}
}

func TestEvaluateChain(t *testing.T) {
	lower := &ConSert{Name: "lower", Guarantees: []Guarantee{
		{ID: "ok", Rank: 1, Cond: RtE("sensor")},
	}}
	upper := &ConSert{Name: "upper", Guarantees: []Guarantee{
		{ID: "good", Rank: 2, Cond: Demand("lower", "ok")},
		{ID: "fallback", Rank: 1},
	}}
	comp, err := NewComposition(lower, upper)
	if err != nil {
		t.Fatal(err)
	}
	res := comp.Evaluate(Evidence{"sensor": true})
	if res["upper"].Best == nil || res["upper"].Best.ID != "good" {
		t.Fatalf("upper best = %+v", res["upper"].Best)
	}
	res = comp.Evaluate(Evidence{})
	if res["upper"].Best.ID != "fallback" {
		t.Fatalf("upper best = %+v, want fallback", res["upper"].Best)
	}
	if res["lower"].Best != nil {
		t.Fatal("lower must offer nothing without evidence")
	}
}

func TestExprStrings(t *testing.T) {
	e := And(RtE("a"), Or(RtE("b"), Demand("c", "d")))
	if e.String() == "" {
		t.Fatal("expression must render")
	}
}

// fullEvidence returns evidence with everything nominal.
func fullEvidence() Evidence {
	return Evidence{
		EvGPSQualityOK:         true,
		EvNoSpoofing:           true,
		EvCameraHealthy:        true,
		EvPerceptionConfident:  true,
		EvNearbyDroneDetection: true,
		EvCommsOK:              true,
		EvNeighborsAvailable:   true,
		EvReliabilityHigh:      true,
		EvReliabilityMedium:    false,
	}
}

func mustComp(t *testing.T) *Composition {
	t.Helper()
	comp, err := BuildUAVComposition()
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func TestUAVNominalContinueTakeover(t *testing.T) {
	comp := mustComp(t)
	action, results, err := EvaluateUAV(comp, fullEvidence())
	if err != nil {
		t.Fatal(err)
	}
	if action != ActionContinueTakeover {
		t.Fatalf("action = %v, want continue+takeover", action)
	}
	if results[ConSertNav].Best.ID != GuaranteeNavHighPerf {
		t.Fatalf("nav best = %v", results[ConSertNav].Best.ID)
	}
}

func TestUAVSpoofingDegradesToCollaborative(t *testing.T) {
	// §V-C: spoofing detected -> GPS localization guarantee lost ->
	// collaborative navigation takes over; reliability still high ->
	// continue (but not takeover).
	comp := mustComp(t)
	ev := fullEvidence()
	ev[EvNoSpoofing] = false
	action, results, err := EvaluateUAV(comp, ev)
	if err != nil {
		t.Fatal(err)
	}
	if results[ConSertNav].Best.ID != GuaranteeNavCollaborative {
		t.Fatalf("nav best = %v, want collaborative", results[ConSertNav].Best.ID)
	}
	if action != ActionContinue {
		t.Fatalf("action = %v, want continue", action)
	}
}

func TestUAVSpoofedAndIsolatedEmergency(t *testing.T) {
	// No GPS trust, no comms, no vision: nothing satisfiable -> the
	// Fig. 1 default, emergency landing.
	comp := mustComp(t)
	ev := Evidence{EvReliabilityHigh: true}
	action, results, err := EvaluateUAV(comp, ev)
	if err != nil {
		t.Fatal(err)
	}
	if action != ActionEmergencyLand {
		t.Fatalf("action = %v, want emergency-land", action)
	}
	if results[ConSertUAV].Best != nil {
		t.Fatal("UAV ConSert must certify nothing")
	}
}

func TestUAVVisionOnlyHolds(t *testing.T) {
	comp := mustComp(t)
	ev := Evidence{
		EvCameraHealthy:       true,
		EvPerceptionConfident: true,
		EvReliabilityMedium:   true,
	}
	action, results, err := EvaluateUAV(comp, ev)
	if err != nil {
		t.Fatal(err)
	}
	if results[ConSertNav].Best.ID != GuaranteeNavVision {
		t.Fatalf("nav best = %v, want vision", results[ConSertNav].Best.ID)
	}
	if action != ActionHold {
		t.Fatalf("action = %v, want hold", action)
	}
}

func TestUAVLowReliabilityReturns(t *testing.T) {
	// Good navigation but low reliability: only the return guarantee
	// (which demands navigation, not reliability) holds; continue and
	// hold demand at least medium reliability.
	comp := mustComp(t)
	ev := fullEvidence()
	ev[EvReliabilityHigh] = false
	ev[EvReliabilityMedium] = false
	action, _, err := EvaluateUAV(comp, ev)
	if err != nil {
		t.Fatal(err)
	}
	if action != ActionReturnToBase {
		t.Fatalf("action = %v, want return-to-base", action)
	}
}

func TestUAVCameraLossKeepsHighPerf(t *testing.T) {
	// Camera failure alone: GPS navigation unaffected.
	comp := mustComp(t)
	ev := fullEvidence()
	ev[EvCameraHealthy] = false
	action, results, err := EvaluateUAV(comp, ev)
	if err != nil {
		t.Fatal(err)
	}
	if results[ConSertNav].Best.ID != GuaranteeNavHighPerf {
		t.Fatalf("nav best = %v", results[ConSertNav].Best.ID)
	}
	if action != ActionContinueTakeover {
		t.Fatalf("action = %v", action)
	}
}

// TestUAVCompositionTruthTable sweeps all 512 evidence combinations and
// checks global invariants of the Fig. 1 network.
func TestUAVCompositionTruthTable(t *testing.T) {
	comp := mustComp(t)
	names := []string{
		EvGPSQualityOK, EvNoSpoofing, EvCameraHealthy, EvPerceptionConfident,
		EvNearbyDroneDetection, EvCommsOK, EvNeighborsAvailable,
		EvReliabilityHigh, EvReliabilityMedium,
	}
	for mask := 0; mask < 1<<len(names); mask++ {
		ev := Evidence{}
		for i, n := range names {
			if mask&(1<<i) != 0 {
				ev[n] = true
			}
		}
		action, results, err := EvaluateUAV(comp, ev)
		if err != nil {
			t.Fatal(err)
		}
		nav := results[ConSertNav]
		// Invariant 1: continue/takeover requires some navigation.
		if action.CanContinue() && nav.Best == nil {
			t.Fatalf("mask %b: continuing without navigation", mask)
		}
		// Invariant 2: takeover requires high reliability AND
		// high-performance navigation.
		if action == ActionContinueTakeover {
			if !ev[EvReliabilityHigh] || nav.Best.ID != GuaranteeNavHighPerf {
				t.Fatalf("mask %b: takeover without prerequisites", mask)
			}
		}
		// Invariant 3: no navigation at all -> emergency land.
		if nav.Best == nil && action != ActionEmergencyLand {
			t.Fatalf("mask %b: action %v without navigation", mask, action)
		}
		// Invariant 4: removing spoofing trust never improves the action.
		if ev[EvNoSpoofing] {
			ev2 := Evidence{}
			for k, v := range ev {
				ev2[k] = v
			}
			ev2[EvNoSpoofing] = false
			action2, _, err := EvaluateUAV(comp, ev2)
			if err != nil {
				t.Fatal(err)
			}
			if action2 > action {
				t.Fatalf("mask %b: losing security trust improved %v -> %v", mask, action, action2)
			}
		}
	}
}

func TestDecideMission(t *testing.T) {
	if _, err := DecideMission(nil); err == nil {
		t.Fatal("empty fleet must fail")
	}
	d, err := DecideMission(map[string]UAVAction{"a": ActionContinue, "b": ActionContinueTakeover})
	if err != nil || d != MissionAsPlanned {
		t.Fatalf("d = %v err = %v", d, err)
	}
	d, _ = DecideMission(map[string]UAVAction{"a": ActionContinue, "b": ActionReturnToBase})
	if d != MissionRedistribute {
		t.Fatalf("d = %v, want redistribute", d)
	}
	d, _ = DecideMission(map[string]UAVAction{"a": ActionEmergencyLand, "b": ActionHold})
	if d != MissionAbort {
		t.Fatalf("d = %v, want abort", d)
	}
}

func TestStrings(t *testing.T) {
	for a := ActionEmergencyLand; a <= ActionContinueTakeover; a++ {
		if a.String() == "" {
			t.Fatal("action name empty")
		}
	}
	for d := MissionAbort; d <= MissionAsPlanned; d++ {
		if d.String() == "" {
			t.Fatal("decision name empty")
		}
	}
	if UAVAction(9).String() == "" || MissionDecision(9).String() == "" {
		t.Fatal("unknown values must render")
	}
}

func BenchmarkEvaluateUAVComposition(b *testing.B) {
	comp, err := BuildUAVComposition()
	if err != nil {
		b.Fatal(err)
	}
	ev := fullEvidence()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EvaluateUAV(comp, ev); err != nil {
			b.Fatal(err)
		}
	}
}
