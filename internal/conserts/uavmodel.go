package conserts

import (
	"errors"
	"fmt"
)

// This file encodes the hierarchical ConSert network of the paper's
// Fig. 1: per-UAV localization ConSerts (GPS-based, vision-based,
// communication-based), the SafeDrones reliability estimation, the
// navigation ConSert that grades achievable accuracy, the top-level
// UAV ConSert that selects the flight action, and the mission-level
// decider that aggregates over the fleet.

// Runtime evidence names consumed by the UAV composition. The
// integration layer maps EDDI outputs onto these.
const (
	// GPS-based localization ConSert inputs.
	EvGPSQualityOK = "gps-quality-ok" // enough satellites / RTK fix
	EvNoSpoofing   = "no-spoofing"    // Security EDDI: no active attack

	// Vision-based localization ConSert inputs.
	EvCameraHealthy       = "camera-healthy"       // vision sensor health ConSert
	EvPerceptionConfident = "perception-confident" // SafeML output

	// Vision-based nearby drone detection ConSert input.
	EvNearbyDroneDetection = "nearby-drone-detection-ok"

	// Communication-based localization ConSert inputs.
	EvCommsOK            = "comms-ok"
	EvNeighborsAvailable = "neighbors-available"

	// SafeDrones reliability estimation outputs.
	EvReliabilityHigh   = "reliability-high"
	EvReliabilityMedium = "reliability-medium"
)

// ConSert and guarantee identifiers of the Fig. 1 network.
const (
	ConSertGPSLoc    = "gps-localization"
	ConSertVisionLoc = "vision-localization"
	ConSertCommLoc   = "comm-localization"
	ConSertDroneDet  = "nearby-drone-detection"
	ConSertSafeDrone = "safedrones"
	ConSertNav       = "navigation"
	ConSertUAV       = "uav"

	GuaranteeGPSAccurate  = "gps-accurate"
	GuaranteeVisionUsable = "vision-usable"
	GuaranteeCommUsable   = "comm-usable"
	GuaranteeDetectionOK  = "detection-ok"
	GuaranteeRelHigh      = "rel-high"
	GuaranteeRelMedium    = "rel-medium"
	GuaranteeRelLow       = "rel-low"

	// Navigation guarantees (Fig. 1 numbered levels, rank = quality).
	GuaranteeNavHighPerf      = "high-performance-nav" // < 0.5 m
	GuaranteeNavCollaborative = "collaborative-nav"    // < 0.75 m
	GuaranteeNavAssistant     = "assistant-nav"        // < 1 m
	GuaranteeNavVision        = "vision-nav"           // < 1 m

	// UAV guarantees.
	GuaranteeUAVContinueTakeover = "continue-takeover" // can absorb extra tasks
	GuaranteeUAVContinue         = "continue"
	GuaranteeUAVHold             = "hold"
	GuaranteeUAVReturn           = "return-to-base"
)

// BuildUAVComposition wires the per-UAV ConSert network of Fig. 1.
func BuildUAVComposition() (*Composition, error) {
	gpsLoc := &ConSert{
		Name: ConSertGPSLoc,
		Guarantees: []Guarantee{{
			ID: GuaranteeGPSAccurate, Rank: 1,
			Description: "GPS localization accurate (quality factors nominal, no security attack)",
			Cond:        And(RtE(EvGPSQualityOK), RtE(EvNoSpoofing)),
		}},
	}
	visionLoc := &ConSert{
		Name: ConSertVisionLoc,
		Guarantees: []Guarantee{{
			ID: GuaranteeVisionUsable, Rank: 1,
			Description: "Vision-based localization usable (sensor healthy, perception reliable)",
			Cond:        And(RtE(EvCameraHealthy), RtE(EvPerceptionConfident)),
		}},
	}
	commLoc := &ConSert{
		Name: ConSertCommLoc,
		Guarantees: []Guarantee{{
			ID: GuaranteeCommUsable, Rank: 1,
			Description: "Communication-based localization usable (link and neighbours available)",
			Cond:        And(RtE(EvCommsOK), RtE(EvNeighborsAvailable)),
		}},
	}
	droneDet := &ConSert{
		Name: ConSertDroneDet,
		Guarantees: []Guarantee{{
			ID: GuaranteeDetectionOK, Rank: 1,
			Description: "Vision-based nearby drone detection operational",
			Cond:        And(RtE(EvCameraHealthy), RtE(EvNearbyDroneDetection)),
		}},
	}
	safeDrones := &ConSert{
		Name: ConSertSafeDrone,
		Guarantees: []Guarantee{
			{
				ID: GuaranteeRelHigh, Rank: 3,
				Description: "High reliability (propulsion, communication, energy control)",
				Cond:        RtE(EvReliabilityHigh),
			},
			{
				ID: GuaranteeRelMedium, Rank: 2,
				Description: "Medium reliability",
				Cond:        Or(RtE(EvReliabilityHigh), RtE(EvReliabilityMedium)),
			},
			{
				ID: GuaranteeRelLow, Rank: 1,
				Description: "Low reliability (always offered; consumers must degrade)",
			},
		},
	}
	nav := &ConSert{
		Name: ConSertNav,
		Guarantees: []Guarantee{
			{
				ID: GuaranteeNavHighPerf, Rank: 4,
				Description: "High performance navigation, accuracy < 0.5 m",
				Cond:        Demand(ConSertGPSLoc, GuaranteeGPSAccurate),
			},
			{
				ID: GuaranteeNavCollaborative, Rank: 3,
				Description: "Collaborative navigation, accuracy < 0.75 m",
				Cond: And(
					Demand(ConSertCommLoc, GuaranteeCommUsable),
					Demand(ConSertDroneDet, GuaranteeDetectionOK),
				),
			},
			{
				ID: GuaranteeNavAssistant, Rank: 2,
				Description: "Assistant navigation, accuracy < 1 m",
				Cond: And(
					Demand(ConSertCommLoc, GuaranteeCommUsable),
					Demand(ConSertVisionLoc, GuaranteeVisionUsable),
				),
			},
			{
				ID: GuaranteeNavVision, Rank: 1,
				Description: "Vision-based navigation, accuracy < 1 m",
				Cond:        Demand(ConSertVisionLoc, GuaranteeVisionUsable),
			},
		},
	}
	uav := &ConSert{
		Name: ConSertUAV,
		Guarantees: []Guarantee{
			{
				ID: GuaranteeUAVContinueTakeover, Rank: 4,
				Description: "Continue mission; can take over additional tasks",
				Cond: And(
					Demand(ConSertNav, GuaranteeNavHighPerf),
					Demand(ConSertSafeDrone, GuaranteeRelHigh),
				),
			},
			{
				ID: GuaranteeUAVContinue, Rank: 3,
				Description: "Continue mission",
				Cond: And(
					Or(
						Demand(ConSertNav, GuaranteeNavHighPerf),
						Demand(ConSertNav, GuaranteeNavCollaborative),
					),
					Demand(ConSertSafeDrone, GuaranteeRelMedium),
				),
			},
			{
				ID: GuaranteeUAVHold, Rank: 2,
				Description: "Hold position until the critical situation resolves",
				Cond: And(
					Or(
						Demand(ConSertNav, GuaranteeNavAssistant),
						Demand(ConSertNav, GuaranteeNavVision),
					),
					Demand(ConSertSafeDrone, GuaranteeRelMedium),
				),
			},
			{
				ID: GuaranteeUAVReturn, Rank: 1,
				Description: "Return to base / land under degraded navigation",
				Cond: Or(
					Demand(ConSertNav, GuaranteeNavVision),
					Demand(ConSertNav, GuaranteeNavAssistant),
					Demand(ConSertNav, GuaranteeNavCollaborative),
					Demand(ConSertNav, GuaranteeNavHighPerf),
				),
			},
			// Default (no guarantee satisfiable): emergency landing —
			// represented by Best == nil in the evaluation result.
		},
	}
	return NewComposition(gpsLoc, visionLoc, commLoc, droneDet, safeDrones, nav, uav)
}

// UAVAction is the flight action the UAV ConSert selects (Fig. 1).
type UAVAction int

// Actions in decreasing capability.
const (
	ActionEmergencyLand UAVAction = iota
	ActionReturnToBase
	ActionHold
	ActionContinue
	ActionContinueTakeover
)

func (a UAVAction) String() string {
	switch a {
	case ActionContinueTakeover:
		return "continue+takeover"
	case ActionContinue:
		return "continue"
	case ActionHold:
		return "hold"
	case ActionReturnToBase:
		return "return-to-base"
	case ActionEmergencyLand:
		return "emergency-land"
	default:
		return fmt.Sprintf("UAVAction(%d)", int(a))
	}
}

// CanContinue reports whether the action lets the mission proceed.
func (a UAVAction) CanContinue() bool {
	return a == ActionContinue || a == ActionContinueTakeover
}

// EvaluateUAV runs the composition and maps the UAV ConSert's best
// guarantee to a flight action (nil best = the modelled default,
// emergency landing).
func EvaluateUAV(comp *Composition, ev Evidence) (UAVAction, map[string]Result, error) {
	if comp == nil {
		return ActionEmergencyLand, nil, errors.New("conserts: nil composition")
	}
	results := comp.Evaluate(ev)
	action, err := uavActionFrom(results)
	return action, results, err
}

// UAVAction is EvaluateUAV over the evaluator's reusable storage: the
// per-tick hot path, allocation-free in steady state.
func (e *Evaluator) UAVAction(ev Evidence) (UAVAction, error) {
	return uavActionFrom(e.Evaluate(ev))
}

// uavActionFrom maps the UAV ConSert's best guarantee to the flight
// action.
func uavActionFrom(results map[string]Result) (UAVAction, error) {
	uavRes, ok := results[ConSertUAV]
	if !ok {
		return ActionEmergencyLand, fmt.Errorf("conserts: composition has no %q ConSert", ConSertUAV)
	}
	if uavRes.Best == nil {
		return ActionEmergencyLand, nil
	}
	switch uavRes.Best.ID {
	case GuaranteeUAVContinueTakeover:
		return ActionContinueTakeover, nil
	case GuaranteeUAVContinue:
		return ActionContinue, nil
	case GuaranteeUAVHold:
		return ActionHold, nil
	case GuaranteeUAVReturn:
		return ActionReturnToBase, nil
	default:
		return ActionEmergencyLand, fmt.Errorf("conserts: unknown UAV guarantee %q", uavRes.Best.ID)
	}
}

// MissionDecision is the mission-level decider outcome (Fig. 1 top).
type MissionDecision int

// Decisions.
const (
	MissionAbort MissionDecision = iota
	MissionRedistribute
	MissionAsPlanned
)

func (d MissionDecision) String() string {
	switch d {
	case MissionAsPlanned:
		return "mission-complete-as-planned"
	case MissionRedistribute:
		return "task-redistribution-needed"
	case MissionAbort:
		return "mission-cannot-be-completed"
	default:
		return fmt.Sprintf("MissionDecision(%d)", int(d))
	}
}

// DecideMission aggregates per-UAV actions (Σ over UAVs in Fig. 1):
// every UAV able to continue means the mission completes as planned; at
// least one means tasks are redistributed among the remaining capable
// UAVs; none means the mission cannot be fully completed.
func DecideMission(actions map[string]UAVAction) (MissionDecision, error) {
	if len(actions) == 0 {
		return MissionAbort, errors.New("conserts: no UAVs to decide over")
	}
	capable := 0
	for _, a := range actions {
		if a.CanContinue() {
			capable++
		}
	}
	switch {
	case capable == len(actions):
		return MissionAsPlanned, nil
	case capable > 0:
		return MissionRedistribute, nil
	default:
		return MissionAbort, nil
	}
}
