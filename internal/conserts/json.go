package conserts

// JSON exchange format for ConSert models, mirroring how the EDDI
// toolchain ships ConSerts as design-time artefacts: a composition
// document holds named ConSerts, each with ranked guarantees whose
// conditions are nested and/or trees over runtime evidence references
// and demands.

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

type exprJSON struct {
	RtE    string     `json:"rte,omitempty"`
	Demand string     `json:"demand,omitempty"` // "consert/guarantee"
	And    []exprJSON `json:"and,omitempty"`
	Or     []exprJSON `json:"or,omitempty"`
}

type guaranteeJSON struct {
	ID          string    `json:"id"`
	Rank        int       `json:"rank"`
	Description string    `json:"description,omitempty"`
	Cond        *exprJSON `json:"cond,omitempty"`
}

type consertJSON struct {
	Name       string          `json:"name"`
	Guarantees []guaranteeJSON `json:"guarantees"`
}

type compositionJSON struct {
	ConSerts []consertJSON `json:"conserts"`
}

func encodeExpr(e Expr) (*exprJSON, error) {
	switch v := e.(type) {
	case nil:
		return nil, nil
	case rte:
		return &exprJSON{RtE: string(v)}, nil
	case demand:
		return &exprJSON{Demand: string(v)}, nil
	case nary:
		kids := make([]exprJSON, 0, len(v.kids))
		for _, k := range v.kids {
			ek, err := encodeExpr(k)
			if err != nil {
				return nil, err
			}
			if ek == nil {
				return nil, errors.New("conserts: nil child expression")
			}
			kids = append(kids, *ek)
		}
		if v.op == "and" {
			return &exprJSON{And: kids}, nil
		}
		return &exprJSON{Or: kids}, nil
	default:
		return nil, fmt.Errorf("conserts: cannot encode expression type %T", e)
	}
}

func decodeExpr(j *exprJSON) (Expr, error) {
	if j == nil {
		return nil, nil
	}
	set := 0
	if j.RtE != "" {
		set++
	}
	if j.Demand != "" {
		set++
	}
	if len(j.And) > 0 {
		set++
	}
	if len(j.Or) > 0 {
		set++
	}
	if set != 1 {
		return nil, errors.New("conserts: expression must have exactly one of rte/demand/and/or")
	}
	switch {
	case j.RtE != "":
		return RtE(j.RtE), nil
	case j.Demand != "":
		i := strings.Index(j.Demand, "/")
		if i <= 0 || i == len(j.Demand)-1 {
			return nil, fmt.Errorf("conserts: demand %q must be consert/guarantee", j.Demand)
		}
		return Demand(j.Demand[:i], j.Demand[i+1:]), nil
	case len(j.And) > 0:
		kids, err := decodeKids(j.And)
		if err != nil {
			return nil, err
		}
		return And(kids...), nil
	default:
		kids, err := decodeKids(j.Or)
		if err != nil {
			return nil, err
		}
		return Or(kids...), nil
	}
}

func decodeKids(js []exprJSON) ([]Expr, error) {
	out := make([]Expr, 0, len(js))
	for i := range js {
		k, err := decodeExpr(&js[i])
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// MarshalJSON encodes the composition as its exchange document, with
// ConSerts in evaluation order.
func (comp *Composition) MarshalJSON() ([]byte, error) {
	doc := compositionJSON{}
	for _, name := range comp.order {
		c := comp.conserts[name]
		cj := consertJSON{Name: c.Name}
		for _, g := range c.Guarantees {
			cond, err := encodeExpr(g.Cond)
			if err != nil {
				return nil, err
			}
			cj.Guarantees = append(cj.Guarantees, guaranteeJSON{
				ID: g.ID, Rank: g.Rank, Description: g.Description, Cond: cond,
			})
		}
		doc.ConSerts = append(doc.ConSerts, cj)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// ParseComposition decodes and validates a composition document.
func ParseComposition(data []byte) (*Composition, error) {
	var doc compositionJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("conserts: decoding: %w", err)
	}
	var cs []*ConSert
	for _, cj := range doc.ConSerts {
		c := &ConSert{Name: cj.Name}
		for _, gj := range cj.Guarantees {
			cond, err := decodeExpr(gj.Cond)
			if err != nil {
				return nil, err
			}
			c.Guarantees = append(c.Guarantees, Guarantee{
				ID: gj.ID, Rank: gj.Rank, Description: gj.Description, Cond: cond,
			})
		}
		cs = append(cs, c)
	}
	return NewComposition(cs...)
}
