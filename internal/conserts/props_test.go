package conserts

// Property-based tests of the Fig. 1 network: the ConSert conditions
// are monotone boolean expressions over positive-polarity evidence, so
// gaining evidence can never worsen the selected action.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var evidenceNames = []string{
	EvGPSQualityOK, EvNoSpoofing, EvCameraHealthy, EvPerceptionConfident,
	EvNearbyDroneDetection, EvCommsOK, EvNeighborsAvailable,
	EvReliabilityHigh, EvReliabilityMedium,
}

func evidenceFromMask(mask uint16) Evidence {
	ev := Evidence{}
	for i, n := range evidenceNames {
		if mask&(1<<i) != 0 {
			ev[n] = true
		}
	}
	return ev
}

func TestActionMonotoneInEvidence(t *testing.T) {
	comp, err := BuildUAVComposition()
	if err != nil {
		t.Fatal(err)
	}
	f := func(maskRaw uint16, flipRaw uint8) bool {
		mask := maskRaw % (1 << len(evidenceNames))
		flip := uint16(1) << (int(flipRaw) % len(evidenceNames))
		withoutBit := mask &^ flip
		withBit := mask | flip
		a1, _, err := EvaluateUAV(comp, evidenceFromMask(withoutBit))
		if err != nil {
			return false
		}
		a2, _, err := EvaluateUAV(comp, evidenceFromMask(withBit))
		if err != nil {
			return false
		}
		return a2 >= a1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSatisfiedSetMonotone(t *testing.T) {
	comp, err := BuildUAVComposition()
	if err != nil {
		t.Fatal(err)
	}
	f := func(maskRaw uint16, flipRaw uint8) bool {
		mask := maskRaw % (1 << len(evidenceNames))
		flip := uint16(1) << (int(flipRaw) % len(evidenceNames))
		r1 := comp.Evaluate(evidenceFromMask(mask &^ flip))
		r2 := comp.Evaluate(evidenceFromMask(mask | flip))
		for name, res1 := range r1 {
			sat2 := map[string]bool{}
			for _, g := range r2[name].Satisfied {
				sat2[g] = true
			}
			for _, g := range res1.Satisfied {
				if !sat2[g] {
					return false // a guarantee was lost by ADDING evidence
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluationDeterministic(t *testing.T) {
	comp, err := BuildUAVComposition()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		mask := uint16(rng.Intn(1 << len(evidenceNames)))
		ev := evidenceFromMask(mask)
		a1, _, err1 := EvaluateUAV(comp, ev)
		a2, _, err2 := EvaluateUAV(comp, ev)
		if err1 != nil || err2 != nil || a1 != a2 {
			t.Fatalf("non-deterministic evaluation for mask %b: %v/%v", mask, a1, a2)
		}
	}
}
