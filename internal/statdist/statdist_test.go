package statdist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func gaussian(rng *rand.Rand, n int, mu, sigma float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mu + sigma*rng.NormFloat64()
	}
	return out
}

func TestAllMeasuresListed(t *testing.T) {
	ms := All()
	if len(ms) != 6 {
		t.Fatalf("expected 6 measures, got %d", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if m.Name() == "" || seen[m.Name()] {
			t.Fatalf("bad or duplicate name %q", m.Name())
		}
		seen[m.Name()] = true
		got, err := ByName(m.Name())
		if err != nil || got.Name() != m.Name() {
			t.Fatalf("ByName(%q) failed: %v", m.Name(), err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestIdenticalSamplesGiveZero(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, m := range All() {
		d, err := m.Distance(x, x)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if d > 1e-12 {
			t.Errorf("%s: identical samples gave %v, want 0", m.Name(), d)
		}
	}
}

func TestEmptyAndNaNRejected(t *testing.T) {
	for _, m := range All() {
		if _, err := m.Distance(nil, []float64{1}); err == nil {
			t.Errorf("%s: empty a accepted", m.Name())
		}
		if _, err := m.Distance([]float64{1}, nil); err == nil {
			t.Errorf("%s: empty b accepted", m.Name())
		}
		if _, err := m.Distance([]float64{math.NaN()}, []float64{1}); err == nil {
			t.Errorf("%s: NaN accepted", m.Name())
		}
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := gaussian(rng, 40, 0, 1)
	b := gaussian(rng, 55, 0.5, 1.5)
	for _, m := range All() {
		d1, _ := m.Distance(a, b)
		d2, _ := m.Distance(b, a)
		if math.Abs(d1-d2) > 1e-9 {
			t.Errorf("%s: asymmetric (%v vs %v)", m.Name(), d1, d2)
		}
	}
}

func TestKSKnownValue(t *testing.T) {
	// a entirely below b: D = 1.
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, err := KolmogorovSmirnov{}.Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("KS = %v, want 1", d)
	}
}

func TestKSHalfShift(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{3, 4, 5, 6}
	// Fa(2)=0.5, Fb(2)=0 -> D = 0.5.
	d, _ := KolmogorovSmirnov{}.Distance(a, b)
	if math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("KS = %v, want 0.5", d)
	}
}

func TestKuiperAtLeastKS(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		a := gaussian(rng, 30, 0, 1)
		b := gaussian(rng, 30, rng.Float64(), 1+rng.Float64())
		ks, _ := KolmogorovSmirnov{}.Distance(a, b)
		ku, _ := Kuiper{}.Distance(a, b)
		return ku >= ks-1e-12 && ku <= 2*ks+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWassersteinTranslation(t *testing.T) {
	// Wasserstein-1 of a pure translation equals the shift.
	a := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	shift := 2.5
	b := make([]float64, len(a))
	for i, v := range a {
		b[i] = v + shift
	}
	d, err := Wasserstein{}.Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-shift) > 1e-9 {
		t.Fatalf("W1 = %v, want %v", d, shift)
	}
}

func TestDistancesGrowWithShift(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := gaussian(rng, 200, 0, 1)
	for _, m := range All() {
		var prev float64 = -1
		for _, shift := range []float64{0.5, 1.5, 3.5} {
			obs := make([]float64, len(ref))
			for i, v := range ref {
				obs[i] = v + shift
			}
			d, err := m.Distance(ref, obs)
			if err != nil {
				t.Fatal(err)
			}
			if d <= prev {
				t.Errorf("%s: distance did not grow with shift (%v after %v)", m.Name(), d, prev)
			}
			prev = d
		}
	}
}

func TestAndersonDarlingSensitiveToTails(t *testing.T) {
	// Same mean/median but different variance: AD must detect it.
	rng := rand.New(rand.NewSource(11))
	a := gaussian(rng, 300, 0, 1)
	b := gaussian(rng, 300, 0, 3)
	same := gaussian(rng, 300, 0, 1)
	ad := AndersonDarling{}
	dDiff, _ := ad.Distance(a, b)
	dSame, _ := ad.Distance(a, same)
	if dDiff < 4*dSame {
		t.Fatalf("AD variance sensitivity too weak: diff=%v same=%v", dDiff, dSame)
	}
}

func TestCVMBetweenZeroAndOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := gaussian(rng, 25, 0, 1)
		b := gaussian(rng, 35, 2*rng.Float64(), 1)
		d, err := CramerVonMises{}.Distance(a, b)
		return err == nil && d >= 0 && d < float64(len(a)+len(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationPValueNull(t *testing.T) {
	// Same distribution: p-value should be comfortably above alpha.
	rng := rand.New(rand.NewSource(3))
	a := gaussian(rng, 60, 0, 1)
	b := gaussian(rng, 60, 0, 1)
	p, _, err := PermutationPValue(KolmogorovSmirnov{}, a, b, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Fatalf("null p-value = %v, suspiciously small", p)
	}
}

func TestPermutationPValueShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := gaussian(rng, 60, 0, 1)
	b := gaussian(rng, 60, 3, 1)
	p, obs, err := PermutationPValue(KolmogorovSmirnov{}, a, b, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.02 {
		t.Fatalf("shifted p-value = %v, want tiny", p)
	}
	if obs < 0.5 {
		t.Fatalf("observed KS = %v, want large", obs)
	}
}

func TestPermutationPValueValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := PermutationPValue(KolmogorovSmirnov{}, []float64{1}, []float64{2}, 0, rng); err == nil {
		t.Fatal("rounds=0 must fail")
	}
	if _, _, err := PermutationPValue(KolmogorovSmirnov{}, []float64{1}, []float64{2}, 10, nil); err == nil {
		t.Fatal("nil rng must fail")
	}
}

func TestFeatureDistance(t *testing.T) {
	ref := [][]float64{{0, 10}, {1, 11}, {2, 12}, {3, 13}}
	obs := [][]float64{{0.5, 30}, {1.5, 31}, {2.5, 32}}
	per, mean, err := FeatureDistance(Wasserstein{}, ref, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("perFeature = %v", per)
	}
	if per[1] < 10*per[0] {
		t.Fatalf("feature 1 (shifted by 19) must dominate: %v", per)
	}
	wantMean := (per[0] + per[1]) / 2
	if math.Abs(mean-wantMean) > 1e-12 {
		t.Fatalf("mean = %v, want %v", mean, wantMean)
	}
}

func TestFeatureDistanceValidation(t *testing.T) {
	if _, _, err := FeatureDistance(Wasserstein{}, nil, [][]float64{{1}}); err == nil {
		t.Fatal("empty ref must fail")
	}
	if _, _, err := FeatureDistance(Wasserstein{}, [][]float64{{1}}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("mismatched widths must fail")
	}
	if _, _, err := FeatureDistance(Wasserstein{}, [][]float64{{1}, {1, 2}}, [][]float64{{1}}); err == nil {
		t.Fatal("ragged ref must fail")
	}
	if _, _, err := FeatureDistance(Wasserstein{}, [][]float64{{}}, [][]float64{{}}); err == nil {
		t.Fatal("zero features must fail")
	}
}

func BenchmarkKS200(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	x := gaussian(rng, 200, 0, 1)
	y := gaussian(rng, 200, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (KolmogorovSmirnov{}).Distance(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllMeasures200(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	x := gaussian(rng, 200, 0, 1)
	y := gaussian(rng, 200, 1, 1)
	ms := All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range ms {
			if _, err := m.Distance(x, y); err != nil {
				b.Fatal(err)
			}
		}
	}
}
