// Package statdist implements the two-sample statistical distance
// measures that SafeML (paper §III-A2; Aslansefat et al., IMBSA 2020)
// uses to compare the distribution of runtime input data against the
// training reference: Kolmogorov–Smirnov, Kuiper, Anderson–Darling,
// Cramér–von Mises and Wasserstein-1, plus permutation-based p-values
// and multivariate (per-feature) aggregation.
package statdist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Measure is a two-sample distance between empirical distributions.
type Measure interface {
	// Name returns the canonical measure name.
	Name() string
	// Distance returns the sample distance between a and b. Larger
	// means more dissimilar. Returns an error on empty input.
	Distance(a, b []float64) (float64, error)
}

// SortedMeasure is implemented by measures that can evaluate
// pre-sorted samples without sorting or allocating. All measures in
// this package implement it; callers that keep their samples sorted
// (safeml's reference columns and sliding window) use it to make the
// per-tick evaluation allocation-free.
type SortedMeasure interface {
	Measure
	// DistanceSorted returns Distance(a, b) assuming a and b are each
	// sorted ascending. The result is bit-identical to Distance on the
	// same multisets; passing unsorted input is a caller error and
	// yields an unspecified value. It performs no allocation.
	DistanceSorted(a, b []float64) (float64, error)
}

// All returns one instance of every implemented measure, in a stable
// order.
func All() []Measure {
	return []Measure{
		KolmogorovSmirnov{},
		Kuiper{},
		AndersonDarling{},
		CramerVonMises{},
		Wasserstein{},
		Energy{},
	}
}

// ByName returns the measure with the given Name.
func ByName(name string) (Measure, error) {
	for _, m := range All() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("statdist: unknown measure %q", name)
}

var errEmpty = errors.New("statdist: empty sample")

func checkSamples(a, b []float64) error {
	if len(a) == 0 || len(b) == 0 {
		return errEmpty
	}
	for _, v := range a {
		if math.IsNaN(v) {
			return errors.New("statdist: NaN in sample")
		}
	}
	for _, v := range b {
		if math.IsNaN(v) {
			return errors.New("statdist: NaN in sample")
		}
	}
	return nil
}

func sortedCopy(x []float64) []float64 {
	out := append([]float64(nil), x...)
	sort.Float64s(out)
	return out
}

// ecdfDevSorted merge-walks two sorted samples and returns the maximum
// positive and negative deviations of Fa - Fb over the pooled support.
// It computes the exact values the pooled-sort formulation produced,
// in O(n+m) without allocating.
func ecdfDevSorted(sa, sb []float64) (dPlus, dMinus float64) {
	na, nb := len(sa), len(sb)
	i, j := 0, 0
	for i < na || j < nb {
		var v float64
		switch {
		case i >= na:
			v = sb[j]
		case j >= nb:
			v = sa[i]
		case sa[i] <= sb[j]:
			v = sa[i]
		default:
			v = sb[j]
		}
		for i < na && sa[i] == v {
			i++
		}
		for j < nb && sb[j] == v {
			j++
		}
		d := float64(i)/float64(na) - float64(j)/float64(nb)
		if d > dPlus {
			dPlus = d
		}
		if -d > dMinus {
			dMinus = -d
		}
	}
	return dPlus, dMinus
}

// KolmogorovSmirnov is the two-sample KS statistic sup|Fa - Fb|.
type KolmogorovSmirnov struct{}

// Name implements Measure.
func (KolmogorovSmirnov) Name() string { return "kolmogorov-smirnov" }

// Distance implements Measure.
func (m KolmogorovSmirnov) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	dp, dm := ecdfDevSorted(sortedCopy(a), sortedCopy(b))
	return math.Max(dp, dm), nil
}

// DistanceSorted implements SortedMeasure.
func (KolmogorovSmirnov) DistanceSorted(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	dp, dm := ecdfDevSorted(a, b)
	return math.Max(dp, dm), nil
}

// Kuiper is the two-sample Kuiper statistic D+ + D-, which unlike KS is
// equally sensitive across the whole support (useful for cyclic or
// tail-shifted data).
type Kuiper struct{}

// Name implements Measure.
func (Kuiper) Name() string { return "kuiper" }

// Distance implements Measure.
func (Kuiper) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	dp, dm := ecdfDevSorted(sortedCopy(a), sortedCopy(b))
	return dp + dm, nil
}

// DistanceSorted implements SortedMeasure.
func (Kuiper) DistanceSorted(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	dp, dm := ecdfDevSorted(a, b)
	return dp + dm, nil
}

// AndersonDarling is the two-sample Anderson–Darling statistic
// (Pettitt's A², tie-free rank form), normalized by sample size so that
// values are comparable across window lengths.
type AndersonDarling struct{}

// Name implements Measure.
func (AndersonDarling) Name() string { return "anderson-darling" }

// Distance implements Measure.
func (AndersonDarling) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	return adSorted(sortedCopy(a), sortedCopy(b)), nil
}

// DistanceSorted implements SortedMeasure.
func (AndersonDarling) DistanceSorted(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	return adSorted(a, b), nil
}

// adSorted merge-walks two sorted samples and evaluates the tie-aware
// ECDF-integral form of Pettitt's A²: sum over distinct pooled values z
// (excluding the last, where H = 1) of
//
//	(Fa(z) - Fb(z))^2 / (H(z)(1 - H(z))) * h/N
//
// weighted by nm/N, where H is the pooled ECDF and h the multiplicity
// of z. The walk visits the same distinct values in the same ascending
// order as the pooled-sort formulation, so the result is bit-identical.
func adSorted(sa, sb []float64) float64 {
	na, nb := len(sa), len(sb)
	n, m := float64(na), float64(nb)
	nn := n + m
	i, j := 0, 0
	var a2 float64
	for i < na || j < nb {
		var v float64
		switch {
		case i >= na:
			v = sb[j]
		case j >= nb:
			v = sa[i]
		case sa[i] <= sb[j]:
			v = sa[i]
		default:
			v = sb[j]
		}
		i0, j0 := i, j
		for i < na && sa[i] == v {
			i++
		}
		for j < nb && sb[j] == v {
			j++
		}
		h := float64((i - i0) + (j - j0))
		hz := float64(i+j) / nn // pooled ECDF at this value
		if hz < 1 {
			d := float64(i)/n - float64(j)/m
			a2 += d * d / (hz * (1 - hz)) * h / nn
		}
	}
	return n * m / nn * a2
}

// CramerVonMises is the two-sample Cramér–von Mises criterion
// T = nm/N² Σ (Fa(z) - Fb(z))² over the pooled sample.
type CramerVonMises struct{}

// Name implements Measure.
func (CramerVonMises) Name() string { return "cramer-von-mises" }

// Distance implements Measure.
func (CramerVonMises) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	return cvmSorted(sortedCopy(a), sortedCopy(b)), nil
}

// DistanceSorted implements SortedMeasure.
func (CramerVonMises) DistanceSorted(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	return cvmSorted(a, b), nil
}

// cvmSorted merge-walks two sorted samples and sums (Fa - Fb)² over
// every pooled element (each distinct value contributes once per
// multiplicity, added one term at a time so the float accumulation
// matches the pooled-sort formulation bit for bit).
func cvmSorted(sa, sb []float64) float64 {
	na, nb := len(sa), len(sb)
	n, m := float64(na), float64(nb)
	i, j := 0, 0
	var sum float64
	for i < na || j < nb {
		var v float64
		switch {
		case i >= na:
			v = sb[j]
		case j >= nb:
			v = sa[i]
		case sa[i] <= sb[j]:
			v = sa[i]
		default:
			v = sb[j]
		}
		i0, j0 := i, j
		for i < na && sa[i] == v {
			i++
		}
		for j < nb && sb[j] == v {
			j++
		}
		d := float64(i)/n - float64(j)/m
		dd := d * d
		for k := 0; k < (i-i0)+(j-j0); k++ {
			sum += dd
		}
	}
	return n * m / ((n + m) * (n + m)) * sum
}

// Wasserstein is the 1-Wasserstein (earth mover's) distance between the
// empirical distributions, computed as the L1 distance between inverse
// CDFs. Unlike the rank statistics it carries the scale of the data.
type Wasserstein struct{}

// Name implements Measure.
func (Wasserstein) Name() string { return "wasserstein" }

// Distance implements Measure.
func (Wasserstein) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	return wassersteinSorted(sortedCopy(a), sortedCopy(b)), nil
}

// DistanceSorted implements SortedMeasure.
func (Wasserstein) DistanceSorted(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	return wassersteinSorted(a, b), nil
}

// wassersteinSorted integrates |Fa - Fb| over the pooled support via a
// merge walk: for each consecutive pair of distinct pooled values
// (prev, v) it adds |Fa(prev) - Fb(prev)| * (v - prev), the same terms
// in the same ascending order as the pooled-sort formulation.
func wassersteinSorted(sa, sb []float64) float64 {
	na, nb := len(sa), len(sb)
	n, m := float64(na), float64(nb)
	i, j := 0, 0
	var sum float64
	var prev, dPrev float64
	first := true
	for i < na || j < nb {
		var v float64
		switch {
		case i >= na:
			v = sb[j]
		case j >= nb:
			v = sa[i]
		case sa[i] <= sb[j]:
			v = sa[i]
		default:
			v = sb[j]
		}
		if !first {
			if width := v - prev; width > 0 {
				sum += dPrev * width
			}
		}
		for i < na && sa[i] == v {
			i++
		}
		for j < nb && sb[j] == v {
			j++
		}
		prev = v
		dPrev = math.Abs(float64(i)/n - float64(j)/m)
		first = false
	}
	return sum
}

// Energy is the (squared) energy distance of Székely & Rizzo:
// 2 E|X-Y| - E|X-X'| - E|Y-Y'|. Like Wasserstein it carries the data's
// scale; unlike the rank statistics it is zero iff the distributions
// coincide and extends naturally to multivariate data.
type Energy struct{}

// Name implements Measure.
func (Energy) Name() string { return "energy" }

// Distance implements Measure.
func (Energy) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	return energySorted(sortedCopy(a), sortedCopy(b)), nil
}

// DistanceSorted implements SortedMeasure.
func (Energy) DistanceSorted(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	return energySorted(a, b), nil
}

func energySorted(sa, sb []float64) float64 {
	cross := sortedMeanAbsDiff(sa, sb)
	within1 := sortedMeanAbsDiffSelf(sa)
	within2 := sortedMeanAbsDiffSelf(sb)
	d := 2*cross - within1 - within2
	if d < 0 { // numeric round-off on (near-)identical samples
		d = 0
	}
	return d
}

// energyPrefixMax bounds the stack-allocated prefix-sum scratch of
// sortedMeanAbsDiff; larger windows fall back to one heap allocation.
const energyPrefixMax = 512

// sortedMeanAbsDiff returns E|X-Y| over all cross pairs of two sorted
// samples, in O((n+m) log) time via sorted prefix sums.
func sortedMeanAbsDiff(sa, sb []float64) float64 {
	// Sum over x in a of sum over y in b of |x-y|:
	// for each x, |{y<=x}|*x - sum(y<=x) + sum(y>x) - |{y>x}|*x.
	var stack [energyPrefixMax + 1]float64
	var prefix []float64
	if len(sb) <= energyPrefixMax {
		prefix = stack[:len(sb)+1]
	} else {
		prefix = make([]float64, len(sb)+1)
	}
	for i, v := range sb {
		prefix[i+1] = prefix[i] + v
	}
	total := prefix[len(sb)]
	var sum float64
	for _, x := range sa {
		k := sort.SearchFloat64s(sb, x)
		// sb[:k] < x (SearchFloat64s finds first >= x); treat ties as
		// zero-contribution either way.
		sum += float64(k)*x - prefix[k] + (total - prefix[k]) - float64(len(sb)-k)*x
	}
	return sum / float64(len(sa)*len(sb))
}

// sortedMeanAbsDiffSelf returns E|X-X'| for pairs within one sorted
// sample.
func sortedMeanAbsDiffSelf(s []float64) float64 {
	if len(s) < 2 {
		return 0
	}
	// sum over i<j of (s[j]-s[i]) = sum_j s[j]*j - prefix sums.
	var sum, prefix float64
	for j, v := range s {
		sum += v*float64(j) - prefix
		prefix += v
	}
	n := float64(len(s))
	return 2 * sum / (n * n)
}

// PermutationPValue estimates the p-value of the observed distance
// between a and b under the null hypothesis that both come from the
// same distribution, by reshuffling the pooled sample rounds times.
// Returns the p-value and the observed distance.
func PermutationPValue(m Measure, a, b []float64, rounds int, rng *rand.Rand) (p, observed float64, err error) {
	if rounds <= 0 {
		return 0, 0, errors.New("statdist: rounds must be positive")
	}
	if rng == nil {
		return 0, 0, errors.New("statdist: nil rng")
	}
	observed, err = m.Distance(a, b)
	if err != nil {
		return 0, 0, err
	}
	// All scratch is hoisted out of the resampling loop: the pooled
	// array is shuffled in place, and for sorted-capable measures the
	// two half buffers are re-sorted in place each round, so the loop
	// itself performs no allocation.
	pooled := append(append([]float64(nil), a...), b...)
	sm, fast := m.(SortedMeasure)
	var ha, hb []float64
	if fast {
		ha = make([]float64, len(a))
		hb = make([]float64, len(b))
	}
	exceed := 0
	for r := 0; r < rounds; r++ {
		rng.Shuffle(len(pooled), func(i, j int) { pooled[i], pooled[j] = pooled[j], pooled[i] })
		var d float64
		if fast {
			copy(ha, pooled[:len(a)])
			copy(hb, pooled[len(a):])
			sort.Float64s(ha)
			sort.Float64s(hb)
			d, err = sm.DistanceSorted(ha, hb)
		} else {
			d, err = m.Distance(pooled[:len(a)], pooled[len(a):])
		}
		if err != nil {
			return 0, 0, err
		}
		if d >= observed {
			exceed++
		}
	}
	// Add-one smoothing keeps p strictly positive.
	return (float64(exceed) + 1) / (float64(rounds) + 1), observed, nil
}

// FeatureDistance applies the measure per feature column and returns
// the per-feature distances and their mean. ref and obs are row-major
// sample-by-feature matrices with equal column counts.
func FeatureDistance(m Measure, ref, obs [][]float64) (perFeature []float64, mean float64, err error) {
	if len(ref) == 0 || len(obs) == 0 {
		return nil, 0, errEmpty
	}
	nf := len(ref[0])
	if nf == 0 {
		return nil, 0, errors.New("statdist: zero features")
	}
	for _, row := range ref {
		if len(row) != nf {
			return nil, 0, errors.New("statdist: ragged reference matrix")
		}
	}
	for _, row := range obs {
		if len(row) != nf {
			return nil, 0, fmt.Errorf("statdist: observation has %d features, reference has %d", len(row), nf)
		}
	}
	perFeature = make([]float64, nf)
	col := make([]float64, 0, len(ref))
	colObs := make([]float64, 0, len(obs))
	// The column buffers are scratch, so sorted-capable measures can
	// sort them in place and skip Distance's internal copies.
	sm, fast := m.(SortedMeasure)
	for f := 0; f < nf; f++ {
		col = col[:0]
		colObs = colObs[:0]
		for _, row := range ref {
			col = append(col, row[f])
		}
		for _, row := range obs {
			colObs = append(colObs, row[f])
		}
		var d float64
		var err error
		if fast {
			sort.Float64s(col)
			sort.Float64s(colObs)
			d, err = sm.DistanceSorted(col, colObs)
		} else {
			d, err = m.Distance(col, colObs)
		}
		if err != nil {
			return nil, 0, err
		}
		perFeature[f] = d
		mean += d
	}
	mean /= float64(nf)
	return perFeature, mean, nil
}
