// Package statdist implements the two-sample statistical distance
// measures that SafeML (paper §III-A2; Aslansefat et al., IMBSA 2020)
// uses to compare the distribution of runtime input data against the
// training reference: Kolmogorov–Smirnov, Kuiper, Anderson–Darling,
// Cramér–von Mises and Wasserstein-1, plus permutation-based p-values
// and multivariate (per-feature) aggregation.
package statdist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Measure is a two-sample distance between empirical distributions.
type Measure interface {
	// Name returns the canonical measure name.
	Name() string
	// Distance returns the sample distance between a and b. Larger
	// means more dissimilar. Returns an error on empty input.
	Distance(a, b []float64) (float64, error)
}

// All returns one instance of every implemented measure, in a stable
// order.
func All() []Measure {
	return []Measure{
		KolmogorovSmirnov{},
		Kuiper{},
		AndersonDarling{},
		CramerVonMises{},
		Wasserstein{},
		Energy{},
	}
}

// ByName returns the measure with the given Name.
func ByName(name string) (Measure, error) {
	for _, m := range All() {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("statdist: unknown measure %q", name)
}

var errEmpty = errors.New("statdist: empty sample")

func checkSamples(a, b []float64) error {
	if len(a) == 0 || len(b) == 0 {
		return errEmpty
	}
	for _, v := range a {
		if math.IsNaN(v) {
			return errors.New("statdist: NaN in sample")
		}
	}
	for _, v := range b {
		if math.IsNaN(v) {
			return errors.New("statdist: NaN in sample")
		}
	}
	return nil
}

func sortedCopy(x []float64) []float64 {
	out := append([]float64(nil), x...)
	sort.Float64s(out)
	return out
}

// ecdf returns the empirical CDF of sorted sample x evaluated at v
// (right-continuous: proportion of x <= v).
func ecdf(x []float64, v float64) float64 {
	// Index of first element > v.
	i := sort.Search(len(x), func(i int) bool { return x[i] > v })
	return float64(i) / float64(len(x))
}

// ecdfDeviations walks the pooled sorted values and returns the maximum
// positive and negative deviations of Fa - Fb.
func ecdfDeviations(a, b []float64) (dPlus, dMinus float64) {
	sa, sb := sortedCopy(a), sortedCopy(b)
	pooled := append(append([]float64(nil), sa...), sb...)
	sort.Float64s(pooled)
	for _, v := range pooled {
		d := ecdf(sa, v) - ecdf(sb, v)
		if d > dPlus {
			dPlus = d
		}
		if -d > dMinus {
			dMinus = -d
		}
	}
	return dPlus, dMinus
}

// KolmogorovSmirnov is the two-sample KS statistic sup|Fa - Fb|.
type KolmogorovSmirnov struct{}

// Name implements Measure.
func (KolmogorovSmirnov) Name() string { return "kolmogorov-smirnov" }

// Distance implements Measure.
func (KolmogorovSmirnov) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	dp, dm := ecdfDeviations(a, b)
	return math.Max(dp, dm), nil
}

// Kuiper is the two-sample Kuiper statistic D+ + D-, which unlike KS is
// equally sensitive across the whole support (useful for cyclic or
// tail-shifted data).
type Kuiper struct{}

// Name implements Measure.
func (Kuiper) Name() string { return "kuiper" }

// Distance implements Measure.
func (Kuiper) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	dp, dm := ecdfDeviations(a, b)
	return dp + dm, nil
}

// AndersonDarling is the two-sample Anderson–Darling statistic
// (Pettitt's A², tie-free rank form), normalized by sample size so that
// values are comparable across window lengths.
type AndersonDarling struct{}

// Name implements Measure.
func (AndersonDarling) Name() string { return "anderson-darling" }

// Distance implements Measure.
func (AndersonDarling) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	sa, sb := sortedCopy(a), sortedCopy(b)
	n, m := float64(len(a)), float64(len(b))
	nn := n + m
	pooled := append(append([]float64(nil), sa...), sb...)
	sort.Float64s(pooled)
	// Tie-aware ECDF-integral form: sum over distinct pooled values z
	// (excluding the last, where H = 1) of
	//   (Fa(z) - Fb(z))^2 / (H(z)(1 - H(z))) * h/N
	// weighted by nm/N, where H is the pooled ECDF and h the
	// multiplicity of z. Zero for identical samples, ties included.
	var a2 float64
	for i := 0; i < len(pooled); {
		j := i
		for j < len(pooled) && pooled[j] == pooled[i] {
			j++
		}
		h := float64(j - i)
		hz := float64(j) / nn // pooled ECDF at this value
		if hz < 1 {
			d := ecdf(sa, pooled[i]) - ecdf(sb, pooled[i])
			a2 += d * d / (hz * (1 - hz)) * h / nn
		}
		i = j
	}
	return n * m / nn * a2, nil
}

// CramerVonMises is the two-sample Cramér–von Mises criterion
// T = nm/N² Σ (Fa(z) - Fb(z))² over the pooled sample.
type CramerVonMises struct{}

// Name implements Measure.
func (CramerVonMises) Name() string { return "cramer-von-mises" }

// Distance implements Measure.
func (CramerVonMises) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	sa, sb := sortedCopy(a), sortedCopy(b)
	pooled := append(append([]float64(nil), sa...), sb...)
	sort.Float64s(pooled)
	var sum float64
	for _, v := range pooled {
		d := ecdf(sa, v) - ecdf(sb, v)
		sum += d * d
	}
	n, m := float64(len(a)), float64(len(b))
	return n * m / ((n + m) * (n + m)) * sum, nil
}

// Wasserstein is the 1-Wasserstein (earth mover's) distance between the
// empirical distributions, computed as the L1 distance between inverse
// CDFs. Unlike the rank statistics it carries the scale of the data.
type Wasserstein struct{}

// Name implements Measure.
func (Wasserstein) Name() string { return "wasserstein" }

// Distance implements Measure.
func (Wasserstein) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	sa, sb := sortedCopy(a), sortedCopy(b)
	// Integrate |Fa - Fb| over the pooled support.
	pooled := append(append([]float64(nil), sa...), sb...)
	sort.Float64s(pooled)
	var sum float64
	for i := 1; i < len(pooled); i++ {
		width := pooled[i] - pooled[i-1]
		if width <= 0 {
			continue
		}
		d := math.Abs(ecdf(sa, pooled[i-1]) - ecdf(sb, pooled[i-1]))
		sum += d * width
	}
	return sum, nil
}

// Energy is the (squared) energy distance of Székely & Rizzo:
// 2 E|X-Y| - E|X-X'| - E|Y-Y'|. Like Wasserstein it carries the data's
// scale; unlike the rank statistics it is zero iff the distributions
// coincide and extends naturally to multivariate data.
type Energy struct{}

// Name implements Measure.
func (Energy) Name() string { return "energy" }

// Distance implements Measure.
func (Energy) Distance(a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	cross := meanAbsDiff(a, b)
	within1 := meanAbsDiffSelf(a)
	within2 := meanAbsDiffSelf(b)
	d := 2*cross - within1 - within2
	if d < 0 { // numeric round-off on (near-)identical samples
		d = 0
	}
	return d, nil
}

// meanAbsDiff returns E|X-Y| over all cross pairs, in O((n+m) log)
// time via sorted prefix sums.
func meanAbsDiff(a, b []float64) float64 {
	sa, sb := sortedCopy(a), sortedCopy(b)
	// Sum over x in a of sum over y in b of |x-y|:
	// for each x, |{y<=x}|*x - sum(y<=x) + sum(y>x) - |{y>x}|*x.
	prefix := make([]float64, len(sb)+1)
	for i, v := range sb {
		prefix[i+1] = prefix[i] + v
	}
	total := prefix[len(sb)]
	var sum float64
	for _, x := range sa {
		k := sort.SearchFloat64s(sb, x)
		// sb[:k] < x (SearchFloat64s finds first >= x); treat ties as
		// zero-contribution either way.
		sum += float64(k)*x - prefix[k] + (total - prefix[k]) - float64(len(sb)-k)*x
	}
	return sum / float64(len(a)*len(b))
}

// meanAbsDiffSelf returns E|X-X'| for pairs within one sample.
func meanAbsDiffSelf(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	s := sortedCopy(x)
	// sum over i<j of (s[j]-s[i]) = sum_j s[j]*j - prefix sums.
	var sum, prefix float64
	for j, v := range s {
		sum += v*float64(j) - prefix
		prefix += v
	}
	n := float64(len(x))
	return 2 * sum / (n * n)
}

// PermutationPValue estimates the p-value of the observed distance
// between a and b under the null hypothesis that both come from the
// same distribution, by reshuffling the pooled sample rounds times.
// Returns the p-value and the observed distance.
func PermutationPValue(m Measure, a, b []float64, rounds int, rng *rand.Rand) (p, observed float64, err error) {
	if rounds <= 0 {
		return 0, 0, errors.New("statdist: rounds must be positive")
	}
	if rng == nil {
		return 0, 0, errors.New("statdist: nil rng")
	}
	observed, err = m.Distance(a, b)
	if err != nil {
		return 0, 0, err
	}
	pooled := append(append([]float64(nil), a...), b...)
	exceed := 0
	for r := 0; r < rounds; r++ {
		rng.Shuffle(len(pooled), func(i, j int) { pooled[i], pooled[j] = pooled[j], pooled[i] })
		d, err := m.Distance(pooled[:len(a)], pooled[len(a):])
		if err != nil {
			return 0, 0, err
		}
		if d >= observed {
			exceed++
		}
	}
	// Add-one smoothing keeps p strictly positive.
	return (float64(exceed) + 1) / (float64(rounds) + 1), observed, nil
}

// FeatureDistance applies the measure per feature column and returns
// the per-feature distances and their mean. ref and obs are row-major
// sample-by-feature matrices with equal column counts.
func FeatureDistance(m Measure, ref, obs [][]float64) (perFeature []float64, mean float64, err error) {
	if len(ref) == 0 || len(obs) == 0 {
		return nil, 0, errEmpty
	}
	nf := len(ref[0])
	if nf == 0 {
		return nil, 0, errors.New("statdist: zero features")
	}
	for _, row := range ref {
		if len(row) != nf {
			return nil, 0, errors.New("statdist: ragged reference matrix")
		}
	}
	for _, row := range obs {
		if len(row) != nf {
			return nil, 0, fmt.Errorf("statdist: observation has %d features, reference has %d", len(row), nf)
		}
	}
	perFeature = make([]float64, nf)
	col := make([]float64, 0, len(ref))
	colObs := make([]float64, 0, len(obs))
	for f := 0; f < nf; f++ {
		col = col[:0]
		colObs = colObs[:0]
		for _, row := range ref {
			col = append(col, row[f])
		}
		for _, row := range obs {
			colObs = append(colObs, row[f])
		}
		d, err := m.Distance(col, colObs)
		if err != nil {
			return nil, 0, err
		}
		perFeature[f] = d
		mean += d
	}
	mean /= float64(nf)
	return perFeature, mean, nil
}
