package statdist

// The naive oracle: direct textbook formulations of every measure,
// retained so the optimized merge-walk kernels can be differentially
// tested against them (see differential_test.go). These run the
// original pooled-sort / quadratic algorithms and are deliberately
// slow; nothing on a runtime path should call them.

import (
	"fmt"
	"math"
	"sort"
)

// NaiveDistance computes m's distance by the direct textbook
// formulation: pooled re-sorting with binary-search ECDF lookups for
// the rank statistics, and the O(n·m) double loop for the energy
// distance. It is the differential-testing oracle for the optimized
// kernels and is exact-equal to Distance for every measure except
// Energy, whose reformulated prefix-sum kernel agrees within floating
// round-off.
func NaiveDistance(m Measure, a, b []float64) (float64, error) {
	if err := checkSamples(a, b); err != nil {
		return 0, err
	}
	switch m.(type) {
	case KolmogorovSmirnov:
		dp, dm := naiveECDFDeviations(a, b)
		return math.Max(dp, dm), nil
	case Kuiper:
		dp, dm := naiveECDFDeviations(a, b)
		return dp + dm, nil
	case AndersonDarling:
		return naiveAndersonDarling(a, b), nil
	case CramerVonMises:
		return naiveCramerVonMises(a, b), nil
	case Wasserstein:
		return naiveWasserstein(a, b), nil
	case Energy:
		return naiveEnergy(a, b), nil
	default:
		return 0, fmt.Errorf("statdist: no naive oracle for %q", m.Name())
	}
}

// ecdf returns the empirical CDF of sorted sample x evaluated at v
// (right-continuous: proportion of x <= v).
func ecdf(x []float64, v float64) float64 {
	// Index of first element > v.
	i := sort.Search(len(x), func(i int) bool { return x[i] > v })
	return float64(i) / float64(len(x))
}

// naiveECDFDeviations re-sorts both samples, materializes the pooled
// array and scans it for the maximum positive and negative deviations
// of Fa - Fb.
func naiveECDFDeviations(a, b []float64) (dPlus, dMinus float64) {
	sa, sb := sortedCopy(a), sortedCopy(b)
	pooled := append(append([]float64(nil), sa...), sb...)
	sort.Float64s(pooled)
	for _, v := range pooled {
		d := ecdf(sa, v) - ecdf(sb, v)
		if d > dPlus {
			dPlus = d
		}
		if -d > dMinus {
			dMinus = -d
		}
	}
	return dPlus, dMinus
}

func naiveAndersonDarling(a, b []float64) float64 {
	sa, sb := sortedCopy(a), sortedCopy(b)
	n, m := float64(len(a)), float64(len(b))
	nn := n + m
	pooled := append(append([]float64(nil), sa...), sb...)
	sort.Float64s(pooled)
	var a2 float64
	for i := 0; i < len(pooled); {
		j := i
		for j < len(pooled) && pooled[j] == pooled[i] {
			j++
		}
		h := float64(j - i)
		hz := float64(j) / nn // pooled ECDF at this value
		if hz < 1 {
			d := ecdf(sa, pooled[i]) - ecdf(sb, pooled[i])
			a2 += d * d / (hz * (1 - hz)) * h / nn
		}
		i = j
	}
	return n * m / nn * a2
}

func naiveCramerVonMises(a, b []float64) float64 {
	sa, sb := sortedCopy(a), sortedCopy(b)
	pooled := append(append([]float64(nil), sa...), sb...)
	sort.Float64s(pooled)
	var sum float64
	for _, v := range pooled {
		d := ecdf(sa, v) - ecdf(sb, v)
		sum += d * d
	}
	n, m := float64(len(a)), float64(len(b))
	return n * m / ((n + m) * (n + m)) * sum
}

func naiveWasserstein(a, b []float64) float64 {
	sa, sb := sortedCopy(a), sortedCopy(b)
	pooled := append(append([]float64(nil), sa...), sb...)
	sort.Float64s(pooled)
	var sum float64
	for i := 1; i < len(pooled); i++ {
		width := pooled[i] - pooled[i-1]
		if width <= 0 {
			continue
		}
		d := math.Abs(ecdf(sa, pooled[i-1]) - ecdf(sb, pooled[i-1]))
		sum += d * width
	}
	return sum
}

// naiveEnergy evaluates 2 E|X-Y| - E|X-X'| - E|Y-Y'| by the O(n·m)
// pairwise double loops.
func naiveEnergy(a, b []float64) float64 {
	cross := 0.0
	for _, x := range a {
		for _, y := range b {
			cross += math.Abs(x - y)
		}
	}
	cross /= float64(len(a) * len(b))
	within := func(x []float64) float64 {
		var sum float64
		for i := range x {
			for j := range x {
				sum += math.Abs(x[i] - x[j])
			}
		}
		return sum / float64(len(x)*len(x))
	}
	d := 2*cross - within(a) - within(b)
	if d < 0 {
		d = 0
	}
	return d
}
