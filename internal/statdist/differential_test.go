package statdist

// Differential tests pinning the optimized merge-walk kernels to the
// retained naive oracle (oracle.go). The rank statistics and
// Wasserstein must agree bit for bit — they evaluate the same terms in
// the same order — while the energy distance's prefix-sum
// reformulation is held to 1e-12 relative error against the O(n·m)
// pairwise oracle.

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// randomSample draws a sample stressing the kernels' edge cases: ties
// and duplicates (values snapped to a coarse grid), negative values and
// exact zeros.
func randomSample(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(4) {
		case 0: // coarse grid -> guaranteed ties within and across samples
			out[i] = float64(rng.Intn(5))
		case 1:
			out[i] = -float64(rng.Intn(3))
		default:
			out[i] = rng.NormFloat64() * 10
		}
	}
	return out
}

func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	scale := math.Max(math.Abs(want), 1)
	return math.Abs(got-want) / scale
}

// sameValue is float equality that also equates two NaNs (infinite
// inputs drive every formulation to NaN the same way).
func sameValue(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// checkAgainstOracle asserts the optimized Distance and DistanceSorted
// paths match the naive oracle on one input pair.
func checkAgainstOracle(t *testing.T, m Measure, a, b []float64) {
	t.Helper()
	want, err := NaiveDistance(m, a, b)
	if err != nil {
		t.Fatalf("%s: oracle: %v", m.Name(), err)
	}
	got, err := m.Distance(a, b)
	if err != nil {
		t.Fatalf("%s: Distance: %v", m.Name(), err)
	}
	sa, sb := sortedCopy(a), sortedCopy(b)
	gotSorted, err := m.(SortedMeasure).DistanceSorted(sa, sb)
	if err != nil {
		t.Fatalf("%s: DistanceSorted: %v", m.Name(), err)
	}
	if !sameValue(gotSorted, got) {
		t.Fatalf("%s: DistanceSorted %v != Distance %v (must be bit-identical)", m.Name(), gotSorted, got)
	}
	if _, isEnergy := m.(Energy); isEnergy {
		if sameValue(got, want) {
			return
		}
		if e := relErr(got, want); e > 1e-12 {
			t.Fatalf("%s: optimized %v vs naive %v (rel err %v > 1e-12)\na=%v\nb=%v", m.Name(), got, want, e, a, b)
		}
		return
	}
	if !sameValue(got, want) {
		t.Fatalf("%s: optimized %v != naive %v (must be bit-identical)\na=%v\nb=%v", m.Name(), got, want, a, b)
	}
}

func TestDifferentialRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 300; round++ {
		na := 1 + rng.Intn(60)
		nb := 1 + rng.Intn(60)
		a := randomSample(rng, na)
		b := randomSample(rng, nb)
		for _, m := range All() {
			checkAgainstOracle(t, m, a, b)
		}
	}
}

func TestDifferentialEdgeCases(t *testing.T) {
	cases := [][2][]float64{
		{{1}, {1}},                             // single elements, tied
		{{1}, {2}},                             // single elements, distinct
		{{1, 1, 1, 1}, {1, 1, 1}},              // all duplicates
		{{0, 0, 0}, {-0.0, 0, 0}},              // signed zeros
		{{1, 2, 3}, {10, 11, 12}},              // disjoint supports
		{{1, 2, 2, 3}, {2, 2, 2, 4}},           // heavy cross-sample ties
		{{-5, -1, 0, 1, 5}, {-5, -1, 0, 1, 5}}, // identical samples
		{{math.Inf(1), 1}, {1, 2}},             // infinity in a sample
	}
	for _, c := range cases {
		for _, m := range All() {
			checkAgainstOracle(t, m, c[0], c[1])
		}
	}
}

// TestDifferentialSingleElementWindows drills the smallest windows the
// safeml monitor can produce.
func TestDifferentialSingleElementWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		ref := randomSample(rng, 1+rng.Intn(200))
		win := []float64{rng.NormFloat64() * 5}
		for _, m := range All() {
			checkAgainstOracle(t, m, ref, win)
			checkAgainstOracle(t, m, win, ref)
		}
	}
}

// TestSortedMeasureCoverage pins the expectation that every measure
// ships the allocation-free sorted fast path.
func TestSortedMeasureCoverage(t *testing.T) {
	for _, m := range All() {
		if _, ok := m.(SortedMeasure); !ok {
			t.Errorf("%s does not implement SortedMeasure", m.Name())
		}
	}
}

// TestPermutationPValueMatchesUnhoistedLoop re-runs the permutation
// test with a deliberately naive in-test loop on the same RNG stream
// and asserts the hoisted-buffer implementation returns the same
// p-value — the buffer reuse must not change a single comparison.
func TestPermutationPValueMatchesUnhoistedLoop(t *testing.T) {
	baseRng := rand.New(rand.NewSource(99))
	a := randomSample(baseRng, 40)
	b := randomSample(baseRng, 55)
	for _, m := range All() {
		const rounds = 60
		p1, obs1, err := PermutationPValue(m, a, b, rounds, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		// Reference loop: shuffle and call the plain Distance path.
		rng := rand.New(rand.NewSource(5))
		obs2, err := m.Distance(a, b)
		if err != nil {
			t.Fatal(err)
		}
		pooled := append(append([]float64(nil), a...), b...)
		exceed := 0
		for r := 0; r < rounds; r++ {
			rng.Shuffle(len(pooled), func(i, j int) { pooled[i], pooled[j] = pooled[j], pooled[i] })
			d, err := m.Distance(pooled[:len(a)], pooled[len(a):])
			if err != nil {
				t.Fatal(err)
			}
			if d >= obs2 {
				exceed++
			}
		}
		p2 := (float64(exceed) + 1) / (float64(rounds) + 1)
		if obs1 != obs2 || p1 != p2 {
			t.Fatalf("%s: hoisted (p=%v obs=%v) != reference (p=%v obs=%v)", m.Name(), p1, obs1, p2, obs2)
		}
	}
}

// FuzzMeasuresDifferential feeds fuzzer-shaped byte strings as two
// float samples through every optimized kernel and the naive oracle.
func FuzzMeasuresDifferential(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0}, []byte{2, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 240, 63, 0, 0, 0, 0, 0, 0, 240, 63}, []byte{0, 0, 0, 0, 0, 0, 0, 64})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		decode := func(raw []byte) []float64 {
			var out []float64
			for len(raw) >= 8 && len(out) < 64 {
				v := math.Float64frombits(binary.LittleEndian.Uint64(raw[:8]))
				raw = raw[8:]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					continue
				}
				// Keep magnitudes sane so the quadratic oracle's sums
				// stay finite.
				if math.Abs(v) > 1e9 {
					v = math.Mod(v, 1e9)
				}
				out = append(out, v)
			}
			return out
		}
		a, b := decode(rawA), decode(rawB)
		if len(a) == 0 || len(b) == 0 {
			return
		}
		sa, sb := sortedCopy(a), sortedCopy(b)
		for _, m := range All() {
			want, err := NaiveDistance(m, a, b)
			if err != nil {
				t.Fatalf("%s: oracle: %v", m.Name(), err)
			}
			got, err := m.(SortedMeasure).DistanceSorted(sa, sb)
			if err != nil {
				t.Fatalf("%s: DistanceSorted: %v", m.Name(), err)
			}
			tol := 0.0
			if _, isEnergy := m.(Energy); isEnergy {
				tol = 1e-9 * math.Max(math.Abs(want), 1)
			}
			if math.Abs(got-want) > tol {
				t.Fatalf("%s: optimized %v vs naive %v\na=%v\nb=%v", m.Name(), got, want, a, b)
			}
		}
	})
}
