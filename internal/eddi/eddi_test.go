package eddi

import (
	"encoding/json"
	"testing"
)

func TestEmitAndLatest(t *testing.T) {
	c := NewCoordinator(0)
	var seen []Event
	if err := c.OnEvent(func(ev Event) { seen = append(seen, ev) }); err != nil {
		t.Fatal(err)
	}
	if err := c.Emit(Event{Kind: KindSafety, UAV: "u1", Time: 10, Severity: 0.2, Summary: "pof low"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Emit(Event{Kind: KindSafety, UAV: "u1", Time: 20, Severity: 0.5, Summary: "pof rising"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Emit(Event{Kind: KindSecurity, UAV: "u1", Time: 21, Severity: 1, Summary: "compromise"}); err != nil {
		t.Fatal(err)
	}
	ev, ok := c.Latest("u1", KindSafety)
	if !ok || ev.Time != 20 {
		t.Fatalf("latest safety = %+v ok=%v", ev, ok)
	}
	if _, ok := c.Latest("u1", KindRisk); ok {
		t.Fatal("risk should have no events")
	}
	if _, ok := c.Latest("u2", KindSafety); ok {
		t.Fatal("u2 should have no events")
	}
	if len(seen) != 3 {
		t.Fatalf("handler saw %d events", len(seen))
	}
	if w := c.WorstSeverity("u1"); w != 1 {
		t.Fatalf("worst severity = %v", w)
	}
	if w := c.WorstSeverity("ghost"); w != 0 {
		t.Fatalf("ghost severity = %v", w)
	}
}

func TestEmitValidation(t *testing.T) {
	c := NewCoordinator(0)
	if err := c.Emit(Event{Kind: KindSafety}); err == nil {
		t.Error("missing UAV must fail")
	}
	if err := c.Emit(Event{Kind: KindSafety, UAV: "u", Severity: 2}); err == nil {
		t.Error("severity > 1 must fail")
	}
	if err := c.OnEvent(nil); err == nil {
		t.Error("nil handler must fail")
	}
}

func TestHistoryFilterAndLimit(t *testing.T) {
	c := NewCoordinator(3)
	for i := 0; i < 5; i++ {
		uav := "a"
		if i%2 == 1 {
			uav = "b"
		}
		_ = c.Emit(Event{Kind: KindSafety, UAV: uav, Time: float64(i)})
	}
	all := c.History("")
	if len(all) != 3 {
		t.Fatalf("history limit failed: %d", len(all))
	}
	if all[0].Time != 2 {
		t.Fatalf("oldest kept = %v, want 2", all[0].Time)
	}
	bOnly := c.History("b")
	for _, ev := range bOnly {
		if ev.UAV != "b" {
			t.Fatal("filter broken")
		}
	}
}

func TestKindString(t *testing.T) {
	for k := KindSafety; k <= KindRisk; k++ {
		if k.String() == "" {
			t.Fatal("kind name empty")
		}
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must render")
	}
}

func TestIdentityRoundTrip(t *testing.T) {
	id := UAVIdentity("uav1")
	if err := id.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseIdentity(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.System != "uav1" || len(back.Models) != len(id.Models) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// Marshal is order-stable.
	data2, _ := json.Marshal(back)
	if string(data) != string(data2) {
		t.Fatal("marshal not deterministic")
	}
}

func TestIdentityValidation(t *testing.T) {
	if err := (&Identity{}).Validate(); err == nil {
		t.Error("empty identity must fail")
	}
	if err := (&Identity{System: "s"}).Validate(); err == nil {
		t.Error("no models must fail")
	}
	bad := &Identity{System: "s", Models: []ModelRef{{Type: "x"}}}
	if err := bad.Validate(); err == nil {
		t.Error("model without name must fail")
	}
	dup := &Identity{System: "s", Models: []ModelRef{
		{Type: "x", Name: "a"}, {Type: "x", Name: "a"},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate model must fail")
	}
	if _, err := ParseIdentity([]byte("{bad")); err == nil {
		t.Error("malformed JSON must fail")
	}
	if _, err := ParseIdentity([]byte(`{"system":""}`)); err == nil {
		t.Error("invalid identity must fail")
	}
}
