package eddi

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeMonitor is a scriptable Runtime for chain-semantics tests.
type fakeMonitor struct {
	name    string
	advice  Advice
	err     error
	observe func(s Snapshot) // side channel to inspect the blackboard
	called  bool
}

func (m *fakeMonitor) Name() string { return m.name }

func (m *fakeMonitor) Observe(s Snapshot) ([]Event, Advice, error) {
	m.called = true
	if m.observe != nil {
		m.observe(s)
	}
	if m.err != nil {
		return nil, Advice{}, m.err
	}
	ev := Event{Kind: KindSafety, UAV: s.UAV, Time: s.Time, Severity: 0.1, Summary: m.name}
	return []Event{ev}, m.advice, nil
}

func TestRunChainOrderAndAggregation(t *testing.T) {
	a := &fakeMonitor{name: "a", advice: Advice{Kind: AdviceDescend}}
	b := &fakeMonitor{name: "b"}
	c := &fakeMonitor{name: "c", advice: Advice{Kind: AdviceRescan}}
	res, err := RunChain([]Runtime{a, b, c}, Snapshot{UAV: "u1", Time: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) != 3 || res.Events[0].Summary != "a" || res.Events[2].Summary != "c" {
		t.Fatalf("events out of chain order: %+v", res.Events)
	}
	// b's empty advice must be dropped.
	if len(res.Advices) != 2 {
		t.Fatalf("advices = %+v, want 2 entries", res.Advices)
	}
	if !res.HasAdvice(AdviceDescend) || !res.HasAdvice(AdviceRescan) || res.HasAdvice(AdviceHold) {
		t.Errorf("HasAdvice wrong over %+v", res.Advices)
	}
}

func TestRunChainHaltStopsChain(t *testing.T) {
	gate := &fakeMonitor{name: "gate", advice: Advice{Kind: AdviceCollabLand, Halt: true}}
	after := &fakeMonitor{name: "after"}
	res, err := RunChain([]Runtime{gate, after}, Snapshot{UAV: "u1"})
	if err != nil {
		t.Fatal(err)
	}
	if after.called {
		t.Error("monitor after Halt must not observe")
	}
	if !res.HasAdvice(AdviceCollabLand) {
		t.Error("halting advice must still be recorded")
	}
}

func TestRunChainErrorNamesMonitor(t *testing.T) {
	boom := errors.New("boom")
	bad := &fakeMonitor{name: "flaky", err: boom}
	after := &fakeMonitor{name: "after"}
	_, err := RunChain([]Runtime{bad, after}, Snapshot{UAV: "u1"})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "flaky") {
		t.Errorf("error %q must name the failing monitor", err)
	}
	if after.called {
		t.Error("chain must abort on error")
	}
}

func TestRunChainSharedBlackboard(t *testing.T) {
	writer := &fakeMonitor{name: "writer", observe: func(s Snapshot) {
		s.Derived.Uncertainty = 0.42
		s.Derived.HasUncertainty = true
	}}
	var seen float64
	reader := &fakeMonitor{name: "reader", observe: func(s Snapshot) {
		if s.Derived.HasUncertainty {
			seen = s.Derived.Uncertainty
		}
	}}
	// Nil Derived must be initialized by RunChain.
	if _, err := RunChain([]Runtime{writer, reader}, Snapshot{UAV: "u1"}); err != nil {
		t.Fatal(err)
	}
	if seen != 0.42 {
		t.Errorf("blackboard value = %v, want 0.42", seen)
	}
}

// chainRecord captures one MonitorDone callback.
type chainRecord struct {
	index  int
	name   string
	events int
	advice Advice
	err    error
}

type recordingObserver struct{ records []chainRecord }

func (o *recordingObserver) MonitorDone(index int, m Runtime, elapsed time.Duration, events int, advice Advice, err error) {
	o.records = append(o.records, chainRecord{index: index, name: m.Name(), events: events, advice: advice, err: err})
}

func TestRunChainObserved(t *testing.T) {
	a := &fakeMonitor{name: "a", advice: Advice{Kind: AdviceDescend}}
	gate := &fakeMonitor{name: "gate", advice: Advice{Kind: AdviceHold, Halt: true}}
	after := &fakeMonitor{name: "after"}
	obs := &recordingObserver{}
	res, err := RunChainObserved([]Runtime{a, gate, after}, Snapshot{UAV: "u1"}, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Advices) != 2 {
		t.Fatalf("advices = %+v, want 2", res.Advices)
	}
	// One callback per invoked monitor, none for the halted-over one.
	if len(obs.records) != 2 {
		t.Fatalf("records = %+v, want 2", obs.records)
	}
	if obs.records[0].name != "a" || obs.records[0].index != 0 || obs.records[0].events != 1 {
		t.Errorf("record[0] = %+v", obs.records[0])
	}
	if obs.records[1].name != "gate" || !obs.records[1].advice.Halt {
		t.Errorf("record[1] = %+v", obs.records[1])
	}
	if after.called {
		t.Error("monitor after Halt must not observe")
	}
}

func TestRunChainObservedError(t *testing.T) {
	boom := errors.New("boom")
	bad := &fakeMonitor{name: "flaky", err: boom}
	obs := &recordingObserver{}
	if _, err := RunChainObserved([]Runtime{bad}, Snapshot{UAV: "u1"}, obs); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// The erroring monitor must still be reported, error attached.
	if len(obs.records) != 1 || !errors.Is(obs.records[0].err, boom) {
		t.Fatalf("records = %+v, want one with the error", obs.records)
	}
}

func TestAdviceKindString(t *testing.T) {
	cases := map[AdviceKind]string{
		AdviceNone:          "none",
		AdviceDescend:       "descend",
		AdviceRescan:        "rescan",
		AdviceHold:          "hold",
		AdviceReturnToBase:  "return-to-base",
		AdviceEmergencyLand: "emergency-land",
		AdviceCollabLand:    "collaborative-land",
		AdviceKind(99):      "AdviceKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

// panicMonitor panics on every Observe.
type panicMonitor struct{ name string }

func (m *panicMonitor) Name() string { return m.name }

func (m *panicMonitor) Observe(Snapshot) ([]Event, Advice, error) {
	panic("monitor blew up")
}

// TestRunChainContainsPanic pins panic containment: a panicking
// monitor becomes an attributed *MonitorPanicError instead of
// unwinding the caller, and the chain aborts like any other monitor
// error.
func TestRunChainContainsPanic(t *testing.T) {
	after := &fakeMonitor{name: "after"}
	_, err := RunChain([]Runtime{&panicMonitor{name: "bomb"}, after}, Snapshot{UAV: "u1"})
	var pe *MonitorPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *MonitorPanicError", err, err)
	}
	if pe.Monitor != "bomb" || pe.Value != "monitor blew up" {
		t.Errorf("panic attribution = %+v", pe)
	}
	if !strings.Contains(err.Error(), "bomb") || !strings.Contains(err.Error(), "monitor blew up") {
		t.Errorf("error %q must name the monitor and the panic value", err)
	}
	if after.called {
		t.Error("chain must abort on a contained panic")
	}

	// The observed variant reports the panic to the hook and returns it
	// unwrapped (already attributed).
	var hookErr error
	obs := chainObserverFunc(func(index int, m Runtime, _ time.Duration, _ int, _ Advice, err error) {
		if m.Name() == "bomb" {
			hookErr = err
		}
	})
	_, err = RunChainObserved([]Runtime{&panicMonitor{name: "bomb"}}, Snapshot{UAV: "u1"}, obs)
	if !errors.As(err, &pe) {
		t.Fatalf("observed err = %v, want *MonitorPanicError", err)
	}
	if !errors.As(hookErr, &pe) {
		t.Errorf("observer hook saw %v, want the panic error", hookErr)
	}
}

// chainObserverFunc adapts a function to ChainObserver.
type chainObserverFunc func(int, Runtime, time.Duration, int, Advice, error)

func (f chainObserverFunc) MonitorDone(index int, m Runtime, elapsed time.Duration, events int, advice Advice, err error) {
	f(index, m, elapsed, events, advice, err)
}
