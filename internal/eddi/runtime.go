package eddi

import (
	"errors"
	"fmt"
	"time"
)

// This file defines the runtime-monitor contract every EDDI technology
// plugs into the platform through (paper §IV-A): a monitor observes a
// per-UAV telemetry snapshot and returns findings (events) plus an
// adaptation proposal (advice). Monitors of one UAV run as an ordered
// chain; monitors of different UAVs are independent, which is what lets
// the platform scheduler evaluate the fleet concurrently.

// Snapshot is the per-UAV observation input handed to every runtime
// monitor on one platform tick. All snapshots of a tick are taken
// against the same frozen world state, so chains of different UAVs can
// be observed concurrently without changing any monitor's inputs.
type Snapshot struct {
	UAV  string
	Time float64

	// Flight state.
	Airborne bool
	// InMissionFlight reports the mission-execution flight mode
	// (waypoints being flown), as opposed to holds, returns or landings.
	InMissionFlight bool
	AltitudeM       float64

	// Vehicle health telemetry.
	ChargePct    float64
	BatteryTempC float64
	Overheating  bool
	FailedRotors int
	CommsOK      bool

	// Environment.
	Visibility float64

	// Derived is the per-tick blackboard: monitors earlier in the chain
	// publish values here for later monitors (e.g. the reliability
	// monitor's PoF feeds the risk monitor). Never nil inside a chain.
	Derived *Derived
}

// Derived carries values produced by earlier monitors in a chain.
type Derived struct {
	// PoF and ReliabilityLevel are the reliability monitor's outputs
	// ("high", "medium", "low").
	PoF              float64
	ReliabilityLevel string
	// SafetyAdvice is the reliability monitor's raw adaptation proposal
	// before mission-level fusion.
	SafetyAdvice AdviceKind
	// Uncertainty is the fused perception uncertainty; HasUncertainty
	// reports whether a perception window has been evaluated yet.
	Uncertainty    float64
	HasUncertainty bool
	// RiskHigh is the risk monitor's posterior P(risk = high).
	RiskHigh float64
}

// AdviceKind enumerates the adaptation proposals a monitor can make.
type AdviceKind int

// Advice kinds.
const (
	AdviceNone AdviceKind = iota
	// AdviceDescend lowers the survey altitude (SINADRA).
	AdviceDescend
	// AdviceRescan descends and re-scans the current cell (SINADRA).
	AdviceRescan
	AdviceHold
	AdviceReturnToBase
	AdviceEmergencyLand
	// AdviceCollabLand reports that collaborative localization is
	// steering the vehicle down; normal mission control is suspended.
	AdviceCollabLand
)

func (k AdviceKind) String() string {
	switch k {
	case AdviceNone:
		return "none"
	case AdviceDescend:
		return "descend"
	case AdviceRescan:
		return "rescan"
	case AdviceHold:
		return "hold"
	case AdviceReturnToBase:
		return "return-to-base"
	case AdviceEmergencyLand:
		return "emergency-land"
	case AdviceCollabLand:
		return "collaborative-land"
	default:
		return fmt.Sprintf("AdviceKind(%d)", int(k))
	}
}

// Advice is one monitor's adaptation proposal for the observed UAV.
type Advice struct {
	Kind   AdviceKind
	Reason string
	// Override marks advice that must bypass evidence fusion (e.g. the
	// SafeDrones emergency-PoF threshold, which models the failure trend
	// the boolean ConSert evidence cannot see).
	Override bool
	// Halt stops the chain: no later monitor observes this UAV this
	// tick (e.g. while collaborative localization owns the vehicle).
	Halt bool
}

// Runtime is the pluggable monitor interface: one EDDI technology
// observing one UAV. Implementations may keep per-UAV state across
// ticks but must not touch other UAVs' state from Observe, so the
// platform can evaluate different UAVs' chains concurrently.
type Runtime interface {
	// Name identifies the technology (e.g. "safedrones", "sinadra").
	Name() string
	// Observe folds one snapshot into the monitor and returns findings
	// plus advice. Returned events are emitted by the platform in
	// deterministic fleet order, not by the monitor itself.
	Observe(s Snapshot) ([]Event, Advice, error)
}

// ChainResult aggregates one UAV chain's outputs for one tick.
type ChainResult struct {
	// Events in chain order, ready for deterministic emission.
	Events []Event
	// Advices holds every non-empty advice in chain order.
	Advices []Advice
}

// HasAdvice reports whether the chain proposed the given kind.
func (r ChainResult) HasAdvice(kind AdviceKind) bool {
	for _, a := range r.Advices {
		if a.Kind == kind {
			return true
		}
	}
	return false
}

// ChainObserver receives one callback per monitor invocation during an
// observed chain run. Implementations must be cheap: MonitorDone is on
// the platform's per-tick hot path and may be called concurrently for
// chains of different UAVs.
type ChainObserver interface {
	// MonitorDone reports that monitors[index] finished one Observe with
	// the given wall-clock duration, event count, advice and error. It
	// fires for the erroring monitor too, just before the chain aborts.
	MonitorDone(index int, m Runtime, elapsed time.Duration, events int, advice Advice, err error)
}

// MonitorPanicError reports a monitor whose Observe panicked. The
// chain converts the panic into this error instead of letting it
// unwind the scheduler, so one crashing monitor process-equivalent
// cannot take down the platform and the failure stays attributable to
// the monitor that caused it.
type MonitorPanicError struct {
	// Monitor is the Name() of the panicking monitor.
	Monitor string
	// Value is the recovered panic value.
	Value interface{}
}

func (e *MonitorPanicError) Error() string {
	return fmt.Sprintf("eddi: monitor %s panicked: %v", e.Monitor, e.Value)
}

// observeMonitor runs one Observe with panic containment: a panic is
// recovered and returned as a *MonitorPanicError.
func observeMonitor(m Runtime, s Snapshot) (events []Event, advice Advice, err error) {
	defer func() {
		if r := recover(); r != nil {
			events, advice = nil, Advice{}
			err = &MonitorPanicError{Monitor: m.Name(), Value: r}
		}
	}()
	return m.Observe(s)
}

// RunChain observes the snapshot through each monitor in order,
// sharing one Derived blackboard, and aggregates events and advice.
// A Halt advice stops the chain. Errors abort with the monitor named.
func RunChain(monitors []Runtime, s Snapshot) (ChainResult, error) {
	return RunChainObserved(monitors, s, nil)
}

// RunChainObserved is RunChain with a per-monitor observation hook. A
// nil observer skips all timing work, making it exactly RunChain.
func RunChainObserved(monitors []Runtime, s Snapshot, obs ChainObserver) (ChainResult, error) {
	if s.Derived == nil {
		s.Derived = &Derived{}
	}
	var res ChainResult
	// Consecutive monitors share a timestamp: monitor i's end is
	// monitor i+1's start, so an n-monitor chain costs n+1 clock reads
	// instead of 2n.
	var prev time.Time
	if obs != nil {
		prev = time.Now()
	}
	for i, m := range monitors {
		events, advice, err := observeMonitor(m, s)
		if obs != nil {
			now := time.Now()
			obs.MonitorDone(i, m, now.Sub(prev), len(events), advice, err)
			prev = now
		}
		if err != nil {
			var pe *MonitorPanicError
			if errors.As(err, &pe) {
				// Already attributed; don't double-wrap.
				return res, err
			}
			return res, fmt.Errorf("eddi: monitor %s: %w", m.Name(), err)
		}
		res.Events = append(res.Events, events...)
		if advice.Kind != AdviceNone || advice.Halt {
			res.Advices = append(res.Advices, advice)
		}
		if advice.Halt {
			break
		}
	}
	return res, nil
}
