package eddi

import "sort"

// This file is the EDDI half of the flight-recorder checkpoint
// contract (internal/flightrec): monitors expose their incremental
// state through the optional Snapshotter interface, and the
// coordinator's event memory serializes to plain data. Handlers are
// closures and are deliberately excluded — restore rebuilds the
// platform first (re-registering handlers) and overlays this state.

// Snapshotter is the optional checkpoint interface a Runtime monitor
// implements when it keeps incremental state across ticks. The
// platform snapshots every monitor that implements it and restores
// the blobs after rebuilding the chain; stateless monitors simply
// don't implement it.
type Snapshotter interface {
	// SnapshotState serializes the monitor's mutable state.
	SnapshotState() ([]byte, error)
	// RestoreState overwrites the monitor's mutable state from a blob
	// produced by SnapshotState on an identically configured monitor.
	RestoreState(data []byte) error
}

// CoordinatorState is the coordinator's serializable event memory.
// Latest is kept separately from History: the history log is bounded
// by HistoryLimit, so the latest finding per (UAV, kind) may no longer
// be present in it.
type CoordinatorState struct {
	History []Event `json:"history"`
	// Latest is the flattened latest-event table, sorted by (UAV, Kind)
	// for deterministic serialization.
	Latest []Event `json:"latest"`
}

// State exports the coordinator's event memory.
func (c *Coordinator) State() CoordinatorState {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CoordinatorState{History: append([]Event(nil), c.history...)}
	for _, kinds := range c.latest {
		for _, ev := range kinds {
			s.Latest = append(s.Latest, ev)
		}
	}
	sort.Slice(s.Latest, func(i, j int) bool {
		if s.Latest[i].UAV != s.Latest[j].UAV {
			return s.Latest[i].UAV < s.Latest[j].UAV
		}
		return s.Latest[i].Kind < s.Latest[j].Kind
	})
	return s
}

// Restore overwrites the coordinator's event memory. Registered
// handlers are kept: the rebuilt platform owns those.
func (c *Coordinator) Restore(s CoordinatorState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.history = append(c.history[:0:0], s.History...)
	c.latest = make(map[string]map[Kind]Event, len(s.Latest))
	for _, ev := range s.Latest {
		if c.latest[ev.UAV] == nil {
			c.latest[ev.UAV] = make(map[Kind]Event)
		}
		c.latest[ev.UAV][ev.Kind] = ev
	}
}
