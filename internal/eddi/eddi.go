// Package eddi provides the common Executable Digital Dependability
// Identity framework (paper §III): the event envelope every EDDI
// technology reports through, the runtime coordinator that merges
// safety and security findings per UAV (the safety–security
// co-engineering workflow of §III-B), and the serializable identity
// container that carries the models a deployed EDDI is built from —
// the runtime counterpart of the ODE-based DDI exchange format.
package eddi

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Kind classifies the EDDI technology that produced an event.
type Kind int

// Event kinds.
const (
	KindSafety     Kind = iota // SafeDrones reliability assessment
	KindSecurity               // Security EDDI attack findings
	KindPerception             // SafeML / DeepKnowledge monitors
	KindRisk                   // SINADRA dynamic risk assessment
)

func (k Kind) String() string {
	switch k {
	case KindSafety:
		return "safety"
	case KindSecurity:
		return "security"
	case KindPerception:
		return "perception"
	case KindRisk:
		return "risk"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is the common envelope for EDDI findings.
type Event struct {
	Kind Kind
	UAV  string
	Time float64
	// Severity in [0,1]: 0 informational, 1 critical.
	Severity float64
	// Summary is a human-readable one-liner.
	Summary string
	// Data carries technology-specific key/values for the GUI layer.
	Data map[string]string
}

// Coordinator fans EDDI events out to handlers and keeps the latest
// finding per (UAV, kind) — the holistic dependability picture that
// the ConSert evidence mapping and the GUI read.
type Coordinator struct {
	mu       sync.Mutex
	latest   map[string]map[Kind]Event
	history  []Event
	handlers []func(Event)
	// HistoryLimit bounds the event log (0 = unbounded).
	HistoryLimit int
}

// NewCoordinator returns an empty coordinator keeping at most limit
// events of history (0 = unbounded).
func NewCoordinator(limit int) *Coordinator {
	return &Coordinator{
		latest:       make(map[string]map[Kind]Event),
		HistoryLimit: limit,
	}
}

// OnEvent registers a handler invoked synchronously for every event.
func (c *Coordinator) OnEvent(h func(Event)) error {
	if h == nil {
		return errors.New("eddi: nil handler")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handlers = append(c.handlers, h)
	return nil
}

// Emit records an event and notifies handlers.
func (c *Coordinator) Emit(ev Event) error {
	if ev.UAV == "" {
		return errors.New("eddi: event without UAV")
	}
	if ev.Severity < 0 || ev.Severity > 1 {
		return fmt.Errorf("eddi: severity %v out of [0,1]", ev.Severity)
	}
	c.mu.Lock()
	if c.latest[ev.UAV] == nil {
		c.latest[ev.UAV] = make(map[Kind]Event)
	}
	c.latest[ev.UAV][ev.Kind] = ev
	c.history = append(c.history, ev)
	if c.HistoryLimit > 0 && len(c.history) > c.HistoryLimit {
		c.history = c.history[len(c.history)-c.HistoryLimit:]
	}
	var handlers []func(Event)
	handlers = append(handlers, c.handlers...)
	c.mu.Unlock()
	for _, h := range handlers {
		h(ev)
	}
	return nil
}

// Latest returns the most recent event of the given kind for the UAV.
func (c *Coordinator) Latest(uav string, k Kind) (Event, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev, ok := c.latest[uav][k]
	return ev, ok
}

// History returns a copy of the event log (optionally filtered by
// UAV; pass "" for all).
func (c *Coordinator) History(uav string) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	if uav == "" {
		return append([]Event(nil), c.history...)
	}
	var out []Event
	for _, ev := range c.history {
		if ev.UAV == uav {
			out = append(out, ev)
		}
	}
	return out
}

// WorstSeverity returns the maximum severity across the latest events
// of all kinds for the UAV (0 when nothing was reported).
func (c *Coordinator) WorstSeverity(uav string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var worst float64
	for _, ev := range c.latest[uav] {
		if ev.Severity > worst {
			worst = ev.Severity
		}
	}
	return worst
}

// ModelRef describes one model carried inside an identity, mirroring
// the ODE metamodel's notion of exchangeable dependability artefacts.
type ModelRef struct {
	Type        string `json:"type"` // "fault-tree", "markov", "attack-tree", "bayesian-network", "consert"
	Name        string `json:"name"`
	Version     string `json:"version"`
	Description string `json:"description,omitempty"`
}

// Identity is the serializable EDDI manifest of one robot: which
// dependability models it executes at runtime.
type Identity struct {
	System    string     `json:"system"`
	Generated string     `json:"generated,omitempty"`
	Models    []ModelRef `json:"models"`
}

// Validate checks the identity is well-formed.
func (id *Identity) Validate() error {
	if id.System == "" {
		return errors.New("eddi: identity without system name")
	}
	if len(id.Models) == 0 {
		return errors.New("eddi: identity without models")
	}
	seen := map[string]bool{}
	for _, m := range id.Models {
		if m.Type == "" || m.Name == "" {
			return fmt.Errorf("eddi: model ref %+v missing type or name", m)
		}
		key := m.Type + "/" + m.Name
		if seen[key] {
			return fmt.Errorf("eddi: duplicate model %s", key)
		}
		seen[key] = true
	}
	return nil
}

// MarshalJSON keeps model order stable (sorted by type then name).
func (id Identity) MarshalJSON() ([]byte, error) {
	models := append([]ModelRef(nil), id.Models...)
	sort.Slice(models, func(i, j int) bool {
		if models[i].Type != models[j].Type {
			return models[i].Type < models[j].Type
		}
		return models[i].Name < models[j].Name
	})
	type alias Identity
	out := alias(id)
	out.Models = models
	return json.Marshal(out)
}

// ParseIdentity decodes and validates an identity document.
func ParseIdentity(data []byte) (*Identity, error) {
	var id Identity
	if err := json.Unmarshal(data, &id); err != nil {
		return nil, fmt.Errorf("eddi: parsing identity: %w", err)
	}
	if err := id.Validate(); err != nil {
		return nil, err
	}
	return &id, nil
}

// UAVIdentity builds the manifest of the full SESAME UAV EDDI as
// integrated in this repository.
func UAVIdentity(uav string) *Identity {
	return &Identity{
		System: uav,
		Models: []ModelRef{
			{Type: "markov", Name: "propulsion", Version: "1", Description: "k-out-of-n rotor reliability (SafeDrones)"},
			{Type: "markov", Name: "battery", Version: "1", Description: "stress-dependent battery hazard (SafeDrones)"},
			{Type: "markov", Name: "processor", Version: "1", Description: "SER/watchdog model (SafeDrones)"},
			{Type: "fault-tree", Name: "uav-loss", Version: "1", Description: "OR composition over subsystems"},
			{Type: "attack-tree", Name: "map-manipulation", Version: "1", Description: "ROS spoofing / GNSS spoofing (Security EDDI)"},
			{Type: "bayesian-network", Name: "sar-risk", Version: "1", Description: "situation-aware risk (SINADRA)"},
			{Type: "consert", Name: "uav-network", Version: "1", Description: "Fig. 1 hierarchical ConSert"},
			{Type: "attack-tree", Name: "c2-hijack", Version: "1", Description: "command/control seizure and jamming (Security EDDI)"},
			{Type: "assurance-case", Name: "sar-dependability", Version: "1", Description: "GSN argument linking models and reproduced experiments"},
		},
	}
}
