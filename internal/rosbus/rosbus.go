// Package rosbus is an in-process publish/subscribe middleware that
// stands in for ROS Noetic in the paper's architecture (Figs. 2 and 3).
// It reproduces the property that makes the §V-C attack possible: like
// stock ROS, the bus does not authenticate publishers, so any node that
// can reach the bus may advertise on any topic and inject falsified
// messages. The IDS taps the bus the way a network IDS taps ROS
// traffic.
//
// Delivery is synchronous and in registration order, which keeps
// simulation runs deterministic.
package rosbus

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sesame/internal/obsv"
)

// Message is one bus datagram. Payloads are domain structs defined by
// the publishing subsystem (e.g. GPSFix, BatteryState).
type Message struct {
	Topic     string
	Publisher string  // advertised node name; NOT authenticated
	Seq       uint64  // per-topic sequence number assigned by the bus
	Stamp     float64 // simulation time in seconds, set by the publisher
	Payload   interface{}
}

// Handler consumes messages delivered to a subscription.
type Handler func(Message)

// Subscription identifies an active subscription; use Bus.Unsubscribe
// to cancel it.
type Subscription struct {
	topic string
	id    int
}

// ErrDepthExceeded is returned when the publish-from-handler recursion
// guard trips; match it with errors.Is.
var ErrDepthExceeded = errors.New("rosbus: publish depth exceeded")

// Filter inspects every message accepted from a publisher before it is
// delivered. Returning forward=false consumes the message: the bus does
// not deliver it, and the filter owns its fate (it may call Deliver
// later, once, several times, or never — the hook a lossy-link layer
// needs). A non-nil error is additionally surfaced to the publisher,
// which models a link that rejects frames rather than eating them.
type Filter func(Message) (forward bool, err error)

// Stats is a point-in-time snapshot of bus-wide counters.
type Stats struct {
	// Published counts messages accepted from publishers (a sequence
	// number was assigned), whether or not they were delivered.
	Published uint64
	// Delivered counts messages dispatched to subscribers and taps,
	// including filter redeliveries via Deliver.
	Delivered uint64
	// FilterConsumed counts messages a filter kept from synchronous
	// delivery (dropped, delayed or rejected by the link layer).
	FilterConsumed uint64
	// DepthExceeded counts publishes refused by the recursion guard.
	DepthExceeded uint64
}

// Bus is the topic registry and router (the roscore equivalent).
// The zero value is not usable; call NewBus.
type Bus struct {
	mu     sync.Mutex
	topics map[string]*topicState
	taps   map[int]Handler
	nextID int
	filter Filter
	// depth guards against unbounded publish-from-handler recursion.
	depth int
	// stats
	delivered      uint64
	filterConsumed uint64
	depthExceeded  uint64
	// Observability mirrors (nil when uninstrumented; all nil-safe).
	mPublished     *obsv.CounterVec
	mDelivered     *obsv.Counter
	mConsumed      *obsv.Counter
	mDepthExceeded *obsv.Counter
}

type topicState struct {
	seq  uint64
	subs map[int]Handler
	// stats
	published uint64
	// mPublished caches this topic's labeled counter so the publish
	// hot path never pays a series lookup (nil when uninstrumented).
	mPublished *obsv.Counter
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		topics: make(map[string]*topicState),
		taps:   make(map[int]Handler),
	}
}

// Instrument mirrors the bus counters into reg. A nil registry leaves
// the bus uninstrumented (every mirror stays a no-op nil handle).
func (b *Bus) Instrument(reg *obsv.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mPublished = reg.CounterVec("sesame_rosbus_published_total",
		"Messages accepted from publishers, by topic.", "topic")
	for topic, ts := range b.topics {
		ts.mPublished = b.mPublished.With(topic)
	}
	b.mDelivered = reg.Counter("sesame_rosbus_delivered_total",
		"Messages dispatched to subscribers and taps.")
	b.mConsumed = reg.Counter("sesame_rosbus_filter_consumed_total",
		"Messages consumed by the link filter before delivery.")
	b.mDepthExceeded = reg.Counter("sesame_rosbus_depth_exceeded_total",
		"Publishes refused by the recursion guard.")
}

// maxPublishDepth bounds handler->publish recursion.
const maxPublishDepth = 32

// Publisher is a handle bound to a topic and an (unverified) node name.
type Publisher struct {
	bus   *Bus
	topic string
	node  string
}

// Advertise returns a publisher for topic under the given node name.
// Names are not authenticated — this mirrors the ROS vulnerability the
// Security EDDI exists to detect.
func (b *Bus) Advertise(topic, node string) (*Publisher, error) {
	if topic == "" || node == "" {
		return nil, errors.New("rosbus: empty topic or node name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensureTopic(topic)
	return &Publisher{bus: b, topic: topic, node: node}, nil
}

func (b *Bus) ensureTopic(topic string) *topicState {
	ts, ok := b.topics[topic]
	if !ok {
		ts = &topicState{subs: make(map[int]Handler)}
		if b.mPublished != nil {
			ts.mPublished = b.mPublished.With(topic)
		}
		b.topics[topic] = ts
	}
	return ts
}

// Publish sends payload on the publisher's topic at simulation time
// stamp. Handlers run synchronously before Publish returns.
func (p *Publisher) Publish(stamp float64, payload interface{}) error {
	return p.bus.publish(Message{
		Topic:     p.topic,
		Publisher: p.node,
		Stamp:     stamp,
		Payload:   payload,
	})
}

// Inject delivers a fully caller-controlled message, spoofed publisher
// name included. It is how attack scenarios model a compromised node.
func (b *Bus) Inject(msg Message) error {
	return b.publish(msg)
}

// SetFilter installs (or, with nil, removes) the bus-wide link filter.
// Only one filter is supported; a link layer multiplexes internally.
func (b *Bus) SetFilter(f Filter) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.filter = f
}

// WrapFilter composes a new filter over whatever is currently
// installed: the wrapper receives the previous filter (possibly nil)
// and decides whether and how to delegate. Fault layers stack this way
// — e.g. a chaos layer over a link simulator — instead of overwriting
// each other through SetFilter.
func (b *Bus) WrapFilter(wrap func(next Filter) Filter) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.filter = wrap(b.filter)
}

func (b *Bus) publish(msg Message) error {
	if msg.Topic == "" {
		return errors.New("rosbus: empty topic")
	}
	b.mu.Lock()
	if b.depth >= maxPublishDepth {
		b.depthExceeded++
		b.mDepthExceeded.Inc()
		b.mu.Unlock()
		return fmt.Errorf("%w: %d levels (handler loop?)", ErrDepthExceeded, maxPublishDepth)
	}
	b.depth++
	ts := b.ensureTopic(msg.Topic)
	ts.seq++
	ts.published++
	ts.mPublished.Inc()
	msg.Seq = ts.seq
	filter := b.filter
	b.mu.Unlock()

	// The filter runs outside the lock: a link layer may call Deliver
	// (inline dup/reorder release) or schedule clock callbacks that do.
	if filter != nil {
		fwd, err := filter(msg)
		if !fwd || err != nil {
			b.mu.Lock()
			b.filterConsumed++
			b.mConsumed.Inc()
			b.depth--
			b.mu.Unlock()
			return err
		}
	}

	b.dispatch(msg)

	b.mu.Lock()
	b.depth--
	b.mu.Unlock()
	return nil
}

// Deliver dispatches a message to subscribers and taps, bypassing the
// filter and sequence assignment. It is the re-injection path for a
// link layer releasing delayed, duplicated or reordered frames; msg
// should be a message the filter previously consumed (Seq already
// assigned). The recursion guard still applies.
func (b *Bus) Deliver(msg Message) error {
	if msg.Topic == "" {
		return errors.New("rosbus: empty topic")
	}
	b.mu.Lock()
	if b.depth >= maxPublishDepth {
		b.depthExceeded++
		b.mDepthExceeded.Inc()
		b.mu.Unlock()
		return fmt.Errorf("%w: %d levels (handler loop?)", ErrDepthExceeded, maxPublishDepth)
	}
	b.depth++
	b.ensureTopic(msg.Topic)
	b.mu.Unlock()

	b.dispatch(msg)

	b.mu.Lock()
	b.depth--
	b.mu.Unlock()
	return nil
}

// dispatch snapshots the handler set under the lock and runs the
// handlers unlocked, in deterministic id order.
func (b *Bus) dispatch(msg Message) {
	b.mu.Lock()
	ts := b.ensureTopic(msg.Topic)
	subIDs := make([]int, 0, len(ts.subs))
	for id := range ts.subs {
		subIDs = append(subIDs, id)
	}
	sort.Ints(subIDs)
	handlers := make([]Handler, 0, len(subIDs)+len(b.taps))
	for _, id := range subIDs {
		handlers = append(handlers, ts.subs[id])
	}
	tapIDs := make([]int, 0, len(b.taps))
	for id := range b.taps {
		tapIDs = append(tapIDs, id)
	}
	sort.Ints(tapIDs)
	for _, id := range tapIDs {
		handlers = append(handlers, b.taps[id])
	}
	b.delivered++
	b.mDelivered.Inc()
	b.mu.Unlock()

	for _, h := range handlers {
		h(msg)
	}
}

// Stats returns a snapshot of the bus-wide counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	var published uint64
	for _, ts := range b.topics {
		published += ts.published
	}
	return Stats{
		Published:      published,
		Delivered:      b.delivered,
		FilterConsumed: b.filterConsumed,
		DepthExceeded:  b.depthExceeded,
	}
}

// Subscribe registers handler for every future message on topic.
func (b *Bus) Subscribe(topic string, handler Handler) (Subscription, error) {
	if topic == "" {
		return Subscription{}, errors.New("rosbus: empty topic")
	}
	if handler == nil {
		return Subscription{}, errors.New("rosbus: nil handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ts := b.ensureTopic(topic)
	b.nextID++
	ts.subs[b.nextID] = handler
	return Subscription{topic: topic, id: b.nextID}, nil
}

// Unsubscribe cancels a subscription. Unknown subscriptions are a no-op.
func (b *Bus) Unsubscribe(s Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ts, ok := b.topics[s.topic]; ok {
		delete(ts.subs, s.id)
	}
}

// Tap registers handler for every message on every topic (the IDS
// vantage point). The returned cancel function removes the tap.
func (b *Bus) Tap(handler Handler) (cancel func(), err error) {
	if handler == nil {
		return nil, errors.New("rosbus: nil tap handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	id := b.nextID
	b.taps[id] = handler
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.taps, id)
	}, nil
}

// Topics returns the sorted list of known topics.
func (b *Bus) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.topics))
	for t := range b.topics {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// PublishedCount returns how many messages have been published on topic.
func (b *Bus) PublishedCount(topic string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ts, ok := b.topics[topic]; ok {
		return ts.published
	}
	return 0
}

// SubscriberCount returns the number of active subscriptions on topic.
func (b *Bus) SubscriberCount(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ts, ok := b.topics[topic]; ok {
		return len(ts.subs)
	}
	return 0
}
