// Package rosbus is an in-process publish/subscribe middleware that
// stands in for ROS Noetic in the paper's architecture (Figs. 2 and 3).
// It reproduces the property that makes the §V-C attack possible: like
// stock ROS, the bus does not authenticate publishers, so any node that
// can reach the bus may advertise on any topic and inject falsified
// messages. The IDS taps the bus the way a network IDS taps ROS
// traffic.
//
// Delivery is synchronous and in registration order, which keeps
// simulation runs deterministic.
package rosbus

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Message is one bus datagram. Payloads are domain structs defined by
// the publishing subsystem (e.g. GPSFix, BatteryState).
type Message struct {
	Topic     string
	Publisher string  // advertised node name; NOT authenticated
	Seq       uint64  // per-topic sequence number assigned by the bus
	Stamp     float64 // simulation time in seconds, set by the publisher
	Payload   interface{}
}

// Handler consumes messages delivered to a subscription.
type Handler func(Message)

// Subscription identifies an active subscription; use Bus.Unsubscribe
// to cancel it.
type Subscription struct {
	topic string
	id    int
}

// Bus is the topic registry and router (the roscore equivalent).
// The zero value is not usable; call NewBus.
type Bus struct {
	mu     sync.Mutex
	topics map[string]*topicState
	taps   map[int]Handler
	nextID int
	// depth guards against unbounded publish-from-handler recursion.
	depth int
}

type topicState struct {
	seq  uint64
	subs map[int]Handler
	// stats
	published uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		topics: make(map[string]*topicState),
		taps:   make(map[int]Handler),
	}
}

// maxPublishDepth bounds handler->publish recursion.
const maxPublishDepth = 32

// Publisher is a handle bound to a topic and an (unverified) node name.
type Publisher struct {
	bus   *Bus
	topic string
	node  string
}

// Advertise returns a publisher for topic under the given node name.
// Names are not authenticated — this mirrors the ROS vulnerability the
// Security EDDI exists to detect.
func (b *Bus) Advertise(topic, node string) (*Publisher, error) {
	if topic == "" || node == "" {
		return nil, errors.New("rosbus: empty topic or node name")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensureTopic(topic)
	return &Publisher{bus: b, topic: topic, node: node}, nil
}

func (b *Bus) ensureTopic(topic string) *topicState {
	ts, ok := b.topics[topic]
	if !ok {
		ts = &topicState{subs: make(map[int]Handler)}
		b.topics[topic] = ts
	}
	return ts
}

// Publish sends payload on the publisher's topic at simulation time
// stamp. Handlers run synchronously before Publish returns.
func (p *Publisher) Publish(stamp float64, payload interface{}) error {
	return p.bus.publish(Message{
		Topic:     p.topic,
		Publisher: p.node,
		Stamp:     stamp,
		Payload:   payload,
	})
}

// Inject delivers a fully caller-controlled message, spoofed publisher
// name included. It is how attack scenarios model a compromised node.
func (b *Bus) Inject(msg Message) error {
	return b.publish(msg)
}

func (b *Bus) publish(msg Message) error {
	if msg.Topic == "" {
		return errors.New("rosbus: empty topic")
	}
	b.mu.Lock()
	if b.depth >= maxPublishDepth {
		b.mu.Unlock()
		return fmt.Errorf("rosbus: publish depth exceeds %d (handler loop?)", maxPublishDepth)
	}
	b.depth++
	ts := b.ensureTopic(msg.Topic)
	ts.seq++
	ts.published++
	msg.Seq = ts.seq
	// Snapshot handlers in deterministic id order.
	subIDs := make([]int, 0, len(ts.subs))
	for id := range ts.subs {
		subIDs = append(subIDs, id)
	}
	sort.Ints(subIDs)
	handlers := make([]Handler, 0, len(subIDs)+len(b.taps))
	for _, id := range subIDs {
		handlers = append(handlers, ts.subs[id])
	}
	tapIDs := make([]int, 0, len(b.taps))
	for id := range b.taps {
		tapIDs = append(tapIDs, id)
	}
	sort.Ints(tapIDs)
	for _, id := range tapIDs {
		handlers = append(handlers, b.taps[id])
	}
	b.mu.Unlock()

	for _, h := range handlers {
		h(msg)
	}

	b.mu.Lock()
	b.depth--
	b.mu.Unlock()
	return nil
}

// Subscribe registers handler for every future message on topic.
func (b *Bus) Subscribe(topic string, handler Handler) (Subscription, error) {
	if topic == "" {
		return Subscription{}, errors.New("rosbus: empty topic")
	}
	if handler == nil {
		return Subscription{}, errors.New("rosbus: nil handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ts := b.ensureTopic(topic)
	b.nextID++
	ts.subs[b.nextID] = handler
	return Subscription{topic: topic, id: b.nextID}, nil
}

// Unsubscribe cancels a subscription. Unknown subscriptions are a no-op.
func (b *Bus) Unsubscribe(s Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ts, ok := b.topics[s.topic]; ok {
		delete(ts.subs, s.id)
	}
}

// Tap registers handler for every message on every topic (the IDS
// vantage point). The returned cancel function removes the tap.
func (b *Bus) Tap(handler Handler) (cancel func(), err error) {
	if handler == nil {
		return nil, errors.New("rosbus: nil tap handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	id := b.nextID
	b.taps[id] = handler
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.taps, id)
	}, nil
}

// Topics returns the sorted list of known topics.
func (b *Bus) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.topics))
	for t := range b.topics {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// PublishedCount returns how many messages have been published on topic.
func (b *Bus) PublishedCount(topic string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ts, ok := b.topics[topic]; ok {
		return ts.published
	}
	return 0
}

// SubscriberCount returns the number of active subscriptions on topic.
func (b *Bus) SubscriberCount(topic string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ts, ok := b.topics[topic]; ok {
		return len(ts.subs)
	}
	return 0
}
