package rosbus

// Recorder captures bus traffic for later replay — the in-process
// equivalent of a rosbag. SAR operators record missions for debriefing
// and security teams replay captured traffic through the IDS for
// offline analysis; both workflows run on Recorder + Replay.

import (
	"errors"
	"sort"
	"sync"
)

// Recorder captures every message on a bus from the moment it is
// attached until Stop.
type Recorder struct {
	mu     sync.Mutex
	msgs   []Message
	cancel func()
}

// NewRecorder attaches a recorder to the bus.
func NewRecorder(bus *Bus) (*Recorder, error) {
	if bus == nil {
		return nil, errors.New("rosbus: nil bus")
	}
	r := &Recorder{}
	cancel, err := bus.Tap(func(m Message) {
		r.mu.Lock()
		r.msgs = append(r.msgs, m)
		r.mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	r.cancel = cancel
	return r, nil
}

// Stop detaches the recorder; the recording stays readable.
func (r *Recorder) Stop() {
	if r.cancel != nil {
		r.cancel()
		r.cancel = nil
	}
}

// Len returns the number of captured messages.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

// Messages returns a copy of the recording in capture order.
func (r *Recorder) Messages() []Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Message(nil), r.msgs...)
}

// Topics returns the sorted set of topics in the recording.
func (r *Recorder) Topics() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := map[string]bool{}
	for _, m := range r.msgs {
		set[m.Topic] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Replay publishes the recording into bus in capture order, preserving
// topics, publisher names and stamps. Pass a topic filter to replay a
// subset (nil replays everything). Returns the number of messages
// replayed.
func Replay(bus *Bus, recording []Message, topics map[string]bool) (int, error) {
	if bus == nil {
		return 0, errors.New("rosbus: nil bus")
	}
	n := 0
	for _, m := range recording {
		if topics != nil && !topics[m.Topic] {
			continue
		}
		if err := bus.Inject(Message{
			Topic:     m.Topic,
			Publisher: m.Publisher,
			Stamp:     m.Stamp,
			Payload:   m.Payload,
		}); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
