package rosbus

import (
	"testing"
)

func TestRecorderCaptures(t *testing.T) {
	bus := NewBus()
	rec, err := NewRecorder(bus)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := bus.Advertise("/a", "n1")
	pb, _ := bus.Advertise("/b", "n2")
	_ = pa.Publish(1, "x")
	_ = pb.Publish(2, "y")
	_ = pa.Publish(3, "z")
	if rec.Len() != 3 {
		t.Fatalf("captured %d", rec.Len())
	}
	msgs := rec.Messages()
	if msgs[0].Topic != "/a" || msgs[0].Payload != "x" || msgs[0].Stamp != 1 {
		t.Fatalf("first = %+v", msgs[0])
	}
	topics := rec.Topics()
	if len(topics) != 2 || topics[0] != "/a" || topics[1] != "/b" {
		t.Fatalf("topics = %v", topics)
	}
	rec.Stop()
	_ = pa.Publish(4, "after")
	if rec.Len() != 3 {
		t.Fatal("recorder captured after Stop")
	}
	rec.Stop() // idempotent
	if _, err := NewRecorder(nil); err == nil {
		t.Fatal("nil bus must fail")
	}
}

func TestReplayIntoFreshBus(t *testing.T) {
	src := NewBus()
	rec, _ := NewRecorder(src)
	p, _ := src.Advertise("/uav/u1/gps", "u1")
	for ts := 1.0; ts <= 5; ts++ {
		_ = p.Publish(ts, ts)
	}
	rec.Stop()

	dst := NewBus()
	var got []Message
	_, _ = dst.Subscribe("/uav/u1/gps", func(m Message) { got = append(got, m) })
	n, err := Replay(dst, rec.Messages(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || len(got) != 5 {
		t.Fatalf("replayed %d, delivered %d", n, len(got))
	}
	if got[0].Publisher != "u1" || got[0].Stamp != 1 || got[0].Payload != 1.0 {
		t.Fatalf("replayed message mangled: %+v", got[0])
	}
}

func TestReplayTopicFilter(t *testing.T) {
	src := NewBus()
	rec, _ := NewRecorder(src)
	pa, _ := src.Advertise("/a", "n")
	pb, _ := src.Advertise("/b", "n")
	_ = pa.Publish(1, nil)
	_ = pb.Publish(2, nil)
	dst := NewBus()
	count := 0
	_, _ = dst.Subscribe("/a", func(Message) { count++ })
	_, _ = dst.Subscribe("/b", func(Message) { count++ })
	n, err := Replay(dst, rec.Messages(), map[string]bool{"/a": true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || count != 1 {
		t.Fatalf("n=%d count=%d", n, count)
	}
	if _, err := Replay(nil, rec.Messages(), nil); err == nil {
		t.Fatal("nil bus must fail")
	}
}
