package rosbus

import (
	"errors"
	"sync"
	"testing"
)

func TestPublishSubscribe(t *testing.T) {
	b := NewBus()
	var got []Message
	if _, err := b.Subscribe("/uav1/gps", func(m Message) { got = append(got, m) }); err != nil {
		t.Fatal(err)
	}
	pub, err := b.Advertise("/uav1/gps", "uav1")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(1.5, "fix-a"); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(2.0, "fix-b"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(got))
	}
	if got[0].Payload != "fix-a" || got[0].Stamp != 1.5 || got[0].Publisher != "uav1" {
		t.Fatalf("first message wrong: %+v", got[0])
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("sequence numbers wrong: %d, %d", got[0].Seq, got[1].Seq)
	}
}

func TestTopicIsolation(t *testing.T) {
	b := NewBus()
	var aCount, bCount int
	_, _ = b.Subscribe("/a", func(Message) { aCount++ })
	_, _ = b.Subscribe("/b", func(Message) { bCount++ })
	pa, _ := b.Advertise("/a", "n")
	_ = pa.Publish(0, nil)
	if aCount != 1 || bCount != 0 {
		t.Fatalf("isolation broken: a=%d b=%d", aCount, bCount)
	}
}

func TestMultipleSubscribersOrdered(t *testing.T) {
	b := NewBus()
	var order []int
	for i := 1; i <= 3; i++ {
		i := i
		_, _ = b.Subscribe("/t", func(Message) { order = append(order, i) })
	}
	p, _ := b.Advertise("/t", "n")
	_ = p.Publish(0, nil)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("delivery order = %v, want [1 2 3]", order)
	}
}

func TestUnsubscribe(t *testing.T) {
	b := NewBus()
	count := 0
	sub, _ := b.Subscribe("/t", func(Message) { count++ })
	p, _ := b.Advertise("/t", "n")
	_ = p.Publish(0, nil)
	b.Unsubscribe(sub)
	_ = p.Publish(0, nil)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	// Unsubscribing twice is harmless.
	b.Unsubscribe(sub)
}

func TestInjectSpoofedPublisher(t *testing.T) {
	b := NewBus()
	var got Message
	_, _ = b.Subscribe("/uav1/gps", func(m Message) { got = m })
	err := b.Inject(Message{Topic: "/uav1/gps", Publisher: "uav1", Stamp: 3, Payload: "spoof"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Publisher != "uav1" || got.Payload != "spoof" {
		t.Fatalf("spoofed message not delivered verbatim: %+v", got)
	}
}

func TestTapSeesAllTopics(t *testing.T) {
	b := NewBus()
	var seen []string
	cancel, err := b.Tap(func(m Message) { seen = append(seen, m.Topic) })
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := b.Advertise("/a", "n")
	pb, _ := b.Advertise("/b", "n")
	_ = pa.Publish(0, nil)
	_ = pb.Publish(0, nil)
	if len(seen) != 2 || seen[0] != "/a" || seen[1] != "/b" {
		t.Fatalf("tap saw %v", seen)
	}
	cancel()
	_ = pa.Publish(0, nil)
	if len(seen) != 2 {
		t.Fatal("cancelled tap still receiving")
	}
}

func TestTapRunsAfterSubscribers(t *testing.T) {
	b := NewBus()
	var order []string
	_, _ = b.Tap(func(Message) { order = append(order, "tap") })
	_, _ = b.Subscribe("/t", func(Message) { order = append(order, "sub") })
	p, _ := b.Advertise("/t", "n")
	_ = p.Publish(0, nil)
	if len(order) != 2 || order[0] != "sub" || order[1] != "tap" {
		t.Fatalf("order = %v, want [sub tap]", order)
	}
}

func TestValidation(t *testing.T) {
	b := NewBus()
	if _, err := b.Advertise("", "n"); err == nil {
		t.Error("empty topic must fail")
	}
	if _, err := b.Advertise("/t", ""); err == nil {
		t.Error("empty node must fail")
	}
	if _, err := b.Subscribe("", func(Message) {}); err == nil {
		t.Error("empty topic must fail")
	}
	if _, err := b.Subscribe("/t", nil); err == nil {
		t.Error("nil handler must fail")
	}
	if _, err := b.Tap(nil); err == nil {
		t.Error("nil tap must fail")
	}
	if err := b.Inject(Message{}); err == nil {
		t.Error("empty topic inject must fail")
	}
}

func TestPublishFromHandler(t *testing.T) {
	b := NewBus()
	relay, _ := b.Advertise("/out", "relay")
	var out []string
	_, _ = b.Subscribe("/in", func(m Message) {
		_ = relay.Publish(m.Stamp, "relayed:"+m.Payload.(string))
	})
	_, _ = b.Subscribe("/out", func(m Message) { out = append(out, m.Payload.(string)) })
	in, _ := b.Advertise("/in", "src")
	if err := in.Publish(1, "x"); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != "relayed:x" {
		t.Fatalf("relay failed: %v", out)
	}
}

func TestPublishLoopDetected(t *testing.T) {
	b := NewBus()
	p, _ := b.Advertise("/loop", "n")
	sawErr := false
	_, _ = b.Subscribe("/loop", func(m Message) {
		if err := p.Publish(m.Stamp+1, nil); err != nil {
			sawErr = true
			if !errors.Is(err, ErrDepthExceeded) {
				t.Errorf("loop error = %v, want ErrDepthExceeded", err)
			}
		}
	})
	_ = p.Publish(0, nil)
	if !sawErr {
		t.Fatal("infinite publish loop must be cut off with an error")
	}
	if got := b.Stats().DepthExceeded; got != 1 {
		t.Fatalf("Stats().DepthExceeded = %d, want 1", got)
	}
}

func TestDeliverLoopDetected(t *testing.T) {
	b := NewBus()
	sawErr := false
	_, _ = b.Subscribe("/loop", func(m Message) {
		if err := b.Deliver(m); err != nil {
			sawErr = true
			if !errors.Is(err, ErrDepthExceeded) {
				t.Errorf("loop error = %v, want ErrDepthExceeded", err)
			}
		}
	})
	if err := b.Deliver(Message{Topic: "/loop"}); err != nil {
		t.Fatal(err)
	}
	if !sawErr {
		t.Fatal("infinite Deliver loop must be cut off with an error")
	}
	if b.Stats().DepthExceeded == 0 {
		t.Fatal("DepthExceeded not counted for Deliver recursion")
	}
}

func TestFilterConsumesAndRedelivers(t *testing.T) {
	b := NewBus()
	var got []Message
	_, _ = b.Subscribe("/t", func(m Message) { got = append(got, m) })
	var held []Message
	b.SetFilter(func(m Message) (bool, error) {
		if m.Payload == "hold" {
			held = append(held, m)
			return false, nil
		}
		return true, nil
	})
	p, _ := b.Advertise("/t", "n")
	_ = p.Publish(0, "hold")
	if err := p.Publish(1, "pass"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Payload != "pass" {
		t.Fatalf("filter leak: got %v", got)
	}
	// Re-injection bypasses the filter and keeps the original seq.
	for _, m := range held {
		if err := b.Deliver(m); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || got[1].Payload != "hold" || got[1].Seq != 1 {
		t.Fatalf("redelivery wrong: %+v", got)
	}
	st := b.Stats()
	if st.Published != 2 || st.Delivered != 2 || st.FilterConsumed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Removing the filter restores plain delivery.
	b.SetFilter(nil)
	_ = p.Publish(2, "hold")
	if len(got) != 3 {
		t.Fatalf("filter still active after SetFilter(nil): %v", got)
	}
}

func TestFilterErrorReachesPublisher(t *testing.T) {
	b := NewBus()
	boom := errors.New("link rejected")
	b.SetFilter(func(Message) (bool, error) { return false, boom })
	delivered := 0
	_, _ = b.Subscribe("/t", func(Message) { delivered++ })
	p, _ := b.Advertise("/t", "n")
	if err := p.Publish(0, nil); !errors.Is(err, boom) {
		t.Fatalf("publish error = %v, want %v", err, boom)
	}
	if delivered != 0 {
		t.Fatal("rejected message must not be delivered")
	}
}

func TestStats(t *testing.T) {
	b := NewBus()
	p, _ := b.Advertise("/t", "n")
	_ = p.Publish(0, nil)
	_ = p.Publish(0, nil)
	if got := b.PublishedCount("/t"); got != 2 {
		t.Fatalf("PublishedCount = %d", got)
	}
	if got := b.PublishedCount("/none"); got != 0 {
		t.Fatalf("unknown topic count = %d", got)
	}
	_, _ = b.Subscribe("/t", func(Message) {})
	if got := b.SubscriberCount("/t"); got != 1 {
		t.Fatalf("SubscriberCount = %d", got)
	}
	if got := b.SubscriberCount("/none"); got != 0 {
		t.Fatalf("unknown topic subs = %d", got)
	}
	topics := b.Topics()
	if len(topics) != 1 || topics[0] != "/t" {
		t.Fatalf("Topics = %v", topics)
	}
}

func TestConcurrentPublish(t *testing.T) {
	b := NewBus()
	var mu sync.Mutex
	count := 0
	_, _ = b.Subscribe("/t", func(Message) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, _ := b.Advertise("/t", "n")
			for j := 0; j < 100; j++ {
				_ = p.Publish(0, nil)
			}
		}()
	}
	wg.Wait()
	if count != 800 {
		t.Fatalf("count = %d, want 800", count)
	}
	if b.PublishedCount("/t") != 800 {
		t.Fatalf("PublishedCount = %d, want 800", b.PublishedCount("/t"))
	}
}

func BenchmarkPublishOneSubscriber(b *testing.B) {
	bus := NewBus()
	_, _ = bus.Subscribe("/t", func(Message) {})
	p, _ := bus.Advertise("/t", "n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Publish(0, nil); err != nil {
			b.Fatal(err)
		}
	}
}
