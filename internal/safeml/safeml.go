// Package safeml implements the SafeML runtime ML-safety monitor
// (paper §III-A2; Aslansefat et al., IMBSA 2020). It maintains a
// sliding window of the feature vectors the perception model is seeing
// at runtime and compares their distribution, per feature, against the
// training reference set using the statistical distance measures of
// package statdist. The greater the dissimilarity, the lower the
// confidence in the ML outcome; confidence bands map to responses that
// ConSerts orchestrates (accept, caution, reject/minimal-risk
// manoeuvre).
package safeml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sesame/internal/statdist"
)

// Action is the response band suggested by the monitor.
type Action int

// Actions in increasing severity.
const (
	ActionAccept Action = iota
	ActionCaution
	ActionReject
)

func (a Action) String() string {
	switch a {
	case ActionAccept:
		return "accept"
	case ActionCaution:
		return "caution"
	case ActionReject:
		return "reject"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Config parameterizes a Monitor.
type Config struct {
	// Measure is the statistical distance; defaults to
	// Kolmogorov-Smirnov, SafeML's canonical choice.
	Measure statdist.Measure
	// WindowSize is how many runtime samples are compared at a time.
	WindowSize int
	// UncertaintyFloor and UncertaintyGain map the mean per-feature
	// distance d to uncertainty = floor + gain*d (clamped to [0,1]).
	// The defaults are calibrated to the paper's §V-B operating
	// points: ~0.75 uncertainty in-distribution, >0.9 at high-altitude
	// drift.
	UncertaintyFloor float64
	UncertaintyGain  float64
	// CautionAt / RejectAt are the uncertainty thresholds for the
	// caution and reject bands (paper threshold: 0.9 for reject).
	CautionAt float64
	RejectAt  float64
}

// DefaultConfig returns the calibration used in the experiments.
func DefaultConfig() Config {
	return Config{
		Measure:          statdist.KolmogorovSmirnov{},
		WindowSize:       40,
		UncertaintyFloor: 0.68,
		UncertaintyGain:  0.55,
		CautionAt:        0.82,
		RejectAt:         0.9,
	}
}

// Report is one evaluation of the runtime window.
type Report struct {
	// Distance is the mean per-feature statistical distance between
	// the window and the reference.
	Distance float64
	// PerFeature are the individual feature distances. The slice is
	// owned by the Monitor and overwritten by the next Evaluate; copy
	// it if you need it to survive.
	PerFeature []float64
	// Uncertainty in [0,1]; Confidence = 1 - Uncertainty.
	Uncertainty float64
	Confidence  float64
	Action      Action
	// Samples is how many runtime samples the window held.
	Samples int
}

// Monitor is the runtime SafeML instance for one perception model.
//
// The steady-state Evaluate path is incremental and allocation-free:
// the reference is column-sorted once at NewMonitor, the runtime
// window maintains one sorted column per feature by binary-search
// insert/remove on Push, and sorted-capable measures (every measure in
// statdist) compare the two sorted columns directly. The reported
// distances are bit-identical to sorting the raw window on every call.
type Monitor struct {
	cfg Config
	ref [][]float64
	// refSorted[f] is the reference's feature-f column, sorted once.
	refSorted [][]float64

	// window is the ring buffer of raw feature rows (rows preallocated,
	// reused in place).
	window [][]float64
	next   int
	filled bool
	count  int
	// winSorted[f] is the incrementally maintained sorted column of the
	// current window's feature f. NaN values are excluded (they have no
	// order) and tracked by nanCount instead.
	winSorted [][]float64
	nanCount  int

	// sorted is cfg.Measure's allocation-free fast path (nil if the
	// measure does not implement statdist.SortedMeasure).
	sorted statdist.SortedMeasure
	// perFeature is the reusable Report.PerFeature buffer.
	perFeature []float64
}

// NewMonitor builds a monitor around the training reference feature
// matrix (rows = samples, columns = features).
func NewMonitor(reference [][]float64, cfg Config) (*Monitor, error) {
	if len(reference) == 0 {
		return nil, errors.New("safeml: empty reference set")
	}
	width := len(reference[0])
	if width == 0 {
		return nil, errors.New("safeml: reference has zero features")
	}
	for i, row := range reference {
		if len(row) != width {
			return nil, fmt.Errorf("safeml: reference row %d has %d features, want %d", i, len(row), width)
		}
	}
	if cfg.Measure == nil {
		cfg.Measure = statdist.KolmogorovSmirnov{}
	}
	if cfg.WindowSize <= 1 {
		return nil, fmt.Errorf("safeml: window size %d too small", cfg.WindowSize)
	}
	if cfg.RejectAt <= cfg.CautionAt {
		return nil, errors.New("safeml: require CautionAt < RejectAt")
	}
	ref := make([][]float64, len(reference))
	for i, row := range reference {
		ref[i] = append([]float64(nil), row...)
	}
	m := &Monitor{cfg: cfg, ref: ref, window: make([][]float64, cfg.WindowSize)}
	for i := range m.window {
		m.window[i] = make([]float64, width)
	}
	m.refSorted = make([][]float64, width)
	m.winSorted = make([][]float64, width)
	for f := 0; f < width; f++ {
		col := make([]float64, len(ref))
		for i, row := range ref {
			col[i] = row[f]
		}
		sort.Float64s(col)
		m.refSorted[f] = col
		m.winSorted[f] = make([]float64, 0, cfg.WindowSize)
	}
	m.sorted, _ = cfg.Measure.(statdist.SortedMeasure)
	m.perFeature = make([]float64, width)
	return m, nil
}

// FeatureDim returns the expected feature vector width.
func (m *Monitor) FeatureDim() int { return len(m.ref[0]) }

// Ready reports whether the window has filled at least once.
func (m *Monitor) Ready() bool { return m.filled }

// Push adds one runtime feature vector to the sliding window,
// updating the per-feature sorted columns incrementally. Amortized it
// performs no allocation.
func (m *Monitor) Push(features []float64) error {
	if len(features) != m.FeatureDim() {
		return fmt.Errorf("safeml: got %d features, want %d", len(features), m.FeatureDim())
	}
	row := m.window[m.next]
	if m.count == len(m.window) {
		// The ring is full: the slot being overwritten holds the oldest
		// sample, whose values leave the sorted columns.
		for f, old := range row {
			m.removeSorted(f, old)
		}
	} else {
		m.count++
	}
	copy(row, features)
	for f, v := range features {
		m.insertSorted(f, v)
	}
	m.next++
	if m.next == len(m.window) {
		m.next = 0
		m.filled = true
	}
	return nil
}

// insertSorted adds v to feature f's sorted window column.
func (m *Monitor) insertSorted(f int, v float64) {
	if math.IsNaN(v) {
		// NaN has no order; track it separately and keep the column
		// well-sorted. Evaluate falls back to the raw path (which
		// reports the same error the unoptimized monitor did).
		m.nanCount++
		return
	}
	col := m.winSorted[f]
	i := sort.SearchFloat64s(col, v)
	col = col[:len(col)+1]
	copy(col[i+1:], col[i:])
	col[i] = v
	m.winSorted[f] = col
}

// removeSorted drops one instance of v from feature f's sorted column.
func (m *Monitor) removeSorted(f int, v float64) {
	if math.IsNaN(v) {
		m.nanCount--
		return
	}
	col := m.winSorted[f]
	i := sort.SearchFloat64s(col, v)
	copy(col[i:], col[i+1:])
	m.winSorted[f] = col[:len(col)-1]
}

// Reset clears the runtime window (e.g. after a commanded altitude
// change invalidates the old samples).
func (m *Monitor) Reset() {
	m.next = 0
	m.filled = false
	m.count = 0
	m.nanCount = 0
	for f := range m.winSorted {
		m.winSorted[f] = m.winSorted[f][:0]
	}
}

// Evaluate compares the current window against the reference. It
// requires a full window so that the statistics are comparable across
// evaluations.
func (m *Monitor) Evaluate() (Report, error) {
	if !m.filled {
		return Report{}, fmt.Errorf("safeml: window not yet full (%d/%d)", m.next, len(m.window))
	}
	per, mean, err := m.featureDistances()
	if err != nil {
		return Report{}, err
	}
	u := m.cfg.UncertaintyFloor + m.cfg.UncertaintyGain*mean
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	r := Report{
		Distance:    mean,
		PerFeature:  per,
		Uncertainty: u,
		Confidence:  1 - u,
		Samples:     len(m.window),
	}
	switch {
	case u >= m.cfg.RejectAt:
		r.Action = ActionReject
	case u >= m.cfg.CautionAt:
		r.Action = ActionCaution
	default:
		r.Action = ActionAccept
	}
	return r, nil
}

// featureDistances computes the per-feature distances of the full
// window against the reference. The steady-state path compares the
// pre-sorted reference columns against the incrementally maintained
// sorted window columns without sorting or allocating; the result is
// bit-identical to statdist.FeatureDistance over the raw rows, which
// remains the fallback for non-sorted measures and NaN-polluted
// windows.
func (m *Monitor) featureDistances() ([]float64, float64, error) {
	if m.sorted == nil || m.nanCount > 0 {
		return statdist.FeatureDistance(m.cfg.Measure, m.ref, m.window)
	}
	var mean float64
	for f := range m.perFeature {
		d, err := m.sorted.DistanceSorted(m.refSorted[f], m.winSorted[f])
		if err != nil {
			return nil, 0, err
		}
		m.perFeature[f] = d
		mean += d
	}
	mean /= float64(len(m.perFeature))
	return m.perFeature, mean, nil
}

// EvaluateWithPValue augments Evaluate with a per-feature permutation
// test of the null hypothesis "window and reference come from the same
// distribution": it returns the ordinary report plus the minimum
// per-feature p-value (Bonferroni-comparable across features). Small
// p-values confirm the drift is statistically significant rather than
// a small-window artefact; the original SafeML workflow uses this to
// set the sample size.
func (m *Monitor) EvaluateWithPValue(rounds int, rng *rand.Rand) (Report, float64, error) {
	rep, err := m.Evaluate()
	if err != nil {
		return Report{}, 0, err
	}
	if rounds <= 0 {
		return Report{}, 0, errors.New("safeml: rounds must be positive")
	}
	if rng == nil {
		return Report{}, 0, errors.New("safeml: nil rng")
	}
	minP := 1.0
	refCol := make([]float64, 0, len(m.ref))
	obsCol := make([]float64, 0, len(m.window))
	for f := 0; f < m.FeatureDim(); f++ {
		refCol = refCol[:0]
		obsCol = obsCol[:0]
		for _, row := range m.ref {
			refCol = append(refCol, row[f])
		}
		for _, row := range m.window {
			obsCol = append(obsCol, row[f])
		}
		p, _, err := statdist.PermutationPValue(m.cfg.Measure, refCol, obsCol, rounds, rng)
		if err != nil {
			return Report{}, 0, err
		}
		if p < minP {
			minP = p
		}
	}
	return rep, minP, nil
}
