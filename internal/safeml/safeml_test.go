package safeml

import (
	"math/rand"
	"testing"

	"sesame/internal/detection"
	"sesame/internal/geo"
	"sesame/internal/statdist"
)

var (
	detectionOrigin = geo.LatLng{Lat: 35.1856, Lng: 33.3823}
	detectionArea   = geo.Polygon{
		detectionOrigin,
		geo.Destination(detectionOrigin, 90, 100),
		geo.Destination(geo.Destination(detectionOrigin, 90, 100), 0, 100),
		geo.Destination(detectionOrigin, 0, 100),
	}
)

func reference(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(j) + rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

func shifted(rng *rand.Rand, n, dim int, shift float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(j) + shift + rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

func fillAndEval(t *testing.T, m *Monitor, rows [][]float64) Report {
	t.Helper()
	for _, row := range rows {
		if err := m.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	r, err := m.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewMonitorValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewMonitor(nil, cfg); err == nil {
		t.Error("empty reference must fail")
	}
	if _, err := NewMonitor([][]float64{{}}, cfg); err == nil {
		t.Error("zero features must fail")
	}
	if _, err := NewMonitor([][]float64{{1, 2}, {1}}, cfg); err == nil {
		t.Error("ragged reference must fail")
	}
	bad := cfg
	bad.WindowSize = 1
	if _, err := NewMonitor([][]float64{{1, 2}}, bad); err == nil {
		t.Error("window 1 must fail")
	}
	bad = cfg
	bad.RejectAt = bad.CautionAt
	if _, err := NewMonitor([][]float64{{1, 2}}, bad); err == nil {
		t.Error("inverted thresholds must fail")
	}
}

func TestInDistributionAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := reference(rng, 200, 4)
	m, err := NewMonitor(ref, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := fillAndEval(t, m, shifted(rng, 40, 4, 0))
	if r.Action != ActionAccept {
		t.Fatalf("in-distribution action = %v (u=%v)", r.Action, r.Uncertainty)
	}
	if r.Uncertainty < 0.65 || r.Uncertainty > 0.82 {
		t.Fatalf("in-distribution uncertainty = %v, want ~0.75 (paper §V-B)", r.Uncertainty)
	}
	if r.Confidence != 1-r.Uncertainty {
		t.Fatal("confidence must complement uncertainty")
	}
	if len(r.PerFeature) != 4 || r.Samples != 40 {
		t.Fatalf("report shape wrong: %+v", r)
	}
}

func TestShiftedRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := reference(rng, 200, 4)
	m, _ := NewMonitor(ref, DefaultConfig())
	r := fillAndEval(t, m, shifted(rng, 40, 4, 2.5))
	if r.Action != ActionReject {
		t.Fatalf("shifted action = %v (u=%v), want reject", r.Action, r.Uncertainty)
	}
	if r.Uncertainty < 0.9 {
		t.Fatalf("shifted uncertainty = %v, want >= 0.9", r.Uncertainty)
	}
}

func TestModerateShiftCaution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := reference(rng, 300, 4)
	m, _ := NewMonitor(ref, DefaultConfig())
	r := fillAndEval(t, m, shifted(rng, 40, 4, 0.8))
	if r.Action == ActionAccept {
		t.Fatalf("0.8-sigma shift accepted (u=%v)", r.Uncertainty)
	}
	if r.Action == ActionReject && r.Uncertainty < 0.9 {
		t.Fatalf("inconsistent report: %+v", r)
	}
}

func TestUncertaintyMonotoneInShift(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := reference(rng, 300, 4)
	prev := -1.0
	for _, shift := range []float64{0, 1, 2, 4} {
		m, _ := NewMonitor(ref, DefaultConfig())
		r := fillAndEval(t, m, shifted(rng, 40, 4, shift))
		if r.Uncertainty < prev {
			t.Fatalf("uncertainty not monotone at shift %v: %v < %v", shift, r.Uncertainty, prev)
		}
		prev = r.Uncertainty
	}
}

func TestWindowNotFull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := NewMonitor(reference(rng, 50, 3), DefaultConfig())
	if m.Ready() {
		t.Fatal("fresh monitor must not be ready")
	}
	if _, err := m.Evaluate(); err == nil {
		t.Fatal("evaluation before window fills must fail")
	}
	if err := m.Push([]float64{1, 2}); err == nil {
		t.Fatal("wrong width must fail")
	}
}

func TestSlidingWindowForgets(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref := reference(rng, 200, 3)
	m, _ := NewMonitor(ref, DefaultConfig())
	// Fill with shifted data -> reject.
	fillAndEval(t, m, shifted(rng, 40, 3, 3))
	// Overwrite entirely with in-distribution data -> accept again.
	r := fillAndEval(t, m, shifted(rng, 40, 3, 0))
	if r.Action != ActionAccept {
		t.Fatalf("window did not slide: %v (u=%v)", r.Action, r.Uncertainty)
	}
}

func TestReset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, _ := NewMonitor(reference(rng, 100, 3), DefaultConfig())
	fillAndEval(t, m, shifted(rng, 40, 3, 0))
	m.Reset()
	if m.Ready() {
		t.Fatal("reset monitor must not be ready")
	}
	if _, err := m.Evaluate(); err == nil {
		t.Fatal("evaluation after reset must fail")
	}
}

func TestAllMeasuresUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := reference(rng, 150, 3)
	for _, meas := range statdist.All() {
		cfg := DefaultConfig()
		cfg.Measure = meas
		m, err := NewMonitor(ref, cfg)
		if err != nil {
			t.Fatalf("%s: %v", meas.Name(), err)
		}
		in := fillAndEval(t, m, shifted(rng, 40, 3, 0))
		m2, _ := NewMonitor(ref, cfg)
		out := fillAndEval(t, m2, shifted(rng, 40, 3, 3))
		if out.Distance <= in.Distance {
			t.Errorf("%s: shifted distance (%v) not above in-dist (%v)", meas.Name(), out.Distance, in.Distance)
		}
	}
}

func TestDetectorIntegrationAltitudeDrift(t *testing.T) {
	// End-to-end with the detection substrate: reference features at
	// survey altitude accept; 60 m features reject. This is the §V-B
	// trigger condition.
	rng := rand.New(rand.NewSource(9))
	det, err := detection.NewDetector(rng)
	if err != nil {
		t.Fatal(err)
	}
	ref := det.ReferenceFeatures(300)
	m, err := NewMonitor(ref, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lowFrames := det.ReferenceFeatures(40)
	low := fillAndEval(t, m, lowFrames)
	if low.Action != ActionAccept {
		t.Fatalf("reference-altitude frames: %v (u=%v)", low.Action, low.Uncertainty)
	}
	if low.Uncertainty < 0.65 || low.Uncertainty > 0.85 {
		t.Fatalf("reference uncertainty = %v, want ~0.75", low.Uncertainty)
	}
	// Regenerate features at 60 m via a throwaway capture.
	m.Reset()
	highRows := make([][]float64, 40)
	sceneRng := rand.New(rand.NewSource(10))
	det2, _ := detection.NewDetector(sceneRng)
	for i := range highRows {
		// features are private to Capture; use ReferenceFeatures shape
		// via a high-altitude capture of an empty scene.
		f, err := det2.Capture("u1", float64(i), detectionOrigin, detection.Conditions{AltitudeM: 60, Visibility: 1}, &detection.Scene{Area: detectionArea})
		if err != nil {
			t.Fatal(err)
		}
		highRows[i] = f.Features
	}
	high := fillAndEval(t, m, highRows)
	if high.Uncertainty < 0.9 {
		t.Fatalf("60 m uncertainty = %v, want > 0.9 (paper §V-B)", high.Uncertainty)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	ref := reference(rng, 200, 6)
	m, _ := NewMonitor(ref, DefaultConfig())
	for _, row := range shifted(rng, 40, 6, 1) {
		_ = m.Push(row)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEvaluateWithPValue(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ref := reference(rng, 150, 3)
	m, _ := NewMonitor(ref, DefaultConfig())
	fillAndEval(t, m, shifted(rng, 40, 3, 0))
	_, pNull, err := m.EvaluateWithPValue(100, rng)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := NewMonitor(ref, DefaultConfig())
	fillAndEval(t, m2, shifted(rng, 40, 3, 3))
	rep, pShift, err := m2.EvaluateWithPValue(100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pShift >= 0.05 {
		t.Fatalf("shifted p-value = %v, want significant", pShift)
	}
	if pNull <= pShift {
		t.Fatalf("null p (%v) must exceed shifted p (%v)", pNull, pShift)
	}
	if rep.Action != ActionReject {
		t.Fatalf("shifted report action = %v", rep.Action)
	}
}

func TestEvaluateWithPValueValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m, _ := NewMonitor(reference(rng, 50, 2), DefaultConfig())
	if _, _, err := m.EvaluateWithPValue(100, rng); err == nil {
		t.Fatal("unfilled window must fail")
	}
	fillAndEval(t, m, shifted(rng, 40, 2, 0))
	if _, _, err := m.EvaluateWithPValue(0, rng); err == nil {
		t.Fatal("rounds=0 must fail")
	}
	if _, _, err := m.EvaluateWithPValue(10, nil); err == nil {
		t.Fatal("nil rng must fail")
	}
}
