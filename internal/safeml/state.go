package safeml

import "fmt"

// State is the monitor's serializable sliding-window state for the
// flight recorder (internal/flightrec). Only the live rows are kept,
// oldest first; Restore replays them through Push, which rebuilds the
// ring indexes, the incrementally sorted columns and the NaN counter
// with identical future behavior (same eviction order, same sorted
// multisets).
type State struct {
	// Rows are the live window rows, oldest first.
	Rows [][]float64 `json:"rows"`
	// Filled reports whether the window has wrapped at least once.
	// With Rows it pins (next, filled, count) exactly: a filled window
	// always carries WindowSize rows.
	Filled bool `json:"filled"`
}

// State exports the live window rows in age order.
func (m *Monitor) State() State {
	s := State{Filled: m.filled}
	if !m.filled {
		// Never wrapped since the last Reset: rows 0..count-1 are in
		// insertion order.
		for i := 0; i < m.count; i++ {
			s.Rows = append(s.Rows, append([]float64(nil), m.window[i]...))
		}
		return s
	}
	// Wrapped: the oldest row sits at next.
	for i := 0; i < len(m.window); i++ {
		row := m.window[(m.next+i)%len(m.window)]
		s.Rows = append(s.Rows, append([]float64(nil), row...))
	}
	return s
}

// Restore rebuilds the window by replaying the rows through Push. The
// monitor must have the same window size and feature width as the one
// the state was exported from.
func (m *Monitor) Restore(s State) error {
	if len(s.Rows) > len(m.window) {
		return fmt.Errorf("safeml: state has %d rows, window holds %d", len(s.Rows), len(m.window))
	}
	if s.Filled && len(s.Rows) != len(m.window) {
		return fmt.Errorf("safeml: filled state must carry %d rows, got %d", len(m.window), len(s.Rows))
	}
	m.Reset()
	for i, row := range s.Rows {
		if err := m.Push(row); err != nil {
			return fmt.Errorf("safeml: restore row %d: %w", i, err)
		}
	}
	return nil
}
