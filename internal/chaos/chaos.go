// Package chaos is the deterministic fault-injection harness: a
// declarative, seeded plan of infrastructure faults (monitor
// panics/errors/latency spikes, bus and broker publish failures,
// database brownouts, recorder write/fsync/disk-full errors, checkpoint
// corruption, campaign worker failures) injected through the small
// seams the rest of the system already exposes — Config.ExtraMonitors,
// rosbus/mqttlite WrapFilter, Database.SetFaultHook, flightrec.Options
// and campaign.Options.
//
// Every injection decision is a pure function of (plan seed, fault
// rule, target key, floor of the simulation time): no mutable state is
// kept between decisions. That makes chaos-on runs bit-reproducible by
// (seed, plan) and invariant to worker count, cell layout and
// checkpoint/resume — the same determinism contract the rest of the
// platform is gated on.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"

	"sesame/internal/eddi"
	"sesame/internal/flightrec"
	"sesame/internal/mqttlite"
	"sesame/internal/rosbus"
	"sesame/internal/simclock"
)

// Window bounds a fault rule in simulation time. ToS == 0 leaves the
// window open-ended.
type Window struct {
	FromS float64 `json:"from_s,omitempty"`
	ToS   float64 `json:"to_s,omitempty"`
}

func (w Window) contains(t float64) bool {
	if t < w.FromS {
		return false
	}
	return w.ToS <= 0 || t < w.ToS
}

func (w Window) validate(what string) error {
	if w.FromS < 0 || math.IsNaN(w.FromS) || math.IsInf(w.FromS, 0) {
		return fmt.Errorf("chaos: %s: window from_s %v invalid", what, w.FromS)
	}
	if math.IsNaN(w.ToS) || math.IsInf(w.ToS, 0) || (w.ToS != 0 && w.ToS <= w.FromS) {
		return fmt.Errorf("chaos: %s: window to_s %v invalid (must be 0 or > from_s)", what, w.ToS)
	}
	return nil
}

// Monitor fault modes.
const (
	ModePanic   = "panic"
	ModeError   = "error"
	ModeLatency = "latency"
)

// MonitorFault injects failures into a UAV's EDDI monitor chain via a
// chaos monitor appended through Config.ExtraMonitors.
type MonitorFault struct {
	// UAV restricts the fault to one vehicle; empty hits every UAV.
	UAV string `json:"uav,omitempty"`
	// Mode is "panic", "error" or "latency".
	Mode string `json:"mode"`
	// Window bounds when the fault may fire.
	Window Window `json:"window,omitempty"`
	// Prob is the per-second firing probability in [0,1].
	Prob float64 `json:"prob"`
	// LatencyUS is the busy-spin duration for "latency" mode, in
	// microseconds of wall time (sim state is never touched, so digests
	// are unchanged; the spike only stresses the concurrent observe
	// phase).
	LatencyUS int `json:"latency_us,omitempty"`
}

// PublishFault fails rosbus or mqttlite publishes.
type PublishFault struct {
	// Match is a topic prefix; empty matches every topic.
	Match  string  `json:"match,omitempty"`
	Window Window  `json:"window,omitempty"`
	Prob   float64 `json:"prob"`
}

// Brownout fails mission-database writes with the platform's
// retryable unavailability error.
type Brownout struct {
	// UAV restricts the brownout to one vehicle's writes; empty hits all.
	UAV    string  `json:"uav,omitempty"`
	Window Window  `json:"window,omitempty"`
	Prob   float64 `json:"prob"`
}

// Recorder fault operations.
const (
	OpWrite           = "write"
	OpSync            = "sync"
	OpCreate          = "create"
	OpCorruptSnapshot = "corrupt-snapshot"
)

// RecorderFault injects flight-recorder failures: failed segment
// writes/fsyncs ("write", "sync"), disk-full segment creation
// ("create") or corrupted checkpoint payloads ("corrupt-snapshot").
type RecorderFault struct {
	// Op is "write", "sync", "create" or "corrupt-snapshot".
	Op     string  `json:"op"`
	Window Window  `json:"window,omitempty"`
	Prob   float64 `json:"prob"`
}

// WorkerFault fails campaign run executions. Attempts > 0 fails the
// first Attempts attempts of each matched run deterministically (then
// lets it succeed); Attempts == 0 draws per (run, attempt) with Prob.
type WorkerFault struct {
	Prob float64 `json:"prob,omitempty"`
	// Indices restricts the fault to specific run indices; empty hits
	// every run.
	Indices []int `json:"indices,omitempty"`
	// Attempts fails that many leading attempts per matched run.
	Attempts int `json:"attempts,omitempty"`
}

// Plan is the declarative chaos schedule. The zero plan injects
// nothing; a Layer built from it is inert.
type Plan struct {
	Name     string          `json:"name,omitempty"`
	Seed     int64           `json:"seed"`
	Monitors []MonitorFault  `json:"monitors,omitempty"`
	Bus      []PublishFault  `json:"bus,omitempty"`
	Broker   []PublishFault  `json:"broker,omitempty"`
	DB       []Brownout      `json:"db,omitempty"`
	Recorder []RecorderFault `json:"recorder,omitempty"`
	Workers  []WorkerFault   `json:"workers,omitempty"`
}

// LoadPlan parses and validates a JSON chaos plan. Unknown fields are
// rejected (the same strictness as campaign spec parsing): a typo in a
// fault schedule must fail loudly, not silently disarm the fault.
func LoadPlan(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("chaos: parsing plan: %w", err)
	}
	// Trailing garbage after the JSON document is an error too.
	if dec.More() {
		return Plan{}, fmt.Errorf("chaos: parsing plan: trailing data after plan object")
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

func validProb(p float64) bool {
	return !math.IsNaN(p) && p >= 0 && p <= 1
}

// Validate checks every fault rule's mode, probability and window.
func (p *Plan) Validate() error {
	for i, f := range p.Monitors {
		what := fmt.Sprintf("monitors[%d]", i)
		switch f.Mode {
		case ModePanic, ModeError, ModeLatency:
		default:
			return fmt.Errorf("chaos: %s: unknown mode %q", what, f.Mode)
		}
		if !validProb(f.Prob) {
			return fmt.Errorf("chaos: %s: prob %v outside [0,1]", what, f.Prob)
		}
		if f.LatencyUS < 0 {
			return fmt.Errorf("chaos: %s: latency_us %d negative", what, f.LatencyUS)
		}
		if err := f.Window.validate(what); err != nil {
			return err
		}
	}
	for i, f := range p.Bus {
		what := fmt.Sprintf("bus[%d]", i)
		if !validProb(f.Prob) {
			return fmt.Errorf("chaos: %s: prob %v outside [0,1]", what, f.Prob)
		}
		if err := f.Window.validate(what); err != nil {
			return err
		}
	}
	for i, f := range p.Broker {
		what := fmt.Sprintf("broker[%d]", i)
		if !validProb(f.Prob) {
			return fmt.Errorf("chaos: %s: prob %v outside [0,1]", what, f.Prob)
		}
		if err := f.Window.validate(what); err != nil {
			return err
		}
	}
	for i, f := range p.DB {
		what := fmt.Sprintf("db[%d]", i)
		if !validProb(f.Prob) {
			return fmt.Errorf("chaos: %s: prob %v outside [0,1]", what, f.Prob)
		}
		if err := f.Window.validate(what); err != nil {
			return err
		}
	}
	for i, f := range p.Recorder {
		what := fmt.Sprintf("recorder[%d]", i)
		switch f.Op {
		case OpWrite, OpSync, OpCreate, OpCorruptSnapshot:
		default:
			return fmt.Errorf("chaos: %s: unknown op %q", what, f.Op)
		}
		if !validProb(f.Prob) {
			return fmt.Errorf("chaos: %s: prob %v outside [0,1]", what, f.Prob)
		}
		if err := f.Window.validate(what); err != nil {
			return err
		}
	}
	for i, f := range p.Workers {
		what := fmt.Sprintf("workers[%d]", i)
		if !validProb(f.Prob) {
			return fmt.Errorf("chaos: %s: prob %v outside [0,1]", what, f.Prob)
		}
		if f.Attempts < 0 {
			return fmt.Errorf("chaos: %s: attempts %d negative", what, f.Attempts)
		}
		for _, idx := range f.Indices {
			if idx < 0 {
				return fmt.Errorf("chaos: %s: run index %d negative", what, idx)
			}
		}
	}
	return nil
}

// Stats counts the injections a Layer performed. Counters are
// informational (they are process-local, not part of any digest).
type Stats struct {
	MonitorPanics  uint64 `json:"monitor_panics"`
	MonitorErrors  uint64 `json:"monitor_errors"`
	MonitorLatency uint64 `json:"monitor_latency"`
	BusFailures    uint64 `json:"bus_failures"`
	BrokerFailures uint64 `json:"broker_failures"`
	DBFailures     uint64 `json:"db_failures"`
	RecorderFaults uint64 `json:"recorder_faults"`
	WorkerFailures uint64 `json:"worker_failures"`
}

// Total sums every injection counter.
func (s Stats) Total() uint64 {
	return s.MonitorPanics + s.MonitorErrors + s.MonitorLatency +
		s.BusFailures + s.BrokerFailures + s.DBFailures +
		s.RecorderFaults + s.WorkerFailures
}

// Layer executes a Plan against a running system. All hooks read only
// the plan and the simulation clock; the atomic counters below are the
// only mutable state and never feed back into decisions.
type Layer struct {
	clock *simclock.Clock
	plan  Plan

	monitorPanics  atomic.Uint64
	monitorErrors  atomic.Uint64
	monitorLatency atomic.Uint64
	busFailures    atomic.Uint64
	brokerFailures atomic.Uint64
	dbFailures     atomic.Uint64
	recorderFaults atomic.Uint64
	workerFailures atomic.Uint64
}

// New builds a Layer driving plan off the given simulation clock.
func New(clock *simclock.Clock, plan Plan) (*Layer, error) {
	if clock == nil {
		return nil, fmt.Errorf("chaos: nil clock")
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Layer{clock: clock, plan: plan}, nil
}

// Plan returns the layer's (validated) plan.
func (l *Layer) Plan() Plan { return l.plan }

// Stats snapshots the injection counters.
func (l *Layer) Stats() Stats {
	return Stats{
		MonitorPanics:  l.monitorPanics.Load(),
		MonitorErrors:  l.monitorErrors.Load(),
		MonitorLatency: l.monitorLatency.Load(),
		BusFailures:    l.busFailures.Load(),
		BrokerFailures: l.brokerFailures.Load(),
		DBFailures:     l.dbFailures.Load(),
		RecorderFaults: l.recorderFaults.Load(),
		WorkerFailures: l.workerFailures.Load(),
	}
}

// hashString folds s into h (FNV-1a).
func hashString(h uint64, s string) uint64 {
	const prime = 1099511628211
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// decide is the single Bernoulli draw behind every injection: a pure
// hash of (plan seed, rule key, one-second time bucket) compared
// against prob. Identical inputs always yield identical decisions, so
// serial, pooled, sharded and resumed runs inject the same faults at
// the same simulated times.
func (l *Layer) decide(key string, t float64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	bucket := uint64(0)
	if t > 0 {
		bucket = uint64(math.Floor(t))
	}
	h := hashString(uint64(l.plan.Seed)^0x9e3779b97f4a7c15, key)
	h = mix64(h ^ mix64(bucket))
	return float64(h>>11)/float64(1<<53) < prob
}

// ---- monitor chain injection ----

// chaosMonitor is the eddi.Runtime appended to each UAV's chain. It is
// stateless: every Observe re-derives its decision from the snapshot
// time alone, so it survives checkpoint/resume without serialization.
type chaosMonitor struct {
	layer *Layer
	uav   string
}

// Name identifies the injected monitor in chain observability and
// panic attribution.
func (m *chaosMonitor) Name() string { return "chaos" }

// Observe fires at most one monitor fault per tick, in plan order.
func (m *chaosMonitor) Observe(s eddi.Snapshot) ([]eddi.Event, eddi.Advice, error) {
	for i, f := range m.layer.plan.Monitors {
		if f.UAV != "" && f.UAV != m.uav {
			continue
		}
		if !f.Window.contains(s.Time) {
			continue
		}
		key := fmt.Sprintf("monitor:%d:%s", i, m.uav)
		if !m.layer.decide(key, s.Time, f.Prob) {
			continue
		}
		switch f.Mode {
		case ModePanic:
			m.layer.monitorPanics.Add(1)
			panic(fmt.Sprintf("chaos: injected monitor panic (uav %s, t=%.0f)", m.uav, s.Time))
		case ModeError:
			m.layer.monitorErrors.Add(1)
			return nil, eddi.Advice{}, fmt.Errorf("chaos: injected monitor error (uav %s, t=%.0f)", m.uav, s.Time)
		case ModeLatency:
			m.layer.monitorLatency.Add(1)
			spin(f.LatencyUS)
		}
	}
	return nil, eddi.Advice{}, nil
}

// spin burns roughly us microseconds of wall time without touching any
// simulation state: digests are unchanged, only scheduling pressure on
// the concurrent observe phase is injected.
func spin(us int) {
	if us <= 0 {
		us = 100
	}
	// ~4 iterations per ns is a deliberate overestimate; the exact wall
	// duration is irrelevant, only that work happens off the sim clock.
	n := us * 400
	acc := uint64(1)
	for i := 0; i < n; i++ {
		acc = mix64(acc + uint64(i))
	}
	if acc == 0 { // never true; defeats dead-code elimination
		panic("unreachable")
	}
}

// MonitorBuilder returns a Config.ExtraMonitors-shaped constructor
// appending the chaos monitor to every UAV's chain. With no monitor
// faults in the plan it returns nil, keeping chaos-off chains
// untouched.
func (l *Layer) MonitorBuilder() func(uav string) (eddi.Runtime, error) {
	if len(l.plan.Monitors) == 0 {
		return nil
	}
	return func(uav string) (eddi.Runtime, error) {
		return &chaosMonitor{layer: l, uav: uav}, nil
	}
}

// ---- bus / broker injection ----

// AttachBus stacks the plan's bus faults over whatever filter is
// already installed (e.g. a linksim layer): a failed publish is
// consumed with an error before the inner filter sees it. Attach the
// chaos layer after any link layer.
func (l *Layer) AttachBus(b *rosbus.Bus) {
	if len(l.plan.Bus) == 0 {
		return
	}
	b.WrapFilter(func(next rosbus.Filter) rosbus.Filter {
		return func(msg rosbus.Message) (bool, error) {
			for i, f := range l.plan.Bus {
				if f.Match != "" && !strings.HasPrefix(msg.Topic, f.Match) {
					continue
				}
				if !f.Window.contains(msg.Stamp) {
					continue
				}
				if l.decide(fmt.Sprintf("bus:%d:%s", i, msg.Topic), msg.Stamp, f.Prob) {
					l.busFailures.Add(1)
					return false, fmt.Errorf("chaos: injected bus publish failure on %s", msg.Topic)
				}
			}
			if next == nil {
				return true, nil
			}
			return next(msg)
		}
	})
}

// AttachBroker stacks the plan's broker faults over the broker's
// current filter, failing matched publishes before delivery.
func (l *Layer) AttachBroker(b *mqttlite.Broker) {
	if len(l.plan.Broker) == 0 {
		return
	}
	b.WrapFilter(func(next mqttlite.Filter) mqttlite.Filter {
		return func(topic string, payload []byte) (bool, error) {
			now := l.clock.Now()
			for i, f := range l.plan.Broker {
				if f.Match != "" && !strings.HasPrefix(topic, f.Match) {
					continue
				}
				if !f.Window.contains(now) {
					continue
				}
				if l.decide(fmt.Sprintf("broker:%d:%s", i, topic), now, f.Prob) {
					l.brokerFailures.Add(1)
					return false, fmt.Errorf("chaos: injected broker publish failure on %s", topic)
				}
			}
			if next == nil {
				return true, nil
			}
			return next(topic, payload)
		}
	})
}

// ---- database injection ----

// DBHook returns a Database.SetFaultHook-shaped brownout injector.
// unavailable is the store's retryable sentinel (the platform's
// ErrUnavailable); taking it as a parameter keeps this package free of
// a platform dependency. With no DB faults in the plan it returns nil.
func (l *Layer) DBHook(unavailable error) func(uav string) error {
	if len(l.plan.DB) == 0 {
		return nil
	}
	return func(uav string) error {
		now := l.clock.Now()
		for i, f := range l.plan.DB {
			if f.UAV != "" && f.UAV != uav {
				continue
			}
			if !f.Window.contains(now) {
				continue
			}
			if l.decide(fmt.Sprintf("db:%d:%s", i, uav), now, f.Prob) {
				l.dbFailures.Add(1)
				return unavailable
			}
		}
		return nil
	}
}

// ---- flight recorder injection ----

// RecorderOptions overlays the plan's recorder faults onto base:
// "write"/"sync"/"create" rules install a FaultHook, a
// "corrupt-snapshot" rule installs a CorruptSnapshot payload
// truncator. Existing hooks on base are preserved and consulted after
// the chaos ones.
func (l *Layer) RecorderOptions(base flightrec.Options) flightrec.Options {
	var ops, corrupt []RecorderFault
	for _, f := range l.plan.Recorder {
		if f.Op == OpCorruptSnapshot {
			corrupt = append(corrupt, f)
		} else {
			ops = append(ops, f)
		}
	}
	if len(ops) > 0 {
		inner := base.FaultHook
		base.FaultHook = func(op string) error {
			now := l.clock.Now()
			for i, f := range ops {
				if f.Op != op {
					continue
				}
				if !f.Window.contains(now) {
					continue
				}
				if l.decide(fmt.Sprintf("recorder:%d:%s", i, op), now, f.Prob) {
					l.recorderFaults.Add(1)
					return fmt.Errorf("chaos: injected recorder %s failure (t=%.0f)", op, now)
				}
			}
			if inner != nil {
				return inner(op)
			}
			return nil
		}
	}
	if len(corrupt) > 0 {
		inner := base.CorruptSnapshot
		base.CorruptSnapshot = func(payload []byte) []byte {
			now := l.clock.Now()
			for i, f := range corrupt {
				if !f.Window.contains(now) {
					continue
				}
				if l.decide(fmt.Sprintf("corrupt:%d", i), now, f.Prob) {
					l.recorderFaults.Add(1)
					// Truncate rather than bit-flip: the shorter payload
					// fails flightrec.DecodeSnapshot outright, so resume
					// skips this checkpoint instead of trusting mangled
					// platform state.
					cut := len(payload) / 4
					if cut < 1 {
						cut = 1
					}
					payload = payload[:len(payload)-cut]
					break
				}
			}
			if inner != nil {
				return inner(payload)
			}
			return payload
		}
	}
	return base
}

// ---- campaign worker injection ----

// WorkerFailure decides whether run index's attempt-th execution
// attempt (1-based) fails. Glue it to campaign.Options.RunFaultHook;
// the decision depends only on (plan seed, rule, index, attempt), so a
// resumed sweep re-injects identically.
func (l *Layer) WorkerFailure(index, attempt int) error {
	for i, f := range l.plan.Workers {
		if len(f.Indices) > 0 {
			hit := false
			for _, idx := range f.Indices {
				if idx == index {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		if f.Attempts > 0 {
			if attempt <= f.Attempts {
				l.workerFailures.Add(1)
				return fmt.Errorf("chaos: injected worker failure (run %d attempt %d)", index, attempt)
			}
			continue
		}
		if l.decide(fmt.Sprintf("worker:%d:%d:%d", i, index, attempt), 0, f.Prob) {
			l.workerFailures.Add(1)
			return fmt.Errorf("chaos: injected worker failure (run %d attempt %d)", index, attempt)
		}
	}
	return nil
}

// ---- plan generation (property harness) ----

// GeneratePlan draws a random but valid plan from rng: every fault
// category may appear, windows and probabilities are kept in ranges
// that exercise the degradation machinery without disabling the whole
// mission. The generated plan always validates.
func GeneratePlan(rng *rand.Rand, uavs []string) Plan {
	plan := Plan{Name: "generated", Seed: rng.Int63()}
	pick := func() string {
		if len(uavs) == 0 || rng.Intn(2) == 0 {
			return ""
		}
		return uavs[rng.Intn(len(uavs))]
	}
	window := func() Window {
		from := math.Floor(rng.Float64() * 40)
		if rng.Intn(3) == 0 {
			return Window{FromS: from}
		}
		return Window{FromS: from, ToS: from + 1 + math.Floor(rng.Float64()*60)}
	}
	modes := []string{ModePanic, ModeError, ModeLatency}
	for n := rng.Intn(3); n > 0; n-- {
		plan.Monitors = append(plan.Monitors, MonitorFault{
			UAV:       pick(),
			Mode:      modes[rng.Intn(len(modes))],
			Window:    window(),
			Prob:      0.1 + 0.9*rng.Float64(),
			LatencyUS: 10 + rng.Intn(200),
		})
	}
	matches := []string{"", "telemetry/", "alerts/"}
	for n := rng.Intn(3); n > 0; n-- {
		plan.Bus = append(plan.Bus, PublishFault{
			Match:  matches[rng.Intn(len(matches))],
			Window: window(),
			Prob:   0.5 * rng.Float64(),
		})
	}
	for n := rng.Intn(2); n > 0; n-- {
		plan.Broker = append(plan.Broker, PublishFault{
			Window: window(),
			Prob:   0.5 * rng.Float64(),
		})
	}
	for n := rng.Intn(3); n > 0; n-- {
		plan.DB = append(plan.DB, Brownout{
			UAV:    pick(),
			Window: window(),
			Prob:   rng.Float64(),
		})
	}
	recOps := []string{OpWrite, OpSync, OpCreate, OpCorruptSnapshot}
	for n := rng.Intn(3); n > 0; n-- {
		plan.Recorder = append(plan.Recorder, RecorderFault{
			Op:     recOps[rng.Intn(len(recOps))],
			Window: window(),
			Prob:   rng.Float64(),
		})
	}
	for n := rng.Intn(2); n > 0; n-- {
		plan.Workers = append(plan.Workers, WorkerFault{
			Prob:     0.7 * rng.Float64(),
			Attempts: rng.Intn(3),
		})
	}
	return plan
}
