package chaos

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"sesame/internal/simclock"
)

// TestGeneratedPlanClassRegressions pins one previously-generated plan
// per injection class. The generative property suites draw fresh plans
// every run, which means a quiet change to GeneratePlan could stop a
// whole class (say, latency monitors or snapshot corruption) from ever
// being exercised again without any test noticing. Each subtest here
// freezes a (seed → plan) pair that covers its class: the plan must
// still contain the class, still validate, still arm, and still be the
// exact bytes it was when pinned. A digest drift means generation
// changed for plans the suites have already flown — regenerate the
// pins deliberately (tmp program over seeds 0..N) and re-examine what
// coverage moved.
func TestGeneratedPlanClassRegressions(t *testing.T) {
	uavs := []string{"u1", "u2", "u3"}
	hasMode := func(p Plan, m string) bool {
		for _, f := range p.Monitors {
			if f.Mode == m {
				return true
			}
		}
		return false
	}
	hasRecOp := func(p Plan, corrupt bool) bool {
		for _, f := range p.Recorder {
			if (f.Op == OpCorruptSnapshot) == corrupt {
				return true
			}
		}
		return false
	}
	cases := []struct {
		class  string
		seed   int64
		covers func(Plan) bool
		digest string
	}{
		{"monitor-panic", 3, func(p Plan) bool { return hasMode(p, ModePanic) },
			"53e247a6179dd69a7f0a231083fa520bfae2199e31a5956aa162b682041c2bde"},
		{"monitor-error", 6, func(p Plan) bool { return hasMode(p, ModeError) },
			"f2c6ff7e7576c2e259b82f5220b9a35ad9d22c62486b06be5936dbb1af36556c"},
		{"monitor-latency", 9, func(p Plan) bool { return hasMode(p, ModeLatency) },
			"13105688298f0f34e3aa18efe1e0603786630e9655198142195dbe15bd6a196c"},
		{"bus", 0, func(p Plan) bool { return len(p.Bus) > 0 },
			"80c34b84fc5991b6260cd82e14d2192185ccff42f889f7eaaf07d9c95266a09a"},
		{"broker", 1, func(p Plan) bool { return len(p.Broker) > 0 },
			"d3731a6ad3b7bd87e250fb7949404fc0265b145de33c9f2d64f80fd888ea90e1"},
		{"db", 2, func(p Plan) bool { return len(p.DB) > 0 },
			"9f17768c7170fa48446853dda0c64ccc3002bdfebfdd784406200b01524da6fd"},
		{"recorder", 1, func(p Plan) bool { return hasRecOp(p, false) },
			"d3731a6ad3b7bd87e250fb7949404fc0265b145de33c9f2d64f80fd888ea90e1"},
		{"corrupt-snapshot", 9, func(p Plan) bool { return hasRecOp(p, true) },
			"13105688298f0f34e3aa18efe1e0603786630e9655198142195dbe15bd6a196c"},
		{"workers", 0, func(p Plan) bool { return len(p.Workers) > 0 },
			"80c34b84fc5991b6260cd82e14d2192185ccff42f889f7eaaf07d9c95266a09a"},
	}
	for _, tc := range cases {
		t.Run(tc.class, func(t *testing.T) {
			plan := GeneratePlan(rand.New(rand.NewSource(tc.seed)), uavs)
			if !tc.covers(plan) {
				t.Fatalf("seed %d no longer generates a %s fault", tc.seed, tc.class)
			}
			if err := plan.Validate(); err != nil {
				t.Fatalf("pinned plan no longer validates: %v", err)
			}
			if _, err := New(simclock.New(0), plan); err != nil {
				t.Fatalf("pinned plan no longer arms: %v", err)
			}
			data, err := json.Marshal(plan)
			if err != nil {
				t.Fatal(err)
			}
			if got := fmt.Sprintf("%x", sha256.Sum256(data)); got != tc.digest {
				t.Errorf("seed %d plan drifted: digest %s, pinned %s", tc.seed, got, tc.digest)
			}
		})
	}
}
