package chaos

import (
	"encoding/json"
	"testing"

	"sesame/internal/simclock"
)

// FuzzPlanParse hardens the chaos-plan loader: arbitrary bytes must
// either be rejected with an error or produce a plan that validates,
// round-trips through JSON, and builds a working Layer — never a
// panic, and never an accepted-but-invalid plan that would desync a
// distributed injection schedule.
func FuzzPlanParse(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed":7}`))
	f.Add([]byte(`{"name":"p","seed":-1,"monitors":[{"uav":"u1","mode":"panic","window":{"from_s":10,"to_s":20},"prob":1}]}`))
	f.Add([]byte(`{"bus":[{"match":"telemetry/","prob":0.25}],"db":[{"window":{"to_s":60},"prob":0.5}]}`))
	f.Add([]byte(`{"recorder":[{"op":"corrupt-snapshot","prob":1}],"workers":[{"indices":[0,3],"attempts":2}]}`))
	f.Add([]byte(`{"monitors":[{"mode":"latency","prob":0.5,"latency_us":100}]}`))
	f.Add([]byte(`{"seed":1} trailing`))
	f.Add([]byte(`{"monitors":[{"mode":"panic","prob":2}]}`))
	f.Add([]byte(`{"bus":[{"prob":1e309}]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := LoadPlan(data)
		if err != nil {
			return
		}
		// Accepted plans are valid by contract...
		if err := plan.Validate(); err != nil {
			t.Fatalf("LoadPlan accepted an invalid plan: %v", err)
		}
		// ...build a layer...
		if _, err := New(simclock.New(0), plan); err != nil {
			t.Fatalf("New rejected an accepted plan: %v", err)
		}
		// ...and survive a serialize/parse round trip (the resume path:
		// the same plan file is loaded again by the resumed process).
		out, err := json.Marshal(plan)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		again, err := LoadPlan(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if again.Seed != plan.Seed || len(again.Monitors) != len(plan.Monitors) ||
			len(again.Bus) != len(plan.Bus) || len(again.Broker) != len(plan.Broker) ||
			len(again.DB) != len(plan.DB) || len(again.Recorder) != len(plan.Recorder) ||
			len(again.Workers) != len(plan.Workers) {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, plan)
		}
	})
}
