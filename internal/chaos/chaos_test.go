package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sesame/internal/eddi"
	"sesame/internal/flightrec"
	"sesame/internal/mqttlite"
	"sesame/internal/rosbus"
	"sesame/internal/simclock"
)

func mustLayer(t *testing.T, clock *simclock.Clock, plan Plan) *Layer {
	t.Helper()
	l, err := New(clock, plan)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLoadPlan(t *testing.T) {
	good := `{"name":"p","seed":42,
		"monitors":[{"uav":"u1","mode":"panic","window":{"from_s":10,"to_s":20},"prob":1}],
		"bus":[{"match":"telemetry/","prob":0.1}],
		"db":[{"window":{"to_s":120},"prob":0.5}],
		"recorder":[{"op":"corrupt-snapshot","prob":0.2}],
		"workers":[{"indices":[3],"attempts":2}]}`
	plan, err := LoadPlan([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 || len(plan.Monitors) != 1 || plan.Monitors[0].Mode != ModePanic {
		t.Fatalf("parsed plan %+v", plan)
	}

	bad := map[string]string{
		"unknown field":    `{"seed":1,"monitros":[]}`,
		"trailing data":    `{"seed":1} {"seed":2}`,
		"unknown mode":     `{"monitors":[{"mode":"crash","prob":1}]}`,
		"prob above one":   `{"bus":[{"prob":1.5}]}`,
		"negative prob":    `{"db":[{"prob":-0.1}]}`,
		"inverted window":  `{"broker":[{"prob":0.5,"window":{"from_s":20,"to_s":10}}]}`,
		"negative from":    `{"bus":[{"prob":0.5,"window":{"from_s":-1}}]}`,
		"unknown op":       `{"recorder":[{"op":"truncate","prob":1}]}`,
		"negative latency": `{"monitors":[{"mode":"latency","prob":1,"latency_us":-5}]}`,
		"negative attempt": `{"workers":[{"attempts":-1}]}`,
		"negative index":   `{"workers":[{"indices":[-2]}]}`,
		"not json":         `seed=1`,
	}
	for name, src := range bad {
		if _, err := LoadPlan([]byte(src)); err == nil {
			t.Errorf("%s: LoadPlan accepted %s", name, src)
		}
	}
}

func TestWindowContains(t *testing.T) {
	open := Window{FromS: 10}
	closed := Window{FromS: 10, ToS: 20}
	cases := []struct {
		w    Window
		t    float64
		want bool
	}{
		{open, 9.9, false}, {open, 10, true}, {open, 1e6, true},
		{closed, 9.9, false}, {closed, 10, true}, {closed, 19.9, true},
		{closed, 20, false}, // ToS is exclusive
		{Window{}, 0, true}, {Window{}, 500, true},
	}
	for _, c := range cases {
		if got := c.w.contains(c.t); got != c.want {
			t.Errorf("%+v contains(%v) = %v, want %v", c.w, c.t, got, c.want)
		}
	}
}

// TestDecideDeterministic pins the determinism contract: injection
// decisions are a pure function of (plan seed, key, one-second time
// bucket), with no mutable state — two layers built from the same plan
// must agree everywhere, and sub-second times must not change a draw.
func TestDecideDeterministic(t *testing.T) {
	plan := Plan{Seed: 99}
	a := mustLayer(t, simclock.New(0), plan)
	b := mustLayer(t, simclock.New(7), plan) // clock seed must not matter
	hits := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("rule:%d", i%17)
		tm := float64(i) * 0.37
		got := a.decide(key, tm, 0.5)
		if got != b.decide(key, tm, 0.5) {
			t.Fatalf("layers disagree on (%q, %v)", key, tm)
		}
		if got {
			hits++
		}
		if a.decide(key, tm, 0) {
			t.Fatalf("prob 0 fired on (%q, %v)", key, tm)
		}
		if !a.decide(key, tm, 1) {
			t.Fatalf("prob 1 skipped on (%q, %v)", key, tm)
		}
	}
	if hits < 600 || hits > 1400 {
		t.Errorf("prob 0.5 fired %d/2000 times; hash badly biased", hits)
	}
	// Same one-second bucket, same decision.
	for _, tm := range []float64{3.0, 3.2, 3.999} {
		if a.decide("k", tm, 0.5) != a.decide("k", 3.5, 0.5) {
			t.Errorf("decision changed within bucket at t=%v", tm)
		}
	}
	// A different seed reshuffles decisions somewhere.
	c := mustLayer(t, simclock.New(0), Plan{Seed: 100})
	same := true
	for i := 0; i < 200 && same; i++ {
		same = a.decide("k", float64(i), 0.5) == c.decide("k", float64(i), 0.5)
	}
	if same {
		t.Error("seed change did not affect any decision")
	}
}

func TestMonitorInjection(t *testing.T) {
	plan := Plan{Seed: 1, Monitors: []MonitorFault{
		{UAV: "u1", Mode: ModeError, Window: Window{FromS: 10, ToS: 20}, Prob: 1},
	}}
	l := mustLayer(t, simclock.New(0), plan)
	build := l.MonitorBuilder()
	if build == nil {
		t.Fatal("MonitorBuilder returned nil with monitor rules present")
	}
	rt, err := build("u1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Observe(eddi.Snapshot{Time: 15}); err == nil ||
		!strings.Contains(err.Error(), "injected monitor error") {
		t.Fatalf("in-window Observe err = %v, want injected error", err)
	}
	if _, _, err := rt.Observe(eddi.Snapshot{Time: 25}); err != nil {
		t.Fatalf("out-of-window Observe err = %v", err)
	}
	other, _ := build("u2")
	if _, _, err := other.Observe(eddi.Snapshot{Time: 15}); err != nil {
		t.Fatalf("wrong-UAV Observe err = %v", err)
	}
	if got := l.Stats().MonitorErrors; got != 1 {
		t.Errorf("MonitorErrors = %d, want 1", got)
	}

	panicky := mustLayer(t, simclock.New(0), Plan{Monitors: []MonitorFault{
		{Mode: ModePanic, Prob: 1},
	}})
	rt, _ = panicky.MonitorBuilder()("u1")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic mode did not panic")
			}
		}()
		rt.Observe(eddi.Snapshot{Time: 5})
	}()

	inert := mustLayer(t, simclock.New(0), Plan{})
	if inert.MonitorBuilder() != nil {
		t.Error("MonitorBuilder not nil for a plan without monitor rules")
	}
}

func TestAttachBusInjects(t *testing.T) {
	l := mustLayer(t, simclock.New(0), Plan{Bus: []PublishFault{
		{Match: "telemetry/", Window: Window{FromS: 10}, Prob: 1},
	}})
	bus := rosbus.NewBus()
	delivered := 0
	if _, err := bus.Subscribe("telemetry/u1", func(rosbus.Message) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	l.AttachBus(bus)
	pub, err := bus.Advertise("telemetry/u1", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(15, nil); err == nil || !strings.Contains(err.Error(), "injected bus publish failure") {
		t.Fatalf("matched publish err = %v, want injection", err)
	}
	if err := pub.Publish(5, nil); err != nil { // before the window
		t.Fatalf("pre-window publish err = %v", err)
	}
	other, _ := bus.Advertise("alerts/u1", "n1")
	if err := other.Publish(15, nil); err != nil {
		t.Fatalf("unmatched-topic publish err = %v", err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d telemetry messages, want 1", delivered)
	}
	if got := l.Stats().BusFailures; got != 1 {
		t.Errorf("BusFailures = %d, want 1", got)
	}
}

func TestAttachBrokerInjects(t *testing.T) {
	clock := simclock.New(0)
	l := mustLayer(t, clock, Plan{Broker: []PublishFault{
		{Window: Window{FromS: 10, ToS: 20}, Prob: 1},
	}})
	broker := mqttlite.NewBroker()
	l.AttachBroker(broker)
	clock.SetNow(15)
	if err := broker.Publish("cmd/land", nil, false); err == nil ||
		!strings.Contains(err.Error(), "injected broker publish failure") {
		t.Fatalf("in-window publish err = %v, want injection", err)
	}
	clock.SetNow(30)
	if err := broker.Publish("cmd/land", nil, false); err != nil {
		t.Fatalf("post-window publish err = %v", err)
	}
	if got := l.Stats().BrokerFailures; got != 1 {
		t.Errorf("BrokerFailures = %d, want 1", got)
	}
}

func TestDBHook(t *testing.T) {
	sentinel := errors.New("db unavailable")
	clock := simclock.New(0)
	l := mustLayer(t, clock, Plan{DB: []Brownout{
		{UAV: "u2", Window: Window{ToS: 100}, Prob: 1},
	}})
	hook := l.DBHook(sentinel)
	if hook == nil {
		t.Fatal("DBHook returned nil with db rules present")
	}
	clock.SetNow(50)
	if err := hook("u2"); !errors.Is(err, sentinel) {
		t.Fatalf("matched write err = %v, want the sentinel", err)
	}
	if err := hook("u1"); err != nil {
		t.Fatalf("wrong-UAV write err = %v", err)
	}
	clock.SetNow(150)
	if err := hook("u2"); err != nil {
		t.Fatalf("post-window write err = %v", err)
	}
	if got := l.Stats().DBFailures; got != 1 {
		t.Errorf("DBFailures = %d, want 1", got)
	}
	if mustLayer(t, clock, Plan{}).DBHook(sentinel) != nil {
		t.Error("DBHook not nil for a plan without db rules")
	}
}

func TestRecorderOptions(t *testing.T) {
	clock := simclock.New(0)
	l := mustLayer(t, clock, Plan{Recorder: []RecorderFault{
		{Op: OpWrite, Window: Window{FromS: 10}, Prob: 1},
		{Op: OpCorruptSnapshot, Window: Window{FromS: 10}, Prob: 1},
	}})
	var innerOps []string
	base := flightrec.Options{
		FaultHook:       func(op string) error { innerOps = append(innerOps, op); return nil },
		CorruptSnapshot: func(p []byte) []byte { return append(p, 0xff) },
	}
	opts := l.RecorderOptions(base)

	payload := make([]byte, 8)
	clock.SetNow(5) // before the window: chaos rules inert
	if err := opts.FaultHook("write"); err != nil {
		t.Fatalf("pre-window write err = %v", err)
	}
	out := opts.CorruptSnapshot(append([]byte(nil), payload...))
	if len(out) != 9 { // inner corruptor's appended byte only
		t.Errorf("pre-window payload length %d, want 9", len(out))
	}

	clock.SetNow(20)
	if err := opts.FaultHook("write"); err == nil || !strings.Contains(err.Error(), "injected recorder write failure") {
		t.Fatalf("write err = %v, want injection", err)
	}
	// Ops the chaos rules skip still reach the inner hook.
	if err := opts.FaultHook("sync"); err != nil {
		t.Fatalf("sync err = %v", err)
	}
	if len(innerOps) != 2 || innerOps[1] != "sync" {
		t.Errorf("inner hook saw %v, want [write sync]", innerOps)
	}

	out = opts.CorruptSnapshot(append([]byte(nil), payload...))
	// Chaos truncates a quarter, then the preserved inner corruptor
	// appends its byte: 8 - 2 + 1.
	if len(out) != 7 {
		t.Errorf("corrupted payload length %d, want 7", len(out))
	}
	if got := l.Stats().RecorderFaults; got != 2 {
		t.Errorf("RecorderFaults = %d, want 2", got)
	}

	// No recorder rules: options pass through untouched.
	passthrough := mustLayer(t, clock, Plan{}).RecorderOptions(base)
	if err := passthrough.FaultHook("write"); err != nil {
		t.Fatalf("passthrough hook err = %v", err)
	}
}

func TestWorkerFailure(t *testing.T) {
	l := mustLayer(t, simclock.New(0), Plan{Workers: []WorkerFault{
		{Indices: []int{2}, Attempts: 2},
	}})
	for attempt := 1; attempt <= 2; attempt++ {
		if err := l.WorkerFailure(2, attempt); err == nil {
			t.Errorf("run 2 attempt %d succeeded, want injected failure", attempt)
		}
	}
	if err := l.WorkerFailure(2, 3); err != nil {
		t.Errorf("run 2 attempt 3 err = %v, want success after Attempts exhausted", err)
	}
	if err := l.WorkerFailure(1, 1); err != nil {
		t.Errorf("unmatched run 1 err = %v", err)
	}
	if got := l.Stats().WorkerFailures; got != 2 {
		t.Errorf("WorkerFailures = %d, want 2", got)
	}

	// Probabilistic mode is deterministic per (seed, index, attempt).
	plan := Plan{Seed: 5, Workers: []WorkerFault{{Prob: 0.5}}}
	a := mustLayer(t, simclock.New(0), plan)
	b := mustLayer(t, simclock.New(9), plan)
	fails := 0
	for i := 0; i < 400; i++ {
		ea, eb := a.WorkerFailure(i, 1), b.WorkerFailure(i, 1)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("layers disagree on run %d", i)
		}
		if ea != nil {
			fails++
		}
	}
	if fails < 100 || fails > 300 {
		t.Errorf("prob 0.5 failed %d/400 runs; draw badly biased", fails)
	}
}

// TestGeneratePlanAlwaysValid backs the property harness: every
// generated plan must pass the same validation a hand-written plan
// file does.
func TestGeneratePlanAlwaysValid(t *testing.T) {
	uavs := []string{"u1", "u2", "u3"}
	for seed := int64(0); seed < 300; seed++ {
		plan := GeneratePlan(rand.New(rand.NewSource(seed)), uavs)
		if err := plan.Validate(); err != nil {
			t.Fatalf("seed %d generated an invalid plan: %v", seed, err)
		}
		if _, err := New(simclock.New(0), plan); err != nil {
			t.Fatalf("seed %d: New rejected generated plan: %v", seed, err)
		}
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{MonitorPanics: 1, MonitorErrors: 2, MonitorLatency: 3, BusFailures: 4,
		BrokerFailures: 5, DBFailures: 6, RecorderFaults: 7, WorkerFailures: 8}
	if s.Total() != 36 {
		t.Errorf("Total = %d, want 36", s.Total())
	}
}
