package geo

// Polygon is a closed region on the local tangent plane described by its
// geodetic vertices in order (the closing edge from the last vertex back
// to the first is implicit).
type Polygon []LatLng

// BoundingBox returns the south-west and north-east corners of the
// polygon's axis-aligned bounding box. A nil/empty polygon returns two
// zero coordinates.
func (pg Polygon) BoundingBox() (sw, ne LatLng) {
	if len(pg) == 0 {
		return LatLng{}, LatLng{}
	}
	sw, ne = pg[0], pg[0]
	for _, p := range pg[1:] {
		if p.Lat < sw.Lat {
			sw.Lat = p.Lat
		}
		if p.Lng < sw.Lng {
			sw.Lng = p.Lng
		}
		if p.Lat > ne.Lat {
			ne.Lat = p.Lat
		}
		if p.Lng > ne.Lng {
			ne.Lng = p.Lng
		}
	}
	return sw, ne
}

// Contains reports whether p lies inside the polygon, using the
// even-odd ray casting rule on the lat/lng plane. Suitable for the
// small, convex-ish mission areas used in SAR scenarios.
func (pg Polygon) Contains(p LatLng) bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg[i], pg[j]
		if (vi.Lat > p.Lat) != (vj.Lat > p.Lat) {
			x := vj.Lng + (p.Lat-vj.Lat)/(vi.Lat-vj.Lat)*(vi.Lng-vj.Lng)
			if p.Lng < x {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// AreaSquareMeters returns the polygon area in square metres via the
// shoelace formula on the local tangent plane at the first vertex.
func (pg Polygon) AreaSquareMeters() float64 {
	if len(pg) < 3 {
		return 0
	}
	pr := NewProjection(pg[0])
	var sum float64
	n := len(pg)
	for i := 0; i < n; i++ {
		a := pr.ToENU(pg[i])
		b := pr.ToENU(pg[(i+1)%n])
		sum += a.East*b.North - b.East*a.North
	}
	if sum < 0 {
		sum = -sum
	}
	return sum / 2
}

// Centroid returns the unweighted vertex centroid of the polygon.
func (pg Polygon) Centroid() (LatLng, error) {
	return WeightedCentroid([]LatLng(pg), nil)
}
