// Package geo provides the geodetic primitives used across the SESAME
// stack: great-circle (Haversine) distance, bearings, destination
// points, a local east-north-up projection for small mission areas, and
// the triangulation routines that back Collaborative Localization.
//
// All angles at the public API are degrees unless a name says otherwise;
// distances are metres. The Earth is modelled as a sphere of radius
// EarthRadius, which is the model the paper's Haversine-based fusion
// uses (ref. [38] of the paper).
package geo

import (
	"fmt"
	"math"
)

// EarthRadius is the mean Earth radius in metres (IUGG R1).
const EarthRadius = 6371008.8

// LatLng is a WGS-84 style geodetic coordinate in degrees.
type LatLng struct {
	Lat float64 // degrees, +north
	Lng float64 // degrees, +east
}

// String renders the coordinate with ~1 cm precision.
func (p LatLng) String() string {
	return fmt.Sprintf("(%.7f, %.7f)", p.Lat, p.Lng)
}

// Valid reports whether the coordinate lies in the geodetic domain.
func (p LatLng) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lng)
}

// Radians returns the coordinate converted to radians.
func (p LatLng) Radians() (lat, lng float64) {
	return p.Lat * math.Pi / 180, p.Lng * math.Pi / 180
}

// Haversine returns the great-circle distance in metres between a and b.
func Haversine(a, b LatLng) float64 {
	la1, lo1 := a.Radians()
	la2, lo2 := b.Radians()
	dLat := la2 - la1
	dLng := lo2 - lo1
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLng / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadius * math.Asin(math.Sqrt(h))
}

// InitialBearing returns the initial great-circle bearing from a to b in
// degrees clockwise from true north, in [0, 360).
func InitialBearing(a, b LatLng) float64 {
	la1, lo1 := a.Radians()
	la2, lo2 := b.Radians()
	dLng := lo2 - lo1
	y := math.Sin(dLng) * math.Cos(la2)
	x := math.Cos(la1)*math.Sin(la2) - math.Sin(la1)*math.Cos(la2)*math.Cos(dLng)
	deg := math.Atan2(y, x) * 180 / math.Pi
	return math.Mod(deg+360, 360)
}

// Destination returns the point reached by travelling distance metres
// from origin along the given initial bearing (degrees from north).
func Destination(origin LatLng, bearingDeg, distance float64) LatLng {
	la1, lo1 := origin.Radians()
	br := bearingDeg * math.Pi / 180
	ad := distance / EarthRadius
	la2 := math.Asin(math.Sin(la1)*math.Cos(ad) + math.Cos(la1)*math.Sin(ad)*math.Cos(br))
	lo2 := lo1 + math.Atan2(math.Sin(br)*math.Sin(ad)*math.Cos(la1),
		math.Cos(ad)-math.Sin(la1)*math.Sin(la2))
	lat := la2 * 180 / math.Pi
	lng := math.Mod(lo2*180/math.Pi+540, 360) - 180
	return LatLng{Lat: lat, Lng: lng}
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b LatLng) LatLng {
	la1, lo1 := a.Radians()
	la2, lo2 := b.Radians()
	dLng := lo2 - lo1
	bx := math.Cos(la2) * math.Cos(dLng)
	by := math.Cos(la2) * math.Sin(dLng)
	lat := math.Atan2(math.Sin(la1)+math.Sin(la2),
		math.Sqrt((math.Cos(la1)+bx)*(math.Cos(la1)+bx)+by*by))
	lng := lo1 + math.Atan2(by, math.Cos(la1)+bx)
	return LatLng{
		Lat: lat * 180 / math.Pi,
		Lng: math.Mod(lng*180/math.Pi+540, 360) - 180,
	}
}

// ENU is a local east-north-up coordinate in metres relative to a
// projection origin. Up is carried separately as altitude where needed.
type ENU struct {
	East  float64
	North float64
}

// Sub returns e - o.
func (e ENU) Sub(o ENU) ENU { return ENU{e.East - o.East, e.North - o.North} }

// Add returns e + o.
func (e ENU) Add(o ENU) ENU { return ENU{e.East + o.East, e.North + o.North} }

// Scale returns e scaled by k.
func (e ENU) Scale(k float64) ENU { return ENU{e.East * k, e.North * k} }

// Norm returns the Euclidean length of e.
func (e ENU) Norm() float64 { return math.Hypot(e.East, e.North) }

// Projection maps between geodetic coordinates and a local tangent-plane
// ENU frame centred at Origin. Accurate to centimetres over the few-km
// mission areas used in SAR scenarios.
type Projection struct {
	Origin LatLng
	cosLat float64
}

// NewProjection returns a local ENU projection centred at origin.
func NewProjection(origin LatLng) *Projection {
	lat, _ := origin.Radians()
	return &Projection{Origin: origin, cosLat: math.Cos(lat)}
}

// ToENU projects p into the local frame.
func (pr *Projection) ToENU(p LatLng) ENU {
	dLat := (p.Lat - pr.Origin.Lat) * math.Pi / 180
	dLng := (p.Lng - pr.Origin.Lng) * math.Pi / 180
	return ENU{
		East:  dLng * pr.cosLat * EarthRadius,
		North: dLat * EarthRadius,
	}
}

// ToLatLng unprojects a local frame coordinate back to geodetic.
func (pr *Projection) ToLatLng(e ENU) LatLng {
	lat := pr.Origin.Lat + e.North/EarthRadius*180/math.Pi
	lng := pr.Origin.Lng + e.East/(EarthRadius*pr.cosLat)*180/math.Pi
	return LatLng{Lat: lat, Lng: lng}
}

// PathLength returns the summed Haversine length of a polyline in metres.
func PathLength(path []LatLng) float64 {
	var total float64
	for i := 1; i < len(path); i++ {
		total += Haversine(path[i-1], path[i])
	}
	return total
}

// CrossTrackDistance returns the signed distance in metres of point p
// from the great-circle path through a and b. Positive means p lies to
// the right of the direction of travel a->b.
func CrossTrackDistance(p, a, b LatLng) float64 {
	d13 := Haversine(a, p) / EarthRadius
	brng13 := InitialBearing(a, p) * math.Pi / 180
	brng12 := InitialBearing(a, b) * math.Pi / 180
	return math.Asin(math.Sin(d13)*math.Sin(brng13-brng12)) * EarthRadius
}
