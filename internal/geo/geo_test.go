package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Nicosia-area coordinates: the KIOS field trials in the paper were
// flown in Cyprus, so tests use that latitude band.
var (
	nicosia = LatLng{Lat: 35.1856, Lng: 33.3823}
	limasol = LatLng{Lat: 34.7071, Lng: 33.0226}
)

func TestHaversineKnownDistance(t *testing.T) {
	// Nicosia to Limassol is roughly 62 km.
	d := Haversine(nicosia, limasol)
	if d < 60000 || d > 65000 {
		t.Fatalf("Haversine(nicosia, limassol) = %.0f m, want ~62 km", d)
	}
}

func TestHaversineZero(t *testing.T) {
	if d := Haversine(nicosia, nicosia); d != 0 {
		t.Fatalf("distance to self = %v, want 0", d)
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lat1, lng1, lat2, lng2 float64) bool {
		a := LatLng{clampLat(lat1), clampLng(lng1)}
		b := LatLng{clampLat(lat2), clampLng(lng2)}
		return math.Abs(Haversine(a, b)-Haversine(b, a)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(a1, o1, a2, o2, a3, o3 float64) bool {
		a := LatLng{clampLat(a1), clampLng(o1)}
		b := LatLng{clampLat(a2), clampLng(o2)}
		c := LatLng{clampLat(a3), clampLng(o3)}
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clampLat(v float64) float64 {
	return math.Mod(math.Abs(v), 180) - 90
}

func clampLng(v float64) float64 {
	return math.Mod(math.Abs(v), 360) - 180
}

func TestDestinationRoundTrip(t *testing.T) {
	for _, bearing := range []float64{0, 45, 90, 135, 180, 270, 359} {
		for _, dist := range []float64{1, 100, 5000} {
			p := Destination(nicosia, bearing, dist)
			got := Haversine(nicosia, p)
			if math.Abs(got-dist) > 0.01*dist+1e-3 {
				t.Errorf("bearing %v dist %v: round-trip distance %v", bearing, dist, got)
			}
			back := InitialBearing(nicosia, p)
			diff := math.Abs(back - bearing)
			if diff > 180 {
				diff = 360 - diff
			}
			if diff > 0.5 {
				t.Errorf("bearing %v dist %v: recovered bearing %v", bearing, dist, back)
			}
		}
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	north := Destination(nicosia, 0, 1000)
	if b := InitialBearing(nicosia, north); math.Abs(b) > 0.1 && math.Abs(b-360) > 0.1 {
		t.Errorf("bearing to north point = %v, want ~0", b)
	}
	east := Destination(nicosia, 90, 1000)
	if b := InitialBearing(nicosia, east); math.Abs(b-90) > 0.1 {
		t.Errorf("bearing to east point = %v, want ~90", b)
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(nicosia, limasol)
	da := Haversine(nicosia, m)
	db := Haversine(m, limasol)
	if math.Abs(da-db) > 1 {
		t.Fatalf("midpoint not equidistant: %v vs %v", da, db)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(nicosia)
	for _, e := range []ENU{{0, 0}, {100, 0}, {0, 100}, {-250, 431}, {1234, -987}} {
		p := pr.ToLatLng(e)
		back := pr.ToENU(p)
		if math.Abs(back.East-e.East) > 1e-6 || math.Abs(back.North-e.North) > 1e-6 {
			t.Errorf("round trip %+v -> %+v", e, back)
		}
	}
}

func TestProjectionDistanceAgreement(t *testing.T) {
	// Over a 2 km mission area the tangent-plane distance must agree
	// with Haversine to well under a metre.
	pr := NewProjection(nicosia)
	p := pr.ToLatLng(ENU{East: 1500, North: -900})
	planar := pr.ToENU(p).Norm()
	sphere := Haversine(nicosia, p)
	if math.Abs(planar-sphere) > 0.5 {
		t.Fatalf("planar %.3f vs sphere %.3f", planar, sphere)
	}
}

func TestENUArithmetic(t *testing.T) {
	a := ENU{3, 4}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := a.Add(ENU{1, 1}); got != (ENU{4, 5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(ENU{1, 1}); got != (ENU{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (ENU{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestPathLength(t *testing.T) {
	a := nicosia
	b := Destination(a, 90, 1000)
	c := Destination(b, 0, 500)
	got := PathLength([]LatLng{a, b, c})
	if math.Abs(got-1500) > 1 {
		t.Fatalf("PathLength = %v, want ~1500", got)
	}
	if PathLength(nil) != 0 || PathLength([]LatLng{a}) != 0 {
		t.Fatal("degenerate paths must have zero length")
	}
}

func TestCrossTrackDistance(t *testing.T) {
	a := nicosia
	b := Destination(a, 0, 2000) // path due north
	right := Destination(Midpoint(a, b), 90, 50)
	left := Destination(Midpoint(a, b), 270, 50)
	dr := CrossTrackDistance(right, a, b)
	dl := CrossTrackDistance(left, a, b)
	if math.Abs(dr-50) > 1 {
		t.Errorf("right offset = %v, want ~+50", dr)
	}
	if math.Abs(dl+50) > 1 {
		t.Errorf("left offset = %v, want ~-50", dl)
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		p    LatLng
		want bool
	}{
		{LatLng{0, 0}, true},
		{LatLng{90, 180}, true},
		{LatLng{-90, -180}, true},
		{LatLng{91, 0}, false},
		{LatLng{0, 181}, false},
		{LatLng{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIntersectBearings(t *testing.T) {
	target := Destination(nicosia, 45, 1000)
	obsA := BearingObservation{Observer: nicosia, Bearing: 45}
	other := Destination(nicosia, 90, 800)
	obsB := BearingObservation{Observer: other, Bearing: InitialBearing(other, target)}
	got, err := IntersectBearings(obsA, obsB)
	if err != nil {
		t.Fatal(err)
	}
	if d := Haversine(got, target); d > 2 {
		t.Fatalf("intersection %.2f m from target", d)
	}
}

func TestIntersectBearingsParallel(t *testing.T) {
	a := BearingObservation{Observer: nicosia, Bearing: 10}
	b := BearingObservation{Observer: Destination(nicosia, 90, 100), Bearing: 10}
	if _, err := IntersectBearings(a, b); err != ErrNoIntersection {
		t.Fatalf("err = %v, want ErrNoIntersection", err)
	}
}

func TestIntersectBearingsBehind(t *testing.T) {
	// Both observers looking away from each other: crossing is behind.
	a := BearingObservation{Observer: nicosia, Bearing: 0}
	b := BearingObservation{Observer: Destination(nicosia, 0, 500), Bearing: 180}
	// These rays actually cross between the two observers; flip one to
	// force a behind-ray geometry.
	a.Bearing = 180
	b.Bearing = 0
	if _, err := IntersectBearings(a, b); err != ErrNoIntersection {
		t.Fatalf("err = %v, want ErrNoIntersection", err)
	}
}

func TestRangeFix(t *testing.T) {
	target := Destination(nicosia, 120, 640)
	fix, err := RangeFix(BearingObservation{Observer: nicosia, Bearing: 120, Range: 640})
	if err != nil {
		t.Fatal(err)
	}
	if d := Haversine(fix, target); d > 0.5 {
		t.Fatalf("range fix %.2f m off", d)
	}
	if _, err := RangeFix(BearingObservation{Observer: nicosia, Bearing: 120}); err != ErrInsufficient {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestTriangulateTwoObservers(t *testing.T) {
	target := Destination(nicosia, 30, 900)
	o1 := nicosia
	o2 := Destination(nicosia, 100, 700)
	obs := []BearingObservation{
		{Observer: o1, Bearing: InitialBearing(o1, target), Range: Haversine(o1, target)},
		{Observer: o2, Bearing: InitialBearing(o2, target), Range: Haversine(o2, target)},
	}
	got, err := Triangulate(obs)
	if err != nil {
		t.Fatal(err)
	}
	if d := Haversine(got, target); d > 2 {
		t.Fatalf("triangulated fix %.2f m from target", d)
	}
}

func TestTriangulateNoisyRanges(t *testing.T) {
	// With a biased range on one observation, the crossing fix and the
	// clean observation should pull the fused estimate closer than the
	// worst single range fix.
	target := Destination(nicosia, 30, 900)
	o1 := nicosia
	o2 := Destination(nicosia, 100, 700)
	bad := BearingObservation{Observer: o1, Bearing: InitialBearing(o1, target), Range: Haversine(o1, target) * 1.3}
	good := BearingObservation{Observer: o2, Bearing: InitialBearing(o2, target), Range: Haversine(o2, target)}
	fused, err := Triangulate([]BearingObservation{bad, good})
	if err != nil {
		t.Fatal(err)
	}
	badFix, _ := RangeFix(bad)
	if Haversine(fused, target) >= Haversine(badFix, target) {
		t.Fatalf("fusion (%.1f m) no better than worst fix (%.1f m)",
			Haversine(fused, target), Haversine(badFix, target))
	}
}

func TestTriangulateInsufficient(t *testing.T) {
	if _, err := Triangulate(nil); err != ErrInsufficient {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	// A single bearing-only observation cannot produce a fix.
	if _, err := Triangulate([]BearingObservation{{Observer: nicosia, Bearing: 10}}); err != ErrInsufficient {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestWeightedCentroid(t *testing.T) {
	a := nicosia
	b := Destination(a, 90, 100)
	c, err := WeightedCentroid([]LatLng{a, b}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := Haversine(c, Midpoint(a, b)); d > 0.5 {
		t.Fatalf("centroid %.2f m from midpoint", d)
	}
	// Weighting one point 3x pulls the centroid toward it.
	c2, _ := WeightedCentroid([]LatLng{a, b}, []float64{3, 1})
	if Haversine(c2, a) >= Haversine(c2, b) {
		t.Fatal("weighted centroid did not move toward the heavier point")
	}
	if _, err := WeightedCentroid(nil, nil); err != ErrInsufficient {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
}

func TestPolygonContains(t *testing.T) {
	// 1 km square around Nicosia.
	sq := Polygon{
		Destination(nicosia, 225, 707),
		Destination(nicosia, 315, 707),
		Destination(nicosia, 45, 707),
		Destination(nicosia, 135, 707),
	}
	if !sq.Contains(nicosia) {
		t.Fatal("centre must be inside")
	}
	if sq.Contains(Destination(nicosia, 0, 5000)) {
		t.Fatal("far point must be outside")
	}
	if (Polygon{nicosia, limasol}).Contains(nicosia) {
		t.Fatal("degenerate polygon contains nothing")
	}
}

func TestPolygonArea(t *testing.T) {
	// 1 km x 1 km square => 1e6 m^2 within 1%.
	a := nicosia
	b := Destination(a, 90, 1000)
	c := Destination(b, 0, 1000)
	d := Destination(a, 0, 1000)
	sq := Polygon{a, b, c, d}
	area := sq.AreaSquareMeters()
	if math.Abs(area-1e6) > 1e4 {
		t.Fatalf("area = %v, want ~1e6", area)
	}
	if (Polygon{a, b}).AreaSquareMeters() != 0 {
		t.Fatal("degenerate polygon must have zero area")
	}
}

func TestPolygonBoundingBox(t *testing.T) {
	pg := Polygon{{1, 2}, {3, -1}, {-2, 5}}
	sw, ne := pg.BoundingBox()
	if sw != (LatLng{-2, -1}) || ne != (LatLng{3, 5}) {
		t.Fatalf("bbox = %v %v", sw, ne)
	}
	sw, ne = Polygon(nil).BoundingBox()
	if sw != (LatLng{}) || ne != (LatLng{}) {
		t.Fatal("empty polygon bbox must be zero")
	}
}

func BenchmarkHaversine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Haversine(nicosia, limasol)
	}
}

func BenchmarkTriangulateThreeObservers(b *testing.B) {
	target := Destination(nicosia, 30, 900)
	obs := make([]BearingObservation, 3)
	for i := range obs {
		o := Destination(nicosia, float64(i*120), 500)
		obs[i] = BearingObservation{Observer: o, Bearing: InitialBearing(o, target), Range: Haversine(o, target)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Triangulate(obs); err != nil {
			b.Fatal(err)
		}
	}
}
