package geo

import (
	"errors"
	"math"
)

// ErrNoIntersection is returned when two bearing rays do not intersect
// in front of both observers, or the geometry is degenerate (parallel
// rays, coincident observers).
var ErrNoIntersection = errors.New("geo: bearing rays do not intersect")

// ErrInsufficient is returned when a fix is requested from fewer
// observations than the method needs.
var ErrInsufficient = errors.New("geo: insufficient observations for a fix")

// BearingObservation is a sighting of a target from a known observer
// position: the bearing to the target (degrees from north) and, when a
// monocular depth estimate is available, an approximate range in metres
// (Range <= 0 means "bearing only").
type BearingObservation struct {
	Observer LatLng
	Bearing  float64 // degrees clockwise from true north
	Range    float64 // metres; <= 0 when unknown
	Weight   float64 // relative confidence; <= 0 treated as 1
}

func (o BearingObservation) weight() float64 {
	if o.Weight <= 0 {
		return 1
	}
	return o.Weight
}

// IntersectBearings returns the point at which the bearing rays from two
// observers cross, computed on the local tangent plane at the first
// observer. It returns ErrNoIntersection when the rays are (near)
// parallel or the crossing lies behind either observer.
func IntersectBearings(a, b BearingObservation) (LatLng, error) {
	pr := NewProjection(a.Observer)
	pa := pr.ToENU(a.Observer)
	pb := pr.ToENU(b.Observer)

	// Direction unit vectors; bearings are from north, so east = sin,
	// north = cos.
	da := ENU{East: math.Sin(a.Bearing * math.Pi / 180), North: math.Cos(a.Bearing * math.Pi / 180)}
	db := ENU{East: math.Sin(b.Bearing * math.Pi / 180), North: math.Cos(b.Bearing * math.Pi / 180)}

	// Solve pa + t*da = pb + s*db.
	den := da.East*db.North - da.North*db.East
	if math.Abs(den) < 1e-9 {
		return LatLng{}, ErrNoIntersection
	}
	dx := pb.East - pa.East
	dy := pb.North - pa.North
	t := (dx*db.North - dy*db.East) / den
	s := (dx*da.North - dy*da.East) / den
	if t < 0 || s < 0 {
		return LatLng{}, ErrNoIntersection
	}
	return pr.ToLatLng(ENU{East: pa.East + t*da.East, North: pa.North + t*da.North}), nil
}

// RangeFix returns the target position implied by a single observation
// that carries both bearing and range: the destination point from the
// observer along the bearing at the estimated range.
func RangeFix(o BearingObservation) (LatLng, error) {
	if o.Range <= 0 {
		return LatLng{}, ErrInsufficient
	}
	return Destination(o.Observer, o.Bearing, o.Range), nil
}

// Triangulate fuses any number of bearing(+range) observations into a
// single position estimate. It forms a candidate fix from every
// range-carrying observation and every pair of bearing rays, then
// returns the confidence-weighted centroid of the candidates. This is
// the trigonometric + Haversine fusion used by Collaborative
// Localization (paper §III-C).
func Triangulate(obs []BearingObservation) (LatLng, error) {
	type cand struct {
		p LatLng
		w float64
	}
	var cands []cand
	for _, o := range obs {
		if p, err := RangeFix(o); err == nil {
			cands = append(cands, cand{p, o.weight()})
		}
	}
	for i := 0; i < len(obs); i++ {
		for j := i + 1; j < len(obs); j++ {
			p, err := IntersectBearings(obs[i], obs[j])
			if err != nil {
				continue
			}
			// A crossing fix uses information from two sightings;
			// weight it as their combined confidence.
			cands = append(cands, cand{p, obs[i].weight() + obs[j].weight()})
		}
	}
	if len(cands) == 0 {
		return LatLng{}, ErrInsufficient
	}
	pr := NewProjection(cands[0].p)
	var sumE, sumN, sumW float64
	for _, c := range cands {
		e := pr.ToENU(c.p)
		sumE += e.East * c.w
		sumN += e.North * c.w
		sumW += c.w
	}
	return pr.ToLatLng(ENU{East: sumE / sumW, North: sumN / sumW}), nil
}

// WeightedCentroid returns the weighted geodetic centroid of points,
// computed on the tangent plane at the first point. Weights <= 0 are
// treated as 1. Returns ErrInsufficient on an empty input.
func WeightedCentroid(points []LatLng, weights []float64) (LatLng, error) {
	if len(points) == 0 {
		return LatLng{}, ErrInsufficient
	}
	pr := NewProjection(points[0])
	var sumE, sumN, sumW float64
	for i, p := range points {
		w := 1.0
		if i < len(weights) && weights[i] > 0 {
			w = weights[i]
		}
		e := pr.ToENU(p)
		sumE += e.East * w
		sumN += e.North * w
		sumW += w
	}
	return pr.ToLatLng(ENU{East: sumE / sumW, North: sumN / sumW}), nil
}
