package colloc

import (
	"math/rand"
	"testing"

	"sesame/internal/geo"
	"sesame/internal/uavsim"
)

var origin = geo.LatLng{Lat: 35.1856, Lng: 33.3823}

// fleet builds a world with one affected UAV and n assistants hovering
// around it.
func fleet(t *testing.T, n int) (*uavsim.World, *uavsim.UAV, []*Observer) {
	t.Helper()
	w := uavsim.NewWorld(origin, 21)
	affected, err := w.AddUAV(uavsim.UAVConfig{ID: "affected", Home: origin, CruiseSpeedMS: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := affected.TakeOff(25); err != nil {
		t.Fatal(err)
	}
	var observers []*Observer
	for i := 0; i < n; i++ {
		home := geo.Destination(origin, float64(i)*360/float64(n)+45, 150)
		a, err := w.AddUAV(uavsim.UAVConfig{ID: "assist" + string(rune('0'+i)), Home: home})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.TakeOff(30); err != nil {
			t.Fatal(err)
		}
		o, err := NewObserver(a, w.Clock.Stream("obs"+string(rune('0'+i))))
		if err != nil {
			t.Fatal(err)
		}
		observers = append(observers, o)
	}
	if err := w.Run(12, 0.5); err != nil {
		t.Fatal(err)
	}
	return w, affected, observers
}

func TestNewObserverValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewObserver(nil, rng); err == nil {
		t.Error("nil assistant must fail")
	}
	w := uavsim.NewWorld(origin, 1)
	u, _ := w.AddUAV(uavsim.UAVConfig{ID: "a", Home: origin})
	if _, err := NewObserver(u, nil); err == nil {
		t.Error("nil rng must fail")
	}
}

func TestObserveAccuracy(t *testing.T) {
	_, affected, observers := fleet(t, 2)
	truth := affected.TruePosition()
	for _, o := range observers {
		obs, ok := o.Observe(affected)
		if !ok {
			t.Fatal("observer in range must see the target")
		}
		fix, err := geo.RangeFix(obs)
		if err != nil {
			t.Fatal(err)
		}
		if d := geo.Haversine(fix, truth); d > 40 {
			t.Fatalf("single observation fix %.1f m off", d)
		}
		if obs.Weight <= 0 || obs.Weight > 1 {
			t.Fatalf("weight = %v", obs.Weight)
		}
	}
}

func TestObserveOutOfRange(t *testing.T) {
	w := uavsim.NewWorld(origin, 2)
	far := geo.Destination(origin, 90, 5000)
	a, _ := w.AddUAV(uavsim.UAVConfig{ID: "a", Home: origin})
	b, _ := w.AddUAV(uavsim.UAVConfig{ID: "b", Home: far})
	o, _ := NewObserver(a, w.Clock.Stream("o"))
	if _, ok := o.Observe(b); ok {
		t.Fatal("5 km target must be invisible")
	}
	if _, ok := o.Observe(nil); ok {
		t.Fatal("nil target must fail")
	}
	a.Camera.Fail()
	if _, ok := o.Observe(b); ok {
		t.Fatal("failed camera must not observe")
	}
}

func TestLocalizerValidation(t *testing.T) {
	if _, err := NewLocalizer(0); err == nil {
		t.Error("alpha 0 must fail")
	}
	if _, err := NewLocalizer(1.5); err == nil {
		t.Error("alpha > 1 must fail")
	}
}

func TestLocalizerConvergesUnderNoise(t *testing.T) {
	_, affected, observers := fleet(t, 3)
	loc, err := NewLocalizer(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loc.Estimate(); ok {
		t.Fatal("fresh localizer must have no estimate")
	}
	truth := affected.TruePosition()
	for i := 0; i < 30; i++ {
		var obs []geo.BearingObservation
		for _, o := range observers {
			if m, ok := o.Observe(affected); ok {
				obs = append(obs, m)
			}
		}
		if _, err := loc.Update(obs); err != nil {
			t.Fatal(err)
		}
	}
	est, ok := loc.Estimate()
	if !ok {
		t.Fatal("estimate missing")
	}
	if d := geo.Haversine(est, truth); d > 8 {
		t.Fatalf("fused estimate %.1f m off after smoothing", d)
	}
	loc.Reset()
	if _, ok := loc.Estimate(); ok {
		t.Fatal("reset must clear estimate")
	}
}

func TestLocalizerNoObservations(t *testing.T) {
	loc, _ := NewLocalizer(0.5)
	if _, err := loc.Update(nil); err == nil {
		t.Fatal("no observations must fail")
	}
}

func TestControllerValidation(t *testing.T) {
	w, affected, observers := fleet(t, 2)
	if _, err := NewController(nil, origin, observers, w); err == nil {
		t.Error("nil affected must fail")
	}
	if _, err := NewController(affected, origin, nil, w); err == nil {
		t.Error("no observers must fail")
	}
	if _, err := NewController(affected, geo.LatLng{Lat: 999}, observers, w); err == nil {
		t.Error("invalid target must fail")
	}
	if _, err := NewController(affected, origin, observers, nil); err == nil {
		t.Error("nil world must fail")
	}
}

// TestFig7AssistedLanding reproduces the paper's Fig. 7: the spoofed
// UAV flies with no usable GPS, guided purely by the two assistants'
// fused observations, and lands within metres of the designated safe
// point.
func TestFig7AssistedLanding(t *testing.T) {
	w, affected, observers := fleet(t, 2)
	// The attack is detected: GPS is cut off entirely (paper: "the
	// spoofed UAV is operating without any GPS signal").
	affected.GPS.Mode = uavsim.GPSModeDropout
	safePoint := geo.Destination(origin, 135, 120)

	ctrl, err := NewController(affected, safePoint, observers, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600 && affected.Mode() != uavsim.ModeLanded; i++ {
		seen := ctrl.Step()
		if i == 0 && seen == 0 {
			t.Fatal("assistants must see the affected UAV at start")
		}
		if err := w.Step(0.5); err != nil {
			t.Fatal(err)
		}
	}
	if affected.Mode() != uavsim.ModeLanded {
		t.Fatalf("UAV never landed (mode %v, err %.1f m)", affected.Mode(), ctrl.LandingError())
	}
	if !ctrl.LandingCommanded() {
		t.Fatal("controller must have commanded the landing")
	}
	if e := ctrl.LandingError(); e > 10 {
		t.Fatalf("landing error %.1f m, want high-precision (< 10 m)", e)
	}
}

func TestMoreObserversImproveEstimation(t *testing.T) {
	// Ablation ABL-b shape: the fused position estimate of a hovering
	// target is more accurate with 3 observers than with 1 (mean error
	// over many fusion ticks and seeds).
	meanErr := func(n int, seed int64) float64 {
		w := uavsim.NewWorld(origin, seed)
		affected, _ := w.AddUAV(uavsim.UAVConfig{ID: "affected", Home: origin})
		_ = affected.TakeOff(25)
		var observers []*Observer
		for i := 0; i < n; i++ {
			home := geo.Destination(origin, float64(i)*120+30, 150)
			a, _ := w.AddUAV(uavsim.UAVConfig{ID: "as" + string(rune('0'+i)), Home: home})
			_ = a.TakeOff(30)
			o, _ := NewObserver(a, w.Clock.Stream("obs"+string(rune('0'+i))))
			observers = append(observers, o)
		}
		_ = w.Run(12, 0.5)
		loc, _ := NewLocalizer(0.4)
		var sum float64
		count := 0
		for i := 0; i < 100; i++ {
			var obs []geo.BearingObservation
			for _, o := range observers {
				if m, ok := o.Observe(affected); ok {
					obs = append(obs, m)
				}
			}
			if _, err := loc.Update(obs); err != nil {
				continue
			}
			if i >= 20 { // after smoothing warm-up
				est, _ := loc.Estimate()
				sum += geo.Haversine(est, affected.TruePosition())
				count++
			}
		}
		return sum / float64(count)
	}
	var one, three float64
	for seed := int64(1); seed <= 6; seed++ {
		one += meanErr(1, seed)
		three += meanErr(3, seed)
	}
	if three >= one {
		t.Fatalf("3 observers (%.2f m avg) not better than 1 (%.2f m avg)", three/6, one/6)
	}
}

func BenchmarkControllerStep(b *testing.B) {
	w := uavsim.NewWorld(origin, 9)
	affected, _ := w.AddUAV(uavsim.UAVConfig{ID: "affected", Home: origin})
	_ = affected.TakeOff(25)
	var observers []*Observer
	for i := 0; i < 2; i++ {
		a, _ := w.AddUAV(uavsim.UAVConfig{ID: "as" + string(rune('0'+i)), Home: geo.Destination(origin, float64(i)*180+45, 150)})
		_ = a.TakeOff(30)
		o, _ := NewObserver(a, w.Clock.Stream("o"+string(rune('0'+i))))
		observers = append(observers, o)
	}
	_ = w.Run(12, 0.5)
	ctrl, _ := NewController(affected, geo.Destination(origin, 135, 120), observers, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Step()
	}
}
