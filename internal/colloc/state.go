package colloc

import (
	"errors"

	"sesame/internal/geo"
)

// ControllerState is the controller's serializable mutable state for
// the flight recorder (internal/flightrec). The affected UAV, the
// observers and their RNGs are wiring: restore rebuilds them (the
// observer noise streams are checkpointed as clock stream positions)
// and overlays this state.
type ControllerState struct {
	Target    geo.LatLng `json:"target"`
	Desired   geo.ENU    `json:"desired"`
	Landed    bool       `json:"landed"`
	LastObsOK int        `json:"last_obs_ok"`
	// LocalizerEst is the fused position estimate; LocalizerHas
	// reports whether one exists yet.
	LocalizerEst geo.LatLng `json:"localizer_est"`
	LocalizerHas bool       `json:"localizer_has"`
}

// State exports the controller's mutable state.
func (c *Controller) State() ControllerState {
	return ControllerState{
		Target:       c.Target,
		Desired:      c.desired,
		Landed:       c.landed,
		LastObsOK:    c.lastObsOK,
		LocalizerEst: c.Localizer.est,
		LocalizerHas: c.Localizer.hasEst,
	}
}

// RestoreState overwrites the mutable state of a freshly built
// controller (NewController installs the guidance override; a landed
// controller releases it again, exactly as Step does on capture).
func (c *Controller) RestoreState(s ControllerState) error {
	if c.Localizer == nil {
		return errors.New("colloc: restore into controller without localizer")
	}
	c.Target = s.Target
	c.desired = s.Desired
	c.landed = s.Landed
	c.lastObsOK = s.LastObsOK
	c.Localizer.est = s.LocalizerEst
	c.Localizer.hasEst = s.LocalizerHas
	if c.landed && c.Affected != nil {
		c.Affected.GuidanceOverride = nil
	}
	return nil
}
