// Package colloc implements Collaborative Localization (paper §III-C,
// Figs. 2, 3 and 7): nearby UAVs equipped with cameras detect an
// affected (GPS-denied or spoofed) UAV, estimate bearing and monocular
// depth to it in real time, and fuse those observations through
// trigonometric triangulation and the Haversine formula into a position
// estimate. The estimate then drives the affected UAV — which has no
// usable GPS — to a safe landing at a designated high-precision point,
// reproducing the Fig. 7 behaviour.
package colloc

import (
	"errors"
	"fmt"
	"math/rand"

	"sesame/internal/geo"
	"sesame/internal/uavsim"
)

// Observer is the detection-and-tracking stack running on one
// assisting UAV: tinyYOLO-style drone detection plus monocular depth
// estimation, modelled as bearing/range measurements with calibrated
// noise.
type Observer struct {
	// Assistant is the UAV carrying the camera.
	Assistant *uavsim.UAV
	// BearingNoiseDeg is the 1-sigma bearing error.
	BearingNoiseDeg float64
	// RangeNoiseFrac is the 1-sigma relative monocular depth error.
	RangeNoiseFrac float64
	// MaxRangeM bounds visual detection range.
	MaxRangeM float64

	rng *rand.Rand
}

// NewObserver wires an observer on the assistant with default
// camera/depth noise (2 deg bearing, 5% depth, 400 m range).
func NewObserver(assistant *uavsim.UAV, rng *rand.Rand) (*Observer, error) {
	if assistant == nil {
		return nil, errors.New("colloc: nil assistant")
	}
	if rng == nil {
		return nil, errors.New("colloc: nil rng")
	}
	return &Observer{
		Assistant:       assistant,
		BearingNoiseDeg: 2,
		RangeNoiseFrac:  0.05,
		MaxRangeM:       400,
		rng:             rng,
	}, nil
}

// Observe measures the target from the assistant's current position.
// ok is false when the target is out of visual range or the
// assistant's camera is down.
func (o *Observer) Observe(target *uavsim.UAV) (geo.BearingObservation, bool) {
	if target == nil || !o.Assistant.Camera.OK {
		return geo.BearingObservation{}, false
	}
	from := o.Assistant.TruePosition()
	to := target.TruePosition()
	dist := geo.Haversine(from, to)
	if dist > o.MaxRangeM || dist < 1 {
		return geo.BearingObservation{}, false
	}
	bearing := geo.InitialBearing(from, to) + o.rng.NormFloat64()*o.BearingNoiseDeg
	rng := dist * (1 + o.rng.NormFloat64()*o.RangeNoiseFrac)
	if rng < 1 {
		rng = 1
	}
	// Confidence falls off with distance (smaller target pixels).
	w := 1 - dist/(2*o.MaxRangeM)
	return geo.BearingObservation{
		Observer: from,
		Bearing:  bearing,
		Range:    rng,
		Weight:   w,
	}, true
}

// Localizer fuses observations over time with exponential smoothing on
// the local tangent plane.
type Localizer struct {
	// Alpha is the smoothing weight of the newest fix (0..1].
	Alpha float64

	est    geo.LatLng
	hasEst bool
}

// NewLocalizer returns a fuser with the given smoothing factor.
func NewLocalizer(alpha float64) (*Localizer, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("colloc: alpha %v out of (0,1]", alpha)
	}
	return &Localizer{Alpha: alpha}, nil
}

// Update fuses the instantaneous observations into the running
// estimate and returns it.
func (l *Localizer) Update(obs []geo.BearingObservation) (geo.LatLng, error) {
	fix, err := geo.Triangulate(obs)
	if err != nil {
		return geo.LatLng{}, err
	}
	if !l.hasEst {
		l.est = fix
		l.hasEst = true
		return l.est, nil
	}
	pr := geo.NewProjection(l.est)
	delta := pr.ToENU(fix)
	l.est = pr.ToLatLng(delta.Scale(l.Alpha))
	return l.est, nil
}

// Estimate returns the current fused position, if any.
func (l *Localizer) Estimate() (geo.LatLng, bool) { return l.est, l.hasEst }

// Reset clears the estimate.
func (l *Localizer) Reset() { l.hasEst = false }

// Controller runs the full Fig. 7 assisted-landing loop: each tick it
// collects observations of the affected UAV from every assistant,
// fuses them, and steers the affected UAV toward the safe landing
// point using only the fused estimate (never the UAV's own GPS). When
// the estimate is within LandingRadiusM of the target, it commands the
// landing.
type Controller struct {
	Affected  *uavsim.UAV
	Target    geo.LatLng
	Observers []*Observer
	Localizer *Localizer
	// GainPerS converts position error to commanded velocity.
	GainPerS float64
	// LandingRadiusM is the capture radius for the final descent.
	LandingRadiusM float64

	proj      *geo.Projection
	desired   geo.ENU
	landed    bool
	lastObsOK int
}

// NewController wires the loop and installs the guidance override on
// the affected UAV.
func NewController(affected *uavsim.UAV, target geo.LatLng, observers []*Observer, world *uavsim.World) (*Controller, error) {
	if affected == nil {
		return nil, errors.New("colloc: nil affected UAV")
	}
	if world == nil {
		return nil, errors.New("colloc: nil world")
	}
	if len(observers) == 0 {
		return nil, errors.New("colloc: need at least one observer")
	}
	if !target.Valid() {
		return nil, errors.New("colloc: invalid landing target")
	}
	loc, err := NewLocalizer(0.4)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		Affected:       affected,
		Target:         target,
		Observers:      observers,
		Localizer:      loc,
		GainPerS:       0.5,
		LandingRadiusM: 3,
		proj:           world.Projection(),
	}
	affected.GuidanceOverride = func(_ *uavsim.UAV, _ float64) geo.ENU {
		return c.desired
	}
	return c, nil
}

// Step runs one observation/fusion/guidance cycle. It returns the
// number of assistants that saw the affected UAV this tick.
func (c *Controller) Step() int {
	if c.landed {
		c.desired = geo.ENU{}
		return 0
	}
	var obs []geo.BearingObservation
	for _, o := range c.Observers {
		if m, ok := o.Observe(c.Affected); ok {
			obs = append(obs, m)
		}
	}
	c.lastObsOK = len(obs)
	if len(obs) > 0 {
		if _, err := c.Localizer.Update(obs); err == nil {
			// fused estimate refreshed
			_ = err
		}
	}
	est, ok := c.Localizer.Estimate()
	if !ok {
		// No estimate yet: hold.
		c.desired = geo.ENU{}
		return c.lastObsOK
	}
	errVec := c.proj.ToENU(c.Target).Sub(c.proj.ToENU(est))
	if errVec.Norm() <= c.LandingRadiusM {
		c.desired = geo.ENU{}
		c.Affected.GuidanceOverride = nil
		c.Affected.Land()
		c.landed = true
		return c.lastObsOK
	}
	c.desired = errVec.Scale(c.GainPerS)
	return c.lastObsOK
}

// LandingCommanded reports whether the final descent was initiated.
func (c *Controller) LandingCommanded() bool { return c.landed }

// LastObserverCount returns how many assistants saw the target on the
// previous Step.
func (c *Controller) LastObserverCount() int { return c.lastObsOK }

// LandingError returns the ground distance from the affected UAV's
// true position to the designated landing point.
func (c *Controller) LandingError() float64 {
	return geo.Haversine(c.Affected.TruePosition(), c.Target)
}
