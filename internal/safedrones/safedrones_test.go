package safedrones

import (
	"math"
	"math/rand"
	"testing"

	"sesame/internal/fta"
)

func TestArrheniusFactor(t *testing.T) {
	if f := ArrheniusFactor(25, 25, 0.55); math.Abs(f-1) > 1e-12 {
		t.Fatalf("reference factor = %v, want 1", f)
	}
	hot := ArrheniusFactor(70, 25, 0.55)
	if hot <= 5 || hot >= 50 {
		t.Fatalf("70C factor = %v, want O(10)", hot)
	}
	cold := ArrheniusFactor(0, 25, 0.55)
	if cold >= 1 {
		t.Fatalf("cold factor = %v, want < 1", cold)
	}
	hotter := ArrheniusFactor(80, 25, 0.55)
	if hotter <= hot {
		t.Fatal("factor must be monotone in temperature")
	}
}

func TestPropulsionChainQuad(t *testing.T) {
	ch, err := PropulsionChain(4, 4, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Quad: m0 -> failure at rate 4*lambda.
	p, err := ch.FailureProbability("m0", 1000, "failure")
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-4e-4*1000)
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("quad PoF = %v, want %v", p, want)
	}
}

func TestPropulsionChainHexTolerates(t *testing.T) {
	hex, err := PropulsionChain(6, 4, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	quad, _ := PropulsionChain(4, 4, 1e-4)
	ph, _ := hex.FailureProbability("m0", 2000, "failure")
	pq, _ := quad.FailureProbability("m0", 2000, "failure")
	if ph >= pq {
		t.Fatalf("reconfigurable hex (%v) must beat quad (%v)", ph, pq)
	}
	// From one failure the hex still has slack.
	p1, _ := hex.FailureProbability("m1", 2000, "failure")
	if p1 >= 1 || p1 <= ph {
		t.Fatalf("degraded hex PoF = %v (fresh %v)", p1, ph)
	}
}

func TestPropulsionChainValidation(t *testing.T) {
	if _, err := PropulsionChain(2, 2, 1e-4); err == nil {
		t.Error("2 motors must fail")
	}
	if _, err := PropulsionChain(4, 0, 1e-4); err == nil {
		t.Error("minMotors 0 must fail")
	}
	if _, err := PropulsionChain(4, 5, 1e-4); err == nil {
		t.Error("minMotors > motors must fail")
	}
	if _, err := PropulsionChain(4, 4, 0); err == nil {
		t.Error("zero rate must fail")
	}
}

func TestBatteryRateModel(t *testing.T) {
	m := DefaultBatteryRateModel()
	nominal := m.Rate(BatteryStress{ChargePct: 100, TempC: 25})
	if math.Abs(nominal-m.BaseRate) > 1e-12 {
		t.Fatalf("nominal rate = %v, want base %v", nominal, m.BaseRate)
	}
	hot := m.Rate(BatteryStress{ChargePct: 100, TempC: 70})
	if hot <= nominal*5 {
		t.Fatalf("hot rate = %v, want >> nominal", hot)
	}
	low := m.Rate(BatteryStress{ChargePct: 20, TempC: 25})
	if low <= nominal {
		t.Fatal("low charge must raise the rate")
	}
	faulted := m.Rate(BatteryStress{ChargePct: 40, TempC: 70})
	if faulted < 20*nominal {
		t.Fatalf("faulted rate only %vx nominal", faulted/nominal)
	}
}

func TestBatteryChain(t *testing.T) {
	m := DefaultBatteryRateModel()
	ch, err := m.Chain(BatteryStress{ChargePct: 80, TempC: 25})
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := ch.FailureProbability("ok", 0, "failure")
	p1, _ := ch.FailureProbability("ok", 600, "failure")
	if p0 != 0 || p1 <= 0 {
		t.Fatalf("battery chain PoF: %v then %v", p0, p1)
	}
}

func TestProcessorChainWatchdog(t *testing.T) {
	with, err := ProcessorChain(1e-4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	without, err := ProcessorChain(1e-4, 0)
	if err != nil {
		t.Fatal(err)
	}
	pw, _ := with.FailureProbability("ok", 5000, "failure")
	pwo, _ := without.FailureProbability("ok", 5000, "failure")
	if pw >= pwo {
		t.Fatalf("watchdog must help: with=%v without=%v", pw, pwo)
	}
	if _, err := ProcessorChain(0, 0.1); err == nil {
		t.Error("zero SER rate must fail")
	}
}

func TestNewMonitorValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewMonitor("", cfg); err == nil {
		t.Error("empty id must fail")
	}
	bad := cfg
	bad.EmergencyPoF = 0
	if _, err := NewMonitor("u1", bad); err == nil {
		t.Error("zero threshold must fail")
	}
	bad = cfg
	bad.MediumPoF = bad.HighPoF / 2
	if _, err := NewMonitor("u1", bad); err == nil {
		t.Error("inverted levels must fail")
	}
}

func TestMonitorNominalFlight(t *testing.T) {
	m, err := NewMonitor("u1", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var last Assessment
	for ts := 0.0; ts <= 510; ts += 1 {
		last, err = m.Observe(Telemetry{
			Time: ts, ChargePct: 100 - ts*0.06, TempC: 35, CommsOK: true, Airborne: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if last.Advice != AdviceContinue {
			t.Fatalf("t=%v: advice %v on a nominal flight", ts, last.Advice)
		}
	}
	if last.Level != LevelHigh {
		t.Fatalf("nominal mission ended at level %v, PoF %v", last.Level, last.PoF)
	}
	if last.PoF <= 0 || last.PoF > 0.2 {
		t.Fatalf("nominal PoF = %v", last.PoF)
	}
	if last.Anomaly {
		t.Fatal("nominal flight flagged anomalous")
	}
}

// runBatteryScenario reproduces the §V-A battery collapse under the
// given policy and returns the assessments at each second.
func runBatteryScenario(t *testing.T, policy Policy) []Assessment {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = policy
	m, err := NewMonitor("u1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []Assessment
	for ts := 0.0; ts <= 600; ts += 1 {
		tel := Telemetry{Time: ts, CommsOK: true, Airborne: true}
		if ts < 250 {
			tel.ChargePct = 80
			tel.TempC = 35
		} else {
			tel.ChargePct = 40
			tel.TempC = 70
			tel.Overheating = true
		}
		a, err := m.Observe(tel)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

func TestBatteryCollapseEDDIPolicy(t *testing.T) {
	as := runBatteryScenario(t, PolicyEDDI)
	// Before the fault: continue, low PoF.
	if as[249].Advice != AdviceContinue || as[249].PoF > 0.2 {
		t.Fatalf("pre-fault: advice=%v PoF=%v", as[249].Advice, as[249].PoF)
	}
	// Immediately after the fault the EDDI keeps flying.
	if as[260].Advice != AdviceContinue {
		t.Fatalf("EDDI aborted immediately: %v", as[260].Advice)
	}
	if !as[260].Anomaly {
		t.Fatal("anomaly must be flagged")
	}
	// PoF rises monotonically and crosses 0.9 near the 510 s mark.
	cross := -1
	for i, a := range as {
		if a.PoF >= 0.9 {
			cross = i
			break
		}
	}
	if cross < 0 {
		t.Fatalf("PoF never crossed 0.9 (final %v)", as[len(as)-1].PoF)
	}
	if cross < 420 || cross > 580 {
		t.Fatalf("PoF crossed 0.9 at t=%d, want near 510", cross)
	}
	if as[cross].Advice != AdviceEmergencyLand {
		t.Fatalf("advice at crossing = %v", as[cross].Advice)
	}
	// The paper's claim: the mission (ending at 510 s) is essentially
	// complete before the emergency threshold fires.
	if cross < 460 {
		t.Fatalf("threshold fired too early (t=%d) to finish a 510 s mission", cross)
	}
}

func TestBatteryCollapseReactivePolicy(t *testing.T) {
	as := runBatteryScenario(t, PolicyReactive)
	if as[249].Advice != AdviceContinue {
		t.Fatalf("pre-fault reactive advice = %v", as[249].Advice)
	}
	if as[251].Advice != AdviceReturnToBase {
		t.Fatalf("reactive policy must abort on anomaly, got %v", as[251].Advice)
	}
}

func TestMonitorRotorFailureQuad(t *testing.T) {
	m, _ := NewMonitor("u1", DefaultConfig())
	a, err := m.Observe(Telemetry{Time: 10, ChargePct: 90, TempC: 30, CommsOK: true, Airborne: true, FailedRotors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Advice != AdviceEmergencyLand {
		t.Fatalf("quad rotor loss advice = %v, want emergency-land", a.Advice)
	}
	if a.Components["propulsion"] != 1 {
		t.Fatalf("propulsion PoF = %v, want 1", a.Components["propulsion"])
	}
}

func TestMonitorRotorFailureHex(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Motors = 6
	cfg.MinMotors = 4
	m, err := NewMonitor("u1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Observe(Telemetry{Time: 10, ChargePct: 90, TempC: 30, CommsOK: true, Airborne: true, FailedRotors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Advice == AdviceEmergencyLand {
		t.Fatal("hex must tolerate one rotor loss")
	}
	if a.Components["propulsion"] >= 1 {
		t.Fatal("hex propulsion must not be certain-failed")
	}
	a, _ = m.Observe(Telemetry{Time: 11, ChargePct: 90, TempC: 30, CommsOK: true, Airborne: true, FailedRotors: 3})
	if a.Advice != AdviceEmergencyLand {
		t.Fatalf("3 losses on hex = %v, want emergency-land", a.Advice)
	}
}

func TestMonitorCommsOutage(t *testing.T) {
	m, _ := NewMonitor("u1", DefaultConfig())
	a, err := m.Observe(Telemetry{Time: 5, ChargePct: 90, TempC: 30, CommsOK: false, Airborne: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Components["comms"] != 1 {
		t.Fatalf("comms PoF = %v, want 1", a.Components["comms"])
	}
	if a.Advice != AdviceEmergencyLand {
		t.Fatalf("total comms loss drives PoF to 1; advice = %v", a.Advice)
	}
}

func TestMonitorTimeMonotonic(t *testing.T) {
	m, _ := NewMonitor("u1", DefaultConfig())
	if _, err := m.Observe(Telemetry{Time: 10, ChargePct: 90, TempC: 30, CommsOK: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(Telemetry{Time: 5, ChargePct: 90, TempC: 30, CommsOK: true}); err == nil {
		t.Fatal("time reversal must fail")
	}
}

func TestGroundedUAVAccumulatesNoBatteryHazard(t *testing.T) {
	m, _ := NewMonitor("u1", DefaultConfig())
	var a Assessment
	var err error
	for ts := 0.0; ts <= 500; ts += 10 {
		a, err = m.Observe(Telemetry{Time: ts, ChargePct: 90, TempC: 30, CommsOK: true, Airborne: false})
		if err != nil {
			t.Fatal(err)
		}
	}
	if a.Components["battery"] != 0 {
		t.Fatalf("grounded battery PoF = %v, want 0", a.Components["battery"])
	}
}

func TestDesignTimeTreeVsStatic(t *testing.T) {
	cfg := DefaultConfig()
	stress := BatteryStress{ChargePct: 80, TempC: 35}
	dyn, err := DesignTimeTree(cfg, stress)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := StaticTree(cfg, stress)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range []float64{60, 300, 600} {
		pd, err := dyn.Probability(ts)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := stat.Probability(ts)
		if err != nil {
			t.Fatal(err)
		}
		if pd <= 0 || ps <= 0 || pd >= 1 || ps >= 1 {
			t.Fatalf("t=%v: PoFs out of range dyn=%v stat=%v", ts, pd, ps)
		}
		// The static flattening is pessimistic for the battery (it
		// collapses the degraded path into direct failure).
		if ps <= pd {
			t.Fatalf("t=%v: static (%v) should be pessimistic vs dynamic (%v)", ts, ps, pd)
		}
	}
	mcs := dyn.MinimalCutSets()
	if len(mcs) != 4 {
		t.Fatalf("UAV-loss tree must have 4 single-event cut sets, got %v", mcs)
	}
}

func TestLevelAndAdviceStrings(t *testing.T) {
	if LevelHigh.String() != "high" || LevelMedium.String() != "medium" || LevelLow.String() != "low" {
		t.Fatal("level names wrong")
	}
	for a := AdviceContinue; a <= AdviceEmergencyLand; a++ {
		if a.String() == "" {
			t.Fatal("advice name empty")
		}
	}
	if Level(9).String() == "" || Advice(9).String() == "" {
		t.Fatal("unknown values must render")
	}
}

func BenchmarkMonitorObserve(b *testing.B) {
	b.ReportAllocs()
	m, _ := NewMonitor("u1", DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Observe(Telemetry{
			Time: float64(i), ChargePct: 80, TempC: 40, CommsOK: true, Airborne: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestComposePoFMatchesTree pins the inlined UAV-loss OR composition to
// the fta engine's tree evaluation it replaced: same clamping, same
// child order, bit-identical result.
func TestComposePoFMatchesTree(t *testing.T) {
	treePoF := func(prop, batt, proc, comms float64) float64 {
		var events []fta.Event
		for _, e := range []struct {
			name string
			p    float64
		}{
			{"propulsion", prop}, {"battery", batt}, {"processor", proc}, {"comms", comms},
		} {
			p := e.p
			if p < 0 {
				p = 0
			}
			if p > 1 {
				p = 1
			}
			ev, err := fta.NewFixedEvent(e.name, p)
			if err != nil {
				t.Fatal(err)
			}
			events = append(events, ev)
		}
		top, err := fta.NewGate("uav-loss", fta.OR, events...)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := fta.NewTree(top)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tree.Probability(0)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	rng := rand.New(rand.NewSource(11))
	cases := [][4]float64{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{-0.5, 1.5, 0.3, 0.7},
		{0.123456789, 0.987654321, 1e-15, 0.5},
	}
	for i := 0; i < 200; i++ {
		cases = append(cases, [4]float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()})
	}
	for _, c := range cases {
		want := treePoF(c[0], c[1], c[2], c[3])
		got := composePoF(c[0], c[1], c[2], c[3])
		if got != want {
			t.Fatalf("composePoF(%v) = %v, tree gives %v (must be bit-identical)", c, got, want)
		}
	}
}
