package safedrones

import "fmt"

// State is the monitor's serializable mutable state for the flight
// recorder (internal/flightrec). The Markov chains, scratch buffers,
// workspace and failure indexes are derived from the configuration and
// rebuilt by NewMonitor; only the incrementally evolving values are
// checkpointed.
type State struct {
	LastTime         float64 `json:"last_time"`
	Started          bool    `json:"started"`
	BattHazard       float64 `json:"batt_hazard"`
	CommsOut         bool    `json:"comms_out"`
	ObservedFailures int     `json:"observed_failures"`
	// PropDist and ProcDist are the incrementally stepped propulsion
	// and processor state distributions.
	PropDist []float64 `json:"prop_dist"`
	ProcDist []float64 `json:"proc_dist"`
}

// State exports the monitor's mutable state.
func (m *Monitor) State() State {
	return State{
		LastTime:         m.lastTime,
		Started:          m.started,
		BattHazard:       m.battHazard,
		CommsOut:         m.commsOut,
		ObservedFailures: m.observedFailures,
		PropDist:         append([]float64(nil), m.propDist...),
		ProcDist:         append([]float64(nil), m.procDist...),
	}
}

// Restore overwrites the monitor's mutable state. The monitor must
// have been built with the same configuration (same chain shapes) as
// the one the state was exported from.
func (m *Monitor) Restore(s State) error {
	if len(s.PropDist) != len(m.propDist) {
		return fmt.Errorf("safedrones: %s: propulsion distribution has %d states, want %d",
			m.uav, len(s.PropDist), len(m.propDist))
	}
	if len(s.ProcDist) != len(m.procDist) {
		return fmt.Errorf("safedrones: %s: processor distribution has %d states, want %d",
			m.uav, len(s.ProcDist), len(m.procDist))
	}
	m.lastTime = s.LastTime
	m.started = s.Started
	m.battHazard = s.BattHazard
	m.commsOut = s.CommsOut
	m.observedFailures = s.ObservedFailures
	copy(m.propDist, s.PropDist)
	copy(m.procDist, s.ProcDist)
	return nil
}
