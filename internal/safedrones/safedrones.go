// Package safedrones implements the SafeDrones runtime reliability
// monitor (paper §III-A1; Aslansefat et al., IMBSA 2022): a per-UAV
// executable safety model that combines Markov-based complex basic
// events for propulsion, battery and processor into a fault tree and
// continuously re-evaluates the probability of failure (PoF) from live
// telemetry. The PoF feeds the SafeDrones reliability-estimation
// guarantees of the Fig. 1 ConSert and drives the mission-adaptation
// policy evaluated in §V-A.
package safedrones

import (
	"errors"
	"fmt"
	"math"

	"sesame/internal/fta"
	"sesame/internal/markov"
)

// Level grades the reliability estimate into the three guarantee
// levels the UAV ConSert consumes (Fig. 1: High/Medium/Low).
type Level int

// Reliability levels.
const (
	LevelLow Level = iota
	LevelMedium
	LevelHigh
)

func (l Level) String() string {
	switch l {
	case LevelHigh:
		return "high"
	case LevelMedium:
		return "medium"
	case LevelLow:
		return "low"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Advice is the mission adaptation SafeDrones proposes.
type Advice int

// Advice values, mirroring the UAV ConSert action space.
const (
	AdviceContinue Advice = iota
	AdviceHold
	AdviceReturnToBase
	AdviceEmergencyLand
)

func (a Advice) String() string {
	switch a {
	case AdviceContinue:
		return "continue"
	case AdviceHold:
		return "hold"
	case AdviceReturnToBase:
		return "return-to-base"
	case AdviceEmergencyLand:
		return "emergency-land"
	default:
		return fmt.Sprintf("Advice(%d)", int(a))
	}
}

// Policy selects the mission-adaptation strategy, enabling the paper's
// with/without-SESAME comparison.
type Policy int

// Policies.
const (
	// PolicyReactive is the non-SESAME baseline of §V-A: abort to base
	// on the first battery anomaly.
	PolicyReactive Policy = iota
	// PolicyEDDI is the SESAME behaviour: keep flying while the
	// estimated PoF stays below the emergency threshold.
	PolicyEDDI
)

// Config parameterizes a monitor.
type Config struct {
	Motors int
	// MinMotors is the controllability floor (4 for a quad, 4 for a
	// hex that tolerates 2 losses).
	MinMotors int
	// MotorRate is the per-motor failure rate (per second).
	MotorRate float64
	Battery   BatteryRateModel
	// ProcessorRate is the SER-driven hang rate; ProcessorRecovery the
	// watchdog recovery rate.
	ProcessorRate     float64
	ProcessorRecovery float64
	// CommsRate is the C2-link failure rate.
	CommsRate float64
	// EmergencyPoF is the threshold at which the monitor advises an
	// emergency landing (0.9 in §V-A).
	EmergencyPoF float64
	// HighPoF / MediumPoF bound the reliability levels:
	// PoF < HighPoF -> high, < MediumPoF -> medium, else low.
	HighPoF   float64
	MediumPoF float64
	// AnomalyChargePct is the battery level treated as an anomaly by
	// the reactive baseline.
	AnomalyChargePct float64
	Policy           Policy
}

// DefaultConfig returns the calibration used throughout the paper's
// experiments: a quad M300-class frame with PolicyEDDI.
func DefaultConfig() Config {
	return Config{
		Motors:            4,
		MinMotors:         4,
		MotorRate:         1e-5,
		Battery:           DefaultBatteryRateModel(),
		ProcessorRate:     1e-5,
		ProcessorRecovery: 0.1,
		CommsRate:         5e-5,
		// Medium reliability — and with it the ConSert's permission to
		// continue the mission — extends to the emergency threshold,
		// matching the paper's §V-A behaviour of flying on until
		// PoF = 0.9.
		EmergencyPoF:     0.9,
		HighPoF:          0.2,
		MediumPoF:        0.9,
		AnomalyChargePct: 45,
		Policy:           PolicyEDDI,
	}
}

// Telemetry is one observation fed to the monitor.
type Telemetry struct {
	Time         float64 // simulation seconds
	ChargePct    float64
	TempC        float64
	Overheating  bool
	FailedRotors int
	CommsOK      bool
	Airborne     bool
}

// Assessment is the monitor's output after an observation.
type Assessment struct {
	Time float64
	// PoF is the overall probability of failure (the Fig. 5 curve).
	PoF float64
	// Components holds per-subsystem PoF: "propulsion", "battery",
	// "processor", "comms".
	Components map[string]float64
	Level      Level
	Advice     Advice
	// Anomaly reports whether the raw telemetry would trip the
	// reactive baseline.
	Anomaly bool
}

// Monitor is the per-UAV SafeDrones runtime model.
type Monitor struct {
	uav string
	cfg Config

	propChain  *markov.Chain
	procChain  *markov.Chain
	lastTime   float64
	started    bool
	battHazard float64
	commsOut   bool

	// Incrementally stepped state distributions (the Markov property
	// makes per-tick stepping exact and keeps Observe O(1) regardless
	// of mission length).
	procDist markov.Distribution
	propDist markov.Distribution
	// Scratch distributions the transient solver writes into; swapped
	// with the live ones after each solve so steady-state Observe does
	// not allocate.
	procScratch markov.Distribution
	propScratch markov.Distribution
	// ws is this monitor's uniformization workspace. Each monitor owns
	// its own, so per-UAV Observe calls stay race-free under the
	// platform's concurrent fleet scheduler.
	ws markov.Workspace
	// Failure-state indexes resolved once at construction.
	propFailIdx int
	procFailIdx int

	// rotor observation filter
	observedFailures int
}

// NewMonitor builds a monitor for the named UAV.
func NewMonitor(uav string, cfg Config) (*Monitor, error) {
	if uav == "" {
		return nil, errors.New("safedrones: empty UAV id")
	}
	if cfg.EmergencyPoF <= 0 || cfg.EmergencyPoF > 1 {
		return nil, fmt.Errorf("safedrones: EmergencyPoF %v out of range", cfg.EmergencyPoF)
	}
	if cfg.HighPoF <= 0 || cfg.MediumPoF <= cfg.HighPoF {
		return nil, errors.New("safedrones: require 0 < HighPoF < MediumPoF")
	}
	prop, err := PropulsionChain(cfg.Motors, cfg.MinMotors, cfg.MotorRate)
	if err != nil {
		return nil, err
	}
	proc, err := ProcessorChain(cfg.ProcessorRate, cfg.ProcessorRecovery)
	if err != nil {
		return nil, err
	}
	propDist, err := prop.PointMass("m0")
	if err != nil {
		return nil, err
	}
	procDist, err := proc.PointMass("ok")
	if err != nil {
		return nil, err
	}
	propFailIdx, err := prop.StateIndex("failure")
	if err != nil {
		return nil, err
	}
	procFailIdx, err := proc.StateIndex("failure")
	if err != nil {
		return nil, err
	}
	return &Monitor{
		uav: uav, cfg: cfg,
		propChain: prop, procChain: proc,
		propDist: propDist, procDist: procDist,
		propScratch: make(markov.Distribution, len(propDist)),
		procScratch: make(markov.Distribution, len(procDist)),
		propFailIdx: propFailIdx, procFailIdx: procFailIdx,
	}, nil
}

// UAV returns the monitored vehicle's id.
func (m *Monitor) UAV() string { return m.uav }

// Observe folds one telemetry sample into the model and returns the
// updated assessment. Samples must arrive in non-decreasing time order.
func (m *Monitor) Observe(tel Telemetry) (Assessment, error) {
	if m.started && tel.Time < m.lastTime {
		return Assessment{}, fmt.Errorf("safedrones: time went backwards (%v after %v)", tel.Time, m.lastTime)
	}
	dt := 0.0
	if m.started {
		dt = tel.Time - m.lastTime
	}
	m.started = true
	m.lastTime = tel.Time

	// Battery: integrate the stress-dependent hazard while airborne.
	if tel.Airborne && dt > 0 {
		rate := m.cfg.Battery.Rate(BatteryStress{ChargePct: tel.ChargePct, TempC: tel.TempC})
		m.battHazard += rate * dt
	}
	battPoF := 1 - math.Exp(-m.battHazard)

	// Propulsion: the Markov state restarts on an observed rotor
	// change, then steps forward with elapsed time.
	tolerable := m.cfg.Motors - m.cfg.MinMotors
	if tel.FailedRotors != m.observedFailures {
		m.observedFailures = tel.FailedRotors
		if tel.FailedRotors <= tolerable {
			d, err := m.propChain.PointMass(fmt.Sprintf("m%d", tel.FailedRotors))
			if err != nil {
				return Assessment{}, err
			}
			m.propDist = d
		}
	} else if dt > 0 {
		if err := m.propChain.TransientAtInto(m.propScratch, m.propDist, dt, &m.ws); err != nil {
			return Assessment{}, err
		}
		m.propDist, m.propScratch = m.propScratch, m.propDist
	}
	var propPoF float64
	if m.observedFailures > tolerable {
		propPoF = 1
	} else {
		propPoF = m.propDist[m.propFailIdx]
	}

	// Processor: the SER chain stepped over the mission.
	if dt > 0 {
		if err := m.procChain.TransientAtInto(m.procScratch, m.procDist, dt, &m.ws); err != nil {
			return Assessment{}, err
		}
		m.procDist, m.procScratch = m.procScratch, m.procDist
	}
	procPoF := m.procDist[m.procFailIdx]

	// Comms: exponential, saturating to 1 on an observed outage.
	var commsPoF float64
	if !tel.CommsOK {
		m.commsOut = true
	}
	if m.commsOut {
		commsPoF = 1
	} else {
		commsPoF = 1 - math.Exp(-m.cfg.CommsRate*tel.Time)
	}

	// Compose through the UAV-loss fault tree: any subsystem loss
	// fails the vehicle.
	pof := composePoF(propPoF, battPoF, procPoF, commsPoF)

	anomaly := tel.Overheating || tel.ChargePct < m.cfg.AnomalyChargePct ||
		tel.FailedRotors > 0 || !tel.CommsOK

	a := Assessment{
		Time: tel.Time,
		PoF:  pof,
		Components: map[string]float64{
			"propulsion": propPoF,
			"battery":    battPoF,
			"processor":  procPoF,
			"comms":      commsPoF,
		},
		Anomaly: anomaly,
	}
	switch {
	case pof < m.cfg.HighPoF:
		a.Level = LevelHigh
	case pof < m.cfg.MediumPoF:
		a.Level = LevelMedium
	default:
		a.Level = LevelLow
	}
	a.Advice = m.advise(pof, tel, anomaly)
	return a, nil
}

// composePoF evaluates the UAV-loss OR tree over the four subsystem
// PoFs. It is the inline form of the fta engine's OR gate over fixed
// events in child order [propulsion, battery, processor, comms] —
// 1 - Π(1-p) with each p clamped to [0,1] — kept bit-identical to the
// tree evaluation (pinned by TestComposePoFMatchesTree) so the per-tick
// hot path neither builds a tree nor allocates.
func composePoF(prop, batt, proc, comms float64) float64 {
	prod := 1.0
	for _, p := range [...]float64{prop, batt, proc, comms} {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		prod *= 1 - p
	}
	return 1 - prod
}

// advise maps the assessment to a mission adaptation under the
// configured policy.
func (m *Monitor) advise(pof float64, tel Telemetry, anomaly bool) Advice {
	tolerable := m.cfg.Motors - m.cfg.MinMotors
	if tel.FailedRotors > tolerable {
		return AdviceEmergencyLand
	}
	if pof >= m.cfg.EmergencyPoF {
		return AdviceEmergencyLand
	}
	switch m.cfg.Policy {
	case PolicyReactive:
		if anomaly {
			return AdviceReturnToBase
		}
	case PolicyEDDI:
		// Tolerate anomalies while the modelled PoF stays acceptable;
		// degrade to return-to-base in the low-reliability band.
		if pof >= m.cfg.MediumPoF && tel.FailedRotors > 0 {
			return AdviceReturnToBase
		}
	}
	return AdviceContinue
}

// DesignTimeTree builds the full SafeDrones fault tree with Markov
// complex basic events at a fixed stress level — the design-time
// artefact exported into the Safety EDDI, and the subject of the
// complex-basic-event ablation.
func DesignTimeTree(cfg Config, stress BatteryStress) (*fta.Tree, error) {
	prop, err := PropulsionChain(cfg.Motors, cfg.MinMotors, cfg.MotorRate)
	if err != nil {
		return nil, err
	}
	propEv, err := fta.NewComplexBasicEvent("propulsion", prop, "m0", "failure")
	if err != nil {
		return nil, err
	}
	battChain, err := cfg.Battery.Chain(stress)
	if err != nil {
		return nil, err
	}
	battEv, err := fta.NewComplexBasicEvent("battery", battChain, "ok", "failure")
	if err != nil {
		return nil, err
	}
	procChain, err := ProcessorChain(cfg.ProcessorRate, cfg.ProcessorRecovery)
	if err != nil {
		return nil, err
	}
	procEv, err := fta.NewComplexBasicEvent("processor", procChain, "ok", "failure")
	if err != nil {
		return nil, err
	}
	commsEv, err := fta.NewBasicEvent("comms", cfg.CommsRate)
	if err != nil {
		return nil, err
	}
	top, err := fta.NewGate("uav-loss", fta.OR, propEv, battEv, procEv, commsEv)
	if err != nil {
		return nil, err
	}
	return fta.NewTree(top)
}

// StaticTree is the ablation counterpart of DesignTimeTree: the same
// structure with every complex basic event flattened to a plain
// exponential basic event at its initial total exit rate. Comparing the
// two quantifies what the Markov structure contributes.
func StaticTree(cfg Config, stress BatteryStress) (*fta.Tree, error) {
	propEv, err := fta.NewBasicEvent("propulsion", float64(cfg.Motors)*cfg.MotorRate)
	if err != nil {
		return nil, err
	}
	battEv, err := fta.NewBasicEvent("battery", 4*cfg.Battery.Rate(BatteryStress{ChargePct: stress.ChargePct, TempC: stress.TempC}))
	if err != nil {
		return nil, err
	}
	procEv, err := fta.NewBasicEvent("processor", cfg.ProcessorRate)
	if err != nil {
		return nil, err
	}
	commsEv, err := fta.NewBasicEvent("comms", cfg.CommsRate)
	if err != nil {
		return nil, err
	}
	top, err := fta.NewGate("uav-loss", fta.OR, propEv, battEv, procEv, commsEv)
	if err != nil {
		return nil, err
	}
	return fta.NewTree(top)
}
