package safedrones

import (
	"errors"
	"fmt"
	"math"

	"sesame/internal/markov"
)

// Boltzmann constant in eV/K, used by the Arrhenius temperature
// acceleration model for battery wear.
const boltzmannEV = 8.617e-5

// ArrheniusFactor returns the failure-rate acceleration of operating at
// tempC relative to refC with activation energy eaEV. At tempC == refC
// the factor is 1; hotter is super-linearly worse.
func ArrheniusFactor(tempC, refC, eaEV float64) float64 {
	tk := tempC + 273.15
	rk := refC + 273.15
	if tk <= 0 || rk <= 0 {
		return 1
	}
	return math.Exp(eaEV / boltzmannEV * (1/rk - 1/tk))
}

// PropulsionChain builds the Markov propulsion reliability model of
// Aslansefat et al. (DoCEIS 2019): states count failed motors; a
// reconfigurable frame (hex/octa) tolerates failures down to minMotors,
// a quad fails on the first motor loss. State names are "m<k>" for k
// failed motors plus the absorbing "failure".
func PropulsionChain(motors, minMotors int, motorRate float64) (*markov.Chain, error) {
	if motors < 3 {
		return nil, fmt.Errorf("safedrones: %d motors is not a multirotor", motors)
	}
	if minMotors < 1 || minMotors > motors {
		return nil, fmt.Errorf("safedrones: minMotors %d out of range", minMotors)
	}
	if motorRate <= 0 {
		return nil, errors.New("safedrones: motor rate must be positive")
	}
	tolerable := motors - minMotors // failures survivable
	states := make([]string, 0, tolerable+2)
	for k := 0; k <= tolerable; k++ {
		states = append(states, fmt.Sprintf("m%d", k))
	}
	states = append(states, "failure")
	ch, err := markov.NewChain(states...)
	if err != nil {
		return nil, err
	}
	for k := 0; k <= tolerable; k++ {
		from := fmt.Sprintf("m%d", k)
		rate := float64(motors-k) * motorRate
		var to string
		if k == tolerable {
			to = "failure"
		} else {
			to = fmt.Sprintf("m%d", k+1)
		}
		if err := ch.AddTransition(from, to, rate); err != nil {
			return nil, err
		}
	}
	return ch, nil
}

// BatteryStress captures the runtime observables that modulate the
// battery failure rate.
type BatteryStress struct {
	ChargePct float64
	TempC     float64
}

// BatteryRateModel maps observed battery stress to an instantaneous
// failure rate (per second). It is the "complex basic event" regime
// model: the monitor integrates this rate into a cumulative hazard.
type BatteryRateModel struct {
	// BaseRate is the healthy-pack failure rate at ReferenceTempC and
	// full charge.
	BaseRate float64
	// ReferenceTempC anchors the Arrhenius factor.
	ReferenceTempC float64
	// ActivationEnergyEV controls temperature sensitivity.
	ActivationEnergyEV float64
	// LowChargeKnee is the charge percentage below which depletion
	// stress ramps up; LowChargeSteepness scales the ramp.
	LowChargeKnee      float64
	LowChargeSteepness float64
}

// DefaultBatteryRateModel is calibrated so that the paper's §V-A
// scenario (charge collapse 80%->40% with thermal fault at t=250 s)
// crosses the 0.9 PoF threshold near the 510 s mission end.
func DefaultBatteryRateModel() BatteryRateModel {
	return BatteryRateModel{
		BaseRate:           5e-5,
		ReferenceTempC:     25,
		ActivationEnergyEV: 0.7,
		LowChargeKnee:      50,
		LowChargeSteepness: 18,
	}
}

// Rate returns the instantaneous battery failure rate under stress.
func (m BatteryRateModel) Rate(s BatteryStress) float64 {
	rate := m.BaseRate * ArrheniusFactor(s.TempC, m.ReferenceTempC, m.ActivationEnergyEV)
	if s.ChargePct < m.LowChargeKnee && m.LowChargeKnee > 0 {
		rate *= 1 + m.LowChargeSteepness*(m.LowChargeKnee-s.ChargePct)/m.LowChargeKnee
	}
	return rate
}

// Chain builds a 3-state battery CTMC (ok -> degraded -> failure) whose
// rates reflect a fixed stress level; used for design-time FTA and the
// complex-basic-event ablation.
func (m BatteryRateModel) Chain(s BatteryStress) (*markov.Chain, error) {
	rate := m.Rate(s)
	ch, err := markov.NewChain("ok", "degraded", "failure")
	if err != nil {
		return nil, err
	}
	// Degradation happens at 3x the outright failure rate; a degraded
	// pack fails 5x faster. The two-path structure is what makes this a
	// complex basic event rather than a plain exponential.
	if err := ch.AddTransition("ok", "degraded", 3*rate); err != nil {
		return nil, err
	}
	if err := ch.AddTransition("ok", "failure", rate); err != nil {
		return nil, err
	}
	if err := ch.AddTransition("degraded", "failure", 5*rate); err != nil {
		return nil, err
	}
	return ch, nil
}

// ProcessorChain models the onboard computer (Jetson-class) with a
// soft-error-driven failure rate: ok -> hung -> failure with a watchdog
// recovery path, following the dependable-multicore treatment of
// Ottavi et al. (IEEE D&T 2014).
func ProcessorChain(serRate, watchdogRecoveryRate float64) (*markov.Chain, error) {
	if serRate <= 0 || watchdogRecoveryRate < 0 {
		return nil, errors.New("safedrones: invalid processor rates")
	}
	ch, err := markov.NewChain("ok", "hung", "failure")
	if err != nil {
		return nil, err
	}
	if err := ch.AddTransition("ok", "hung", serRate); err != nil {
		return nil, err
	}
	if watchdogRecoveryRate > 0 {
		if err := ch.AddTransition("hung", "ok", watchdogRecoveryRate); err != nil {
			return nil, err
		}
	}
	// A hang that persists past the watchdog escalates.
	if err := ch.AddTransition("hung", "failure", serRate*100); err != nil {
		return nil, err
	}
	return ch, nil
}
