package scenario_test

// The property-based conformance suite: every loadable scenario —
// generated or hand-written — must build a world that honors the
// repo's determinism contract (serial == pooled digests, sharded
// digests identical across cell counts, checkpoint/resume identity)
// and its safety invariants (every vehicle accounted for at every
// tick, no negative battery, only defined modes/actions/decisions,
// missions only complete with the whole fleet in a terminal state).
//
// The suite lives in the external test package so it can drive the
// scenarios through internal/platform, which sits above scenario in
// the import graph.

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sesame/internal/platform"
	"sesame/internal/scenario"
)

// update regenerates testdata/golden_digests.json from the current
// build: go test ./internal/scenario -run Golden -update
var update = flag.Bool("update", false, "rewrite golden digest testdata")

// knownModes is the complete uavsim flight-mode vocabulary; a status
// outside it means the platform lost track of a vehicle's state.
var knownModes = map[string]bool{
	"idle": true, "mission": true, "hold": true, "return-to-base": true,
	"landing": true, "emergency-landing": true, "landed": true, "crashed": true,
}

// terminalModes are the modes a completed mission may leave a vehicle
// in — everything else means the mission "completed" mid-flight.
var terminalModes = map[string]bool{
	"idle": true, "hold": true, "landed": true, "crashed": true,
}

// launch builds the scenario into a running mission with the given
// scheduler layout. Cells is digested, so checkpoint pairs must agree
// on it; Workers is not.
func launch(t *testing.T, sc *scenario.Scenario, workers, cells int) *platform.ScenarioRun {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.Workers = workers
	cfg.Cells = cells
	run, err := platform.LaunchScenario(sc, cfg)
	if err != nil {
		t.Fatalf("LaunchScenario(%s): %v", sc.Name, err)
	}
	t.Cleanup(run.Platform.Close)
	return run
}

// digest replicates the platform test suite's digestPlatform: a hash
// over everything observable about a run — the Fig. 4 status, the
// mission decision, the full event history and the fleet availability.
func digest(t *testing.T, p *platform.Platform) string {
	t.Helper()
	blob := struct {
		Status   platform.Status
		Decision string
		History  interface{}
	}{p.Status(), p.Decision().String(), p.Coordinator.History("")}
	data, err := json.Marshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if a, err := p.Availability(); err == nil {
		data = append(data, []byte(fmt.Sprintf("avail=%.12f", a))...)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

// checkSafety asserts the per-tick safety invariants on a running
// scenario: the status accounts for exactly the declared fleet, no
// battery reads negative, and every mode/action/decision is a defined
// enum value (the fail-safe vocabulary is always reachable, never an
// out-of-range code).
func checkSafety(t *testing.T, sc *scenario.Scenario, p *platform.Platform, tag string) {
	t.Helper()
	st := p.Status()
	if len(st.UAVs) != len(sc.Fleet) {
		t.Fatalf("%s: status accounts for %d of %d vehicles", tag, len(st.UAVs), len(sc.Fleet))
	}
	seen := make(map[string]bool, len(st.UAVs))
	for _, u := range st.UAVs {
		seen[u.ID] = true
		if !knownModes[u.Mode] {
			t.Fatalf("%s: %s in undefined mode %q", tag, u.ID, u.Mode)
		}
		if !(u.BatteryPct >= 0) { // also catches NaN
			t.Fatalf("%s: %s battery %v below zero", tag, u.ID, u.BatteryPct)
		}
		if strings.HasPrefix(u.Action, "UAVAction(") {
			t.Fatalf("%s: %s advised undefined action %q", tag, u.ID, u.Action)
		}
	}
	for _, id := range sc.FleetIDs() {
		if !seen[id] {
			t.Fatalf("%s: vehicle %s lost from status", tag, id)
		}
	}
	if strings.HasPrefix(st.Decision, "MissionDecision(") {
		t.Fatalf("%s: undefined mission decision %q", tag, st.Decision)
	}
	if p.MissionComplete() {
		for _, u := range st.UAVs {
			if !terminalModes[u.Mode] {
				t.Fatalf("%s: mission complete with %s still %q", tag, u.ID, u.Mode)
			}
		}
	}
}

// tickN drives n platform ticks, checking the safety invariants after
// every one.
func tickN(t *testing.T, sc *scenario.Scenario, p *platform.Platform, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := p.Tick(); err != nil {
			t.Fatalf("%s: tick %d: %v", tag, i, err)
		}
		checkSafety(t, sc, p, tag)
	}
}

// drainClock fires every pending clock event (delayed link frames) at
// its scheduled stamp, the quiescence Checkpoint requires. The same
// drain happens on both sides of a checkpoint pair, so the pair stays
// comparable.
func drainClock(t *testing.T, p *platform.Platform) {
	t.Helper()
	for i := 0; p.World.Clock.Pending() > 0; i++ {
		if i >= 1<<20 {
			t.Fatal("clock did not quiesce")
		}
		p.World.Clock.Step()
	}
}

// fly launches the scenario, runs it for ticks with invariant checks,
// and returns its digest.
func fly(t *testing.T, sc *scenario.Scenario, workers, cells, ticks int, tag string) string {
	t.Helper()
	run := launch(t, sc, workers, cells)
	tickN(t, sc, run.Platform, ticks, tag)
	return digest(t, run.Platform)
}

// TestScenarioProperty is the generative acceptance gate: at least 100
// generated scenarios (including in -short), cycling through every
// archetype, must each pass the full determinism battery.
//
//   - serial (Workers=1) == pooled (Workers=8) on the unsharded
//     scheduler;
//   - sharded runs bit-identical across cell counts (2 vs 3). Sharded
//     digests intentionally differ from unsharded ones whenever a
//     detection scene is present — split detector streams are part of
//     the sharded contract and Cells is digested for exactly that
//     reason — so the gate compares shardings to each other, like the
//     platform's own sharded suite;
//   - a checkpoint taken mid-flight and restored onto a freshly built
//     pooled platform must finish bit-identically to the donor run.
//
// Safety invariants are checked after every tick of every run.
func TestScenarioProperty(t *testing.T) {
	const cases = 102
	const ticks = 40
	archs := scenario.Archetypes()
	for i := 0; i < cases; i++ {
		i := i
		arch := archs[i%len(archs)]
		t.Run(fmt.Sprintf("%03d-%s", i, arch), func(t *testing.T) {
			t.Parallel()
			seed := int64(i)*7919 + 5
			sc, err := scenario.Generate(seed, arch)
			if err != nil {
				t.Fatal(err)
			}

			serial := fly(t, sc, 1, 1, ticks, "serial")
			if pooled := fly(t, sc, 8, 1, ticks, "pooled"); pooled != serial {
				t.Errorf("pooled run diverges from serial: %s != %s", pooled, serial)
			}
			sharded := fly(t, sc, 1, 2, ticks, "sharded-2")
			if got := fly(t, sc, 8, 3, ticks, "sharded-3"); got != sharded {
				t.Errorf("sharded digests diverge across cell counts: %s != %s", got, sharded)
			}

			// Checkpoint/resume identity: kill the serial run halfway,
			// restore onto a pooled rebuild, fly both to the same end.
			donor := launch(t, sc, 1, 1)
			tickN(t, sc, donor.Platform, ticks/2, "donor")
			drainClock(t, donor.Platform)
			snap, err := donor.Platform.Checkpoint()
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			resumed := launch(t, sc, 8, 1)
			if err := resumed.Platform.RestoreCheckpoint(snap); err != nil {
				t.Fatalf("restore: %v", err)
			}
			tickN(t, sc, donor.Platform, ticks/2, "donor-cont")
			tickN(t, sc, resumed.Platform, ticks/2, "resumed")
			if got, want := digest(t, resumed.Platform), digest(t, donor.Platform); got != want {
				t.Errorf("resumed run diverges from donor: %s != %s", got, want)
			}
		})
	}
}

// TestGeneratedScenarioStability pins that generation is a pure
// function of (seed, archetype): same inputs, same digest; different
// archetypes on the same seed, unrelated worlds.
func TestGeneratedScenarioStability(t *testing.T) {
	for _, arch := range scenario.Archetypes() {
		a, err := scenario.Generate(99, arch)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scenario.Generate(99, arch)
		if err != nil {
			t.Fatal(err)
		}
		if a.Digest() != b.Digest() {
			t.Errorf("%s: generation not reproducible: %s != %s", arch, a.Digest(), b.Digest())
		}
	}
	m, _ := scenario.Generate(7, scenario.MaritimeSAR)
	u, _ := scenario.Generate(7, scenario.UrbanCanyon)
	if m.Digest() == u.Digest() {
		t.Error("different archetypes produced identical scenarios")
	}
}

// golden is one pinned canonical scenario: its schema digest and the
// digest of a 50-tick serial run under the default platform config.
type golden struct {
	File           string `json:"file"`
	ScenarioDigest string `json:"scenario_digest"`
	RunDigest      string `json:"run_digest"`
}

const goldenPath = "testdata/golden_digests.json"

// examplesDir is the repo's commented canonical scenario set.
const examplesDir = "../../examples/scenarios"

// loadExample reads and strictly parses one canonical scenario file.
func loadExample(t *testing.T, file string) *scenario.Scenario {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(examplesDir, file))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Load(data)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestCanonicalScenarioGoldens validates every example scenario —
// loads it strictly, flies it for 50 ticks with the safety invariants
// checked each tick — and pins both its schema digest and its run
// digest against testdata. A golden drift means the scenario layer
// changed observable behavior; regenerate deliberately with -update.
func TestCanonicalScenarioGoldens(t *testing.T) {
	entries, err := os.ReadDir(examplesDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) < 3 {
		t.Fatalf("expected at least 3 canonical scenarios in %s, found %d", examplesDir, len(files))
	}

	var got []golden
	for _, file := range files {
		sc := loadExample(t, file)
		run := launch(t, sc, 0, 0)
		tickN(t, sc, run.Platform, 50, file)
		got = append(got, golden{
			File:           file,
			ScenarioDigest: sc.Digest(),
			RunDigest:      digest(t, run.Platform),
		})
	}

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	var want []golden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden file pins %d scenarios, examples dir has %d (regenerate with -update)",
			len(want), len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("golden drift for %s:\n got %+v\nwant %+v", got[i].File, got[i], want[i])
		}
	}
}
