package scenario

import (
	"fmt"

	"sesame/internal/detection"
	"sesame/internal/geo"
	"sesame/internal/linksim"
	"sesame/internal/uavsim"
)

// This file turns a validated Scenario into running simulation pieces.
// Every stochastic draw comes from the world's seeded clock streams in
// a fixed order, so building the same scenario twice yields
// bit-identical worlds — the property the conformance suite gates on.

// pack converts the schema battery model into a uavsim pack, starting
// from the default and overriding only the declared fields.
func (b *Battery) pack() *uavsim.Battery {
	p := uavsim.DefaultBattery()
	if b.EnduranceMin > 0 {
		p.BaseDrainPctPerS = 100.0 / (b.EnduranceMin * 60)
	}
	if b.NominalVoltage > 0 {
		p.NominalVoltage = b.NominalVoltage
	}
	if b.SpeedDrainFactor > 0 {
		p.SpeedDrainFactor = b.SpeedDrainFactor
	}
	return p
}

// BuildWorld constructs the seeded world with the scenario's wind
// field and heterogeneous fleet. Vehicles launch from the origin.
func (s *Scenario) BuildWorld() (*uavsim.World, error) {
	w := uavsim.NewWorld(s.Origin.LatLng(), s.Seed)
	if s.Wind != nil {
		w.Wind = geo.ENU{East: s.Wind.EastMS, North: s.Wind.NorthMS}
		w.GustSigmaMS = s.Wind.GustSigmaMS
		w.GustTauS = s.Wind.GustTauS
	}
	for _, v := range s.Fleet {
		cfg := uavsim.UAVConfig{
			ID:            v.ID,
			Home:          s.Origin.LatLng(),
			Kind:          uavsim.VehicleKind(v.Kind),
			CruiseSpeedMS: v.CruiseSpeedMS,
			ClimbRateMS:   v.ClimbRateMS,
			MinSpeedMS:    v.MinSpeedMS,
			TurnRateDegS:  v.TurnRateDegS,
			Rotors:        v.Rotors,
		}
		if v.Battery != nil {
			cfg.Battery = v.Battery.pack()
		}
		if _, err := w.AddUAV(cfg); err != nil {
			return nil, fmt.Errorf("scenario: fleet %s: %w", v.ID, err)
		}
	}
	return w, nil
}

// BuildScene scatters the scenario's persons over its sites, dealing
// them round-robin (sites earlier in the list get the remainder). The
// draw order is fixed — one named stream per site — so the scene is
// part of the deterministic world. Returns nil when Persons is zero.
func (s *Scenario) BuildScene(w *uavsim.World) (*detection.Scene, error) {
	if s.Persons == 0 {
		return nil, nil
	}
	scene := &detection.Scene{Area: s.Sites[0].Polygon()}
	next := 0
	for i, site := range s.Sites {
		n := s.Persons / len(s.Sites)
		if i < s.Persons%len(s.Sites) {
			n++
		}
		if n == 0 {
			continue
		}
		sub, err := detection.NewRandomScene(site.Polygon(), n, s.CriticalProb,
			w.Clock.Stream(fmt.Sprintf("scenario/scene/%d", i)))
		if err != nil {
			return nil, fmt.Errorf("scenario: sites[%d]: %w", i, err)
		}
		for _, p := range sub.Persons {
			p.ID = next
			next++
			scene.Persons = append(scene.Persons, p)
		}
	}
	return scene, nil
}

// ApplyLinks installs the scenario's link-quality rules on an attached
// linksim layer. Outage windows are relative to start (mission start),
// matching the timeline convention. Rules apply in declaration order;
// a later profile for the same vehicle overwrites an earlier one.
func (s *Scenario) ApplyLinks(layer *linksim.Layer, start float64) {
	for _, rule := range s.Links {
		ids := []string{rule.UAV}
		if rule.UAV == "" {
			ids = s.FleetIDs()
		}
		for _, id := range ids {
			lk := layer.Link(id)
			lk.SetProfile(rule.Profile)
			if rule.OutageToS > rule.OutageFromS {
				lk.AddOutage(start+rule.OutageFromS, start+rule.OutageToS)
			}
		}
	}
}

// ScheduleTimeline registers every timeline event as a world fault,
// offset from start (mission start).
func (s *Scenario) ScheduleTimeline(w *uavsim.World, start float64) error {
	for i, ev := range s.Timeline {
		at := start + ev.AtS
		var f uavsim.Fault
		switch ev.Kind {
		case EventBatteryCollapse:
			f = uavsim.BatteryCollapseFault(at, ev.UAV, ev.TempC, ev.ChargePct)
		case EventGPSSpoof:
			f = uavsim.GPSSpoofFault(at, ev.UAV, ev.BearingDeg, ev.DriftMS)
		case EventRotorFailure:
			f = uavsim.RotorFailureFault(at, ev.UAV, ev.Rotor)
		case EventCommsFailure:
			f = uavsim.CommsFailureFault(at, ev.UAV)
		case EventCameraFailure:
			f = uavsim.CameraFailureFault(at, ev.UAV)
		default:
			return fmt.Errorf("scenario: timeline[%d]: unknown kind %q", i, ev.Kind)
		}
		if err := w.ScheduleFault(f); err != nil {
			return fmt.Errorf("scenario: timeline[%d]: %w", i, err)
		}
	}
	return nil
}
