package scenario

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"sesame/internal/chaos"
	"sesame/internal/linksim"
)

// valid returns a minimal scenario that passes Validate; mutation
// tests each break one field.
func valid() *Scenario {
	return &Scenario{
		Name:     "unit-test",
		Seed:     1,
		Origin:   Point{Lat: 35.18, Lng: 33.38},
		HorizonS: 600,
		Sites: []Site{{Area: []Point{
			{Lat: 35.181, Lng: 33.381}, {Lat: 35.181, Lng: 33.384},
			{Lat: 35.184, Lng: 33.384}, {Lat: 35.184, Lng: 33.381},
		}}},
		Fleet: []Vehicle{
			{ID: "u1"},
			{ID: "u2", Kind: KindFixedWing, CruiseSpeedMS: 18, MinSpeedMS: 10},
		},
	}
}

func TestLoadStrictness(t *testing.T) {
	base, err := json.Marshal(valid())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(base); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}

	// chaos.LoadPlan's contract: unknown fields fail loudly.
	unknown := []byte(strings.Replace(string(base), `"name"`, `"wibble":1,"name"`, 1))
	if _, err := Load(unknown); err == nil || !strings.Contains(err.Error(), "wibble") {
		t.Errorf("unknown field not rejected: %v", err)
	}

	// Trailing data after the scenario object fails loudly.
	if _, err := Load(append(append([]byte{}, base...), []byte("{}")...)); err == nil ||
		!strings.Contains(err.Error(), "trailing data") {
		t.Errorf("trailing data not rejected: %v", err)
	}

	// Malformed JSON fails as a parse error.
	if _, err := Load([]byte(`{"name":`)); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Errorf("malformed JSON not rejected: %v", err)
	}

	// Out-of-range values are rejected at load, not at build.
	bad := valid()
	bad.HorizonS = -5
	data, _ := json.Marshal(bad)
	if _, err := Load(data); err == nil || !strings.Contains(err.Error(), "horizon_s") {
		t.Errorf("out-of-range horizon not rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	inf := func() float64 { var z float64; return 1 / z }
	cases := []struct {
		name string
		mut  func(s *Scenario)
		want string
	}{
		{"empty-name", func(s *Scenario) { s.Name = "" }, "name"},
		{"name-space", func(s *Scenario) { s.Name = "has space" }, "name"},
		{"origin-lat", func(s *Scenario) { s.Origin.Lat = 91 }, "origin"},
		{"origin-nan", func(s *Scenario) { s.Origin.Lng = inf() }, "origin"},
		{"horizon-zero", func(s *Scenario) { s.HorizonS = 0 }, "horizon_s"},
		{"horizon-huge", func(s *Scenario) { s.HorizonS = 1e9 }, "horizon_s"},
		{"persons-negative", func(s *Scenario) { s.Persons = -1 }, "persons"},
		{"critical-prob", func(s *Scenario) { s.CriticalProb = 1.5 }, "critical_prob"},
		{"wind-speed", func(s *Scenario) { s.Wind = &Wind{EastMS: 100} }, "wind"},
		{"gust-sigma", func(s *Scenario) { s.Wind = &Wind{GustSigmaMS: -1} }, "gust_sigma_ms"},
		{"gust-tau", func(s *Scenario) { s.Wind = &Wind{GustTauS: -2} }, "gust_tau_s"},
		{"gust-no-tau", func(s *Scenario) { s.Wind = &Wind{GustSigmaMS: 1} }, "gust_tau_s"},
		{"visibility-zero", func(s *Scenario) { s.Visibility = &Visibility{Value: 0} }, "visibility"},
		{"visibility-thermal", func(s *Scenario) { s.Visibility = &Visibility{Value: 1, ThermalBelow: 2} }, "thermal_below"},
		{"no-sites", func(s *Scenario) { s.Sites = nil }, "sites"},
		{"site-name", func(s *Scenario) { s.Sites[0].Name = "bad name!" }, "name"},
		{"site-two-vertices", func(s *Scenario) { s.Sites[0].Area = s.Sites[0].Area[:2] }, "vertices"},
		{"site-bad-vertex", func(s *Scenario) { s.Sites[0].Area[0].Lat = -91 }, "vertex"},
		{"site-far-vertex", func(s *Scenario) { s.Sites[0].Area[0] = Point{Lat: 36.5, Lng: 33.38} }, "beyond"},
		{"site-degenerate", func(s *Scenario) {
			s.Sites[0].Area = []Point{
				{Lat: 35.181, Lng: 33.381}, {Lat: 35.181, Lng: 33.384}, {Lat: 35.181, Lng: 33.382},
			}
		}, "degenerate"},
		{"no-fleet", func(s *Scenario) { s.Fleet = nil }, "fleet"},
		{"fleet-bad-id", func(s *Scenario) { s.Fleet[0].ID = "u 1" }, "id"},
		{"fleet-dup-id", func(s *Scenario) { s.Fleet[1] = Vehicle{ID: "u1"} }, "duplicate"},
		{"fleet-bad-kind", func(s *Scenario) { s.Fleet[0].Kind = "zeppelin" }, "kind"},
		{"fleet-speed", func(s *Scenario) { s.Fleet[0].CruiseSpeedMS = 500 }, "cruise_speed_ms"},
		{"fleet-climb-nan", func(s *Scenario) { s.Fleet[0].ClimbRateMS = inf() }, "climb_rate_ms"},
		{"min-speed-rotorcraft", func(s *Scenario) { s.Fleet[0].MinSpeedMS = 5 }, "fixed-wing only"},
		{"min-above-cruise", func(s *Scenario) { s.Fleet[1].MinSpeedMS = 20 }, "above cruise"},
		{"rotors", func(s *Scenario) { s.Fleet[0].Rotors = 13 }, "rotors"},
		{"battery-endurance", func(s *Scenario) { s.Fleet[0].Battery = &Battery{EnduranceMin: -1} }, "endurance_min"},
		{"battery-voltage", func(s *Scenario) { s.Fleet[0].Battery = &Battery{NominalVoltage: 2000} }, "nominal_voltage"},
		{"battery-drain", func(s *Scenario) { s.Fleet[0].Battery = &Battery{SpeedDrainFactor: 200} }, "speed_drain_factor"},
		{"sites-outnumber-fleet", func(s *Scenario) {
			s.Sites = append(s.Sites, s.Sites[0], s.Sites[0])
		}, "at least as many vehicles"},
		{"link-unknown-uav", func(s *Scenario) { s.Links = []Link{{UAV: "ghost"}} }, "unknown uav"},
		{"link-drop-prob", func(s *Scenario) {
			s.Links = []Link{{Profile: linksim.Profile{DropProb: 2}}}
		}, "drop_prob"},
		{"link-delay-window", func(s *Scenario) {
			s.Links = []Link{{Profile: linksim.Profile{DelayMinS: 2, DelayMaxS: 1}}}
		}, "delay window"},
		{"link-hold", func(s *Scenario) {
			s.Links = []Link{{Profile: linksim.Profile{HoldMaxS: -1}}}
		}, "hold_max_s"},
		{"link-outage", func(s *Scenario) { s.Links = []Link{{OutageFromS: 10, OutageToS: 5}} }, "outage"},
		{"event-late", func(s *Scenario) {
			s.Timeline = []Event{{AtS: 601, UAV: "u1", Kind: EventCommsFailure}}
		}, "at_s"},
		{"event-unknown-uav", func(s *Scenario) {
			s.Timeline = []Event{{AtS: 1, UAV: "ghost", Kind: EventCommsFailure}}
		}, "unknown uav"},
		{"event-unknown-kind", func(s *Scenario) {
			s.Timeline = []Event{{AtS: 1, UAV: "u1", Kind: "volcano"}}
		}, "unknown kind"},
		{"battery-temp", func(s *Scenario) {
			s.Timeline = []Event{{AtS: 1, UAV: "u1", Kind: EventBatteryCollapse, TempC: 0, ChargePct: 50}}
		}, "temp_c"},
		{"battery-charge", func(s *Scenario) {
			s.Timeline = []Event{{AtS: 1, UAV: "u1", Kind: EventBatteryCollapse, TempC: 70, ChargePct: 150}}
		}, "charge_pct"},
		{"spoof-bearing", func(s *Scenario) {
			s.Timeline = []Event{{AtS: 1, UAV: "u1", Kind: EventGPSSpoof, BearingDeg: 360, DriftMS: 3}}
		}, "bearing_deg"},
		{"spoof-drift", func(s *Scenario) {
			s.Timeline = []Event{{AtS: 1, UAV: "u1", Kind: EventGPSSpoof, BearingDeg: 90, DriftMS: 0}}
		}, "drift_ms"},
		{"rotor-index", func(s *Scenario) {
			// u1 is a default multirotor: 4 motors, so index 4 is out.
			s.Timeline = []Event{{AtS: 1, UAV: "u1", Kind: EventRotorFailure, Rotor: 4}}
		}, "rotor"},
		{"rotor-index-fixed-wing", func(s *Scenario) {
			// u2 is fixed-wing: a single motor, index 1 is out.
			s.Timeline = []Event{{AtS: 1, UAV: "u2", Kind: EventRotorFailure, Rotor: 1}}
		}, "rotor"},
		{"chaos-invalid", func(s *Scenario) {
			s.Chaos = &chaos.Plan{Monitors: []chaos.MonitorFault{{Mode: "explode", Prob: 1}}}
		}, "chaos plan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("invalid scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	s := valid()
	s.Wind = &Wind{EastMS: 4, NorthMS: -2, GustSigmaMS: 1.5, GustTauS: 8}
	s.Visibility = &Visibility{Value: 0.4, ThermalBelow: 0.5}
	s.Persons = 5
	s.CriticalProb = 0.3
	s.Links = []Link{
		{Profile: linksim.Profile{DropProb: 0.02, DelayProb: 0.1, DelayMinS: 0.1, DelayMaxS: 0.4}},
		{UAV: "u2", OutageFromS: 30, OutageToS: 60},
	}
	s.Timeline = []Event{
		{AtS: 10, UAV: "u1", Kind: EventBatteryCollapse, TempC: 70, ChargePct: 40},
		{AtS: 20, UAV: "u2", Kind: EventGPSSpoof, BearingDeg: 135, DriftMS: 3},
		{AtS: 30, UAV: "u1", Kind: EventRotorFailure, Rotor: 3},
		{AtS: 40, UAV: "u1", Kind: EventCommsFailure},
		{AtS: 50, UAV: "u2", Kind: EventCameraFailure},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("full-featured scenario rejected: %v", err)
	}
}

func TestDigestStability(t *testing.T) {
	a, b := valid(), valid()
	if a.Digest() != b.Digest() {
		t.Error("identical scenarios digest differently")
	}
	b.Seed = 2
	if a.Digest() == b.Digest() {
		t.Error("different scenarios share a digest")
	}
	if !strings.HasPrefix(a.Digest(), "sha256:") {
		t.Errorf("digest %q missing scheme prefix", a.Digest())
	}
}

func TestRotorsResolution(t *testing.T) {
	for _, tc := range []struct {
		v    Vehicle
		want int
	}{
		{Vehicle{}, 4},
		{Vehicle{Kind: KindMultirotor}, 4},
		{Vehicle{Kind: KindFixedWing}, 1},
		{Vehicle{Kind: KindFixedWing, Rotors: 2}, 2},
		{Vehicle{Rotors: 6}, 6},
	} {
		if got := tc.v.rotors(); got != tc.want {
			t.Errorf("rotors(%+v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestAreasAndFleetIDs(t *testing.T) {
	s := valid()
	areas := s.Areas()
	if len(areas) != 1 || len(areas[0]) != 4 {
		t.Fatalf("Areas() = %v", areas)
	}
	ids := s.FleetIDs()
	if len(ids) != 2 || ids[0] != "u1" || ids[1] != "u2" {
		t.Fatalf("FleetIDs() = %v", ids)
	}
}

func TestBatteryPack(t *testing.T) {
	b := &Battery{EnduranceMin: 50, NominalVoltage: 44.4, SpeedDrainFactor: 0.001}
	p := b.pack()
	if want := 100.0 / (50 * 60); p.BaseDrainPctPerS != want {
		t.Errorf("BaseDrainPctPerS = %v, want %v", p.BaseDrainPctPerS, want)
	}
	if p.NominalVoltage != 44.4 || p.SpeedDrainFactor != 0.001 {
		t.Errorf("overrides not applied: %+v", p)
	}
	// Zero fields keep the default pack's values.
	d := (&Battery{}).pack()
	if d.NominalVoltage == 0 || d.BaseDrainPctPerS == 0 {
		t.Errorf("zero battery lost defaults: %+v", d)
	}
}

func TestBuildWorldFleet(t *testing.T) {
	s := valid()
	s.Wind = &Wind{EastMS: 3, NorthMS: 1, GustSigmaMS: 1, GustTauS: 10}
	w, err := s.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	uavs := w.UAVs()
	if len(uavs) != 2 {
		t.Fatalf("built %d UAVs, want 2", len(uavs))
	}
	if w.Wind.East != 3 || w.Wind.North != 1 || w.GustSigmaMS != 1 || w.GustTauS != 10 {
		t.Errorf("wind field not applied: %+v sigma=%v tau=%v", w.Wind, w.GustSigmaMS, w.GustTauS)
	}
	// Building the same scenario twice yields bit-identical worlds.
	w2, err := s.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.UAVs()) != len(uavs) {
		t.Error("rebuild diverged")
	}
}

func TestBuildSceneDistribution(t *testing.T) {
	s := valid()
	if scene, err := s.BuildScene(nil); err != nil || scene != nil {
		t.Fatalf("zero persons must build a nil scene, got %v, %v", scene, err)
	}

	// Two sites, five persons: 3 land on the first site, 2 on the
	// second, IDs renumbered sequentially.
	s.Sites = append(s.Sites, Site{Area: []Point{
		{Lat: 35.19, Lng: 33.39}, {Lat: 35.19, Lng: 33.393},
		{Lat: 35.193, Lng: 33.393}, {Lat: 35.193, Lng: 33.39},
	}})
	s.Fleet = append(s.Fleet, Vehicle{ID: "u3"})
	s.Persons = 5
	s.CriticalProb = 0.5
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	w, err := s.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	scene, err := s.BuildScene(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(scene.Persons) != 5 {
		t.Fatalf("scene has %d persons, want 5", len(scene.Persons))
	}
	for i, p := range scene.Persons {
		if p.ID != i {
			t.Errorf("person %d has ID %d; IDs must be sequential", i, p.ID)
		}
	}
	first, second := s.Sites[0].Polygon(), s.Sites[1].Polygon()
	inFirst, inSecond := 0, 0
	for _, p := range scene.Persons {
		if first.Contains(p.Position) {
			inFirst++
		}
		if second.Contains(p.Position) {
			inSecond++
		}
	}
	if inFirst != 3 || inSecond != 2 {
		t.Errorf("persons dealt %d/%d across sites, want 3/2", inFirst, inSecond)
	}
}

func TestScheduleTimelineUnknownKind(t *testing.T) {
	s := valid()
	w, err := s.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	// Bypass Validate to hit the builder's own guard.
	s.Timeline = []Event{{AtS: 1, UAV: "u1", Kind: "volcano"}}
	if err := s.ScheduleTimeline(w, 0); err == nil {
		t.Error("unknown timeline kind must fail at build")
	}
}

func TestApplyLinksFleetWide(t *testing.T) {
	s := valid()
	s.Links = []Link{
		{Profile: linksim.Profile{DropProb: 0.5}},
		{UAV: "u2", OutageFromS: 10, OutageToS: 20},
	}
	w, err := s.BuildWorld()
	if err != nil {
		t.Fatal(err)
	}
	layer := linksim.New(w.Clock, "test")
	s.ApplyLinks(layer, 100)
	if got := layer.Links(); len(got) != 2 {
		t.Fatalf("links configured: %v, want u1 and u2", got)
	}
	// The outage window is offset by mission start.
	if !layer.Link("u2").DownNow(115) {
		t.Error("u2 outage window not offset from mission start")
	}
	if layer.Link("u2").DownNow(95) || layer.Link("u1").DownNow(115) {
		t.Error("outage leaked outside its window or onto another link")
	}
}

func TestGenerateN(t *testing.T) {
	if _, err := Generate(1, "atlantis"); err == nil {
		t.Error("unknown archetype accepted")
	}
	if _, err := GenerateN(1, MaritimeSAR, -1); err == nil {
		t.Error("negative fleet size accepted")
	}
	for _, arch := range Archetypes() {
		for _, n := range []int{0, 1, 2, 5, 9} {
			sc, err := GenerateN(int64(31+n), arch, n)
			if err != nil {
				t.Fatalf("GenerateN(%s, %d): %v", arch, n, err)
			}
			if n > 0 && len(sc.Fleet) != n {
				t.Errorf("%s: requested fleet %d, got %d", arch, n, len(sc.Fleet))
			}
			if n == 0 && (len(sc.Fleet) < 2 || len(sc.Fleet) > 6) {
				t.Errorf("%s: default fleet size %d outside the 2-6 envelope", arch, len(sc.Fleet))
			}
			if len(sc.Fleet) < len(sc.Sites) {
				t.Errorf("%s: %d sites for %d vehicles", arch, len(sc.Sites), len(sc.Fleet))
			}
		}
	}
	// A single-vehicle multi-site request clamps to one site.
	sc, err := GenerateN(3, MultiSite, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Sites) != 1 {
		t.Errorf("fleet of 1 got %d sites", len(sc.Sites))
	}
}

func TestKnownArchetype(t *testing.T) {
	for _, a := range Archetypes() {
		if !KnownArchetype(a) {
			t.Errorf("KnownArchetype(%q) = false", a)
		}
	}
	if KnownArchetype("atlantis") || KnownArchetype("") {
		t.Error("unknown archetype reported known")
	}
}

func TestGeneratedScenariosRoundTrip(t *testing.T) {
	// Every generated scenario must survive its own serialization:
	// Marshal -> Load -> identical digest. This pins that the generator
	// only emits loadable worlds.
	for i, arch := range Archetypes() {
		sc, err := Generate(int64(i)+11, arch)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Load(data)
		if err != nil {
			t.Fatalf("%s: generated scenario does not reload: %v", arch, err)
		}
		if back.Digest() != sc.Digest() {
			t.Errorf("%s: round trip changed the digest", arch)
		}
	}
}

func TestGeneratedChaosPlansAppear(t *testing.T) {
	// A quarter of generated worlds embed a chaos plan; over 80 seeds
	// at least one must (and every embedded plan validates, which
	// Generate's own gate already proved).
	found := false
	for seed := int64(0); seed < 80 && !found; seed++ {
		sc, err := Generate(seed, MaritimeSAR)
		if err != nil {
			t.Fatal(err)
		}
		found = sc.Chaos != nil
	}
	if !found {
		t.Error("no generated scenario embedded a chaos plan in 80 seeds")
	}
}

func TestPointLatLng(t *testing.T) {
	p := Point{Lat: 1.5, Lng: -2.5}
	ll := p.LatLng()
	if ll.Lat != 1.5 || ll.Lng != -2.5 {
		t.Errorf("LatLng() = %+v", ll)
	}
}

func TestSitePolygon(t *testing.T) {
	s := valid().Sites[0]
	pg := s.Polygon()
	if len(pg) != len(s.Area) {
		t.Fatalf("polygon has %d vertices, want %d", len(pg), len(s.Area))
	}
	for i := range pg {
		if pg[i].Lat != s.Area[i].Lat || pg[i].Lng != s.Area[i].Lng {
			t.Errorf("vertex %d: %v != %v", i, pg[i], s.Area[i])
		}
	}
}

func TestValidateProfileMessages(t *testing.T) {
	// The error strings name the offending field, so a campaign spec
	// author can find the typo.
	err := validateProfile("links[3]", linksim.Profile{ReorderProb: -1})
	if err == nil || !strings.Contains(err.Error(), "links[3]") ||
		!strings.Contains(err.Error(), "reorder_prob") {
		t.Errorf("unhelpful profile error: %v", err)
	}
}

func ExampleLoad() {
	data := []byte(`{
		"name": "demo",
		"seed": 7,
		"origin": {"lat": 35.18, "lng": 33.38},
		"horizon_s": 300,
		"sites": [{"area": [
			{"lat": 35.181, "lng": 33.381},
			{"lat": 35.181, "lng": 33.384},
			{"lat": 35.184, "lng": 33.384}
		]}],
		"fleet": [{"id": "u1"}]
	}`)
	sc, err := Load(data)
	if err != nil {
		panic(err)
	}
	fmt.Println(sc.Name, len(sc.Fleet))
	// Output: demo 1
}
