package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"sesame/internal/chaos"
	"sesame/internal/linksim"
)

// Archetype names: the mission families the generator composes.
const (
	// MaritimeSAR is open-water search: one large offshore area, real
	// wind and gusts, a mixed fixed-wing/multirotor fleet where the
	// fixed wings bring the endurance and the rotorcraft the hover.
	MaritimeSAR = "maritime_sar"
	// UrbanCanyon is dusk search between buildings: a small area, poor
	// visibility (thermal take-over), multipath-degraded links and GPS
	// spoofing on the timeline.
	UrbanCanyon = "urban_canyon"
	// MultiSite is concurrent search over separated sites, the fleet
	// partitioned between them.
	MultiSite = "multi_site"
)

// Archetypes lists every generator family in canonical order.
func Archetypes() []string { return []string{MaritimeSAR, UrbanCanyon, MultiSite} }

// KnownArchetype reports whether name is a generator family.
func KnownArchetype(name string) bool {
	for _, a := range Archetypes() {
		if a == name {
			return true
		}
	}
	return false
}

// baseOrigin is the Cyprus coastal anchor the rest of the repo uses;
// generated scenarios jitter around it.
var baseOrigin = Point{Lat: 35.1856, Lng: 33.3823}

// Generate composes a complete scenario from (seed, archetype). The
// result is a pure function of its arguments, passes Validate, and —
// like everything else in the repo — is gated on the determinism
// contract by TestScenarioProperty.
func Generate(seed int64, archetype string) (*Scenario, error) {
	return GenerateN(seed, archetype, 0)
}

// GenerateN fixes the fleet size (0 lets the archetype choose), so
// campaign sweeps can use the fleet-size grid axis with generated
// worlds.
func GenerateN(seed int64, archetype string, fleetN int) (*Scenario, error) {
	if !KnownArchetype(archetype) {
		return nil, fmt.Errorf("scenario: unknown archetype %q (have %v)", archetype, Archetypes())
	}
	if fleetN < 0 || fleetN > maxFleet {
		return nil, fmt.Errorf("scenario: fleet size %d outside [0,%d]", fleetN, maxFleet)
	}
	// Mix the archetype into the stream so the same seed yields
	// unrelated worlds per family.
	h := fnv.New64a()
	h.Write([]byte(archetype))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))

	g := &gen{rng: rng, sc: &Scenario{
		Name: fmt.Sprintf("%s-%d", archetype, seed),
		Seed: seed,
		Origin: Point{
			Lat: baseOrigin.Lat + (rng.Float64()-0.5)*0.04,
			Lng: baseOrigin.Lng + (rng.Float64()-0.5)*0.04,
		},
		HorizonS: 60 + math.Floor(rng.Float64()*120),
	}}
	switch archetype {
	case MaritimeSAR:
		g.maritime(fleetN)
	case UrbanCanyon:
		g.urban(fleetN)
	case MultiSite:
		g.multiSite(fleetN)
	}
	// A quarter of the worlds also run an infrastructure chaos plan —
	// the shared corpus machinery from internal/chaos.
	if g.rng.Intn(4) == 0 {
		plan := chaos.GeneratePlan(g.rng, g.sc.FleetIDs())
		g.sc.Chaos = &plan
	}
	if err := g.sc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: generated world invalid (generator bug): %w", err)
	}
	return g.sc, nil
}

// gen carries the generator's draw state; helpers draw in a fixed
// order so every scenario is a pure function of (seed, archetype).
type gen struct {
	rng *rand.Rand
	sc  *Scenario
}

// in draws uniformly from [lo, hi).
func (g *gen) in(lo, hi float64) float64 { return lo + g.rng.Float64()*(hi-lo) }

// site appends a rectangular site centred offEastM/offNorthM metres
// from the origin with the given half-extents.
func (g *gen) site(name string, offEastM, offNorthM, halfEastM, halfNorthM float64) {
	// Local equirectangular conversion — plenty accurate at the <50 km
	// ranges Validate enforces.
	mPerDegLat := 111320.0
	mPerDegLng := mPerDegLat * math.Cos(g.sc.Origin.Lat*math.Pi/180)
	c := Point{
		Lat: g.sc.Origin.Lat + offNorthM/mPerDegLat,
		Lng: g.sc.Origin.Lng + offEastM/mPerDegLng,
	}
	dLat := halfNorthM / mPerDegLat
	dLng := halfEastM / mPerDegLng
	g.sc.Sites = append(g.sc.Sites, Site{Name: name, Area: []Point{
		{Lat: c.Lat - dLat, Lng: c.Lng - dLng},
		{Lat: c.Lat - dLat, Lng: c.Lng + dLng},
		{Lat: c.Lat + dLat, Lng: c.Lng + dLng},
		{Lat: c.Lat + dLat, Lng: c.Lng - dLng},
	}})
}

// multirotor appends a rotorcraft with jittered kinematics.
func (g *gen) multirotor(id string) {
	g.sc.Fleet = append(g.sc.Fleet, Vehicle{
		ID:            id,
		Kind:          KindMultirotor,
		CruiseSpeedMS: g.in(8, 14),
		ClimbRateMS:   g.in(2, 4),
		Battery:       &Battery{EnduranceMin: math.Floor(g.in(20, 40))},
	})
}

// fixedWing appends a fixed-wing with long endurance and a stall
// floor.
func (g *gen) fixedWing(id string) {
	cruise := g.in(16, 24)
	g.sc.Fleet = append(g.sc.Fleet, Vehicle{
		ID:            id,
		Kind:          KindFixedWing,
		CruiseSpeedMS: cruise,
		ClimbRateMS:   g.in(1.5, 3),
		MinSpeedMS:    cruise * g.in(0.5, 0.7),
		TurnRateDegS:  g.in(10, 20),
		Battery:       &Battery{EnduranceMin: math.Floor(g.in(45, 90))},
	})
}

// fleetSize resolves the requested size (0 = archetype default 3-6),
// clamped so every site keeps at least one vehicle.
func (g *gen) fleetSize(requested, minimum int) int {
	n := requested
	if n == 0 {
		n = 3 + g.rng.Intn(4)
	}
	if n < minimum {
		n = minimum
	}
	return n
}

// windField draws a mean wind of speedLo..speedHi m/s at a random
// bearing, plus gusts when sigmaHi > 0.
func (g *gen) windField(speedLo, speedHi, sigmaHi float64) {
	speed := g.in(speedLo, speedHi)
	dir := g.rng.Float64() * 2 * math.Pi
	w := &Wind{
		EastMS:  speed * math.Sin(dir),
		NorthMS: speed * math.Cos(dir),
	}
	if sigmaHi > 0 {
		w.GustSigmaMS = g.in(0.5, sigmaHi)
		w.GustTauS = g.in(5, 15)
	}
	g.sc.Wind = w
}

// eventAt draws an injection time inside the early mission window.
func (g *gen) eventAt() float64 { return math.Floor(g.in(5, 0.8*g.sc.HorizonS)) }

// pickUAV draws a fault target.
func (g *gen) pickUAV() string { return g.sc.Fleet[g.rng.Intn(len(g.sc.Fleet))].ID }

func (g *gen) maritime(fleetN int) {
	g.site("", g.in(150, 400), g.in(150, 400), g.in(200, 400), g.in(150, 300))
	g.windField(3, 9, 3)
	g.sc.Visibility = &Visibility{Value: g.in(0.6, 1), ThermalBelow: 0.5}
	n := g.fleetSize(fleetN, 1)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("u%d", i+1)
		if i%2 == 1 {
			g.fixedWing(id)
		} else {
			g.multirotor(id)
		}
	}
	g.sc.Persons = 2 + g.rng.Intn(7)
	g.sc.CriticalProb = 0.25
	g.sc.Links = []Link{{Profile: linksim.Profile{
		DropProb:  g.in(0, 0.05),
		DelayProb: g.in(0, 0.1),
		DelayMinS: 0.1,
		DelayMaxS: 0.5,
	}}}
	for i := g.rng.Intn(3); i > 0; i-- {
		if g.rng.Intn(2) == 0 {
			g.sc.Timeline = append(g.sc.Timeline, Event{
				AtS: g.eventAt(), UAV: g.pickUAV(), Kind: EventBatteryCollapse,
				TempC: math.Floor(g.in(65, 90)), ChargePct: math.Floor(g.in(20, 45)),
			})
		} else {
			g.sc.Timeline = append(g.sc.Timeline, Event{
				AtS: g.eventAt(), UAV: g.pickUAV(), Kind: EventCommsFailure,
			})
		}
	}
}

func (g *gen) urban(fleetN int) {
	g.site("", g.in(80, 200), g.in(80, 200), g.in(120, 250), g.in(120, 250))
	g.windField(0, 3, 0)
	g.sc.Visibility = &Visibility{Value: g.in(0.25, 0.55), ThermalBelow: 0.5}
	n := g.fleetSize(fleetN, 1)
	for i := 0; i < n; i++ {
		g.multirotor(fmt.Sprintf("u%d", i+1))
	}
	g.sc.Persons = 3 + g.rng.Intn(8)
	g.sc.CriticalProb = 0.35
	// Multipath: drops, duplicates and reordering, not just loss.
	g.sc.Links = []Link{{Profile: linksim.Profile{
		DropProb:    g.in(0.02, 0.08),
		DupProb:     g.in(0, 0.05),
		DelayProb:   g.in(0.05, 0.2),
		DelayMinS:   0.05,
		DelayMaxS:   0.3,
		ReorderProb: g.in(0.03, 0.12),
	}}}
	for i := 1 + g.rng.Intn(2); i > 0; i-- {
		g.sc.Timeline = append(g.sc.Timeline, Event{
			AtS: g.eventAt(), UAV: g.pickUAV(), Kind: EventGPSSpoof,
			BearingDeg: math.Floor(g.rng.Float64() * 360), DriftMS: g.in(2, 5),
		})
	}
	if g.rng.Intn(3) == 0 {
		g.sc.Timeline = append(g.sc.Timeline, Event{
			AtS: g.eventAt(), UAV: g.pickUAV(), Kind: EventCameraFailure,
		})
	}
}

func (g *gen) multiSite(fleetN int) {
	sites := 2 + g.rng.Intn(2)
	if fleetN > 0 && fleetN < sites {
		sites = fleetN
	}
	for i := 0; i < sites; i++ {
		// Spread the sites on distinct bearings so they never overlap.
		bearing := (float64(i) + g.rng.Float64()*0.6) / float64(sites) * 2 * math.Pi
		dist := g.in(800, 2500)
		g.site(fmt.Sprintf("site%d", i+1),
			dist*math.Sin(bearing), dist*math.Cos(bearing),
			g.in(150, 300), g.in(150, 300))
	}
	g.windField(2, 6, 2)
	g.sc.Visibility = &Visibility{Value: g.in(0.7, 1), ThermalBelow: 0.5}
	n := g.fleetSize(fleetN, sites)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("u%d", i+1)
		if i%3 == 2 {
			g.fixedWing(id)
		} else {
			g.multirotor(id)
		}
	}
	g.sc.Persons = 4 + g.rng.Intn(9)
	g.sc.CriticalProb = 0.2
	g.sc.Links = []Link{{Profile: linksim.Profile{DropProb: g.in(0, 0.03)}}}
	for i := g.rng.Intn(3); i > 0; i-- {
		if g.rng.Intn(2) == 0 {
			g.sc.Timeline = append(g.sc.Timeline, Event{
				AtS: g.eventAt(), UAV: g.pickUAV(), Kind: EventBatteryCollapse,
				TempC: math.Floor(g.in(65, 90)), ChargePct: math.Floor(g.in(20, 45)),
			})
		} else {
			uav := g.rng.Intn(len(g.sc.Fleet))
			g.sc.Timeline = append(g.sc.Timeline, Event{
				AtS: g.eventAt(), UAV: g.sc.Fleet[uav].ID, Kind: EventRotorFailure,
				Rotor: g.rng.Intn(g.sc.Fleet[uav].rotors()),
			})
		}
	}
}
