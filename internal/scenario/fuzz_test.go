package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzScenarioParse throws arbitrary bytes at the strict loader. The
// contract under fuzz: Load never panics, and anything it accepts is
// fully valid — it re-validates, re-serializes, and reloads to an
// identical digest (no parse/serialize asymmetry a campaign manifest
// could smuggle state through).
func FuzzScenarioParse(f *testing.F) {
	seeds := [][]byte{
		[]byte(``),
		[]byte(`{}`),
		[]byte(`{"name":"x","seed":1,"origin":{"lat":35,"lng":33},"horizon_s":60,` +
			`"sites":[{"area":[{"lat":35.001,"lng":33.001},{"lat":35.001,"lng":33.002},` +
			`{"lat":35.002,"lng":33.002}]}],"fleet":[{"id":"u1"}]}`),
		[]byte(`{"name":"x","unknown_field":true}`),
		[]byte(`{"name":"x"} trailing`),
		[]byte(`{"name":"x","horizon_s":1e999}`),
		[]byte(`[1,2,3]`),
		[]byte(`null`),
	}
	for _, arch := range Archetypes() {
		if sc, err := Generate(1, arch); err == nil {
			if data, err := json.Marshal(sc); err == nil {
				seeds = append(seeds, data)
			}
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Load(data)
		if err != nil {
			return
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("Load accepted a scenario Validate rejects: %v", err)
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not serialize: %v", err)
		}
		back, err := Load(out)
		if err != nil {
			t.Fatalf("accepted scenario does not reload: %v", err)
		}
		if back.Digest() != sc.Digest() {
			t.Fatalf("round trip changed digest: %s != %s", back.Digest(), sc.Digest())
		}
	})
}
