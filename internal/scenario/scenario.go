// Package scenario is the declarative mission-description layer: a
// strict JSON schema covering search areas, wind fields, day/night
// visibility, heterogeneous fleet composition (mixed fixed-wing and
// multirotor airframes with per-vehicle battery models), link-quality
// profiles and fault/attack timelines — everything that today is
// hard-coded into the paper's 3-UAV photovoltaic-park script — plus a
// seeded generator (generate.go) that composes whole mission families
// from those ingredients.
//
// Parsing follows chaos.LoadPlan's strictness contract: unknown
// fields, trailing data and out-of-range values are rejected loudly. A
// typo in a scenario must fail at load, never silently produce a
// different world. Every scenario is pure data; building it into a
// running world (build.go) draws all randomness from the world's
// seeded clock streams, so the determinism gate — serial == pooled ==
// sharded digests, checkpoint/resume identity — holds for every
// loadable scenario, generated or hand-written.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"regexp"

	"sesame/internal/chaos"
	"sesame/internal/geo"
	"sesame/internal/linksim"
)

// Vehicle kinds. They mirror uavsim.VehicleKind; the empty string
// means multirotor (the schema default).
const (
	KindMultirotor = "multirotor"
	KindFixedWing  = "fixed_wing"
)

// Timeline event kinds, one per uavsim fault constructor.
const (
	EventBatteryCollapse = "battery_collapse"
	EventGPSSpoof        = "gps_spoof"
	EventRotorFailure    = "rotor_failure"
	EventCommsFailure    = "comms_failure"
	EventCameraFailure   = "camera_failure"
)

// Point is a WGS84 coordinate. geo.LatLng carries no JSON tags, so the
// schema declares its own point type with lowercase keys.
type Point struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// LatLng converts to the geo coordinate type.
func (p Point) LatLng() geo.LatLng { return geo.LatLng{Lat: p.Lat, Lng: p.Lng} }

// Site is one search area. Multi-site scenarios list several; the
// platform partitions the fleet into contiguous groups, one per site.
type Site struct {
	// Name labels the site in logs; optional.
	Name string `json:"name,omitempty"`
	// Area is the site's polygon (>= 3 vertices).
	Area []Point `json:"area"`
}

// Polygon returns the site area as a geo polygon.
func (s Site) Polygon() geo.Polygon {
	pg := make(geo.Polygon, len(s.Area))
	for i, p := range s.Area {
		pg[i] = p.LatLng()
	}
	return pg
}

// Wind is the mean wind field plus the Ornstein-Uhlenbeck gust model
// parameters the world integrates on top of it.
type Wind struct {
	EastMS      float64 `json:"east_ms,omitempty"`
	NorthMS     float64 `json:"north_ms,omitempty"`
	GustSigmaMS float64 `json:"gust_sigma_ms,omitempty"`
	GustTauS    float64 `json:"gust_tau_s,omitempty"`
}

// Visibility is the day/night visual profile the perception pipeline
// is calibrated against.
type Visibility struct {
	// Value is the ambient visual condition in (0,1]: 1 is clear day,
	// low values are dusk/night.
	Value float64 `json:"value"`
	// ThermalBelow switches perception to the thermal imager when Value
	// falls below it; 0 keeps RGB always.
	ThermalBelow float64 `json:"thermal_below,omitempty"`
}

// Battery overrides the default pack model per vehicle.
type Battery struct {
	// EnduranceMin is the hover endurance in minutes; it sets the base
	// drain rate. 0 keeps the default pack's 30 minutes.
	EnduranceMin float64 `json:"endurance_min,omitempty"`
	// NominalVoltage is the pack voltage (0 = default).
	NominalVoltage float64 `json:"nominal_voltage,omitempty"`
	// SpeedDrainFactor scales drain with airspeed (0 = default).
	SpeedDrainFactor float64 `json:"speed_drain_factor,omitempty"`
}

// Vehicle is one fleet member. Zero-valued kinematic fields take the
// airframe kind's uavsim defaults.
type Vehicle struct {
	ID string `json:"id"`
	// Kind is "multirotor" (default) or "fixed_wing".
	Kind          string   `json:"kind,omitempty"`
	CruiseSpeedMS float64  `json:"cruise_speed_ms,omitempty"`
	ClimbRateMS   float64  `json:"climb_rate_ms,omitempty"`
	MinSpeedMS    float64  `json:"min_speed_ms,omitempty"`
	TurnRateDegS  float64  `json:"turn_rate_deg_s,omitempty"`
	Rotors        int      `json:"rotors,omitempty"`
	Battery       *Battery `json:"battery,omitempty"`
}

// rotors resolves the vehicle's motor count the way uavsim.AddUAV
// will, for timeline bound checks.
func (v Vehicle) rotors() int {
	if v.Rotors > 0 {
		return v.Rotors
	}
	if v.Kind == KindFixedWing {
		return 1
	}
	return 4
}

// Link sets one link-quality rule: a linksim profile plus an optional
// outage window, applied to one vehicle or the whole fleet.
type Link struct {
	// UAV names the impaired vehicle; empty applies to every vehicle.
	UAV string `json:"uav,omitempty"`
	// Profile is the steady-state impairment (linksim schema).
	Profile linksim.Profile `json:"profile"`
	// [OutageFromS, OutageToS) silences the link completely, relative
	// to mission start. Equal values mean no outage.
	OutageFromS float64 `json:"outage_from_s,omitempty"`
	OutageToS   float64 `json:"outage_to_s,omitempty"`
}

// Event is one timeline entry: a vehicle fault or attack injected at a
// fixed offset from mission start. Parameters are explicit — there are
// no hidden defaults, so a loaded scenario says exactly what happens.
type Event struct {
	AtS  float64 `json:"at_s"`
	UAV  string  `json:"uav"`
	Kind string  `json:"kind"`
	// battery_collapse: pack temperature spike and charge collapse.
	TempC     float64 `json:"temp_c,omitempty"`
	ChargePct float64 `json:"charge_pct,omitempty"`
	// gps_spoof: drift bearing and rate.
	BearingDeg float64 `json:"bearing_deg,omitempty"`
	DriftMS    float64 `json:"drift_ms,omitempty"`
	// rotor_failure: which motor.
	Rotor int `json:"rotor,omitempty"`
}

// Scenario is one complete declarative mission description.
type Scenario struct {
	Name string `json:"name"`
	// Notes is free-text documentation carried with the scenario (the
	// schema's comment field — strict parsing rejects real comments).
	Notes string `json:"notes,omitempty"`
	// Seed drives every stochastic stream of the world built from this
	// scenario.
	Seed int64 `json:"seed"`
	// Origin is the launch point and the local projection origin.
	Origin Point `json:"origin"`
	// HorizonS bounds the mission in simulation seconds.
	HorizonS float64 `json:"horizon_s"`
	// Persons scatters that many detection targets over the sites.
	Persons int `json:"persons,omitempty"`
	// CriticalProb marks each scattered person critical with this
	// probability (0 = none).
	CriticalProb float64     `json:"critical_prob,omitempty"`
	Wind         *Wind       `json:"wind,omitempty"`
	Visibility   *Visibility `json:"visibility,omitempty"`
	Sites        []Site      `json:"sites"`
	Fleet        []Vehicle   `json:"fleet"`
	Links        []Link      `json:"links,omitempty"`
	Timeline     []Event     `json:"timeline,omitempty"`
	// Chaos optionally embeds an infrastructure fault-injection plan
	// (internal/chaos) armed alongside the mission.
	Chaos *chaos.Plan `json:"chaos,omitempty"`
}

// Load parses and validates a JSON scenario. Unknown fields and
// trailing data are rejected — the same strictness as chaos.LoadPlan:
// a typo in a mission description must fail loudly, not silently
// change the world.
func Load(data []byte) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: parsing: trailing data after scenario object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Schema bounds. They are generous operational envelopes, not physics:
// their job is to make every loadable scenario buildable and every
// generated world finite.
const (
	maxFleet        = 1024
	maxSites        = 16
	maxSiteVertices = 64
	maxPersons      = 10000
	maxTimeline     = 256
	maxLinks        = 2048
	maxHorizonS     = 86400
	maxSpeedMS      = 200
	maxWindMS       = 60
	maxSiteRangeM   = 50000
)

var nameRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func validProb(p float64) bool { return finite(p) && p >= 0 && p <= 1 }

func validPoint(p Point) bool {
	return finite(p.Lat) && finite(p.Lng) &&
		p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180
}

// validateProfile range-checks a linksim profile (linksim itself
// tolerates odd values by clamping; the schema rejects them instead).
func validateProfile(what string, p linksim.Profile) error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"drop_prob", p.DropProb}, {"dup_prob", p.DupProb},
		{"delay_prob", p.DelayProb}, {"reorder_prob", p.ReorderProb},
	} {
		if !validProb(pr.v) {
			return fmt.Errorf("scenario: %s: %s %v outside [0,1]", what, pr.name, pr.v)
		}
	}
	if !finite(p.DelayMinS) || !finite(p.DelayMaxS) || p.DelayMinS < 0 || p.DelayMaxS < p.DelayMinS {
		return fmt.Errorf("scenario: %s: delay window [%v,%v] invalid", what, p.DelayMinS, p.DelayMaxS)
	}
	if !finite(p.HoldMaxS) || p.HoldMaxS < 0 {
		return fmt.Errorf("scenario: %s: hold_max_s %v invalid", what, p.HoldMaxS)
	}
	return nil
}

// Validate range-checks every field. It is the single gate both Load
// and the generator pass through.
func (s *Scenario) Validate() error {
	if !nameRe.MatchString(s.Name) {
		return fmt.Errorf("scenario: name %q must match %s", s.Name, nameRe)
	}
	if !validPoint(s.Origin) {
		return fmt.Errorf("scenario: origin %+v invalid", s.Origin)
	}
	if !finite(s.HorizonS) || s.HorizonS <= 0 || s.HorizonS > maxHorizonS {
		return fmt.Errorf("scenario: horizon_s %v outside (0,%d]", s.HorizonS, maxHorizonS)
	}
	if s.Persons < 0 || s.Persons > maxPersons {
		return fmt.Errorf("scenario: persons %d outside [0,%d]", s.Persons, maxPersons)
	}
	if !validProb(s.CriticalProb) {
		return fmt.Errorf("scenario: critical_prob %v outside [0,1]", s.CriticalProb)
	}
	if err := s.validateWind(); err != nil {
		return err
	}
	if v := s.Visibility; v != nil {
		if !finite(v.Value) || v.Value <= 0 || v.Value > 1 {
			return fmt.Errorf("scenario: visibility value %v outside (0,1]", v.Value)
		}
		if !validProb(v.ThermalBelow) {
			return fmt.Errorf("scenario: visibility thermal_below %v outside [0,1]", v.ThermalBelow)
		}
	}
	if err := s.validateSites(); err != nil {
		return err
	}
	fleet, err := s.validateFleet()
	if err != nil {
		return err
	}
	if len(s.Fleet) < len(s.Sites) {
		return fmt.Errorf("scenario: %d sites need at least as many vehicles, have %d",
			len(s.Sites), len(s.Fleet))
	}
	if err := s.validateLinks(fleet); err != nil {
		return err
	}
	if err := s.validateTimeline(fleet); err != nil {
		return err
	}
	if s.Chaos != nil {
		if err := s.Chaos.Validate(); err != nil {
			return fmt.Errorf("scenario: chaos plan: %w", err)
		}
	}
	return nil
}

func (s *Scenario) validateWind() error {
	w := s.Wind
	if w == nil {
		return nil
	}
	if !finite(w.EastMS) || !finite(w.NorthMS) ||
		math.Abs(w.EastMS) > maxWindMS || math.Abs(w.NorthMS) > maxWindMS {
		return fmt.Errorf("scenario: wind (%v,%v) m/s outside ±%d", w.EastMS, w.NorthMS, maxWindMS)
	}
	if !finite(w.GustSigmaMS) || w.GustSigmaMS < 0 || w.GustSigmaMS > maxWindMS {
		return fmt.Errorf("scenario: gust_sigma_ms %v outside [0,%d]", w.GustSigmaMS, maxWindMS)
	}
	if !finite(w.GustTauS) || w.GustTauS < 0 {
		return fmt.Errorf("scenario: gust_tau_s %v invalid", w.GustTauS)
	}
	if w.GustSigmaMS > 0 && w.GustTauS <= 0 {
		return fmt.Errorf("scenario: gusts need gust_tau_s > 0")
	}
	return nil
}

func (s *Scenario) validateSites() error {
	if len(s.Sites) == 0 || len(s.Sites) > maxSites {
		return fmt.Errorf("scenario: %d sites outside [1,%d]", len(s.Sites), maxSites)
	}
	origin := s.Origin.LatLng()
	for i, site := range s.Sites {
		what := fmt.Sprintf("sites[%d]", i)
		if site.Name != "" && !nameRe.MatchString(site.Name) {
			return fmt.Errorf("scenario: %s: name %q must match %s", what, site.Name, nameRe)
		}
		if len(site.Area) < 3 || len(site.Area) > maxSiteVertices {
			return fmt.Errorf("scenario: %s: %d vertices outside [3,%d]", what, len(site.Area), maxSiteVertices)
		}
		for j, p := range site.Area {
			if !validPoint(p) {
				return fmt.Errorf("scenario: %s: vertex %d %+v invalid", what, j, p)
			}
			if geo.Haversine(origin, p.LatLng()) > maxSiteRangeM {
				return fmt.Errorf("scenario: %s: vertex %d beyond %d m of origin (local projection breaks down)",
					what, j, maxSiteRangeM)
			}
		}
		sw, ne := site.Polygon().BoundingBox()
		if ne.Lat <= sw.Lat || ne.Lng <= sw.Lng {
			return fmt.Errorf("scenario: %s: degenerate area (zero extent)", what)
		}
	}
	return nil
}

// validateFleet returns the id -> vehicle index for timeline checks.
func (s *Scenario) validateFleet() (map[string]int, error) {
	if len(s.Fleet) == 0 || len(s.Fleet) > maxFleet {
		return nil, fmt.Errorf("scenario: fleet size %d outside [1,%d]", len(s.Fleet), maxFleet)
	}
	fleet := make(map[string]int, len(s.Fleet))
	for i, v := range s.Fleet {
		what := fmt.Sprintf("fleet[%d]", i)
		if !nameRe.MatchString(v.ID) {
			return nil, fmt.Errorf("scenario: %s: id %q must match %s", what, v.ID, nameRe)
		}
		if _, dup := fleet[v.ID]; dup {
			return nil, fmt.Errorf("scenario: %s: duplicate id %q", what, v.ID)
		}
		fleet[v.ID] = i
		switch v.Kind {
		case "", KindMultirotor, KindFixedWing:
		default:
			return nil, fmt.Errorf("scenario: %s: unknown kind %q", what, v.Kind)
		}
		for _, sp := range []struct {
			name string
			v    float64
		}{
			{"cruise_speed_ms", v.CruiseSpeedMS}, {"climb_rate_ms", v.ClimbRateMS},
			{"min_speed_ms", v.MinSpeedMS}, {"turn_rate_deg_s", v.TurnRateDegS},
		} {
			if !finite(sp.v) || sp.v < 0 || sp.v > maxSpeedMS {
				return nil, fmt.Errorf("scenario: %s: %s %v outside [0,%d]", what, sp.name, sp.v, maxSpeedMS)
			}
		}
		if v.Kind != KindFixedWing && v.MinSpeedMS > 0 {
			return nil, fmt.Errorf("scenario: %s: min_speed_ms is fixed-wing only", what)
		}
		if v.MinSpeedMS > 0 && v.CruiseSpeedMS > 0 && v.MinSpeedMS > v.CruiseSpeedMS {
			return nil, fmt.Errorf("scenario: %s: min_speed_ms %v above cruise %v", what, v.MinSpeedMS, v.CruiseSpeedMS)
		}
		if v.Rotors < 0 || v.Rotors > 12 {
			return nil, fmt.Errorf("scenario: %s: rotors %d outside [0,12]", what, v.Rotors)
		}
		if b := v.Battery; b != nil {
			if !finite(b.EnduranceMin) || b.EnduranceMin < 0 || b.EnduranceMin > 1000 {
				return nil, fmt.Errorf("scenario: %s: endurance_min %v outside [0,1000]", what, b.EnduranceMin)
			}
			if !finite(b.NominalVoltage) || b.NominalVoltage < 0 || b.NominalVoltage > 1000 {
				return nil, fmt.Errorf("scenario: %s: nominal_voltage %v outside [0,1000]", what, b.NominalVoltage)
			}
			if !finite(b.SpeedDrainFactor) || b.SpeedDrainFactor < 0 || b.SpeedDrainFactor > 100 {
				return nil, fmt.Errorf("scenario: %s: speed_drain_factor %v outside [0,100]", what, b.SpeedDrainFactor)
			}
		}
	}
	return fleet, nil
}

func (s *Scenario) validateLinks(fleet map[string]int) error {
	if len(s.Links) > maxLinks {
		return fmt.Errorf("scenario: %d link rules above %d", len(s.Links), maxLinks)
	}
	for i, l := range s.Links {
		what := fmt.Sprintf("links[%d]", i)
		if l.UAV != "" {
			if _, ok := fleet[l.UAV]; !ok {
				return fmt.Errorf("scenario: %s: unknown uav %q", what, l.UAV)
			}
		}
		if err := validateProfile(what, l.Profile); err != nil {
			return err
		}
		if !finite(l.OutageFromS) || !finite(l.OutageToS) ||
			l.OutageFromS < 0 || l.OutageToS < l.OutageFromS {
			return fmt.Errorf("scenario: %s: outage window [%v,%v) invalid", what, l.OutageFromS, l.OutageToS)
		}
	}
	return nil
}

func (s *Scenario) validateTimeline(fleet map[string]int) error {
	if len(s.Timeline) > maxTimeline {
		return fmt.Errorf("scenario: %d timeline events above %d", len(s.Timeline), maxTimeline)
	}
	for i, ev := range s.Timeline {
		what := fmt.Sprintf("timeline[%d]", i)
		if !finite(ev.AtS) || ev.AtS < 0 || ev.AtS > s.HorizonS {
			return fmt.Errorf("scenario: %s: at_s %v outside [0,horizon]", what, ev.AtS)
		}
		vi, ok := fleet[ev.UAV]
		if !ok {
			return fmt.Errorf("scenario: %s: unknown uav %q", what, ev.UAV)
		}
		switch ev.Kind {
		case EventBatteryCollapse:
			if !finite(ev.TempC) || ev.TempC <= 0 || ev.TempC > 200 {
				return fmt.Errorf("scenario: %s: temp_c %v outside (0,200]", what, ev.TempC)
			}
			if !finite(ev.ChargePct) || ev.ChargePct < 0 || ev.ChargePct > 100 {
				return fmt.Errorf("scenario: %s: charge_pct %v outside [0,100]", what, ev.ChargePct)
			}
		case EventGPSSpoof:
			if !finite(ev.BearingDeg) || ev.BearingDeg < 0 || ev.BearingDeg >= 360 {
				return fmt.Errorf("scenario: %s: bearing_deg %v outside [0,360)", what, ev.BearingDeg)
			}
			if !finite(ev.DriftMS) || ev.DriftMS <= 0 || ev.DriftMS > 50 {
				return fmt.Errorf("scenario: %s: drift_ms %v outside (0,50]", what, ev.DriftMS)
			}
		case EventRotorFailure:
			if n := s.Fleet[vi].rotors(); ev.Rotor < 0 || ev.Rotor >= n {
				return fmt.Errorf("scenario: %s: rotor %d outside [0,%d)", what, ev.Rotor, n)
			}
		case EventCommsFailure, EventCameraFailure:
		default:
			return fmt.Errorf("scenario: %s: unknown kind %q", what, ev.Kind)
		}
	}
	return nil
}

// Digest fingerprints the scenario: the canonical JSON encoding hashed
// with sha256. Recordings and campaign manifests embed it so a run is
// never resumed against a silently different mission description.
func (s *Scenario) Digest() string {
	data, err := json.Marshal(s)
	if err != nil {
		// The schema is plain data; Marshal cannot fail on it.
		panic(err)
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(data))
}

// Areas returns every site polygon in declaration order.
func (s *Scenario) Areas() []geo.Polygon {
	out := make([]geo.Polygon, len(s.Sites))
	for i, site := range s.Sites {
		out[i] = site.Polygon()
	}
	return out
}

// FleetIDs returns the vehicle ids in declaration order.
func (s *Scenario) FleetIDs() []string {
	out := make([]string, len(s.Fleet))
	for i, v := range s.Fleet {
		out[i] = v.ID
	}
	return out
}
