// Package bayes implements discrete Bayesian networks with exact
// inference by variable elimination. It is the engine behind SINADRA
// (paper §III-A4), which models situation-specific risk factors and
// their causal influences as a BN evaluated at runtime.
package bayes

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Network is a discrete Bayesian network. Build it by adding variables
// and conditional probability tables, then query posterior marginals
// with Posterior.
type Network struct {
	names  []string
	index  map[string]int
	states [][]string       // states[v] = state labels of variable v
	stIdx  []map[string]int // stIdx[v][label] = state index
	cpts   []*cpt           // cpts[v] = CPT of variable v (nil until set)
	// validated caches a successful Validate so repeated Posterior
	// queries skip re-walking the graph; any structural change resets it.
	validated bool
}

type cpt struct {
	child   int
	parents []int
	// rows[r][s] = P(child = s | parent combo r); parent combos iterate
	// with the LAST parent varying fastest.
	rows [][]float64
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{index: make(map[string]int)}
}

// AddVariable declares a variable with the given state labels.
func (n *Network) AddVariable(name string, states ...string) error {
	if name == "" {
		return errors.New("bayes: empty variable name")
	}
	if _, dup := n.index[name]; dup {
		return fmt.Errorf("bayes: duplicate variable %q", name)
	}
	if len(states) < 2 {
		return fmt.Errorf("bayes: variable %q needs at least 2 states", name)
	}
	si := make(map[string]int, len(states))
	for i, s := range states {
		if s == "" {
			return fmt.Errorf("bayes: variable %q has empty state label", name)
		}
		if _, dup := si[s]; dup {
			return fmt.Errorf("bayes: variable %q has duplicate state %q", name, s)
		}
		si[s] = i
	}
	n.index[name] = len(n.names)
	n.validated = false
	n.names = append(n.names, name)
	n.states = append(n.states, append([]string(nil), states...))
	n.stIdx = append(n.stIdx, si)
	n.cpts = append(n.cpts, nil)
	return nil
}

// varID resolves a variable name.
func (n *Network) varID(name string) (int, error) {
	id, ok := n.index[name]
	if !ok {
		return 0, fmt.Errorf("bayes: unknown variable %q", name)
	}
	return id, nil
}

// States returns the state labels of the named variable.
func (n *Network) States(name string) ([]string, error) {
	id, err := n.varID(name)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), n.states[id]...), nil
}

// SetCPT installs the conditional probability table of child given
// parents. rows iterates over parent state combinations with the last
// parent varying fastest; each row is a distribution over the child's
// states and must sum to 1.
func (n *Network) SetCPT(child string, parents []string, rows [][]float64) error {
	cid, err := n.varID(child)
	if err != nil {
		return err
	}
	pids := make([]int, len(parents))
	combos := 1
	for i, p := range parents {
		pid, err := n.varID(p)
		if err != nil {
			return err
		}
		if pid == cid {
			return fmt.Errorf("bayes: %q cannot be its own parent", child)
		}
		pids[i] = pid
		combos *= len(n.states[pid])
	}
	if len(rows) != combos {
		return fmt.Errorf("bayes: CPT for %q has %d rows, want %d", child, len(rows), combos)
	}
	nc := len(n.states[cid])
	cp := make([][]float64, len(rows))
	for r, row := range rows {
		if len(row) != nc {
			return fmt.Errorf("bayes: CPT row %d for %q has %d entries, want %d", r, child, len(row), nc)
		}
		var sum float64
		for _, v := range row {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return fmt.Errorf("bayes: CPT for %q has invalid probability %v", child, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("bayes: CPT row %d for %q sums to %v", r, child, sum)
		}
		cp[r] = append([]float64(nil), row...)
	}
	n.cpts[cid] = &cpt{child: cid, parents: pids, rows: cp}
	n.validated = false
	return nil
}

// SetPrior installs an unconditional distribution for a root variable.
func (n *Network) SetPrior(name string, dist []float64) error {
	return n.SetCPT(name, nil, [][]float64{dist})
}

// Validate checks that every variable has a CPT and the parent graph is
// acyclic.
func (n *Network) Validate() error {
	for v, c := range n.cpts {
		if c == nil {
			return fmt.Errorf("bayes: variable %q has no CPT", n.names[v])
		}
	}
	// Kahn's algorithm over child->parent edges.
	indeg := make([]int, len(n.names))
	children := make([][]int, len(n.names))
	for v, c := range n.cpts {
		indeg[v] = len(c.parents)
		for _, p := range c.parents {
			children[p] = append(children[p], v)
		}
	}
	var queue []int
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for _, ch := range children[v] {
			indeg[ch]--
			if indeg[ch] == 0 {
				queue = append(queue, ch)
			}
		}
	}
	if seen != len(n.names) {
		return errors.New("bayes: parent graph has a cycle")
	}
	n.validated = true
	return nil
}

// Evidence maps variable names to observed state labels.
type Evidence map[string]string

// factor is a table over a set of variables.
type factor struct {
	vars []int // sorted network variable ids
	card []int
	vals []float64 // row-major, last variable fastest
}

func (n *Network) cptFactor(c *cpt) *factor {
	// Variables: parents then child, but factor vars must be sorted;
	// build via assignment enumeration for clarity (tables are small).
	vars := append(append([]int(nil), c.parents...), c.child)
	sorted := append([]int(nil), vars...)
	sort.Ints(sorted)
	card := make([]int, len(sorted))
	size := 1
	for i, v := range sorted {
		card[i] = len(n.states[v])
		size *= card[i]
	}
	f := &factor{vars: sorted, card: card, vals: make([]float64, size)}
	pos := make(map[int]int, len(sorted)) // var id -> position in sorted
	for i, v := range sorted {
		pos[v] = i
	}
	assign := make([]int, len(sorted))
	for idx := 0; idx < size; idx++ {
		// Decode idx into assignment (last var fastest).
		rem := idx
		for i := len(sorted) - 1; i >= 0; i-- {
			assign[i] = rem % card[i]
			rem /= card[i]
		}
		// Row index in CPT: parents with last parent fastest.
		row := 0
		for _, p := range c.parents {
			row = row*len(n.states[p]) + assign[pos[p]]
		}
		f.vals[idx] = c.rows[row][assign[pos[c.child]]]
	}
	return f
}

// reduce fixes variable v to state s, dropping v from the factor.
func (f *factor) reduce(v, s int) *factor {
	vi := -1
	for i, fv := range f.vars {
		if fv == v {
			vi = i
			break
		}
	}
	if vi < 0 {
		return f
	}
	nv := append(append([]int(nil), f.vars[:vi]...), f.vars[vi+1:]...)
	nc := append(append([]int(nil), f.card[:vi]...), f.card[vi+1:]...)
	size := 1
	for _, c := range nc {
		size *= c
	}
	out := &factor{vars: nv, card: nc, vals: make([]float64, size)}
	assign := make([]int, len(f.vars))
	for idx := range f.vals {
		rem := idx
		for i := len(f.vars) - 1; i >= 0; i-- {
			assign[i] = rem % f.card[i]
			rem /= f.card[i]
		}
		if assign[vi] != s {
			continue
		}
		oidx := 0
		for i := range nv {
			ai := i
			if i >= vi {
				ai = i + 1
			}
			oidx = oidx*nc[i] + assign[ai]
		}
		out.vals[oidx] = f.vals[idx]
	}
	return out
}

// multiply returns the product factor of a and b.
func multiply(a, b *factor) *factor {
	// Union of variables, sorted.
	union := append([]int(nil), a.vars...)
	for _, v := range b.vars {
		found := false
		for _, u := range union {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			union = append(union, v)
		}
	}
	sort.Ints(union)
	cardOf := map[int]int{}
	for i, v := range a.vars {
		cardOf[v] = a.card[i]
	}
	for i, v := range b.vars {
		cardOf[v] = b.card[i]
	}
	card := make([]int, len(union))
	size := 1
	for i, v := range union {
		card[i] = cardOf[v]
		size *= card[i]
	}
	out := &factor{vars: union, card: card, vals: make([]float64, size)}
	assign := make(map[int]int, len(union))
	idxAssign := make([]int, len(union))
	for idx := 0; idx < size; idx++ {
		rem := idx
		for i := len(union) - 1; i >= 0; i-- {
			idxAssign[i] = rem % card[i]
			rem /= card[i]
		}
		for i, v := range union {
			assign[v] = idxAssign[i]
		}
		out.vals[idx] = a.at(assign) * b.at(assign)
	}
	return out
}

// at returns the factor value under the given full assignment.
func (f *factor) at(assign map[int]int) float64 {
	idx := 0
	for i, v := range f.vars {
		idx = idx*f.card[i] + assign[v]
	}
	return f.vals[idx]
}

// sumOut marginalizes variable v out of the factor.
func (f *factor) sumOut(v int) *factor {
	vi := -1
	for i, fv := range f.vars {
		if fv == v {
			vi = i
			break
		}
	}
	if vi < 0 {
		return f
	}
	nv := append(append([]int(nil), f.vars[:vi]...), f.vars[vi+1:]...)
	nc := append(append([]int(nil), f.card[:vi]...), f.card[vi+1:]...)
	size := 1
	for _, c := range nc {
		size *= c
	}
	out := &factor{vars: nv, card: nc, vals: make([]float64, size)}
	assign := make([]int, len(f.vars))
	for idx := range f.vals {
		rem := idx
		for i := len(f.vars) - 1; i >= 0; i-- {
			assign[i] = rem % f.card[i]
			rem /= f.card[i]
		}
		oidx := 0
		for i := range nv {
			ai := i
			if i >= vi {
				ai = i + 1
			}
			oidx = oidx*nc[i] + assign[ai]
		}
		out.vals[oidx] += f.vals[idx]
	}
	return out
}

// Posterior returns P(query | evidence) as a map from the query
// variable's state labels to probabilities.
func (n *Network) Posterior(query string, ev Evidence) (map[string]float64, error) {
	if !n.validated {
		if err := n.Validate(); err != nil {
			return nil, err
		}
	}
	qid, err := n.varID(query)
	if err != nil {
		return nil, err
	}
	evIDs := make(map[int]int, len(ev))
	for name, label := range ev {
		vid, err := n.varID(name)
		if err != nil {
			return nil, err
		}
		sid, ok := n.stIdx[vid][label]
		if !ok {
			return nil, fmt.Errorf("bayes: variable %q has no state %q", name, label)
		}
		evIDs[vid] = sid
	}
	if s, isEv := evIDs[qid]; isEv {
		// Querying an observed variable: point mass.
		out := make(map[string]float64, len(n.states[qid]))
		for i, label := range n.states[qid] {
			if i == s {
				out[label] = 1
			} else {
				out[label] = 0
			}
		}
		return out, nil
	}

	// Build factors, reduce by evidence.
	var factors []*factor
	for _, c := range n.cpts {
		f := n.cptFactor(c)
		for v, s := range evIDs {
			f = f.reduce(v, s)
		}
		factors = append(factors, f)
	}
	// Eliminate all hidden variables (min-width greedy order).
	hidden := map[int]bool{}
	for v := range n.names {
		if v != qid {
			if _, isEv := evIDs[v]; !isEv {
				hidden[v] = true
			}
		}
	}
	for len(hidden) > 0 {
		// Pick the hidden variable whose elimination factor is smallest.
		best, bestSize := -1, math.MaxInt64
		for v := range hidden {
			size := 1
			seen := map[int]bool{}
			for _, f := range factors {
				if !containsVar(f, v) {
					continue
				}
				for i, fv := range f.vars {
					if fv != v && !seen[fv] {
						seen[fv] = true
						size *= f.card[i]
					}
				}
			}
			if size < bestSize {
				best, bestSize = v, size
			}
		}
		v := best
		delete(hidden, v)
		var prod *factor
		var rest []*factor
		for _, f := range factors {
			if containsVar(f, v) {
				if prod == nil {
					prod = f
				} else {
					prod = multiply(prod, f)
				}
			} else {
				rest = append(rest, f)
			}
		}
		if prod != nil {
			rest = append(rest, prod.sumOut(v))
		}
		factors = rest
	}
	// Multiply what remains and normalize over the query variable.
	var joint *factor
	for _, f := range factors {
		if joint == nil {
			joint = f
		} else {
			joint = multiply(joint, f)
		}
	}
	if joint == nil || len(joint.vars) != 1 || joint.vars[0] != qid {
		return nil, errors.New("bayes: internal error: elimination did not reduce to the query variable")
	}
	var z float64
	for _, v := range joint.vals {
		z += v
	}
	if z <= 0 {
		return nil, errors.New("bayes: evidence has zero probability")
	}
	out := make(map[string]float64, len(joint.vals))
	for i, label := range n.states[qid] {
		out[label] = joint.vals[i] / z
	}
	return out, nil
}

func containsVar(f *factor, v int) bool {
	for _, fv := range f.vars {
		if fv == v {
			return true
		}
	}
	return false
}

// MostLikely returns the query variable's maximum-posterior state and
// its probability.
func (n *Network) MostLikely(query string, ev Evidence) (string, float64, error) {
	post, err := n.Posterior(query, ev)
	if err != nil {
		return "", 0, err
	}
	// Deterministic tie-break: lexicographically smallest label wins.
	labels := make([]string, 0, len(post))
	for l := range post {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	best, bestP := "", -1.0
	for _, l := range labels {
		if post[l] > bestP {
			best, bestP = l, post[l]
		}
	}
	return best, bestP, nil
}
