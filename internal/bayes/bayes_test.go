package bayes

import (
	"math"
	"testing"
)

// sprinkler builds the classic rain/sprinkler/grass-wet network.
func sprinkler(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	mustOK(t, n.AddVariable("Rain", "yes", "no"))
	mustOK(t, n.AddVariable("Sprinkler", "on", "off"))
	mustOK(t, n.AddVariable("Wet", "yes", "no"))
	mustOK(t, n.SetPrior("Rain", []float64{0.2, 0.8}))
	mustOK(t, n.SetCPT("Sprinkler", []string{"Rain"}, [][]float64{
		{0.01, 0.99}, // Rain=yes
		{0.4, 0.6},   // Rain=no
	}))
	mustOK(t, n.SetCPT("Wet", []string{"Sprinkler", "Rain"}, [][]float64{
		{0.99, 0.01}, // on, yes
		{0.9, 0.1},   // on, no
		{0.8, 0.2},   // off, yes
		{0.0, 1.0},   // off, no
	}))
	return n
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSprinklerPosterior(t *testing.T) {
	n := sprinkler(t)
	// Known result: P(Rain=yes | Wet=yes) ~ 0.3577.
	post, err := n.Posterior("Rain", Evidence{"Wet": "yes"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post["yes"]-0.3577) > 0.001 {
		t.Fatalf("P(Rain|Wet) = %v, want ~0.3577", post["yes"])
	}
	if math.Abs(post["yes"]+post["no"]-1) > 1e-9 {
		t.Fatalf("posterior not normalized: %v", post)
	}
}

func TestPriorMarginal(t *testing.T) {
	n := sprinkler(t)
	post, err := n.Posterior("Rain", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post["yes"]-0.2) > 1e-9 {
		t.Fatalf("prior marginal = %v, want 0.2", post["yes"])
	}
}

func TestMarginalOfChild(t *testing.T) {
	n := sprinkler(t)
	// P(Sprinkler=on) = 0.2*0.01 + 0.8*0.4 = 0.322.
	post, err := n.Posterior("Sprinkler", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post["on"]-0.322) > 1e-9 {
		t.Fatalf("P(Sprinkler=on) = %v, want 0.322", post["on"])
	}
}

func TestExplainingAway(t *testing.T) {
	n := sprinkler(t)
	base, _ := n.Posterior("Rain", Evidence{"Wet": "yes"})
	explained, _ := n.Posterior("Rain", Evidence{"Wet": "yes", "Sprinkler": "on"})
	if explained["yes"] >= base["yes"] {
		t.Fatalf("explaining away failed: %v -> %v", base["yes"], explained["yes"])
	}
}

func TestQueryObservedVariable(t *testing.T) {
	n := sprinkler(t)
	post, err := n.Posterior("Wet", Evidence{"Wet": "no"})
	if err != nil {
		t.Fatal(err)
	}
	if post["no"] != 1 || post["yes"] != 0 {
		t.Fatalf("observed query = %v, want point mass", post)
	}
}

func TestMostLikely(t *testing.T) {
	n := sprinkler(t)
	state, p, err := n.MostLikely("Rain", Evidence{"Wet": "yes"})
	if err != nil {
		t.Fatal(err)
	}
	if state != "no" {
		t.Fatalf("MAP state = %q, want no (p=%v)", state, p)
	}
	if p < 0.6 || p > 0.7 {
		t.Fatalf("MAP p = %v, want ~0.64", p)
	}
}

func TestZeroProbabilityEvidence(t *testing.T) {
	n := NewNetwork()
	mustOK(t, n.AddVariable("A", "t", "f"))
	mustOK(t, n.AddVariable("B", "t", "f"))
	mustOK(t, n.SetPrior("A", []float64{1, 0}))
	mustOK(t, n.SetCPT("B", []string{"A"}, [][]float64{
		{1, 0},
		{0, 1},
	}))
	if _, err := n.Posterior("A", Evidence{"B": "f"}); err == nil {
		t.Fatal("impossible evidence must fail")
	}
}

func TestValidation(t *testing.T) {
	n := NewNetwork()
	if err := n.AddVariable("", "a", "b"); err == nil {
		t.Error("empty name must fail")
	}
	mustOK(t, n.AddVariable("X", "a", "b"))
	if err := n.AddVariable("X", "a", "b"); err == nil {
		t.Error("duplicate variable must fail")
	}
	if err := n.AddVariable("Y", "only"); err == nil {
		t.Error("single state must fail")
	}
	if err := n.AddVariable("Y", "a", "a"); err == nil {
		t.Error("duplicate state must fail")
	}
	if err := n.SetPrior("X", []float64{0.5, 0.6}); err == nil {
		t.Error("non-normalized prior must fail")
	}
	if err := n.SetPrior("X", []float64{0.5}); err == nil {
		t.Error("short prior must fail")
	}
	if err := n.SetCPT("X", []string{"X"}, nil); err == nil {
		t.Error("self parent must fail")
	}
	if err := n.SetCPT("Z", nil, [][]float64{{1, 0}}); err == nil {
		t.Error("unknown child must fail")
	}
	// Missing CPT caught by Validate.
	if err := n.Validate(); err == nil {
		t.Error("missing CPT must fail validation")
	}
}

func TestCycleDetection(t *testing.T) {
	n := NewNetwork()
	mustOK(t, n.AddVariable("A", "t", "f"))
	mustOK(t, n.AddVariable("B", "t", "f"))
	mustOK(t, n.SetCPT("A", []string{"B"}, [][]float64{{0.5, 0.5}, {0.5, 0.5}}))
	mustOK(t, n.SetCPT("B", []string{"A"}, [][]float64{{0.5, 0.5}, {0.5, 0.5}}))
	if err := n.Validate(); err == nil {
		t.Fatal("cycle must fail validation")
	}
}

func TestUnknownQueryAndEvidence(t *testing.T) {
	n := sprinkler(t)
	if _, err := n.Posterior("Nope", nil); err == nil {
		t.Error("unknown query must fail")
	}
	if _, err := n.Posterior("Rain", Evidence{"Nope": "x"}); err == nil {
		t.Error("unknown evidence variable must fail")
	}
	if _, err := n.Posterior("Rain", Evidence{"Wet": "soggy"}); err == nil {
		t.Error("unknown evidence state must fail")
	}
}

func TestChainNetwork(t *testing.T) {
	// A -> B -> C chain with deterministic CPTs propagates evidence
	// through the hidden middle variable.
	n := NewNetwork()
	mustOK(t, n.AddVariable("A", "t", "f"))
	mustOK(t, n.AddVariable("B", "t", "f"))
	mustOK(t, n.AddVariable("C", "t", "f"))
	mustOK(t, n.SetPrior("A", []float64{0.5, 0.5}))
	mustOK(t, n.SetCPT("B", []string{"A"}, [][]float64{{0.9, 0.1}, {0.1, 0.9}}))
	mustOK(t, n.SetCPT("C", []string{"B"}, [][]float64{{0.9, 0.1}, {0.1, 0.9}}))
	post, err := n.Posterior("C", Evidence{"A": "t"})
	if err != nil {
		t.Fatal(err)
	}
	// P(C=t|A=t) = 0.9*0.9 + 0.1*0.1 = 0.82.
	if math.Abs(post["t"]-0.82) > 1e-9 {
		t.Fatalf("P(C|A) = %v, want 0.82", post["t"])
	}
}

func TestThreeParentNetwork(t *testing.T) {
	// SINADRA-shaped: Risk depends on three binary factors; CPT rows
	// iterate last parent fastest.
	n := NewNetwork()
	mustOK(t, n.AddVariable("Alt", "high", "low"))
	mustOK(t, n.AddVariable("Vis", "poor", "good"))
	mustOK(t, n.AddVariable("Unc", "high", "low"))
	mustOK(t, n.AddVariable("Risk", "high", "low"))
	mustOK(t, n.SetPrior("Alt", []float64{0.5, 0.5}))
	mustOK(t, n.SetPrior("Vis", []float64{0.3, 0.7}))
	mustOK(t, n.SetPrior("Unc", []float64{0.4, 0.6}))
	rows := [][]float64{
		// Alt=high: Vis=poor {Unc=high, Unc=low}, Vis=good {...}
		{0.95, 0.05}, {0.8, 0.2}, {0.7, 0.3}, {0.4, 0.6},
		// Alt=low
		{0.6, 0.4}, {0.3, 0.7}, {0.2, 0.8}, {0.05, 0.95},
	}
	mustOK(t, n.SetCPT("Risk", []string{"Alt", "Vis", "Unc"}, rows))
	worst, err := n.Posterior("Risk", Evidence{"Alt": "high", "Vis": "poor", "Unc": "high"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(worst["high"]-0.95) > 1e-9 {
		t.Fatalf("worst case = %v, want 0.95", worst["high"])
	}
	best, _ := n.Posterior("Risk", Evidence{"Alt": "low", "Vis": "good", "Unc": "low"})
	if math.Abs(best["high"]-0.05) > 1e-9 {
		t.Fatalf("best case = %v, want 0.05", best["high"])
	}
	// Partial evidence marginalizes the rest.
	partial, _ := n.Posterior("Risk", Evidence{"Alt": "high"})
	if !(partial["high"] > 0.4 && partial["high"] < 0.95) {
		t.Fatalf("partial evidence posterior = %v", partial["high"])
	}
}

func BenchmarkSprinklerPosterior(b *testing.B) {
	n := NewNetwork()
	_ = n.AddVariable("Rain", "yes", "no")
	_ = n.AddVariable("Sprinkler", "on", "off")
	_ = n.AddVariable("Wet", "yes", "no")
	_ = n.SetPrior("Rain", []float64{0.2, 0.8})
	_ = n.SetCPT("Sprinkler", []string{"Rain"}, [][]float64{{0.01, 0.99}, {0.4, 0.6}})
	_ = n.SetCPT("Wet", []string{"Sprinkler", "Rain"}, [][]float64{
		{0.99, 0.01}, {0.9, 0.1}, {0.8, 0.2}, {0.0, 1.0},
	})
	ev := Evidence{"Wet": "yes"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Posterior("Rain", ev); err != nil {
			b.Fatal(err)
		}
	}
}
