package markov

import (
	"math"
	"testing"
	"testing/quick"
)

// twoState returns the classic up/down chain with failure rate lambda.
func twoState(lambda float64) *Chain {
	c := MustChain("up", "down")
	c.MustAddTransition("up", "down", lambda)
	return c
}

func TestTwoStateMatchesExponential(t *testing.T) {
	lambda := 0.01
	c := twoState(lambda)
	for _, tt := range []float64{0, 1, 10, 100, 500} {
		got, err := c.FailureProbability("up", tt, "down")
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-lambda*tt)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("t=%v: PoF = %v, want %v", tt, got, want)
		}
	}
}

func TestRepairableSteadyState(t *testing.T) {
	// up <-> down with lambda, mu: steady-state availability mu/(mu+lambda).
	lambda, mu := 0.02, 0.1
	c := MustChain("up", "down")
	c.MustAddTransition("up", "down", lambda)
	c.MustAddTransition("down", "up", mu)
	p0, _ := c.PointMass("up")
	d, err := c.TransientAt(p0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (mu + lambda)
	if math.Abs(d[0]-want) > 1e-6 {
		t.Fatalf("steady-state up = %v, want %v", d[0], want)
	}
}

func TestErlangStages(t *testing.T) {
	// 3 sequential stages each rate r: absorbed prob = Erlang-3 CDF.
	r := 0.5
	c := MustChain("s0", "s1", "s2", "dead")
	c.MustAddTransition("s0", "s1", r)
	c.MustAddTransition("s1", "s2", r)
	c.MustAddTransition("s2", "dead", r)
	tt := 4.0
	got, err := c.FailureProbability("s0", tt, "dead")
	if err != nil {
		t.Fatal(err)
	}
	x := r * tt
	want := 1 - math.Exp(-x)*(1+x+x*x/2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Erlang-3 CDF = %v, want %v", got, want)
	}
}

func TestTransientConservesMass(t *testing.T) {
	f := func(l1, l2, tRaw float64) bool {
		lambda := math.Mod(math.Abs(l1), 2) + 1e-6
		mu := math.Mod(math.Abs(l2), 2) + 1e-6
		tt := math.Mod(math.Abs(tRaw), 1000)
		c := MustChain("a", "b", "c")
		c.MustAddTransition("a", "b", lambda)
		c.MustAddTransition("b", "c", mu)
		c.MustAddTransition("b", "a", mu/2)
		p0, _ := c.PointMass("a")
		d, err := c.TransientAt(p0, tt)
		if err != nil {
			return false
		}
		if math.Abs(d.Sum()-1) > 1e-9 {
			return false
		}
		for _, v := range d {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFailureProbabilityMonotone(t *testing.T) {
	c := twoState(0.005)
	prev := -1.0
	for tt := 0.0; tt <= 1000; tt += 50 {
		p, err := c.FailureProbability("up", tt, "down")
		if err != nil {
			t.Fatal(err)
		}
		if p < prev-1e-12 {
			t.Fatalf("PoF decreased at t=%v: %v < %v", tt, p, prev)
		}
		prev = p
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewChain(); err == nil {
		t.Error("empty chain must fail")
	}
	if _, err := NewChain("a", "a"); err == nil {
		t.Error("duplicate state must fail")
	}
	if _, err := NewChain(""); err == nil {
		t.Error("empty name must fail")
	}
	c := MustChain("a", "b")
	if err := c.AddTransition("a", "a", 1); err == nil {
		t.Error("self transition must fail")
	}
	if err := c.AddTransition("a", "b", -1); err == nil {
		t.Error("negative rate must fail")
	}
	if err := c.AddTransition("a", "b", math.NaN()); err == nil {
		t.Error("NaN rate must fail")
	}
	if err := c.AddTransition("x", "b", 1); err == nil {
		t.Error("unknown state must fail")
	}
	if _, err := c.TransientAt(Distribution{1}, 1); err == nil {
		t.Error("wrong-length p0 must fail")
	}
	if _, err := c.TransientAt(Distribution{0.5, 0.4}, 1); err == nil {
		t.Error("non-normalized p0 must fail")
	}
	if _, err := c.TransientAt(Distribution{1, 0}, -1); err == nil {
		t.Error("negative time must fail")
	}
}

func TestOverwriteTransition(t *testing.T) {
	c := MustChain("a", "b")
	c.MustAddTransition("a", "b", 1)
	c.MustAddTransition("a", "b", 2)
	if got := c.Rate("a", "b"); got != 2 {
		t.Fatalf("Rate = %v, want 2", got)
	}
	if got := c.ExitRate("a"); got != 2 {
		t.Fatalf("ExitRate = %v, want 2 (diagonal must be restored on overwrite)", got)
	}
}

func TestIsAbsorbing(t *testing.T) {
	c := twoState(0.1)
	if c.IsAbsorbing("up") {
		t.Error("up is not absorbing")
	}
	if !c.IsAbsorbing("down") {
		t.Error("down is absorbing")
	}
}

func TestStaticChain(t *testing.T) {
	c := MustChain("only")
	p0, _ := c.PointMass("only")
	d, err := c.TransientAt(p0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 1 {
		t.Fatalf("static chain must stay put, got %v", d)
	}
}

func TestMeanTimeToAbsorption(t *testing.T) {
	lambda := 0.02
	c := twoState(lambda)
	mtta, err := c.MeanTimeToAbsorption("up", 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / lambda
	if math.Abs(mtta-want)/want > 0.02 {
		t.Fatalf("MTTA = %v, want ~%v", mtta, want)
	}
}

func TestMeanTimeToAbsorptionNoAbsorbing(t *testing.T) {
	c := MustChain("a", "b")
	c.MustAddTransition("a", "b", 1)
	c.MustAddTransition("b", "a", 1)
	mtta, err := c.MeanTimeToAbsorption("a", 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(mtta, 1) {
		t.Fatalf("MTTA = %v, want +Inf", mtta)
	}
}

func TestProbabilityAt(t *testing.T) {
	c := twoState(0.01)
	p0, _ := c.PointMass("up")
	up, err := c.ProbabilityAt(p0, "up", 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up-math.Exp(-1)) > 1e-9 {
		t.Fatalf("P(up, 100) = %v, want e^-1", up)
	}
	if _, err := c.ProbabilityAt(p0, "nope", 1); err == nil {
		t.Fatal("unknown state must fail")
	}
}

func TestLargeQT(t *testing.T) {
	// High rate * long horizon stresses the Poisson series (qt ~ 5000).
	c := MustChain("up", "down")
	c.MustAddTransition("up", "down", 5)
	c.MustAddTransition("down", "up", 5)
	p0, _ := c.PointMass("up")
	d, err := c.TransientAt(p0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-0.5) > 1e-6 {
		t.Fatalf("symmetric chain must equilibrate to 0.5, got %v", d[0])
	}
}

func BenchmarkTransient4State(b *testing.B) {
	b.ReportAllocs()
	c := MustChain("s0", "s1", "s2", "dead")
	c.MustAddTransition("s0", "s1", 0.5)
	c.MustAddTransition("s1", "s2", 0.5)
	c.MustAddTransition("s2", "dead", 0.5)
	p0, _ := c.PointMass("s0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TransientAt(p0, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransient4StateWorkspace is the reusable-workspace hot path
// SafeDrones runs per tick; steady state it must not allocate.
func BenchmarkTransient4StateWorkspace(b *testing.B) {
	b.ReportAllocs()
	c := MustChain("s0", "s1", "s2", "dead")
	c.MustAddTransition("s0", "s1", 0.5)
	c.MustAddTransition("s1", "s2", 0.5)
	c.MustAddTransition("s2", "dead", 0.5)
	p0, _ := c.PointMass("s0")
	dst := make(Distribution, c.NumStates())
	var ws Workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.TransientAtInto(dst, p0, 10, &ws); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTransientAtIntoMatchesTransientAt pins the workspace path to the
// allocating wrapper bit for bit, across horizons short and long (the
// multi-step uniformization split).
func TestTransientAtIntoMatchesTransientAt(t *testing.T) {
	c := MustChain("s0", "s1", "s2", "dead")
	c.MustAddTransition("s0", "s1", 0.5)
	c.MustAddTransition("s1", "s2", 0.3)
	c.MustAddTransition("s2", "s1", 0.2)
	c.MustAddTransition("s2", "dead", 0.5)
	p0, _ := c.PointMass("s0")
	var ws Workspace
	dst := make(Distribution, c.NumStates())
	for _, horizon := range []float64{0, 0.001, 1, 10, 500, 5000} {
		want, err := c.TransientAt(p0, horizon)
		if err != nil {
			t.Fatal(err)
		}
		// Reuse the same workspace across horizons, as SafeDrones does.
		if err := c.TransientAtInto(dst, p0, horizon, &ws); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("horizon %v state %d: workspace %v != wrapper %v (must be bit-identical)", horizon, i, dst[i], want[i])
			}
		}
	}
}

func TestStationaryDistribution(t *testing.T) {
	// up <-> down: stationary up = mu/(mu+lambda).
	lambda, mu := 0.02, 0.1
	c := MustChain("up", "down")
	c.MustAddTransition("up", "down", lambda)
	c.MustAddTransition("down", "up", mu)
	d, err := c.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	want := mu / (mu + lambda)
	if math.Abs(d[0]-want) > 1e-6 {
		t.Fatalf("stationary up = %v, want %v", d[0], want)
	}
}

func TestStationaryAbsorbing(t *testing.T) {
	c := twoState(0.05)
	d, err := c.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[1]-1) > 1e-6 {
		t.Fatalf("absorbing mass = %v, want 1", d[1])
	}
}

func TestStationaryNoTransitions(t *testing.T) {
	c := MustChain("a", "b")
	d, err := c.StationaryDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d[0]-0.5) > 1e-12 {
		t.Fatalf("static chain stationary = %v", d)
	}
}
