package markov

// JSON exchange format for CTMC models, so SafeDrones' complex basic
// events travel inside EDDI documents like the other model types.

import (
	"encoding/json"
	"fmt"
)

type transitionJSON struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	Rate float64 `json:"rate"`
}

type chainJSON struct {
	States      []string         `json:"states"`
	Transitions []transitionJSON `json:"transitions"`
}

// MarshalJSON encodes the chain as its exchange document, transitions
// ordered by (from, to) state index.
func (c *Chain) MarshalJSON() ([]byte, error) {
	doc := chainJSON{States: c.States()}
	for i, from := range c.states {
		for j, to := range c.states {
			if i == j {
				continue
			}
			if r := c.gen[i*len(c.states)+j]; r > 0 {
				doc.Transitions = append(doc.Transitions, transitionJSON{From: from, To: to, Rate: r})
			}
		}
	}
	return json.Marshal(doc)
}

// ParseChain decodes and validates a chain document.
func ParseChain(data []byte) (*Chain, error) {
	var doc chainJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("markov: decoding: %w", err)
	}
	ch, err := NewChain(doc.States...)
	if err != nil {
		return nil, err
	}
	for _, tr := range doc.Transitions {
		if err := ch.AddTransition(tr.From, tr.To, tr.Rate); err != nil {
			return nil, err
		}
	}
	return ch, nil
}
