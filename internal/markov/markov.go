// Package markov implements continuous-time Markov chains (CTMCs) with
// transient analysis via uniformization. SafeDrones (paper §III-A1)
// models each "complex basic event" — propulsion, battery, processor —
// as a small CTMC whose absorbing states represent component failure;
// this package is the numeric engine behind those models.
package markov

import (
	"errors"
	"fmt"
	"math"
)

// Chain is a finite-state CTMC described by its infinitesimal generator
// matrix. Build one with NewChain and AddTransition, then query
// transient state probabilities with TransientAt.
type Chain struct {
	states []string
	index  map[string]int
	// gen is the row-major n×n generator: gen[i*n+j] is the transition
	// rate from state i to state j (i != j); the diagonal is maintained
	// as the negative row sum. Flat storage keeps the uniformization
	// inner product on one cache line per row.
	gen []float64
}

// NewChain creates a chain with the given state names. Names must be
// unique and non-empty.
func NewChain(states ...string) (*Chain, error) {
	if len(states) == 0 {
		return nil, errors.New("markov: chain needs at least one state")
	}
	c := &Chain{
		states: append([]string(nil), states...),
		index:  make(map[string]int, len(states)),
	}
	for i, s := range states {
		if s == "" {
			return nil, errors.New("markov: empty state name")
		}
		if _, dup := c.index[s]; dup {
			return nil, fmt.Errorf("markov: duplicate state %q", s)
		}
		c.index[s] = i
	}
	c.gen = make([]float64, len(states)*len(states))
	return c, nil
}

// MustChain is NewChain that panics on error; for statically known models.
func MustChain(states ...string) *Chain {
	c, err := NewChain(states...)
	if err != nil {
		panic(err)
	}
	return c
}

// NumStates returns the number of states.
func (c *Chain) NumStates() int { return len(c.states) }

// States returns a copy of the state names in index order.
func (c *Chain) States() []string { return append([]string(nil), c.states...) }

// StateIndex returns the index of the named state.
func (c *Chain) StateIndex(name string) (int, error) {
	i, ok := c.index[name]
	if !ok {
		return 0, fmt.Errorf("markov: unknown state %q", name)
	}
	return i, nil
}

// AddTransition sets the rate (per second, or any consistent time unit)
// of the transition from -> to. Self loops and negative rates are
// rejected. Calling it again for the same pair overwrites the rate.
func (c *Chain) AddTransition(from, to string, rate float64) error {
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("markov: invalid rate %v for %s->%s", rate, from, to)
	}
	i, err := c.StateIndex(from)
	if err != nil {
		return err
	}
	j, err := c.StateIndex(to)
	if err != nil {
		return err
	}
	if i == j {
		return fmt.Errorf("markov: self transition on %q", from)
	}
	// Restore diagonal contribution of any previous rate, then set.
	n := len(c.states)
	c.gen[i*n+i] += c.gen[i*n+j]
	c.gen[i*n+j] = rate
	c.gen[i*n+i] -= rate
	return nil
}

// MustAddTransition is AddTransition that panics on error.
func (c *Chain) MustAddTransition(from, to string, rate float64) {
	if err := c.AddTransition(from, to, rate); err != nil {
		panic(err)
	}
}

// Rate returns the current rate from -> to (0 when absent).
func (c *Chain) Rate(from, to string) float64 {
	i, err1 := c.StateIndex(from)
	j, err2 := c.StateIndex(to)
	if err1 != nil || err2 != nil || i == j {
		return 0
	}
	return c.gen[i*len(c.states)+j]
}

// ExitRate returns the total outgoing rate of the named state.
func (c *Chain) ExitRate(state string) float64 {
	i, err := c.StateIndex(state)
	if err != nil {
		return 0
	}
	return -c.gen[i*len(c.states)+i]
}

// IsAbsorbing reports whether the named state has no outgoing
// transitions.
func (c *Chain) IsAbsorbing(state string) bool { return c.ExitRate(state) == 0 }

// Distribution is a probability vector over chain states.
type Distribution []float64

// Sum returns the total probability mass (should be ~1).
func (d Distribution) Sum() float64 {
	var s float64
	for _, v := range d {
		s += v
	}
	return s
}

// PointMass returns the distribution concentrated on the named state.
func (c *Chain) PointMass(state string) (Distribution, error) {
	i, err := c.StateIndex(state)
	if err != nil {
		return nil, err
	}
	d := make(Distribution, len(c.states))
	d[i] = 1
	return d, nil
}

// uniformizationEpsilon bounds the truncation error of the Poisson
// series in TransientAt.
const uniformizationEpsilon = 1e-12

// maxQTPerStep bounds the Poisson series length of one uniformization
// step; longer horizons are split into several steps (the series cost
// is linear in q*t either way, but each step stays numerically tame).
const maxQTPerStep = 4000

// Workspace holds the scratch vectors of one uniformization solve so
// repeated TransientAtInto calls allocate nothing. A zero Workspace is
// ready to use; buffers grow on first use and are reused afterwards.
// A Workspace must not be shared between concurrent solves — give each
// goroutine (each UAV monitor, in the platform) its own.
type Workspace struct {
	cur, stepOut, vec, next []float64
}

// grow sizes every scratch vector to n, reusing capacity.
func (w *Workspace) grow(n int) {
	if cap(w.cur) < n {
		w.cur = make([]float64, n)
		w.stepOut = make([]float64, n)
		w.vec = make([]float64, n)
		w.next = make([]float64, n)
	}
	w.cur = w.cur[:n]
	w.stepOut = w.stepOut[:n]
	w.vec = w.vec[:n]
	w.next = w.next[:n]
}

// TransientAt returns the state distribution at time t starting from
// p0, computed by uniformization (Jensen's method): with q >= max exit
// rate and P = I + Q/q,
//
//	p(t) = sum_k Poisson(k; q t) * p0 P^k.
//
// The series is truncated once the accumulated Poisson mass exceeds
// 1 - uniformizationEpsilon. Horizons with q*t beyond maxQTPerStep are
// evaluated by stepping the chain, so arbitrarily long missions stay
// numerically stable.
func (c *Chain) TransientAt(p0 Distribution, t float64) (Distribution, error) {
	out := make(Distribution, len(c.states))
	if err := c.TransientAtInto(out, p0, t, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// TransientAtInto is TransientAt writing the result into dst (length
// NumStates, must not alias p0) and drawing all scratch from ws, so a
// caller that reuses its Workspace performs no allocation. A nil ws
// uses a throwaway workspace. The result is bit-identical to
// TransientAt.
func (c *Chain) TransientAtInto(dst, p0 Distribution, t float64, ws *Workspace) error {
	n := len(c.states)
	if len(p0) != n {
		return fmt.Errorf("markov: p0 has %d entries, chain has %d states", len(p0), n)
	}
	if len(dst) != n {
		return fmt.Errorf("markov: dst has %d entries, chain has %d states", len(dst), n)
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("markov: invalid time %v", t)
	}
	if math.Abs(p0.Sum()-1) > 1e-9 {
		return fmt.Errorf("markov: p0 sums to %v, want 1", p0.Sum())
	}
	var q float64
	for i := 0; i < n; i++ {
		if r := -c.gen[i*n+i]; r > q {
			q = r
		}
	}
	if q == 0 || t == 0 {
		copy(dst, p0)
		return nil
	}
	if ws == nil {
		ws = &Workspace{}
	}
	ws.grow(n)
	qEff := q * 1.02
	steps := 1
	if qEff*t > maxQTPerStep {
		steps = int(math.Ceil(qEff * t / maxQTPerStep))
	}
	cur, out := ws.cur, ws.stepOut
	copy(cur, p0)
	dt := t / float64(steps)
	for s := 0; s < steps; s++ {
		if err := c.transientStep(out, cur, dt, qEff, ws); err != nil {
			return err
		}
		cur, out = out, cur
	}
	copy(dst, cur)
	ws.cur, ws.stepOut = cur, out
	return nil
}

// transientStep runs one uniformization evaluation with q*t bounded,
// writing into out and using ws.vec/ws.next as scratch.
func (c *Chain) transientStep(out, p0 []float64, t, q float64, ws *Workspace) error {
	n := len(c.states)
	for i := range out {
		out[i] = 0
	}

	// DTMC kernel P = I + Q/q, applied as vector-matrix products.
	vec, next := ws.vec, ws.next
	copy(vec, p0)

	qt := q * t
	// Poisson term computed iteratively in log space to survive large qt.
	logTerm := -qt // log Poisson(0; qt)
	cum := 0.0
	for k := 0; ; k++ {
		w := math.Exp(logTerm)
		for i := 0; i < n; i++ {
			out[i] += w * vec[i]
		}
		cum += w
		if cum >= 1-uniformizationEpsilon {
			break
		}
		// Accumulated rounding can leave cum a hair below the mass
		// target even though the series is exhausted; once past the
		// Poisson mode with negligible terms, the tail is spent.
		if float64(k) > qt && w < uniformizationEpsilon {
			break
		}
		if k > 2*maxQTPerStep {
			return errors.New("markov: uniformization failed to converge")
		}
		// vec <- vec * P  ==  vec + (vec*Q)/q
		for j := 0; j < n; j++ {
			var acc float64
			for i := 0; i < n; i++ {
				acc += vec[i] * c.gen[i*n+j]
			}
			next[j] = vec[j] + acc/q
			if next[j] < 0 { // clamp tiny negative round-off
				next[j] = 0
			}
		}
		vec, next = next, vec
		logTerm += math.Log(qt) - math.Log(float64(k+1))
	}
	// Renormalize the truncated series.
	var s float64
	for _, v := range out {
		s += v
	}
	if s > 0 {
		for i := range out {
			out[i] /= s
		}
	}
	return nil
}

// ProbabilityAt returns the probability of occupying the named state at
// time t starting from p0.
func (c *Chain) ProbabilityAt(p0 Distribution, state string, t float64) (float64, error) {
	i, err := c.StateIndex(state)
	if err != nil {
		return 0, err
	}
	d, err := c.TransientAt(p0, t)
	if err != nil {
		return 0, err
	}
	return d[i], nil
}

// FailureProbability returns the total probability mass on the given
// absorbing "failure" states at time t, starting from the named initial
// state. It is the quantity SafeDrones reports as probability of
// failure (PoF).
func (c *Chain) FailureProbability(initial string, t float64, failureStates ...string) (float64, error) {
	p0, err := c.PointMass(initial)
	if err != nil {
		return 0, err
	}
	d, err := c.TransientAt(p0, t)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, fs := range failureStates {
		i, err := c.StateIndex(fs)
		if err != nil {
			return 0, err
		}
		sum += d[i]
	}
	return sum, nil
}

// StationaryDistribution returns the long-run state distribution of an
// irreducible chain, computed by evolving the uniformized DTMC until
// the distribution stops moving. Chains with absorbing states
// concentrate on them; a chain with no transitions returns the uniform
// point of view of the caller-supplied start (uniform over states).
func (c *Chain) StationaryDistribution() (Distribution, error) {
	n := len(c.states)
	cur := make(Distribution, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	// Repeatedly advance by a horizon long relative to the slowest
	// rate until converged.
	var slowest float64 = math.Inf(1)
	any := false
	for i := 0; i < n; i++ {
		if r := -c.gen[i*n+i]; r > 0 {
			any = true
			if r < slowest {
				slowest = r
			}
		}
	}
	if !any {
		return cur, nil
	}
	horizon := 10 / slowest
	for iter := 0; iter < 200; iter++ {
		next, err := c.TransientAt(cur, horizon)
		if err != nil {
			return nil, err
		}
		var delta float64
		for i := range next {
			d := next[i] - cur[i]
			if d < 0 {
				d = -d
			}
			delta += d
		}
		cur = next
		if delta < 1e-10 {
			return cur, nil
		}
	}
	return cur, nil
}

// MeanTimeToAbsorption estimates the expected time to reach any
// absorbing state from the named initial state, by numeric integration
// of the survival function S(t) = 1 - P(absorbed by t). The integration
// advances in steps of dt until S < tol or horizon is reached; it
// returns +Inf if the chain has no absorbing state reachable mass.
func (c *Chain) MeanTimeToAbsorption(initial string, dt, horizon float64) (float64, error) {
	if dt <= 0 || horizon <= 0 {
		return 0, errors.New("markov: dt and horizon must be positive")
	}
	var absorbing []string
	for _, s := range c.states {
		if c.IsAbsorbing(s) {
			absorbing = append(absorbing, s)
		}
	}
	if len(absorbing) == 0 {
		return math.Inf(1), nil
	}
	var mtta float64
	prevS := 1.0
	for t := dt; t <= horizon; t += dt {
		pf, err := c.FailureProbability(initial, t, absorbing...)
		if err != nil {
			return 0, err
		}
		s := 1 - pf
		mtta += (prevS + s) / 2 * dt // trapezoid
		prevS = s
		if s < 1e-6 {
			return mtta, nil
		}
	}
	return math.Inf(1), nil
}
