package experiments

import (
	"io"
	"sort"
	"strings"
	"time"

	"sesame/internal/linksim"
	"sesame/internal/obsv"
	"sesame/internal/platform"
	"sesame/internal/uavsim"
)

// ObsvMonitorRow is one monitor's latency summary over a full mission.
type ObsvMonitorRow struct {
	Monitor string
	Evals   uint64
	MeanUS  float64 // mean Observe latency, microseconds
	P95US   float64 // 95th-percentile latency (bucket upper bound)
	TotalMS float64 // total time spent in this monitor
	ShareP  float64 // share of the observe phase, percent
}

// ObsvPhaseRow is one scheduler phase's latency summary.
type ObsvPhaseRow struct {
	Phase   string
	Ticks   uint64
	MeanUS  float64
	TotalMS float64
}

// ObsvResult is the observability self-measurement: what the metrics
// layer sees during a seeded mission, and what it costs to run it.
type ObsvResult struct {
	Monitors []ObsvMonitorRow
	Phases   []ObsvPhaseRow

	// Trace-ring occupancy after the run.
	TraceRecorded uint64 // events recorded (including overwritten)
	TraceHeld     int    // events still in the ring
	TraceCap      int

	// Wall-clock cost of instrumentation: the same seeded mission run
	// with and without a registry attached.
	InstrumentedMS   float64
	UninstrumentedMS float64
	OverheadPct      float64

	CounterSeries int // deterministic counter series exported to Status
}

// RunObsv flies one seeded 3-UAV mission with full observability on
// (metrics registry, trace ring, instrumented lossy links), summarizes
// the per-monitor and per-phase latency profile, then reruns the same
// mission uninstrumented to measure the overhead of the metrics layer.
func RunObsv(seed int64) (*ObsvResult, error) {
	// The missions are short (a few ms), so any single wall-clock
	// sample is mostly scheduler/GC noise: fly the variants
	// alternating and keep each one's fastest flight. The registry
	// from the final instrumented flight is the one reported — the
	// counters are deterministic across flights. The authoritative
	// overhead number is BenchmarkPlatformTickFleet (BENCH_PR4.json);
	// this is a quick self-check.
	var reg *obsv.Registry
	instrumented, uninstrumented := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 6; round++ {
		off, err := runObsvOnce(seed, nil)
		if err != nil {
			return nil, err
		}
		if off < uninstrumented {
			uninstrumented = off
		}
		reg = obsv.NewRegistry()
		reg.SetTrace(obsv.TraceRingForBudget(1 << 20)) // ~1 MiB of trace
		on, err := runObsvOnce(seed, reg)
		if err != nil {
			return nil, err
		}
		if on < instrumented {
			instrumented = on
		}
	}

	res := &ObsvResult{
		InstrumentedMS:   float64(instrumented) / float64(time.Millisecond),
		UninstrumentedMS: float64(uninstrumented) / float64(time.Millisecond),
		CounterSeries:    len(reg.CounterValues()),
	}
	if uninstrumented > 0 {
		res.OverheadPct = 100 * float64(instrumented-uninstrumented) / float64(uninstrumented)
	}
	ring := reg.Trace()
	res.TraceRecorded = ring.Total()
	res.TraceHeld = len(ring.Snapshot())
	res.TraceCap = ring.Capacity()

	snap := reg.Snapshot()
	var observeTotal float64
	for _, h := range snap.Histograms {
		if h.Name == "sesame_platform_phase_seconds" && h.Value == "observe" {
			observeTotal = h.Sum
		}
	}
	var ticks uint64
	for _, c := range snap.Counters {
		if c.Name == "sesame_platform_ticks_total" {
			ticks = c.Count
		}
	}
	for _, h := range snap.Histograms {
		switch h.Name {
		case "sesame_monitor_observe_seconds":
			if h.Count == 0 {
				continue
			}
			row := ObsvMonitorRow{
				Monitor: h.Value,
				Evals:   h.Count,
				MeanUS:  h.Sum / float64(h.Count) * 1e6,
				TotalMS: h.Sum * 1e3,
			}
			if observeTotal > 0 {
				row.ShareP = 100 * h.Sum / observeTotal
			}
			row.P95US = histQuantileUS(h, 0.95)
			res.Monitors = append(res.Monitors, row)
		case "sesame_platform_phase_seconds":
			if h.Count == 0 {
				continue
			}
			res.Phases = append(res.Phases, ObsvPhaseRow{
				Phase:   h.Value,
				Ticks:   ticks,
				MeanUS:  h.Sum / float64(h.Count) * 1e6,
				TotalMS: h.Sum * 1e3,
			})
		}
	}
	sort.Slice(res.Monitors, func(i, j int) bool { return res.Monitors[i].TotalMS > res.Monitors[j].TotalMS })
	return res, nil
}

// histQuantileUS estimates quantile q from a snapshot's bucket counts,
// in microseconds (the bucket upper bound containing the quantile).
func histQuantileUS(h obsv.HistogramSample, q float64) float64 {
	rank := uint64(q * float64(h.Count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			if i < len(h.Bounds) {
				return h.Bounds[i] * 1e6
			}
			break
		}
	}
	if n := len(h.Bounds); n > 0 {
		return h.Bounds[n-1] * 1e6
	}
	return 0
}

// runObsvOnce flies the standard 3-UAV mission (mildly lossy links so
// the link-layer counters are exercised) and returns the wall-clock
// time spent in the mission loop. reg == nil flies it uninstrumented.
func runObsvOnce(seed int64, reg *obsv.Registry) (time.Duration, error) {
	w := uavsim.NewWorld(testOrigin, seed)
	for _, id := range []string{"u1", "u2", "u3"} {
		if _, err := w.AddUAV(uavsim.UAVConfig{ID: id, Home: testOrigin, CruiseSpeedMS: 12}); err != nil {
			return 0, err
		}
	}
	cfg := platform.DefaultConfig()
	cfg.Observability = reg
	p, err := platform.New(w, nil, cfg)
	if err != nil {
		return 0, err
	}
	defer p.Close()

	layer := linksim.New(w.Clock, "obsv")
	layer.Instrument(reg)
	layer.AttachBus(w.Bus)
	layer.AttachBroker(p.Broker, func(topic string) string {
		if uav, ok := strings.CutPrefix(topic, "alerts/ids/"); ok {
			return uav
		}
		return ""
	})
	for _, id := range []string{"u1", "u2", "u3"} {
		layer.Link(id).SetProfile(linksim.Profile{DropProb: 0.02, DupProb: 0.01})
	}

	if err := p.StartMission(squareArea(350)); err != nil {
		return 0, err
	}
	start := w.Clock.Now()
	wall := time.Now()
	for w.Clock.Now() < start+900 && !p.MissionComplete() {
		if err := p.Tick(); err != nil {
			return 0, err
		}
	}
	return time.Since(wall), nil
}

// Print writes the observability report.
func (r *ObsvResult) Print(w io.Writer) {
	printf(w, "== Observability self-measurement (-exp obsv) ==\n")
	printf(w, "Scheduler phases (per tick):\n")
	printf(w, "  %-8s %8s %10s %10s\n", "phase", "ticks", "mean µs", "total ms")
	for _, p := range r.Phases {
		printf(w, "  %-8s %8d %10.1f %10.2f\n", p.Phase, p.Ticks, p.MeanUS, p.TotalMS)
	}
	printf(w, "Monitor latency (observe phase):\n")
	printf(w, "  %-10s %8s %10s %10s %10s %7s\n", "monitor", "evals", "mean µs", "p95 ≤µs", "total ms", "share")
	for _, m := range r.Monitors {
		printf(w, "  %-10s %8d %10.2f %10.1f %10.2f %6.1f%%\n",
			m.Monitor, m.Evals, m.MeanUS, m.P95US, m.TotalMS, m.ShareP)
	}
	printf(w, "Trace ring: %d events recorded, %d held (cap %d)\n",
		r.TraceRecorded, r.TraceHeld, r.TraceCap)
	printf(w, "Deterministic counter series in Status: %d\n", r.CounterSeries)
	printf(w, "Mission wall time: %.1f ms instrumented vs %.1f ms uninstrumented (overhead %+.1f%%)\n",
		r.InstrumentedMS, r.UninstrumentedMS, r.OverheadPct)
}
