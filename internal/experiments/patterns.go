package experiments

import (
	"errors"
	"fmt"
	"io"

	"sesame/internal/detection"
	"sesame/internal/geo"
	"sesame/internal/sar"
	"sesame/internal/uavsim"
)

// PatternRow compares one coverage pattern on the same search task.
type PatternRow struct {
	Pattern          string
	PathLengthM      float64
	Coverage         float64
	FirstDetectionS  float64 // -1 when nothing found
	TotalDetected    int
	MissionSeconds   float64
	DetectedFraction float64
}

// PatternResult is the coverage-pattern extension experiment (EXT-a in
// DESIGN.md): boustrophedon vs spiral on a centre-weighted person
// distribution, the trade SAR doctrine cares about — sweep guarantees
// uniform coverage, spiral reaches the likely target area sooner.
type PatternResult struct {
	Rows    []PatternRow
	Persons int
}

// RunPatterns flies both patterns over identical scenes and scores
// coverage, path length and detection timing.
func RunPatterns(seed int64) (*PatternResult, error) {
	area := squareArea(300)
	centre, err := area.Centroid()
	if err != nil {
		return nil, err
	}
	const spacing = 40.0
	boPath, err := sar.BoustrophedonPath(area, spacing)
	if err != nil {
		return nil, err
	}
	spPath, err := sar.SpiralPath(area, spacing)
	if err != nil {
		return nil, err
	}
	esPath, err := sar.ExpandingSquarePath(area, spacing)
	if err != nil {
		return nil, err
	}
	res := &PatternResult{}
	for _, pat := range []struct {
		name string
		path []geo.LatLng
	}{
		{"boustrophedon", boPath},
		{"spiral-inward", spPath},
		{"expanding-square", esPath},
	} {
		w := uavsim.NewWorld(testOrigin, seed)
		u, err := w.AddUAV(uavsim.UAVConfig{ID: "u1", Home: testOrigin, CruiseSpeedMS: 10})
		if err != nil {
			return nil, err
		}
		det, err := detection.NewDetector(w.Clock.Stream("detector"))
		if err != nil {
			return nil, err
		}
		// Persons cluster near the centre (last-known-position prior):
		// scatter within the inner half of the area.
		inner := geo.Polygon{
			geo.Destination(centre, 225, 110),
			geo.Destination(centre, 315, 110),
			geo.Destination(centre, 45, 110),
			geo.Destination(centre, 135, 110),
		}
		scene, err := detection.NewRandomScene(inner, 10, 0.2, w.Clock.Stream("scene"))
		if err != nil {
			return nil, err
		}
		if err := u.TakeOff(25); err != nil {
			return nil, err
		}
		if err := w.Run(10, 1); err != nil {
			return nil, err
		}
		if err := u.FlyMission(pat.path, 25); err != nil {
			return nil, err
		}
		start := w.Clock.Now()
		seen := map[int]bool{}
		first := -1.0
		for w.Clock.Now() < start+1200 && u.Mode() == uavsim.ModeMission {
			if err := w.Step(1); err != nil {
				return nil, err
			}
			frame, err := det.Capture("u1", w.Clock.Now(), u.TruePosition(),
				detection.Conditions{AltitudeM: u.AltitudeM(), Visibility: 1}, scene)
			if err != nil {
				return nil, err
			}
			for _, d := range frame.Detections {
				if d.PersonID >= 0 && !seen[d.PersonID] {
					seen[d.PersonID] = true
					if first < 0 {
						first = w.Clock.Now() - start
					}
				}
			}
		}
		cov, err := sar.CoverageFraction(area, pat.path, spacing/2+5, 10)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, PatternRow{
			Pattern:          pat.name,
			PathLengthM:      geo.PathLength(pat.path),
			Coverage:         cov,
			FirstDetectionS:  first,
			TotalDetected:    len(seen),
			MissionSeconds:   w.Clock.Now() - start,
			DetectedFraction: float64(len(seen)) / float64(len(scene.Persons)),
		})
		res.Persons = len(scene.Persons)
	}
	if len(res.Rows) != 3 {
		return nil, errors.New("experiments: pattern comparison incomplete")
	}
	return res, nil
}

// Print writes the pattern comparison table.
func (r *PatternResult) Print(w io.Writer) {
	printf(w, "== EXT-a: coverage pattern comparison (centre-clustered persons) ==\n\n")
	printf(w, "%-15s %10s %9s %12s %10s %10s\n",
		"pattern", "path (m)", "coverage", "first-find", "found", "mission")
	for _, row := range r.Rows {
		first := "never"
		if row.FirstDetectionS >= 0 {
			first = fmt.Sprintf("%.0fs", row.FirstDetectionS)
		}
		printf(w, "%-15s %10.0f %8.0f%% %12s %7d/%2d %9.0fs\n",
			row.Pattern, row.PathLengthM, row.Coverage*100, first,
			row.TotalDetected, r.Persons, row.MissionSeconds)
	}
}
