package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sesame/internal/campaign"
	"sesame/internal/linksim"
)

// CampaignResult is the Monte Carlo campaign engine demonstration
// (-exp campaign): a small seeded sweep is flown twice — once
// uninterrupted and once killed after a few runs and resumed — and the
// merged outputs must be byte-identical; one journaled run is then
// re-executed standalone to prove the (seed, params) determinism gate.
type CampaignResult struct {
	Spec       campaign.Spec
	TotalRuns  int
	Workers    int
	RunsPerSec float64

	// Kill/resume outcome.
	KilledAfter   int
	ResumedRuns   int
	FilesCompared []string
	Identical     bool

	// Standalone-rerun triage gate.
	RerunIndex  int
	RerunKey    string
	DigestMatch bool

	// Headline risk-surface excerpt.
	Groups []campaign.GroupStats
}

// campaignSmokeSpec is the 3-seed × 3-link × 1-fault demo grid.
func campaignSmokeSpec(seed int64) campaign.Spec {
	return campaign.Spec{
		Name:      "smoke",
		SeedFrom:  seed,
		SeedCount: 3,
		HorizonS:  600,
		AreaSideM: 250,
		Links: []campaign.LinkVariant{
			{Name: "nominal"},
			{Name: "lossy-10", Profile: linksim.Profile{DropProb: 0.10}},
			{Name: "blackout-45s", OutageStartS: 90, OutageDurS: 45},
		},
		Faults: []campaign.FaultVariant{
			{Name: "spoof-30", SpoofAtS: 30},
		},
	}
}

// RunCampaign executes the campaign smoke: uninterrupted sweep,
// kill-after-K + resume sweep, byte comparison, standalone rerun.
func RunCampaign(seed int64) (*CampaignResult, error) {
	spec := campaignSmokeSpec(seed)
	res := &CampaignResult{Spec: spec, Workers: 2, KilledAfter: 4}

	refDir, err := os.MkdirTemp("", "sesame-campaign-ref-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(refDir)
	resDir, err := os.MkdirTemp("", "sesame-campaign-resume-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(resDir)

	// Uninterrupted reference sweep.
	eng, err := campaign.New(spec, campaign.Options{OutDir: refDir, Workers: res.Workers})
	if err != nil {
		return nil, err
	}
	res.TotalRuns = eng.Total()
	sum, err := eng.Run(context.Background())
	if err != nil {
		return nil, err
	}
	if !sum.Complete {
		return nil, fmt.Errorf("reference sweep incomplete: %+v", sum)
	}
	res.RunsPerSec = sum.RunsPerSec

	// Killed-and-resumed sweep.
	eng, err = campaign.New(spec, campaign.Options{OutDir: resDir, Workers: res.Workers, MaxRuns: res.KilledAfter})
	if err != nil {
		return nil, err
	}
	if _, err := eng.Run(context.Background()); err != nil {
		return nil, err
	}
	eng, err = campaign.New(spec, campaign.Options{OutDir: resDir, Workers: res.Workers, Resume: true})
	if err != nil {
		return nil, err
	}
	sum, err = eng.Run(context.Background())
	if err != nil {
		return nil, err
	}
	if !sum.Complete {
		return nil, fmt.Errorf("resumed sweep incomplete: %+v", sum)
	}
	res.ResumedRuns = sum.Replayed

	// Byte-compare the merged result set.
	res.FilesCompared = []string{
		campaign.RunsCSVName, campaign.RunsJSONLName,
		campaign.CurvesCSVName, campaign.ECDFCSVName,
		campaign.AggregatesName, campaign.ManifestName,
	}
	res.Identical = true
	for _, name := range res.FilesCompared {
		a, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			return nil, err
		}
		b, err := os.ReadFile(filepath.Join(resDir, name))
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(a, b) {
			res.Identical = false
		}
	}

	// Triage gate: re-execute the middle run standalone.
	res.RerunIndex = res.TotalRuns / 2
	journaled, err := campaign.ReadResults(refDir)
	if err != nil {
		return nil, err
	}
	rerun, err := campaign.RerunOne(spec, res.RerunIndex)
	if err != nil {
		return nil, err
	}
	res.RerunKey = rerun.Key
	if want, ok := journaled[res.RerunIndex]; ok {
		res.DigestMatch = want.Digest == rerun.Digest
	}

	agg, err := campaign.ReadAggregates(refDir)
	if err != nil {
		return nil, err
	}
	res.Groups = agg.Groups
	return res, nil
}

// Print writes the campaign demonstration report.
func (r *CampaignResult) Print(w io.Writer) {
	printf(w, "== Monte Carlo campaign engine (-exp campaign) ==\n")
	printf(w, "Sweep: %d runs (%d seeds x %d links x %d faults), %d workers, %.0f runs/s\n",
		r.TotalRuns, r.Spec.SeedCount, len(r.Spec.Links), len(r.Spec.Faults), r.Workers, r.RunsPerSec)
	printf(w, "Kill/resume: killed after %d runs, resume replayed %d from the journal\n",
		r.KilledAfter, r.ResumedRuns)
	printf(w, "Merged outputs (%d files) byte-identical to uninterrupted sweep: %v\n",
		len(r.FilesCompared), r.Identical)
	printf(w, "Triage gate: run %d (%s) re-executed standalone, digest match: %v\n",
		r.RerunIndex, r.RerunKey, r.DigestMatch)
	printf(w, "\n%-28s %5s %8s %10s %12s %12s\n", "group", "runs", "success", "avail", "sec-p50(s)", "sec-p95(s)")
	for _, g := range r.Groups {
		printf(w, "%-28s %5d %7.0f%% %9.1f%% %12.1f %12.1f\n",
			g.Group, g.Runs, g.SuccessRate*100, g.MeanAvailability*100, g.SecurityP50, g.SecurityP95)
	}
}
