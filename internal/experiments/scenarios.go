package experiments

import (
	"io"

	"sesame/internal/platform"
	"sesame/internal/scenario"
)

// ScenarioFlight is one generated archetype flown to its horizon —
// twice. The declarative scenario layer promises that (seed,
// archetype) fully determines the world, the fleet, the link weather
// and the fault timeline, so the two flights must land on the same
// mission digest bit for bit.
type ScenarioFlight struct {
	Archetype    string
	Name         string
	Fleet        int
	Sites        int
	Persons      int
	HorizonS     float64
	ChaosArmed   bool
	Decision     string
	Availability float64
	DigestA      string
	DigestB      string
	Reproducible bool
}

// ScenariosResult is the scenario-generator demonstration: every
// archetype family is generated at the experiment seed and flown
// twice, checking the determinism gate the conformance suite enforces
// over hundreds of random seeds.
type ScenariosResult struct {
	Seed    int64
	Flights []ScenarioFlight
	AllHold bool
}

// RunScenarios generates and flies every scenario archetype at seed.
func RunScenarios(seed int64) (*ScenariosResult, error) {
	res := &ScenariosResult{Seed: seed, AllHold: true}
	for _, arch := range scenario.Archetypes() {
		sc, err := scenario.Generate(seed, arch)
		if err != nil {
			return nil, err
		}
		fl := ScenarioFlight{
			Archetype: arch,
			Name:      sc.Name,
			Fleet:     len(sc.Fleet),
			Sites:     len(sc.Sites),
			Persons:   sc.Persons,
			HorizonS:  sc.HorizonS,
		}
		for pass := 0; pass < 2; pass++ {
			sr, err := platform.LaunchScenario(sc, platform.DefaultConfig())
			if err != nil {
				return nil, err
			}
			p := sr.Platform
			if err := flyUntil(p, p.World.Clock.Now()+sc.HorizonS); err != nil {
				p.Close()
				return nil, err
			}
			digest, err := missionDigest(p)
			if err != nil {
				p.Close()
				return nil, err
			}
			if pass == 0 {
				fl.DigestA = digest
				fl.ChaosArmed = sr.Chaos != nil
				fl.Decision = p.Decision().String()
				if a, err := p.Availability(); err == nil {
					fl.Availability = a
				}
			} else {
				fl.DigestB = digest
			}
			p.Close()
		}
		fl.Reproducible = fl.DigestA == fl.DigestB
		if !fl.Reproducible {
			res.AllHold = false
		}
		res.Flights = append(res.Flights, fl)
	}
	return res, nil
}

// Print writes the scenario-layer report.
func (r *ScenariosResult) Print(w io.Writer) {
	printf(w, "== Declarative scenarios (-exp scenarios) ==\n")
	printf(w, "Seed %d, one generated world per archetype, each flown twice:\n", r.Seed)
	for _, fl := range r.Flights {
		chaos := "off"
		if fl.ChaosArmed {
			chaos = "armed"
		}
		printf(w, "%-13s %-24s %d UAVs, %d site(s), %d person(s), horizon %4.0f s, chaos %s\n",
			fl.Archetype, fl.Name, fl.Fleet, fl.Sites, fl.Persons, fl.HorizonS, chaos)
		verdict := "PASS"
		if !fl.Reproducible {
			verdict = "FAIL (" + fl.DigestB[:16] + ")"
		}
		printf(w, "              decision %s, availability %.4f, digest %s, rerun %s\n",
			fl.Decision, fl.Availability, fl.DigestA[:16], verdict)
	}
	if r.AllHold {
		printf(w, "Determinism gate (digest A == digest B per archetype): PASS\n")
	} else {
		printf(w, "Determinism gate (digest A == digest B per archetype): FAIL\n")
	}
}
