package experiments

import (
	"io"

	"sesame/internal/campaign"
	"sesame/internal/colloc"
	"sesame/internal/geo"
	"sesame/internal/uavsim"
)

// Fig7Point is one sample of the assisted-landing tracks.
type Fig7Point struct {
	Time                    float64
	VictimEast, VictimNorth float64
	Assist1E, Assist1N      float64
	Assist2E, Assist2N      float64
	EstimateErrM            float64 // fused estimate vs truth
}

// Fig7Result reproduces Fig. 7: the spoofed UAV collaborating with
// assisting UAVs to land safely at a precise location without GPS.
type Fig7Result struct {
	Track         []Fig7Point
	LandingTarget geo.LatLng
	LandedAt      geo.LatLng
	LandingErrorM float64
	LandedOK      bool
	DurationS     float64
	Observers     int
}

// RunFig7 stages the spoofed UAV (GPS cut after detection) and two
// assisting UAVs, runs the collaborative landing, and records tracks.
func RunFig7(seed int64) (*Fig7Result, error) {
	w := uavsim.NewWorld(testOrigin, seed)
	victim, err := w.AddUAV(uavsim.UAVConfig{ID: "victim", Home: testOrigin, CruiseSpeedMS: 8})
	if err != nil {
		return nil, err
	}
	if err := victim.TakeOff(25); err != nil {
		return nil, err
	}
	assistants := make([]*uavsim.UAV, 2)
	var observers []*colloc.Observer
	for i := range assistants {
		home := geo.Destination(testOrigin, float64(i)*180+60, 160)
		a, err := w.AddUAV(uavsim.UAVConfig{ID: "assist" + string(rune('1'+i)), Home: home})
		if err != nil {
			return nil, err
		}
		if err := a.TakeOff(32); err != nil {
			return nil, err
		}
		assistants[i] = a
		o, err := colloc.NewObserver(a, w.Clock.Stream("fig7/obs"+string(rune('1'+i))))
		if err != nil {
			return nil, err
		}
		observers = append(observers, o)
	}
	if err := w.Run(14, 0.5); err != nil {
		return nil, err
	}

	// Post-detection state: the victim's GPS is untrusted and cut.
	victim.GPS.Mode = uavsim.GPSModeDropout
	target := geo.Destination(testOrigin, 135, 130)
	ctrl, err := colloc.NewController(victim, target, observers, w)
	if err != nil {
		return nil, err
	}

	res := &Fig7Result{LandingTarget: target, Observers: len(observers)}
	proj := geo.NewProjection(testOrigin)
	start := w.Clock.Now()
	for step := 0; step < 1200 && victim.Mode() != uavsim.ModeLanded; step++ {
		ctrl.Step()
		if err := w.Step(0.5); err != nil {
			return nil, err
		}
		if step%4 == 0 {
			vp := proj.ToENU(victim.TruePosition())
			a1 := proj.ToENU(assistants[0].TruePosition())
			a2 := proj.ToENU(assistants[1].TruePosition())
			pt := Fig7Point{
				Time:       w.Clock.Now(),
				VictimEast: vp.East, VictimNorth: vp.North,
				Assist1E: a1.East, Assist1N: a1.North,
				Assist2E: a2.East, Assist2N: a2.North,
			}
			if est, ok := ctrl.Localizer.Estimate(); ok {
				pt.EstimateErrM = geo.Haversine(est, victim.TruePosition())
			}
			res.Track = append(res.Track, pt)
		}
	}
	res.LandedOK = victim.Mode() == uavsim.ModeLanded
	res.LandedAt = victim.TruePosition()
	res.LandingErrorM = ctrl.LandingError()
	res.DurationS = w.Clock.Now() - start
	return res, nil
}

// Fig7Stats aggregates the landing error over many seeds, giving the
// Fig. 7 result statistical weight a single trace cannot.
type Fig7Stats struct {
	Seeds     int
	Landed    int
	MeanErrM  float64
	P95ErrM   float64
	WorstErrM float64
	MeanDurS  float64
}

// RunFig7Stats repeats the assisted landing across seeds 1..n.
func RunFig7Stats(n int) (*Fig7Stats, error) {
	if n < 1 {
		n = 1
	}
	stats := &Fig7Stats{Seeds: n}
	var errs []float64
	for seed := 1; seed <= n; seed++ {
		r, err := RunFig7(int64(seed))
		if err != nil {
			return nil, err
		}
		if !r.LandedOK {
			continue
		}
		stats.Landed++
		errs = append(errs, r.LandingErrorM)
		stats.MeanErrM += r.LandingErrorM
		stats.MeanDurS += r.DurationS
		if r.LandingErrorM > stats.WorstErrM {
			stats.WorstErrM = r.LandingErrorM
		}
	}
	if stats.Landed > 0 {
		stats.MeanErrM /= float64(stats.Landed)
		stats.MeanDurS /= float64(stats.Landed)
		stats.P95ErrM = campaign.Percentile(errs, 0.95)
	}
	return stats, nil
}

// Print writes the landing statistics.
func (s *Fig7Stats) Print(w io.Writer) {
	printf(w, "\nFig. 7 statistics over %d seeds: %d/%d landed, landing error mean %.2f m, p95 %.2f m, worst %.2f m, mean duration %.0f s\n",
		s.Seeds, s.Landed, s.Seeds, s.MeanErrM, s.P95ErrM, s.WorstErrM, s.MeanDurS)
}

// Print writes the Fig. 7 tracks and landing summary.
func (r *Fig7Result) Print(w io.Writer) {
	printf(w, "== Fig. 7: Collaborative Localization assisted landing (GPS-denied) ==\n")
	printf(w, "%d assisting UAVs, victim has no GPS signal\n\n", r.Observers)
	printf(w, "%6s  %18s  %18s  %18s  %10s\n", "t(s)", "victim (E,N) m", "assistant-1", "assistant-2", "est err m")
	for i, pt := range r.Track {
		if i%5 != 0 {
			continue
		}
		printf(w, "%6.1f  (%7.1f,%7.1f)  (%7.1f,%7.1f)  (%7.1f,%7.1f)  %10.2f\n",
			pt.Time, pt.VictimEast, pt.VictimNorth, pt.Assist1E, pt.Assist1N, pt.Assist2E, pt.Assist2N, pt.EstimateErrM)
	}
	printf(w, "\nlanded: %v in %.0f s\n", r.LandedOK, r.DurationS)
	printf(w, "landing error: %.2f m from designated safe point (paper: \"high precision location\")\n", r.LandingErrorM)
}
