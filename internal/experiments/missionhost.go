package experiments

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sesame/internal/campaign"
	"sesame/internal/missionhost"
)

// MissionHostResult is the multi-tenant mission host demonstration:
// the determinism gate (a hosted mission — including one evicted to
// disk and rehydrated mid-flight — reproduces the standalone digest
// bit-identically) plus a load phase (a fleet of registered missions,
// most parked, hammered by concurrent watchers reading copy-on-write
// snapshots that never touch a tick lock).
type MissionHostResult struct {
	Seed int64

	// Determinism gate.
	DigestStandalone string
	DigestHosted     string
	DigestRehydrated string
	Match            bool

	// Load phase.
	FullScale    bool // SESAME_MISSIONHOST_FULL=1: the BENCH_PR10 shape
	Missions     int
	MaxLive      int
	LiveAtEnd    int
	ParkedAtEnd  int
	Watchers     int
	WindowS      float64
	Reads        uint64
	ReadsPerSec  float64
	ReadP50US    float64
	ReadP99US    float64
	Rounds       uint64
	Ticks        uint64
	Parks        uint64
	Rehydrations uint64
	CacheHitRate float64
}

// RunMissionHost runs both phases. The load phase defaults to a smoke
// shape (64 missions, a 1 s read window) so CI stays fast; set
// SESAME_MISSIONHOST_FULL=1 for the 1000-mission benchmark shape.
func RunMissionHost(seed int64) (*MissionHostResult, error) {
	res := &MissionHostResult{Seed: seed}
	if err := res.runDeterminism(seed); err != nil {
		return nil, err
	}
	if err := res.runLoad(seed); err != nil {
		return nil, err
	}
	return res, nil
}

// runDeterminism flies one Spec three ways — standalone, hosted
// uninterrupted, and hosted with a park/restart/rehydrate cycle — and
// compares digests.
func (r *MissionHostResult) runDeterminism(seed int64) error {
	spec := missionhost.Spec{ID: "gate", Seed: seed, UAVs: 3, Persons: 6, HorizonS: 200, TickBudget: 4}

	var err error
	if r.DigestStandalone, err = missionhost.FlyStandalone(spec); err != nil {
		return err
	}

	// Hosted, uninterrupted.
	h, err := missionhost.New(missionhost.Config{TickBudget: 1})
	if err != nil {
		return err
	}
	if err := flyHosted(h, spec); err != nil {
		h.Close()
		return err
	}
	if r.DigestHosted, err = h.Digest(spec.ID); err != nil {
		h.Close()
		return err
	}
	h.Close()

	// Hosted with a mid-flight park that spans a full host restart.
	dir, err := os.MkdirTemp("", "sesame-missionhost-exp-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	h, err = missionhost.New(missionhost.Config{TickBudget: 1, ParkDir: dir})
	if err != nil {
		return err
	}
	if _, err := h.Create(spec); err != nil {
		h.Close()
		return err
	}
	for i := 0; i < 3; i++ {
		h.Round()
	}
	if err := h.Shutdown(); err != nil {
		h.Close()
		return err
	}
	h, err = missionhost.New(missionhost.Config{TickBudget: 1, ParkDir: dir})
	if err != nil {
		return err
	}
	defer h.Close()
	if err := h.Resume(spec.ID); err != nil {
		return err
	}
	if err := driveToDone(h, spec.ID); err != nil {
		return err
	}
	if r.DigestRehydrated, err = h.Digest(spec.ID); err != nil {
		return err
	}
	r.Match = r.DigestHosted == r.DigestStandalone && r.DigestRehydrated == r.DigestStandalone
	return nil
}

func flyHosted(h *missionhost.Host, spec missionhost.Spec) error {
	if _, err := h.Create(spec); err != nil {
		return err
	}
	return driveToDone(h, spec.ID)
}

func driveToDone(h *missionhost.Host, id string) error {
	for i := 0; i < 5000; i++ {
		info, err := h.Info(id)
		if err != nil {
			return err
		}
		if info.Done {
			return nil
		}
		h.Round()
	}
	return fmt.Errorf("mission %s never finished", id)
}

// runLoad registers a fleet of missions against a much smaller live
// budget (so the majority is parked to disk), then drives rounds and
// concurrent watchers for a fixed window, timing every snapshot read.
func (r *MissionHostResult) runLoad(seed int64) error {
	r.Missions, r.MaxLive, r.Watchers, r.WindowS = 64, 16, 8, 1.0
	if os.Getenv("SESAME_MISSIONHOST_FULL") == "1" {
		r.FullScale = true
		r.Missions, r.MaxLive, r.Watchers, r.WindowS = 1000, 64, 64, 5.0
	}

	h, err := missionhost.New(missionhost.Config{
		MaxLive:     r.MaxLive,
		MaxMissions: r.Missions + 8,
		TickBudget:  1,
	})
	if err != nil {
		return err
	}
	defer h.Close()

	ids := make([]string, r.Missions)
	for i := range ids {
		ids[i] = fmt.Sprintf("load-%04d", i)
		spec := missionhost.Spec{ID: ids[i], Seed: seed + int64(i), UAVs: 2, Persons: 2, HorizonS: 600}
		if _, err := h.Create(spec); err != nil {
			return err
		}
	}

	// Rounds and watchers run concurrently: ticking must never block a
	// snapshot read.
	stop := make(chan struct{})
	var roundWG sync.WaitGroup
	roundWG.Add(1)
	go func() {
		defer roundWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Round()
			}
		}
	}()

	var reads atomic.Uint64
	lat := make([][]float64, r.Watchers)
	var watchWG sync.WaitGroup
	deadline := time.Now().Add(time.Duration(r.WindowS * float64(time.Second)))
	for wi := 0; wi < r.Watchers; wi++ {
		watchWG.Add(1)
		go func(wi int) {
			defer watchWG.Done()
			var n int
			for time.Now().Before(deadline) {
				id := ids[(wi+n)%len(ids)]
				t0 := time.Now()
				if _, err := h.Status(id); err != nil {
					return
				}
				// Sample every 16th read so the latency slices stay small
				// at full scale.
				if n%16 == 0 {
					lat[wi] = append(lat[wi], float64(time.Since(t0).Nanoseconds())/1000)
				}
				reads.Add(1)
				n++
			}
		}(wi)
	}
	watchWG.Wait()
	close(stop)
	roundWG.Wait()

	r.Reads = reads.Load()
	r.ReadsPerSec = float64(r.Reads) / r.WindowS
	var all []float64
	for _, xs := range lat {
		all = append(all, xs...)
	}
	r.ReadP50US = campaign.Percentile(all, 0.50)
	r.ReadP99US = campaign.Percentile(all, 0.99)

	stats := h.Stats()
	r.LiveAtEnd, r.ParkedAtEnd = stats.Live, stats.Parked
	r.Rounds, r.Ticks = stats.Rounds, stats.Ticks
	r.Parks, r.Rehydrations = stats.Parks, stats.Rehydrations
	if total := stats.CacheHits + stats.CacheMisses; total > 0 {
		r.CacheHitRate = float64(stats.CacheHits) / float64(total)
	}
	return nil
}

// Print writes the mission-host report.
func (r *MissionHostResult) Print(w io.Writer) {
	printf(w, "== Multi-tenant mission host (-exp missionhost) ==\n")
	printf(w, "Determinism gate (seed %d, classic 3-UAV spec, horizon 200 s):\n", r.Seed)
	printf(w, "  standalone digest:       %s\n", r.DigestStandalone[:16])
	printf(w, "  hosted digest:           %s\n", r.DigestHosted[:16])
	printf(w, "  park/restart/rehydrate:  %s\n", r.DigestRehydrated[:16])
	if r.Match {
		printf(w, "  Result: bit-identical hosting — PASS\n")
	} else {
		printf(w, "  Result: DIVERGED — FAIL\n")
	}
	shape := "smoke"
	if r.FullScale {
		shape = "full"
	}
	printf(w, "Load (%s shape): %d missions, %d live budget -> %d live / %d parked at end\n",
		shape, r.Missions, r.MaxLive, r.LiveAtEnd, r.ParkedAtEnd)
	printf(w, "  %d rounds drove %d ticks; %d parks, %d rehydrations\n",
		r.Rounds, r.Ticks, r.Parks, r.Rehydrations)
	printf(w, "  %d watchers, %.1f s window: %d snapshot reads (%.0f reads/s)\n",
		r.Watchers, r.WindowS, r.Reads, r.ReadsPerSec)
	printf(w, "  read latency p50 %.1f us, p99 %.1f us; render cache hit rate %.1f%%\n",
		r.ReadP50US, r.ReadP99US, 100*r.CacheHitRate)
}
