package experiments

import (
	"io"

	"sesame/internal/conserts"
)

// Fig1Scenario is one named evidence configuration and its outcome.
type Fig1Scenario struct {
	Name       string
	Evidence   conserts.Evidence
	Navigation string
	Action     conserts.UAVAction
}

// Fig1Result exercises the hierarchical ConSert network of Fig. 1.
type Fig1Result struct {
	Scenarios []Fig1Scenario
	// TruthTable statistics over all evidence combinations.
	Combinations int
	ByAction     map[conserts.UAVAction]int
	// MissionDemo shows the Σ-over-UAVs decider for three fleet
	// states.
	MissionDemo []struct {
		Name     string
		Actions  map[string]conserts.UAVAction
		Decision conserts.MissionDecision
	}
}

// RunFig1 evaluates the Fig. 1 ConSert network over named scenarios
// and the exhaustive evidence truth table.
func RunFig1() (*Fig1Result, error) {
	comp, err := conserts.BuildUAVComposition()
	if err != nil {
		return nil, err
	}
	full := conserts.Evidence{
		conserts.EvGPSQualityOK:         true,
		conserts.EvNoSpoofing:           true,
		conserts.EvCameraHealthy:        true,
		conserts.EvPerceptionConfident:  true,
		conserts.EvNearbyDroneDetection: true,
		conserts.EvCommsOK:              true,
		conserts.EvNeighborsAvailable:   true,
		conserts.EvReliabilityHigh:      true,
	}
	derive := func(mod func(conserts.Evidence)) conserts.Evidence {
		ev := conserts.Evidence{}
		for k, v := range full {
			ev[k] = v
		}
		mod(ev)
		return ev
	}
	named := []struct {
		name string
		ev   conserts.Evidence
	}{
		{"nominal", full},
		{"spoofing detected", derive(func(ev conserts.Evidence) { ev[conserts.EvNoSpoofing] = false })},
		{"spoofed + isolated", derive(func(ev conserts.Evidence) {
			ev[conserts.EvNoSpoofing] = false
			ev[conserts.EvCommsOK] = false
			ev[conserts.EvCameraHealthy] = false
		})},
		{"camera failed", derive(func(ev conserts.Evidence) { ev[conserts.EvCameraHealthy] = false })},
		{"GPS degraded, vision ok", derive(func(ev conserts.Evidence) {
			ev[conserts.EvGPSQualityOK] = false
			ev[conserts.EvCommsOK] = false
		})},
		{"reliability low", derive(func(ev conserts.Evidence) {
			ev[conserts.EvReliabilityHigh] = false
			ev[conserts.EvReliabilityMedium] = false
		})},
		{"reliability medium", derive(func(ev conserts.Evidence) {
			ev[conserts.EvReliabilityHigh] = false
			ev[conserts.EvReliabilityMedium] = true
		})},
	}
	res := &Fig1Result{ByAction: make(map[conserts.UAVAction]int)}
	for _, sc := range named {
		action, results, err := conserts.EvaluateUAV(comp, sc.ev)
		if err != nil {
			return nil, err
		}
		nav := "none (default: emergency landing)"
		if b := results[conserts.ConSertNav].Best; b != nil {
			nav = b.ID
		}
		res.Scenarios = append(res.Scenarios, Fig1Scenario{
			Name: sc.name, Evidence: sc.ev, Navigation: nav, Action: action,
		})
	}

	// Exhaustive truth table statistics.
	names := []string{
		conserts.EvGPSQualityOK, conserts.EvNoSpoofing, conserts.EvCameraHealthy,
		conserts.EvPerceptionConfident, conserts.EvNearbyDroneDetection,
		conserts.EvCommsOK, conserts.EvNeighborsAvailable,
		conserts.EvReliabilityHigh, conserts.EvReliabilityMedium,
	}
	for mask := 0; mask < 1<<len(names); mask++ {
		ev := conserts.Evidence{}
		for i, n := range names {
			if mask&(1<<i) != 0 {
				ev[n] = true
			}
		}
		action, _, err := conserts.EvaluateUAV(comp, ev)
		if err != nil {
			return nil, err
		}
		res.ByAction[action]++
		res.Combinations++
	}

	// Mission decider demo.
	fleets := []struct {
		Name     string
		Actions  map[string]conserts.UAVAction
		Decision conserts.MissionDecision
	}{
		{"all nominal", map[string]conserts.UAVAction{
			"u1": conserts.ActionContinueTakeover, "u2": conserts.ActionContinue, "u3": conserts.ActionContinue}, 0},
		{"one UAV degraded", map[string]conserts.UAVAction{
			"u1": conserts.ActionContinue, "u2": conserts.ActionReturnToBase, "u3": conserts.ActionContinue}, 0},
		{"fleet grounded", map[string]conserts.UAVAction{
			"u1": conserts.ActionEmergencyLand, "u2": conserts.ActionHold, "u3": conserts.ActionReturnToBase}, 0},
	}
	for i := range fleets {
		d, err := conserts.DecideMission(fleets[i].Actions)
		if err != nil {
			return nil, err
		}
		fleets[i].Decision = d
	}
	res.MissionDemo = fleets
	return res, nil
}

// Print writes the Fig. 1 evaluation tables.
func (r *Fig1Result) Print(w io.Writer) {
	printf(w, "== Fig. 1: hierarchical ConSert network evaluation ==\n\n")
	printf(w, "%-28s %-24s %s\n", "scenario", "navigation guarantee", "UAV action")
	for _, sc := range r.Scenarios {
		printf(w, "%-28s %-24s %s\n", sc.Name, sc.Navigation, sc.Action)
	}
	printf(w, "\ntruth table over %d evidence combinations:\n", r.Combinations)
	for a := conserts.ActionEmergencyLand; a <= conserts.ActionContinueTakeover; a++ {
		printf(w, "  %-20s %4d combinations\n", a.String(), r.ByAction[a])
	}
	printf(w, "\nmission-level decider (Σ over UAVs):\n")
	for _, f := range r.MissionDemo {
		printf(w, "  %-20s -> %s\n", f.Name, f.Decision)
	}
}
