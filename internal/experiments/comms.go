package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"strings"

	"sesame/internal/linksim"
	"sesame/internal/platform"
	"sesame/internal/uavsim"
)

// CommsScenario is one row of the degraded-comms matrix: a link-fault
// configuration and the mission-level outcome it produced.
type CommsScenario struct {
	Name string
	// What was injected.
	Profile     linksim.Profile
	OutageUAV   string
	OutageStart float64 // seconds after mission start; 0 = none
	OutageDur   float64
	DBOutageDur float64 // mission database unavailable window

	// What happened.
	Completed        bool
	CompletionS      float64
	Availability     float64
	MaxTelemetryAgeS float64           // worst staleness seen on the outage UAV
	LostLinkEvents   int               // watchdog contingencies fired
	CompromiseEvents int               // IDS-driven compromise responses
	Link             linksim.LinkStats // aggregated over all links
	Drops            platform.DropCounters
	WorldDrops       uavsim.DropCounters
	DBRetries        platform.RetryCounters
	// ReplayIdentical is the determinism check: the scenario is run
	// twice and the final platform digests must match bit for bit.
	ReplayIdentical bool
}

// CommsResult is the full degraded-comms evaluation (DESIGN.md,
// robustness section): the same mission flown under increasingly
// hostile link conditions.
type CommsResult struct {
	Scenarios []CommsScenario
}

// commsSpec describes one scenario to fly.
type commsSpec struct {
	name        string
	profile     linksim.Profile
	outageStart float64
	outageDur   float64
	dbStart     float64
	dbDur       float64
}

// commsOutcome is one run's raw measurements plus its digest.
type commsOutcome struct {
	scenario CommsScenario
	digest   string
}

// RunComms flies the degraded-comms matrix. Every scenario is run
// twice to verify the deterministic-replay contract end to end.
func RunComms(seed int64) (*CommsResult, error) {
	specs := []commsSpec{
		// Clean baseline for comparison.
		{name: "nominal"},
		// Duplication is the one impairment the IDS is transparent to:
		// the mission outcome must match nominal while the link stats
		// show the duplicated frames.
		{name: "dup-5", profile: linksim.Profile{DupProb: 0.05}},
		// Random frame loss: stale odometry makes the IDS read the GPS
		// track as spoofed, so this measures the security stack's
		// response to a merely unreliable link.
		{name: "lossy-10", profile: linksim.Profile{DropProb: 0.10}},
		// A 12 s brownout stays below the 15 s lost-link window: the
		// staleness must be visible but no contingency may fire.
		{name: "brownout-12s", outageStart: 90, outageDur: 12},
		// A 45 s blackout crosses the window: the watchdog must fire
		// the RTB contingency and the fleet must still finish.
		{name: "blackout-45s", outageStart: 90, outageDur: 45},
		// The links are fine but the mission database browns out:
		// bounded retry with backoff must recover every write.
		{name: "db-brownout-15s", dbStart: 60, dbDur: 15},
	}
	res := &CommsResult{}
	for _, spec := range specs {
		first, err := runCommsOnce(seed, spec)
		if err != nil {
			return nil, err
		}
		replay, err := runCommsOnce(seed, spec)
		if err != nil {
			return nil, err
		}
		sc := first.scenario
		sc.ReplayIdentical = first.digest == replay.digest
		res.Scenarios = append(res.Scenarios, sc)
	}
	return res, nil
}

func runCommsOnce(seed int64, spec commsSpec) (*commsOutcome, error) {
	w := uavsim.NewWorld(testOrigin, seed)
	ids := []string{"u1", "u2", "u3"}
	for _, id := range ids {
		if _, err := w.AddUAV(uavsim.UAVConfig{ID: id, Home: testOrigin, CruiseSpeedMS: 12}); err != nil {
			return nil, err
		}
	}
	p, err := platform.New(w, nil, platform.DefaultConfig())
	if err != nil {
		return nil, err
	}
	defer p.Close()

	layer := linksim.New(w.Clock, spec.name)
	layer.AttachBus(w.Bus)
	layer.AttachBroker(p.Broker, func(topic string) string {
		if uav, ok := strings.CutPrefix(topic, "alerts/ids/"); ok {
			return uav
		}
		return ""
	})
	for _, id := range ids {
		layer.Link(id).SetProfile(spec.profile)
	}

	start := w.Clock.Now()
	if err := p.StartMission(squareArea(350)); err != nil {
		return nil, err
	}
	const outageUAV = "u2"
	if spec.outageDur > 0 {
		layer.Link(outageUAV).AddOutage(start+spec.outageStart, start+spec.outageStart+spec.outageDur)
	}
	if spec.dbDur > 0 {
		from, to := start+spec.dbStart, start+spec.dbStart+spec.dbDur
		p.DB.SetFaultHook(func(string) error {
			if now := w.Clock.Now(); now >= from && now < to {
				return platform.ErrUnavailable
			}
			return nil
		})
	}

	sc := CommsScenario{
		Name: spec.name, Profile: spec.profile,
		OutageUAV: outageUAV, OutageStart: spec.outageStart,
		OutageDur: spec.outageDur, DBOutageDur: spec.dbDur,
	}
	const horizon = 1800
	for w.Clock.Now() < start+horizon {
		if err := p.Tick(); err != nil {
			return nil, err
		}
		for _, us := range p.Status().UAVs {
			if us.ID == outageUAV && us.TelemetryAgeS > sc.MaxTelemetryAgeS {
				sc.MaxTelemetryAgeS = us.TelemetryAgeS
			}
		}
		if p.MissionComplete() {
			sc.Completed = true
			break
		}
	}
	sc.CompletionS = w.Clock.Now() - start
	if sc.Availability, err = p.Availability(); err != nil {
		return nil, err
	}
	status := p.Status()
	sc.Drops = status.Drops
	sc.WorldDrops = status.WorldDrops
	sc.DBRetries = status.DBRetries
	for _, s := range layer.Stats() {
		sc.Link.Offered += s.Offered
		sc.Link.Delivered += s.Delivered
		sc.Link.Dropped += s.Dropped
		sc.Link.OutageDropped += s.OutageDropped
		sc.Link.Rejected += s.Rejected
		sc.Link.Delayed += s.Delayed
		sc.Link.Duplicated += s.Duplicated
		sc.Link.Reordered += s.Reordered
		sc.Link.Pending += s.Pending
	}
	hash := sha256.New()
	enc := json.NewEncoder(hash)
	if err := enc.Encode(status); err != nil {
		return nil, err
	}
	for _, id := range ids {
		for _, ev := range p.Coordinator.History(id) {
			if strings.HasPrefix(ev.Summary, "lost link:") {
				sc.LostLinkEvents++
			}
			if strings.HasPrefix(ev.Summary, "compromise:") {
				sc.CompromiseEvents++
			}
			if err := enc.Encode(ev); err != nil {
				return nil, err
			}
		}
	}
	if err := enc.Encode(sc.Link); err != nil {
		return nil, err
	}
	return &commsOutcome{
		scenario: sc,
		digest:   hex.EncodeToString(hash.Sum(nil)),
	}, nil
}

// Print writes the mission-outcome and loss-accounting tables.
func (r *CommsResult) Print(w io.Writer) {
	printf(w, "== Degraded comms: mission outcome per link condition ==\n")
	printf(w, "%-16s %5s %8s %7s %8s %9s %11s %7s\n",
		"scenario", "done", "time(s)", "avail", "max-age", "lost-link", "compromises", "replay")
	for _, s := range r.Scenarios {
		printf(w, "%-16s %5v %8.0f %6.1f%% %7.0fs %9d %11d %7v\n",
			s.Name, s.Completed, s.CompletionS, s.Availability*100,
			s.MaxTelemetryAgeS, s.LostLinkEvents, s.CompromiseEvents, s.ReplayIdentical)
	}
	printf(w, "\n== Degraded comms: loss accounting (all links aggregated) ==\n")
	printf(w, "%-16s %8s %9s %8s %7s %8s %9s %10s %9s\n",
		"scenario", "offered", "delivered", "dropped", "outage", "dup", "plat-drop", "db-retry", "db-aband")
	for _, s := range r.Scenarios {
		printf(w, "%-16s %8d %9d %8d %7d %8d %9d %10d %9d\n",
			s.Name, s.Link.Offered, s.Link.Delivered, s.Link.Dropped,
			s.Link.OutageDropped, s.Link.Duplicated,
			s.Drops.Total(), s.DBRetries.Scheduled, s.DBRetries.Abandoned)
	}
}

// WriteCSV dumps the matrix to dir/comms_scenarios.csv.
func (r *CommsResult) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Scenarios))
	for _, s := range r.Scenarios {
		rows = append(rows, []string{
			s.Name, boolS(s.Completed), f2s(s.CompletionS), f2s(s.Availability),
			f2s(s.MaxTelemetryAgeS), i2s(s.LostLinkEvents), i2s(s.CompromiseEvents),
			u2s(s.Link.Offered), u2s(s.Link.Delivered), u2s(s.Link.Dropped),
			u2s(s.Link.OutageDropped), u2s(s.Link.Duplicated),
			u2s(s.Drops.Total()), u2s(s.DBRetries.Scheduled),
			u2s(s.DBRetries.Succeeded), u2s(s.DBRetries.Abandoned),
			boolS(s.ReplayIdentical),
		})
	}
	return writeCSV(dir, "comms_scenarios.csv", []string{
		"scenario", "completed", "completion_s", "availability",
		"max_telemetry_age_s", "lost_link_events", "compromise_events",
		"offered", "delivered", "dropped", "outage_dropped", "duplicated",
		"platform_drops", "db_retries_scheduled", "db_retries_succeeded",
		"db_retries_abandoned", "replay_identical",
	}, rows)
}
