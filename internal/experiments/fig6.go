package experiments

import (
	"errors"
	"io"

	"sesame/internal/attacktree"
	"sesame/internal/geo"
	"sesame/internal/ids"
	"sesame/internal/mqttlite"
	"sesame/internal/sar"
	"sesame/internal/security"
	"sesame/internal/uavsim"
)

// Fig6Point is one trajectory sample.
type Fig6Point struct {
	Time                    float64
	CleanEast, CleanNorth   float64
	SpoofEast, SpoofNorth   float64
	BelievedEast, BelievedN float64 // what the attacked UAV thinks
}

// Fig6Result reproduces Fig. 6: the area-mapping trajectory with and
// without the ROS spoofing attack, plus the Security EDDI detection
// timeline.
type Fig6Result struct {
	Track          []Fig6Point
	SpoofStartS    float64
	DetectionS     float64 // IDS alert -> attack-tree root reached
	MaxDeviationM  float64
	MeanDeviationM float64
	AttackPath     []string
}

// RunFig6 flies the same boustrophedon mapping mission twice — clean
// and under a spoofing attack starting mid-mission — and records the
// true-track deviation and the detection chain.
func RunFig6(seed int64) (*Fig6Result, error) {
	area := squareArea(300)
	path, err := sar.BoustrophedonPath(area, 40)
	if err != nil {
		return nil, err
	}

	mkWorld := func() (*uavsim.World, *uavsim.UAV, error) {
		w := uavsim.NewWorld(testOrigin, seed)
		u, err := w.AddUAV(uavsim.UAVConfig{ID: "u1", Home: testOrigin, CruiseSpeedMS: 10})
		if err != nil {
			return nil, nil, err
		}
		if err := u.TakeOff(30); err != nil {
			return nil, nil, err
		}
		if err := w.Run(12, 1); err != nil {
			return nil, nil, err
		}
		if err := u.FlyMission(path, 30); err != nil {
			return nil, nil, err
		}
		return w, u, nil
	}

	clean, cu, err := mkWorld()
	if err != nil {
		return nil, err
	}
	attacked, au, err := mkWorld()
	if err != nil {
		return nil, err
	}

	// Attack + detection chain on the attacked world.
	broker := mqttlite.NewBroker()
	det, err := ids.New(attacked.Bus, broker, ids.DefaultConfig())
	if err != nil {
		return nil, err
	}
	defer det.Close()
	sec, err := security.New(broker)
	if err != nil {
		return nil, err
	}
	defer sec.Close()
	tree, err := attacktree.SpoofingTree("u1")
	if err != nil {
		return nil, err
	}
	if err := sec.Monitor("u1", tree); err != nil {
		return nil, err
	}
	res := &Fig6Result{SpoofStartS: 60, DetectionS: -1}
	if err := sec.OnEvent(func(ev security.Event) {
		if ev.RootReached && res.DetectionS < 0 {
			res.DetectionS = ev.Alert.Stamp
			res.AttackPath = ev.Path
		}
	}); err != nil {
		return nil, err
	}
	if err := attacked.ScheduleFault(uavsim.GPSSpoofFault(res.SpoofStartS, "u1", 225, 2.5)); err != nil {
		return nil, err
	}

	proj := geo.NewProjection(testOrigin)
	var sumDev float64
	n := 0
	for ts := attacked.Clock.Now(); ts < 400; ts++ {
		if err := clean.Step(1); err != nil {
			return nil, err
		}
		if err := attacked.Step(1); err != nil {
			return nil, err
		}
		cp := proj.ToENU(cu.TruePosition())
		ap := proj.ToENU(au.TruePosition())
		// Believed position = truth + spoof offset, computed without
		// touching the victim's GPS noise stream (which would desync
		// the paired clean run).
		bp := ap.Add(au.GPS.SpoofOffset())
		res.Track = append(res.Track, Fig6Point{
			Time:      ts,
			CleanEast: cp.East, CleanNorth: cp.North,
			SpoofEast: ap.East, SpoofNorth: ap.North,
			BelievedEast: bp.East, BelievedN: bp.North,
		})
		dev := geo.Haversine(cu.TruePosition(), au.TruePosition())
		if dev > res.MaxDeviationM {
			res.MaxDeviationM = dev
		}
		if ts >= res.SpoofStartS {
			sumDev += dev
			n++
		}
	}
	if n == 0 {
		return nil, errors.New("experiments: no post-attack samples")
	}
	res.MeanDeviationM = sumDev / float64(n)
	return res, nil
}

// Print writes the Fig. 6 trajectory table and detection summary.
func (r *Fig6Result) Print(w io.Writer) {
	printf(w, "== Fig. 6: UAV area mapping with and without spoofing attack ==\n")
	printf(w, "spoof starts t=%.0f s, drift 2.5 m/s\n\n", r.SpoofStartS)
	printf(w, "%6s  %18s  %18s  %18s\n", "t(s)", "clean (E,N) m", "attacked true (E,N)", "attacked believed")
	for i, pt := range r.Track {
		if i%20 != 0 {
			continue
		}
		printf(w, "%6.0f  (%7.1f,%7.1f)  (%7.1f,%7.1f)  (%7.1f,%7.1f)\n",
			pt.Time, pt.CleanEast, pt.CleanNorth, pt.SpoofEast, pt.SpoofNorth, pt.BelievedEast, pt.BelievedN)
	}
	printf(w, "\nmax trajectory deviation:  %.1f m\n", r.MaxDeviationM)
	printf(w, "mean deviation (post-attack): %.1f m\n", r.MeanDeviationM)
	if r.DetectionS >= 0 {
		printf(w, "Security EDDI detection:   t=%.0f s (%.0f s after attack start; paper: \"detected immediately\")\n",
			r.DetectionS, r.DetectionS-r.SpoofStartS)
		printf(w, "attack path: %v\n", r.AttackPath)
	} else {
		printf(w, "Security EDDI detection:   NOT DETECTED\n")
	}
}
