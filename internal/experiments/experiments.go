// Package experiments reproduces every evaluation artefact of the
// paper (DATE 2025, doi:10.23919/DATE64628.2025.10992739): the Fig. 1
// ConSert network evaluation, the Fig. 5 battery-failure PoF curves
// and §V-A availability numbers, the §V-B SAR accuracy table, the
// Fig. 6 spoofed-trajectory deviation, the Fig. 7 collaborative
// GPS-denied landing, and the design-choice ablations listed in
// DESIGN.md. Each Run* function returns a structured result and can
// print the series the paper reports.
package experiments

import (
	"fmt"
	"io"

	"sesame/internal/geo"
)

// testOrigin anchors every experiment's mission area (Cyprus, where
// the paper's field trials flew).
var testOrigin = geo.LatLng{Lat: 35.1856, Lng: 33.3823}

// squareArea returns a side x side mission square north-east of the
// origin.
func squareArea(side float64) geo.Polygon {
	a := geo.Destination(testOrigin, 45, 80)
	b := geo.Destination(a, 90, side)
	c := geo.Destination(b, 0, side)
	d := geo.Destination(a, 0, side)
	return geo.Polygon{a, b, c, d}
}

// printf writes formatted output, ignoring errors (report streams).
func printf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
