package experiments

import (
	"errors"
	"io"
	"math/rand"

	"sesame/internal/detection"
)

// NightRow is one (visibility, modality) operating point.
type NightRow struct {
	Visibility float64
	Modality   string
	Recall     float64
	Precision  float64
	Accuracy   float64
}

// NightResult is the EXT-b experiment: RGB vs thermal imaging across a
// visibility sweep (day → dusk → night/haze), the sensor-selection
// question the paper's intro raises ("high-resolution cameras, thermal
// imaging ... even in conditions with low visibility").
type NightResult struct {
	Rows []NightRow
	// CrossoverVisibility is the highest swept visibility at which
	// thermal beats RGB on accuracy (-1 when RGB always wins).
	CrossoverVisibility float64
}

// RunNight sweeps visibility for both modalities on identical scenes.
func RunNight(seed int64) (*NightResult, error) {
	rng := rand.New(rand.NewSource(seed))
	det, err := detection.NewDetector(rng)
	if err != nil {
		return nil, err
	}
	area := squareArea(60)
	scene, err := detection.NewRandomScene(area, 12, 0.25, rng)
	if err != nil {
		return nil, err
	}
	centre, err := area.Centroid()
	if err != nil {
		return nil, err
	}
	res := &NightResult{CrossoverVisibility: -1}
	const frames = 400
	accuracy := make(map[[2]interface{}]float64)
	visibilities := []float64{1.0, 0.7, 0.4, 0.2}
	for _, vis := range visibilities {
		for _, thermal := range []bool{false, true} {
			var fr []*detection.Frame
			for i := 0; i < frames; i++ {
				f, err := det.Capture("u1", float64(i), centre, detection.Conditions{
					AltitudeM: 25, Visibility: vis, Thermal: thermal,
				}, scene)
				if err != nil {
					return nil, err
				}
				fr = append(fr, f)
			}
			score := detection.ScoreFrames(fr)
			name := "rgb"
			if thermal {
				name = "thermal"
			}
			row := NightRow{
				Visibility: vis,
				Modality:   name,
				Recall:     score.Recall(),
				Precision:  score.Precision(),
				Accuracy:   score.Accuracy(),
			}
			res.Rows = append(res.Rows, row)
			accuracy[[2]interface{}{vis, thermal}] = row.Accuracy
		}
	}
	for _, vis := range visibilities {
		if accuracy[[2]interface{}{vis, true}] > accuracy[[2]interface{}{vis, false}] {
			if vis > res.CrossoverVisibility {
				res.CrossoverVisibility = vis
			}
		}
	}
	if len(res.Rows) == 0 {
		return nil, errors.New("experiments: empty night sweep")
	}
	return res, nil
}

// Print writes the modality comparison table.
func (r *NightResult) Print(w io.Writer) {
	printf(w, "== EXT-b: RGB vs thermal imaging across visibility (25 m survey) ==\n\n")
	printf(w, "%10s %9s %8s %10s %9s\n", "visibility", "modality", "recall", "precision", "accuracy")
	for _, row := range r.Rows {
		printf(w, "%10.1f %9s %7.1f%% %9.1f%% %8.1f%%\n",
			row.Visibility, row.Modality, row.Recall*100, row.Precision*100, row.Accuracy*100)
	}
	if r.CrossoverVisibility >= 0 {
		printf(w, "\nthermal overtakes RGB at visibility <= %.1f\n", r.CrossoverVisibility)
	} else {
		printf(w, "\nRGB never overtaken in this sweep\n")
	}
}
