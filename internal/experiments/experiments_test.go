package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig5Shape(t *testing.T) {
	r, err := RunFig5(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curve) < 500 {
		t.Fatalf("curve too short: %d", len(r.Curve))
	}
	// Both curves start near zero and are monotone until the baseline
	// lands.
	if r.Curve[0].PoFEDDI > 0.01 || r.Curve[0].PoFReactive > 0.01 {
		t.Fatalf("initial PoF not ~0: %+v", r.Curve[0])
	}
	for i := 1; i < len(r.Curve); i++ {
		if r.Curve[i].PoFEDDI < r.Curve[i-1].PoFEDDI-1e-9 {
			t.Fatalf("EDDI PoF not monotone at %d", i)
		}
	}
	// Reactive aborts right at the fault.
	if r.ReactiveAbortS < 250 || r.ReactiveAbortS > 255 {
		t.Fatalf("reactive abort at %v, want ~250", r.ReactiveAbortS)
	}
	// The EDDI crosses the threshold near the 510 s mission end.
	if r.ThresholdCrossS < 420 || r.ThresholdCrossS > 580 {
		t.Fatalf("threshold crossed at %v, want near 510", r.ThresholdCrossS)
	}
	if !r.EDDICompletesMission {
		t.Fatal("EDDI must essentially complete the mission")
	}
	// After the baseline lands, its PoF plateaus while EDDI's keeps
	// rising.
	last := r.Curve[len(r.Curve)-1]
	if last.PoFEDDI <= last.PoFReactive {
		t.Fatalf("EDDI final PoF (%v) must exceed grounded baseline (%v)", last.PoFEDDI, last.PoFReactive)
	}
	// Availability shape: with > without, the paper's 91% vs 80%
	// ordering. With SESAME the faulted UAV completes its own task, so
	// availability stays near 100%; the baseline spends the
	// return/swap/redeploy cycle unavailable.
	if r.AvailabilityEDDI < r.AvailabilityReactive+0.05 {
		t.Fatalf("availability: with=%v without=%v", r.AvailabilityEDDI, r.AvailabilityReactive)
	}
	if r.AvailabilityEDDI < 0.95 || r.AvailabilityReactive > 0.93 {
		t.Fatalf("availability out of band: with=%v without=%v", r.AvailabilityEDDI, r.AvailabilityReactive)
	}
	// Completion time: SESAME finishes clearly earlier (paper: ~11%).
	if r.TimeImprovementPct < 5 {
		t.Fatalf("completion improvement = %v%%, want >= 5%%", r.TimeImprovementPct)
	}
	if r.CompletionEDDIS >= r.CompletionReactiveS {
		t.Fatalf("completion: with=%v without=%v", r.CompletionEDDIS, r.CompletionReactiveS)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Fig. 5", "threshold", "availability", "91%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRunAccuracyShape(t *testing.T) {
	r, err := RunAccuracy(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sweep) != 4 {
		t.Fatalf("sweep rows = %d", len(r.Sweep))
	}
	// Uncertainty grows with altitude; accuracy falls.
	for i := 1; i < len(r.Sweep); i++ {
		if r.Sweep[i].FusedUncertainty < r.Sweep[i-1].FusedUncertainty-0.05 {
			t.Fatalf("uncertainty not increasing with altitude: %+v", r.Sweep)
		}
	}
	low, high := r.Sweep[0], r.Sweep[len(r.Sweep)-1]
	if low.Accuracy < 0.97 {
		t.Fatalf("25 m accuracy = %v, want ~0.998", low.Accuracy)
	}
	if high.FusedUncertainty < 0.9 {
		t.Fatalf("60 m uncertainty = %v, want > 0.9 (the descend trigger)", high.FusedUncertainty)
	}
	if high.Accuracy >= low.Accuracy {
		t.Fatal("accuracy must fall with altitude")
	}
	// The adaptive run descends and recovers the paper's accuracy.
	if r.AdaptiveFinalAltitude != 25 {
		t.Fatalf("adaptive run did not descend (alt %v)", r.AdaptiveFinalAltitude)
	}
	if r.AdaptiveAccuracy < 0.97 {
		t.Fatalf("adaptive accuracy = %v, want ~0.998", r.AdaptiveAccuracy)
	}
	if r.AdaptiveFinalUncertainty >= 0.9 {
		t.Fatalf("adaptive uncertainty = %v, want < 0.9 (~0.75)", r.AdaptiveFinalUncertainty)
	}
	if r.BaselineAccuracy >= r.AdaptiveAccuracy {
		t.Fatalf("baseline (%v) must trail adaptive (%v)", r.BaselineAccuracy, r.AdaptiveAccuracy)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "99.8") && !strings.Contains(buf.String(), "accuracy") {
		t.Fatal("report incomplete")
	}
}

func TestRunFig6Shape(t *testing.T) {
	r, err := RunFig6(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Track) < 300 {
		t.Fatalf("track too short: %d", len(r.Track))
	}
	// Before the attack the trajectories coincide (same seed).
	for _, pt := range r.Track {
		if pt.Time >= r.SpoofStartS-2 {
			break
		}
		if dev := dist2(pt.CleanEast-pt.SpoofEast, pt.CleanNorth-pt.SpoofNorth); dev > 2 {
			t.Fatalf("pre-attack deviation %.1f m at t=%v", dev, pt.Time)
		}
	}
	// After the attack the true tracks diverge substantially.
	if r.MaxDeviationM < 30 {
		t.Fatalf("max deviation = %.1f m, want large", r.MaxDeviationM)
	}
	// Detection is prompt.
	if r.DetectionS < r.SpoofStartS || r.DetectionS > r.SpoofStartS+15 {
		t.Fatalf("detection at %v for attack at %v", r.DetectionS, r.SpoofStartS)
	}
	if len(r.AttackPath) == 0 {
		t.Fatal("no attack path recorded")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "deviation") {
		t.Fatal("report incomplete")
	}
}

func dist2(dx, dy float64) float64 {
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

func TestRunFig7Shape(t *testing.T) {
	r, err := RunFig7(4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.LandedOK {
		t.Fatal("victim never landed")
	}
	if r.LandingErrorM > 10 {
		t.Fatalf("landing error %.1f m, want high precision", r.LandingErrorM)
	}
	if r.Observers != 2 {
		t.Fatalf("observers = %d", r.Observers)
	}
	if len(r.Track) == 0 {
		t.Fatal("no track recorded")
	}
	// The fused estimate error stays bounded once warmed up.
	for i, pt := range r.Track {
		if i > 10 && pt.EstimateErrM > 40 {
			t.Fatalf("estimate error %.1f m at sample %d", pt.EstimateErrM, i)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "landing error") {
		t.Fatal("report incomplete")
	}
}

func TestRunFig1Shape(t *testing.T) {
	r, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	if r.Combinations != 512 {
		t.Fatalf("combinations = %d", r.Combinations)
	}
	var total int
	for _, n := range r.ByAction {
		total += n
	}
	if total != 512 {
		t.Fatalf("action counts sum to %d", total)
	}
	// Named scenarios behave per Fig. 1.
	byName := map[string]Fig1Scenario{}
	for _, sc := range r.Scenarios {
		byName[sc.Name] = sc
	}
	if byName["nominal"].Action.String() != "continue+takeover" {
		t.Fatalf("nominal = %v", byName["nominal"].Action)
	}
	if byName["spoofing detected"].Navigation != "collaborative-nav" {
		t.Fatalf("spoofing nav = %v", byName["spoofing detected"].Navigation)
	}
	if byName["spoofed + isolated"].Action.String() != "emergency-land" {
		t.Fatalf("isolated = %v", byName["spoofed + isolated"].Action)
	}
	if len(r.MissionDemo) != 3 {
		t.Fatalf("mission demo rows = %d", len(r.MissionDemo))
	}
	if r.MissionDemo[0].Decision.String() != "mission-complete-as-planned" {
		t.Fatalf("fleet nominal = %v", r.MissionDemo[0].Decision)
	}
	if r.MissionDemo[1].Decision.String() != "task-redistribution-needed" {
		t.Fatalf("fleet degraded = %v", r.MissionDemo[1].Decision)
	}
	if r.MissionDemo[2].Decision.String() != "mission-cannot-be-completed" {
		t.Fatalf("fleet grounded = %v", r.MissionDemo[2].Decision)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "ConSert") {
		t.Fatal("report incomplete")
	}
}

func TestRunAblationsShape(t *testing.T) {
	r, err := RunAblations(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Measures) != 6 {
		t.Fatalf("measures = %d", len(r.Measures))
	}
	for _, m := range r.Measures {
		if m.DetectionRate < 0.5 {
			t.Fatalf("%s detects only %v of 1.2-sigma shifts", m.Measure, m.DetectionRate)
		}
		if m.FalseAlarmRate > 0.25 {
			t.Fatalf("%s false alarms %v", m.Measure, m.FalseAlarmRate)
		}
	}
	// Observer scaling: 3 observers better than 1 on mean error.
	if len(r.Observers) != 3 {
		t.Fatalf("observer points = %d", len(r.Observers))
	}
	if r.Observers[2].MeanEstErrM >= r.Observers[0].MeanEstErrM {
		t.Fatalf("3 obs (%v) not better than 1 (%v)",
			r.Observers[2].MeanEstErrM, r.Observers[0].MeanEstErrM)
	}
	// CBE: static flattening over-claims at every horizon.
	for _, c := range r.CBE {
		if c.StaticPoF <= c.DynamicPoF {
			t.Fatalf("t=%v: static %v not above dynamic %v", c.Time, c.StaticPoF, c.DynamicPoF)
		}
	}
	// Reconfiguration: hex beats quad by a growing margin at short
	// horizons.
	for _, p := range r.Reconfig {
		if p.HexPoF >= p.QuadPoF {
			t.Fatalf("t=%v: hex %v not better than quad %v", p.Time, p.HexPoF, p.QuadPoF)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	for _, want := range []string{"ABL-a", "ABL-b", "ABL-c", "ABL-d"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %s", want)
		}
	}
}

func TestRunPatternsShape(t *testing.T) {
	r, err := RunPatterns(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Coverage < 0.9 {
			t.Fatalf("%s coverage = %v", row.Pattern, row.Coverage)
		}
		if row.PathLengthM <= 0 {
			t.Fatalf("%s path length = %v", row.Pattern, row.PathLengthM)
		}
		if row.DetectedFraction < 0.5 {
			t.Fatalf("%s found only %v of persons", row.Pattern, row.DetectedFraction)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "expanding-square") {
		t.Fatal("report incomplete")
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	r5, err := RunFig5(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r5.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	r7, err := RunFig7(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r7.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	rc, err := RunComms(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "comms_scenarios.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != 7 || !strings.Contains(lines[0], "scenario") {
		t.Fatalf("comms_scenarios.csv malformed: %d lines", len(lines))
	}
	for _, name := range []string{"fig5_pof.csv", "fig7_tracks.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 10 {
			t.Fatalf("%s has only %d lines", name, len(lines))
		}
		if !strings.Contains(lines[0], "t_s") {
			t.Fatalf("%s missing header: %q", name, lines[0])
		}
	}
}

func TestRunNightShape(t *testing.T) {
	r, err := RunNight(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	get := func(vis float64, mod string) NightRow {
		for _, row := range r.Rows {
			if row.Visibility == vis && row.Modality == mod {
				return row
			}
		}
		t.Fatalf("missing row %v/%s", vis, mod)
		return NightRow{}
	}
	// Clear day: RGB wins on accuracy (fewer warm-clutter FPs).
	if get(1.0, "rgb").Accuracy <= get(1.0, "thermal").Accuracy {
		t.Fatalf("day: rgb %v vs thermal %v", get(1.0, "rgb").Accuracy, get(1.0, "thermal").Accuracy)
	}
	// Night/haze: thermal wins.
	if get(0.2, "thermal").Accuracy <= get(0.2, "rgb").Accuracy {
		t.Fatalf("night: thermal %v vs rgb %v", get(0.2, "thermal").Accuracy, get(0.2, "rgb").Accuracy)
	}
	// Thermal recall is flat across visibility; RGB recall falls.
	if get(0.2, "rgb").Recall >= get(1.0, "rgb").Recall {
		t.Fatal("rgb recall must fall with visibility")
	}
	if r.CrossoverVisibility < 0 {
		t.Fatal("expected a crossover")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "thermal") {
		t.Fatal("report incomplete")
	}
}

func TestRunFig7Stats(t *testing.T) {
	s, err := RunFig7Stats(8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Landed != 8 {
		t.Fatalf("landed %d/8", s.Landed)
	}
	if s.MeanErrM <= 0 || s.MeanErrM > 8 {
		t.Fatalf("mean landing error = %v", s.MeanErrM)
	}
	if s.P95ErrM < s.MeanErrM || s.WorstErrM < s.P95ErrM {
		t.Fatalf("ordering broken: mean=%v p95=%v worst=%v", s.MeanErrM, s.P95ErrM, s.WorstErrM)
	}
	if s.WorstErrM > 15 {
		t.Fatalf("worst landing error = %v, want high precision across seeds", s.WorstErrM)
	}
	var buf bytes.Buffer
	s.Print(&buf)
	if !strings.Contains(buf.String(), "p95") {
		t.Fatal("report incomplete")
	}
}

func TestRunCommsShape(t *testing.T) {
	r, err := RunComms(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 6 {
		t.Fatalf("got %d scenarios", len(r.Scenarios))
	}
	byName := map[string]CommsScenario{}
	for _, s := range r.Scenarios {
		byName[s.Name] = s
		if !s.ReplayIdentical {
			t.Errorf("%s: replay diverged — determinism contract broken", s.Name)
		}
		if s.Link.Pending != 0 {
			t.Errorf("%s: %d frames stranded in the link queue", s.Name, s.Link.Pending)
		}
		if s.Link.Offered+s.Link.Duplicated != s.Link.Delivered+s.Link.Dropped+s.Link.Rejected {
			t.Errorf("%s: link conservation violated: %+v", s.Name, s.Link)
		}
	}
	nominal := byName["nominal"]
	if !nominal.Completed || nominal.Drops.Total() != 0 || nominal.Link.Dropped != 0 {
		t.Fatalf("nominal run not clean: %+v", nominal)
	}
	// Duplication must be invisible to the mission outcome.
	dup := byName["dup-5"]
	if dup.Link.Duplicated == 0 {
		t.Error("dup-5 duplicated nothing")
	}
	if dup.CompletionS != nominal.CompletionS || dup.Availability != nominal.Availability {
		t.Errorf("duplication changed the outcome: %+v vs %+v", dup, nominal)
	}
	// The brownout stays below the lost-link window: staleness visible,
	// no contingency.
	brown := byName["brownout-12s"]
	if brown.MaxTelemetryAgeS < 11 || brown.MaxTelemetryAgeS > 15 {
		t.Errorf("brownout max age = %v, want ~12", brown.MaxTelemetryAgeS)
	}
	if brown.LostLinkEvents != 0 {
		t.Errorf("brownout fired %d lost-link contingencies, want 0", brown.LostLinkEvents)
	}
	// The blackout crosses it: exactly one contingency, visible
	// staleness beyond the window, mission still completes.
	black := byName["blackout-45s"]
	if black.LostLinkEvents != 1 {
		t.Errorf("blackout fired %d lost-link contingencies, want 1", black.LostLinkEvents)
	}
	if black.MaxTelemetryAgeS <= 15 {
		t.Errorf("blackout max age = %v, want > window", black.MaxTelemetryAgeS)
	}
	if !black.Completed {
		t.Error("fleet must finish the mission despite the blackout")
	}
	if black.Link.OutageDropped == 0 {
		t.Error("blackout dropped no frames")
	}
	// The database brownout exercises retry: some writes recover, the
	// rest are abandoned within the bounded budget and counted.
	db := byName["db-brownout-15s"]
	if db.DBRetries.Scheduled == 0 || db.DBRetries.Succeeded == 0 {
		t.Errorf("db brownout retries: %+v", db.DBRetries)
	}
	if db.DBRetries.Scheduled != db.DBRetries.Succeeded+db.DBRetries.Abandoned {
		t.Errorf("retry accounting leaks: %+v", db.DBRetries)
	}
	if db.Drops.Database != db.DBRetries.Abandoned {
		t.Errorf("abandoned writes not counted as drops: %+v vs %+v", db.Drops, db.DBRetries)
	}
}

func TestRunFlightRecShape(t *testing.T) {
	r, err := RunFlightRec(11)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match {
		t.Errorf("resumed digest %s diverges from uninterrupted %s",
			r.DigestResumed, r.DigestUninterrupted)
	}
	if r.TickRecords == 0 || uint64(r.TickRecords) != r.FinalTick {
		t.Errorf("recorded %d tick records for %d ticks", r.TickRecords, r.FinalTick)
	}
	if r.Snapshots == 0 {
		t.Error("recording holds no checkpoints")
	}
	if r.ResumeTick == 0 || r.ResumeTick > r.CrashTick {
		t.Errorf("resume tick %d not at or before crash tick %d", r.ResumeTick, r.CrashTick)
	}
	if r.FaultRecords == 0 {
		t.Error("the fault cocktail left no fault records")
	}
	if r.Segments == 0 || r.BytesOnDisk == 0 {
		t.Error("recording files missing")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "PASS") {
		t.Errorf("report does not declare PASS:\n%s", buf.String())
	}
}
