package experiments

import (
	"errors"
	"io"
	"math/rand"

	"sesame/internal/deepknowledge"
	"sesame/internal/detection"
	"sesame/internal/geo"
	"sesame/internal/neural"
	"sesame/internal/safeml"
	"sesame/internal/sinadra"
)

// AccuracyRow is one altitude operating point of the §V-B table.
type AccuracyRow struct {
	AltitudeM         float64
	SafeMLUncertainty float64
	DKUncertainty     float64
	FusedUncertainty  float64
	Accuracy          float64
	SINADRAAdvice     string
}

// AccuracyResult reproduces §V-B: uncertainty-driven altitude
// adaptation raising SAR accuracy to 99.8%.
type AccuracyResult struct {
	// Sweep is the static altitude sweep.
	Sweep []AccuracyRow
	// Adaptive is the with-SESAME run: start high, descend when fused
	// uncertainty exceeds the 90% threshold.
	AdaptiveFinalAltitude    float64
	AdaptiveFinalUncertainty float64
	AdaptiveAccuracy         float64
	// BaselineAccuracy is the without-SESAME run pinned at the survey
	// altitude.
	BaselineAccuracy float64
	// Threshold is the paper's 90% uncertainty bound.
	Threshold float64
}

// trainDetectorSurrogate builds the small "person detector" network
// whose activations DeepKnowledge inspects, trained on reference
// condition features.
func trainDetectorSurrogate(det *detection.Detector, rng *rand.Rand) (*neural.Network, [][]float64, [][]float64, error) {
	net, err := neural.New(detection.FeatureDim, rng,
		neural.LayerSpec{Units: 16, Activation: neural.ReLU},
		neural.LayerSpec{Units: 8, Activation: neural.ReLU},
		neural.LayerSpec{Units: 1, Activation: neural.Sigmoid})
	if err != nil {
		return nil, nil, nil, err
	}
	train := det.ReferenceFeatures(250)
	var samples []neural.Sample
	for i, x := range train {
		y := 0.0
		if x[0]+x[1] > 1 {
			y = 1
		}
		samples = append(samples, neural.Sample{X: x, Y: []float64{y}})
		_ = i
	}
	if _, err := net.Train(samples, 60, 0.05, rng); err != nil {
		return nil, nil, nil, err
	}
	// "Shifted" design set for TK-neuron selection: high-altitude
	// frames.
	shifted := make([][]float64, 200)
	scene := &detection.Scene{Area: squareArea(200)}
	for i := range shifted {
		f, err := det.Capture("design", float64(i), testOrigin, detection.Conditions{AltitudeM: 60, Visibility: 1}, scene)
		if err != nil {
			return nil, nil, nil, err
		}
		shifted[i] = f.Features
	}
	return net, train, shifted, nil
}

// measureAt captures frames at the given altitude and returns the
// uncertainty components and accuracy.
func measureAt(det *detection.Detector, scene *detection.Scene, sm *safeml.Monitor,
	dk *deepknowledge.Analysis, center geo.LatLng, altM float64, frames int) (AccuracyRow, error) {

	sm.Reset()
	var all []*detection.Frame
	var window [][]float64
	for i := 0; i < frames; i++ {
		f, err := det.Capture("u1", float64(i), center, detection.Conditions{AltitudeM: altM, Visibility: 1}, scene)
		if err != nil {
			return AccuracyRow{}, err
		}
		all = append(all, f)
		window = append(window, f.Features)
		_ = sm.Push(f.Features)
	}
	rep, err := sm.Evaluate()
	if err != nil {
		return AccuracyRow{}, err
	}
	dkU, err := dk.WindowUncertainty(window)
	if err != nil {
		return AccuracyRow{}, err
	}
	// Fusion: SafeML dominates (calibrated to the paper's reported
	// percentages); DeepKnowledge corroborates.
	fused := rep.Uncertainty
	if dkU > fused {
		fused = dkU
	}
	score := detection.ScoreFrames(all)
	return AccuracyRow{
		AltitudeM:         altM,
		SafeMLUncertainty: rep.Uncertainty,
		DKUncertainty:     dkU,
		FusedUncertainty:  fused,
		Accuracy:          score.Accuracy(),
	}, nil
}

// RunAccuracy executes the §V-B evaluation.
func RunAccuracy(seed int64) (*AccuracyResult, error) {
	rng := rand.New(rand.NewSource(seed))
	det, err := detection.NewDetector(rng)
	if err != nil {
		return nil, err
	}
	area := squareArea(60) // compact cluster so every person stays in view
	scene, err := detection.NewRandomScene(area, 12, 0.25, rng)
	if err != nil {
		return nil, err
	}
	center, err := area.Centroid()
	if err != nil {
		return nil, err
	}
	net, train, shifted, err := trainDetectorSurrogate(det, rng)
	if err != nil {
		return nil, err
	}
	dk, err := deepknowledge.Analyze(net, train, shifted, 10, 5)
	if err != nil {
		return nil, err
	}
	smCfg := safeml.DefaultConfig()
	sm, err := safeml.NewMonitor(det.ReferenceFeatures(300), smCfg)
	if err != nil {
		return nil, err
	}
	assessor, err := sinadra.NewAssessor(sinadra.DefaultConfig())
	if err != nil {
		return nil, err
	}

	res := &AccuracyResult{Threshold: 0.9}
	const windowFrames = 40
	for _, alt := range []float64{25, 35, 45, 60} {
		row, err := measureAt(det, scene, sm, dk, center, alt, windowFrames)
		if err != nil {
			return nil, err
		}
		risk, err := assessor.Assess(sinadra.Situation{
			Uncertainty: row.FusedUncertainty,
			AltitudeM:   alt,
			Visibility:  1,
		})
		if err != nil {
			return nil, err
		}
		row.SINADRAAdvice = risk.Advice.String()
		res.Sweep = append(res.Sweep, row)
	}

	// Adaptive (with SESAME): start at 60 m; when fused uncertainty
	// exceeds the threshold, descend to 25 m and re-measure.
	high, err := measureAt(det, scene, sm, dk, center, 60, windowFrames)
	if err != nil {
		return nil, err
	}
	if high.FusedUncertainty >= res.Threshold {
		low, err := measureAt(det, scene, sm, dk, center, 25, windowFrames)
		if err != nil {
			return nil, err
		}
		res.AdaptiveFinalAltitude = 25
		res.AdaptiveFinalUncertainty = low.FusedUncertainty
		res.AdaptiveAccuracy = low.Accuracy
	} else {
		res.AdaptiveFinalAltitude = 60
		res.AdaptiveFinalUncertainty = high.FusedUncertainty
		res.AdaptiveAccuracy = high.Accuracy
	}
	// Baseline (no SESAME): stays at 60 m, with a fresh measurement.
	base, err := measureAt(det, scene, sm, dk, center, 60, windowFrames)
	if err != nil {
		return nil, err
	}
	res.BaselineAccuracy = base.Accuracy
	if len(res.Sweep) == 0 {
		return nil, errors.New("experiments: empty sweep")
	}
	return res, nil
}

// Print writes the §V-B table.
func (r *AccuracyResult) Print(w io.Writer) {
	printf(w, "== §V-B: SAR accuracy vs altitude (uncertainty threshold %.0f%%) ==\n\n", r.Threshold*100)
	printf(w, "%8s  %10s  %8s  %8s  %9s  %s\n", "alt(m)", "SafeML-U", "DK-U", "fused-U", "accuracy", "SINADRA")
	for _, row := range r.Sweep {
		printf(w, "%8.0f  %9.1f%%  %7.1f%%  %7.1f%%  %8.2f%%  %s\n",
			row.AltitudeM, row.SafeMLUncertainty*100, row.DKUncertainty*100,
			row.FusedUncertainty*100, row.Accuracy*100, row.SINADRAAdvice)
	}
	printf(w, "\nadaptive (with SESAME): descended to %.0f m, uncertainty %.1f%%, accuracy %.2f%% (paper: ~75%% uncertainty, 99.8%% accuracy)\n",
		r.AdaptiveFinalAltitude, r.AdaptiveFinalUncertainty*100, r.AdaptiveAccuracy*100)
	printf(w, "baseline (no SESAME):   stayed at 60 m, accuracy %.2f%%\n", r.BaselineAccuracy*100)
}
