package experiments

import (
	"io"
	"strings"

	"sesame/internal/chaos"
	"sesame/internal/detection"
	"sesame/internal/platform"
	"sesame/internal/uavsim"
)

// ChaosResult is the chaos-harness demonstration: the same eventful
// mission is flown clean, with an inert (empty) chaos layer, and twice
// under an aggressive fault plan. The inert run must be bit-identical
// to the clean one (the harness is transparent when idle) and the two
// chaos runs must be bit-identical to each other (injections are a
// pure function of the plan seed) — while the fleet rides out every
// injected failure through quarantine and graceful degradation.
type ChaosResult struct {
	Seed    int64
	Horizon float64

	BaselineDigest string
	InertDigest    string
	ChaosDigestA   string
	ChaosDigestB   string
	Transparent    bool // inert == baseline
	Reproducible   bool // chaos A == chaos B

	Injections  chaos.Stats
	Quarantines int
	Recoveries  int
	Decision    string
	Drops       uint64
}

// demoChaosPlan is the aggressive-but-survivable fault cocktail: u1's
// monitor chain panics on every tick for 40 s (driving the circuit
// breaker through quarantine and recovery), a flaky window of chain
// errors hits the whole fleet, telemetry publishes fail sporadically
// and the mission database browns out for the first five minutes.
func demoChaosPlan() chaos.Plan {
	return chaos.Plan{
		Name: "demo",
		Seed: 7,
		Monitors: []chaos.MonitorFault{
			{UAV: "u1", Mode: chaos.ModePanic, Window: chaos.Window{FromS: 60, ToS: 100}, Prob: 1},
			{Mode: chaos.ModeError, Window: chaos.Window{FromS: 150, ToS: 170}, Prob: 0.5},
		},
		Bus: []chaos.PublishFault{
			{Match: "telemetry/", Window: chaos.Window{FromS: 30, ToS: 120}, Prob: 0.05},
		},
		DB: []chaos.Brownout{
			{Window: chaos.Window{ToS: 300}, Prob: 0.2},
		},
	}
}

// RunChaos flies the demonstration described on ChaosResult.
func RunChaos(seed int64) (*ChaosResult, error) {
	const horizon = 600.0
	res := &ChaosResult{Seed: seed, Horizon: horizon}

	fly := func(plan *chaos.Plan) (string, *platform.Platform, *chaos.Layer, error) {
		p, layer, err := buildChaosScenario(seed, plan)
		if err != nil {
			return "", nil, nil, err
		}
		if err := flyUntil(p, p.World.Clock.Now()+horizon); err != nil {
			p.Close()
			return "", nil, nil, err
		}
		digest, err := missionDigest(p)
		if err != nil {
			p.Close()
			return "", nil, nil, err
		}
		return digest, p, layer, nil
	}

	digest, p, _, err := fly(nil)
	if err != nil {
		return nil, err
	}
	res.BaselineDigest = digest
	p.Close()

	empty := chaos.Plan{}
	if digest, p, _, err = fly(&empty); err != nil {
		return nil, err
	}
	res.InertDigest = digest
	p.Close()

	plan := demoChaosPlan()
	digestA, p, layer, err := fly(&plan)
	if err != nil {
		return nil, err
	}
	res.ChaosDigestA = digestA
	res.Injections = layer.Stats()
	res.Decision = p.Decision().String()
	res.Drops = p.Status().Drops.Total()
	for _, ev := range p.Coordinator.History("") {
		if strings.Contains(ev.Summary, "quarantined") {
			res.Quarantines++
		}
		if strings.Contains(ev.Summary, "recovered after quarantine") {
			res.Recoveries++
		}
	}
	p.Close()

	if digest, p, _, err = fly(&plan); err != nil {
		return nil, err
	}
	res.ChaosDigestB = digest
	p.Close()

	res.Transparent = res.InertDigest == res.BaselineDigest
	res.Reproducible = res.ChaosDigestA == res.ChaosDigestB
	return res, nil
}

// buildChaosScenario rebuilds the flightrec experiment's eventful
// mission (three UAVs, eight persons, battery collapse, GPS spoofing)
// with an optional chaos plan armed on top.
func buildChaosScenario(seed int64, plan *chaos.Plan) (*platform.Platform, *chaos.Layer, error) {
	w := uavsim.NewWorld(testOrigin, seed)
	for _, id := range []string{"u1", "u2", "u3"} {
		if _, err := w.AddUAV(uavsim.UAVConfig{ID: id, Home: testOrigin, CruiseSpeedMS: 12}); err != nil {
			return nil, nil, err
		}
	}
	area := squareArea(350)
	scene, err := detection.NewRandomScene(area, 8, 0.2, w.Clock.Stream("scene"))
	if err != nil {
		return nil, nil, err
	}
	cfg := platform.DefaultConfig()
	var layer *chaos.Layer
	if plan != nil {
		if layer, err = chaos.New(w.Clock, *plan); err != nil {
			return nil, nil, err
		}
		if mb := layer.MonitorBuilder(); mb != nil {
			cfg.ExtraMonitors = append(cfg.ExtraMonitors, mb)
		}
	}
	p, err := platform.New(w, scene, cfg)
	if err != nil {
		return nil, nil, err
	}
	if layer != nil {
		layer.AttachBus(w.Bus)
		layer.AttachBroker(p.Broker)
		if hook := layer.DBHook(platform.ErrUnavailable); hook != nil {
			p.DB.SetFaultHook(hook)
		}
	}
	if err := p.StartMission(area); err != nil {
		p.Close()
		return nil, nil, err
	}
	now := w.Clock.Now()
	if err := w.ScheduleFault(uavsim.GPSSpoofFault(now+30, "u2", 135, 3)); err != nil {
		return nil, nil, err
	}
	if err := w.ScheduleFault(uavsim.BatteryCollapseFault(now+60, "u1", 70, 40)); err != nil {
		return nil, nil, err
	}
	return p, layer, nil
}

// Print writes the chaos-harness report.
func (r *ChaosResult) Print(w io.Writer) {
	printf(w, "== Deterministic chaos harness (-exp chaos) ==\n")
	printf(w, "Mission: seed %d, horizon %.0f s, plan %q\n", r.Seed, r.Horizon, "demo")
	printf(w, "Injections: %d total (%d monitor panics, %d monitor errors, %d bus, %d db)\n",
		r.Injections.Total(), r.Injections.MonitorPanics, r.Injections.MonitorErrors,
		r.Injections.BusFailures, r.Injections.DBFailures)
	printf(w, "Degradation: %d quarantine(s), %d recovery(ies), %d counted drops, decision %s\n",
		r.Quarantines, r.Recoveries, r.Drops, r.Decision)
	printf(w, "Baseline digest: %s   inert-chaos digest: %s\n", r.BaselineDigest[:16], r.InertDigest[:16])
	printf(w, "Chaos digest A:  %s   chaos digest B:     %s\n", r.ChaosDigestA[:16], r.ChaosDigestB[:16])
	if r.Transparent {
		printf(w, "Transparency (inert layer == clean run): PASS\n")
	} else {
		printf(w, "Transparency (inert layer == clean run): FAIL\n")
	}
	if r.Reproducible {
		printf(w, "Reproducibility (chaos A == chaos B): PASS\n")
	} else {
		printf(w, "Reproducibility (chaos A == chaos B): FAIL\n")
	}
}
