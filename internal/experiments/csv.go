package experiments

import (
	"fmt"
	"strconv"

	"sesame/internal/campaign"
)

// writeCSV writes rows (with a header) to dir/name. It delegates to
// the campaign engine's shared CSV writer so every CSV artefact in the
// repo — one-shot experiment dumps and streamed campaign outputs — is
// produced by a single code path.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	return campaign.WriteCSVFile(dir, name, header, rows)
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

func i2s(v int) string { return strconv.Itoa(v) }

func u2s(v uint64) string { return strconv.FormatUint(v, 10) }

func boolS(v bool) string { return strconv.FormatBool(v) }

// WriteCSV dumps the Fig. 5 PoF curves to dir/fig5_pof.csv.
func (r *Fig5Result) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Curve))
	for _, pt := range r.Curve {
		rows = append(rows, []string{f2s(pt.Time), f2s(pt.PoFEDDI), f2s(pt.PoFReactive)})
	}
	return writeCSV(dir, "fig5_pof.csv", []string{"t_s", "pof_sesame", "pof_baseline"}, rows)
}

// WriteCSV dumps the altitude sweep to dir/accuracy_sweep.csv.
func (r *AccuracyResult) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Sweep))
	for _, row := range r.Sweep {
		rows = append(rows, []string{
			f2s(row.AltitudeM), f2s(row.SafeMLUncertainty), f2s(row.DKUncertainty),
			f2s(row.FusedUncertainty), f2s(row.Accuracy), row.SINADRAAdvice,
		})
	}
	return writeCSV(dir, "accuracy_sweep.csv",
		[]string{"altitude_m", "safeml_u", "dk_u", "fused_u", "accuracy", "sinadra"}, rows)
}

// WriteCSV dumps both Fig. 6 trajectories to dir/fig6_tracks.csv.
func (r *Fig6Result) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Track))
	for _, pt := range r.Track {
		rows = append(rows, []string{
			f2s(pt.Time),
			f2s(pt.CleanEast), f2s(pt.CleanNorth),
			f2s(pt.SpoofEast), f2s(pt.SpoofNorth),
			f2s(pt.BelievedEast), f2s(pt.BelievedN),
		})
	}
	return writeCSV(dir, "fig6_tracks.csv",
		[]string{"t_s", "clean_e", "clean_n", "attacked_e", "attacked_n", "believed_e", "believed_n"}, rows)
}

// WriteCSV dumps the Fig. 7 landing tracks to dir/fig7_tracks.csv.
func (r *Fig7Result) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Track))
	for _, pt := range r.Track {
		rows = append(rows, []string{
			f2s(pt.Time),
			f2s(pt.VictimEast), f2s(pt.VictimNorth),
			f2s(pt.Assist1E), f2s(pt.Assist1N),
			f2s(pt.Assist2E), f2s(pt.Assist2N),
			f2s(pt.EstimateErrM),
		})
	}
	return writeCSV(dir, "fig7_tracks.csv",
		[]string{"t_s", "victim_e", "victim_n", "assist1_e", "assist1_n", "assist2_e", "assist2_n", "est_err_m"}, rows)
}

// WriteCSV dumps the pattern comparison to dir/patterns.csv.
func (r *PatternResult) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Pattern, f2s(row.PathLengthM), f2s(row.Coverage),
			f2s(row.FirstDetectionS), fmt.Sprint(row.TotalDetected), f2s(row.MissionSeconds),
		})
	}
	return writeCSV(dir, "patterns.csv",
		[]string{"pattern", "path_m", "coverage", "first_find_s", "found", "mission_s"}, rows)
}
