package experiments

import (
	"io"
	"math/rand"
	"time"

	"sesame/internal/campaign"
	"sesame/internal/colloc"
	"sesame/internal/geo"
	"sesame/internal/safedrones"
	"sesame/internal/statdist"
	"sesame/internal/uavsim"
)

// MeasurePower is one statistical-distance measure's detection power
// on altitude-induced feature drift (ablation ABL-a).
type MeasurePower struct {
	Measure string
	// DetectionRate is the fraction of drifted windows whose distance
	// exceeds the null 95th percentile.
	DetectionRate float64
	// FalseAlarmRate on in-distribution windows.
	FalseAlarmRate float64
	// NsPerEval is the measured cost of one evaluation.
	NsPerEval int64
}

// ObserverPoint is one observer-count operating point (ABL-b).
type ObserverPoint struct {
	Observers    int
	MeanEstErrM  float64
	WorstEstErrM float64
}

// CBEPoint compares fault-tree PoF with Markov complex basic events
// vs flattened static events (ABL-c).
type CBEPoint struct {
	Time        float64
	DynamicPoF  float64
	StaticPoF   float64
	OverClaimPc float64 // how much the static model over-claims
}

// ReconfigPoint compares propulsion PoF with and without
// reconfiguration (ABL-d).
type ReconfigPoint struct {
	Time     float64
	QuadPoF  float64
	HexPoF   float64
	RatioQ2H float64
}

// AblationResult aggregates all four design-choice ablations.
type AblationResult struct {
	Measures  []MeasurePower
	Observers []ObserverPoint
	CBE       []CBEPoint
	Reconfig  []ReconfigPoint
}

// RunAblations executes the four ablations of DESIGN.md.
func RunAblations(seed int64) (*AblationResult, error) {
	res := &AblationResult{}

	// ABL-a: distance measure power on a 1.2-sigma mean shift
	// (approximately the 45 m altitude drift).
	rng := rand.New(rand.NewSource(seed))
	const refN, winN, trials = 300, 40, 60
	ref := make([]float64, refN)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	window := func(shift float64) []float64 {
		out := make([]float64, winN)
		for i := range out {
			out[i] = rng.NormFloat64() + shift
		}
		return out
	}
	for _, m := range statdist.All() {
		// Null distribution of the statistic.
		var null []float64
		for i := 0; i < trials*2; i++ {
			d, err := m.Distance(ref, window(0))
			if err != nil {
				return nil, err
			}
			null = append(null, d)
		}
		// 95th percentile threshold.
		thr := campaign.Percentile(null, 0.95)
		var hits, falses int
		start := time.Now()
		evals := 0
		for i := 0; i < trials; i++ {
			d, err := m.Distance(ref, window(1.2))
			if err != nil {
				return nil, err
			}
			evals++
			if d > thr {
				hits++
			}
			d0, err := m.Distance(ref, window(0))
			if err != nil {
				return nil, err
			}
			evals++
			if d0 > thr {
				falses++
			}
		}
		elapsed := time.Since(start).Nanoseconds()
		res.Measures = append(res.Measures, MeasurePower{
			Measure:        m.Name(),
			DetectionRate:  float64(hits) / trials,
			FalseAlarmRate: float64(falses) / trials,
			NsPerEval:      elapsed / int64(evals),
		})
	}

	// ABL-b: observer count vs collaborative estimation error.
	for _, n := range []int{1, 2, 3} {
		var sum, worst float64
		count := 0
		for s := int64(1); s <= 4; s++ {
			w := uavsim.NewWorld(testOrigin, seed+s)
			affected, err := w.AddUAV(uavsim.UAVConfig{ID: "affected", Home: testOrigin})
			if err != nil {
				return nil, err
			}
			_ = affected.TakeOff(25)
			var observers []*colloc.Observer
			for i := 0; i < n; i++ {
				home := geo.Destination(testOrigin, float64(i)*120+30, 150)
				a, err := w.AddUAV(uavsim.UAVConfig{ID: "as" + string(rune('0'+i)), Home: home})
				if err != nil {
					return nil, err
				}
				_ = a.TakeOff(30)
				o, err := colloc.NewObserver(a, w.Clock.Stream("abl/obs"+string(rune('0'+i))))
				if err != nil {
					return nil, err
				}
				observers = append(observers, o)
			}
			_ = w.Run(12, 0.5)
			loc, err := colloc.NewLocalizer(0.4)
			if err != nil {
				return nil, err
			}
			for i := 0; i < 80; i++ {
				var obs []geo.BearingObservation
				for _, o := range observers {
					if m, ok := o.Observe(affected); ok {
						obs = append(obs, m)
					}
				}
				if _, err := loc.Update(obs); err != nil {
					continue
				}
				if i >= 20 {
					est, _ := loc.Estimate()
					e := geo.Haversine(est, affected.TruePosition())
					sum += e
					count++
					if e > worst {
						worst = e
					}
				}
			}
		}
		res.Observers = append(res.Observers, ObserverPoint{
			Observers:    n,
			MeanEstErrM:  sum / float64(count),
			WorstEstErrM: worst,
		})
	}

	// ABL-c: Markov complex basic events vs static exponential events.
	cfg := safedrones.DefaultConfig()
	stress := safedrones.BatteryStress{ChargePct: 70, TempC: 45}
	dyn, err := safedrones.DesignTimeTree(cfg, stress)
	if err != nil {
		return nil, err
	}
	stat, err := safedrones.StaticTree(cfg, stress)
	if err != nil {
		return nil, err
	}
	for _, ts := range []float64{60, 150, 300, 510, 900, 1800} {
		pd, err := dyn.Probability(ts)
		if err != nil {
			return nil, err
		}
		ps, err := stat.Probability(ts)
		if err != nil {
			return nil, err
		}
		over := 0.0
		if pd > 0 {
			over = (ps - pd) / pd * 100
		}
		res.CBE = append(res.CBE, CBEPoint{Time: ts, DynamicPoF: pd, StaticPoF: ps, OverClaimPc: over})
	}

	// ABL-d: propulsion reconfiguration on/off.
	quad, err := safedrones.PropulsionChain(4, 4, 1e-4)
	if err != nil {
		return nil, err
	}
	hex, err := safedrones.PropulsionChain(6, 4, 1e-4)
	if err != nil {
		return nil, err
	}
	for _, ts := range []float64{300, 900, 1800, 3600} {
		pq, err := quad.FailureProbability("m0", ts, "failure")
		if err != nil {
			return nil, err
		}
		ph, err := hex.FailureProbability("m0", ts, "failure")
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if ph > 0 {
			ratio = pq / ph
		}
		res.Reconfig = append(res.Reconfig, ReconfigPoint{Time: ts, QuadPoF: pq, HexPoF: ph, RatioQ2H: ratio})
	}
	return res, nil
}

// Print writes all four ablation tables.
func (r *AblationResult) Print(w io.Writer) {
	printf(w, "== ABL-a: statistical distance measure choice (SafeML) ==\n")
	printf(w, "%-20s %12s %12s %12s\n", "measure", "detect-rate", "false-alarm", "ns/eval")
	for _, m := range r.Measures {
		printf(w, "%-20s %11.0f%% %11.0f%% %12d\n", m.Measure, m.DetectionRate*100, m.FalseAlarmRate*100, m.NsPerEval)
	}
	printf(w, "\n== ABL-b: collaborating observer count (CL) ==\n")
	printf(w, "%10s %14s %14s\n", "observers", "mean est err", "worst est err")
	for _, o := range r.Observers {
		printf(w, "%10d %12.2f m %12.2f m\n", o.Observers, o.MeanEstErrM, o.WorstEstErrM)
	}
	printf(w, "\n== ABL-c: Markov complex basic events vs static exponential (SafeDrones FTA) ==\n")
	printf(w, "%8s %12s %12s %12s\n", "t(s)", "dynamic PoF", "static PoF", "over-claim")
	for _, c := range r.CBE {
		printf(w, "%8.0f %12.5f %12.5f %11.1f%%\n", c.Time, c.DynamicPoF, c.StaticPoF, c.OverClaimPc)
	}
	printf(w, "\n== ABL-d: propulsion reconfiguration (quad vs hex, same motor rate) ==\n")
	printf(w, "%8s %12s %12s %10s\n", "t(s)", "quad PoF", "hex PoF", "quad/hex")
	for _, p := range r.Reconfig {
		printf(w, "%8.0f %12.6f %12.6f %9.0fx\n", p.Time, p.QuadPoF, p.HexPoF, p.RatioQ2H)
	}
}
