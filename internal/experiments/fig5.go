package experiments

import (
	"io"

	"sesame/internal/platform"
	"sesame/internal/safedrones"
	"sesame/internal/uavsim"
)

// Fig5Point is one sample of the probability-of-failure curve.
type Fig5Point struct {
	Time        float64
	PoFEDDI     float64 // with SESAME (blue line in Fig. 5)
	PoFReactive float64 // without SESAME (red line)
}

// Fig5Result reproduces Fig. 5 and the §V-A availability comparison.
type Fig5Result struct {
	// Curve is the PoF time series under both policies, for the
	// paper's exact scenario: battery 80%->40% at t=250 s, mission end
	// 510 s, threshold 0.9.
	Curve []Fig5Point
	// ThresholdCrossS is when the EDDI PoF crosses 0.9 (paper: ~510 s).
	ThresholdCrossS float64
	// ReactiveAbortS is when the baseline aborts (paper: 250 s).
	ReactiveAbortS float64
	// MissionEndS is the planned mission end (510 s).
	MissionEndS float64
	// EDDICompletesMission reports whether the threshold fired at or
	// after the mission end (the paper's headline behaviour).
	EDDICompletesMission bool

	// Platform-level availability comparison (paper: ~91% vs ~80%).
	AvailabilityEDDI     float64
	AvailabilityReactive float64
	ImprovementPct       float64
	// Mission completion times: the baseline's abort/swap/redeploy
	// cycle stretches the mission (paper: ~11% improvement with
	// SESAME).
	CompletionEDDIS     float64
	CompletionReactiveS float64
	TimeImprovementPct  float64
}

// fig5Telemetry produces the scenario telemetry at time ts.
func fig5Telemetry(ts float64) safedrones.Telemetry {
	tel := safedrones.Telemetry{Time: ts, CommsOK: true, Airborne: true}
	if ts < 250 {
		tel.ChargePct = 80
		tel.TempC = 35
	} else {
		tel.ChargePct = 40
		tel.TempC = 70
		tel.Overheating = true
	}
	return tel
}

// RunFig5 executes both parts of the §V-A evaluation.
func RunFig5(seed int64) (*Fig5Result, error) {
	res := &Fig5Result{MissionEndS: 510, ThresholdCrossS: -1, ReactiveAbortS: -1}

	// Part 1: the monitor-level PoF curves of Fig. 5.
	eddiCfg := safedrones.DefaultConfig()
	eddiCfg.Policy = safedrones.PolicyEDDI
	reactCfg := safedrones.DefaultConfig()
	reactCfg.Policy = safedrones.PolicyReactive
	eddiMon, err := safedrones.NewMonitor("u1", eddiCfg)
	if err != nil {
		return nil, err
	}
	reactMon, err := safedrones.NewMonitor("u1", reactCfg)
	if err != nil {
		return nil, err
	}
	reactiveAirborne := true
	for ts := 0.0; ts <= 600; ts++ {
		tel := fig5Telemetry(ts)
		ea, err := eddiMon.Observe(tel)
		if err != nil {
			return nil, err
		}
		// The baseline returns to base on the first anomaly; it lands
		// 60 s later and stops accumulating flight hazard.
		rtel := tel
		rtel.Airborne = reactiveAirborne
		ra, err := reactMon.Observe(rtel)
		if err != nil {
			return nil, err
		}
		if res.ReactiveAbortS < 0 && ra.Advice == safedrones.AdviceReturnToBase {
			res.ReactiveAbortS = ts
		}
		// The baseline lands (and swaps the battery) 60 s after the
		// abort; from then on it accrues no flight hazard.
		if res.ReactiveAbortS >= 0 && ts >= res.ReactiveAbortS+60 {
			reactiveAirborne = false
		}
		res.Curve = append(res.Curve, Fig5Point{Time: ts, PoFEDDI: ea.PoF, PoFReactive: ra.PoF})
		if res.ThresholdCrossS < 0 && ea.PoF >= eddiCfg.EmergencyPoF {
			res.ThresholdCrossS = ts
		}
	}
	res.EDDICompletesMission = res.ThresholdCrossS < 0 || res.ThresholdCrossS >= res.MissionEndS-60

	// Part 2: the platform-level availability comparison.
	runPlatform := func(sesame bool) (avail, completion float64, err error) {
		w := uavsim.NewWorld(testOrigin, seed)
		for _, id := range []string{"u1", "u2", "u3"} {
			if _, err := w.AddUAV(uavsim.UAVConfig{ID: id, Home: testOrigin, CruiseSpeedMS: 12}); err != nil {
				return 0, 0, err
			}
		}
		cfg := platform.DefaultConfig()
		cfg.SESAME = sesame
		p, err := platform.New(w, nil, cfg)
		if err != nil {
			return 0, 0, err
		}
		defer p.Close()
		start := w.Clock.Now()
		if err := p.StartMission(squareArea(350)); err != nil {
			return 0, 0, err
		}
		at := w.Clock.Now() + 60
		if err := w.ScheduleFault(uavsim.BatteryCollapseFault(at, "u1", 70, 40)); err != nil {
			return 0, 0, err
		}
		if err := p.RunMission(1500); err != nil {
			return 0, 0, err
		}
		avail, err = p.Availability()
		return avail, w.Clock.Now() - start, err
	}
	if res.AvailabilityEDDI, res.CompletionEDDIS, err = runPlatform(true); err != nil {
		return nil, err
	}
	if res.AvailabilityReactive, res.CompletionReactiveS, err = runPlatform(false); err != nil {
		return nil, err
	}
	res.ImprovementPct = (res.AvailabilityEDDI - res.AvailabilityReactive) * 100
	if res.CompletionReactiveS > 0 {
		res.TimeImprovementPct = (res.CompletionReactiveS - res.CompletionEDDIS) / res.CompletionReactiveS * 100
	}
	return res, nil
}

// Print writes the Fig. 5 series and the availability table.
func (r *Fig5Result) Print(w io.Writer) {
	printf(w, "== Fig. 5: Probability of Failure of a UAV with Battery Failure ==\n")
	printf(w, "scenario: battery 80%%->40%% at t=250 s (thermal fault), mission end %v s, threshold 0.9\n\n", r.MissionEndS)
	printf(w, "%8s  %12s  %12s\n", "t(s)", "PoF(SESAME)", "PoF(baseline)")
	for _, pt := range r.Curve {
		if int(pt.Time)%25 == 0 {
			printf(w, "%8.0f  %12.4f  %12.4f\n", pt.Time, pt.PoFEDDI, pt.PoFReactive)
		}
	}
	printf(w, "\nEDDI threshold (0.9) crossed at: t=%.0f s (paper: ~510 s)\n", r.ThresholdCrossS)
	printf(w, "baseline aborts at:              t=%.0f s (paper: 250 s)\n", r.ReactiveAbortS)
	printf(w, "EDDI completes the mission:      %v\n\n", r.EDDICompletesMission)
	printf(w, "== §V-A availability & completion time (integrated platform) ==\n")
	printf(w, "%-26s %10s %10s\n", "", "measured", "paper")
	printf(w, "%-26s %9.1f%% %10s\n", "availability with SESAME", r.AvailabilityEDDI*100, "~91%")
	printf(w, "%-26s %9.1f%% %10s\n", "availability without", r.AvailabilityReactive*100, "~80%")
	printf(w, "%-26s %9.0fs %10s\n", "completion with SESAME", r.CompletionEDDIS, "510 s")
	printf(w, "%-26s %9.0fs %10s\n", "completion without", r.CompletionReactiveS, "~570 s")
	printf(w, "%-26s %9.1f%% %10s\n", "completion improvement", r.TimeImprovementPct, "~11%")
}
