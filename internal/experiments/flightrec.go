package experiments

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sesame/internal/detection"
	"sesame/internal/flightrec"
	"sesame/internal/platform"
	"sesame/internal/uavsim"
)

// FlightRecResult is the black-box crash/resume demonstration: one
// eventful mission is flown with the recorder on, "crashes" halfway,
// and is resumed from the newest checkpoint before the crash — the
// resumed fleet must finish bit-identically to the uninterrupted run.
type FlightRecResult struct {
	Seed      int64
	Horizon   float64
	FinalTick uint64 // ticks the uninterrupted mission ran

	// Recording shape.
	TickRecords  int
	EventRecords int
	FaultRecords int
	AdviceReords int
	BusRecords   int
	Snapshots    int
	Segments     int
	BytesOnDisk  int64

	// Crash/resume outcome.
	CrashTick           uint64 // the tick the "crash" cut the mission at
	ResumeTick          uint64 // the checkpoint the resume restarted from
	ReplayedTicks       uint64 // ticks re-driven after the restore
	DigestUninterrupted string
	DigestResumed       string
	Match               bool
}

// RunFlightRec flies the §V fault cocktail (battery collapse + GPS
// spoofing) three times: uninterrupted, recorded, and resumed from the
// recording's mid-flight checkpoint, then compares final-state digests.
func RunFlightRec(seed int64) (*FlightRecResult, error) {
	const horizon = 900.0
	res := &FlightRecResult{Seed: seed, Horizon: horizon}

	// Uninterrupted reference flight.
	p, err := buildFlightRecScenario(seed)
	if err != nil {
		return nil, err
	}
	end := p.World.Clock.Now() + horizon
	if err := flyUntil(p, end); err != nil {
		return nil, err
	}
	res.FinalTick = p.Ticks()
	if res.DigestUninterrupted, err = missionDigest(p); err != nil {
		return nil, err
	}
	p.Close()

	// Recorded flight: black box on, checkpoint every 50 ticks.
	dir, err := os.MkdirTemp("", "sesame-flightrec-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	p, err = buildFlightRecScenario(seed)
	if err != nil {
		return nil, err
	}
	rec, err := flightrec.NewRecorder(dir, seed, p.ConfigDigest(), 50, flightrec.Options{})
	if err != nil {
		return nil, err
	}
	p.SetRecorder(rec)
	if err := flyUntil(p, end); err != nil {
		return nil, err
	}
	if err := rec.Close(); err != nil {
		return nil, err
	}
	recordedDigest, err := missionDigest(p)
	if err != nil {
		return nil, err
	}
	if recordedDigest != res.DigestUninterrupted {
		return nil, fmt.Errorf("recording perturbed the mission: %s != %s",
			recordedDigest, res.DigestUninterrupted)
	}
	p.Close()
	if err := res.surveyRecording(dir); err != nil {
		return nil, err
	}

	// Crash mid-flight, resume from the newest checkpoint before it.
	res.CrashTick = res.FinalTick / 2
	snap, _, err := flightrec.LatestSnapshot(dir, res.CrashTick)
	if err != nil {
		return nil, err
	}
	res.ResumeTick = snap.Tick
	var ps platform.PlatformSnapshot
	if err := json.Unmarshal(snap.State, &ps); err != nil {
		return nil, err
	}
	p, err = buildFlightRecScenario(seed)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	if err := p.RestoreCheckpoint(&ps); err != nil {
		return nil, err
	}
	if err := flyUntil(p, end); err != nil {
		return nil, err
	}
	res.ReplayedTicks = p.Ticks() - res.ResumeTick
	if res.DigestResumed, err = missionDigest(p); err != nil {
		return nil, err
	}
	res.Match = res.DigestResumed == res.DigestUninterrupted
	return res, nil
}

// buildFlightRecScenario rebuilds the eventful demo mission: three
// UAVs, eight scattered persons, a battery collapse at t=+60 and a GPS
// spoofing attack at t=+30. Every run — reference, recorded, resumed —
// starts from this exact construction.
func buildFlightRecScenario(seed int64) (*platform.Platform, error) {
	w := uavsim.NewWorld(testOrigin, seed)
	for _, id := range []string{"u1", "u2", "u3"} {
		if _, err := w.AddUAV(uavsim.UAVConfig{ID: id, Home: testOrigin, CruiseSpeedMS: 12}); err != nil {
			return nil, err
		}
	}
	area := squareArea(350)
	scene, err := detection.NewRandomScene(area, 8, 0.2, w.Clock.Stream("scene"))
	if err != nil {
		return nil, err
	}
	p, err := platform.New(w, scene, platform.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if err := p.StartMission(area); err != nil {
		p.Close()
		return nil, err
	}
	now := w.Clock.Now()
	if err := w.ScheduleFault(uavsim.GPSSpoofFault(now+30, "u2", 135, 3)); err != nil {
		return nil, err
	}
	if err := w.ScheduleFault(uavsim.BatteryCollapseFault(now+60, "u1", 70, 40)); err != nil {
		return nil, err
	}
	return p, nil
}

// flyUntil drives the platform to the fixed absolute end time.
func flyUntil(p *platform.Platform, end float64) error {
	for p.World.Clock.Now() < end {
		if err := p.Tick(); err != nil {
			return err
		}
		if p.MissionComplete() {
			return nil
		}
	}
	return nil
}

// missionDigest fingerprints the mission's externally observable final
// state: fleet status, mission decision, full EDDI event history and
// the availability number.
func missionDigest(p *platform.Platform) (string, error) {
	blob := struct {
		Status   platform.Status
		Decision string
		History  interface{}
	}{p.Status(), p.Decision().String(), p.Coordinator.History("")}
	data, err := json.Marshal(blob)
	if err != nil {
		return "", err
	}
	if a, err := p.Availability(); err == nil {
		data = append(data, []byte(fmt.Sprintf("avail=%.12f", a))...)
	}
	return fmt.Sprintf("%x", sha256.Sum256(data)), nil
}

// surveyRecording fills the recording-shape fields from the black box.
func (r *FlightRecResult) surveyRecording(dir string) error {
	rd, err := flightrec.OpenReader(dir)
	if err != nil {
		return err
	}
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch rec.Type {
		case flightrec.TypeTick:
			r.TickRecords++
		case flightrec.TypeEvent:
			r.EventRecords++
		case flightrec.TypeFault:
			r.FaultRecords++
		case flightrec.TypeAdvice:
			r.AdviceReords++
		case flightrec.TypeBus:
			r.BusRecords++
		case flightrec.TypeSnapshot:
			r.Snapshots++
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return err
		}
		r.BytesOnDisk += info.Size()
		if filepath.Ext(e.Name()) == ".rec" {
			r.Segments++
		}
	}
	return nil
}

// Print writes the crash/resume report.
func (r *FlightRecResult) Print(w io.Writer) {
	printf(w, "== Black-box flight recorder crash/resume (-exp flightrec) ==\n")
	printf(w, "Mission: seed %d, horizon %.0f s, %d ticks flown\n", r.Seed, r.Horizon, r.FinalTick)
	printf(w, "Recording: %d ticks, %d events, %d advice, %d faults, %d bus summaries, %d checkpoints\n",
		r.TickRecords, r.EventRecords, r.AdviceReords, r.FaultRecords, r.BusRecords, r.Snapshots)
	printf(w, "           %d segment(s), %.1f KiB on disk (%.1f B/tick)\n",
		r.Segments, float64(r.BytesOnDisk)/1024, float64(r.BytesOnDisk)/float64(max(r.TickRecords, 1)))
	printf(w, "Crash at tick %d -> resumed from checkpoint tick %d, re-drove %d ticks\n",
		r.CrashTick, r.ResumeTick, r.ReplayedTicks)
	printf(w, "Uninterrupted digest: %s\n", r.DigestUninterrupted[:16])
	printf(w, "Resumed digest:       %s\n", r.DigestResumed[:16])
	if r.Match {
		printf(w, "Result: bit-identical resume — PASS\n")
	} else {
		printf(w, "Result: DIVERGED — FAIL\n")
	}
}
