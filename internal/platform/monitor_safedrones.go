package platform

import (
	"encoding/json"
	"fmt"

	"sesame/internal/eddi"
	"sesame/internal/safedrones"
)

// reliabilityMonitor is the SafeDrones runtime monitor (paper §III-A1):
// it folds each telemetry snapshot into the per-UAV Markov/fault-tree
// model and publishes the PoF, the reliability level and the raw
// adaptation proposal on the chain blackboard. Under the EDDI policy it
// additionally raises an override when the emergency-PoF threshold is
// crossed — the trend-based call the boolean ConSert evidence cannot
// reproduce.
type reliabilityMonitor struct {
	p  *Platform
	st *uavState
}

func (m *reliabilityMonitor) Name() string { return "safedrones" }

func adviceKind(a safedrones.Advice) eddi.AdviceKind {
	switch a {
	case safedrones.AdviceHold:
		return eddi.AdviceHold
	case safedrones.AdviceReturnToBase:
		return eddi.AdviceReturnToBase
	case safedrones.AdviceEmergencyLand:
		return eddi.AdviceEmergencyLand
	default:
		return eddi.AdviceNone
	}
}

func (m *reliabilityMonitor) Observe(s eddi.Snapshot) ([]eddi.Event, eddi.Advice, error) {
	assessment, err := m.st.monitor.Observe(safedrones.Telemetry{
		Time:         s.Time,
		ChargePct:    s.ChargePct,
		TempC:        s.BatteryTempC,
		Overheating:  s.Overheating,
		FailedRotors: s.FailedRotors,
		CommsOK:      s.CommsOK,
		Airborne:     s.Airborne,
	})
	if err != nil {
		return nil, eddi.Advice{}, err
	}
	m.st.lastAssessment = assessment
	s.Derived.PoF = assessment.PoF
	s.Derived.ReliabilityLevel = assessment.Level.String()
	s.Derived.SafetyAdvice = adviceKind(assessment.Advice)

	events := []eddi.Event{{
		Kind: eddi.KindSafety, UAV: s.UAV, Time: s.Time,
		Severity: assessment.PoF,
		Summary:  fmt.Sprintf("PoF %.3f level %s", assessment.PoF, assessment.Level),
	}}
	var advice eddi.Advice
	// The emergency override belongs to the EDDI policy; the reactive
	// baseline handles the same proposal through its own monitor.
	if m.p.cfg.SESAME && assessment.Advice == safedrones.AdviceEmergencyLand {
		advice = eddi.Advice{
			Kind:     eddi.AdviceEmergencyLand,
			Reason:   "SafeDrones emergency-PoF threshold",
			Override: true,
		}
	}
	return events, advice, nil
}

// SnapshotState implements eddi.Snapshotter: the Markov/fault-tree
// model's incremental state (distributions, hazard, clock).
func (m *reliabilityMonitor) SnapshotState() ([]byte, error) {
	return json.Marshal(m.st.monitor.State())
}

// RestoreState implements eddi.Snapshotter.
func (m *reliabilityMonitor) RestoreState(data []byte) error {
	var s safedrones.State
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	return m.st.monitor.Restore(s)
}
