// Package platform implements the SESAME multi-UAV control platform of
// paper §IV-A: the UAV Manager, Task Manager, Database Manager and
// ground-control facade, with every SESAME EDDI technology integrated
// into the mission loop — SafeDrones reliability monitoring, SafeML
// perception monitoring, SINADRA risk assessment, the IDS + Security
// EDDI chain, Collaborative Localization as the spoofing mitigation,
// and the Fig. 1 ConSert network tying their outputs to flight
// decisions. A Config switch turns the SESAME technologies off, giving
// the paper's without-SESAME baseline.
package platform

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"sesame/internal/colloc"
	"sesame/internal/conserts"
	"sesame/internal/detection"
	"sesame/internal/eddi"
	"sesame/internal/geo"
	"sesame/internal/ids"
	"sesame/internal/mqttlite"
	"sesame/internal/safedrones"
	"sesame/internal/safeml"
	"sesame/internal/sar"
	"sesame/internal/security"
	"sesame/internal/sinadra"
	"sesame/internal/uavsim"

	"sesame/internal/attacktree"
)

// Config parameterizes a Platform.
type Config struct {
	// SESAME enables the EDDI stack; false reproduces the reactive
	// baseline of the paper's comparisons.
	SESAME bool
	// SurveyAltitudeM is the initial mapping altitude; DescendAltitudeM
	// is where SINADRA's descend advice sends the UAV.
	SurveyAltitudeM  float64
	DescendAltitudeM float64
	// SweepSpacingM is the coverage track spacing.
	SweepSpacingM float64
	// Visibility is the ambient visual condition in (0,1].
	Visibility float64
	// UseThermalBelow switches the perception pipeline to the thermal
	// imager when Visibility falls below this value (night operations).
	// Zero keeps RGB always.
	UseThermalBelow float64
	// CoveragePlanner selects the Task Manager's coverage algorithm per
	// strip (nil = boustrophedon). The Task Manager hosts planners as
	// exchangeable services, per §IV-A.
	CoveragePlanner sar.PathPlanner
	// SafeLandingPoint receives UAVs landed by Collaborative
	// Localization; zero value means "land at mission area centroid".
	SafeLandingPoint geo.LatLng
	// Origin is the platform's own network origin for database calls.
	Origin string
}

// DefaultConfig returns the experiment calibration with SESAME on.
func DefaultConfig() Config {
	return Config{
		SESAME:           true,
		SurveyAltitudeM:  60,
		DescendAltitudeM: 25,
		SweepSpacingM:    30,
		Visibility:       1,
		UseThermalBelow:  0.5,
		Origin:           "10.0.0.1",
	}
}

// uavState is the per-vehicle integration state.
type uavState struct {
	uav        *uavsim.UAV
	monitor    *safedrones.Monitor
	perception *safeml.Monitor
	action     conserts.UAVAction
	// lastAssessment caches the newest SafeDrones output.
	lastAssessment safedrones.Assessment
	// uncertainty is the latest fused perception uncertainty.
	uncertainty float64
	hasUncert   bool
	// inMission marks vehicles still executing their task.
	inMission bool
	// collocCtrl is non-nil while collaborative localization is
	// steering this (attacked) vehicle down.
	collocCtrl *colloc.Controller
	descended  bool
	rescans    int
	// Baseline battery-swap state (§V-A without-SESAME behaviour):
	// abort to base, swap the pack (60 s), resume the stored path.
	swapPending  bool
	swapLandedAt float64
	resumePath   []geo.LatLng
}

// batterySwapS is the §V-A battery replacement time at base.
const batterySwapS = 60

// Platform is the integrated multi-UAV control platform.
type Platform struct {
	World       *uavsim.World
	Broker      *mqttlite.Broker
	IDS         *ids.IDS
	Security    *security.EDDI
	Coordinator *eddi.Coordinator
	DB          *Database

	cfg      Config
	comp     *conserts.Composition
	assessor *sinadra.Assessor
	detector *detection.Detector
	scene    *detection.Scene
	mission  *sar.Mission
	avail    *sar.AvailabilityTracker

	states     map[string]*uavState
	order      []string
	dispatched map[string]int // task path length already uploaded
	// thermal reports whether the perception pipeline runs on the
	// thermal imager for this mission's visibility.
	thermal bool

	missionArea geo.Polygon
	decision    conserts.MissionDecision
}

// New builds a platform over an existing world and fleet. The scene
// may be nil when no person-detection workload is simulated.
func New(world *uavsim.World, scene *detection.Scene, cfg Config) (*Platform, error) {
	if world == nil {
		return nil, errors.New("platform: nil world")
	}
	uavs := world.UAVs()
	if len(uavs) == 0 {
		return nil, errors.New("platform: world has no UAVs")
	}
	if cfg.SurveyAltitudeM <= 0 || cfg.DescendAltitudeM <= 0 {
		return nil, errors.New("platform: altitudes must be positive")
	}
	if cfg.Origin == "" {
		cfg.Origin = "127.0.0.1"
	}
	p := &Platform{
		World:       world,
		Broker:      mqttlite.NewBroker(),
		Coordinator: eddi.NewCoordinator(10000),
		DB:          NewDatabase(100000),
		cfg:         cfg,
		scene:       scene,
		states:      make(map[string]*uavState, len(uavs)),
		dispatched:  make(map[string]int, len(uavs)),
	}
	var err error
	if cfg.SESAME {
		p.IDS, err = ids.New(world.Bus, p.Broker, ids.DefaultConfig())
		if err != nil {
			return nil, err
		}
		p.Security, err = security.New(p.Broker)
		if err != nil {
			return nil, err
		}
		p.comp, err = conserts.BuildUAVComposition()
		if err != nil {
			return nil, err
		}
		p.assessor, err = sinadra.NewAssessor(sinadra.DefaultConfig())
		if err != nil {
			return nil, err
		}
		p.detector, err = detection.NewDetector(world.Clock.Stream("platform/detector"))
		if err != nil {
			return nil, err
		}
		p.thermal = cfg.UseThermalBelow > 0 && cfg.Visibility < cfg.UseThermalBelow
	}
	for _, u := range uavs {
		st := &uavState{uav: u, action: conserts.ActionContinue}
		mcfg := safedrones.DefaultConfig()
		if !cfg.SESAME {
			mcfg.Policy = safedrones.PolicyReactive
		}
		st.monitor, err = safedrones.NewMonitor(u.ID(), mcfg)
		if err != nil {
			return nil, err
		}
		if cfg.SESAME {
			// The perception model is referenced on the modality the
			// mission will fly with.
			ref := p.detector.ReferenceFeaturesFor(200, p.thermal)
			st.perception, err = safeml.NewMonitor(ref, safeml.DefaultConfig())
			if err != nil {
				return nil, err
			}
			spoofTree, err := attacktree.SpoofingTree(u.ID())
			if err != nil {
				return nil, err
			}
			if err := p.Security.Monitor(u.ID(), spoofTree); err != nil {
				return nil, err
			}
			hijackTree, err := attacktree.HijackTree(u.ID())
			if err != nil {
				return nil, err
			}
			if err := p.Security.Monitor(u.ID(), hijackTree); err != nil {
				return nil, err
			}
		}
		p.states[u.ID()] = st
		p.order = append(p.order, u.ID())
	}
	sort.Strings(p.order)
	if cfg.SESAME {
		// Compromise events trigger the §V-C mitigation chain.
		if err := p.Security.OnEvent(p.onSecurityEvent); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// StartMission plans the SAR coverage over area, takes the fleet off
// and dispatches each UAV onto its strip.
func (p *Platform) StartMission(area geo.Polygon) error {
	if p.mission != nil {
		return errors.New("platform: mission already started")
	}
	planner := p.cfg.CoveragePlanner
	if planner == nil {
		planner = sar.BoustrophedonPath
	}
	mission, err := sar.PlanMissionWith(area, p.order, p.cfg.SweepSpacingM, planner)
	if err != nil {
		return err
	}
	avail, err := sar.NewAvailabilityTracker(p.World.Clock.Now(), p.order)
	if err != nil {
		return err
	}
	for _, id := range p.order {
		st := p.states[id]
		if err := st.uav.TakeOff(p.cfg.SurveyAltitudeM); err != nil {
			return fmt.Errorf("platform: takeoff %s: %w", id, err)
		}
		st.inMission = true
	}
	// Climb out, then dispatch.
	climb := p.cfg.SurveyAltitudeM/3 + 2
	if err := p.World.Run(p.World.Clock.Now()+climb, 1); err != nil {
		return err
	}
	for _, id := range p.order {
		task := mission.Assignments[id]
		if err := p.states[id].uav.FlyMission(task.Path, p.cfg.SurveyAltitudeM); err != nil {
			return fmt.Errorf("platform: dispatch %s: %w", id, err)
		}
		p.dispatched[id] = len(task.Path)
	}
	p.mission = mission
	p.avail = avail
	p.missionArea = area
	p.decision = conserts.MissionAsPlanned
	return nil
}

// Mission returns the current mission plan (nil before StartMission).
func (p *Platform) Mission() *sar.Mission { return p.mission }

// onSecurityEvent is the §V-C mitigation: when an attack tree root is
// reached, ConSerts pulls the GPS guarantee (via evidence) and the
// platform triggers Collaborative Localization to land the victim.
func (p *Platform) onSecurityEvent(ev security.Event) {
	if !ev.RootReached {
		_ = p.Coordinator.Emit(eddi.Event{
			Kind: eddi.KindSecurity, UAV: ev.UAV, Time: ev.Alert.Stamp,
			Severity: 0.5, Summary: "attack progress: " + ev.Alert.Type,
		})
		return
	}
	_ = p.Coordinator.Emit(eddi.Event{
		Kind: eddi.KindSecurity, UAV: ev.UAV, Time: ev.Alert.Stamp,
		Severity: 1, Summary: "compromise: " + ev.Root,
		Data: map[string]string{"mitigation": ev.Mitigation},
	})
	// Collaborative localization is the mitigation for position/mapping
	// manipulation; other compromises (C2 hijack) degrade the comms
	// evidence and let the ConSert network decide.
	if !strings.HasSuffix(ev.Root, "/map-manipulation") {
		return
	}
	st := p.states[ev.UAV]
	if st == nil || st.collocCtrl != nil {
		return
	}
	// Mitigation: stop trusting GPS entirely and land collaboratively.
	st.uav.GPS.Mode = uavsim.GPSModeDropout
	st.inMission = false

	target := p.cfg.SafeLandingPoint
	if !target.Valid() || (target == geo.LatLng{}) {
		if c, err := p.missionArea.Centroid(); err == nil {
			target = c
		} else {
			target = st.uav.Home()
		}
	}
	var observers []*colloc.Observer
	for _, id := range p.order {
		if id == ev.UAV {
			continue
		}
		other := p.states[id].uav
		if !other.Mode().Airborne() || !other.Camera.OK {
			continue
		}
		o, err := colloc.NewObserver(other, p.World.Clock.Stream("colloc/"+id))
		if err == nil {
			observers = append(observers, o)
		}
	}
	if len(observers) == 0 {
		// Nobody can assist: emergency land blind.
		st.uav.EmergencyLand()
		return
	}
	ctrl, err := colloc.NewController(st.uav, target, observers, p.World)
	if err != nil {
		st.uav.EmergencyLand()
		return
	}
	st.collocCtrl = ctrl
	// Redistribute the victim's unfinished work.
	if p.mission != nil {
		if _, assigned := p.mission.Assignments[ev.UAV]; assigned {
			_ = p.mission.Redistribute(ev.UAV, st.uav.RemainingPath())
			p.redispatch()
		}
	}
	_ = p.avail.MarkDown(ev.UAV, p.World.Clock.Now())
}

// redispatch pushes waypoints newly appended by Redistribute to the
// UAVs still in mission. dispatched tracks how much of each task's
// path has already been uploaded.
func (p *Platform) redispatch() {
	for _, id := range p.order {
		st := p.states[id]
		if !st.inMission || st.uav.Mode() != uavsim.ModeMission {
			continue
		}
		task := p.mission.Assignments[id]
		if task == nil {
			continue
		}
		already := p.dispatched[id]
		if len(task.Path) <= already {
			continue
		}
		newWps := task.Path[already:]
		merged := append(st.uav.RemainingPath(), newWps...)
		if err := st.uav.FlyMission(merged, p.cfg.SurveyAltitudeM); err == nil {
			p.dispatched[id] = len(task.Path)
		}
	}
}

// Tick advances the platform by one second: world physics, telemetry,
// EDDI evaluation, and mission management.
func (p *Platform) Tick() error {
	if err := p.World.Step(1); err != nil {
		return err
	}
	now := p.World.Clock.Now()
	for _, id := range p.order {
		if err := p.tickUAV(id, now); err != nil {
			return err
		}
	}
	p.updateDecision()
	return nil
}

// RunMission ticks until every UAV has finished (landed/holding with
// empty path) or horizon seconds elapse.
func (p *Platform) RunMission(horizon float64) error {
	end := p.World.Clock.Now() + horizon
	for p.World.Clock.Now() < end {
		if err := p.Tick(); err != nil {
			return err
		}
		if p.missionComplete() {
			return nil
		}
	}
	return nil
}

func (p *Platform) missionComplete() bool {
	for _, id := range p.order {
		st := p.states[id]
		m := st.uav.Mode()
		if m == uavsim.ModeMission || m == uavsim.ModeReturnToBase ||
			m == uavsim.ModeLanding || m == uavsim.ModeEmergencyLanding {
			return false
		}
		if st.collocCtrl != nil && !st.collocCtrl.LandingCommanded() {
			return false
		}
		if st.swapPending {
			return false
		}
	}
	return true
}

func (p *Platform) tickUAV(id string, now float64) error {
	st := p.states[id]
	u := st.uav

	// Database reporting (the §IV-A data path).
	_ = p.DB.PutLocation(p.cfg.Origin, id, u.TruePosition(), now)
	_ = p.DB.PutRecord(p.cfg.Origin, id, Record{
		Key:   "battery",
		Value: fmt.Sprintf("%.1f", u.Battery.ChargePct),
		Time:  now,
	})

	// Collaborative landing in progress: step the controller and skip
	// normal mission control.
	if st.collocCtrl != nil {
		st.collocCtrl.Step()
		if u.Mode() == uavsim.ModeLanded {
			_ = p.avail.MarkUp(id, now) // back on the ground, recoverable
		}
		return nil
	}

	// A crash (rotor loss on a quad, battery depletion) takes the
	// vehicle out of the mission instantly; the Task Manager
	// redistributes its unfinished work.
	if u.Mode() == uavsim.ModeCrashed && st.inMission {
		st.inMission = false
		st.swapPending = false
		_ = p.avail.MarkDown(id, now)
		if p.mission != nil {
			if _, assigned := p.mission.Assignments[id]; assigned && len(p.mission.Assignments) > 1 {
				_ = p.mission.Redistribute(id, u.RemainingPath())
				p.redispatch()
			}
		}
	}

	// SafeDrones observes telemetry every tick.
	assessment, err := st.monitor.Observe(safedrones.Telemetry{
		Time:         now,
		ChargePct:    u.Battery.ChargePct,
		TempC:        u.Battery.TempC,
		Overheating:  u.Battery.Overheating(),
		FailedRotors: u.FailedRotors(),
		CommsOK:      u.Comms.OK,
		Airborne:     u.Mode().Airborne(),
	})
	if err != nil {
		return err
	}
	st.lastAssessment = assessment
	_ = p.Coordinator.Emit(eddi.Event{
		Kind: eddi.KindSafety, UAV: id, Time: now,
		Severity: assessment.PoF,
		Summary:  fmt.Sprintf("PoF %.3f level %s", assessment.PoF, assessment.Level),
	})

	if !p.cfg.SESAME {
		p.applyBaseline(st, assessment, now)
		return nil
	}

	// Perception pipeline: capture a frame and feed SafeML.
	if p.scene != nil && u.Mode() == uavsim.ModeMission {
		frame, err := p.detector.Capture(id, now, u.TruePosition(), detection.Conditions{
			AltitudeM:  u.AltitudeM(),
			Visibility: p.cfg.Visibility,
			CameraBlur: u.Camera.BlurSigma,
			Thermal:    p.thermal,
		}, p.scene)
		if err == nil {
			_ = st.perception.Push(frame.Features)
			if st.perception.Ready() {
				if rep, err := st.perception.Evaluate(); err == nil {
					st.uncertainty = rep.Uncertainty
					st.hasUncert = true
					_ = p.Coordinator.Emit(eddi.Event{
						Kind: eddi.KindPerception, UAV: id, Time: now,
						Severity: rep.Uncertainty,
						Summary:  fmt.Sprintf("perception uncertainty %.2f (%s)", rep.Uncertainty, rep.Action),
					})
				}
			}
		}
	}

	// SINADRA turns uncertainty into adaptation advice.
	if st.hasUncert && u.Mode() == uavsim.ModeMission && !st.descended {
		risk, err := p.assessor.Assess(sinadra.Situation{
			Uncertainty: st.uncertainty,
			AltitudeM:   u.AltitudeM(),
			Visibility:  p.cfg.Visibility,
		})
		if err == nil {
			_ = p.Coordinator.Emit(eddi.Event{
				Kind: eddi.KindRisk, UAV: id, Time: now,
				Severity: risk.RiskHigh,
				Summary:  fmt.Sprintf("risk %.2f advice %s", risk.RiskHigh, risk.Advice),
			})
			switch risk.Advice {
			case sinadra.AdviceDescend:
				_ = u.SetAltitude(p.cfg.DescendAltitudeM)
				st.descended = true
				st.perception.Reset()
				st.hasUncert = false
			case sinadra.AdviceRescan:
				st.rescans++
				_ = u.SetAltitude(p.cfg.DescendAltitudeM)
				st.descended = true
				st.perception.Reset()
				st.hasUncert = false
			}
		}
	}

	// ConSert evidence mapping and evaluation.
	ev := conserts.Evidence{
		conserts.EvGPSQualityOK:         u.GPS.Mode == uavsim.GPSModeNominal || u.GPS.Mode == uavsim.GPSModeSpoofed,
		conserts.EvNoSpoofing:           !p.Security.CompromisedBy(id, id+"/map-manipulation"),
		conserts.EvCameraHealthy:        u.Camera.OK,
		conserts.EvPerceptionConfident:  !st.hasUncert || st.uncertainty < 0.9,
		conserts.EvNearbyDroneDetection: u.Camera.OK,
		conserts.EvCommsOK:              u.Comms.OK && !p.Security.CompromisedBy(id, id+"/c2-hijack"),
		conserts.EvNeighborsAvailable:   p.airborneNeighbors(id) > 0,
		conserts.EvReliabilityHigh:      assessment.Level == safedrones.LevelHigh,
		conserts.EvReliabilityMedium:    assessment.Level == safedrones.LevelMedium,
	}
	action, _, err := conserts.EvaluateUAV(p.comp, ev)
	if err != nil {
		return err
	}
	// SafeDrones' emergency threshold overrides (it models the PoF
	// trend, which the boolean evidence cannot see).
	if assessment.Advice == safedrones.AdviceEmergencyLand {
		action = conserts.ActionEmergencyLand
	}
	p.applyAction(st, action, now)
	return nil
}

// airborneNeighbors counts other airborne fleet members.
func (p *Platform) airborneNeighbors(id string) int {
	n := 0
	for _, other := range p.order {
		if other != id && p.states[other].uav.Mode().Airborne() {
			n++
		}
	}
	return n
}

// applyBaseline is the non-SESAME reactive policy of §V-A: on the
// first battery anomaly the UAV ceases its mission and returns to base
// for a battery replacement (batterySwapS seconds), then redeploys to
// finish its own task. No task redistribution happens — there is no
// mission-level EDDI coordination in the baseline.
func (p *Platform) applyBaseline(st *uavState, a safedrones.Assessment, now float64) {
	switch a.Advice {
	case safedrones.AdviceReturnToBase:
		if st.uav.Mode() == uavsim.ModeMission && !st.swapPending {
			st.resumePath = st.uav.RemainingPath()
			st.swapPending = true
			st.swapLandedAt = -1
			st.inMission = false
			_ = p.avail.MarkDown(st.uav.ID(), now)
			st.uav.ReturnToBase()
		}
	case safedrones.AdviceEmergencyLand:
		if st.uav.Mode().Airborne() && st.uav.Mode() != uavsim.ModeEmergencyLanding {
			st.inMission = false
			st.swapPending = false
			_ = p.avail.MarkDown(st.uav.ID(), now)
			st.uav.EmergencyLand()
		}
	}
	p.tickBatterySwap(st, now)
}

// tickBatterySwap completes a pending baseline battery replacement:
// once the vehicle has been on the ground at base for batterySwapS
// seconds, a fresh pack goes in (clearing any thermal fault with the
// old one), the reliability model restarts, and the UAV redeploys onto
// its stored remaining path.
func (p *Platform) tickBatterySwap(st *uavState, now float64) {
	if !st.swapPending || st.uav.Mode() != uavsim.ModeLanded {
		return
	}
	if st.swapLandedAt < 0 {
		st.swapLandedAt = now
		return
	}
	if now < st.swapLandedAt+batterySwapS {
		return
	}
	st.uav.Battery.Swap()
	// Fresh pack, fresh reliability history.
	mcfg := safedrones.DefaultConfig()
	mcfg.Policy = safedrones.PolicyReactive
	if m, err := safedrones.NewMonitor(st.uav.ID(), mcfg); err == nil {
		st.monitor = m
	}
	st.swapPending = false
	if len(st.resumePath) > 0 {
		if err := st.uav.TakeOff(p.cfg.SurveyAltitudeM); err == nil {
			if err := st.uav.FlyMission(st.resumePath, p.cfg.SurveyAltitudeM); err == nil {
				st.inMission = true
				st.resumePath = nil
				_ = p.avail.MarkUp(st.uav.ID(), now)
				return
			}
		}
	}
	_ = p.avail.MarkUp(st.uav.ID(), now)
}

// applyAction executes a ConSert action change.
func (p *Platform) applyAction(st *uavState, action conserts.UAVAction, now float64) {
	prev := st.action
	st.action = action
	if action == prev {
		return
	}
	switch action {
	case conserts.ActionEmergencyLand:
		if st.uav.Mode().Airborne() {
			p.retireUAV(st, now, true)
		}
	case conserts.ActionReturnToBase:
		if st.uav.Mode() == uavsim.ModeMission {
			p.retireUAV(st, now, false)
		}
	case conserts.ActionHold:
		if st.uav.Mode() == uavsim.ModeMission {
			st.uav.Hold()
		}
	}
	// Continue/takeover: no intervention needed.
}

// retireUAV removes the vehicle from the mission (redistributing its
// work) and lands it.
func (p *Platform) retireUAV(st *uavState, now float64, emergency bool) {
	id := st.uav.ID()
	remaining := st.uav.RemainingPath()
	if p.mission != nil {
		if _, assigned := p.mission.Assignments[id]; assigned && len(p.mission.Assignments) > 1 {
			_ = p.mission.Redistribute(id, remaining)
			p.redispatch()
		}
	}
	st.inMission = false
	_ = p.avail.MarkDown(id, now)
	if emergency {
		st.uav.EmergencyLand()
	} else {
		st.uav.ReturnToBase()
	}
}

// updateDecision recomputes the mission-level ConSert decision.
func (p *Platform) updateDecision() {
	if p.mission == nil {
		return
	}
	actions := make(map[string]conserts.UAVAction, len(p.order))
	for _, id := range p.order {
		st := p.states[id]
		a := st.action
		if !p.cfg.SESAME {
			// Baseline: derive from flight mode.
			switch st.uav.Mode() {
			case uavsim.ModeMission, uavsim.ModeHold:
				a = conserts.ActionContinue
			case uavsim.ModeReturnToBase, uavsim.ModeLanding:
				a = conserts.ActionReturnToBase
			default:
				a = conserts.ActionEmergencyLand
			}
		}
		actions[id] = a
	}
	if d, err := conserts.DecideMission(actions); err == nil {
		p.decision = d
	}
}

// Decision returns the current mission-level decider output.
func (p *Platform) Decision() conserts.MissionDecision { return p.decision }

// Availability returns the fleet availability since mission start.
func (p *Platform) Availability() (float64, error) {
	if p.avail == nil {
		return 0, errors.New("platform: no mission running")
	}
	return p.avail.FleetAvailability(p.World.Clock.Now())
}

// UAVAvailability returns one vehicle's availability since mission
// start.
func (p *Platform) UAVAvailability(id string) (float64, error) {
	if p.avail == nil {
		return 0, errors.New("platform: no mission running")
	}
	return p.avail.Availability(id, p.World.Clock.Now())
}

// Close releases bus taps and broker subscriptions.
func (p *Platform) Close() {
	if p.IDS != nil {
		p.IDS.Close()
	}
	if p.Security != nil {
		p.Security.Close()
	}
}
