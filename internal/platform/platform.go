// Package platform implements the SESAME multi-UAV control platform of
// paper §IV-A: the UAV Manager, Task Manager, Database Manager and
// ground-control facade, with every SESAME EDDI technology integrated
// into the mission loop — SafeDrones reliability monitoring, SafeML
// perception monitoring, SINADRA risk assessment, the IDS + Security
// EDDI chain, Collaborative Localization as the spoofing mitigation,
// and the Fig. 1 ConSert network tying their outputs to flight
// decisions. A Config switch turns the SESAME technologies off, giving
// the paper's without-SESAME baseline.
//
// Each technology is an eddi.Runtime monitor (monitor_*.go) registered
// per UAV at New; the fleet scheduler (scheduler.go) evaluates the
// chains concurrently and applies their findings in deterministic
// fleet order.
package platform

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"

	"sesame/internal/colloc"
	"sesame/internal/conserts"
	"sesame/internal/detection"
	"sesame/internal/eddi"
	"sesame/internal/flightrec"
	"sesame/internal/geo"
	"sesame/internal/ids"
	"sesame/internal/mqttlite"
	"sesame/internal/obsv"
	"sesame/internal/rosbus"
	"sesame/internal/safedrones"
	"sesame/internal/safeml"
	"sesame/internal/sar"
	"sesame/internal/scenario"
	"sesame/internal/security"
	"sesame/internal/sinadra"
	"sesame/internal/uavsim"

	"sesame/internal/attacktree"
)

// Config parameterizes a Platform.
type Config struct {
	// SESAME enables the EDDI stack; false reproduces the reactive
	// baseline of the paper's comparisons.
	SESAME bool
	// SurveyAltitudeM is the initial mapping altitude; DescendAltitudeM
	// is where SINADRA's descend advice sends the UAV.
	SurveyAltitudeM  float64
	DescendAltitudeM float64
	// SweepSpacingM is the coverage track spacing.
	SweepSpacingM float64
	// Visibility is the ambient visual condition in (0,1].
	Visibility float64
	// UseThermalBelow switches the perception pipeline to the thermal
	// imager when Visibility falls below this value (night operations).
	// Zero keeps RGB always.
	UseThermalBelow float64
	// CoveragePlanner selects the Task Manager's coverage algorithm per
	// strip (nil = boustrophedon). The Task Manager hosts planners as
	// exchangeable services, per §IV-A.
	CoveragePlanner sar.PathPlanner
	// SafeLandingPoint receives UAVs landed by Collaborative
	// Localization; zero value means "land at mission area centroid".
	SafeLandingPoint geo.LatLng
	// Origin is the platform's own network origin for database calls.
	Origin string
	// Workers bounds the fleet scheduler's observe-phase worker pool:
	// 0 sizes it to the machine (GOMAXPROCS), 1 forces the serial path.
	// Results are bit-identical regardless of the pool size.
	Workers int
	// Cells shards the fleet into contiguous cells of the deterministic
	// fleet order; the scheduler then runs physics, prepare and observe
	// per cell on the worker pool, with the cross-cell work — lost-link
	// redistribution, counter merging, the apply phase, the mission
	// decision — at serial barriers. 0 sizes the layout automatically
	// (one cell per 64 UAVs, so small fleets keep the legacy pipeline);
	// 1 forces the legacy unsharded pipeline. Sharded runs are
	// bit-identical across all cell counts >= 2 and any Workers value.
	Cells int
	// ExtraMonitors registers additional eddi.Runtime monitors per UAV,
	// appended after the built-in chain. Their events are emitted in
	// chain order; Halt and emergency Override advice are honoured.
	ExtraMonitors []func(uav string) (eddi.Runtime, error)
	// LostLinkWindowS is the telemetry-silence window (seconds) after
	// which the lost-link watchdog fires the RTB/land contingency for an
	// in-mission UAV and demotes its comms evidence. Zero disables the
	// watchdog.
	LostLinkWindowS float64
	// LostLinkLand lands the vehicle in place on lost link instead of
	// returning it to base (the conservative contingency when the home
	// corridor cannot be trusted without C2).
	LostLinkLand bool
	// DBRetryAttempts bounds how many times a transiently failed
	// database write (ErrUnavailable) is retried before it is abandoned
	// and counted as a drop. Values <= 1 disable retrying.
	DBRetryAttempts int
	// DBRetryBackoffS is the first retry backoff in sim seconds; each
	// further attempt doubles it.
	DBRetryBackoffS float64
	// BreakerFailures is the per-UAV monitor circuit breaker: after
	// this many consecutive monitor-chain failures (panics or errors)
	// the chain is quarantined — skipped entirely, the vehicle held
	// fail-safe — and re-probed after BreakerCooldownS. Values <= 0
	// disable quarantine (every failure is still contained and counted,
	// the chain just re-runs each tick).
	BreakerFailures int
	// BreakerCooldownS is the quarantine re-probe interval in sim
	// seconds. A failed probe silently re-arms the cooldown; a clean
	// probe closes the breaker and resumes normal monitoring.
	BreakerCooldownS float64
	// Observability mirrors the platform's data-path counters and hot-
	// path latencies into the given registry (bus, broker, IDS, scheduler
	// phases, per-monitor timings). Nil disables all instrumentation at
	// zero cost; digested outputs are identical either way because only
	// deterministic counters reach Status.
	Observability *obsv.Registry
	// Recorder is the black-box flight recorder (internal/flightrec):
	// when non-nil the platform appends per-tick telemetry, event,
	// advice and fault records during the serial apply phase and writes
	// a full checkpoint every Recorder.SnapshotEvery ticks. Nil disables
	// recording at zero cost.
	Recorder *flightrec.Recorder
	// Scenario attaches the declarative mission description the
	// platform runs (internal/scenario): its visibility profile
	// overrides Visibility/UseThermalBelow at construction, and its
	// digest joins ConfigDigest so a recording can never resume against
	// a different mission description. Nil keeps the classic hand-wired
	// missions byte-identical.
	Scenario *scenario.Scenario
}

// DefaultConfig returns the experiment calibration with SESAME on.
func DefaultConfig() Config {
	return Config{
		SESAME:           true,
		SurveyAltitudeM:  60,
		DescendAltitudeM: 25,
		SweepSpacingM:    30,
		Visibility:       1,
		UseThermalBelow:  0.5,
		Origin:           "10.0.0.1",
		LostLinkWindowS:  15,
		DBRetryAttempts:  3,
		DBRetryBackoffS:  2,
		BreakerFailures:  3,
		BreakerCooldownS: 30,
	}
}

// AutoCells is the Cells=0 sizing policy: one cell per 64 UAVs. Small
// fleets resolve to a single cell (the legacy pipeline); a 10k-vehicle
// fleet spreads across ~160 cells, enough to keep every worker busy
// without barrier overhead dominating.
func AutoCells(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + 63) / 64
}

// cell is one contiguous shard [lo, hi) of the sorted fleet order plus
// its shard-local failure counters. Workers tally into their own cell
// during the concurrent phases; the tick barrier drains every cell into
// the platform totals in ascending cell order, so the merged counters
// never depend on goroutine scheduling.
type cell struct {
	lo, hi  int
	drops   dropCounters
	retries retryCounters
}

// uavState is the per-vehicle integration state.
type uavState struct {
	uav        *uavsim.UAV
	monitor    *safedrones.Monitor
	perception *safeml.Monitor
	action     conserts.UAVAction
	// chain is the UAV's ordered eddi.Runtime monitor registry,
	// evaluated by the fleet scheduler every tick.
	chain []eddi.Runtime
	// perceptionMon receives the staged camera frame each tick.
	perceptionMon *perceptionMonitor
	// recorder mirrors per-monitor timings when observability is on
	// (nil otherwise; observeUAV branches on it).
	recorder *chainRecorder
	// lastAssessment caches the newest SafeDrones output.
	lastAssessment safedrones.Assessment
	// uncertainty is the latest fused perception uncertainty.
	uncertainty float64
	hasUncert   bool
	// inMission marks vehicles still executing their task.
	inMission bool
	// collocCtrl is non-nil while collaborative localization is
	// steering this (attacked) vehicle down.
	collocCtrl *colloc.Controller
	descended  bool
	rescans    int
	// mapManipKey / c2HijackKey are the "<id>/<attack>" security query
	// keys, concatenated once instead of every tick.
	mapManipKey string
	c2HijackKey string
	// Baseline battery-swap state (§V-A without-SESAME behaviour):
	// abort to base, swap the pack (60 s), resume the stored path.
	swapPending  bool
	swapLandedAt float64
	resumePath   []geo.LatLng
	// lastTelemetryAt is the stamp of the newest telemetry message the
	// GCS received from this UAV over the bus (the last-known-good
	// cache age base). Written by bus handlers during the serial world
	// step, read in the serial prepare/apply phases.
	lastTelemetryAt float64
	// lostLink latches while the lost-link watchdog considers the link
	// silent; it clears when telemetry resumes.
	lostLink bool
	// monitorPanicked latches after the first monitor-chain failure of
	// a streak so the fail-safe incident event is emitted once; a clean
	// chain run resets it.
	monitorPanicked bool
	// breakerFails counts consecutive monitor-chain failures; quarantined
	// and probeAt are the circuit breaker's open state (chain skipped
	// until the probe at probeAt). Written only in the serial apply
	// phase, read by the concurrent observe phase of later ticks.
	breakerFails int
	quarantined  bool
	probeAt      float64
	// dbRetries is this UAV's pending database retry queue. Only the
	// observe-phase worker that owns the UAV touches it, so no lock.
	dbRetries []dbRetry
	// drops and retries are where this UAV's concurrent-phase failures
	// are tallied: the platform totals when unsharded, the owning cell's
	// shard-local counters when sharded (drained into the totals at the
	// tick barrier). Serial-phase call sites keep using the platform
	// totals directly.
	drops   *dropCounters
	retries *retryCounters
	// detRNG is the vehicle's split detector stream in sharded mode;
	// nil means captures draw from the shared fleet-order stream.
	detRNG *rand.Rand
}

// dbRetryKind selects which database write a queued retry re-offers.
type dbRetryKind int

const (
	// dbRetryLocation re-offers a PutLocation of Pos stamped Time.
	dbRetryLocation dbRetryKind = iota
	// dbRetryRecord re-offers a PutRecord of Rec.
	dbRetryRecord
)

// dbRetry is one deferred database write awaiting its backoff. It is
// plain data (not a closure) so the flight recorder can checkpoint and
// restore pending retries exactly.
type dbRetry struct {
	Kind     dbRetryKind `json:"kind"`
	Pos      geo.LatLng  `json:"pos"`
	Time     float64     `json:"time"`
	Rec      Record      `json:"rec"`
	Attempts int         `json:"attempts"`
	NextAt   float64     `json:"next_at"`
}

// exec re-offers the queued write against the database.
func (p *Platform) execRetry(st *uavState, r dbRetry) error {
	switch r.Kind {
	case dbRetryLocation:
		return p.DB.PutLocation(p.cfg.Origin, st.uav.ID(), r.Pos, r.Time)
	default:
		return p.DB.PutRecord(p.cfg.Origin, st.uav.ID(), r.Rec)
	}
}

// batterySwapS is the §V-A battery replacement time at base.
const batterySwapS = 60

// Platform is the integrated multi-UAV control platform.
type Platform struct {
	World       *uavsim.World
	Broker      *mqttlite.Broker
	IDS         *ids.IDS
	Security    *security.EDDI
	Coordinator *eddi.Coordinator
	DB          *Database

	cfg  Config
	comp *conserts.Composition
	// eval and evidence are the reusable ConSert evaluation scratch.
	// fuse runs only in the serial apply phase, so sharing one across
	// the fleet is race-free.
	eval     *conserts.Evaluator
	evidence conserts.Evidence
	assessor *sinadra.Assessor
	detector *detection.Detector
	scene    *detection.Scene
	mission  *sar.Mission
	avail    *sar.AvailabilityTracker

	states     map[string]*uavState
	order      []string
	dispatched map[string]int // task path length already uploaded
	// workers is the resolved observe-phase pool bound.
	workers int
	// cells is the resolved shard layout over p.order; length 1 selects
	// the legacy unsharded pipeline.
	cells []cell
	// snapBuf, obsBuf and actionsBuf are per-tick scratch reused across
	// ticks; the pipeline fully consumes them before the tick returns.
	snapBuf    []eddi.Snapshot
	obsBuf     []observation
	actionsBuf map[string]conserts.UAVAction
	// obs holds the resolved observability handles (nil when disabled).
	obs *platformMetrics
	// drops counts data-path failures that were previously discarded.
	drops dropCounters
	// retries counts the database retry-with-backoff machinery.
	retries retryCounters
	// subs are the GCS-side telemetry subscriptions feeding the
	// staleness cache; Close cancels them.
	subs []rosbus.Subscription
	// thermal reports whether the perception pipeline runs on the
	// thermal imager for this mission's visibility.
	thermal bool

	missionArea geo.Polygon
	decision    conserts.MissionDecision
	// ticks counts completed platform ticks — the flight recorder's
	// checkpoint coordinate.
	ticks uint64
	// recDegraded latches after a persistent flight-recorder failure:
	// recording demotes to a counting no-op (recSkipped operations
	// skipped so far, recErr the root cause) instead of the sticky
	// writer error poisoning every later tick. Surfaced in
	// Status.Recorder and, lazily, as obsv counters.
	recDegraded bool
	recErr      error
	recSkipped  uint64
	// snapOwed defers a cadence checkpoint that landed on a tick with
	// delayed frames still parked on the clock.
	snapOwed bool
	// recBuf is the reused encode buffer for the per-tick recording
	// path; the writer copies the payload, so one buffer serves all
	// record kinds. recKeys is the reused key-sort scratch for event
	// Data maps. recTimeVal/recTimeBuf memoize the encoded simulation
	// time — every record of a tick shares one clock reading, and
	// accumulated step times hit strconv's worst (17-digit) case.
	recBuf     []byte
	recKeys    []string
	recTimeVal float64
	recTimeBuf []byte
}

// Ticks returns how many platform ticks have completed.
func (p *Platform) Ticks() uint64 { return p.ticks }

// New builds a platform over an existing world and fleet. The scene
// may be nil when no person-detection workload is simulated.
func New(world *uavsim.World, scene *detection.Scene, cfg Config) (*Platform, error) {
	if world == nil {
		return nil, errors.New("platform: nil world")
	}
	uavs := world.UAVs()
	if len(uavs) == 0 {
		return nil, errors.New("platform: world has no UAVs")
	}
	if cfg.SurveyAltitudeM <= 0 || cfg.DescendAltitudeM <= 0 {
		return nil, errors.New("platform: altitudes must be positive")
	}
	if cfg.Origin == "" {
		cfg.Origin = "127.0.0.1"
	}
	if cfg.Scenario != nil {
		if v := cfg.Scenario.Visibility; v != nil {
			cfg.Visibility = v.Value
			cfg.UseThermalBelow = v.ThermalBelow
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Platform{
		World:       world,
		Broker:      mqttlite.NewBroker(),
		Coordinator: eddi.NewCoordinator(10000),
		DB:          NewDatabase(100000),
		cfg:         cfg,
		scene:       scene,
		states:      make(map[string]*uavState, len(uavs)),
		dispatched:  make(map[string]int, len(uavs)),
		workers:     workers,
	}
	if cfg.Observability != nil {
		p.obs = newPlatformMetrics(cfg.Observability)
		world.Bus.Instrument(cfg.Observability)
		p.Broker.Instrument(cfg.Observability)
	}
	var err error
	if cfg.SESAME {
		p.IDS, err = ids.New(world.Bus, p.Broker, ids.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if cfg.Observability != nil {
			p.IDS.Instrument(cfg.Observability)
		}
		p.Security, err = security.New(p.Broker)
		if err != nil {
			return nil, err
		}
		p.comp, err = conserts.BuildUAVComposition()
		if err != nil {
			return nil, err
		}
		p.eval = conserts.NewEvaluator(p.comp)
		p.evidence = make(conserts.Evidence, 16)
		p.assessor, err = sinadra.NewAssessor(sinadra.DefaultConfig())
		if err != nil {
			return nil, err
		}
		p.detector, err = detection.NewDetector(world.Clock.Stream("platform/detector"))
		if err != nil {
			return nil, err
		}
		p.thermal = cfg.UseThermalBelow > 0 && cfg.Visibility < cfg.UseThermalBelow
	}
	for _, u := range uavs {
		st := &uavState{
			uav: u, action: conserts.ActionContinue,
			mapManipKey: u.ID() + "/map-manipulation",
			c2HijackKey: u.ID() + "/c2-hijack",
		}
		mcfg := safedrones.DefaultConfig()
		if !cfg.SESAME {
			mcfg.Policy = safedrones.PolicyReactive
		}
		st.monitor, err = safedrones.NewMonitor(u.ID(), mcfg)
		if err != nil {
			return nil, err
		}
		if cfg.SESAME {
			// The perception model is referenced on the modality the
			// mission will fly with.
			ref := p.detector.ReferenceFeaturesFor(200, p.thermal)
			st.perception, err = safeml.NewMonitor(ref, safeml.DefaultConfig())
			if err != nil {
				return nil, err
			}
			spoofTree, err := attacktree.SpoofingTree(u.ID())
			if err != nil {
				return nil, err
			}
			if err := p.Security.Monitor(u.ID(), spoofTree); err != nil {
				return nil, err
			}
			hijackTree, err := attacktree.HijackTree(u.ID())
			if err != nil {
				return nil, err
			}
			if err := p.Security.Monitor(u.ID(), hijackTree); err != nil {
				return nil, err
			}
		}
		if err := p.registerMonitors(st); err != nil {
			return nil, err
		}
		if p.obs != nil {
			st.recorder = newChainRecorder(p.obs, u.ID(), st.chain)
		}
		p.states[u.ID()] = st
		p.order = append(p.order, u.ID())
	}
	sort.Strings(p.order)
	nCells := cfg.Cells
	if nCells <= 0 {
		nCells = AutoCells(len(p.order))
	}
	if nCells > len(p.order) {
		nCells = len(p.order)
	}
	p.cells = make([]cell, nCells)
	var det []*rand.Rand
	if nCells > 1 && p.detector != nil && scene != nil {
		// Sharded captures draw from one split stream per vehicle, keyed
		// by fleet index, so the draw sequence — hence every digest — is
		// invariant to the cell layout and the pool size. Streams are
		// created here, serially, because the clock registry is not
		// goroutine-safe.
		det = world.Clock.ShardStreams("platform/detector", len(p.order))
	}
	for ci := range p.cells {
		c := &p.cells[ci]
		c.lo = ci * len(p.order) / nCells
		c.hi = (ci + 1) * len(p.order) / nCells
		for i := c.lo; i < c.hi; i++ {
			st := p.states[p.order[i]]
			if nCells > 1 {
				st.drops = &c.drops
				st.retries = &c.retries
			} else {
				st.drops = &p.drops
				st.retries = &p.retries
			}
			if det != nil {
				st.detRNG = det[i]
			}
		}
	}
	if cfg.SESAME {
		// Compromise events trigger the §V-C mitigation chain.
		if err := p.Security.OnEvent(p.onSecurityEvent); err != nil {
			return nil, err
		}
	}
	// GCS-side staleness cache: the platform listens to each UAV's
	// telemetry topics and records the newest stamp seen. This is the
	// ground station's view of the link — it goes stale when the link
	// layer drops or delays frames, independent of vehicle truth.
	for _, u := range uavs {
		st := p.states[u.ID()]
		topics := []string{
			uavsim.StatusTopic(u.ID()),
			uavsim.GPSTopic(u.ID()),
			uavsim.BatteryTopic(u.ID()),
			uavsim.HealthTopic(u.ID()),
		}
		for _, topic := range topics {
			sub, err := world.Bus.Subscribe(topic, func(m rosbus.Message) {
				// Reordered or duplicated frames may arrive out of stamp
				// order; last-known-good keeps the newest.
				if m.Stamp > st.lastTelemetryAt {
					st.lastTelemetryAt = m.Stamp
				}
			})
			if err != nil {
				return nil, err
			}
			p.subs = append(p.subs, sub)
		}
	}
	return p, nil
}

// telemetryAge is the GCS-observed staleness of the UAV's telemetry.
func (st *uavState) telemetryAge(now float64) float64 {
	age := now - st.lastTelemetryAt
	if age < 0 {
		return 0
	}
	return age
}

// tickLinkWatchdog is the lost-link contingency (the MRS-style C2
// timeout): when an in-mission UAV's telemetry has been silent longer
// than the configured window, the platform assumes the link is gone,
// demotes the UAV's availability, redistributes its task and commands
// the vehicle's failsafe (RTB by default, land-in-place when
// configured). The staleness demotion of ConSert comms evidence
// happens separately in fuse.
func (p *Platform) tickLinkWatchdog(st *uavState, now float64) {
	window := p.cfg.LostLinkWindowS
	if window <= 0 {
		return
	}
	if st.telemetryAge(now) <= window {
		st.lostLink = false
		return
	}
	if st.lostLink || st.collocCtrl != nil || !st.inMission {
		return
	}
	u := st.uav
	if !u.Mode().Airborne() {
		return
	}
	st.lostLink = true
	verb := "return to base"
	if p.cfg.LostLinkLand {
		verb = "land in place"
	}
	p.recordFault(now, u.ID(), "lost-link", verb)
	countIn(&p.drops.events, p.Coordinator.Emit(eddi.Event{
		Kind: eddi.KindSafety, UAV: u.ID(), Time: now, Severity: 0.9,
		Summary: fmt.Sprintf("lost link: telemetry silent %.0f s, contingency: %s", st.telemetryAge(now), verb),
	}))
	st.inMission = false
	st.swapPending = false
	countIn(&p.drops.availability, p.avail.MarkDown(u.ID(), now))
	if p.mission != nil {
		if _, assigned := p.mission.Assignments[u.ID()]; assigned {
			countIn(&p.drops.mission, p.mission.Redistribute(u.ID(), u.RemainingPath()))
			p.redispatch()
		}
	}
	if p.cfg.LostLinkLand {
		u.Land()
	} else {
		u.ReturnToBase()
	}
}

// registerMonitors builds the UAV's runtime-monitor chain: the colloc
// gate and the reliability monitor always run; the EDDI stack adds
// perception and risk, the baseline its reactive policy; Config can
// append custom monitors.
func (p *Platform) registerMonitors(st *uavState) error {
	st.chain = []eddi.Runtime{
		&collocMonitor{p: p, st: st},
		&reliabilityMonitor{p: p, st: st},
	}
	if p.cfg.SESAME {
		st.perceptionMon = &perceptionMonitor{p: p, st: st}
		st.chain = append(st.chain, st.perceptionMon, &riskMonitor{p: p, st: st})
	} else {
		st.chain = append(st.chain, &baselineMonitor{st: st})
	}
	for _, build := range p.cfg.ExtraMonitors {
		m, err := build(st.uav.ID())
		if err != nil {
			return fmt.Errorf("platform: extra monitor for %s: %w", st.uav.ID(), err)
		}
		if m == nil {
			return fmt.Errorf("platform: nil extra monitor for %s", st.uav.ID())
		}
		st.chain = append(st.chain, m)
	}
	return nil
}

// Monitors returns the names of the UAV's registered runtime monitors
// in chain order (nil for an unknown UAV).
func (p *Platform) Monitors(id string) []string {
	st := p.states[id]
	if st == nil {
		return nil
	}
	names := make([]string, len(st.chain))
	for i, m := range st.chain {
		names[i] = m.Name()
	}
	return names
}

// planner resolves the Task Manager's coverage algorithm.
func (p *Platform) planner() sar.PathPlanner {
	if p.cfg.CoveragePlanner != nil {
		return p.cfg.CoveragePlanner
	}
	return sar.BoustrophedonPath
}

// StartMission plans the SAR coverage over area, takes the fleet off
// and dispatches each UAV onto its strip.
func (p *Platform) StartMission(area geo.Polygon) error {
	if p.mission != nil {
		return errors.New("platform: mission already started")
	}
	mission, err := sar.PlanMissionWith(area, p.order, p.cfg.SweepSpacingM, p.planner())
	if err != nil {
		return err
	}
	return p.launch(mission, area)
}

// StartMissionSites plans one mission over several disjoint sites: the
// sorted fleet is split into contiguous groups, one per site, each
// group's coverage planned independently, and the merged assignment
// set behaves as one mission thereafter (failure redistribution
// crosses site boundaries). A single area delegates to StartMission —
// the classic path stays byte-identical.
func (p *Platform) StartMissionSites(areas []geo.Polygon) error {
	if len(areas) == 0 {
		return errors.New("platform: no mission areas")
	}
	if len(areas) == 1 {
		return p.StartMission(areas[0])
	}
	if p.mission != nil {
		return errors.New("platform: mission already started")
	}
	if len(p.order) < len(areas) {
		return fmt.Errorf("platform: %d sites need at least as many UAVs, have %d",
			len(areas), len(p.order))
	}
	merged := &sar.Mission{Area: areas[0], Assignments: make(map[string]*sar.Task, len(p.order))}
	k := len(areas)
	for i, area := range areas {
		lo, hi := i*len(p.order)/k, (i+1)*len(p.order)/k
		m, err := sar.PlanMissionWith(area, p.order[lo:hi], p.cfg.SweepSpacingM, p.planner())
		if err != nil {
			return fmt.Errorf("platform: site %d: %w", i, err)
		}
		// Renumber tasks in fleet order so the merged plan — and every
		// checkpoint embedding it — is independent of map iteration.
		for _, id := range p.order[lo:hi] {
			t := m.Assignments[id]
			t.ID = len(merged.Assignments)
			merged.Assignments[id] = t
		}
	}
	return p.launch(merged, areas[0])
}

// launch takes the fleet off, climbs out and dispatches the planned
// mission — the shared tail of StartMission and StartMissionSites.
func (p *Platform) launch(mission *sar.Mission, area geo.Polygon) error {
	avail, err := sar.NewAvailabilityTracker(p.World.Clock.Now(), p.order)
	if err != nil {
		return err
	}
	for _, id := range p.order {
		st := p.states[id]
		if err := st.uav.TakeOff(p.cfg.SurveyAltitudeM); err != nil {
			return fmt.Errorf("platform: takeoff %s: %w", id, err)
		}
		st.inMission = true
	}
	// Climb out, then dispatch.
	climb := p.cfg.SurveyAltitudeM/3 + 2
	if err := p.World.Run(p.World.Clock.Now()+climb, 1); err != nil {
		return err
	}
	for _, id := range p.order {
		task := mission.Assignments[id]
		if err := p.states[id].uav.FlyMission(task.Path, p.cfg.SurveyAltitudeM); err != nil {
			return fmt.Errorf("platform: dispatch %s: %w", id, err)
		}
		p.dispatched[id] = len(task.Path)
	}
	p.mission = mission
	p.avail = avail
	p.missionArea = area
	p.decision = conserts.MissionAsPlanned
	return nil
}

// Mission returns the current mission plan (nil before StartMission).
func (p *Platform) Mission() *sar.Mission { return p.mission }

// onSecurityEvent is the §V-C mitigation: when an attack tree root is
// reached, ConSerts pulls the GPS guarantee (via evidence) and the
// platform triggers Collaborative Localization to land the victim.
func (p *Platform) onSecurityEvent(ev security.Event) {
	if !ev.RootReached {
		countIn(&p.drops.events, p.Coordinator.Emit(eddi.Event{
			Kind: eddi.KindSecurity, UAV: ev.UAV, Time: ev.Alert.Stamp,
			Severity: 0.5, Summary: "attack progress: " + ev.Alert.Type,
		}))
		return
	}
	countIn(&p.drops.events, p.Coordinator.Emit(eddi.Event{
		Kind: eddi.KindSecurity, UAV: ev.UAV, Time: ev.Alert.Stamp,
		Severity: 1, Summary: "compromise: " + ev.Root,
		Data: map[string]string{"mitigation": ev.Mitigation},
	}))
	p.recordFault(ev.Alert.Stamp, ev.UAV, "compromise", ev.Root)
	// Collaborative localization is the mitigation for position/mapping
	// manipulation; other compromises (C2 hijack) degrade the comms
	// evidence and let the ConSert network decide.
	if !strings.HasSuffix(ev.Root, "/map-manipulation") {
		return
	}
	st := p.states[ev.UAV]
	if st == nil || st.collocCtrl != nil {
		return
	}
	// Mitigation: stop trusting GPS entirely and land collaboratively.
	st.uav.GPS.Mode = uavsim.GPSModeDropout
	st.inMission = false

	target := p.cfg.SafeLandingPoint
	if !target.Valid() || (target == geo.LatLng{}) {
		if c, err := p.missionArea.Centroid(); err == nil {
			target = c
		} else {
			target = st.uav.Home()
		}
	}
	var observers []*colloc.Observer
	for _, id := range p.order {
		if id == ev.UAV {
			continue
		}
		other := p.states[id].uav
		if !other.Mode().Airborne() || !other.Camera.OK {
			continue
		}
		o, err := colloc.NewObserver(other, p.World.Clock.Stream("colloc/"+id))
		if err == nil {
			observers = append(observers, o)
		}
	}
	if len(observers) == 0 {
		// Nobody can assist: emergency land blind.
		st.uav.EmergencyLand()
		return
	}
	ctrl, err := colloc.NewController(st.uav, target, observers, p.World)
	if err != nil {
		st.uav.EmergencyLand()
		return
	}
	st.collocCtrl = ctrl
	// Redistribute the victim's unfinished work.
	if p.mission != nil {
		if _, assigned := p.mission.Assignments[ev.UAV]; assigned {
			countIn(&p.drops.mission, p.mission.Redistribute(ev.UAV, st.uav.RemainingPath()))
			p.redispatch()
		}
	}
	// A compromise can surface during the climb-out (the security bus is
	// live before the mission dispatches), when no tracker exists yet.
	if p.avail != nil {
		countIn(&p.drops.availability, p.avail.MarkDown(ev.UAV, p.World.Clock.Now()))
	}
}

// redispatch pushes waypoints newly appended by Redistribute to the
// UAVs still in mission. dispatched tracks how much of each task's
// path has already been uploaded.
func (p *Platform) redispatch() {
	for _, id := range p.order {
		st := p.states[id]
		if !st.inMission || st.uav.Mode() != uavsim.ModeMission {
			continue
		}
		task := p.mission.Assignments[id]
		if task == nil {
			continue
		}
		already := p.dispatched[id]
		if len(task.Path) <= already {
			continue
		}
		newWps := task.Path[already:]
		merged := append(st.uav.RemainingPath(), newWps...)
		if countIn(&p.drops.commands, st.uav.FlyMission(merged, p.cfg.SurveyAltitudeM)) {
			p.dispatched[id] = len(task.Path)
		}
	}
}

// MissionComplete reports whether every UAV has finished (landed or
// holding with no pending swap or collaborative landing) — the same
// predicate RunMission uses, exposed for external tick loops.
func (p *Platform) MissionComplete() bool { return p.missionComplete() }

func (p *Platform) missionComplete() bool {
	for _, id := range p.order {
		st := p.states[id]
		m := st.uav.Mode()
		if m == uavsim.ModeMission || m == uavsim.ModeReturnToBase ||
			m == uavsim.ModeLanding || m == uavsim.ModeEmergencyLanding {
			return false
		}
		if st.collocCtrl != nil && !st.collocCtrl.LandingCommanded() {
			return false
		}
		if st.swapPending {
			return false
		}
	}
	return true
}

// airborneNeighbors counts other airborne fleet members. It reads the
// world's incrementally maintained airborne counter, which tracks every
// mode transition instantly — exactly the mid-apply view the old
// per-fleet scan had, at O(1) instead of O(fleet).
func (p *Platform) airborneNeighbors(id string) int {
	n := p.World.AirborneCount()
	if p.states[id].uav.Mode().Airborne() {
		n--
	}
	return n
}

// applyBaseline is the non-SESAME reactive policy of §V-A: on the
// first battery anomaly the UAV ceases its mission and returns to base
// for a battery replacement (batterySwapS seconds), then redeploys to
// finish its own task. No task redistribution happens — there is no
// mission-level EDDI coordination in the baseline.
func (p *Platform) applyBaseline(st *uavState, advices []eddi.Advice, now float64) {
	for _, advice := range advices {
		switch advice.Kind {
		case eddi.AdviceReturnToBase:
			if st.uav.Mode() == uavsim.ModeMission && !st.swapPending {
				st.resumePath = st.uav.RemainingPath()
				st.swapPending = true
				st.swapLandedAt = -1
				st.inMission = false
				countIn(&p.drops.availability, p.avail.MarkDown(st.uav.ID(), now))
				st.uav.ReturnToBase()
			}
		case eddi.AdviceEmergencyLand:
			if st.uav.Mode().Airborne() && st.uav.Mode() != uavsim.ModeEmergencyLanding {
				st.inMission = false
				st.swapPending = false
				countIn(&p.drops.availability, p.avail.MarkDown(st.uav.ID(), now))
				st.uav.EmergencyLand()
			}
		}
	}
	p.tickBatterySwap(st, now)
}

// tickBatterySwap completes a pending baseline battery replacement:
// once the vehicle has been on the ground at base for batterySwapS
// seconds, a fresh pack goes in (clearing any thermal fault with the
// old one), the reliability model restarts, and the UAV redeploys onto
// its stored remaining path.
func (p *Platform) tickBatterySwap(st *uavState, now float64) {
	if !st.swapPending || st.uav.Mode() != uavsim.ModeLanded {
		return
	}
	if st.swapLandedAt < 0 {
		st.swapLandedAt = now
		return
	}
	if now < st.swapLandedAt+batterySwapS {
		return
	}
	st.uav.Battery.Swap()
	// Fresh pack, fresh reliability history.
	mcfg := safedrones.DefaultConfig()
	mcfg.Policy = safedrones.PolicyReactive
	if m, err := safedrones.NewMonitor(st.uav.ID(), mcfg); err == nil {
		st.monitor = m
	}
	st.swapPending = false
	if len(st.resumePath) > 0 {
		if countIn(&p.drops.commands, st.uav.TakeOff(p.cfg.SurveyAltitudeM)) {
			if countIn(&p.drops.commands, st.uav.FlyMission(st.resumePath, p.cfg.SurveyAltitudeM)) {
				st.inMission = true
				st.resumePath = nil
				countIn(&p.drops.availability, p.avail.MarkUp(st.uav.ID(), now))
				return
			}
		}
	}
	countIn(&p.drops.availability, p.avail.MarkUp(st.uav.ID(), now))
}

// applyAction executes a ConSert action change.
func (p *Platform) applyAction(st *uavState, action conserts.UAVAction, now float64) {
	prev := st.action
	st.action = action
	if action == prev {
		return
	}
	p.recordAdvice(now, st.uav.ID(), action.String())
	switch action {
	case conserts.ActionEmergencyLand:
		if st.uav.Mode().Airborne() {
			p.retireUAV(st, now, true)
		}
	case conserts.ActionReturnToBase:
		if st.uav.Mode() == uavsim.ModeMission {
			p.retireUAV(st, now, false)
		}
	case conserts.ActionHold:
		if st.uav.Mode() == uavsim.ModeMission {
			st.uav.Hold()
		}
	}
	// Continue/takeover: no intervention needed.
}

// retireUAV removes the vehicle from the mission (redistributing its
// work) and lands it.
func (p *Platform) retireUAV(st *uavState, now float64, emergency bool) {
	id := st.uav.ID()
	remaining := st.uav.RemainingPath()
	if p.mission != nil {
		if _, assigned := p.mission.Assignments[id]; assigned && len(p.mission.Assignments) > 1 {
			countIn(&p.drops.mission, p.mission.Redistribute(id, remaining))
			p.redispatch()
		}
	}
	st.inMission = false
	countIn(&p.drops.availability, p.avail.MarkDown(id, now))
	if emergency {
		st.uav.EmergencyLand()
	} else {
		st.uav.ReturnToBase()
	}
}

// updateDecision recomputes the mission-level ConSert decision.
func (p *Platform) updateDecision() {
	if p.mission == nil {
		return
	}
	actions := p.actionsBuf
	if actions == nil {
		actions = make(map[string]conserts.UAVAction, len(p.order))
		p.actionsBuf = actions
	}
	clear(actions)
	for _, id := range p.order {
		st := p.states[id]
		a := st.action
		if !p.cfg.SESAME {
			// Baseline: derive from flight mode.
			switch st.uav.Mode() {
			case uavsim.ModeMission, uavsim.ModeHold:
				a = conserts.ActionContinue
			case uavsim.ModeReturnToBase, uavsim.ModeLanding:
				a = conserts.ActionReturnToBase
			default:
				a = conserts.ActionEmergencyLand
			}
		}
		actions[id] = a
	}
	d, err := conserts.DecideMission(actions)
	if countIn(&p.drops.mission, err) {
		p.decision = d
	}
}

// Decision returns the current mission-level decider output.
func (p *Platform) Decision() conserts.MissionDecision { return p.decision }

// Availability returns the fleet availability since mission start.
func (p *Platform) Availability() (float64, error) {
	if p.avail == nil {
		return 0, errors.New("platform: no mission running")
	}
	return p.avail.FleetAvailability(p.World.Clock.Now())
}

// UAVAvailability returns one vehicle's availability since mission
// start.
func (p *Platform) UAVAvailability(id string) (float64, error) {
	if p.avail == nil {
		return 0, errors.New("platform: no mission running")
	}
	return p.avail.Availability(id, p.World.Clock.Now())
}

// Close releases bus taps and broker subscriptions.
func (p *Platform) Close() {
	if p.IDS != nil {
		p.IDS.Close()
	}
	if p.Security != nil {
		p.Security.Close()
	}
	for _, sub := range p.subs {
		p.World.Bus.Unsubscribe(sub)
	}
	p.subs = nil
}
