package platform

import (
	"fmt"
	"math/rand"
	"testing"

	"sesame/internal/detection"
	"sesame/internal/geo"
	"sesame/internal/uavsim"
)

// buildFleet spins up an n-UAV world with an optional scene — the
// variable-size sibling of buildPlatform for sharded-scheduler tests.
func buildFleet(t *testing.T, cfg Config, seed int64, n, persons int) *Platform {
	t.Helper()
	w := uavsim.NewWorld(origin, seed)
	for i := 1; i <= n; i++ {
		home := geo.Destination(origin, 200, 20)
		if _, err := w.AddUAV(uavsim.UAVConfig{ID: fmt.Sprintf("u%02d", i), Home: home, CruiseSpeedMS: 12}); err != nil {
			t.Fatal(err)
		}
	}
	var scene *detection.Scene
	if persons > 0 {
		var err error
		scene, err = detection.NewRandomScene(missionArea(400), persons, 0.2, w.Clock.Stream("scene"))
		if err != nil {
			t.Fatal(err)
		}
	}
	p, err := New(w, scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestAutoCells pins the Cells=0 sizing policy.
func TestAutoCells(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 1}, {1, 1}, {3, 1}, {64, 1}, {65, 2}, {128, 2}, {1000, 16}, {10000, 157},
	} {
		if got := AutoCells(tc.n); got != tc.want {
			t.Errorf("AutoCells(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestShardedSchedulerDeterminism extends TestSchedulerDeterminism to
// the cell-sharded pipeline: across every experiment regime, sharded
// runs must be bit-identical for any cell count >= 2 and any pool size,
// and — in scenarios without a detection scene, where no split RNG
// streams enter the picture — bit-identical to the legacy unsharded
// pipeline too. Run with -race this exercises the per-cell physics and
// fused prepare+observe phases for data races.
func TestShardedSchedulerDeterminism(t *testing.T) {
	for _, sc := range schedulerScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			run := func(cells, workers int) string {
				cfg := sc.cfg()
				cfg.Cells = cells
				cfg.Workers = workers
				p := buildPlatform(t, cfg, sc.seed, sc.persons)
				if err := p.StartMission(missionArea(350)); err != nil {
					t.Fatal(err)
				}
				if sc.faults != nil {
					sc.faults(p)
				}
				if err := p.RunMission(sc.horizon); err != nil {
					t.Fatal(err)
				}
				return digestPlatform(t, p)
			}
			want := run(2, 1)
			for _, v := range []struct{ cells, workers int }{
				{2, 8}, {3, 1}, {3, 8},
			} {
				if got := run(v.cells, v.workers); got != want {
					t.Errorf("sharded run (cells=%d workers=%d) diverges: %s != %s",
						v.cells, v.workers, got, want)
				}
			}
			if sc.persons == 0 {
				if legacy := run(1, 8); legacy != want {
					t.Errorf("no-scene sharded run diverges from legacy pipeline: %s != %s",
						want, legacy)
				}
			}
		})
	}
}

// TestShardedDeterminismProperty is the randomized acceptance check:
// for arbitrary fleet sizes, cell counts and pool sizes, a sharded run
// must digest identically to the reference sharded run of the same
// scenario — and, without a scene, to the serial unsharded run.
func TestShardedDeterminismProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const ticks = 120
	for iter := 0; iter < 6; iter++ {
		n := 4 + r.Intn(12)
		persons := 0
		if r.Intn(2) == 1 {
			persons = 8
		}
		seed := int64(100 + iter)
		cellA := 2 + r.Intn(n-1)
		cellB := 2 + r.Intn(n-1)
		workers := 1 + r.Intn(8)
		name := fmt.Sprintf("n=%d persons=%d cells=%d/%d workers=%d", n, persons, cellA, cellB, workers)

		run := func(cells, workers int) string {
			cfg := DefaultConfig()
			cfg.Cells = cells
			cfg.Workers = workers
			p := buildFleet(t, cfg, seed, n, persons)
			if err := p.StartMission(missionArea(350)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < ticks; i++ {
				if err := p.Tick(); err != nil {
					t.Fatal(err)
				}
			}
			return digestPlatform(t, p)
		}
		want := run(cellA, 1)
		if got := run(cellB, workers); got != want {
			t.Errorf("%s: sharded digests diverge across layouts: %s != %s", name, got, want)
		}
		// Cell counts beyond the fleet size clamp to one UAV per cell
		// and must not change the trajectory either.
		if got := run(n+7, workers); got != want {
			t.Errorf("%s: over-provisioned cell count diverges: %s != %s", name, got, want)
		}
		if persons == 0 {
			if got := run(1, 1); got != want {
				t.Errorf("%s: no-scene sharded run diverges from serial: %s != %s", name, got, want)
			}
		}
	}
}

// TestShardedDropCountersMerged proves the per-shard failure counters
// aggregate into Status.Drops deterministically: a sharded platform
// writing to a forbidden database origin must surface exactly the same
// drop totals as the legacy pipeline, on every run.
func TestShardedDropCountersMerged(t *testing.T) {
	run := func(cells int) DropCounters {
		cfg := DefaultConfig()
		cfg.Origin = "203.0.113.5" // public address: Database rejects it
		cfg.Cells = cells
		cfg.Workers = 4
		p := buildFleet(t, cfg, 6, 6, 0)
		if err := p.StartMission(missionArea(300)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := p.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		return p.Status().Drops
	}
	legacy := run(1)
	// 6 UAVs x 2 writes x 10 ticks.
	if legacy.Database != 120 {
		t.Fatalf("legacy Drops.Database = %d, want 120", legacy.Database)
	}
	for _, cells := range []int{2, 3, 6} {
		if got := run(cells); got != legacy {
			t.Errorf("cells=%d Drops = %+v, want %+v", cells, got, legacy)
		}
		// Merge order is pinned (ascending cells), so repeat runs must
		// reproduce the totals exactly.
		if again := run(cells); again != legacy {
			t.Errorf("cells=%d Drops not reproducible: %+v != %+v", cells, again, legacy)
		}
	}
}

// TestShardedCheckpointCountersDrained pins the barrier contract the
// checkpoint path relies on: between ticks every shard-local counter
// has been drained into the platform totals, so a checkpoint taken from
// a sharded run captures complete drop counts and a restored run
// continues from them.
func TestShardedCheckpointCountersDrained(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Origin = "203.0.113.5"
	cfg.Cells = 3
	p := buildFleet(t, cfg, 6, 6, 0)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	for ci := range p.cells {
		if got := p.cells[ci].drops.snapshot(); got.Total() != 0 {
			t.Errorf("cell %d holds undrained drops between ticks: %+v", ci, got)
		}
	}
	snap, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Drops.Database != 60 {
		t.Errorf("checkpoint Drops.Database = %d, want 60", snap.Drops.Database)
	}
}
