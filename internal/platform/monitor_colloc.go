package platform

import (
	"encoding/json"
	"fmt"

	"sesame/internal/colloc"
	"sesame/internal/eddi"
)

// collocMonitor is the Collaborative Localization runtime monitor
// (paper §III-A5 / §V-C). While a controller is steering the (attacked)
// vehicle down it owns the UAV entirely: the monitor halts the chain so
// no other technology observes or commands the vehicle, and the
// scheduler's apply phase steps the controller instead.
type collocMonitor struct {
	p  *Platform
	st *uavState
}

func (m *collocMonitor) Name() string { return "colloc" }

func (m *collocMonitor) Observe(s eddi.Snapshot) ([]eddi.Event, eddi.Advice, error) {
	if m.st.collocCtrl == nil {
		return nil, eddi.Advice{}, nil
	}
	return nil, eddi.Advice{
		Kind:   eddi.AdviceCollabLand,
		Reason: "collaborative localization is landing the vehicle",
		Halt:   true,
	}, nil
}

// collocState is the checkpointed landing loop: whether a controller
// is active, which fleet members observe the victim (their noise RNGs
// are clock streams, checkpointed as stream positions), and the
// controller's own mutable state.
type collocState struct {
	Active    bool                   `json:"active"`
	Observers []string               `json:"observers"`
	Ctrl      colloc.ControllerState `json:"ctrl"`
}

// SnapshotState implements eddi.Snapshotter.
func (m *collocMonitor) SnapshotState() ([]byte, error) {
	s := collocState{}
	if ctrl := m.st.collocCtrl; ctrl != nil {
		s.Active = true
		s.Ctrl = ctrl.State()
		for _, o := range ctrl.Observers {
			s.Observers = append(s.Observers, o.Assistant.ID())
		}
	}
	return json.Marshal(s)
}

// RestoreState implements eddi.Snapshotter: an active landing is
// rebuilt exactly as onSecurityEvent built it — observers over the
// restored "colloc/<id>" streams, a fresh controller (which installs
// the guidance override) — then the controller state is overlaid.
func (m *collocMonitor) RestoreState(data []byte) error {
	var s collocState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if !s.Active {
		m.st.collocCtrl = nil
		return nil
	}
	observers := make([]*colloc.Observer, 0, len(s.Observers))
	for _, id := range s.Observers {
		other := m.p.states[id]
		if other == nil {
			return fmt.Errorf("platform: colloc observer %q not in fleet", id)
		}
		o, err := colloc.NewObserver(other.uav, m.p.World.Clock.Stream("colloc/"+id))
		if err != nil {
			return err
		}
		observers = append(observers, o)
	}
	ctrl, err := colloc.NewController(m.st.uav, s.Ctrl.Target, observers, m.p.World)
	if err != nil {
		return err
	}
	if err := ctrl.RestoreState(s.Ctrl); err != nil {
		return err
	}
	m.st.collocCtrl = ctrl
	return nil
}
