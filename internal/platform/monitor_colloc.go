package platform

import "sesame/internal/eddi"

// collocMonitor is the Collaborative Localization runtime monitor
// (paper §III-A5 / §V-C). While a controller is steering the (attacked)
// vehicle down it owns the UAV entirely: the monitor halts the chain so
// no other technology observes or commands the vehicle, and the
// scheduler's apply phase steps the controller instead.
type collocMonitor struct {
	st *uavState
}

func (m *collocMonitor) Name() string { return "colloc" }

func (m *collocMonitor) Observe(s eddi.Snapshot) ([]eddi.Event, eddi.Advice, error) {
	if m.st.collocCtrl == nil {
		return nil, eddi.Advice{}, nil
	}
	return nil, eddi.Advice{
		Kind:   eddi.AdviceCollabLand,
		Reason: "collaborative localization is landing the vehicle",
		Halt:   true,
	}, nil
}
