package platform

// The fleet scheduler decomposes one platform tick into three phases:
//
//  1. prepare (serial, fleet order): freeze one telemetry Snapshot per
//     UAV against the post-Step world state and stage camera frames.
//     Captures stay serial because the detector draws from one shared
//     RNG stream — fleet order keeps the draw sequence, and therefore
//     every experiment output, bit-identical to the serial loop.
//  2. observe (concurrent, bounded worker pool): run each UAV's monitor
//     chain over its snapshot. Chains only touch their own UAV's state
//     and read-only shared models (the SINADRA network, the config),
//     so any interleaving yields the same per-UAV results.
//  3. apply (serial, fleet order): emit the collected events, run
//     mission management (crash redistribution, collaborative-landing
//     steps, battery swaps) and execute flight actions. Everything
//     that reads fleet-wide state (ConSert neighbour evidence) or
//     mutates shared state (mission assignments, the event log)
//     happens here, in stable p.order, which makes the concurrent
//     scheduler's outputs bit-identical to the old serial loop.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sesame/internal/conserts"
	"sesame/internal/detection"
	"sesame/internal/eddi"
	"sesame/internal/safedrones"
	"sesame/internal/uavsim"
)

// observation is one UAV's observe-phase output.
type observation struct {
	result eddi.ChainResult
	err    error
}

// Tick advances the platform by one second: world physics, then the
// prepare → observe → apply pipeline, then the mission-level decision.
func (p *Platform) Tick() error {
	if err := p.World.Step(1); err != nil {
		return err
	}
	now := p.World.Clock.Now()
	snaps := p.prepare(now)
	observations := p.observeFleet(snaps)
	for i, id := range p.order {
		if err := p.apply(id, observations[i], now); err != nil {
			return err
		}
	}
	p.updateDecision()
	return nil
}

// RunMission ticks until every UAV has finished (landed/holding with
// empty path) or horizon seconds elapse.
func (p *Platform) RunMission(horizon float64) error {
	end := p.World.Clock.Now() + horizon
	for p.World.Clock.Now() < end {
		if err := p.Tick(); err != nil {
			return err
		}
		if p.missionComplete() {
			return nil
		}
	}
	return nil
}

// prepare freezes one snapshot per UAV and stages perception frames in
// fleet order (shared detector RNG — see package comment).
func (p *Platform) prepare(now float64) []eddi.Snapshot {
	snaps := make([]eddi.Snapshot, len(p.order))
	for i, id := range p.order {
		st := p.states[id]
		u := st.uav
		snaps[i] = eddi.Snapshot{
			UAV:             id,
			Time:            now,
			Airborne:        u.Mode().Airborne(),
			InMissionFlight: u.Mode() == uavsim.ModeMission,
			AltitudeM:       u.AltitudeM(),
			ChargePct:       u.Battery.ChargePct,
			BatteryTempC:    u.Battery.TempC,
			Overheating:     u.Battery.Overheating(),
			FailedRotors:    u.FailedRotors(),
			CommsOK:         u.Comms.OK,
			Visibility:      p.cfg.Visibility,
			Derived:         &eddi.Derived{},
		}
		if p.cfg.SESAME && p.scene != nil && st.collocCtrl == nil && u.Mode() == uavsim.ModeMission {
			frame, err := p.detector.Capture(id, now, u.TruePosition(), detection.Conditions{
				AltitudeM:  u.AltitudeM(),
				Visibility: p.cfg.Visibility,
				CameraBlur: u.Camera.BlurSigma,
				Thermal:    p.thermal,
			}, p.scene)
			if countIn(&p.drops.perception, err) {
				st.perceptionMon.stage(frame)
			}
		}
	}
	return snaps
}

// observeFleet fans the monitor chains out across the worker pool and
// collects per-UAV results into fleet-order slots.
func (p *Platform) observeFleet(snaps []eddi.Snapshot) []observation {
	out := make([]observation, len(snaps))
	workers := p.workers
	if workers > len(snaps) {
		workers = len(snaps)
	}
	if workers <= 1 || len(snaps) == 1 {
		for i := range snaps {
			out[i] = p.observeUAV(snaps[i])
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(snaps) {
					return
				}
				out[i] = p.observeUAV(snaps[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// observeUAV runs one UAV's telemetry reporting and monitor chain.
// Safe to call concurrently for different UAVs.
func (p *Platform) observeUAV(s eddi.Snapshot) observation {
	st := p.states[s.UAV]
	p.reportTelemetry(st, s.Time)
	result, err := eddi.RunChain(st.chain, s)
	return observation{result: result, err: err}
}

// reportTelemetry is the §IV-A database path: every tick each UAV
// stores its location and battery record; rejected writes are counted.
func (p *Platform) reportTelemetry(st *uavState, now float64) {
	u := st.uav
	countIn(&p.drops.database, p.DB.PutLocation(p.cfg.Origin, u.ID(), u.TruePosition(), now))
	countIn(&p.drops.database, p.DB.PutRecord(p.cfg.Origin, u.ID(), Record{
		Key:   "battery",
		Value: fmt.Sprintf("%.1f", u.Battery.ChargePct),
		Time:  now,
	}))
}

// apply executes one UAV's collected findings in fleet order: event
// emission, mission management and flight actions.
func (p *Platform) apply(id string, ob observation, now float64) error {
	if ob.err != nil {
		return ob.err
	}
	st := p.states[id]
	u := st.uav

	// Collaborative landing halted the chain: step the controller and
	// skip normal mission control.
	if ob.result.HasAdvice(eddi.AdviceCollabLand) {
		st.collocCtrl.Step()
		if u.Mode() == uavsim.ModeLanded {
			// Back on the ground, recoverable.
			countIn(&p.drops.availability, p.avail.MarkUp(id, now))
		}
		return nil
	}

	// A crash (rotor loss on a quad, battery depletion) takes the
	// vehicle out of the mission instantly; the Task Manager
	// redistributes its unfinished work.
	if u.Mode() == uavsim.ModeCrashed && st.inMission {
		st.inMission = false
		st.swapPending = false
		countIn(&p.drops.availability, p.avail.MarkDown(id, now))
		if p.mission != nil {
			if _, assigned := p.mission.Assignments[id]; assigned && len(p.mission.Assignments) > 1 {
				countIn(&p.drops.mission, p.mission.Redistribute(id, u.RemainingPath()))
				p.redispatch()
			}
		}
	}

	// Emit the chain's findings in deterministic fleet order.
	for _, ev := range ob.result.Events {
		countIn(&p.drops.events, p.Coordinator.Emit(ev))
	}

	if !p.cfg.SESAME {
		p.applyBaseline(st, ob.result.Advices, now)
		return nil
	}

	// SINADRA adaptation: descend (optionally re-scanning) and restart
	// the perception window at the new altitude.
	for _, advice := range ob.result.Advices {
		switch advice.Kind {
		case eddi.AdviceRescan:
			st.rescans++
			p.descend(st)
		case eddi.AdviceDescend:
			p.descend(st)
		}
	}

	// ConSert evidence mapping and evaluation over the fleet state as
	// left by the UAVs earlier in p.order — the same view the serial
	// loop had.
	action, err := p.fuse(st, u, id)
	if err != nil {
		return err
	}
	// Monitor overrides (the SafeDrones emergency threshold) bypass the
	// boolean evidence network.
	for _, advice := range ob.result.Advices {
		if advice.Override && advice.Kind == eddi.AdviceEmergencyLand {
			action = conserts.ActionEmergencyLand
		}
	}
	p.applyAction(st, action, now)
	return nil
}

// descend executes SINADRA's altitude adaptation and resets the
// perception window for the new operating point.
func (p *Platform) descend(st *uavState) {
	countIn(&p.drops.commands, st.uav.SetAltitude(p.cfg.DescendAltitudeM))
	st.descended = true
	st.perception.Reset()
	st.hasUncert = false
}

// fuse maps the UAV's state onto ConSert evidence and evaluates the
// Fig. 1 composition.
func (p *Platform) fuse(st *uavState, u *uavsim.UAV, id string) (conserts.UAVAction, error) {
	// p.evidence and p.eval are shared scratch, reused every tick; fuse
	// only runs in the serial apply phase (see the phase comment above).
	ev := p.evidence
	ev[conserts.EvGPSQualityOK] = u.GPS.Mode == uavsim.GPSModeNominal || u.GPS.Mode == uavsim.GPSModeSpoofed
	ev[conserts.EvNoSpoofing] = !p.Security.CompromisedBy(id, st.mapManipKey)
	ev[conserts.EvCameraHealthy] = u.Camera.OK
	ev[conserts.EvPerceptionConfident] = !st.hasUncert || st.uncertainty < 0.9
	ev[conserts.EvNearbyDroneDetection] = u.Camera.OK
	ev[conserts.EvCommsOK] = u.Comms.OK && !p.Security.CompromisedBy(id, st.c2HijackKey)
	ev[conserts.EvNeighborsAvailable] = p.airborneNeighbors(id) > 0
	ev[conserts.EvReliabilityHigh] = st.lastAssessment.Level == safedrones.LevelHigh
	ev[conserts.EvReliabilityMedium] = st.lastAssessment.Level == safedrones.LevelMedium
	return p.eval.UAVAction(ev)
}
