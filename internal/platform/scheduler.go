package platform

// The fleet scheduler decomposes one platform tick into three phases:
//
//  1. prepare (serial, fleet order): freeze one telemetry Snapshot per
//     UAV against the post-Step world state and stage camera frames.
//     Captures stay serial because the detector draws from one shared
//     RNG stream — fleet order keeps the draw sequence, and therefore
//     every experiment output, bit-identical to the serial loop.
//  2. observe (concurrent, bounded worker pool): run each UAV's monitor
//     chain over its snapshot. Chains only touch their own UAV's state
//     and read-only shared models (the SINADRA network, the config),
//     so any interleaving yields the same per-UAV results.
//  3. apply (serial, fleet order): emit the collected events, run
//     mission management (crash redistribution, collaborative-landing
//     steps, battery swaps) and execute flight actions. Everything
//     that reads fleet-wide state (ConSert neighbour evidence) or
//     mutates shared state (mission assignments, the event log)
//     happens here, in stable p.order, which makes the concurrent
//     scheduler's outputs bit-identical to the old serial loop.
//
// With Config.Cells > 1 the fleet is sharded into contiguous cells of
// the sorted order and tickSharded replaces the pipeline above:
// physics and a fused prepare+observe run per cell on the worker pool,
// while everything that crosses cells — the lost-link watchdog, the
// counter merge, apply, the mission decision — runs at serial barriers.
// Sharded captures draw from per-vehicle split detector streams, so
// sharded outputs are bit-identical across cell counts and pool sizes
// (though, with a detection scene, not to the unsharded single-stream
// draw order).

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sesame/internal/conserts"
	"sesame/internal/detection"
	"sesame/internal/eddi"
	"sesame/internal/safedrones"
	"sesame/internal/uavsim"
)

// observation is one UAV's observe-phase output.
type observation struct {
	result eddi.ChainResult
	// failed marks a contained monitor-chain failure (panic or error);
	// the apply phase converts it into a fail-safe Hold and feeds the
	// per-UAV circuit breaker.
	failed bool
	// panicked distinguishes a panic from a plain error (attribution in
	// the incident event and the panic metric).
	panicked bool
	failMsg  string
	// quarantined marks a chain that was skipped because its breaker is
	// open (no failure this tick — the chain never ran).
	quarantined bool
}

// Tick advances the platform by one second: world physics, then the
// prepare → observe → apply pipeline, then the mission-level decision.
// With a flight recorder configured, the completed tick is appended to
// the black box and a full checkpoint is written on cadence.
func (p *Platform) Tick() error {
	var err error
	switch {
	case len(p.cells) > 1:
		err = p.tickSharded()
	case p.obs == nil:
		err = p.tickFast()
	default:
		err = p.tickObserved()
	}
	if err != nil {
		return err
	}
	p.ticks++
	if p.cfg.Recorder != nil {
		return p.recordTick()
	}
	return nil
}

// tickFast is the uninstrumented tick: no clock reads, no metric
// touches, byte-for-byte the pre-observability hot path.
func (p *Platform) tickFast() error {
	if err := p.World.Step(1); err != nil {
		return err
	}
	now := p.World.Clock.Now()
	snaps := p.prepare(now)
	observations := p.observeFleet(snaps)
	for i, id := range p.order {
		if err := p.apply(id, observations[i], now); err != nil {
			return err
		}
	}
	p.updateDecision()
	return nil
}

// tickObserved is the same pipeline with per-phase wall-clock timing.
// Phase durations only enter histograms (never Status), so digested
// outputs stay identical to tickFast.
func (p *Platform) tickObserved() error {
	obs := p.obs
	obs.tick.Add(1)
	obs.ticks.Inc()
	t := time.Now()
	if err := p.World.Step(1); err != nil {
		return err
	}
	obs.phaseStep.Observe(time.Since(t).Seconds())
	now := p.World.Clock.Now()
	t = time.Now()
	snaps := p.prepare(now)
	obs.phasePrepare.Observe(time.Since(t).Seconds())
	t = time.Now()
	observations := p.observeFleet(snaps)
	obs.phaseObserve.Observe(time.Since(t).Seconds())
	t = time.Now()
	for i, id := range p.order {
		if err := p.apply(id, observations[i], now); err != nil {
			return err
		}
	}
	p.updateDecision()
	obs.phaseApply.Observe(time.Since(t).Seconds())
	return nil
}

// tickSharded is the cell-sharded pipeline (Config.Cells > 1): physics
// and a fused prepare+observe run per cell on the worker pool, with
// everything that crosses cells at serial barriers in fleet (or
// ascending cell) order. Phase timings are recorded when observability
// is on; the step/observe split matches the legacy phase labels.
func (p *Platform) tickSharded() error {
	obs := p.obs
	var t time.Time
	if obs != nil {
		obs.tick.Add(1)
		obs.ticks.Inc()
		t = time.Now()
	}
	now, err := p.World.BeginStep(1)
	if err != nil {
		return err
	}
	p.runCells(func(c *cell) { p.World.StepRange(c.lo, c.hi, 1) })
	p.World.FinishStep(now)
	if obs != nil {
		obs.phaseStep.Observe(time.Since(t).Seconds())
		t = time.Now()
	}
	// The lost-link watchdog mutates shared mission state (availability
	// marks, task redistribution, the event log), so it runs serially
	// over the whole fleet before the concurrent phases. Hoisting it out
	// of prepare is output-neutral: a contingency only touches other
	// vehicles through redispatch, which never changes a field prepare
	// snapshots, and the watchdog draws no RNG.
	for _, id := range p.order {
		p.tickLinkWatchdog(p.states[id], now)
	}
	if obs != nil {
		obs.phasePrepare.Observe(time.Since(t).Seconds())
		t = time.Now()
	}
	snaps := p.snapshotBuf()
	out := p.observationBuf()
	p.runCells(func(c *cell) {
		for i := c.lo; i < c.hi; i++ {
			st := p.states[p.order[i]]
			snaps[i] = p.prepareUAV(st, now)
			out[i] = p.observeUAV(snaps[i])
		}
	})
	p.mergeCellCounters()
	if obs != nil {
		obs.phaseObserve.Observe(time.Since(t).Seconds())
		t = time.Now()
	}
	for i, id := range p.order {
		if err := p.apply(id, out[i], now); err != nil {
			return err
		}
	}
	p.updateDecision()
	if obs != nil {
		obs.phaseApply.Observe(time.Since(t).Seconds())
	}
	return nil
}

// runCells fans fn out over the cells on the worker pool (the same
// work-stealing pattern as observeFleet) and waits for all of them.
func (p *Platform) runCells(fn func(c *cell)) {
	workers := p.workers
	if workers > len(p.cells) {
		workers = len(p.cells)
	}
	if workers <= 1 {
		for i := range p.cells {
			fn(&p.cells[i])
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(p.cells) {
					return
				}
				fn(&p.cells[i])
			}
		}()
	}
	wg.Wait()
}

// mergeCellCounters drains every cell's shard-local drop/retry tallies
// into the platform totals in ascending cell order — the deterministic
// merge Status and checkpoints read.
func (p *Platform) mergeCellCounters() {
	for i := range p.cells {
		p.cells[i].drops.drainInto(&p.drops)
		p.cells[i].retries.drainInto(&p.retries)
	}
}

// RunMission ticks until every UAV has finished (landed/holding with
// empty path) or horizon seconds elapse.
func (p *Platform) RunMission(horizon float64) error {
	end := p.World.Clock.Now() + horizon
	for p.World.Clock.Now() < end {
		if err := p.Tick(); err != nil {
			return err
		}
		if p.missionComplete() {
			return nil
		}
	}
	return nil
}

// prepare freezes one snapshot per UAV and stages perception frames in
// fleet order (shared detector RNG — see package comment).
func (p *Platform) prepare(now float64) []eddi.Snapshot {
	snaps := p.snapshotBuf()
	for i, id := range p.order {
		st := p.states[id]
		// Lost-link watchdog first: the snapshot then reflects any
		// contingency commanded this tick.
		p.tickLinkWatchdog(st, now)
		snaps[i] = p.prepareUAV(st, now)
	}
	return snaps
}

// prepareUAV freezes one UAV's telemetry snapshot and stages its
// perception frame. The sharded tick calls it concurrently across
// cells: every field read is the vehicle's own state, captures draw
// from the vehicle's split detector stream (st.detRNG), and failures
// count into the cell's shard-local counters.
func (p *Platform) prepareUAV(st *uavState, now float64) eddi.Snapshot {
	u := st.uav
	s := eddi.Snapshot{
		UAV:             u.ID(),
		Time:            now,
		Airborne:        u.Mode().Airborne(),
		InMissionFlight: u.Mode() == uavsim.ModeMission,
		AltitudeM:       u.AltitudeM(),
		ChargePct:       u.Battery.ChargePct,
		BatteryTempC:    u.Battery.TempC,
		Overheating:     u.Battery.Overheating(),
		FailedRotors:    u.FailedRotors(),
		CommsOK:         u.Comms.OK,
		Visibility:      p.cfg.Visibility,
		Derived:         &eddi.Derived{},
	}
	if p.cfg.SESAME && p.scene != nil && st.collocCtrl == nil && u.Mode() == uavsim.ModeMission {
		cond := detection.Conditions{
			AltitudeM:  u.AltitudeM(),
			Visibility: p.cfg.Visibility,
			CameraBlur: u.Camera.BlurSigma,
			Thermal:    p.thermal,
		}
		var frame *detection.Frame
		var err error
		if st.detRNG != nil {
			frame, err = p.detector.CaptureWith(st.detRNG, u.ID(), now, u.TruePosition(), cond, p.scene)
		} else {
			frame, err = p.detector.Capture(u.ID(), now, u.TruePosition(), cond, p.scene)
		}
		if countIn(&st.drops.perception, err) {
			st.perceptionMon.stage(frame)
		}
	}
	return s
}

// snapshotBuf returns the reusable fleet-sized snapshot scratch.
func (p *Platform) snapshotBuf() []eddi.Snapshot {
	if cap(p.snapBuf) < len(p.order) {
		p.snapBuf = make([]eddi.Snapshot, len(p.order))
	}
	return p.snapBuf[:len(p.order)]
}

// observationBuf returns the reusable fleet-sized observation scratch.
func (p *Platform) observationBuf() []observation {
	if cap(p.obsBuf) < len(p.order) {
		p.obsBuf = make([]observation, len(p.order))
	}
	return p.obsBuf[:len(p.order)]
}

// observeFleet fans the monitor chains out across the worker pool and
// collects per-UAV results into fleet-order slots.
func (p *Platform) observeFleet(snaps []eddi.Snapshot) []observation {
	out := p.observationBuf()
	workers := p.workers
	if workers > len(snaps) {
		workers = len(snaps)
	}
	if workers <= 1 || len(snaps) == 1 {
		for i := range snaps {
			out[i] = p.observeUAV(snaps[i])
		}
		return out
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(snaps) {
					return
				}
				out[i] = p.observeUAV(snaps[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// observeUAV runs one UAV's telemetry reporting and monitor chain.
// Safe to call concurrently for different UAVs. A failing monitor —
// panic or error — is contained here: it becomes a counted drop plus a
// fail-safe observation instead of killing the worker goroutine (and
// with it the process) or aborting the tick. While the UAV's breaker
// is open the chain is skipped entirely (telemetry keeps flowing), so
// a persistently crashing monitor costs one skipped call per tick
// instead of one contained panic per tick.
func (p *Platform) observeUAV(s eddi.Snapshot) (ob observation) {
	st := p.states[s.UAV]
	defer func() {
		// Backstop for panics outside the chain itself (the chain's own
		// panics are converted to *eddi.MonitorPanicError upstream).
		if r := recover(); r != nil {
			st.drops.monitors.Add(1)
			if st.recorder != nil {
				st.recorder.recordPanic()
			}
			ob = observation{failed: true, panicked: true, failMsg: fmt.Sprint(r)}
		}
	}()
	p.reportTelemetry(st, s.Time)
	if st.quarantined && s.Time < st.probeAt {
		return observation{quarantined: true}
	}
	// The typed-nil guard matters: a nil *chainRecorder in a non-nil
	// interface would turn the observer path on for uninstrumented runs.
	var result eddi.ChainResult
	var err error
	if st.recorder != nil {
		result, err = eddi.RunChainObserved(st.chain, s, st.recorder)
	} else {
		result, err = eddi.RunChain(st.chain, s)
	}
	if err != nil {
		st.drops.monitors.Add(1)
		ob = observation{failed: true, failMsg: err.Error()}
		var pe *eddi.MonitorPanicError
		if errors.As(err, &pe) {
			ob.panicked = true
			ob.failMsg = pe.Monitor + ": " + fmt.Sprint(pe.Value)
			if st.recorder != nil {
				st.recorder.recordPanic()
			}
		}
		return ob
	}
	return observation{result: result}
}

// reportTelemetry is the §IV-A database path: every tick each UAV
// stores its location and battery record. Transient failures
// (ErrUnavailable) enter a bounded retry-with-backoff queue drained
// here on later ticks; permanent rejections are counted as drops.
// Retries drain first so a recovered old datum cannot overwrite this
// tick's fresher write.
func (p *Platform) reportTelemetry(st *uavState, now float64) {
	p.drainDBRetries(st, now)
	u := st.uav
	id := u.ID()
	if err := p.DB.PutLocation(p.cfg.Origin, id, u.TruePosition(), now); err != nil {
		p.deferOrDrop(st, now, err, dbRetry{
			Kind: dbRetryLocation, Pos: u.TruePosition(), Time: now,
		})
	}
	rec := Record{
		Key:   "battery",
		Value: fmt.Sprintf("%.1f", u.Battery.ChargePct),
		Time:  now,
	}
	if err := p.DB.PutRecord(p.cfg.Origin, id, rec); err != nil {
		p.deferOrDrop(st, now, err, dbRetry{Kind: dbRetryRecord, Rec: rec})
	}
}

// deferOrDrop queues a transiently failed database write for retry, or
// counts it as a drop when retrying is disabled or the failure is
// permanent (validation, forbidden origin).
func (p *Platform) deferOrDrop(st *uavState, now float64, err error, r dbRetry) {
	if p.cfg.DBRetryAttempts > 1 && errors.Is(err, ErrUnavailable) {
		r.Attempts = 1
		r.NextAt = now + p.cfg.DBRetryBackoffS
		st.dbRetries = append(st.dbRetries, r)
		st.retries.scheduled.Add(1)
		return
	}
	st.drops.database.Add(1)
}

// drainDBRetries re-offers due queued writes. Each failure doubles the
// backoff until the attempt budget is spent, at which point the write
// is abandoned and finally counted as a database drop. The queue is
// per-UAV state owned by the observing worker, so this is race-free
// and deterministic.
func (p *Platform) drainDBRetries(st *uavState, now float64) {
	if len(st.dbRetries) == 0 {
		return
	}
	kept := st.dbRetries[:0]
	for _, r := range st.dbRetries {
		if now < r.NextAt {
			kept = append(kept, r)
			continue
		}
		err := p.execRetry(st, r)
		if err == nil {
			st.retries.succeeded.Add(1)
			continue
		}
		r.Attempts++
		if !errors.Is(err, ErrUnavailable) || r.Attempts >= p.cfg.DBRetryAttempts {
			st.retries.abandoned.Add(1)
			st.drops.database.Add(1)
			continue
		}
		r.NextAt = now + p.cfg.DBRetryBackoffS*float64(uint64(1)<<uint(r.Attempts-1))
		kept = append(kept, r)
	}
	st.dbRetries = kept
}

// apply executes one UAV's collected findings in fleet order: event
// emission, mission management and flight actions.
func (p *Platform) apply(id string, ob observation, now float64) error {
	st := p.states[id]
	u := st.uav

	// A contained monitor-chain failure fails the UAV safe: emit the
	// incident once, hold position, skip the (unavailable) chain
	// findings — and feed the circuit breaker. After BreakerFailures
	// consecutive failures the chain is quarantined: skipped entirely
	// until a re-probe after BreakerCooldownS, instead of re-failing
	// every tick.
	if ob.failed {
		st.breakerFails++
		if !st.monitorPanicked {
			st.monitorPanicked = true
			word := "error"
			if ob.panicked {
				word = "panic"
			}
			ev := eddi.Event{
				Kind: eddi.KindSafety, UAV: id, Time: now, Severity: 1,
				Summary: "monitor chain " + word + ": " + ob.failMsg + "; holding position fail-safe",
			}
			countIn(&p.drops.events, p.Coordinator.Emit(ev))
			p.recordEvent(ev)
		}
		if st.quarantined {
			// Failed re-probe: re-arm the cooldown without a new event —
			// one quarantine incident per continuous quarantine period.
			st.probeAt = now + p.cfg.BreakerCooldownS
		} else if k := p.cfg.BreakerFailures; k > 0 && st.breakerFails >= k {
			st.quarantined = true
			st.probeAt = now + p.cfg.BreakerCooldownS
			if p.obs != nil {
				p.obs.quarantines().Inc()
			}
			ev := eddi.Event{
				Kind: eddi.KindSafety, UAV: id, Time: now, Severity: 1,
				Summary: fmt.Sprintf("monitor chain quarantined after %d consecutive failures; re-probe in %.0fs",
					st.breakerFails, p.cfg.BreakerCooldownS),
			}
			countIn(&p.drops.events, p.Coordinator.Emit(ev))
			p.recordEvent(ev)
			p.recordFault(now, id, "monitor-quarantine", ob.failMsg)
		}
		if u.Mode() == uavsim.ModeMission {
			u.Hold()
		}
		return nil
	}

	// Breaker open: the chain was skipped this tick; keep holding until
	// the next probe.
	if ob.quarantined {
		if u.Mode() == uavsim.ModeMission {
			u.Hold()
		}
		return nil
	}

	// A clean chain run closes an open breaker (successful probe) and
	// resets the consecutive-failure streak.
	if st.quarantined {
		st.quarantined = false
		st.breakerFails = 0
		st.monitorPanicked = false
		st.probeAt = 0
		ev := eddi.Event{
			Kind: eddi.KindSafety, UAV: id, Time: now, Severity: 0.3,
			Summary: "monitor chain recovered after quarantine; resuming normal monitoring",
		}
		countIn(&p.drops.events, p.Coordinator.Emit(ev))
		p.recordEvent(ev)
	} else if st.breakerFails != 0 {
		st.breakerFails = 0
		st.monitorPanicked = false
	}

	// Collaborative landing halted the chain: step the controller and
	// skip normal mission control.
	if ob.result.HasAdvice(eddi.AdviceCollabLand) {
		st.collocCtrl.Step()
		if u.Mode() == uavsim.ModeLanded {
			// Back on the ground, recoverable.
			countIn(&p.drops.availability, p.avail.MarkUp(id, now))
		}
		return nil
	}

	// A crash (rotor loss on a quad, battery depletion) takes the
	// vehicle out of the mission instantly; the Task Manager
	// redistributes its unfinished work.
	if u.Mode() == uavsim.ModeCrashed && st.inMission {
		st.inMission = false
		st.swapPending = false
		countIn(&p.drops.availability, p.avail.MarkDown(id, now))
		if p.mission != nil {
			if _, assigned := p.mission.Assignments[id]; assigned && len(p.mission.Assignments) > 1 {
				countIn(&p.drops.mission, p.mission.Redistribute(id, u.RemainingPath()))
				p.redispatch()
			}
		}
	}

	// Emit the chain's findings in deterministic fleet order.
	for _, ev := range ob.result.Events {
		countIn(&p.drops.events, p.Coordinator.Emit(ev))
		p.recordEvent(ev)
	}

	if !p.cfg.SESAME {
		p.applyBaseline(st, ob.result.Advices, now)
		return nil
	}

	// SINADRA adaptation: descend (optionally re-scanning) and restart
	// the perception window at the new altitude.
	for _, advice := range ob.result.Advices {
		switch advice.Kind {
		case eddi.AdviceRescan:
			st.rescans++
			p.descend(st)
		case eddi.AdviceDescend:
			p.descend(st)
		}
	}

	// ConSert evidence mapping and evaluation over the fleet state as
	// left by the UAVs earlier in p.order — the same view the serial
	// loop had.
	action, err := p.fuse(st, u, id)
	if err != nil {
		return err
	}
	// Monitor overrides (the SafeDrones emergency threshold) bypass the
	// boolean evidence network.
	for _, advice := range ob.result.Advices {
		if advice.Override && advice.Kind == eddi.AdviceEmergencyLand {
			action = conserts.ActionEmergencyLand
		}
	}
	p.applyAction(st, action, now)
	return nil
}

// descend executes SINADRA's altitude adaptation and resets the
// perception window for the new operating point.
func (p *Platform) descend(st *uavState) {
	countIn(&p.drops.commands, st.uav.SetAltitude(p.cfg.DescendAltitudeM))
	st.descended = true
	st.perception.Reset()
	st.hasUncert = false
}

// fuse maps the UAV's state onto ConSert evidence and evaluates the
// Fig. 1 composition.
func (p *Platform) fuse(st *uavState, u *uavsim.UAV, id string) (conserts.UAVAction, error) {
	// p.evidence and p.eval are shared scratch, reused every tick; fuse
	// only runs in the serial apply phase (see the phase comment above).
	ev := p.evidence
	ev[conserts.EvGPSQualityOK] = u.GPS.Mode == uavsim.GPSModeNominal || u.GPS.Mode == uavsim.GPSModeSpoofed
	ev[conserts.EvNoSpoofing] = !p.Security.CompromisedBy(id, st.mapManipKey)
	ev[conserts.EvCameraHealthy] = u.Camera.OK
	ev[conserts.EvPerceptionConfident] = !st.hasUncert || st.uncertainty < 0.9
	ev[conserts.EvNearbyDroneDetection] = u.Camera.OK
	commsOK := u.Comms.OK && !p.Security.CompromisedBy(id, st.c2HijackKey)
	// GCS-observed staleness demotes the comms guarantee: evidence must
	// reflect what the ground station can actually see, not vehicle
	// ground truth, once a lossy link sits between them.
	if w := p.cfg.LostLinkWindowS; w > 0 && (st.lostLink || st.telemetryAge(p.World.Clock.Now()) > w) {
		commsOK = false
	}
	ev[conserts.EvCommsOK] = commsOK
	ev[conserts.EvNeighborsAvailable] = p.airborneNeighbors(id) > 0
	ev[conserts.EvReliabilityHigh] = st.lastAssessment.Level == safedrones.LevelHigh
	ev[conserts.EvReliabilityMedium] = st.lastAssessment.Level == safedrones.LevelMedium
	return p.eval.UAVAction(ev)
}
