package platform

import "sync/atomic"

// The §IV-A data path used to discard failures from database writes,
// event emission, availability marks and flight commands silently.
// dropCounters makes every such drop observable: each call site routes
// its error through count*, and Status surfaces the totals so a ground
// operator (or a test) can see data loss instead of guessing.

// DropCounters is the externally visible snapshot of data-path drops.
type DropCounters struct {
	// Database counts rejected database writes (locations, telemetry).
	Database uint64 `json:"database"`
	// Events counts EDDI events the coordinator refused.
	Events uint64 `json:"events"`
	// Availability counts failed availability-tracker marks.
	Availability uint64 `json:"availability"`
	// Commands counts rejected flight commands (altitude changes,
	// redeployments, redispatches).
	Commands uint64 `json:"commands"`
	// Mission counts failed mission-management operations
	// (redistribution, mission-level decisions).
	Mission uint64 `json:"mission"`
	// Perception counts dropped perception work (failed captures,
	// window pushes, evaluations, risk assessments).
	Perception uint64 `json:"perception"`
	// Monitors counts monitor-chain evaluations lost to a panicking
	// runtime monitor (the UAV's tick result is replaced by a fail-safe
	// Halt).
	Monitors uint64 `json:"monitors"`
}

// Total sums all drop categories.
func (c DropCounters) Total() uint64 {
	return c.Database + c.Events + c.Availability + c.Commands + c.Mission + c.Perception + c.Monitors
}

// RetryCounters is the externally visible snapshot of the database
// retry-with-backoff machinery.
type RetryCounters struct {
	// Scheduled counts writes that failed transiently and entered the
	// retry queue.
	Scheduled uint64 `json:"scheduled"`
	// Succeeded counts queued writes that eventually landed.
	Succeeded uint64 `json:"succeeded"`
	// Abandoned counts queued writes dropped after exhausting their
	// attempts (these also appear in DropCounters.Database).
	Abandoned uint64 `json:"abandoned"`
}

// dropCounters is the internal atomic store. Monitors increment it
// from the concurrent observe phase, so all fields are atomics.
type dropCounters struct {
	database     atomic.Uint64
	events       atomic.Uint64
	availability atomic.Uint64
	commands     atomic.Uint64
	mission      atomic.Uint64
	perception   atomic.Uint64
	monitors     atomic.Uint64
}

// snapshot returns a point-in-time copy for Status.
func (c *dropCounters) snapshot() DropCounters {
	return DropCounters{
		Database:     c.database.Load(),
		Events:       c.events.Load(),
		Availability: c.availability.Load(),
		Commands:     c.commands.Load(),
		Mission:      c.mission.Load(),
		Perception:   c.perception.Load(),
		Monitors:     c.monitors.Load(),
	}
}

// drainInto moves this store's counts into dst, zeroing the source.
// The sharded scheduler calls it at the tick barrier to fold each
// cell's shard-local tallies into the platform totals; draining in
// ascending cell order keeps the merge reproducible (the adds commute,
// but a stable order costs nothing and reads deterministically).
func (c *dropCounters) drainInto(dst *dropCounters) {
	dst.database.Add(c.database.Swap(0))
	dst.events.Add(c.events.Swap(0))
	dst.availability.Add(c.availability.Swap(0))
	dst.commands.Add(c.commands.Swap(0))
	dst.mission.Add(c.mission.Swap(0))
	dst.perception.Add(c.perception.Swap(0))
	dst.monitors.Add(c.monitors.Swap(0))
}

// retryCounters is the internal atomic store behind RetryCounters;
// retries are enqueued from the concurrent observe phase.
type retryCounters struct {
	scheduled atomic.Uint64
	succeeded atomic.Uint64
	abandoned atomic.Uint64
}

func (c *retryCounters) snapshot() RetryCounters {
	return RetryCounters{
		Scheduled: c.scheduled.Load(),
		Succeeded: c.succeeded.Load(),
		Abandoned: c.abandoned.Load(),
	}
}

// drainInto is the retry-counter half of the tick-barrier merge.
func (c *retryCounters) drainInto(dst *retryCounters) {
	dst.scheduled.Add(c.scheduled.Swap(0))
	dst.succeeded.Add(c.succeeded.Swap(0))
	dst.abandoned.Add(c.abandoned.Swap(0))
}

// countIn increments ctr when err is non-nil and reports whether the
// operation succeeded.
func countIn(ctr *atomic.Uint64, err error) bool {
	if err != nil {
		ctr.Add(1)
		return false
	}
	return true
}

// Drops returns the platform's data-path drop counters.
func (p *Platform) Drops() DropCounters { return p.drops.snapshot() }

// DBRetries returns the database retry-with-backoff counters.
func (p *Platform) DBRetries() RetryCounters { return p.retries.snapshot() }
