package platform

// Additional fault-injection scenarios exercising the integration
// paths not covered by the headline §V experiments: rotor loss on a
// quad, C2-link loss, and camera failure during a perception mission.

import (
	"testing"

	"sesame/internal/sar"
	"sesame/internal/uavsim"
)

func TestRotorFailureEmergencyLandsAndRedistributes(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 10, 0)
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	at := p.World.Clock.Now() + 30
	if err := p.World.ScheduleFault(uavsim.RotorFailureFault(at, "u3", 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(1200); err != nil {
		t.Fatal(err)
	}
	victim, _ := p.World.UAV("u3")
	// A quad with a failed rotor is uncontrollable: the vehicle model
	// crashes it (the monitor's emergency-land advice races the
	// physics; either way it is down).
	if victim.Mode() != uavsim.ModeCrashed && victim.Mode() != uavsim.ModeLanded {
		t.Fatalf("u3 mode = %v, want crashed or landed", victim.Mode())
	}
	// Its strip was redistributed: survivors finished the mission.
	if _, still := p.Mission().Assignments["u3"]; still {
		t.Fatal("u3 still assigned after loss")
	}
	for _, id := range []string{"u1", "u2"} {
		u, _ := p.World.UAV(id)
		if u.RemainingWaypoints() != 0 {
			t.Fatalf("%s did not finish the redistributed work (%d wps left)", id, u.RemainingWaypoints())
		}
	}
	av, err := p.UAVAvailability("u3")
	if err != nil {
		t.Fatal(err)
	}
	if av >= 1 {
		t.Fatal("u3 availability must reflect the loss")
	}
}

func TestCommsLossGroundsUAV(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 11, 0)
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	at := p.World.Clock.Now() + 30
	if err := p.World.ScheduleFault(uavsim.CommsFailureFault(at, "u1")); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(1200); err != nil {
		t.Fatal(err)
	}
	u, _ := p.World.UAV("u1")
	// Total C2 loss drives the comms PoF to 1 -> emergency landing.
	if u.Mode() != uavsim.ModeLanded && u.Mode() != uavsim.ModeEmergencyLanding {
		t.Fatalf("u1 mode = %v after comms loss", u.Mode())
	}
	// The event stream recorded the safety degradation.
	found := false
	for _, ev := range p.Coordinator.History("u1") {
		if ev.Kind.String() == "safety" && ev.Severity > 0.9 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no critical safety event recorded for comms loss")
	}
}

func TestCameraFailureDoesNotStopGPSMission(t *testing.T) {
	// Camera loss alone leaves high-performance GPS navigation intact
	// (Fig. 1): the mission continues.
	p := buildPlatform(t, DefaultConfig(), 12, 6)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	at := p.World.Clock.Now() + 20
	if err := p.World.ScheduleFault(uavsim.CameraFailureFault(at, "u2")); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(1500); err != nil {
		t.Fatal(err)
	}
	u, _ := p.World.UAV("u2")
	if u.Mode() != uavsim.ModeHold || u.RemainingWaypoints() != 0 {
		t.Fatalf("u2 should have finished its sweep: mode %v, %d wps", u.Mode(), u.RemainingWaypoints())
	}
	av, _ := p.UAVAvailability("u2")
	if av < 0.999 {
		t.Fatalf("camera loss must not cost availability on a GPS mission: %v", av)
	}
}

func TestBatterySwapClearsThermalFault(t *testing.T) {
	// Unit-level check of the baseline swap: the replacement pack is
	// healthy even though the old one had a persistent thermal fault.
	b := uavsim.DefaultBattery()
	b.InjectThermalFault(70, 40)
	if !b.Overheating() || b.ChargePct != 40 {
		t.Fatalf("fault not applied: %+v", b)
	}
	b.Swap()
	if b.Overheating() || b.ChargePct != 100 || b.TempC != 25 {
		t.Fatalf("swap did not restore the pack: charge=%v temp=%v", b.ChargePct, b.TempC)
	}
	// The swapped pack no longer self-heats.
	b.Step(100, 0, true)
	if b.TempC > 40 {
		t.Fatalf("swapped pack reheated to %v", b.TempC)
	}
}

func TestBaselineResumesAfterSwap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SESAME = false
	p := buildPlatform(t, cfg, 13, 0)
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	at := p.World.Clock.Now() + 60
	if err := p.World.ScheduleFault(uavsim.BatteryCollapseFault(at, "u1", 70, 40)); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(1500); err != nil {
		t.Fatal(err)
	}
	u, _ := p.World.UAV("u1")
	// After abort, swap and redeploy the UAV finishes its own strip.
	if u.Mode() != uavsim.ModeHold || u.RemainingWaypoints() != 0 {
		t.Fatalf("baseline u1 did not resume and finish: mode %v, %d wps", u.Mode(), u.RemainingWaypoints())
	}
	// Its pack is the fresh one.
	if u.Battery.Overheating() {
		t.Fatal("battery was not swapped")
	}
	av, _ := p.UAVAvailability("u1")
	if av >= 0.95 || av <= 0.3 {
		t.Fatalf("baseline u1 availability = %v, want a clear but partial loss", av)
	}
}

func TestJammingDetectedViaHijackTree(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 14, 0)
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	at := p.World.Clock.Now() + 30
	if err := p.World.ScheduleFault(uavsim.CommsFailureFault(at, "u2")); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(600); err != nil {
		t.Fatal(err)
	}
	// The silenced telemetry topics trip the IDS link-silence rule and
	// reach the C2-hijack attack-tree root.
	if !p.Security.CompromisedBy("u2", "u2/c2-hijack") {
		t.Fatalf("hijack tree not reached; alerts: %v", p.IDS.Alerts())
	}
	// The spoofing tree stays untouched (silence is not a GPS anomaly),
	// so no collaborative landing was triggered.
	if p.Security.CompromisedBy("u2", "u2/map-manipulation") {
		t.Fatal("spoofing tree should not fire on jamming")
	}
	if p.states["u2"].collocCtrl != nil {
		t.Fatal("jamming must not trigger collaborative localization")
	}
	// The vehicle itself was grounded by the comms-loss PoF.
	u, _ := p.World.UAV("u2")
	if u.Mode() != uavsim.ModeLanded && u.Mode() != uavsim.ModeEmergencyLanding {
		t.Fatalf("u2 mode = %v", u.Mode())
	}
}

func TestCombinedBatteryAndSpoofingStress(t *testing.T) {
	// Both headline faults in one mission: u1's battery collapses while
	// u2 is being spoofed. The platform must mitigate both — u2 lands
	// collaboratively, u1 flies on under the EDDI policy — and the
	// survivors absorb the work.
	p := buildPlatform(t, DefaultConfig(), 15, 0)
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	now := p.World.Clock.Now()
	if err := p.World.ScheduleFault(uavsim.BatteryCollapseFault(now+50, "u1", 70, 40)); err != nil {
		t.Fatal(err)
	}
	if err := p.World.ScheduleFault(uavsim.GPSSpoofFault(now+40, "u2", 135, 3)); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(1500); err != nil {
		t.Fatal(err)
	}
	// u2: detected, collaboratively landed.
	if !p.Security.CompromisedBy("u2", "u2/map-manipulation") {
		t.Fatal("spoofing undetected under combined stress")
	}
	u2, _ := p.World.UAV("u2")
	if u2.Mode() != uavsim.ModeLanded {
		t.Fatalf("u2 mode = %v", u2.Mode())
	}
	// u1: kept flying (EDDI policy) and finished its own strip.
	u1, _ := p.World.UAV("u1")
	if u1.Mode() == uavsim.ModeCrashed {
		t.Fatal("u1 crashed; the EDDI should have managed the battery fault")
	}
	if u1.RemainingWaypoints() != 0 {
		t.Fatalf("u1 left %d waypoints", u1.RemainingWaypoints())
	}
	// u3 absorbed u2's redistribution and finished.
	u3, _ := p.World.UAV("u3")
	if u3.RemainingWaypoints() != 0 {
		t.Fatalf("u3 left %d waypoints", u3.RemainingWaypoints())
	}
	if _, still := p.Mission().Assignments["u2"]; still {
		t.Fatal("u2 still assigned")
	}
}

func TestNightMissionAutoThermal(t *testing.T) {
	// At visibility 0.3 the platform flies thermal: perception
	// uncertainty reflects only the altitude drift (manageable by
	// descending), not the optical collapse that would floor an RGB
	// pipeline.
	cfg := DefaultConfig()
	cfg.Visibility = 0.3
	cfg.SurveyAltitudeM = 30 // near reference: little altitude drift
	thermal := buildPlatform(t, cfg, 16, 10)
	if err := thermal.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	if err := thermal.RunMission(900); err != nil {
		t.Fatal(err)
	}

	cfgRGB := cfg
	cfgRGB.UseThermalBelow = 0 // force RGB at night
	rgb := buildPlatform(t, cfgRGB, 16, 10)
	if err := rgb.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	if err := rgb.RunMission(900); err != nil {
		t.Fatal(err)
	}

	maxUncert := func(p *Platform) float64 {
		worst := 0.0
		for _, ev := range p.Coordinator.History("") {
			if ev.Kind.String() == "perception" && ev.Severity > worst {
				worst = ev.Severity
			}
		}
		return worst
	}
	uThermal := maxUncert(thermal)
	uRGB := maxUncert(rgb)
	if uThermal == 0 || uRGB == 0 {
		t.Fatalf("missing perception events: thermal=%v rgb=%v", uThermal, uRGB)
	}
	// RGB at night drifts hard against its daylight reference; the
	// thermal pipeline, referenced on thermal frames, stays calm.
	if uRGB < 0.9 {
		t.Fatalf("night RGB uncertainty = %v, expected reject-level", uRGB)
	}
	if uThermal >= uRGB {
		t.Fatalf("thermal uncertainty (%v) must stay below RGB (%v)", uThermal, uRGB)
	}
}

func TestMissionWithExpandingSquarePlanner(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CoveragePlanner = sar.ExpandingSquarePath
	cfg.SweepSpacingM = 45
	p := buildPlatform(t, cfg, 17, 0)
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(1800); err != nil {
		t.Fatal(err)
	}
	for _, u := range p.World.UAVs() {
		if u.Mode() != uavsim.ModeHold || u.RemainingWaypoints() != 0 {
			t.Fatalf("%s did not finish its expanding square: mode %v, %d wps",
				u.ID(), u.Mode(), u.RemainingWaypoints())
		}
	}
	av, err := p.Availability()
	if err != nil || av < 0.999 {
		t.Fatalf("availability = %v err = %v", av, err)
	}
}
