package platform

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"sesame/internal/chaos"
	"sesame/internal/flightrec"
	"sesame/internal/geo"
	"sesame/internal/obsv"
	"sesame/internal/uavsim"
)

// buildChaosPlatform mirrors buildPlatform with a chaos layer armed on
// every seam: monitor chains (ExtraMonitors), rosbus, MQTT broker and
// the mission database. The layer is built from the world clock before
// the platform so injections ride the simulation time line.
func buildChaosPlatform(t *testing.T, cfg Config, seed int64, plan chaos.Plan) (*Platform, *chaos.Layer) {
	t.Helper()
	layer := (*chaos.Layer)(nil)
	p := func() *Platform {
		w := newTestWorld(t, seed)
		var err error
		if layer, err = chaos.New(w.Clock, plan); err != nil {
			t.Fatal(err)
		}
		if mb := layer.MonitorBuilder(); mb != nil {
			cfg.ExtraMonitors = append(cfg.ExtraMonitors, mb)
		}
		p, err := New(w, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}()
	layer.AttachBus(p.World.Bus)
	layer.AttachBroker(p.Broker)
	if hook := layer.DBHook(ErrUnavailable); hook != nil {
		p.DB.SetFaultHook(hook)
	}
	t.Cleanup(p.Close)
	return p, layer
}

// newTestWorld is buildPlatform's world construction without the
// platform, so a chaos layer can hook the clock first.
func newTestWorld(t *testing.T, seed int64) *uavsim.World {
	t.Helper()
	w := uavsim.NewWorld(origin, seed)
	for _, id := range []string{"u1", "u2", "u3"} {
		home := geo.Destination(origin, 200, 20)
		if _, err := w.AddUAV(uavsim.UAVConfig{ID: id, Home: home, CruiseSpeedMS: 12}); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// startChaosMission starts the shared eventful mission: survey plus a
// battery collapse and a GPS spoof layered under the chaos plan.
func startChaosMission(t *testing.T, p *Platform) {
	t.Helper()
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	now := p.World.Clock.Now()
	if err := p.World.ScheduleFault(uavsim.BatteryCollapseFault(now+60, "u1", 70, 40)); err != nil {
		t.Fatal(err)
	}
	if err := p.World.ScheduleFault(uavsim.GPSSpoofFault(now+30, "u2", 135, 3)); err != nil {
		t.Fatal(err)
	}
}

// chaosDeterminismPlan hits every live seam of the mission: a breaker
// round trip on u1, flaky fleet-wide chain errors, lossy telemetry
// publishes, broker faults and a long database brownout.
func chaosDeterminismPlan() chaos.Plan {
	return chaos.Plan{
		Name: "determinism",
		Seed: 11,
		Monitors: []chaos.MonitorFault{
			{UAV: "u1", Mode: chaos.ModePanic, Window: chaos.Window{FromS: 60, ToS: 100}, Prob: 1},
			{Mode: chaos.ModeError, Window: chaos.Window{FromS: 150, ToS: 170}, Prob: 0.5},
		},
		Bus:    []chaos.PublishFault{{Match: "/uav/", Window: chaos.Window{FromS: 30, ToS: 200}, Prob: 0.02}},
		Broker: []chaos.PublishFault{{Window: chaos.Window{ToS: 300}, Prob: 0.1}},
		DB:     []chaos.Brownout{{Window: chaos.Window{ToS: 300}, Prob: 0.2}},
	}
}

// TestChaosDeterminism is the harness's acceptance test: with a fault
// plan armed, serial, pooled and sharded schedulers must finish
// bit-identically, a checkpoint/restore mid-chaos must rejoin that
// digest, and an inert (empty) plan must be indistinguishable from no
// chaos layer at all.
func TestChaosDeterminism(t *testing.T) {
	const seed, horizon = 21, 600.0
	plan := chaosDeterminismPlan()

	fly := func(cfg Config, plan chaos.Plan) *Platform {
		p, _ := buildChaosPlatform(t, cfg, seed, plan)
		startChaosMission(t, p)
		runUntil(t, p, p.World.Clock.Now()+horizon)
		return p
	}

	serialCfg := DefaultConfig()
	serialCfg.Workers = 1
	want := digestPlatform(t, fly(serialCfg, plan))

	pooledCfg := DefaultConfig()
	pooledCfg.Workers = 8
	if got := digestPlatform(t, fly(pooledCfg, plan)); got != want {
		t.Errorf("pooled chaos run diverges from serial: %s != %s", got, want)
	}

	shardedCfg := DefaultConfig()
	shardedCfg.Workers = 4
	shardedCfg.Cells = 3
	if got := digestPlatform(t, fly(shardedCfg, plan)); got != want {
		t.Errorf("sharded chaos run diverges from serial: %s != %s", got, want)
	}

	// Kill mid-chaos — inside u1's panic window, with the breaker open
	// and the brownout still running — and resume on a freshly built
	// pooled scenario: quarantine state must survive the restore and
	// injections must land on the same simulated seconds either side of
	// it.
	donor, _ := buildChaosPlatform(t, serialCfg, seed, plan)
	startChaosMission(t, donor)
	end := donor.World.Clock.Now() + horizon
	runUntil(t, donor, donor.World.Clock.Now()+80)
	if donor.MissionComplete() {
		t.Fatal("checkpoint point is past mission completion; move it earlier")
	}
	snap, err := donor.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	resumed, _ := buildChaosPlatform(t, pooledCfg, seed, plan)
	startChaosMission(t, resumed)
	if err := resumed.RestoreCheckpoint(snap); err != nil {
		t.Fatal(err)
	}
	runUntil(t, resumed, end)
	if got := digestPlatform(t, resumed); got != want {
		t.Errorf("resumed chaos run diverges from uninterrupted: %s != %s", got, want)
	}

	// Transparency: an armed-but-empty plan must not perturb anything.
	baseline := buildPlatform(t, serialCfg, seed, 0)
	startChaosMission(t, baseline)
	runUntil(t, baseline, baseline.World.Clock.Now()+horizon)
	base := digestPlatform(t, baseline)
	if got := digestPlatform(t, fly(serialCfg, chaos.Plan{})); got != base {
		t.Errorf("inert chaos layer perturbed the mission: %s != %s", got, base)
	}
}

// TestChaosProperty is the generative gate: at least 100 random fault
// plans (including in -short), each flown on a live mission, must
// never deadlock the tick loop, never escalate to a process panic or
// tick error, and never lose track of a vehicle. Recorder faults are
// armed too, so generated disk failures exercise degraded mode.
func TestChaosProperty(t *testing.T) {
	const cases = 100
	const horizon = 120.0
	uavs := []string{"u1", "u2", "u3"}
	for i := 0; i < cases; i++ {
		rng := rand.New(rand.NewSource(int64(i)*7919 + 3))
		plan := chaos.GeneratePlan(rng, uavs)
		cfg := DefaultConfig()
		switch i % 3 {
		case 1:
			cfg.Workers = 4
		case 2:
			cfg.Cells = 3
		}
		p, layer := buildChaosPlatform(t, cfg, int64(i)+1, plan)
		recOpts := layer.RecorderOptions(flightrec.Options{})
		rec, err := flightrec.NewRecorder(filepath.Join(t.TempDir(), "bb"), int64(i)+1, p.ConfigDigest(), 20, recOpts)
		switch {
		case err == nil:
			p.SetRecorder(rec)
		case strings.Contains(err.Error(), "chaos:"):
			// The plan killed segment creation outright; flying without a
			// black box is the correct degraded behavior.
		default:
			t.Fatalf("case %d: %v", i, err)
		}
		startChaosMission(t, p)
		end := p.World.Clock.Now() + horizon
		for p.World.Clock.Now() < end && !p.MissionComplete() {
			if err := p.Tick(); err != nil {
				t.Fatalf("case %d (plan seed %d): tick error escaped containment: %v", i, plan.Seed, err)
			}
		}
		status := p.Status()
		if len(status.UAVs) != len(uavs) {
			t.Fatalf("case %d: %d UAVs accounted, want %d", i, len(status.UAVs), len(uavs))
		}
		for _, us := range status.UAVs {
			if us.ID == "" || us.Mode == "" {
				t.Fatalf("case %d: unaccounted UAV state %+v", i, us)
			}
		}
		if p.recDegraded && (status.Recorder == nil || !status.Recorder.Degraded) {
			t.Fatalf("case %d: degraded recorder missing from Status", i)
		}
		if rec != nil {
			rec.Close() // chaos-injected close errors are expected
		}
		p.Close()
	}
}

// TestMonitorQuarantineBreaker pins the circuit breaker against a
// monitor that panics on every tick for 100 s: one quarantine event
// (not one per tick), bounded drop growth while the breaker is open,
// and a clean recovery once the probe finds the chain healthy again.
func TestMonitorQuarantineBreaker(t *testing.T) {
	plan := chaos.Plan{Seed: 3, Monitors: []chaos.MonitorFault{
		{UAV: "u1", Mode: chaos.ModePanic, Window: chaos.Window{ToS: 100}, Prob: 1},
	}}
	cfg := DefaultConfig() // BreakerFailures 3, BreakerCooldownS 30
	cfg.Observability = obsv.NewRegistry()
	p, layer := buildChaosPlatform(t, cfg, 5, plan)
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}

	runUntil(t, p, 50)
	mid := p.Status()
	if !mid.UAVs[0].MonitorQuarantined {
		t.Error("u1 not marked quarantined mid-window")
	}

	runUntil(t, p, 200)
	final := p.Status()
	if final.UAVs[0].MonitorQuarantined {
		t.Error("u1 still quarantined after the fault window closed")
	}

	counts := map[string]int{}
	for _, ev := range p.Coordinator.History("u1") {
		switch {
		case strings.Contains(ev.Summary, "monitor chain quarantined"):
			counts["quarantine"]++
		case strings.Contains(ev.Summary, "recovered after quarantine"):
			counts["recovered"]++
		case strings.Contains(ev.Summary, "monitor chain panic"):
			counts["panic"]++
		}
	}
	if counts["quarantine"] != 1 {
		t.Errorf("quarantine events = %d, want exactly 1", counts["quarantine"])
	}
	if counts["recovered"] != 1 {
		t.Errorf("recovery events = %d, want exactly 1", counts["recovered"])
	}
	if counts["panic"] != 1 {
		t.Errorf("panic incident events = %d, want exactly 1", counts["panic"])
	}

	// 3 contained failures trip the breaker, then one failed probe every
	// 30 s cooldown until the window closes: ~6 drops, not ~100.
	if drops := final.Drops.Monitors; drops < 3 || drops > 12 {
		t.Errorf("monitor drops = %d, want bounded (3..12) — breaker not containing the panic storm", drops)
	}
	if panics := layer.Stats().MonitorPanics; panics < 3 || panics > 12 {
		t.Errorf("injected panics = %d, want bounded (3..12) — chain ran while quarantined", panics)
	}

	// The quarantine landed in observability and the mission survived.
	if got := final.Observability["sesame_monitor_quarantines_total"]; got != 1 {
		t.Errorf("quarantine counter = %d, want 1", got)
	}
	if p.Decision().String() == "abort" {
		t.Error("breaker round trip aborted the mission")
	}
}

// TestRecorderDegradedMode pins graceful recorder degradation: once
// the black box hits a persistent write failure, the mission keeps
// flying, writes become counted skips, one incident event is emitted
// and the condition is surfaced in Status and observability.
func TestRecorderDegradedMode(t *testing.T) {
	plan := chaos.Plan{Seed: 9, Recorder: []chaos.RecorderFault{
		{Op: chaos.OpWrite, Window: chaos.Window{FromS: 40}, Prob: 1},
	}}
	cfg := DefaultConfig()
	cfg.Observability = obsv.NewRegistry()
	p, layer := buildChaosPlatform(t, cfg, 6, plan)
	rec, err := flightrec.NewRecorder(filepath.Join(t.TempDir(), "bb"), 6, p.ConfigDigest(), 20, layer.RecorderOptions(flightrec.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	p.SetRecorder(rec)
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	runUntil(t, p, 120)

	status := p.Status()
	if status.Recorder == nil || !status.Recorder.Degraded {
		t.Fatalf("Status.Recorder = %+v, want degraded", status.Recorder)
	}
	if status.Recorder.SkippedWrites == 0 {
		t.Error("no skipped writes counted after degradation")
	}
	if !strings.Contains(status.Recorder.Error, "chaos: injected recorder write failure") {
		t.Errorf("degradation error %q does not carry the write failure", status.Recorder.Error)
	}
	if status.Observability["sesame_recorder_degraded_total"] != 1 {
		t.Errorf("degraded counter = %d, want 1", status.Observability["sesame_recorder_degraded_total"])
	}
	if status.Observability["sesame_recorder_skipped_writes_total"] != status.Recorder.SkippedWrites {
		t.Errorf("skip counter = %d, Status reports %d",
			status.Observability["sesame_recorder_skipped_writes_total"], status.Recorder.SkippedWrites)
	}
	incidents := 0
	for _, ev := range p.Coordinator.History("") {
		if strings.Contains(ev.Summary, "flight recorder degraded") {
			incidents++
		}
	}
	if incidents != 1 {
		t.Errorf("degradation incident events = %d, want exactly 1", incidents)
	}
}
