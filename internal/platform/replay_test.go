package platform

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"sesame/internal/eddi"
	"sesame/internal/flightrec"
	"sesame/internal/linksim"
	"sesame/internal/uavsim"
)

// replayScenario is one record/crash/resume regime. Scenarios with
// link=true run behind a lossy linksim layer, the regime where delayed
// frames force the recorder to defer checkpoints to quiescent ticks.
type replayScenario struct {
	name    string
	cfg     func() Config
	seed    int64
	persons int
	link    bool
	faults  func(p *Platform, layer *linksim.Layer)
	horizon float64
}

func replayScenarios() []replayScenario {
	return []replayScenario{
		{"nominal", DefaultConfig, 2, 0, false, nil, 1200},
		{"spoofing-attack", DefaultConfig, 4, 0, false, func(p *Platform, _ *linksim.Layer) {
			at := p.World.Clock.Now() + 30
			_ = p.World.ScheduleFault(uavsim.GPSSpoofFault(at, "u2", 135, 3))
		}, 1500},
		{"battery-baseline", func() Config {
			c := DefaultConfig()
			c.SESAME = false
			return c
		}, 3, 0, false, func(p *Platform, _ *linksim.Layer) {
			at := p.World.Clock.Now() + 60
			_ = p.World.ScheduleFault(uavsim.BatteryCollapseFault(at, "u1", 70, 40))
		}, 1200},
		{"perception-descend", DefaultConfig, 5, 12, false, nil, 900},
		{"linksim-degraded", DefaultConfig, 21, 0, true, func(p *Platform, layer *linksim.Layer) {
			now := p.World.Clock.Now()
			layer.Link("u2").AddOutage(now+30, now+60)
		}, 1800},
		// Cell-sharded scheduler with a perception workload: checkpoints
		// must capture the per-vehicle split detector streams and the
		// merged shard counters, and the resumed run (pooled) must finish
		// bit-identically to the uninterrupted sharded runs.
		{"sharded-perception", func() Config {
			c := DefaultConfig()
			c.Cells = 2
			return c
		}, 5, 12, false, nil, 900},
	}
}

// buildReplayScenario rebuilds a scenario exactly the way every run of
// it starts: world + fleet, optional degraded link layer, mission
// start, fault schedule. Record, baseline and resume runs all go
// through here so their pre-checkpoint histories are identical.
func buildReplayScenario(t *testing.T, sc replayScenario, workers int) *Platform {
	t.Helper()
	cfg := sc.cfg()
	cfg.Workers = workers
	p := buildPlatform(t, cfg, sc.seed, sc.persons)
	var layer *linksim.Layer
	if sc.link {
		layer = attachLinkLayer(p)
		profile := linksim.Profile{DupProb: 0.1}
		for _, id := range []string{"u1", "u2", "u3"} {
			layer.Link(id).SetProfile(profile)
		}
	}
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	if sc.faults != nil {
		sc.faults(p, layer)
	}
	return p
}

// runUntil reproduces RunMission against a fixed absolute end time, so
// a resumed platform stops at exactly the tick the uninterrupted run
// stopped at.
func runUntil(t *testing.T, p *Platform, end float64) {
	t.Helper()
	for p.World.Clock.Now() < end {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
		if p.MissionComplete() {
			return
		}
	}
}

// TestReplayDeterminism is the flight recorder's acceptance test: a
// recorded mission, killed mid-flight and resumed from its latest
// checkpoint, must finish bit-identically to the uninterrupted run —
// and recording itself must not perturb the simulation. For every
// scenario it compares four digests: uninterrupted serial, uninterrupted
// pooled, recorded (serial), and resumed-from-checkpoint (pooled, which
// also proves recordings interoperate across scheduler pool sizes).
func TestReplayDeterminism(t *testing.T) {
	for _, sc := range replayScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Uninterrupted baselines.
			serial := buildReplayScenario(t, sc, 1)
			end := serial.World.Clock.Now() + sc.horizon
			runUntil(t, serial, end)
			want := digestPlatform(t, serial)

			pooled := buildReplayScenario(t, sc, 8)
			runUntil(t, pooled, end)
			if got := digestPlatform(t, pooled); got != want {
				t.Fatalf("pooled baseline diverges from serial: %s != %s", got, want)
			}

			// Recorded run: black box on, checkpoint every 25 ticks.
			dir := filepath.Join(t.TempDir(), "blackbox")
			recorded := buildReplayScenario(t, sc, 1)
			rec, err := flightrec.NewRecorder(dir, sc.seed, recorded.ConfigDigest(), 25, flightrec.Options{})
			if err != nil {
				t.Fatal(err)
			}
			recorded.SetRecorder(rec)
			runUntil(t, recorded, end)
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			if got := digestPlatform(t, recorded); got != want {
				t.Fatalf("recording perturbed the run: %s != %s", got, want)
			}

			// Crash mid-flight: resume from the newest checkpoint at or
			// before the halfway tick, on a freshly rebuilt scenario.
			half := recorded.Ticks() / 2
			snap, hdr, err := flightrec.LatestSnapshot(dir, half)
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Seed != sc.seed {
				t.Fatalf("recording header seed %d, want %d", hdr.Seed, sc.seed)
			}
			var ps PlatformSnapshot
			if err := json.Unmarshal(snap.State, &ps); err != nil {
				t.Fatal(err)
			}
			resumed := buildReplayScenario(t, sc, 8)
			if hdr.ConfigDigest != resumed.ConfigDigest() {
				t.Fatalf("recording config digest %s, platform %s", hdr.ConfigDigest, resumed.ConfigDigest())
			}
			resumeEnd := resumed.World.Clock.Now() + sc.horizon
			if resumeEnd != end {
				t.Fatalf("rebuilt scenario start diverges: end %v, want %v", resumeEnd, end)
			}
			if err := resumed.RestoreCheckpoint(&ps); err != nil {
				t.Fatal(err)
			}
			if resumed.Ticks() != snap.Tick {
				t.Fatalf("restored tick %d, checkpoint %d", resumed.Ticks(), snap.Tick)
			}
			runUntil(t, resumed, resumeEnd)
			if got := digestPlatform(t, resumed); got != want {
				t.Errorf("resumed run diverges from uninterrupted: %s != %s", got, want)
			}
		})
	}
}

// TestCheckpointRestoreErrors pins the restore path's guard rails.
func TestCheckpointRestoreErrors(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 7, 0)
	if _, err := p.Checkpoint(); err == nil {
		t.Error("checkpoint before StartMission must fail")
	}
	if err := p.RestoreCheckpoint(nil); err == nil {
		t.Error("nil checkpoint must fail")
	}
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Mismatched configuration is refused before any state moves.
	other := DefaultConfig()
	other.SurveyAltitudeM = 80
	q := buildPlatform(t, other, 7, 0)
	if err := q.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	if err := q.RestoreCheckpoint(snap); err == nil {
		t.Error("config digest mismatch must fail")
	}

	// A scenario already past the checkpoint time is refused.
	late := buildPlatform(t, DefaultConfig(), 7, 0)
	if err := late.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	for late.World.Clock.Now() <= snap.World.Time {
		if err := late.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := late.RestoreCheckpoint(snap); err == nil {
		t.Error("restore onto a scenario past the checkpoint must fail")
	}

	// Restore before StartMission is refused.
	fresh := buildPlatform(t, DefaultConfig(), 7, 0)
	if err := fresh.RestoreCheckpoint(snap); err == nil {
		t.Error("restore before StartMission must fail")
	}
}

// TestAppendRecordsMatchSchema pins the hand-rolled hot-path encoders
// to the tickRecord/busRecord schema: their output must be valid JSON
// that decodes into exactly the values reflective marshaling would
// have produced.
func TestAppendRecordsMatchSchema(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 11, 4)
	if err := p.StartMission(missionArea(400)); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 25; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}

	now := p.World.Clock.Now()
	raw := p.appendTickRecord(nil, now)
	if !json.Valid(raw) {
		t.Fatalf("appendTickRecord produced invalid JSON: %s", raw)
	}
	var got tickRecord
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	want := tickRecord{Tick: p.ticks, Time: now, Decision: p.decision.String()}
	for _, id := range p.order {
		st := p.states[id]
		want.UAVs = append(want.UAVs, tickUAVRecord{
			ID:         id,
			Mode:       st.uav.Mode().String(),
			Action:     st.action.String(),
			BatteryPct: st.uav.Battery.ChargePct,
			AltitudeM:  st.uav.AltitudeM(),
		})
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tick record mismatch:\n got %+v\nwant %+v", got, want)
	}

	raw = p.appendBusRecord(nil)
	if !json.Valid(raw) {
		t.Fatalf("appendBusRecord produced invalid JSON: %s", raw)
	}
	var gotBus busRecord
	if err := json.Unmarshal(raw, &gotBus); err != nil {
		t.Fatal(err)
	}
	bs := p.World.Bus.Stats()
	wantBus := busRecord{
		Tick:           p.ticks,
		Published:      bs.Published,
		Delivered:      bs.Delivered,
		FilterConsumed: bs.FilterConsumed,
		DepthExceeded:  bs.DepthExceeded,
		TelemetryDrops: p.World.Drops().TelemetryPublish,
	}
	if gotBus != wantBus {
		t.Errorf("bus record mismatch:\n got %+v\nwant %+v", gotBus, wantBus)
	}
}

// TestAppendJSONString pins the fast path and the escape fallback.
func TestAppendJSONString(t *testing.T) {
	for _, s := range []string{"", "u1", "plain-id_42", `quote"back\slash`, "ctrl\x01char", "voilà"} {
		got := appendJSONString(nil, s)
		var back string
		if err := json.Unmarshal(got, &back); err != nil {
			t.Errorf("appendJSONString(%q) = %s: %v", s, got, err)
			continue
		}
		if back != s {
			t.Errorf("appendJSONString(%q) round-tripped to %q", s, back)
		}
	}
}

// TestAppendEventRecordMatchesJSON pins the hand-rolled event encoder
// to encoding/json's schema for eddi.Event, including sorted Data keys.
func TestAppendEventRecordMatchesJSON(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 1, 0)
	defer p.Close()
	events := []eddi.Event{
		{Kind: eddi.KindSafety, UAV: "u1", Time: 12.5, Severity: 0.8,
			Summary: `battery "low"`, Data: map[string]string{"pct": "18.3", "act": "swap", "a": "1"}},
		{Kind: eddi.KindSecurity, UAV: "u2", Time: 1e-5, Severity: 1},
	}
	for _, ev := range events {
		raw := p.appendEventRecord(nil, ev)
		if !json.Valid(raw) {
			t.Fatalf("invalid JSON: %s", raw)
		}
		var got eddi.Event
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ev) {
			t.Errorf("event round-trip mismatch:\n got %+v\nwant %+v", got, ev)
		}
		want, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var a, b map[string]interface{}
		if err := json.Unmarshal(raw, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want, &b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("schema drift from encoding/json:\n hand %s\n json %s", raw, want)
		}
	}
}
