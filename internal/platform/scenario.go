package platform

// This file is the one-call bridge from a declarative scenario
// (internal/scenario) to a running platform: build the seeded world
// and scene, arm the optional chaos plan, attach the link-quality
// layer, start the (possibly multi-site) mission and register the
// fault timeline. It lives in platform — not scenario — because the
// scenario package sits below platform in the import graph.

import (
	"errors"

	"sesame/internal/chaos"
	"sesame/internal/linksim"
	"sesame/internal/scenario"
	"sesame/internal/uavsim"
)

// ScenarioRun bundles everything LaunchScenario built. Close the
// Platform when done; the layers have no resources of their own.
type ScenarioRun struct {
	World    *uavsim.World
	Platform *Platform
	// Links is the scenario's link-quality layer (nil when the
	// scenario declares no link rules).
	Links *linksim.Layer
	// Chaos is the armed infrastructure fault layer (nil when the
	// scenario embeds no chaos plan).
	Chaos *chaos.Layer
}

// LaunchScenario builds a scenario into a running mission: world,
// scene, platform (with the scenario attached to cfg), link layer,
// chaos layer and fault timeline, with the mission started over every
// site. The caller drives the returned platform's tick loop to
// sc.HorizonS. cfg supplies the platform calibration; its Scenario,
// Visibility and UseThermalBelow fields are overwritten from the
// scenario itself.
func LaunchScenario(sc *scenario.Scenario, cfg Config) (*ScenarioRun, error) {
	if sc == nil {
		return nil, errors.New("platform: nil scenario")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	w, err := sc.BuildWorld()
	if err != nil {
		return nil, err
	}
	scene, err := sc.BuildScene(w)
	if err != nil {
		return nil, err
	}
	cfg.Scenario = sc
	var chaosLayer *chaos.Layer
	if sc.Chaos != nil {
		chaosLayer, err = chaos.New(w.Clock, *sc.Chaos)
		if err != nil {
			return nil, err
		}
		if mb := chaosLayer.MonitorBuilder(); mb != nil {
			// Copy-on-append: never mutate the caller's slice.
			cfg.ExtraMonitors = append(cfg.ExtraMonitors[:len(cfg.ExtraMonitors):len(cfg.ExtraMonitors)], mb)
		}
	}
	p, err := New(w, scene, cfg)
	if err != nil {
		return nil, err
	}
	// The link layer attaches before chaos so chaos publish failures
	// are decided first (the ArmChaos ordering contract).
	var links *linksim.Layer
	if len(sc.Links) > 0 {
		links = linksim.New(w.Clock, "scenario")
		links.AttachBus(w.Bus)
	}
	if chaosLayer != nil {
		chaosLayer.AttachBus(w.Bus)
		chaosLayer.AttachBroker(p.Broker)
		if hook := chaosLayer.DBHook(ErrUnavailable); hook != nil {
			p.DB.SetFaultHook(hook)
		}
	}
	// Timeline and outage windows are relative to mission start, which
	// is "now": StartMissionSites runs the climb-out, so capture first.
	start := w.Clock.Now()
	if err := p.StartMissionSites(sc.Areas()); err != nil {
		p.Close()
		return nil, err
	}
	if links != nil {
		sc.ApplyLinks(links, start)
	}
	if err := sc.ScheduleTimeline(w, start); err != nil {
		p.Close()
		return nil, err
	}
	return &ScenarioRun{World: w, Platform: p, Links: links, Chaos: chaosLayer}, nil
}
