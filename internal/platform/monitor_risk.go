package platform

import (
	"fmt"

	"sesame/internal/eddi"
	"sesame/internal/sinadra"
)

// riskMonitor is the SINADRA runtime monitor (paper §III-A4): it turns
// the fused perception uncertainty into situation-aware adaptation
// advice through the shared Bayesian risk network. The assessor is
// stateless and read-only at evaluation time, so one instance serves
// every UAV's chain concurrently.
type riskMonitor struct {
	p  *Platform
	st *uavState
}

func (m *riskMonitor) Name() string { return "sinadra" }

func (m *riskMonitor) Observe(s eddi.Snapshot) ([]eddi.Event, eddi.Advice, error) {
	if !s.Derived.HasUncertainty || !s.InMissionFlight || m.st.descended {
		return nil, eddi.Advice{}, nil
	}
	risk, err := m.p.assessor.Assess(sinadra.Situation{
		Uncertainty: s.Derived.Uncertainty,
		AltitudeM:   s.AltitudeM,
		Visibility:  s.Visibility,
	})
	if !countIn(&m.st.drops.perception, err) {
		return nil, eddi.Advice{}, nil
	}
	s.Derived.RiskHigh = risk.RiskHigh
	events := []eddi.Event{{
		Kind: eddi.KindRisk, UAV: s.UAV, Time: s.Time,
		Severity: risk.RiskHigh,
		Summary:  fmt.Sprintf("risk %.2f advice %s", risk.RiskHigh, risk.Advice),
	}}
	var advice eddi.Advice
	switch risk.Advice {
	case sinadra.AdviceDescend:
		advice = eddi.Advice{Kind: eddi.AdviceDescend, Reason: "SINADRA: descend to recover perception"}
	case sinadra.AdviceRescan:
		advice = eddi.Advice{Kind: eddi.AdviceRescan, Reason: "SINADRA: re-scan the current cell"}
	}
	return events, advice, nil
}
