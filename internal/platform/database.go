package platform

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"sesame/internal/geo"
)

// Database is the platform's database manager (paper §IV-A): an API
// for asynchronous data requests from UAVs and software clients that
// verifies requests originate inside the network before serving them.
type Database struct {
	mu        sync.Mutex
	telemetry map[string][]Record
	locations map[string]locEntry
	limit     int
	faultHook func(uav string) error
}

type locEntry struct {
	pos  geo.LatLng
	time float64
}

// Record is one stored telemetry datum.
type Record struct {
	Key   string
	Value string
	Time  float64
}

// ErrForbiddenOrigin is returned for requests from outside the
// platform network.
var ErrForbiddenOrigin = errors.New("platform: request origin outside the network")

// ErrUnavailable marks a transient database failure (the store is
// unreachable over a degraded link). Unlike validation errors it is
// retryable: the scheduler's bounded retry-with-backoff path re-offers
// such writes on later ticks instead of dropping them immediately.
var ErrUnavailable = errors.New("platform: database unavailable")

// NewDatabase returns a database keeping at most limit records per UAV
// (0 = unbounded).
func NewDatabase(limit int) *Database {
	return &Database{
		telemetry: make(map[string][]Record),
		locations: make(map[string]locEntry),
		limit:     limit,
	}
}

// checkOrigin admits loopback and RFC1918 private addresses — the
// "inside the network" rule of the paper's database manager.
func checkOrigin(origin string) error {
	host := origin
	if h, _, err := net.SplitHostPort(origin); err == nil {
		host = h
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return fmt.Errorf("platform: unparseable origin %q", origin)
	}
	if ip.IsLoopback() || ip.IsPrivate() {
		return nil
	}
	return ErrForbiddenOrigin
}

// SetFaultHook installs (or, with nil, removes) a per-write fault
// injector consulted after request validation on PutRecord and
// PutLocation. It models the store's own data path failing — return
// ErrUnavailable to exercise the retry machinery.
func (d *Database) SetFaultHook(fn func(uav string) error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faultHook = fn
}

func (d *Database) faultFor(uav string) error {
	d.mu.Lock()
	fn := d.faultHook
	d.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(uav)
}

// PutRecord stores a telemetry record for the UAV; origin must be an
// in-network address ("ip" or "ip:port").
func (d *Database) PutRecord(origin, uav string, rec Record) error {
	if err := checkOrigin(origin); err != nil {
		return err
	}
	if uav == "" || rec.Key == "" {
		return errors.New("platform: record needs uav and key")
	}
	if err := d.faultFor(uav); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.telemetry[uav] = append(d.telemetry[uav], rec)
	if d.limit > 0 && len(d.telemetry[uav]) > d.limit {
		d.telemetry[uav] = d.telemetry[uav][len(d.telemetry[uav])-d.limit:]
	}
	return nil
}

// Records returns a copy of the UAV's stored records.
func (d *Database) Records(origin, uav string) ([]Record, error) {
	if err := checkOrigin(origin); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Record(nil), d.telemetry[uav]...), nil
}

// PutLocation stores the UAV's latest reported location.
func (d *Database) PutLocation(origin, uav string, pos geo.LatLng, t float64) error {
	if err := checkOrigin(origin); err != nil {
		return err
	}
	if uav == "" || !pos.Valid() {
		return errors.New("platform: invalid location report")
	}
	if err := d.faultFor(uav); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.locations[uav] = locEntry{pos: pos, time: t}
	return nil
}

// Location returns the UAV's last reported location.
func (d *Database) Location(origin, uav string) (geo.LatLng, float64, error) {
	if err := checkOrigin(origin); err != nil {
		return geo.LatLng{}, 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.locations[uav]
	if !ok {
		return geo.LatLng{}, 0, fmt.Errorf("platform: no location for %q", uav)
	}
	return e.pos, e.time, nil
}

// KnownUAVs lists UAVs with any stored data, sorted.
func (d *Database) KnownUAVs(origin string) ([]string, error) {
	if err := checkOrigin(origin); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	set := map[string]bool{}
	for u := range d.telemetry {
		set[u] = true
	}
	for u := range d.locations {
		set[u] = true
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, nil
}
