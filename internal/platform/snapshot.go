package platform

// This file is the platform half of the black-box flight recorder
// (internal/flightrec): the typed record hooks the scheduler calls
// from its serial phases, the full-platform checkpoint schema, and the
// restore path that overlays a checkpoint onto a freshly rebuilt
// scenario to continue a mission bit-identically.
//
// The checkpoint contract mirrors internal/uavsim/snapshot.go:
// closures (bus subscriptions, security handlers, fault Apply funcs,
// guidance overrides) are never serialized. Restore expects the caller
// to rebuild the scenario exactly as the recorded run did — same world
// builder, same seed, same Config, same StartMission area, same fault
// schedule — and then overlays every mutable value on top. Database
// contents are deliberately excluded: they never feed back into flight
// decisions, and the drop/retry counters that do are restored.

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"slices"
	"strconv"

	"sesame/internal/conserts"
	"sesame/internal/eddi"
	"sesame/internal/flightrec"
	"sesame/internal/geo"
	"sesame/internal/ids"
	"sesame/internal/sar"
	"sesame/internal/security"
	"sesame/internal/uavsim"
)

// ConfigDigest fingerprints every Config value that shapes the
// simulation's trajectory. Recordings embed it so a replay against a
// differently tuned platform fails fast instead of diverging silently.
// Workers is excluded on purpose — the scheduler is bit-identical
// across pool sizes, so serial and pooled runs replay each other's
// recordings. Cells IS digested (as the raw configured value): with a
// detection scene, sharded and unsharded runs draw detector captures
// from different stream layouts, so their recordings must not replay
// each other. Function-typed fields (CoveragePlanner, ExtraMonitors)
// and pure instrumentation (Observability, Recorder) cannot or need
// not be digested; the caller owns keeping those consistent.
func (p *Platform) ConfigDigest() string {
	c := p.cfg
	blob := struct {
		SESAME           bool       `json:"sesame"`
		SurveyAltitudeM  float64    `json:"survey_altitude_m"`
		DescendAltitudeM float64    `json:"descend_altitude_m"`
		SweepSpacingM    float64    `json:"sweep_spacing_m"`
		Visibility       float64    `json:"visibility"`
		UseThermalBelow  float64    `json:"use_thermal_below"`
		SafeLandingPoint geo.LatLng `json:"safe_landing_point"`
		Origin           string     `json:"origin"`
		LostLinkWindowS  float64    `json:"lost_link_window_s"`
		LostLinkLand     bool       `json:"lost_link_land"`
		DBRetryAttempts  int        `json:"db_retry_attempts"`
		DBRetryBackoffS  float64    `json:"db_retry_backoff_s"`
		BreakerFailures  int        `json:"breaker_failures"`
		BreakerCooldownS float64    `json:"breaker_cooldown_s"`
		Cells            int        `json:"cells"`
	}{
		SESAME:           c.SESAME,
		SurveyAltitudeM:  c.SurveyAltitudeM,
		DescendAltitudeM: c.DescendAltitudeM,
		SweepSpacingM:    c.SweepSpacingM,
		Visibility:       c.Visibility,
		UseThermalBelow:  c.UseThermalBelow,
		SafeLandingPoint: c.SafeLandingPoint,
		Origin:           c.Origin,
		LostLinkWindowS:  c.LostLinkWindowS,
		LostLinkLand:     c.LostLinkLand,
		DBRetryAttempts:  c.DBRetryAttempts,
		DBRetryBackoffS:  c.DBRetryBackoffS,
		BreakerFailures:  c.BreakerFailures,
		BreakerCooldownS: c.BreakerCooldownS,
		Cells:            c.Cells,
	}
	data, err := json.Marshal(blob)
	if err != nil {
		// The blob is plain data; Marshal cannot fail on it.
		panic(err)
	}
	// The scenario digest joins the hash only when a scenario is
	// attached, so every pre-scenario recording keeps its digest.
	if c.Scenario != nil {
		data = append(data, "scenario="+c.Scenario.Digest()...)
	}
	return fmt.Sprintf("sha256:%x", sha256.Sum256(data))
}

// SetRecorder attaches (or, with nil, detaches) the black-box flight
// recorder after construction. Construction-time attachment via
// Config.Recorder needs the config digest before the platform exists;
// this ordering — build the platform, derive ConfigDigest, open the
// recorder, attach it — is the one external callers use.
func (p *Platform) SetRecorder(rec *flightrec.Recorder) { p.cfg.Recorder = rec }

// monitorBlob is one runtime monitor's checkpointed state, keyed by
// the monitor's chain name so restore matches it back up.
type monitorBlob struct {
	Name string          `json:"name"`
	Data json.RawMessage `json:"data"`
}

// uavCheckpoint is one UAV's platform-side integration state. The
// vehicle itself (kinematics, battery, sensors) lives in the world
// snapshot; this is everything the platform layered on top.
type uavCheckpoint struct {
	ID              string          `json:"id"`
	Action          int             `json:"action"`
	LastAssessment  json.RawMessage `json:"last_assessment"`
	Uncertainty     float64         `json:"uncertainty"`
	HasUncert       bool            `json:"has_uncert"`
	InMission       bool            `json:"in_mission"`
	Descended       bool            `json:"descended"`
	Rescans         int             `json:"rescans"`
	SwapPending     bool            `json:"swap_pending"`
	SwapLandedAt    float64         `json:"swap_landed_at"`
	ResumePath      []geo.LatLng    `json:"resume_path"`
	LastTelemetryAt float64         `json:"last_telemetry_at"`
	LostLink        bool            `json:"lost_link"`
	MonitorPanicked bool            `json:"monitor_panicked"`
	// Circuit-breaker state (omitted while the breaker has never
	// tripped, keeping chaos-off checkpoints byte-identical to older
	// recordings).
	BreakerFails int           `json:"breaker_fails,omitempty"`
	Quarantined  bool          `json:"quarantined,omitempty"`
	ProbeAt      float64       `json:"probe_at,omitempty"`
	DBRetries    []dbRetry     `json:"db_retries"`
	Monitors     []monitorBlob `json:"monitors"`
}

// PlatformSnapshot is the full checkpoint the flight recorder stores:
// the world (vehicles, RNG streams, clock), the mission plan, every
// technology's incremental state and the platform's own bookkeeping.
type PlatformSnapshot struct {
	Tick         uint64                `json:"tick"`
	ConfigDigest string                `json:"config_digest"`
	World        uavsim.WorldSnapshot  `json:"world"`
	Mission      sar.MissionState      `json:"mission"`
	Avail        sar.AvailabilityState `json:"avail"`
	MissionArea  geo.Polygon           `json:"mission_area"`
	Dispatched   map[string]int        `json:"dispatched"`
	Decision     int                   `json:"decision"`
	Coordinator  eddi.CoordinatorState `json:"coordinator"`
	Security     *security.State       `json:"security,omitempty"`
	IDS          *ids.State            `json:"ids,omitempty"`
	Drops        DropCounters          `json:"drops"`
	Retries      RetryCounters         `json:"retries"`
	UAVs         []uavCheckpoint       `json:"uavs"`
}

// Checkpoint exports the platform's full state. The mission must have
// started and the clock must be quiescent (no delayed frames in
// flight) — the recorder defers cadence checkpoints until both hold.
func (p *Platform) Checkpoint() (*PlatformSnapshot, error) {
	if p.mission == nil {
		return nil, errors.New("platform: checkpoint before StartMission")
	}
	ws, err := p.World.Snapshot()
	if err != nil {
		return nil, err
	}
	s := &PlatformSnapshot{
		Tick:         p.ticks,
		ConfigDigest: p.ConfigDigest(),
		World:        ws,
		Mission:      p.mission.State(),
		Avail:        p.avail.State(),
		MissionArea:  append(geo.Polygon(nil), p.missionArea...),
		Dispatched:   make(map[string]int, len(p.dispatched)),
		Decision:     int(p.decision),
		Coordinator:  p.Coordinator.State(),
		Drops:        p.drops.snapshot(),
		Retries:      p.retries.snapshot(),
	}
	for k, v := range p.dispatched {
		s.Dispatched[k] = v
	}
	if p.Security != nil {
		st := p.Security.State()
		s.Security = &st
	}
	if p.IDS != nil {
		st := p.IDS.State()
		s.IDS = &st
	}
	for _, id := range p.order {
		st := p.states[id]
		assessment, err := json.Marshal(st.lastAssessment)
		if err != nil {
			return nil, fmt.Errorf("platform: checkpoint %s assessment: %w", id, err)
		}
		uc := uavCheckpoint{
			ID:              id,
			Action:          int(st.action),
			LastAssessment:  assessment,
			Uncertainty:     st.uncertainty,
			HasUncert:       st.hasUncert,
			InMission:       st.inMission,
			Descended:       st.descended,
			Rescans:         st.rescans,
			SwapPending:     st.swapPending,
			SwapLandedAt:    st.swapLandedAt,
			ResumePath:      append([]geo.LatLng(nil), st.resumePath...),
			LastTelemetryAt: st.lastTelemetryAt,
			LostLink:        st.lostLink,
			MonitorPanicked: st.monitorPanicked,
			BreakerFails:    st.breakerFails,
			Quarantined:     st.quarantined,
			ProbeAt:         st.probeAt,
			DBRetries:       append([]dbRetry(nil), st.dbRetries...),
		}
		for _, m := range st.chain {
			snap, ok := m.(eddi.Snapshotter)
			if !ok {
				continue
			}
			data, err := snap.SnapshotState()
			if err != nil {
				return nil, fmt.Errorf("platform: checkpoint %s monitor %s: %w", id, m.Name(), err)
			}
			uc.Monitors = append(uc.Monitors, monitorBlob{Name: m.Name(), Data: data})
		}
		s.UAVs = append(s.UAVs, uc)
	}
	return s, nil
}

// drainCap bounds the restore drain loop; the production clock only
// carries short-lived delayed-frame closures, so hitting this means a
// scenario scheduled unbounded recurring work before restoring.
const drainCap = 1 << 20

// RestoreCheckpoint overlays a checkpoint onto this platform. The
// caller must have rebuilt the scenario the way the recorded run began
// — same world/fleet builder and seed, same Config, StartMission over
// the same area, and the same fault schedule registered (faults the
// checkpoint already consumed are dropped here). Pending clock events
// left over from the rebuild's climb-out are drained first; whatever
// state their delivery perturbs is overwritten by the overlay.
func (p *Platform) RestoreCheckpoint(s *PlatformSnapshot) error {
	if s == nil {
		return errors.New("platform: nil checkpoint")
	}
	if p.mission == nil {
		return errors.New("platform: restore before StartMission (rebuild the scenario first)")
	}
	if got := p.ConfigDigest(); s.ConfigDigest != "" && s.ConfigDigest != got {
		return fmt.Errorf("platform: checkpoint config digest %s does not match platform %s",
			s.ConfigDigest, got)
	}
	if len(s.UAVs) != len(p.order) {
		return fmt.Errorf("platform: checkpoint has %d UAVs, platform has %d", len(s.UAVs), len(p.order))
	}
	for i := 0; p.World.Clock.Pending() > 0; i++ {
		if i >= drainCap {
			return errors.New("platform: restore drain did not quiesce the clock")
		}
		p.World.Clock.Step()
	}
	if now := p.World.Clock.Now(); now > s.World.Time {
		return fmt.Errorf("platform: rebuilt scenario at t=%.3f is already past checkpoint t=%.3f",
			now, s.World.Time)
	}
	if err := p.World.RestoreSnapshot(s.World); err != nil {
		return err
	}
	p.ticks = s.Tick
	p.mission = sar.RestoreMission(s.Mission)
	avail, err := sar.RestoreAvailabilityTracker(s.Avail)
	if err != nil {
		return err
	}
	p.avail = avail
	p.missionArea = append(geo.Polygon(nil), s.MissionArea...)
	p.dispatched = make(map[string]int, len(s.Dispatched))
	for k, v := range s.Dispatched {
		p.dispatched[k] = v
	}
	p.decision = conserts.MissionDecision(s.Decision)
	p.Coordinator.Restore(s.Coordinator)
	if p.Security != nil && s.Security != nil {
		p.Security.Restore(*s.Security)
	}
	if p.IDS != nil && s.IDS != nil {
		p.IDS.Restore(*s.IDS)
	}
	p.drops.restore(s.Drops)
	p.retries.restore(s.Retries)
	for _, uc := range s.UAVs {
		st := p.states[uc.ID]
		if st == nil {
			return fmt.Errorf("platform: checkpoint UAV %q not in fleet", uc.ID)
		}
		// Drop any override the drain's side effects may have installed;
		// the colloc monitor blob reinstalls it when a landing is active.
		st.uav.GuidanceOverride = nil
		st.collocCtrl = nil
		st.action = conserts.UAVAction(uc.Action)
		if err := json.Unmarshal(uc.LastAssessment, &st.lastAssessment); err != nil {
			return fmt.Errorf("platform: restore %s assessment: %w", uc.ID, err)
		}
		st.uncertainty = uc.Uncertainty
		st.hasUncert = uc.HasUncert
		st.inMission = uc.InMission
		st.descended = uc.Descended
		st.rescans = uc.Rescans
		st.swapPending = uc.SwapPending
		st.swapLandedAt = uc.SwapLandedAt
		st.resumePath = append([]geo.LatLng(nil), uc.ResumePath...)
		st.lastTelemetryAt = uc.LastTelemetryAt
		st.lostLink = uc.LostLink
		st.monitorPanicked = uc.MonitorPanicked
		st.breakerFails = uc.BreakerFails
		st.quarantined = uc.Quarantined
		st.probeAt = uc.ProbeAt
		st.dbRetries = append(st.dbRetries[:0:0], uc.DBRetries...)
		blobs := make(map[string]json.RawMessage, len(uc.Monitors))
		for _, b := range uc.Monitors {
			blobs[b.Name] = b.Data
		}
		for _, m := range st.chain {
			snap, ok := m.(eddi.Snapshotter)
			if !ok {
				continue
			}
			data, ok := blobs[m.Name()]
			if !ok {
				continue
			}
			if err := snap.RestoreState(data); err != nil {
				return fmt.Errorf("platform: restore %s monitor %s: %w", uc.ID, m.Name(), err)
			}
		}
	}
	return nil
}

// restore overwrites the atomic drop counters from a snapshot.
func (c *dropCounters) restore(s DropCounters) {
	c.database.Store(s.Database)
	c.events.Store(s.Events)
	c.availability.Store(s.Availability)
	c.commands.Store(s.Commands)
	c.mission.Store(s.Mission)
	c.perception.Store(s.Perception)
	c.monitors.Store(s.Monitors)
}

// restore overwrites the atomic retry counters from a snapshot.
func (c *retryCounters) restore(s RetryCounters) {
	c.scheduled.Store(s.Scheduled)
	c.succeeded.Store(s.Succeeded)
	c.abandoned.Store(s.Abandoned)
}

// tickUAVRecord is one vehicle's line in the per-tick black-box entry.
// The schema is encoded by appendTickRecord on the hot path; this
// struct is the decode side and the documentation of record shape.
type tickUAVRecord struct {
	ID         string  `json:"id"`
	Mode       string  `json:"mode"`
	Action     string  `json:"action"`
	BatteryPct float64 `json:"battery_pct"`
	AltitudeM  float64 `json:"altitude_m"`
}

// tickRecord is the per-tick telemetry summary appended to the
// recording after every completed tick.
type tickRecord struct {
	Tick     uint64          `json:"tick"`
	Time     float64         `json:"time"`
	Decision string          `json:"decision"`
	UAVs     []tickUAVRecord `json:"uavs"`
}

// busRecord summarizes bus/broker traffic cumulatively at a tick.
// Encoded by appendBusRecord on the hot path.
type busRecord struct {
	Tick           uint64 `json:"tick"`
	Published      uint64 `json:"published"`
	Delivered      uint64 `json:"delivered"`
	FilterConsumed uint64 `json:"filter_consumed"`
	DepthExceeded  uint64 `json:"depth_exceeded"`
	TelemetryDrops uint64 `json:"telemetry_drops"`
}

// appendJSONString appends s as a JSON string literal. Record strings
// are short identifiers (UAV ids, mode/action/decision names); anything
// needing escapes or non-ASCII falls back to the stdlib encoder.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x7f || c == '"' || c == '\\' {
			q, err := json.Marshal(s)
			if err != nil {
				// A Go string never fails to marshal.
				panic(err)
			}
			return append(b, q...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// appendRecTime appends the JSON encoding of simulation time t,
// memoized across the records of one tick.
func (p *Platform) appendRecTime(b []byte, t float64) []byte {
	if t != p.recTimeVal || len(p.recTimeBuf) == 0 {
		p.recTimeVal = t
		p.recTimeBuf = strconv.AppendFloat(p.recTimeBuf[:0], t, 'g', -1, 64)
	}
	return append(b, p.recTimeBuf...)
}

// appendTickRecord encodes the tickRecord schema without reflection or
// allocation: the recording runs every tick, so this is the black box's
// hot path. Output is plain JSON that unmarshals into tickRecord
// (TestAppendRecordsMatchSchema pins the equivalence).
func (p *Platform) appendTickRecord(b []byte, now float64) []byte {
	b = append(b, `{"tick":`...)
	b = strconv.AppendUint(b, p.ticks, 10)
	b = append(b, `,"time":`...)
	b = p.appendRecTime(b, now)
	b = append(b, `,"decision":`...)
	b = appendJSONString(b, p.decision.String())
	b = append(b, `,"uavs":[`...)
	for i, id := range p.order {
		if i > 0 {
			b = append(b, ',')
		}
		st := p.states[id]
		b = append(b, `{"id":`...)
		b = appendJSONString(b, id)
		b = append(b, `,"mode":`...)
		b = appendJSONString(b, st.uav.Mode().String())
		b = append(b, `,"action":`...)
		b = appendJSONString(b, st.action.String())
		b = append(b, `,"battery_pct":`...)
		b = strconv.AppendFloat(b, st.uav.Battery.ChargePct, 'g', -1, 64)
		b = append(b, `,"altitude_m":`...)
		b = strconv.AppendFloat(b, st.uav.AltitudeM(), 'g', -1, 64)
		b = append(b, '}')
	}
	return append(b, "]}"...)
}

// appendBusRecord encodes the busRecord schema; same hot-path contract
// as appendTickRecord.
func (p *Platform) appendBusRecord(b []byte) []byte {
	bs := p.World.Bus.Stats()
	b = append(b, `{"tick":`...)
	b = strconv.AppendUint(b, p.ticks, 10)
	b = append(b, `,"published":`...)
	b = strconv.AppendUint(b, bs.Published, 10)
	b = append(b, `,"delivered":`...)
	b = strconv.AppendUint(b, bs.Delivered, 10)
	b = append(b, `,"filter_consumed":`...)
	b = strconv.AppendUint(b, bs.FilterConsumed, 10)
	b = append(b, `,"depth_exceeded":`...)
	b = strconv.AppendUint(b, bs.DepthExceeded, 10)
	b = append(b, `,"telemetry_drops":`...)
	b = strconv.AppendUint(b, p.World.Drops().TelemetryPublish, 10)
	return append(b, '}')
}

// faultRecord marks a fault, attack or contingency the platform saw.
type faultRecord struct {
	Time   float64 `json:"time"`
	UAV    string  `json:"uav"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail"`
}

// adviceRecord marks a fused flight-action change.
type adviceRecord struct {
	Time   float64 `json:"time"`
	UAV    string  `json:"uav"`
	Action string  `json:"action"`
}

// degradeRecorder demotes the flight recorder to a counting no-op
// after a persistent write failure. Recording is forensic, not
// flight-critical: a dead disk must not abort the mission, so instead
// of propagating the writer's sticky error out of Tick the platform
// latches degraded mode, emits one incident event into the EDDI
// stream, and from then on only counts the operations it can no
// longer persist (surfaced via Status and observability).
func (p *Platform) degradeRecorder(now float64, err error) {
	if p.recDegraded {
		return
	}
	p.recDegraded = true
	p.recErr = err
	if p.obs != nil {
		p.obs.recorderDegraded().Inc()
	}
	if len(p.order) > 0 {
		ev := eddi.Event{
			Kind: eddi.KindSafety, UAV: p.order[0], Time: now, Severity: 0.35,
			Summary: "flight recorder degraded: " + err.Error() + "; mission continues without black-box recording",
		}
		countIn(&p.drops.events, p.Coordinator.Emit(ev))
	}
}

// recSkip counts n recording operations suppressed while degraded.
func (p *Platform) recSkip(n uint64) {
	p.recSkipped += n
	if p.obs != nil {
		p.obs.recorderSkipped().Add(n)
	}
}

// recordTick appends the per-tick summary, the bus summary and — every
// SnapshotEvery ticks, deferred until the clock is quiescent — a full
// checkpoint. Called by Tick after the pipeline completes; recording
// runs entirely in the serial phase, so no synchronization is needed.
// Writer failures degrade the recorder (see degradeRecorder) instead
// of failing the tick; only checkpoint-serialization errors — platform
// state bugs, not storage faults — still surface to the caller.
func (p *Platform) recordTick() error {
	rec := p.cfg.Recorder
	now := p.World.Clock.Now()
	if p.recDegraded {
		p.recSkip(2) // tick + bus summaries
		return nil
	}
	// The writer copies payloads into its own buffer, so recBuf is
	// reusable immediately after each Record call.
	p.recBuf = p.appendTickRecord(p.recBuf[:0], now)
	if err := rec.RecordTick(p.recBuf); err != nil {
		p.degradeRecorder(now, err)
		return nil
	}
	p.recBuf = p.appendBusRecord(p.recBuf[:0])
	if err := rec.RecordBus(p.recBuf); err != nil {
		p.degradeRecorder(now, err)
		return nil
	}
	if rec.ShouldSnapshot(p.ticks) {
		p.snapOwed = true
	}
	// A checkpoint needs a quiescent clock (delayed link frames cannot
	// serialize); when the cadence lands on a busy tick the snapshot is
	// owed and taken on the next quiet one.
	if p.snapOwed && p.mission != nil && p.World.Clock.Pending() == 0 {
		snap, err := p.Checkpoint()
		if err != nil {
			return err
		}
		state, err := json.Marshal(snap)
		if err != nil {
			return err
		}
		if err := rec.RecordSnapshot(flightrec.Snapshot{Tick: p.ticks, Time: now, State: state}); err != nil {
			p.degradeRecorder(now, err)
			return nil
		}
		p.snapOwed = false
	}
	return nil
}

// appendEventRecord encodes an eddi.Event with encoding/json's field
// names and sorted Data keys, without reflection — events fire every
// tick, so this shares the hot-path contract of appendTickRecord.
func (p *Platform) appendEventRecord(b []byte, ev eddi.Event) []byte {
	b = append(b, `{"Kind":`...)
	b = strconv.AppendInt(b, int64(ev.Kind), 10)
	b = append(b, `,"UAV":`...)
	b = appendJSONString(b, ev.UAV)
	b = append(b, `,"Time":`...)
	b = p.appendRecTime(b, ev.Time)
	b = append(b, `,"Severity":`...)
	b = strconv.AppendFloat(b, ev.Severity, 'g', -1, 64)
	b = append(b, `,"Summary":`...)
	b = appendJSONString(b, ev.Summary)
	b = append(b, `,"Data":`...)
	if ev.Data == nil {
		return append(b, "null}"...)
	}
	p.recKeys = p.recKeys[:0]
	for k := range ev.Data {
		p.recKeys = append(p.recKeys, k)
	}
	slices.Sort(p.recKeys)
	b = append(b, '{')
	for i, k := range p.recKeys {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, k)
		b = append(b, ':')
		b = appendJSONString(b, ev.Data[k])
	}
	return append(b, "}}"...)
}

// recordEvent appends an EDDI event to the recording (serial apply
// phase). A write error degrades the recorder rather than poisoning
// the next RecordTick through the writer's sticky error.
func (p *Platform) recordEvent(ev eddi.Event) {
	rec := p.cfg.Recorder
	if rec == nil {
		return
	}
	if p.recDegraded {
		p.recSkip(1)
		return
	}
	p.recBuf = p.appendEventRecord(p.recBuf[:0], ev)
	if err := rec.RecordEvent(p.recBuf); err != nil {
		p.degradeRecorder(ev.Time, err)
	}
}

// recordFault marks a fault/attack/contingency in the recording.
func (p *Platform) recordFault(now float64, uav, kind, detail string) {
	rec := p.cfg.Recorder
	if rec == nil {
		return
	}
	if p.recDegraded {
		p.recSkip(1)
		return
	}
	if data, err := json.Marshal(faultRecord{Time: now, UAV: uav, Kind: kind, Detail: detail}); err == nil {
		if err := rec.RecordFault(data); err != nil {
			p.degradeRecorder(now, err)
		}
	}
}

// recordAdvice marks a fused flight-action change in the recording.
func (p *Platform) recordAdvice(now float64, uav, action string) {
	rec := p.cfg.Recorder
	if rec == nil {
		return
	}
	if p.recDegraded {
		p.recSkip(1)
		return
	}
	if data, err := json.Marshal(adviceRecord{Time: now, UAV: uav, Action: action}); err == nil {
		if err := rec.RecordAdvice(data); err != nil {
			p.degradeRecorder(now, err)
		}
	}
}
