package platform

import (
	"strings"
	"testing"

	"sesame/internal/detection"
	"sesame/internal/eddi"
	"sesame/internal/geo"
	"sesame/internal/linksim"
	"sesame/internal/sar"
	"sesame/internal/uavsim"
)

// attachLinkLayer wraps the platform's bus and alert broker in a
// linksim fault layer routed per UAV, the way the degraded-comms
// experiments do.
func attachLinkLayer(p *Platform) *linksim.Layer {
	layer := linksim.New(p.World.Clock, "degraded")
	layer.AttachBus(p.World.Bus)
	layer.AttachBroker(p.Broker, func(topic string) string {
		if uav, ok := strings.CutPrefix(topic, "alerts/ids/"); ok {
			return uav
		}
		return ""
	})
	return layer
}

// TestDegradedCommsDeterministicReplay is the acceptance scenario: a
// duplicating link profile on every UAV plus a 30 s full link loss on
// u2 mid-mission. Two runs must be bit-identical (and identical across
// scheduler pool sizes), u2's status must show stale telemetry age,
// the lost-link watchdog must fire the RTB contingency, and the
// mission must complete with every loss accounted for in the link
// stats.
//
// The background profile deliberately uses duplication only: any
// impairment that lets a GPS fix arrive while the odometry cache is a
// tick stale (dropping, delaying or reordering a status frame) moves
// the tracks >10 m apart at cruise speed, which the IDS correctly
// flags as spoofing — a different contingency (collaborative landing)
// than the one under test here. That interplay is exercised in the
// degraded-comms experiment matrix instead.
func TestDegradedCommsDeterministicReplay(t *testing.T) {
	type outcome struct {
		digest     string
		maxAgeU2   float64
		sawLost    bool
		finalU2    uavsim.FlightMode
		linkStats  map[string]linksim.LinkStats
		events     int
		complete   bool
		watchdogOK bool
	}
	run := func(workers int) outcome {
		cfg := DefaultConfig()
		cfg.Workers = workers
		p := buildPlatform(t, cfg, 21, 0)
		layer := attachLinkLayer(p)
		profile := linksim.Profile{DupProb: 0.1}
		for _, id := range []string{"u1", "u2", "u3"} {
			layer.Link(id).SetProfile(profile)
		}
		if err := p.StartMission(missionArea(350)); err != nil {
			t.Fatal(err)
		}
		now := p.World.Clock.Now()
		layer.Link("u2").AddOutage(now+30, now+60)

		var out outcome
		deadline := now + 1800
		for p.World.Clock.Now() < deadline {
			if err := p.Tick(); err != nil {
				t.Fatal(err)
			}
			st := p.Status()
			for _, us := range st.UAVs {
				if us.ID != "u2" {
					continue
				}
				if us.TelemetryAgeS > out.maxAgeU2 {
					out.maxAgeU2 = us.TelemetryAgeS
				}
				if us.LinkLost {
					out.sawLost = true
				}
			}
			if p.missionComplete() {
				out.complete = true
				break
			}
		}
		for _, ev := range p.Coordinator.History("u2") {
			if strings.HasPrefix(ev.Summary, "lost link:") {
				out.watchdogOK = true
			}
		}
		out.digest = digestPlatform(t, p)
		out.finalU2 = p.World.UAVs()[1].Mode()
		out.linkStats = layer.Stats()
		out.events = len(p.Coordinator.History(""))
		return out
	}

	first := run(1)
	replay := run(1)
	if first.digest != replay.digest {
		t.Errorf("same seed + fault schedule produced different runs: %s vs %s", first.digest, replay.digest)
	}
	pooled := run(8)
	if first.digest != pooled.digest {
		t.Errorf("worker pool diverged under link faults: %s vs %s", first.digest, pooled.digest)
	}

	if !first.complete {
		t.Error("mission did not complete under degraded comms")
	}
	if first.maxAgeU2 <= 15 {
		t.Errorf("u2 max telemetry age = %.1f s, want > lost-link window", first.maxAgeU2)
	}
	if !first.sawLost {
		t.Error("u2 never showed LinkLost in status")
	}
	if !first.watchdogOK {
		t.Error("lost-link watchdog event missing from u2 history")
	}
	if first.finalU2 != uavsim.ModeLanded {
		t.Errorf("u2 final mode = %v, want landed after RTB contingency", first.finalU2)
	}
	if first.events == 0 {
		t.Error("no events recorded")
	}
	for id, s := range first.linkStats {
		if s.Offered+s.Duplicated != s.Delivered+s.Dropped+s.Rejected+s.Pending {
			t.Errorf("link %s loses frames silently: %+v", id, s)
		}
	}
	if u2 := first.linkStats["u2"]; u2.OutageDropped == 0 {
		t.Errorf("u2 outage dropped nothing: %+v", u2)
	}
}

// TestLostLinkWatchdogLandsInPlace covers the conservative contingency:
// with LostLinkLand set and a permanent link loss, the watchdog lands
// the vehicle where it is and the link stays flagged lost.
func TestLostLinkWatchdogLandsInPlace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LostLinkLand = true
	p := buildPlatform(t, cfg, 31, 0)
	layer := attachLinkLayer(p)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	t0 := p.World.Clock.Now()
	layer.Link("u2").DownAt(t0 + 10)
	if err := p.RunMission(900); err != nil {
		t.Fatal(err)
	}
	st := p.states["u2"]
	if !st.lostLink {
		t.Error("u2 lostLink must stay latched under a permanent outage")
	}
	if mode := st.uav.Mode(); mode != uavsim.ModeLanded {
		t.Errorf("u2 mode = %v, want landed in place", mode)
	}
	// Landing in place, the vehicle must not have come home.
	home := st.uav.Home()
	if d := geo.Haversine(st.uav.TruePosition(), home); d < 50 {
		t.Errorf("u2 landed %0.f m from base; land-in-place expected far from home", d)
	}
	found := false
	for _, ev := range p.Coordinator.History("u2") {
		if strings.HasPrefix(ev.Summary, "lost link:") && strings.Contains(ev.Summary, "land in place") {
			found = true
		}
	}
	if !found {
		t.Error("land-in-place watchdog event missing")
	}
	status := p.Status()
	for _, us := range status.UAVs {
		if us.ID == "u2" {
			if !us.LinkLost || us.TelemetryAgeS <= cfg.LostLinkWindowS {
				t.Errorf("u2 status = lost:%v age:%.0f, want latched stale link", us.LinkLost, us.TelemetryAgeS)
			}
		}
	}
}

// panicMonitor deliberately blows up one UAV's chain mid-mission.
type panicMonitor struct {
	uav   string
	after float64
}

func (m *panicMonitor) Name() string { return "panicky" }

func (m *panicMonitor) Observe(s eddi.Snapshot) ([]eddi.Event, eddi.Advice, error) {
	if m.uav == "u2" && s.Time > m.after {
		panic("synthetic monitor bug for " + m.uav)
	}
	return nil, eddi.Advice{}, nil
}

// TestMonitorPanicIsolated proves one crashing monitor no longer kills
// the scheduler: the panic becomes a counted drop, a single fail-safe
// event, and a Hold for the affected UAV, while the rest of the fleet
// flies on — including on the concurrent worker pool.
func TestMonitorPanicIsolated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 8
	cfg.ExtraMonitors = []func(uav string) (eddi.Runtime, error){
		func(uav string) (eddi.Runtime, error) { return &panicMonitor{uav: uav, after: 60}, nil },
	}
	p := buildPlatform(t, cfg, 41, 0)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	drops := p.Drops()
	if drops.Monitors == 0 {
		t.Error("monitor panics were not counted")
	}
	panics := 0
	for _, ev := range p.Coordinator.History("u2") {
		if strings.Contains(ev.Summary, "monitor chain panic") {
			panics++
		}
	}
	if panics != 1 {
		t.Errorf("panic event emitted %d times, want once", panics)
	}
	if mode := p.states["u2"].uav.Mode(); mode != uavsim.ModeHold {
		t.Errorf("u2 mode = %v, want fail-safe hold", mode)
	}
	// The rest of the fleet is unaffected.
	for _, id := range []string{"u1", "u3"} {
		if mode := p.states[id].uav.Mode(); mode != uavsim.ModeMission {
			t.Errorf("%s mode = %v, want mission", id, mode)
		}
	}
	if total := drops.Total(); total != drops.Monitors {
		t.Errorf("unexpected non-monitor drops: %+v", drops)
	}
}

// severityBomb emits an event the coordinator must refuse (severity
// outside [0,1]) — the events-drop induction.
type severityBomb struct{ fired bool }

func (m *severityBomb) Name() string { return "bomb" }

func (m *severityBomb) Observe(s eddi.Snapshot) ([]eddi.Event, eddi.Advice, error) {
	if m.fired || s.UAV != "u1" {
		return nil, eddi.Advice{}, nil
	}
	m.fired = true
	return []eddi.Event{{
		Kind: eddi.KindSafety, UAV: s.UAV, Time: s.Time,
		Severity: 2, Summary: "invalid severity",
	}}, eddi.Advice{}, nil
}

// TestDropCountersAllCategories drives at least one drop through every
// DropCounters category end-to-end and checks Status.Drops reflects
// each one.
func TestDropCountersAllCategories(t *testing.T) {
	var total DropCounters

	// Platform A: events (invalid severity), perception (corrupt frame),
	// database (permanently unavailable store for u3, retries exhausted),
	// availability (tracker missing a crashed UAV).
	cfg := DefaultConfig()
	cfg.ExtraMonitors = []func(uav string) (eddi.Runtime, error){
		func(uav string) (eddi.Runtime, error) { return &severityBomb{}, nil },
	}
	a := buildPlatform(t, cfg, 51, 0)
	if err := a.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	a.DB.SetFaultHook(func(uav string) error {
		if uav == "u3" {
			return ErrUnavailable
		}
		return nil
	})
	// Shrink the availability tracker behind the platform's back so the
	// crash-path MarkDown has an unknown UAV to fail on.
	tr, err := sar.NewAvailabilityTracker(a.World.Clock.Now(), []string{"u1", "u3"})
	if err != nil {
		t.Fatal(err)
	}
	a.avail = tr
	now := a.World.Clock.Now()
	for idx := 0; idx < 3; idx++ {
		if err := a.World.ScheduleFault(uavsim.RotorFailureFault(now+10+float64(idx), "u2", idx)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
		if i == 5 {
			a.states["u1"].perceptionMon.stage(&detection.Frame{UAV: "u1", Features: []float64{1}})
		}
	}
	stA := a.Status()
	if stA.Drops.Events == 0 {
		t.Errorf("events drop not induced: %+v", stA.Drops)
	}
	if stA.Drops.Perception == 0 {
		t.Errorf("perception drop not induced: %+v", stA.Drops)
	}
	if stA.Drops.Database == 0 {
		t.Errorf("database drop not induced: %+v", stA.Drops)
	}
	if stA.Drops.Availability == 0 {
		t.Errorf("availability drop not induced: %+v", stA.Drops)
	}
	if stA.DBRetries.Scheduled == 0 || stA.DBRetries.Abandoned == 0 {
		t.Errorf("retry machinery not exercised: %+v", stA.DBRetries)
	}
	total.Events += stA.Drops.Events
	total.Perception += stA.Drops.Perception
	total.Database += stA.Drops.Database
	total.Availability += stA.Drops.Availability

	// Platform B (baseline, solo): a rotor failure during the on-ground
	// battery swap makes the redeploy TakeOff fail — a commands drop.
	wb := uavsim.NewWorld(origin, 52)
	home := geo.Destination(origin, 200, 20)
	if _, err := wb.AddUAV(uavsim.UAVConfig{ID: "solo", Home: home, CruiseSpeedMS: 12}); err != nil {
		t.Fatal(err)
	}
	bcfg := DefaultConfig()
	bcfg.SESAME = false
	b, err := New(wb, nil, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	if err := b.StartMission(missionArea(200)); err != nil {
		t.Fatal(err)
	}
	if err := b.World.ScheduleFault(uavsim.BatteryCollapseFault(b.World.Clock.Now()+30, "solo", 70, 40)); err != nil {
		t.Fatal(err)
	}
	stSolo := b.states["solo"]
	broke := false
	for i := 0; i < 1200 && b.Drops().Commands == 0; i++ {
		if err := b.Tick(); err != nil {
			t.Fatal(err)
		}
		if !broke && stSolo.swapPending && stSolo.uav.Mode() == uavsim.ModeLanded {
			broke = true
			if err := stSolo.uav.FailRotor(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !broke {
		t.Fatal("battery-swap scenario never landed for the swap")
	}
	stB := b.Status()
	if stB.Drops.Commands == 0 {
		t.Errorf("commands drop not induced: %+v", stB.Drops)
	}
	total.Commands += stB.Drops.Commands

	// Platform C (solo, permanent link loss): the watchdog's task
	// redistribution has no survivors to hand the work to — a mission
	// drop.
	wc := uavsim.NewWorld(origin, 53)
	if _, err := wc.AddUAV(uavsim.UAVConfig{ID: "solo", Home: home, CruiseSpeedMS: 12}); err != nil {
		t.Fatal(err)
	}
	c, err := New(wc, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	layer := attachLinkLayer(c)
	if err := c.StartMission(missionArea(200)); err != nil {
		t.Fatal(err)
	}
	layer.Link("solo").DownAt(c.World.Clock.Now() + 5)
	for i := 0; i < 60; i++ {
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	stC := c.Status()
	if stC.Drops.Mission == 0 {
		t.Errorf("mission drop not induced: %+v", stC.Drops)
	}
	total.Mission += stC.Drops.Mission

	if total.Database == 0 || total.Events == 0 || total.Availability == 0 ||
		total.Commands == 0 || total.Mission == 0 || total.Perception == 0 {
		t.Errorf("not every category induced: %+v", total)
	}
}

// TestDBRetryRecoversFromTransientOutage proves a short database
// brownout loses nothing: every failed write is retried with backoff
// until it lands, and no drop is counted.
func TestDBRetryRecoversFromTransientOutage(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 61, 0)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	t0 := p.World.Clock.Now()
	clock := p.World.Clock
	p.DB.SetFaultHook(func(uav string) error {
		if now := clock.Now(); now >= t0 && now < t0+5 {
			return ErrUnavailable
		}
		return nil
	})
	for i := 0; i < 20; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Status()
	if st.DBRetries.Scheduled == 0 {
		t.Fatal("brownout scheduled no retries")
	}
	if st.DBRetries.Succeeded != st.DBRetries.Scheduled {
		t.Errorf("retries: %+v, want all scheduled writes to succeed", st.DBRetries)
	}
	if st.DBRetries.Abandoned != 0 || st.Drops.Database != 0 {
		t.Errorf("transient outage lost data: retries %+v drops %+v", st.DBRetries, st.Drops)
	}
}

// TestNoFaultRunsUnchanged pins the zero-cost property: with a link
// layer attached but no profiles or outages configured, a mission run
// digests identically to one without any layer at all.
func TestNoFaultRunsUnchanged(t *testing.T) {
	run := func(attach bool) string {
		p := buildPlatform(t, DefaultConfig(), 71, 0)
		if attach {
			layer := attachLinkLayer(p)
			// Links exist but are perfect.
			layer.Link("u1")
			layer.Link("u2")
			layer.Link("u3")
		}
		if err := p.StartMission(missionArea(300)); err != nil {
			t.Fatal(err)
		}
		if err := p.RunMission(1200); err != nil {
			t.Fatal(err)
		}
		return digestPlatform(t, p)
	}
	if plain, wrapped := run(false), run(true); plain != wrapped {
		t.Errorf("perfect link layer changed the run: %s vs %s", plain, wrapped)
	}
}
