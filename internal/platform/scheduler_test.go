package platform

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"sesame/internal/eddi"
	"sesame/internal/geo"
	"sesame/internal/uavsim"
)

// digestPlatform hashes everything observable about a finished run:
// the Fig. 4 status, the mission decision, the full event history and
// the fleet availability.
func digestPlatform(t *testing.T, p *Platform) string {
	t.Helper()
	blob := struct {
		Status   Status
		Decision string
		History  interface{}
	}{p.Status(), p.Decision().String(), p.Coordinator.History("")}
	data, err := json.Marshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if p.avail != nil {
		if a, err := p.Availability(); err == nil {
			data = append(data, []byte(fmt.Sprintf("avail=%.12f", a))...)
		}
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

// schedulerScenarios are the experiment regimes the determinism check
// covers: nominal, battery events under both policies, spoofing,
// perception-driven descent, rotor loss, comms loss, combined stress
// and night/thermal operations.
func schedulerScenarios() []struct {
	name    string
	cfg     func() Config
	seed    int64
	persons int
	faults  func(p *Platform)
	horizon float64
} {
	return []struct {
		name    string
		cfg     func() Config
		seed    int64
		persons int
		faults  func(p *Platform)
		horizon float64
	}{
		{"nominal", DefaultConfig, 2, 0, nil, 1800},
		{"battery-sesame", DefaultConfig, 3, 0, func(p *Platform) {
			at := p.World.Clock.Now() + 60
			_ = p.World.ScheduleFault(uavsim.BatteryCollapseFault(at, "u1", 70, 40))
		}, 1200},
		{"battery-baseline", func() Config { c := DefaultConfig(); c.SESAME = false; return c }, 3, 0, func(p *Platform) {
			at := p.World.Clock.Now() + 60
			_ = p.World.ScheduleFault(uavsim.BatteryCollapseFault(at, "u1", 70, 40))
		}, 1200},
		{"spoofing", DefaultConfig, 4, 0, func(p *Platform) {
			at := p.World.Clock.Now() + 30
			_ = p.World.ScheduleFault(uavsim.GPSSpoofFault(at, "u2", 135, 3))
		}, 1500},
		{"perception-descend", DefaultConfig, 5, 12, nil, 900},
		{"rotor-loss", DefaultConfig, 10, 0, func(p *Platform) {
			at := p.World.Clock.Now() + 30
			_ = p.World.ScheduleFault(uavsim.RotorFailureFault(at, "u3", 1))
		}, 1200},
		{"combined-stress", DefaultConfig, 15, 0, func(p *Platform) {
			now := p.World.Clock.Now()
			_ = p.World.ScheduleFault(uavsim.BatteryCollapseFault(now+50, "u1", 70, 40))
			_ = p.World.ScheduleFault(uavsim.GPSSpoofFault(now+40, "u2", 135, 3))
		}, 1500},
		{"night-thermal", func() Config {
			c := DefaultConfig()
			c.Visibility = 0.3
			c.SurveyAltitudeM = 30
			return c
		}, 16, 10, nil, 900},
	}
}

// TestSchedulerDeterminism proves the concurrent fleet scheduler is
// bit-identical to the serial path: every scenario must produce the
// same status, decision, event history and availability whether the
// observe phase runs inline (Workers=1) or on a worker pool
// (Workers=8). Run with -race, this also exercises the pool for data
// races.
func TestSchedulerDeterminism(t *testing.T) {
	for _, sc := range schedulerScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			digests := make(map[int]string, 2)
			for _, workers := range []int{1, 8} {
				cfg := sc.cfg()
				cfg.Workers = workers
				p := buildPlatform(t, cfg, sc.seed, sc.persons)
				if err := p.StartMission(missionArea(350)); err != nil {
					t.Fatal(err)
				}
				if sc.faults != nil {
					sc.faults(p)
				}
				if err := p.RunMission(sc.horizon); err != nil {
					t.Fatal(err)
				}
				digests[workers] = digestPlatform(t, p)
			}
			if digests[1] != digests[8] {
				t.Errorf("scheduler output diverges: serial %s != pooled %s", digests[1], digests[8])
			}
		})
	}
}

// TestMonitorRegistry checks the per-UAV chain composition for both
// policies and the ExtraMonitors extension point.
func TestMonitorRegistry(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 1, 0)
	want := []string{"colloc", "safedrones", "safeml", "sinadra"}
	got := p.Monitors("u1")
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("SESAME chain = %v, want %v", got, want)
	}
	if p.Monitors("nope") != nil {
		t.Error("unknown UAV must return nil")
	}

	base := DefaultConfig()
	base.SESAME = false
	pb := buildPlatform(t, base, 1, 0)
	wantB := []string{"colloc", "safedrones", "baseline"}
	if got := pb.Monitors("u2"); fmt.Sprint(got) != fmt.Sprint(wantB) {
		t.Errorf("baseline chain = %v, want %v", got, wantB)
	}
}

// noteMonitor is a trivial custom monitor used to test ExtraMonitors.
type noteMonitor struct{ uav string }

func (m *noteMonitor) Name() string { return "note" }

func (m *noteMonitor) Observe(s eddi.Snapshot) ([]eddi.Event, eddi.Advice, error) {
	return []eddi.Event{{
		Kind: eddi.KindSafety, UAV: s.UAV, Time: s.Time,
		Severity: 0.1, Summary: "note: observed " + m.uav,
	}}, eddi.Advice{}, nil
}

func TestExtraMonitors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExtraMonitors = []func(uav string) (eddi.Runtime, error){
		func(uav string) (eddi.Runtime, error) { return &noteMonitor{uav: uav}, nil },
	}
	p := buildPlatform(t, cfg, 7, 0)
	chain := p.Monitors("u1")
	if len(chain) == 0 || chain[len(chain)-1] != "note" {
		t.Fatalf("custom monitor not appended: %v", chain)
	}
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	found := false
	for _, ev := range p.Coordinator.History("u1") {
		if strings.HasPrefix(ev.Summary, "note:") {
			found = true
			break
		}
	}
	if !found {
		t.Error("custom monitor events were not emitted")
	}

	bad := DefaultConfig()
	bad.ExtraMonitors = []func(uav string) (eddi.Runtime, error){
		func(uav string) (eddi.Runtime, error) { return nil, fmt.Errorf("boom") },
	}
	w := uavsim.NewWorld(origin, 1)
	if _, err := w.AddUAV(uavsim.UAVConfig{ID: "u1", Home: origin}); err != nil {
		t.Fatal(err)
	}
	if _, err := New(w, nil, bad); err == nil {
		t.Error("failing monitor builder must fail New")
	}
}

// TestDropCountersSurfaced proves the previously-silent data-path
// failures are counted and exposed: a platform configured with a
// public (forbidden) database origin has every telemetry write
// rejected, and the rejections must show up in Status.
func TestDropCountersSurfaced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Origin = "203.0.113.5" // public address: Database rejects it
	p := buildPlatform(t, cfg, 6, 0)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Status()
	// 3 UAVs x 2 writes x 10 ticks.
	if st.Drops.Database != 60 {
		t.Errorf("Status.Drops.Database = %d, want 60", st.Drops.Database)
	}
	if got := p.Drops(); got != st.Drops {
		t.Errorf("Drops() = %+v disagrees with Status %+v", got, st.Drops)
	}
	if st.Drops.Total() != st.Drops.Database {
		t.Errorf("unexpected non-database drops: %+v", st.Drops)
	}

	// A loopback origin keeps the path clean.
	clean := buildPlatform(t, DefaultConfig(), 6, 0)
	if err := clean.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := clean.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if total := clean.Drops().Total(); total != 0 {
		t.Errorf("clean run dropped %d operations: %+v", total, clean.Drops())
	}
}

// TestLastUAVCrash drives a single-vehicle mission into a crash: with
// nobody left to take over there is no redistribution (the assignment
// guard), the mission ends, and the run must terminate cleanly.
func TestLastUAVCrash(t *testing.T) {
	w := uavsim.NewWorld(origin, 9)
	home := geo.Destination(origin, 200, 20)
	if _, err := w.AddUAV(uavsim.UAVConfig{ID: "solo", Home: home, CruiseSpeedMS: 12}); err != nil {
		t.Fatal(err)
	}
	p, err := New(w, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	if err := p.StartMission(missionArea(200)); err != nil {
		t.Fatal(err)
	}
	// Fail three rotors: a quad cannot reconfigure, it crashes.
	now := p.World.Clock.Now()
	for idx := 0; idx < 3; idx++ {
		if err := p.World.ScheduleFault(uavsim.RotorFailureFault(now+20+float64(idx), "solo", idx)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.RunMission(600); err != nil {
		t.Fatalf("RunMission after last-UAV crash: %v", err)
	}
	if mode := w.UAVs()[0].Mode(); mode != uavsim.ModeCrashed {
		t.Fatalf("solo UAV mode = %v, want crashed", mode)
	}
	// The crashed UAV keeps its assignment: nobody survived to take it.
	if _, ok := p.Mission().Assignments["solo"]; !ok {
		t.Error("last UAV's assignment must not be redistributed")
	}
	if !p.missionComplete() {
		t.Error("mission must read complete after the only UAV crashed")
	}
	// RunMission stops on the crash tick; advance the clock so the
	// outage accumulates measurable downtime.
	for i := 0; i < 30; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if a, err := p.UAVAvailability("solo"); err != nil {
		t.Fatal(err)
	} else if a >= 1 {
		t.Errorf("availability = %.3f, want < 1 after crash", a)
	}
}

// TestMissionCompleteDuringSwap holds the mission open while a baseline
// battery swap is pending: a UAV sitting landed at base mid-swap is
// not "done", and the mission must resume and finish afterwards.
func TestMissionCompleteDuringSwap(t *testing.T) {
	w := uavsim.NewWorld(origin, 8)
	home := geo.Destination(origin, 200, 20)
	if _, err := w.AddUAV(uavsim.UAVConfig{ID: "solo", Home: home, CruiseSpeedMS: 12}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SESAME = false
	p, err := New(w, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	if err := p.StartMission(missionArea(200)); err != nil {
		t.Fatal(err)
	}
	at := p.World.Clock.Now() + 30
	if err := p.World.ScheduleFault(uavsim.BatteryCollapseFault(at, "solo", 70, 40)); err != nil {
		t.Fatal(err)
	}
	st := p.states["solo"]
	sawPendingOnGround := false
	for i := 0; i < 1200; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
		if st.swapPending && st.uav.Mode() == uavsim.ModeLanded {
			sawPendingOnGround = true
			if p.missionComplete() {
				t.Fatal("missionComplete true while a battery swap is pending")
			}
		}
		if sawPendingOnGround && p.missionComplete() {
			break
		}
	}
	if !sawPendingOnGround {
		t.Fatal("scenario never reached the landed-with-pending-swap state")
	}
	if !p.missionComplete() {
		t.Error("mission must complete after the swap resumes and finishes")
	}
	if st.swapPending {
		t.Error("swap must have been completed")
	}
}
