package platform

import "sesame/internal/eddi"

// baselineMonitor is the without-SESAME reactive policy of §V-A as a
// runtime monitor: it simply forwards the reliability monitor's raw
// proposal (abort to base on the first battery anomaly, emergency-land
// past the threshold). The battery-swap ground procedure it triggers is
// executed by the scheduler's apply phase, which owns all flight
// commands.
type baselineMonitor struct {
	st *uavState
}

func (m *baselineMonitor) Name() string { return "baseline" }

func (m *baselineMonitor) Observe(s eddi.Snapshot) ([]eddi.Event, eddi.Advice, error) {
	switch s.Derived.SafetyAdvice {
	case eddi.AdviceReturnToBase:
		return nil, eddi.Advice{
			Kind:   eddi.AdviceReturnToBase,
			Reason: "reactive baseline: battery anomaly, abort for swap",
		}, nil
	case eddi.AdviceEmergencyLand:
		return nil, eddi.Advice{
			Kind:     eddi.AdviceEmergencyLand,
			Reason:   "reactive baseline: emergency landing",
			Override: true,
		}, nil
	}
	return nil, eddi.Advice{}, nil
}
