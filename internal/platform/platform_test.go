package platform

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"sesame/internal/conserts"
	"sesame/internal/detection"
	"sesame/internal/geo"
	"sesame/internal/uavsim"
)

var origin = geo.LatLng{Lat: 35.1856, Lng: 33.3823}

func missionArea(side float64) geo.Polygon {
	a := geo.Destination(origin, 45, 80)
	b := geo.Destination(a, 90, side)
	c := geo.Destination(b, 0, side)
	d := geo.Destination(a, 0, side)
	return geo.Polygon{a, b, c, d}
}

// buildPlatform spins up a 3-UAV world with an optional scene.
func buildPlatform(t *testing.T, cfg Config, seed int64, persons int) *Platform {
	t.Helper()
	w := uavsim.NewWorld(origin, seed)
	for _, id := range []string{"u1", "u2", "u3"} {
		home := geo.Destination(origin, 200, 20)
		if _, err := w.AddUAV(uavsim.UAVConfig{ID: id, Home: home, CruiseSpeedMS: 12}); err != nil {
			t.Fatal(err)
		}
	}
	var scene *detection.Scene
	if persons > 0 {
		var err error
		scene, err = detection.NewRandomScene(missionArea(400), persons, 0.2, w.Clock.Stream("scene"))
		if err != nil {
			t.Fatal(err)
		}
	}
	p, err := New(w, scene, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, DefaultConfig()); err == nil {
		t.Error("nil world must fail")
	}
	w := uavsim.NewWorld(origin, 1)
	if _, err := New(w, nil, DefaultConfig()); err == nil {
		t.Error("empty fleet must fail")
	}
	_, _ = w.AddUAV(uavsim.UAVConfig{ID: "u1", Home: origin})
	bad := DefaultConfig()
	bad.SurveyAltitudeM = 0
	if _, err := New(w, nil, bad); err == nil {
		t.Error("zero altitude must fail")
	}
}

func TestStartMissionDispatchesFleet(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 1, 0)
	if err := p.StartMission(missionArea(400)); err != nil {
		t.Fatal(err)
	}
	if err := p.StartMission(missionArea(400)); err == nil {
		t.Fatal("double start must fail")
	}
	for _, u := range p.World.UAVs() {
		if u.Mode() != uavsim.ModeMission {
			t.Fatalf("%s mode = %v, want mission", u.ID(), u.Mode())
		}
		if u.RemainingWaypoints() == 0 {
			t.Fatalf("%s has no waypoints", u.ID())
		}
	}
	if p.Mission() == nil {
		t.Fatal("mission not recorded")
	}
}

func TestNominalMissionCompletes(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 2, 0)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(1800); err != nil {
		t.Fatal(err)
	}
	av, err := p.Availability()
	if err != nil {
		t.Fatal(err)
	}
	if av < 0.999 {
		t.Fatalf("nominal availability = %v, want 1", av)
	}
	if p.Decision() != conserts.MissionAsPlanned {
		t.Fatalf("decision = %v", p.Decision())
	}
	// Every UAV finished its sweep (holding with no waypoints).
	for _, u := range p.World.UAVs() {
		if u.Mode() != uavsim.ModeHold || u.RemainingWaypoints() != 0 {
			t.Fatalf("%s did not finish: mode %v, %d wps", u.ID(), u.Mode(), u.RemainingWaypoints())
		}
	}
}

// TestFig5BatteryScenario reproduces the §V-A comparison through the
// full platform: a battery collapse on one UAV mid-mission.
func TestFig5BatteryScenario(t *testing.T) {
	run := func(sesame bool) (avail, completion float64) {
		cfg := DefaultConfig()
		cfg.SESAME = sesame
		p := buildPlatform(t, cfg, 3, 0)
		start := p.World.Clock.Now()
		if err := p.StartMission(missionArea(350)); err != nil {
			t.Fatal(err)
		}
		// Fault at mission-relative t=60: drop to 40% at 70C.
		at := p.World.Clock.Now() + 60
		if err := p.World.ScheduleFault(uavsim.BatteryCollapseFault(at, "u1", 70, 40)); err != nil {
			t.Fatal(err)
		}
		if err := p.RunMission(1200); err != nil {
			t.Fatal(err)
		}
		a, err := p.Availability()
		if err != nil {
			t.Fatal(err)
		}
		return a, p.World.Clock.Now() - start
	}
	withAvail, withTime := run(true)
	withoutAvail, withoutTime := run(false)
	// The §V-A shape: SESAME keeps the faulted UAV flying (PoF below
	// threshold) and it finishes its own task; the baseline aborts,
	// swaps the battery at base (60 s) and redeploys, stretching the
	// mission and losing availability.
	if withAvail < withoutAvail+0.05 {
		t.Fatalf("SESAME availability (%v) must clearly beat baseline (%v); paper shape is 91%% vs 80%%", withAvail, withoutAvail)
	}
	if withAvail < 0.95 {
		t.Fatalf("SESAME availability = %v; the faulted UAV should finish its task", withAvail)
	}
	if withTime >= withoutTime {
		t.Fatalf("SESAME completion (%v s) must beat baseline (%v s); paper: ~11%% improvement", withTime, withoutTime)
	}
}

// TestSpoofingMitigationChain reproduces §V-C end to end on the
// platform: spoof -> IDS -> Security EDDI -> ConSerts evidence ->
// Collaborative Localization -> safe landing; survivors absorb the
// victim's waypoints.
func TestSpoofingMitigationChain(t *testing.T) {
	cfg := DefaultConfig()
	p := buildPlatform(t, cfg, 4, 0)
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	at := p.World.Clock.Now() + 30
	if err := p.World.ScheduleFault(uavsim.GPSSpoofFault(at, "u2", 135, 3)); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(1500); err != nil {
		t.Fatal(err)
	}
	if !p.Security.Compromised("u2") {
		t.Fatal("spoofing never detected")
	}
	victim, _ := p.World.UAV("u2")
	if victim.Mode() != uavsim.ModeLanded {
		t.Fatalf("victim mode = %v, want landed", victim.Mode())
	}
	st := p.states["u2"]
	if st.collocCtrl == nil {
		t.Fatal("collaborative localization never engaged")
	}
	if e := st.collocCtrl.LandingError(); e > 15 {
		t.Fatalf("landing error %.1f m, want precise", e)
	}
	// Victim's waypoints were redistributed to survivors.
	if _, still := p.Mission().Assignments["u2"]; still {
		t.Fatal("victim still assigned")
	}
	// Security events were coordinated.
	found := false
	for _, ev := range p.Coordinator.History("u2") {
		if ev.Severity == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no critical security event recorded")
	}
}

// TestAccuracyPipelineDescends reproduces the §V-B trigger: at 60 m
// the SafeML uncertainty exceeds 90% and SINADRA advises descending.
func TestAccuracyPipelineDescends(t *testing.T) {
	cfg := DefaultConfig() // survey at 60 m
	p := buildPlatform(t, cfg, 5, 12)
	if err := p.StartMission(missionArea(400)); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(900); err != nil {
		t.Fatal(err)
	}
	descended := 0
	for _, id := range []string{"u1", "u2", "u3"} {
		if p.states[id].descended {
			descended++
		}
	}
	if descended == 0 {
		t.Fatal("no UAV descended despite high-altitude uncertainty")
	}
	// Perception events were emitted.
	sawPerception := false
	for _, ev := range p.Coordinator.History("") {
		if ev.Kind.String() == "perception" {
			sawPerception = true
			break
		}
	}
	if !sawPerception {
		t.Fatal("no perception events recorded")
	}
}

func TestDatabasePopulated(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 6, 0)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	uavs, err := p.DB.KnownUAVs("10.0.0.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(uavs) != 3 {
		t.Fatalf("DB knows %v", uavs)
	}
	pos, ts, err := p.DB.Location("127.0.0.1", "u1")
	if err != nil {
		t.Fatal(err)
	}
	if !pos.Valid() || ts <= 0 {
		t.Fatalf("location = %v @ %v", pos, ts)
	}
	recs, err := p.DB.Records("10.1.2.3", "u1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Key != "battery" {
		t.Fatalf("records = %v", recs)
	}
	// External origins are rejected.
	if _, err := p.DB.Records("8.8.8.8", "u1"); err != ErrForbiddenOrigin {
		t.Fatalf("external origin err = %v", err)
	}
}

func TestDatabaseOriginValidation(t *testing.T) {
	db := NewDatabase(10)
	if err := db.PutRecord("8.8.8.8:443", "u1", Record{Key: "k"}); err != ErrForbiddenOrigin {
		t.Fatalf("err = %v", err)
	}
	if err := db.PutRecord("not-an-ip", "u1", Record{Key: "k"}); err == nil {
		t.Fatal("garbage origin must fail")
	}
	if err := db.PutRecord("192.168.1.5:1234", "u1", Record{Key: "k"}); err != nil {
		t.Fatalf("private origin rejected: %v", err)
	}
	if err := db.PutRecord("10.0.0.1", "", Record{Key: "k"}); err == nil {
		t.Fatal("empty uav must fail")
	}
	if err := db.PutLocation("10.0.0.1", "u1", geo.LatLng{Lat: 999}, 1); err == nil {
		t.Fatal("invalid position must fail")
	}
	if _, _, err := db.Location("10.0.0.1", "ghost"); err == nil {
		t.Fatal("unknown uav must fail")
	}
	// Record limit enforced.
	for i := 0; i < 20; i++ {
		_ = db.PutRecord("10.0.0.1", "u1", Record{Key: "k", Time: float64(i)})
	}
	recs, _ := db.Records("10.0.0.1", "u1")
	if len(recs) != 10 {
		t.Fatalf("limit failed: %d records", len(recs))
	}
	if recs[0].Time != 10 {
		t.Fatalf("oldest kept = %v", recs[0].Time)
	}
}

func TestStatusAndHandler(t *testing.T) {
	p := buildPlatform(t, DefaultConfig(), 7, 0)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Status()
	if len(s.UAVs) != 3 || !s.SESAME || s.Time <= 0 {
		t.Fatalf("status = %+v", s)
	}
	for _, us := range s.UAVs {
		if us.Mode == "" || us.BatteryPct <= 0 || us.Reliability == "" {
			t.Fatalf("uav status incomplete: %+v", us)
		}
	}
	// HTTP facade serves the same snapshot.
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.UAVs) != 3 {
		t.Fatalf("HTTP status uavs = %d", len(got.UAVs))
	}
	resp2, err := srv.Client().Get(srv.URL + "/events?uav=u1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var events []map[string]interface{}
	if err := json.NewDecoder(resp2.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events served")
	}
}

func TestBaselineHasNoSecurityDetection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SESAME = false
	p := buildPlatform(t, cfg, 8, 0)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	at := p.World.Clock.Now() + 20
	_ = p.World.ScheduleFault(uavsim.GPSSpoofFault(at, "u1", 135, 3))
	if err := p.RunMission(200); err != nil {
		t.Fatal(err)
	}
	if p.Security != nil {
		t.Fatal("baseline must not run the Security EDDI")
	}
	// The spoofed UAV keeps flying on falsified positions — its true
	// track deviates and nobody intervenes.
	victim, _ := p.World.UAV("u1")
	if victim.Mode() == uavsim.ModeLanded && victim.Mode() != uavsim.ModeHold {
		t.Fatalf("baseline should not have landed the victim (mode %v)", victim.Mode())
	}
}

func BenchmarkPlatformTick(b *testing.B) {
	b.ReportAllocs()
	w := uavsim.NewWorld(origin, 1)
	for _, id := range []string{"u1", "u2", "u3"} {
		_, _ = w.AddUAV(uavsim.UAVConfig{ID: id, Home: origin})
	}
	p, err := New(w, nil, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if err := p.StartMission(missionArea(2000)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}
