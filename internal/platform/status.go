package platform

import (
	"encoding/json"
	"net/http"

	"sesame/internal/geo"
	"sesame/internal/uavsim"
)

// UAVStatus is the per-vehicle snapshot served to the GUI layer — the
// "blue box" content of the paper's Fig. 4.
type UAVStatus struct {
	ID          string     `json:"id"`
	Mode        string     `json:"mode"`
	Action      string     `json:"action"`
	Position    geo.LatLng `json:"position"`
	AltitudeM   float64    `json:"altitude_m"`
	SpeedMS     float64    `json:"speed_ms"`
	BatteryPct  float64    `json:"battery_pct"`
	BatteryTemp float64    `json:"battery_temp_c"`
	PoF         float64    `json:"pof"`
	Reliability string     `json:"reliability"`
	Uncertainty float64    `json:"perception_uncertainty"`
	Waypoints   int        `json:"waypoints_remaining"`
	Compromised bool       `json:"compromised"`
	CollocLand  bool       `json:"collaborative_landing"`
	Rescans     int        `json:"rescans"`
	// TelemetryAgeS is how stale the GCS's last-known-good telemetry
	// for this UAV is; LinkLost marks a fired lost-link watchdog.
	TelemetryAgeS float64 `json:"telemetry_age_s"`
	LinkLost      bool    `json:"link_lost"`
	// MonitorQuarantined marks a monitor chain the circuit breaker has
	// taken out of rotation (omitted while healthy so chaos-free status
	// snapshots — and their golden digests — are unchanged).
	MonitorQuarantined bool `json:"monitor_quarantined,omitempty"`
}

// RecorderStatus reports the flight recorder's degradation state. It
// only appears in Status after a persistent write failure has demoted
// recording to a counting no-op.
type RecorderStatus struct {
	Degraded bool   `json:"degraded"`
	Error    string `json:"error,omitempty"`
	// SkippedWrites counts recording operations suppressed since the
	// recorder degraded.
	SkippedWrites uint64 `json:"skipped_writes"`
}

// Status is the full platform snapshot — the Fig. 4 view as data.
type Status struct {
	Time     float64     `json:"time"`
	SESAME   bool        `json:"sesame_enabled"`
	Decision string      `json:"mission_decision"`
	UAVs     []UAVStatus `json:"uavs"`
	// Drops counts data-path operations (database writes, event
	// emissions, availability marks, flight commands, mission
	// management) that failed and were previously discarded silently.
	Drops DropCounters `json:"data_path_drops"`
	// DBRetries summarizes the database retry-with-backoff machinery.
	DBRetries RetryCounters `json:"database_retries"`
	// WorldDrops surfaces vehicle-side losses (refused telemetry
	// publishes) alongside the platform's own counters.
	WorldDrops uavsim.DropCounters `json:"world_drops"`
	// Observability is the deterministic counter subset of the metrics
	// registry (counters and histogram observation counts — never
	// wall-clock sums or buckets). Absent when observability is off, so
	// disabled runs serialize exactly as before.
	Observability map[string]uint64 `json:"observability,omitempty"`
	// Recorder surfaces flight-recorder degradation; nil (and absent)
	// while recording is healthy or disabled.
	Recorder *RecorderStatus `json:"recorder,omitempty"`
}

// Status captures a point-in-time snapshot of the fleet.
func (p *Platform) Status() Status {
	now := p.World.Clock.Now()
	s := Status{
		Time:       now,
		SESAME:     p.cfg.SESAME,
		Decision:   p.decision.String(),
		Drops:      p.drops.snapshot(),
		DBRetries:  p.retries.snapshot(),
		WorldDrops: p.World.Drops(),
	}
	if p.obs != nil {
		s.Observability = p.obs.reg.CounterValues()
	}
	if p.recDegraded {
		rs := &RecorderStatus{Degraded: true, SkippedWrites: p.recSkipped}
		if p.recErr != nil {
			rs.Error = p.recErr.Error()
		}
		s.Recorder = rs
	}
	for _, id := range p.order {
		st := p.states[id]
		u := st.uav
		us := UAVStatus{
			ID:                 id,
			Mode:               u.Mode().String(),
			Action:             st.action.String(),
			Position:           u.TruePosition(),
			AltitudeM:          u.AltitudeM(),
			SpeedMS:            u.SpeedMS(),
			BatteryPct:         u.Battery.ChargePct,
			BatteryTemp:        u.Battery.TempC,
			PoF:                st.lastAssessment.PoF,
			Reliability:        st.lastAssessment.Level.String(),
			Waypoints:          u.RemainingWaypoints(),
			CollocLand:         st.collocCtrl != nil,
			Rescans:            st.rescans,
			TelemetryAgeS:      st.telemetryAge(now),
			LinkLost:           st.lostLink,
			MonitorQuarantined: st.quarantined,
		}
		if st.hasUncert {
			us.Uncertainty = st.uncertainty
		}
		if p.Security != nil {
			us.Compromised = p.Security.Compromised(id)
		}
		s.UAVs = append(s.UAVs, us)
	}
	return s
}

// Handler returns an http.Handler serving the platform status as JSON
// at "/" and the EDDI event history at "/events" — the web GUI data
// feed of §IV-A.
func (p *Platform) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(p.Status())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		uav := r.URL.Query().Get("uav")
		type evOut struct {
			Kind     string  `json:"kind"`
			UAV      string  `json:"uav"`
			Time     float64 `json:"time"`
			Severity float64 `json:"severity"`
			Summary  string  `json:"summary"`
		}
		var out []evOut
		for _, ev := range p.Coordinator.History(uav) {
			out = append(out, evOut{
				Kind: ev.Kind.String(), UAV: ev.UAV, Time: ev.Time,
				Severity: ev.Severity, Summary: ev.Summary,
			})
		}
		_ = json.NewEncoder(w).Encode(out)
	})
	return mux
}
