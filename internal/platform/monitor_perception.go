package platform

import (
	"encoding/json"
	"fmt"

	"sesame/internal/detection"
	"sesame/internal/eddi"
	"sesame/internal/safeml"
)

// perceptionMonitor is the SafeML runtime monitor (paper §III-A2): it
// feeds each staged camera frame into the per-UAV sliding-window
// distribution monitor and, once the window fills, publishes the fused
// perception uncertainty on the chain blackboard for the risk monitor.
//
// Frames are staged by the scheduler's serial pre-pass (the detector
// draws from one shared RNG, so captures must happen in fleet order to
// keep runs bit-identical); the monitor itself only consumes its own
// staged frame and is therefore safe to run concurrently with other
// UAVs' chains.
type perceptionMonitor struct {
	p  *Platform
	st *uavState
	// pending is the frame captured for this tick, nil when the UAV is
	// not flying a perception workload. Written by the serial pre-pass,
	// consumed by the (possibly concurrent) observe phase; the worker
	// handoff orders the accesses.
	pending *detection.Frame
}

func (m *perceptionMonitor) Name() string { return "safeml" }

// stage hands the monitor its frame for the coming observe phase.
func (m *perceptionMonitor) stage(f *detection.Frame) { m.pending = f }

func (m *perceptionMonitor) Observe(s eddi.Snapshot) ([]eddi.Event, eddi.Advice, error) {
	var events []eddi.Event
	if frame := m.pending; frame != nil {
		m.pending = nil
		countIn(&m.st.drops.perception, m.st.perception.Push(frame.Features))
		if m.st.perception.Ready() {
			if report, err := m.st.perception.Evaluate(); countIn(&m.st.drops.perception, err) {
				m.st.uncertainty = report.Uncertainty
				m.st.hasUncert = true
				events = append(events, eddi.Event{
					Kind: eddi.KindPerception, UAV: s.UAV, Time: s.Time,
					Severity: report.Uncertainty,
					Summary:  fmt.Sprintf("perception uncertainty %.2f (%s)", report.Uncertainty, report.Action),
				})
			}
		}
	}
	// Publish the persistent uncertainty state (fresh or carried over)
	// for the risk monitor downstream.
	s.Derived.Uncertainty = m.st.uncertainty
	s.Derived.HasUncertainty = m.st.hasUncert
	return events, eddi.Advice{}, nil
}

// perceptionState is the checkpointed SafeML window plus any staged
// frame the observe phase had not consumed (possible when a later
// chain member halted before this monitor ran).
type perceptionState struct {
	Window  safeml.State     `json:"window"`
	Pending *detection.Frame `json:"pending,omitempty"`
}

// SnapshotState implements eddi.Snapshotter.
func (m *perceptionMonitor) SnapshotState() ([]byte, error) {
	return json.Marshal(perceptionState{Window: m.st.perception.State(), Pending: m.pending})
}

// RestoreState implements eddi.Snapshotter.
func (m *perceptionMonitor) RestoreState(data []byte) error {
	var s perceptionState
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if err := m.st.perception.Restore(s.Window); err != nil {
		return err
	}
	m.pending = s.Pending
	return nil
}
