package platform

// Observability wiring for the fleet scheduler. The design splits hot
// and cold paths: every metric handle is resolved once at New (no map
// lookups per tick), all handles are nil-safe no-ops when Config has no
// registry, and only the deterministic counter subset is merged into
// Status so golden digests stay bit-identical with observability on.

import (
	"sync/atomic"
	"time"

	"sesame/internal/eddi"
	"sesame/internal/obsv"
)

// platformMetrics holds the scheduler's resolved metric handles. A nil
// *platformMetrics disables all instrumentation (checked once per call
// site); individual nil handles inside degrade to no-ops on their own.
type platformMetrics struct {
	reg *obsv.Registry

	ticks *obsv.Counter
	// phase latency histograms, resolved from one labeled family.
	phaseStep    *obsv.Histogram
	phasePrepare *obsv.Histogram
	phaseObserve *obsv.Histogram
	phaseApply   *obsv.Histogram

	monitorLatency *obsv.HistogramVec
	monitorEvals   *obsv.CounterVec
	monitorAdvice  *obsv.CounterVec
	monitorErrors  *obsv.Counter
	monitorPanics  *obsv.Counter

	// Degradation counters are registered lazily, on the first
	// quarantine or recorder failure: runs that never degrade expose
	// exactly the same metric families (and therefore the same
	// Status.Observability maps and golden digests) as before this
	// machinery existed. All accesses happen in the serial apply phase,
	// so the lazy init needs no locking.
	monitorQuarantines *obsv.Counter
	recDegradedTotal   *obsv.Counter
	recSkippedTotal    *obsv.Counter

	// tick is written serially at the top of Tick and read by the
	// concurrent observe-phase recorders for trace stamping.
	tick atomic.Uint64
}

// newPlatformMetrics registers the scheduler families in reg.
func newPlatformMetrics(reg *obsv.Registry) *platformMetrics {
	phases := reg.HistogramVec("sesame_platform_phase_seconds",
		"Scheduler phase wall-clock latency, by phase.", "phase", obsv.DefLatencyBuckets)
	return &platformMetrics{
		reg:          reg,
		ticks:        reg.Counter("sesame_platform_ticks_total", "Platform ticks executed."),
		phaseStep:    phases.With("step"),
		phasePrepare: phases.With("prepare"),
		phaseObserve: phases.With("observe"),
		phaseApply:   phases.With("apply"),
		monitorLatency: reg.HistogramVec("sesame_monitor_observe_seconds",
			"Per-monitor Observe latency, by monitor.", "monitor", obsv.DefLatencyBuckets),
		monitorEvals: reg.CounterVec("sesame_monitor_evaluations_total",
			"Monitor chain evaluations, by monitor.", "monitor"),
		monitorAdvice: reg.CounterVec("sesame_monitor_advice_total",
			"Non-empty adaptation advices returned by monitors, by kind.", "kind"),
		monitorErrors: reg.Counter("sesame_monitor_errors_total",
			"Monitor Observe calls that returned an error."),
		monitorPanics: reg.Counter("sesame_monitor_panics_total",
			"Monitor chain panics contained by the scheduler."),
	}
}

// quarantines resolves the breaker-quarantine counter on first use.
func (m *platformMetrics) quarantines() *obsv.Counter {
	if m.monitorQuarantines == nil {
		m.monitorQuarantines = m.reg.Counter("sesame_monitor_quarantines_total",
			"Monitor chains quarantined by the scheduler's circuit breaker.")
	}
	return m.monitorQuarantines
}

// recorderDegraded resolves the recorder-degradation counter on first use.
func (m *platformMetrics) recorderDegraded() *obsv.Counter {
	if m.recDegradedTotal == nil {
		m.recDegradedTotal = m.reg.Counter("sesame_recorder_degraded_total",
			"Flight-recorder demotions to counting no-op after a persistent write failure.")
	}
	return m.recDegradedTotal
}

// recorderSkipped resolves the skipped-writes counter on first use.
func (m *platformMetrics) recorderSkipped() *obsv.Counter {
	if m.recSkippedTotal == nil {
		m.recSkippedTotal = m.reg.Counter("sesame_recorder_skipped_writes_total",
			"Recording operations suppressed while the flight recorder is degraded.")
	}
	return m.recSkippedTotal
}

// chainRecorder is one UAV's eddi.ChainObserver: handles for every
// monitor in the chain are resolved at construction, so MonitorDone
// does no lookups and no allocations on the observe-phase hot path.
type chainRecorder struct {
	obs     *platformMetrics
	uav     string
	latency []*obsv.Histogram
	evals   []*obsv.Counter
	names   []string
}

// newChainRecorder resolves per-monitor handles for st's chain.
func newChainRecorder(obs *platformMetrics, uav string, chain []eddi.Runtime) *chainRecorder {
	r := &chainRecorder{
		obs:     obs,
		uav:     uav,
		latency: make([]*obsv.Histogram, len(chain)),
		evals:   make([]*obsv.Counter, len(chain)),
		names:   make([]string, len(chain)),
	}
	for i, m := range chain {
		r.latency[i] = obs.monitorLatency.With(m.Name())
		r.evals[i] = obs.monitorEvals.With(m.Name())
		r.names[i] = m.Name()
	}
	return r
}

// MonitorDone implements eddi.ChainObserver.
func (r *chainRecorder) MonitorDone(index int, m eddi.Runtime, elapsed time.Duration, events int, advice eddi.Advice, err error) {
	r.latency[index].Observe(elapsed.Seconds())
	r.evals[index].Inc()
	if advice.Kind != eddi.AdviceNone {
		r.obs.monitorAdvice.With(advice.Kind.String()).Inc()
	}
	outcome := obsv.OutcomeOK
	switch {
	case err != nil:
		r.obs.monitorErrors.Inc()
		outcome = obsv.OutcomeError
	case advice.Halt:
		outcome = obsv.OutcomeHalt
	}
	if ring := r.obs.reg.Trace(); ring != nil {
		ring.Record(obsv.TraceEvent{
			Tick:     r.obs.tick.Load(),
			UAV:      r.uav,
			Monitor:  r.names[index],
			Phase:    "observe",
			Duration: elapsed,
			Outcome:  outcome,
		})
	}
}

// recordPanic mirrors a contained monitor-chain panic into the metrics
// and, when tracing, the trace ring.
func (r *chainRecorder) recordPanic() {
	r.obs.monitorPanics.Inc()
	if ring := r.obs.reg.Trace(); ring != nil {
		ring.Record(obsv.TraceEvent{
			Tick:    r.obs.tick.Load(),
			UAV:     r.uav,
			Phase:   "observe",
			Outcome: obsv.OutcomePanic,
		})
	}
}

// Observability returns the platform's metrics registry (nil when the
// platform was built without one).
func (p *Platform) Observability() *obsv.Registry {
	if p.obs == nil {
		return nil
	}
	return p.obs.reg
}
