package platform

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sesame/internal/eddi"
	"sesame/internal/obsv"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// runScenario executes one seeded mission and returns the finished
// platform.
func runScenario(t *testing.T, cfg Config, seed int64, horizon float64) *Platform {
	t.Helper()
	p := buildPlatform(t, cfg, seed, 0)
	if err := p.StartMission(missionArea(350)); err != nil {
		t.Fatal(err)
	}
	if err := p.RunMission(horizon); err != nil {
		t.Fatal(err)
	}
	return p
}

// digestWithoutObsv hashes the same blob digestPlatform does, with the
// Observability field cleared, so instrumented and uninstrumented runs
// can be compared bit for bit.
func digestWithoutObsv(t *testing.T, p *Platform) string {
	t.Helper()
	status := p.Status()
	status.Observability = nil
	blob := struct {
		Status   Status
		Decision string
		History  interface{}
	}{status, p.Decision().String(), p.Coordinator.History("")}
	data, err := json.Marshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if p.avail != nil {
		if a, err := p.Availability(); err == nil {
			data = append(data, []byte(fmt.Sprintf("avail=%.12f", a))...)
		}
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

// TestObservabilityDeterminism is the PR's core contract in test form:
// instrumentation must not perturb the digested mission outputs.
//
//  1. With observability on, serial and pooled scheduling produce the
//     same digest (the Observability counters themselves included).
//  2. An instrumented run and an uninstrumented run of the same seed
//     are identical once the Observability field is set aside.
func TestObservabilityDeterminism(t *testing.T) {
	const seed, horizon = 4, 900

	digests := make(map[int]string, 2)
	for _, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Observability = obsv.NewRegistry()
		cfg.Observability.SetTrace(obsv.NewTraceRing(1024))
		p := runScenario(t, cfg, seed, horizon)
		if len(p.Status().Observability) == 0 {
			t.Fatal("instrumented run produced no observability counters")
		}
		digests[workers] = digestPlatform(t, p)
	}
	if digests[1] != digests[8] {
		t.Errorf("instrumented scheduler diverges: serial %s != pooled %s", digests[1], digests[8])
	}

	cfgOn := DefaultConfig()
	cfgOn.Workers = 1
	cfgOn.Observability = obsv.NewRegistry()
	on := runScenario(t, cfgOn, seed, horizon)

	cfgOff := DefaultConfig()
	cfgOff.Workers = 1
	off := runScenario(t, cfgOff, seed, horizon)
	if off.Status().Observability != nil {
		t.Error("uninstrumented run must not carry observability counters")
	}
	if got, want := digestWithoutObsv(t, on), digestWithoutObsv(t, off); got != want {
		t.Errorf("instrumentation perturbed the mission: on %s != off %s", got, want)
	}
}

// timingLine matches exposition samples whose values depend on wall
// clock: histogram bucket counts and sums of *_seconds families. The
// _count samples are observation counts and stay exact.
var timingLine = regexp.MustCompile(`^(\S*_seconds(?:_bucket\{[^}]*\}|_sum)(?:\{[^}]*\})?) \S+$`)

// normalizeMetrics replaces timing-dependent sample values with "T" so
// the golden file pins names, labels, ordering and the deterministic
// counters while tolerating run-to-run latency variation.
func normalizeMetrics(text string) string {
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		if m := timingLine.FindStringSubmatch(line); m != nil {
			lines[i] = m[1] + " T"
		}
	}
	return strings.Join(lines, "\n")
}

// TestMetricsGolden runs a seeded 3-UAV mission and compares the full
// /metrics exposition against testdata/metrics.golden. Regenerate with
// go test ./internal/platform/ -run TestMetricsGolden -update
func TestMetricsGolden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Observability = obsv.NewRegistry()
	p := runScenario(t, cfg, 4, 900)

	var b strings.Builder
	if err := p.Observability().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := normalizeMetrics(b.String())

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("metrics exposition drifted from golden (run with -update to regenerate):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestObservabilityAccessor checks the registry handle plumbing.
func TestObservabilityAccessor(t *testing.T) {
	reg := obsv.NewRegistry()
	cfg := DefaultConfig()
	cfg.Observability = reg
	p := buildPlatform(t, cfg, 1, 0)
	if p.Observability() != reg {
		t.Error("Observability() must return the configured registry")
	}
	off := buildPlatform(t, DefaultConfig(), 1, 0)
	if off.Observability() != nil {
		t.Error("uninstrumented platform must return a nil registry")
	}
}

// TestMonitorPanicCounted proves a contained chain panic reaches the
// panic counter and the trace ring.
func TestMonitorPanicCounted(t *testing.T) {
	reg := obsv.NewRegistry()
	ring := obsv.NewTraceRing(16)
	reg.SetTrace(ring)
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Observability = reg
	cfg.ExtraMonitors = []func(uav string) (eddi.Runtime, error){
		func(uav string) (eddi.Runtime, error) { return &panicMonitor{uav: "u2", after: -1}, nil },
	}
	p := buildPlatform(t, cfg, 1, 0)
	if err := p.StartMission(missionArea(300)); err != nil {
		t.Fatal(err)
	}
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	vals := reg.CounterValues()
	if vals["sesame_monitor_panics_total"] == 0 {
		t.Errorf("panic not counted: %v", vals)
	}
	found := false
	for _, ev := range ring.Snapshot() {
		if ev.Outcome == obsv.OutcomePanic {
			found = true
			break
		}
	}
	if !found {
		t.Error("panic not recorded in the trace ring")
	}
}
