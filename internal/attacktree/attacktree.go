// Package attacktree implements the attack-tree model behind the
// Security EDDI (paper §III-B). A tree describes how low-level attack
// steps (leaves, matched against IDS alert types) combine through
// AND/OR gates into the adversary's ultimate goal (the root). Each
// node carries the CAPEC-style metadata the paper lists: capecId,
// title, description, severity, likelihood, and mitigation.
//
// The runtime question the Security EDDI asks — "given the alerts seen
// so far, has the adversary's goal been reached, and along which
// path?" — is answered by Evaluate.
package attacktree

import (
	"errors"
	"fmt"
	"sort"
)

// Severity grades an attack scenario.
type Severity int

// Severities in increasing order.
const (
	SeverityLow Severity = iota
	SeverityMedium
	SeverityHigh
	SeverityCritical
)

func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "low"
	case SeverityMedium:
		return "medium"
	case SeverityHigh:
		return "high"
	case SeverityCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Gate is a node's combinator.
type Gate int

// Gate kinds. Leaves have GateLeaf and no children.
const (
	GateLeaf Gate = iota
	GateAND
	GateOR
)

func (g Gate) String() string {
	switch g {
	case GateLeaf:
		return "LEAF"
	case GateAND:
		return "AND"
	case GateOR:
		return "OR"
	default:
		return fmt.Sprintf("Gate(%d)", int(g))
	}
}

// Node is one attack step or sub-goal.
type Node struct {
	ID          string
	CAPECID     string
	Title       string
	Description string
	Severity    Severity
	// Likelihood in [0,1] as estimated at design time.
	Likelihood float64
	Mitigation string
	Gate       Gate
	Children   []*Node
	// AlertPattern is the IDS alert type that triggers this leaf;
	// empty on gates.
	AlertPattern string
}

// Tree is a validated attack tree.
type Tree struct {
	root      *Node
	byID      map[string]*Node
	byPattern map[string][]*Node
	parents   map[string]*Node
}

// New validates and indexes the tree under root: IDs unique and
// non-empty, leaves carry alert patterns and no children, gates carry
// children and no pattern, likelihoods in range.
func New(root *Node) (*Tree, error) {
	if root == nil {
		return nil, errors.New("attacktree: nil root")
	}
	t := &Tree{
		root:      root,
		byID:      make(map[string]*Node),
		byPattern: make(map[string][]*Node),
		parents:   make(map[string]*Node),
	}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.ID == "" {
			return errors.New("attacktree: node with empty id")
		}
		if _, dup := t.byID[n.ID]; dup {
			return fmt.Errorf("attacktree: duplicate node id %q", n.ID)
		}
		if n.Likelihood < 0 || n.Likelihood > 1 {
			return fmt.Errorf("attacktree: node %q likelihood %v out of [0,1]", n.ID, n.Likelihood)
		}
		t.byID[n.ID] = n
		switch n.Gate {
		case GateLeaf:
			if len(n.Children) > 0 {
				return fmt.Errorf("attacktree: leaf %q has children", n.ID)
			}
			if n.AlertPattern == "" {
				return fmt.Errorf("attacktree: leaf %q has no alert pattern", n.ID)
			}
			t.byPattern[n.AlertPattern] = append(t.byPattern[n.AlertPattern], n)
		case GateAND, GateOR:
			if len(n.Children) == 0 {
				return fmt.Errorf("attacktree: gate %q has no children", n.ID)
			}
			if n.AlertPattern != "" {
				return fmt.Errorf("attacktree: gate %q has an alert pattern", n.ID)
			}
			for _, c := range n.Children {
				if c == nil {
					return fmt.Errorf("attacktree: gate %q has nil child", n.ID)
				}
				t.parents[c.ID] = n
				if err := walk(c); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("attacktree: node %q has unknown gate %v", n.ID, n.Gate)
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return t, nil
}

// Root returns the tree's goal node.
func (t *Tree) Root() *Node { return t.root }

// Node returns the node with the given id.
func (t *Tree) Node(id string) (*Node, bool) {
	n, ok := t.byID[id]
	return n, ok
}

// LeavesForAlert returns the leaves triggered by the given alert type.
func (t *Tree) LeavesForAlert(alertType string) []*Node {
	return append([]*Node(nil), t.byPattern[alertType]...)
}

// AlertPatterns returns the sorted set of alert types the tree listens
// for.
func (t *Tree) AlertPatterns() []string {
	out := make([]string, 0, len(t.byPattern))
	for p := range t.byPattern {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Evaluation is the result of checking triggered leaves against the
// tree.
type Evaluation struct {
	// RootReached reports whether the adversary goal is satisfied.
	RootReached bool
	// Reached lists ids of all satisfied nodes, sorted.
	Reached []string
	// Path is the chain of satisfied node ids from a satisfied leaf up
	// to the root (leaf first); empty unless RootReached.
	Path []string
}

// Evaluate computes which nodes are satisfied given the set of
// triggered leaf ids (typically accumulated from IDS alerts).
func (t *Tree) Evaluate(triggeredLeaves map[string]bool) Evaluation {
	satisfied := make(map[string]bool)
	var eval func(n *Node) bool
	eval = func(n *Node) bool {
		var ok bool
		switch n.Gate {
		case GateLeaf:
			ok = triggeredLeaves[n.ID]
		case GateAND:
			ok = true
			for _, c := range n.Children {
				if !eval(c) {
					ok = false
				}
			}
		case GateOR:
			for _, c := range n.Children {
				if eval(c) {
					ok = true
				}
			}
		}
		if ok {
			satisfied[n.ID] = true
		}
		return ok
	}
	rootOK := eval(t.root)
	ev := Evaluation{RootReached: rootOK}
	for id := range satisfied {
		ev.Reached = append(ev.Reached, id)
	}
	sort.Strings(ev.Reached)
	if rootOK {
		ev.Path = t.tracePath(satisfied)
	}
	return ev
}

// tracePath walks from some satisfied leaf up to the root through
// satisfied nodes.
func (t *Tree) tracePath(satisfied map[string]bool) []string {
	// Find a satisfied leaf with a satisfied chain to the root.
	var leaves []string
	for id := range satisfied {
		if n := t.byID[id]; n.Gate == GateLeaf {
			leaves = append(leaves, id)
		}
	}
	sort.Strings(leaves)
	for _, leaf := range leaves {
		var path []string
		cur := t.byID[leaf]
		ok := true
		for cur != nil {
			if !satisfied[cur.ID] {
				ok = false
				break
			}
			path = append(path, cur.ID)
			cur = t.parents[cur.ID]
		}
		if ok && len(path) > 0 && path[len(path)-1] == t.root.ID {
			return path
		}
	}
	return nil
}

// HijackTree builds a second Security EDDI model: the adversary's goal
// of seizing or severing command-and-control, reached either by
// injecting commands after gaining network access, or by jamming the
// C2 link outright.
func HijackTree(uav string) (*Tree, error) {
	leafAccess := &Node{
		ID:           uav + "/c2-net-access",
		CAPECID:      "CAPEC-94",
		Title:        "Adversary-in-the-Middle on the C2 segment",
		Description:  "Attacker positions on the network path carrying command traffic",
		Severity:     SeverityMedium,
		Likelihood:   0.35,
		Mitigation:   "Mutual TLS on C2, network segmentation",
		Gate:         GateLeaf,
		AlertPattern: "unauthorized-node",
	}
	leafCmd := &Node{
		ID:           uav + "/cmd-injection",
		CAPECID:      "CAPEC-248",
		Title:        "Command injection",
		Description:  "Forged command messages race the ground station's",
		Severity:     SeverityCritical,
		Likelihood:   0.25,
		Mitigation:   "Signed commands, sequence authentication",
		Gate:         GateLeaf,
		AlertPattern: "message-injection",
	}
	leafJam := &Node{
		ID:           uav + "/link-jamming",
		CAPECID:      "CAPEC-601",
		Title:        "C2 link jamming",
		Description:  "RF interference silences the command channel",
		Severity:     SeverityHigh,
		Likelihood:   0.3,
		Mitigation:   "Frequency hopping, lost-link contingency behaviour",
		Gate:         GateLeaf,
		AlertPattern: "link-silence",
	}
	seize := &Node{
		ID:          uav + "/c2-seizure",
		CAPECID:     "CAPEC-248",
		Title:       "Seize command and control",
		Description: "Network access combined with command injection takes over the vehicle",
		Severity:    SeverityCritical,
		Likelihood:  0.2,
		Mitigation:  "IDS on command topics, command allow-lists",
		Gate:        GateAND,
		Children:    []*Node{leafAccess, leafCmd},
	}
	root := &Node{
		ID:          uav + "/c2-hijack",
		CAPECID:     "CAPEC-248",
		Title:       "Hijack or sever UAV command and control",
		Severity:    SeverityCritical,
		Likelihood:  0.15,
		Mitigation:  "Lost-link return-to-base, collaborative supervision",
		Gate:        GateOR,
		Children:    []*Node{seize, leafJam},
		Description: "Adversary controls or denies the C2 channel",
	}
	return New(root)
}

// SpoofingTree builds the ROS message spoofing attack tree used in the
// §V-C scenario: the adversary's goal of manipulating the UAV's area
// mapping is reached either by injecting falsified ROS messages (which
// requires network access AND message injection) or by direct GPS
// spoofing at the RF level.
func SpoofingTree(uav string) (*Tree, error) {
	leafAccess := &Node{
		ID:           uav + "/net-access",
		CAPECID:      "CAPEC-94",
		Title:        "Adversary-in-the-Middle network access",
		Description:  "Attacker joins the C2 network segment carrying ROS traffic",
		Severity:     SeverityMedium,
		Likelihood:   0.4,
		Mitigation:   "Network segmentation, WPA3, certificate pinning",
		Gate:         GateLeaf,
		AlertPattern: "unauthorized-node",
	}
	leafInject := &Node{
		ID:           uav + "/msg-injection",
		CAPECID:      "CAPEC-594",
		Title:        "ROS message injection",
		Description:  "Falsified position/command messages published on UAV topics",
		Severity:     SeverityHigh,
		Likelihood:   0.3,
		Mitigation:   "Authenticated pub/sub (SROS2), message signing",
		Gate:         GateLeaf,
		AlertPattern: "message-injection",
	}
	leafGPS := &Node{
		ID:           uav + "/gps-spoof",
		CAPECID:      "CAPEC-627",
		Title:        "GNSS signal spoofing",
		Description:  "Counterfeit GNSS signals displace the victim's position solution",
		Severity:     SeverityCritical,
		Likelihood:   0.2,
		Mitigation:   "Multi-constellation consistency checks, collaborative localization",
		Gate:         GateLeaf,
		AlertPattern: "gps-anomaly",
	}
	rosPath := &Node{
		ID:          uav + "/ros-spoofing",
		CAPECID:     "CAPEC-148",
		Title:       "ROS topic spoofing campaign",
		Description: "Network access combined with message injection corrupts the mapping pipeline",
		Severity:    SeverityHigh,
		Likelihood:  0.25,
		Mitigation:  "IDS on ROS graph, topic allow-lists",
		Gate:        GateAND,
		Children:    []*Node{leafAccess, leafInject},
	}
	root := &Node{
		ID:          uav + "/map-manipulation",
		CAPECID:     "CAPEC-148",
		Title:       "Manipulate UAV area mapping",
		Description: "Adversary displaces the UAV's believed position, corrupting SAR coverage",
		Severity:    SeverityCritical,
		Likelihood:  0.15,
		Mitigation:  "Spoofing detection + collaborative localization safe landing",
		Gate:        GateOR,
		Children:    []*Node{rosPath, leafGPS},
	}
	return New(root)
}
