package attacktree

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig, err := SpoofingTree("u1")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"capecId", "CAPEC-627", "mitigation", "alertPattern", "critical"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("document missing %q:\n%s", want, data)
		}
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Root().ID != orig.Root().ID {
		t.Fatalf("root id changed: %q", back.Root().ID)
	}
	// Same behaviour after the round trip.
	ev1 := orig.Evaluate(map[string]bool{"u1/gps-spoof": true})
	ev2 := back.Evaluate(map[string]bool{"u1/gps-spoof": true})
	if ev1.RootReached != ev2.RootReached || len(ev1.Path) != len(ev2.Path) {
		t.Fatalf("behaviour changed: %+v vs %+v", ev1, ev2)
	}
	pat1 := strings.Join(orig.AlertPatterns(), ",")
	pat2 := strings.Join(back.AlertPatterns(), ",")
	if pat1 != pat2 {
		t.Fatalf("alert patterns changed: %s vs %s", pat2, pat1)
	}
	// Marshal is stable.
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("round trip not idempotent")
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	cases := []string{
		`{bad json`,
		`{"id":"x","gate":"XOR","severity":"low"}`,
		`{"id":"x","gate":"LEAF","severity":"catastrophic","alertPattern":"p"}`,
		`{"id":"x","gate":"LEAF","severity":"low"}`,                   // leaf without pattern
		`{"id":"","gate":"LEAF","severity":"low","alertPattern":"p"}`, // empty id
		`{"id":"g","gate":"AND","severity":"low"}`,                    // gate without children
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("accepted invalid document: %s", c)
		}
	}
}

func TestParseHandwrittenTree(t *testing.T) {
	doc := `{
	  "id": "goal", "gate": "OR", "severity": "high", "likelihood": 0.2,
	  "children": [
	    {"id": "leaf-a", "gate": "LEAF", "severity": "low", "alertPattern": "alert-a"},
	    {"id": "sub", "gate": "AND", "severity": "medium", "children": [
	      {"id": "leaf-b", "gate": "LEAF", "severity": "low", "alertPattern": "alert-b"},
	      {"id": "leaf-c", "gate": "LEAF", "severity": "low", "alertPattern": "alert-c"}
	    ]}
	  ]
	}`
	tr, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Evaluate(map[string]bool{"leaf-a": true}).RootReached {
		t.Fatal("OR leaf must reach root")
	}
	if tr.Evaluate(map[string]bool{"leaf-b": true}).RootReached {
		t.Fatal("half an AND must not reach root")
	}
	if !tr.Evaluate(map[string]bool{"leaf-b": true, "leaf-c": true}).RootReached {
		t.Fatal("full AND must reach root")
	}
}
