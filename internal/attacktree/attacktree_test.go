package attacktree

import (
	"testing"
)

func TestSpoofingTreeStructure(t *testing.T) {
	tr, err := SpoofingTree("uav1")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root().ID != "uav1/map-manipulation" {
		t.Fatalf("root = %q", tr.Root().ID)
	}
	patterns := tr.AlertPatterns()
	want := []string{"gps-anomaly", "message-injection", "unauthorized-node"}
	if len(patterns) != len(want) {
		t.Fatalf("patterns = %v", patterns)
	}
	for i := range want {
		if patterns[i] != want[i] {
			t.Fatalf("patterns = %v, want %v", patterns, want)
		}
	}
	if _, ok := tr.Node("uav1/ros-spoofing"); !ok {
		t.Fatal("missing AND node")
	}
	leaves := tr.LeavesForAlert("gps-anomaly")
	if len(leaves) != 1 || leaves[0].CAPECID != "CAPEC-627" {
		t.Fatalf("gps leaf lookup = %v", leaves)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	tr, _ := SpoofingTree("u")
	ev := tr.Evaluate(nil)
	if ev.RootReached || len(ev.Reached) != 0 || ev.Path != nil {
		t.Fatalf("empty evaluation = %+v", ev)
	}
}

func TestEvaluateANDRequiresBoth(t *testing.T) {
	tr, _ := SpoofingTree("u")
	ev := tr.Evaluate(map[string]bool{"u/net-access": true})
	if ev.RootReached {
		t.Fatal("one AND child must not reach root")
	}
	if len(ev.Reached) != 1 || ev.Reached[0] != "u/net-access" {
		t.Fatalf("reached = %v", ev.Reached)
	}
	ev = tr.Evaluate(map[string]bool{"u/net-access": true, "u/msg-injection": true})
	if !ev.RootReached {
		t.Fatal("both AND children must reach root")
	}
	// Path runs leaf -> AND gate -> root.
	if len(ev.Path) != 3 || ev.Path[2] != "u/map-manipulation" {
		t.Fatalf("path = %v", ev.Path)
	}
	if ev.Path[1] != "u/ros-spoofing" {
		t.Fatalf("path = %v", ev.Path)
	}
}

func TestEvaluateORShortcut(t *testing.T) {
	tr, _ := SpoofingTree("u")
	ev := tr.Evaluate(map[string]bool{"u/gps-spoof": true})
	if !ev.RootReached {
		t.Fatal("GPS leaf alone satisfies the OR root")
	}
	if len(ev.Path) != 2 || ev.Path[0] != "u/gps-spoof" || ev.Path[1] != "u/map-manipulation" {
		t.Fatalf("path = %v", ev.Path)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil root must fail")
	}
	if _, err := New(&Node{ID: "", Gate: GateLeaf, AlertPattern: "x"}); err == nil {
		t.Error("empty id must fail")
	}
	if _, err := New(&Node{ID: "l", Gate: GateLeaf}); err == nil {
		t.Error("leaf without pattern must fail")
	}
	if _, err := New(&Node{ID: "l", Gate: GateLeaf, AlertPattern: "x", Children: []*Node{{}}}); err == nil {
		t.Error("leaf with children must fail")
	}
	if _, err := New(&Node{ID: "g", Gate: GateOR}); err == nil {
		t.Error("gate without children must fail")
	}
	if _, err := New(&Node{ID: "g", Gate: GateOR, AlertPattern: "x",
		Children: []*Node{{ID: "l", Gate: GateLeaf, AlertPattern: "y"}}}); err == nil {
		t.Error("gate with pattern must fail")
	}
	dup := &Node{ID: "dup", Gate: GateLeaf, AlertPattern: "a"}
	if _, err := New(&Node{ID: "g", Gate: GateOR, Children: []*Node{dup,
		{ID: "dup", Gate: GateLeaf, AlertPattern: "b"}}}); err == nil {
		t.Error("duplicate ids must fail")
	}
	if _, err := New(&Node{ID: "l", Gate: GateLeaf, AlertPattern: "x", Likelihood: 1.5}); err == nil {
		t.Error("likelihood > 1 must fail")
	}
	if _, err := New(&Node{ID: "g", Gate: Gate(7), Children: []*Node{{ID: "l", Gate: GateLeaf, AlertPattern: "x"}}}); err == nil {
		t.Error("unknown gate must fail")
	}
	if _, err := New(&Node{ID: "g", Gate: GateOR, Children: []*Node{nil}}); err == nil {
		t.Error("nil child must fail")
	}
}

func TestSharedPatternAcrossLeaves(t *testing.T) {
	a := &Node{ID: "a", Gate: GateLeaf, AlertPattern: "shared"}
	b := &Node{ID: "b", Gate: GateLeaf, AlertPattern: "shared"}
	root := &Node{ID: "root", Gate: GateAND, Children: []*Node{a, b}}
	tr, err := New(root)
	if err != nil {
		t.Fatal(err)
	}
	leaves := tr.LeavesForAlert("shared")
	if len(leaves) != 2 {
		t.Fatalf("shared pattern leaves = %d", len(leaves))
	}
	ev := tr.Evaluate(map[string]bool{"a": true, "b": true})
	if !ev.RootReached {
		t.Fatal("both shared leaves triggered must reach root")
	}
}

func TestStrings(t *testing.T) {
	if SeverityCritical.String() != "critical" || GateAND.String() != "AND" {
		t.Fatal("names wrong")
	}
	if Severity(9).String() == "" || Gate(9).String() == "" {
		t.Fatal("unknown values must render")
	}
}

func TestMetadataPreserved(t *testing.T) {
	tr, _ := SpoofingTree("u")
	n, ok := tr.Node("u/gps-spoof")
	if !ok {
		t.Fatal("node missing")
	}
	if n.Severity != SeverityCritical || n.Mitigation == "" || n.Description == "" || n.Title == "" {
		t.Fatalf("metadata lost: %+v", n)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	tr, _ := SpoofingTree("u")
	trig := map[string]bool{"u/net-access": true, "u/msg-injection": true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := tr.Evaluate(trig)
		if !ev.RootReached {
			b.Fatal("expected root reached")
		}
	}
}
