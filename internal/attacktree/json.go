package attacktree

import (
	"encoding/json"
	"fmt"
)

// nodeJSON is the on-disk form of a node — the exchange format the
// paper's attack-tree creation process emits ("capecId", "title",
// "description", "severity", "likelihood", "mitigation" per scenario,
// §III-B).
type nodeJSON struct {
	ID           string     `json:"id"`
	CAPECID      string     `json:"capecId,omitempty"`
	Title        string     `json:"title,omitempty"`
	Description  string     `json:"description,omitempty"`
	Severity     string     `json:"severity"`
	Likelihood   float64    `json:"likelihood"`
	Mitigation   string     `json:"mitigation,omitempty"`
	Gate         string     `json:"gate"`
	AlertPattern string     `json:"alertPattern,omitempty"`
	Children     []nodeJSON `json:"children,omitempty"`
}

var severityNames = map[Severity]string{
	SeverityLow:      "low",
	SeverityMedium:   "medium",
	SeverityHigh:     "high",
	SeverityCritical: "critical",
}

func severityFromName(s string) (Severity, error) {
	for k, v := range severityNames {
		if v == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("attacktree: unknown severity %q", s)
}

var gateNames = map[Gate]string{
	GateLeaf: "LEAF",
	GateAND:  "AND",
	GateOR:   "OR",
}

func gateFromName(s string) (Gate, error) {
	for k, v := range gateNames {
		if v == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("attacktree: unknown gate %q", s)
}

func toJSON(n *Node) nodeJSON {
	out := nodeJSON{
		ID:           n.ID,
		CAPECID:      n.CAPECID,
		Title:        n.Title,
		Description:  n.Description,
		Severity:     severityNames[n.Severity],
		Likelihood:   n.Likelihood,
		Mitigation:   n.Mitigation,
		Gate:         gateNames[n.Gate],
		AlertPattern: n.AlertPattern,
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, toJSON(c))
	}
	return out
}

func fromJSON(j nodeJSON) (*Node, error) {
	sev, err := severityFromName(j.Severity)
	if err != nil {
		return nil, err
	}
	gate, err := gateFromName(j.Gate)
	if err != nil {
		return nil, err
	}
	n := &Node{
		ID:           j.ID,
		CAPECID:      j.CAPECID,
		Title:        j.Title,
		Description:  j.Description,
		Severity:     sev,
		Likelihood:   j.Likelihood,
		Mitigation:   j.Mitigation,
		Gate:         gate,
		AlertPattern: j.AlertPattern,
	}
	for _, cj := range j.Children {
		c, err := fromJSON(cj)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}

// MarshalJSON encodes the validated tree as its exchange document.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.MarshalIndent(toJSON(t.root), "", "  ")
}

// Parse decodes and validates an attack-tree exchange document.
func Parse(data []byte) (*Tree, error) {
	var j nodeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("attacktree: decoding: %w", err)
	}
	root, err := fromJSON(j)
	if err != nil {
		return nil, err
	}
	return New(root)
}
