package linksim

import (
	"fmt"
	"reflect"
	"testing"

	"sesame/internal/rosbus"
	"sesame/internal/simclock"
)

// FuzzLinkQueue drives an arbitrary profile and publish/advance
// schedule through the reorder/delay queue and checks the structural
// invariants the platform depends on: no frame is ever stranded after
// a drain, the conservation law holds, the bus sees exactly the
// frames the link claims to have delivered, and a replay of the same
// input is bit-identical.
func FuzzLinkQueue(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{255, 0, 0, 0, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{0, 255, 128, 10, 200, 255, 0, 1, 0, 1, 0, 1})
	f.Add([]byte{40, 40, 200, 30, 90, 200, 2, 2, 2, 2, 2, 2, 2, 2})

	run := func(data []byte) ([]string, LinkStats, uint64) {
		prof := Profile{
			DropProb:    float64(data[0]) / 512, // cap at ~0.5 so traffic flows
			DupProb:     float64(data[1]) / 256,
			DelayProb:   float64(data[2]) / 256,
			DelayMinS:   float64(data[3]) / 32,
			DelayMaxS:   float64(data[4]) / 32,
			ReorderProb: float64(data[5]) / 256,
			HoldMaxS:    1 + float64(data[3])/64,
		}
		clock := simclock.New(1234)
		bus := rosbus.NewBus()
		layer := New(clock, "fuzz")
		layer.AttachBus(bus)
		lk := layer.Link("u1")
		lk.SetProfile(prof)
		pub, _ := bus.Advertise("/uav/u1/status", "u1")
		var got []string
		_, _ = bus.Subscribe("/uav/u1/status", func(m rosbus.Message) {
			got = append(got, m.Payload.(string))
		})
		n := 0
		for _, op := range data[6:] {
			if op%3 == 0 {
				clock.RunUntil(clock.Now() + float64(op%16)/4)
				continue
			}
			n++
			_ = pub.Publish(clock.Now(), fmt.Sprintf("m%d", n))
		}
		// Drain: every queued frame must release within the longest
		// delay/hold horizon. SetProfile normalizes DelayMaxS up to
		// DelayMinS, so the horizon must use the larger of the two.
		horizon := prof.DelayMaxS
		if prof.DelayMinS > horizon {
			horizon = prof.DelayMinS
		}
		clock.RunUntil(clock.Now() + horizon + prof.HoldMaxS + 1)
		return got, lk.Stats(), bus.Stats().Delivered
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 7 || len(data) > 512 {
			return
		}
		got, s, busDelivered := run(data)
		if s.Pending != 0 {
			t.Fatalf("stranded frames after drain: %+v", s)
		}
		if s.Offered+s.Duplicated != s.Delivered+s.Dropped+s.Rejected {
			t.Fatalf("conservation violated: %+v", s)
		}
		if uint64(len(got)) != s.Delivered {
			t.Fatalf("subscriber saw %d frames, link claims %d", len(got), s.Delivered)
		}
		if busDelivered != s.Delivered {
			t.Fatalf("bus delivered %d, link claims %d", busDelivered, s.Delivered)
		}
		got2, s2, _ := run(data)
		if !reflect.DeepEqual(got, got2) || s != s2 {
			t.Fatalf("replay diverged: %v/%+v vs %v/%+v", got, s, got2, s2)
		}
	})
}
