// Package linksim is a deterministic per-link fault layer for the
// in-process comms substitutes (rosbus, mqttlite). The paper's platform
// (§IV-A) runs over a real radio link between the vehicles and the
// ground station; linksim reproduces the failure modes of that link —
// message drop, delay, duplication, reordering and scheduled outage
// windows — the way FlyNetSim-style evaluation stacks put an explicit
// lossy network between UAV and GCS.
//
// Determinism contract: every stochastic draw comes from a per-link
// seeded simclock stream, draws happen in a fixed order per frame, and
// delayed frames are released through the clock's event queue. A run
// with the same seed and the same fault schedule is therefore
// bit-identical, the comms analogue of uavsim.ScheduleFault.
package linksim

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"sync"

	"sesame/internal/mqttlite"
	"sesame/internal/obsv"
	"sesame/internal/rosbus"
	"sesame/internal/simclock"
)

// ErrLinkDown is surfaced to publishers whose frame hit a rejecting
// outage window (a link that refuses traffic rather than eating it).
var ErrLinkDown = errors.New("linksim: link down")

// Profile sets the steady-state stochastic impairments of one link.
// The zero Profile is a perfect link. The JSON tags are the campaign
// sweep-spec serialization (omitempty keeps unimpaired axes out of
// spec dumps and manifests).
type Profile struct {
	DropProb    float64 `json:"drop_prob,omitempty"`    // P(frame silently lost)
	DupProb     float64 `json:"dup_prob,omitempty"`     // P(frame delivered twice)
	DelayProb   float64 `json:"delay_prob,omitempty"`   // P(frame queued and released later)
	DelayMinS   float64 `json:"delay_min_s,omitempty"`  // uniform delay window, seconds
	DelayMaxS   float64 `json:"delay_max_s,omitempty"`  //
	ReorderProb float64 `json:"reorder_prob,omitempty"` // P(frame held to swap with the next one)
	HoldMaxS    float64 `json:"hold_max_s,omitempty"`   // fail-safe release for held frames (default 1s)
}

// LinkStats counts one link's frame fates. The conservation invariant
// Offered + Duplicated == Delivered + Dropped + Rejected + Pending
// holds at every quiescent point (OutageDropped, Delayed and Reordered
// are sub-classifications, not invariant terms).
type LinkStats struct {
	Offered       uint64 `json:"offered"`
	Delivered     uint64 `json:"delivered"`
	Dropped       uint64 `json:"dropped"`
	OutageDropped uint64 `json:"outage_dropped"`
	Rejected      uint64 `json:"rejected"`
	Delayed       uint64 `json:"delayed"`
	Duplicated    uint64 `json:"duplicated"`
	Reordered     uint64 `json:"reordered"`
	Pending       uint64 `json:"pending"`
}

type outage struct {
	from, to float64
	reject   bool
}

// heldFrame is a frame parked for reordering; released is guarded by
// the layer mutex so the inline release and the fail-safe timer cannot
// both fire.
type heldFrame struct {
	deliver  func()
	released bool
}

// Link is one logical radio link (conventionally one per UAV node
// name). All methods are safe for concurrent use.
type Link struct {
	layer   *Layer
	name    string
	rng     *rand.Rand
	profile Profile
	outages []outage
	held    *heldFrame
	pending int
	stats   LinkStats
	m       linkMetrics
}

// linkMetrics holds the link's resolved observability counters. All
// fields are nil (no-op) until Layer.Instrument installs a registry.
type linkMetrics struct {
	offered, delivered, dropped, outageDropped *obsv.Counter
	rejected, delayed, duplicated, reordered   *obsv.Counter
}

// Layer multiplexes links over a bus and/or broker. The zero value is
// not usable; call New.
type Layer struct {
	mu    sync.Mutex
	clock *simclock.Clock
	name  string
	links map[string]*Link
	vecs  *layerVecs
}

// layerVecs holds the per-outcome counter families, one series per
// link, created by Instrument.
type layerVecs struct {
	offered, delivered, dropped, outageDropped *obsv.CounterVec
	rejected, delayed, duplicated, reordered   *obsv.CounterVec
}

// Instrument mirrors every link's frame-fate counters into reg, one
// series per link name. Links created later are instrumented on
// creation; a nil registry leaves the layer uninstrumented.
func (l *Layer) Instrument(reg *obsv.Registry) {
	if reg == nil {
		return
	}
	v := &layerVecs{
		offered:       reg.CounterVec("sesame_link_offered_total", "Frames offered to the link.", "link"),
		delivered:     reg.CounterVec("sesame_link_delivered_total", "Frames delivered (including duplicates).", "link"),
		dropped:       reg.CounterVec("sesame_link_dropped_total", "Frames lost (stochastic drop or outage).", "link"),
		outageDropped: reg.CounterVec("sesame_link_outage_dropped_total", "Frames lost inside an outage window.", "link"),
		rejected:      reg.CounterVec("sesame_link_rejected_total", "Frames rejected with ErrLinkDown.", "link"),
		delayed:       reg.CounterVec("sesame_link_delayed_total", "Frames queued for delayed release.", "link"),
		duplicated:    reg.CounterVec("sesame_link_duplicated_total", "Frames delivered twice.", "link"),
		reordered:     reg.CounterVec("sesame_link_reordered_total", "Frames held to swap with a later one.", "link"),
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.vecs = v
	for name, lk := range l.links {
		lk.m = v.forLink(name)
	}
}

// forLink resolves one link's counter set out of the families.
func (v *layerVecs) forLink(name string) linkMetrics {
	if v == nil {
		return linkMetrics{}
	}
	return linkMetrics{
		offered:       v.offered.With(name),
		delivered:     v.delivered.With(name),
		dropped:       v.dropped.With(name),
		outageDropped: v.outageDropped.With(name),
		rejected:      v.rejected.With(name),
		delayed:       v.delayed.With(name),
		duplicated:    v.duplicated.With(name),
		reordered:     v.reordered.With(name),
	}
}

// New returns a fault layer drawing randomness from clock's streams.
// The layer name namespaces the RNG streams so two layers on one clock
// stay independent.
func New(clock *simclock.Clock, name string) *Layer {
	if name == "" {
		name = "default"
	}
	return &Layer{clock: clock, name: name, links: make(map[string]*Link)}
}

// Link returns the named link, creating a perfect one on first use.
func (l *Layer) Link(name string) *Link {
	l.mu.Lock()
	defer l.mu.Unlock()
	lk, ok := l.links[name]
	if !ok {
		lk = &Link{
			layer: l,
			name:  name,
			rng:   l.clock.Stream("linksim/" + l.name + "/" + name),
			m:     l.vecs.forLink(name),
		}
		l.links[name] = lk
	}
	return lk
}

// lookup returns the named link or nil, without creating it.
func (l *Layer) lookup(name string) *Link {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.links[name]
}

// AttachBus routes every bus publication through the link named after
// its publisher node. Publishers without a configured link pass through
// untouched, so only explicitly faulted nodes see impairments.
func (l *Layer) AttachBus(bus *rosbus.Bus) {
	bus.SetFilter(func(msg rosbus.Message) (bool, error) {
		lk := l.lookup(msg.Publisher)
		if lk == nil {
			return true, nil
		}
		return lk.transit(func() { _ = bus.Deliver(msg) })
	})
}

// AttachBroker routes broker publications through the link named by
// route(topic); an empty route result passes the message through. This
// is how the IDS alert path (alerts/ids/<uav>) shares a UAV's link.
func (l *Layer) AttachBroker(b *mqttlite.Broker, route func(topic string) string) {
	b.SetFilter(func(topic string, payload []byte) (bool, error) {
		name := route(topic)
		if name == "" {
			return true, nil
		}
		lk := l.lookup(name)
		if lk == nil {
			return true, nil
		}
		p := append([]byte(nil), payload...)
		return lk.transit(func() { _ = b.Deliver(topic, p, false) })
	})
}

// Stats returns a snapshot of every link's counters, keyed by link name.
func (l *Layer) Stats() map[string]LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]LinkStats, len(l.links))
	for name, lk := range l.links {
		s := lk.stats
		s.Pending = uint64(lk.pending)
		out[name] = s
	}
	return out
}

// Links returns the sorted names of configured links.
func (l *Layer) Links() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.links))
	for name := range l.links {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SetProfile replaces the link's impairment profile.
func (lk *Link) SetProfile(p Profile) {
	if p.ReorderProb > 0 && p.HoldMaxS <= 0 {
		p.HoldMaxS = 1
	}
	if p.DelayMaxS < p.DelayMinS {
		p.DelayMaxS = p.DelayMinS
	}
	lk.layer.mu.Lock()
	defer lk.layer.mu.Unlock()
	lk.profile = p
}

// AddOutage schedules a silent-loss window [from, to): frames offered
// inside it vanish without an error (radio silence).
func (lk *Link) AddOutage(from, to float64) {
	lk.layer.mu.Lock()
	defer lk.layer.mu.Unlock()
	lk.outages = append(lk.outages, outage{from: from, to: to})
}

// AddRejectOutage schedules a rejecting window [from, to): frames
// offered inside it fail with ErrLinkDown, so publishers can react.
func (lk *Link) AddRejectOutage(from, to float64) {
	lk.layer.mu.Lock()
	defer lk.layer.mu.Unlock()
	lk.outages = append(lk.outages, outage{from: from, to: to, reject: true})
}

// DownAt takes the link down permanently (silent loss) from time t.
func (lk *Link) DownAt(t float64) {
	lk.AddOutage(t, math.Inf(1))
}

// DownNow reports whether the link is inside any outage window at time
// now.
func (lk *Link) DownNow(now float64) bool {
	lk.layer.mu.Lock()
	defer lk.layer.mu.Unlock()
	down, _ := lk.outageAt(now)
	return down
}

// Stats returns a snapshot of the link's counters.
func (lk *Link) Stats() LinkStats {
	lk.layer.mu.Lock()
	defer lk.layer.mu.Unlock()
	s := lk.stats
	s.Pending = uint64(lk.pending)
	return s
}

// Pending returns the number of frames queued (delayed or held).
func (lk *Link) Pending() int {
	lk.layer.mu.Lock()
	defer lk.layer.mu.Unlock()
	return lk.pending
}

// outageAt must be called with the layer mutex held.
func (lk *Link) outageAt(now float64) (down, reject bool) {
	for _, o := range lk.outages {
		if now >= o.from && now < o.to {
			if o.reject {
				return true, true
			}
			down = true
		}
	}
	return down, false
}

// transit decides one frame's fate. deliver must re-inject the frame
// past the filter (bus.Deliver / broker.Deliver). The return values
// follow the Filter contract: forward=true hands delivery back to the
// caller; forward=false means the frame was consumed here (dropped,
// queued, or already delivered via deliver).
//
// Deliveries always happen outside the layer mutex: deliver re-enters
// bus handlers, which may publish alerts through a broker whose filter
// takes this same mutex.
func (lk *Link) transit(deliver func()) (bool, error) {
	l := lk.layer
	l.mu.Lock()
	lk.stats.Offered++
	lk.m.offered.Inc()
	now := l.clock.Now()

	if down, reject := lk.outageAt(now); down {
		if reject {
			lk.stats.Rejected++
			lk.m.rejected.Inc()
			l.mu.Unlock()
			return false, ErrLinkDown
		}
		lk.stats.Dropped++
		lk.stats.OutageDropped++
		lk.m.dropped.Inc()
		lk.m.outageDropped.Inc()
		l.mu.Unlock()
		return false, nil
	}

	p := lk.profile
	// Fixed per-frame draw order (determinism): drop, then — for frames
	// that survive — reorder, dup, delay, delay amount. Early exits skip
	// later draws, which is fine: the draw sequence is a pure function
	// of the frame sequence and prior outcomes.
	if p.DropProb > 0 && lk.rng.Float64() < p.DropProb {
		lk.stats.Dropped++
		lk.m.dropped.Inc()
		l.mu.Unlock()
		return false, nil
	}

	if p.ReorderProb > 0 && lk.held == nil && lk.rng.Float64() < p.ReorderProb {
		hf := &heldFrame{deliver: deliver}
		lk.held = hf
		lk.pending++
		lk.stats.Reordered++
		lk.m.reordered.Inc()
		holdMax := p.HoldMaxS
		l.clock.After(holdMax, "linksim/"+l.name+"/"+lk.name+"/hold", func() {
			l.mu.Lock()
			if hf.released {
				l.mu.Unlock()
				return
			}
			hf.released = true
			if lk.held == hf {
				lk.held = nil
			}
			lk.pending--
			lk.stats.Delivered++
			lk.m.delivered.Inc()
			l.mu.Unlock()
			hf.deliver()
		})
		l.mu.Unlock()
		return false, nil
	}

	dup := p.DupProb > 0 && lk.rng.Float64() < p.DupProb
	delayed := p.DelayProb > 0 && lk.rng.Float64() < p.DelayProb
	if delayed {
		amount := p.DelayMinS
		if p.DelayMaxS > p.DelayMinS {
			amount += lk.rng.Float64() * (p.DelayMaxS - p.DelayMinS)
		}
		copies := 1
		lk.stats.Delayed++
		lk.m.delayed.Inc()
		if dup {
			copies = 2
			lk.stats.Duplicated++
			lk.m.duplicated.Inc()
		}
		lk.pending += copies
		l.clock.After(amount, "linksim/"+l.name+"/"+lk.name+"/delay", func() {
			l.mu.Lock()
			lk.pending -= copies
			lk.stats.Delivered += uint64(copies)
			lk.m.delivered.Add(uint64(copies))
			l.mu.Unlock()
			for i := 0; i < copies; i++ {
				deliver()
			}
		})
		l.mu.Unlock()
		return false, nil
	}

	// Inline path. Releasing a held frame here is what produces the
	// reorder: the held (earlier) frame lands after this (later) one.
	var release *heldFrame
	if lk.held != nil && !lk.held.released {
		release = lk.held
		release.released = true
		lk.held = nil
		lk.pending--
		lk.stats.Delivered++ // the released frame
		lk.m.delivered.Inc()
	}
	lk.stats.Delivered++ // this frame
	lk.m.delivered.Inc()
	if dup {
		lk.stats.Duplicated++
		lk.stats.Delivered++
		lk.m.duplicated.Inc()
		lk.m.delivered.Inc()
	}
	l.mu.Unlock()

	if release == nil && !dup {
		// Nothing extra to interleave: let the caller deliver.
		return true, nil
	}
	deliver()
	if release != nil {
		release.deliver()
	}
	if dup {
		deliver()
	}
	return false, nil
}
