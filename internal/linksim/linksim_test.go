package linksim

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"sesame/internal/mqttlite"
	"sesame/internal/rosbus"
	"sesame/internal/simclock"
)

// rig is one bus + clock + layer with a recording subscriber.
type rig struct {
	clock *simclock.Clock
	bus   *rosbus.Bus
	layer *Layer
	pub   *rosbus.Publisher
	got   []string
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	r := &rig{clock: simclock.New(seed), bus: rosbus.NewBus()}
	r.layer = New(r.clock, "test")
	r.layer.AttachBus(r.bus)
	var err error
	r.pub, err = r.bus.Advertise("/uav/u1/status", "u1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.bus.Subscribe("/uav/u1/status", func(m rosbus.Message) {
		r.got = append(r.got, m.Payload.(string))
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

func checkConservation(t *testing.T, s LinkStats) {
	t.Helper()
	if s.Offered+s.Duplicated != s.Delivered+s.Dropped+s.Rejected+s.Pending {
		t.Fatalf("conservation violated: %+v", s)
	}
}

func TestPassThroughWithoutLink(t *testing.T) {
	r := newRig(t, 1)
	// No link configured for "u1": the layer must be invisible.
	for i := 0; i < 5; i++ {
		if err := r.pub.Publish(float64(i), fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.got) != 5 {
		t.Fatalf("pass-through delivered %d, want 5", len(r.got))
	}
	if len(r.layer.Links()) != 0 {
		t.Fatal("no link should have been created")
	}
}

func TestPerfectLinkIsTransparent(t *testing.T) {
	r := newRig(t, 1)
	lk := r.layer.Link("u1")
	for i := 0; i < 5; i++ {
		if err := r.pub.Publish(float64(i), fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.got) != 5 {
		t.Fatalf("perfect link delivered %d, want 5", len(r.got))
	}
	s := lk.Stats()
	if s.Offered != 5 || s.Delivered != 5 || s.Dropped+s.Rejected+s.Pending != 0 {
		t.Fatalf("stats = %+v", s)
	}
	checkConservation(t, s)
}

func TestDropAll(t *testing.T) {
	r := newRig(t, 1)
	lk := r.layer.Link("u1")
	lk.SetProfile(Profile{DropProb: 1})
	for i := 0; i < 10; i++ {
		if err := r.pub.Publish(float64(i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.got) != 0 {
		t.Fatalf("lossy link leaked %d messages", len(r.got))
	}
	s := lk.Stats()
	if s.Dropped != 10 || s.Offered != 10 {
		t.Fatalf("stats = %+v", s)
	}
	checkConservation(t, s)
}

func TestOutageWindows(t *testing.T) {
	r := newRig(t, 1)
	lk := r.layer.Link("u1")
	lk.AddOutage(2, 4)       // silent loss for t in [2,4)
	lk.AddRejectOutage(6, 8) // rejecting for t in [6,8)
	for i := 0; i < 10; i++ {
		r.clock.RunUntil(float64(i))
		err := r.pub.Publish(float64(i), fmt.Sprintf("m%d", i))
		switch {
		case i >= 6 && i < 8:
			if !errors.Is(err, ErrLinkDown) {
				t.Fatalf("t=%d err=%v, want ErrLinkDown", i, err)
			}
		default:
			if err != nil {
				t.Fatalf("t=%d unexpected err %v", i, err)
			}
		}
	}
	want := []string{"m0", "m1", "m4", "m5", "m8", "m9"}
	if !reflect.DeepEqual(r.got, want) {
		t.Fatalf("got %v want %v", r.got, want)
	}
	s := lk.Stats()
	if s.OutageDropped != 2 || s.Dropped != 2 || s.Rejected != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if !lk.DownNow(3) || lk.DownNow(5) {
		t.Fatal("DownNow window check failed")
	}
	checkConservation(t, s)
}

func TestDownAtIsPermanent(t *testing.T) {
	r := newRig(t, 1)
	lk := r.layer.Link("u1")
	lk.DownAt(5)
	r.clock.RunUntil(4)
	_ = r.pub.Publish(4, "before")
	r.clock.RunUntil(1000)
	_ = r.pub.Publish(1000, "after")
	if !reflect.DeepEqual(r.got, []string{"before"}) {
		t.Fatalf("got %v", r.got)
	}
}

func TestDelayReleasesThroughClock(t *testing.T) {
	r := newRig(t, 1)
	lk := r.layer.Link("u1")
	lk.SetProfile(Profile{DelayProb: 1, DelayMinS: 2, DelayMaxS: 3})
	if err := r.pub.Publish(0, "late"); err != nil {
		t.Fatal(err)
	}
	if len(r.got) != 0 {
		t.Fatal("delayed frame delivered inline")
	}
	if lk.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", lk.Pending())
	}
	r.clock.RunUntil(1.9)
	if len(r.got) != 0 {
		t.Fatal("frame released before DelayMinS")
	}
	r.clock.RunUntil(3.1)
	if !reflect.DeepEqual(r.got, []string{"late"}) {
		t.Fatalf("got %v", r.got)
	}
	s := lk.Stats()
	if s.Delayed != 1 || s.Delivered != 1 || s.Pending != 0 {
		t.Fatalf("stats = %+v", s)
	}
	checkConservation(t, s)
}

func TestDuplication(t *testing.T) {
	r := newRig(t, 1)
	lk := r.layer.Link("u1")
	lk.SetProfile(Profile{DupProb: 1})
	if err := r.pub.Publish(0, "twin"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.got, []string{"twin", "twin"}) {
		t.Fatalf("got %v", r.got)
	}
	s := lk.Stats()
	if s.Duplicated != 1 || s.Delivered != 2 {
		t.Fatalf("stats = %+v", s)
	}
	checkConservation(t, s)
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	r := newRig(t, 1)
	lk := r.layer.Link("u1")
	lk.SetProfile(Profile{ReorderProb: 1, HoldMaxS: 100})
	for i := 0; i < 4; i++ {
		if err := r.pub.Publish(float64(i), fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// With ReorderProb=1 every other frame is held and released by its
	// successor: pairwise swaps.
	want := []string{"m1", "m0", "m3", "m2"}
	if !reflect.DeepEqual(r.got, want) {
		t.Fatalf("got %v want %v", r.got, want)
	}
	s := lk.Stats()
	if s.Reordered != 2 || s.Delivered != 4 || s.Pending != 0 {
		t.Fatalf("stats = %+v", s)
	}
	checkConservation(t, s)
}

func TestReorderFailsafeReleasesHeldFrame(t *testing.T) {
	r := newRig(t, 1)
	lk := r.layer.Link("u1")
	lk.SetProfile(Profile{ReorderProb: 1, HoldMaxS: 5})
	if err := r.pub.Publish(0, "only"); err != nil {
		t.Fatal(err)
	}
	if len(r.got) != 0 {
		t.Fatal("held frame delivered early")
	}
	// No successor ever arrives; the fail-safe timer must deliver it.
	r.clock.RunUntil(10)
	if !reflect.DeepEqual(r.got, []string{"only"}) {
		t.Fatalf("got %v", r.got)
	}
	s := lk.Stats()
	if s.Pending != 0 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
	checkConservation(t, s)
}

// TestDeterministicReplay is the linksim determinism contract: the same
// seed, profile and traffic produce a bit-identical delivery sequence
// and stats.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]string, LinkStats) {
		r := newRig(t, 99)
		lk := r.layer.Link("u1")
		lk.SetProfile(Profile{
			DropProb: 0.2, DupProb: 0.15, DelayProb: 0.3,
			DelayMinS: 0.5, DelayMaxS: 2.5, ReorderProb: 0.2,
		})
		for i := 0; i < 200; i++ {
			r.clock.RunUntil(float64(i))
			_ = r.pub.Publish(float64(i), fmt.Sprintf("m%d", i))
		}
		r.clock.RunUntil(300)
		s := lk.Stats()
		checkConservation(t, s)
		if s.Pending != 0 {
			t.Fatalf("frames still pending after drain: %+v", s)
		}
		return r.got, s
	}
	got1, s1 := run()
	got2, s2 := run()
	if !reflect.DeepEqual(got1, got2) {
		t.Fatal("same seed produced different delivery sequences")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
	if s1.Dropped == 0 || s1.Delayed == 0 || s1.Duplicated == 0 || s1.Reordered == 0 {
		t.Fatalf("profile did not exercise every impairment: %+v", s1)
	}
}

// TestDifferentSeedsDiverge guards against an accidentally constant RNG.
func TestDifferentSeedsDiverge(t *testing.T) {
	run := func(seed int64) []string {
		r := newRig(t, seed)
		r.layer.Link("u1").SetProfile(Profile{DropProb: 0.5})
		for i := 0; i < 50; i++ {
			_ = r.pub.Publish(float64(i), fmt.Sprintf("m%d", i))
		}
		return r.got
	}
	if reflect.DeepEqual(run(1), run(2)) {
		t.Fatal("different seeds produced identical loss patterns")
	}
}

func TestBrokerAttachRoutesAlertTraffic(t *testing.T) {
	clock := simclock.New(7)
	layer := New(clock, "test")
	broker := mqttlite.NewBroker()
	layer.AttachBroker(broker, func(topic string) string {
		if topic == "alerts/ids/u2" {
			return "u2"
		}
		return ""
	})
	var got []string
	_, _ = broker.Subscribe("alerts/#", func(m mqttlite.Message) {
		got = append(got, m.Topic+":"+string(m.Payload))
	})
	lk := layer.Link("u2")
	lk.AddOutage(0, 10)
	if err := broker.Publish("alerts/ids/u2", []byte("a"), false); err != nil {
		t.Fatal(err)
	}
	if err := broker.Publish("alerts/ids/u1", []byte("b"), false); err != nil {
		t.Fatal(err)
	}
	clock.RunUntil(20)
	if err := broker.Publish("alerts/ids/u2", []byte("c"), false); err != nil {
		t.Fatal(err)
	}
	want := []string{"alerts/ids/u1:b", "alerts/ids/u2:c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	s := lk.Stats()
	if s.OutageDropped != 1 || s.Delivered != 1 {
		t.Fatalf("stats = %+v", s)
	}
	checkConservation(t, s)
}

func TestLayerStatsSnapshot(t *testing.T) {
	r := newRig(t, 1)
	r.layer.Link("u1").SetProfile(Profile{DropProb: 1})
	r.layer.Link("u2")
	_ = r.pub.Publish(0, "x")
	all := r.layer.Stats()
	if len(all) != 2 || all["u1"].Dropped != 1 || all["u2"].Offered != 0 {
		t.Fatalf("layer stats = %+v", all)
	}
	if !reflect.DeepEqual(r.layer.Links(), []string{"u1", "u2"}) {
		t.Fatalf("Links() = %v", r.layer.Links())
	}
}
